(** Per-query resource governor: byte-accounted memory budgets, wall-clock
    deadlines with cooperative cancellation, and the temp-file lifecycle
    backing spill-to-disk kernels.

    A governor is installed around a query with {!with_ctx}; the kernels
    and executors consult the ambient governor through {!current},
    {!check}, and the charge API.  When no governor is installed every
    entry point is one atomic load, so ungoverned runs pay nothing.

    Accounting is cooperative and approximate — at chunk/hash-table
    granularity, using the same byte sizing as the [Lru] caches
    ([Relation.approx_bytes]) — which is exactly what a spill decision
    needs: the point is to bound working sets to the budget's order of
    magnitude and to fail with a {e typed} error instead of
    [Out_of_memory] when even spilling cannot help.

    Resource faults are ordinary exceptions, never error codes:
    {!Over_budget}, {!Deadline_exceeded}, {!Cancelled}.  All three leave
    the catalog and every relation untouched (kernels publish results
    only after completing), and {!with_ctx} removes the query's spill
    directory on every exit. *)

(** A memory charge that does not fit the budget even after spilling. *)
exception Over_budget of { requested : int; used : int; budget : int }

(** The wall-clock deadline passed a {!check}. *)
exception Deadline_exceeded of { elapsed : float; timeout : float }

(** {!cancel} was called; raised at the next {!check}. *)
exception Cancelled

type t

type stats = {
  peak_bytes : int;  (** high-water mark of charged bytes *)
  spill_partitions : int;  (** spill runs written by partitioned kernels *)
  spilled_bytes : int;  (** page bytes written to spill runs *)
  spilled_rows : int;  (** tuples routed through spill runs *)
}

(** [create ()] — a governor with byte budget [mem_budget] (default
    [max_int] = unbounded, which still tracks usage and peak) and
    wall-clock timeout [timeout_s] (default none).  The deadline clock
    starts at {!with_ctx}, not here. *)
val create : ?mem_budget:int -> ?timeout_s:float -> unit -> t

(** Parse a byte budget: plain bytes, or with a [k]/[m]/[g] suffix, or
    ["unbounded"]/["inf"] for [max_int].  [None] on malformed input. *)
val budget_of_string : string -> int option

(** Governor described by the environment — [QF_MEM_BUDGET] (bytes,
    {!budget_of_string} syntax) and [QF_TIMEOUT] (float seconds).  [None]
    when neither variable is set. *)
val of_env : unit -> t option

(** Install [g] as the ambient governor for [f]'s duration (saving and
    restoring any enclosing governor), start its deadline clock, and on
    {e every} exit remove its spill directory and re-emit its peak as the
    [governor.peak_bytes] gauge (when observability is on). *)
val with_ctx : t -> (unit -> 'a) -> 'a

(** The ambient governor, if one is installed. *)
val current : unit -> t option

val budget : t -> int
val used : t -> int
val stats : t -> stats

(** Request cancellation: the next {!check} (on any domain) raises
    {!Cancelled}. *)
val cancel : t -> unit

(** Cooperative checkpoint: raises {!Cancelled} or {!Deadline_exceeded}
    when the ambient governor says so; a no-op (one atomic load) when no
    governor is installed.  Called at kernel loop heads, executor step
    boundaries, and [exec_pool] chunk boundaries. *)
val check : unit -> unit

(** [charge g n] accounts [n] bytes; raises {!Over_budget} (leaving usage
    unchanged) when the budget would be exceeded. *)
val charge : t -> int -> unit

(** [try_charge g n] — [charge] that returns [false] instead of raising;
    the kernels' spill trigger. *)
val try_charge : t -> int -> bool

(** Return [n] previously charged bytes. *)
val release : t -> int -> unit

(** Record a spill event ([governor.spill.*] counters when observability
    is on; always visible in {!stats}). *)
val note_spill : t -> partitions:int -> bytes:int -> rows:int -> unit

(** The query's private spill directory ([qf_spill.<pid>.<n>] under the
    system temp directory), created on first use and removed by
    {!with_ctx} on every exit. *)
val spill_dir : t -> string

(** A fresh file path inside {!spill_dir}. *)
val fresh_spill_path : t -> string
