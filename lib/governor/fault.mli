(** Deterministic fault injection.

    Storage and governor code marks its failure-prone operations with
    {!point}.  Normally a point is a single atomic load.  A test harness
    first runs a scenario in counting mode to learn how many points the
    run crosses, then replays it once per point with that point armed:
    the armed point raises {!Injected}, simulating a page-write error, a
    budget trip, or any other mid-operation failure, at a deterministic
    program location.  Sweeping [k] over [1 .. count] therefore exercises
    a failure at {e every} counted operation of the scenario.

    The global mode is process-wide and not reentrant: the sweep drives
    one scenario at a time (worker domains of that scenario share the
    counter atomically, so parallel scenarios still count and trip
    deterministically only if their schedule is). *)

(** Raised by an armed injection point.  [point] is the site label,
    [index] the 1-based position in the run's point sequence. *)
exception Injected of { point : string; index : int }

(** Mark a failure-prone operation.  Off mode: one atomic load. *)
val point : string -> unit

(** Points crossed since the current mode was entered. *)
val points_hit : unit -> int

(** [with_count f] runs [f] with counting enabled; returns [f ()]'s
    result and the number of points crossed.  Resets the mode on exit. *)
val with_count : (unit -> 'a) -> 'a * int

(** [with_inject ~at f] runs [f] with the [at]-th crossed point (1-based)
    armed to raise {!Injected}.  Returns [f]'s outcome — normal result or
    the exception it raised — plus the number of points crossed.  Resets
    the mode on exit. *)
val with_inject : at:int -> (unit -> 'a) -> ('a, exn) result * int
