module Obs = Qf_obs.Obs

exception Over_budget of { requested : int; used : int; budget : int }
exception Deadline_exceeded of { elapsed : float; timeout : float }
exception Cancelled

type stats = {
  peak_bytes : int;
  spill_partitions : int;
  spilled_bytes : int;
  spilled_rows : int;
}

type t = {
  budget : int;
  timeout : float option;
  mutable started : float;
  mutable deadline : float;  (** absolute; [infinity] without a timeout *)
  used : int Atomic.t;
  peak : int Atomic.t;
  spill_partitions : int Atomic.t;
  spilled_bytes : int Atomic.t;
  spilled_rows : int Atomic.t;
  cancelled : bool Atomic.t;
  seq : int;  (** distinguishes spill dirs of governors in one process *)
  dir : string option Atomic.t;
  dir_mutex : Mutex.t;
  file_seq : int Atomic.t;
}

let seq_counter = Atomic.make 0

let create ?(mem_budget = max_int) ?timeout_s () =
  if mem_budget < 0 then invalid_arg "Governor.create: negative budget";
  (match timeout_s with
  | Some s when s < 0. -> invalid_arg "Governor.create: negative timeout"
  | _ -> ());
  {
    budget = mem_budget;
    timeout = timeout_s;
    started = 0.;
    deadline = infinity;
    used = Atomic.make 0;
    peak = Atomic.make 0;
    spill_partitions = Atomic.make 0;
    spilled_bytes = Atomic.make 0;
    spilled_rows = Atomic.make 0;
    cancelled = Atomic.make false;
    seq = Atomic.fetch_and_add seq_counter 1;
    dir = Atomic.make None;
    dir_mutex = Mutex.create ();
    file_seq = Atomic.make 0;
  }

(* Same syntax as [Catalog.budget_of_env]: bytes, k/m/g suffixes,
   "unbounded"/"inf". *)
let budget_of_string raw =
  let raw = String.trim raw in
  match String.lowercase_ascii raw with
  | "unbounded" | "inf" -> Some max_int
  | "" -> None
  | s -> (
    let scale, digits =
      match s.[String.length s - 1] with
      | 'k' -> 1024, String.sub s 0 (String.length s - 1)
      | 'm' -> 1024 * 1024, String.sub s 0 (String.length s - 1)
      | 'g' -> 1024 * 1024 * 1024, String.sub s 0 (String.length s - 1)
      | _ -> 1, s
    in
    match int_of_string_opt digits with
    | Some n when n >= 0 -> Some (n * scale)
    | Some _ | None -> None)

let of_env () =
  let budget =
    match Sys.getenv_opt "QF_MEM_BUDGET" with
    | None -> None
    | Some raw -> budget_of_string raw
  in
  let timeout =
    match Sys.getenv_opt "QF_TIMEOUT" with
    | None -> None
    | Some raw -> (
      match float_of_string_opt (String.trim raw) with
      | Some s when s >= 0. -> Some s
      | Some _ | None -> None)
  in
  match budget, timeout with
  | None, None -> None
  | _ ->
    Some (create ?mem_budget:budget ?timeout_s:timeout ())

let budget g = g.budget
let used g = Atomic.get g.used

let stats g =
  {
    peak_bytes = Atomic.get g.peak;
    spill_partitions = Atomic.get g.spill_partitions;
    spilled_bytes = Atomic.get g.spilled_bytes;
    spilled_rows = Atomic.get g.spilled_rows;
  }

let cancel g = Atomic.set g.cancelled true

(* {1 The ambient governor} *)

let ambient : t option Atomic.t = Atomic.make None

let current () = Atomic.get ambient

(* {1 Checkpoints} *)

let check_in g =
  Fault.point "governor.check";
  if Atomic.get g.cancelled then begin
    if Obs.enabled () then Obs.count "governor.cancelled" 1;
    raise Cancelled
  end;
  if g.deadline < infinity then begin
    let now = Unix.gettimeofday () in
    if now > g.deadline then begin
      if Obs.enabled () then Obs.count "governor.deadline_exceeded" 1;
      raise
        (Deadline_exceeded
           {
             elapsed = now -. g.started;
             timeout = Option.value g.timeout ~default:0.;
           })
    end
  end

let check () =
  match Atomic.get ambient with None -> () | Some g -> check_in g

(* {1 Byte accounting} *)

let rec bump_peak g u =
  let p = Atomic.get g.peak in
  if u > p && not (Atomic.compare_and_set g.peak p u) then bump_peak g u

let try_charge g n =
  Fault.point "governor.charge";
  let u = Atomic.fetch_and_add g.used n + n in
  if u > g.budget then begin
    ignore (Atomic.fetch_and_add g.used (-n));
    false
  end
  else begin
    bump_peak g u;
    true
  end

let charge g n =
  if not (try_charge g n) then begin
    if Obs.enabled () then Obs.count "governor.over_budget" 1;
    raise (Over_budget { requested = n; used = Atomic.get g.used; budget = g.budget })
  end

let release g n = ignore (Atomic.fetch_and_add g.used (-n))

let note_spill g ~partitions ~bytes ~rows =
  ignore (Atomic.fetch_and_add g.spill_partitions partitions);
  ignore (Atomic.fetch_and_add g.spilled_bytes bytes);
  ignore (Atomic.fetch_and_add g.spilled_rows rows);
  if Obs.enabled () then begin
    Obs.count "governor.spill.partitions" partitions;
    Obs.count "governor.spill.bytes" bytes;
    Obs.count "governor.spill.rows" rows
  end

(* {1 Spill directory lifecycle} *)

let spill_dir g =
  match Atomic.get g.dir with
  | Some d -> d
  | None ->
    Mutex.lock g.dir_mutex;
    let d =
      match Atomic.get g.dir with
      | Some d -> d
      | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "qf_spill.%d.%d" (Unix.getpid ()) g.seq)
        in
        (try Unix.mkdir d 0o700
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Atomic.set g.dir (Some d);
        d
    in
    Mutex.unlock g.dir_mutex;
    d

let fresh_spill_path g =
  Filename.concat (spill_dir g)
    (Printf.sprintf "part.%d.qfs" (Atomic.fetch_and_add g.file_seq 1))

(* Best-effort recursive removal: runs inside [with_ctx]'s finally, so it
   must never raise (the original result or exception wins). *)
let cleanup g =
  match Atomic.get g.dir with
  | None -> ()
  | Some d ->
    Atomic.set g.dir None;
    (match Sys.readdir d with
    | entries ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
        entries
    | exception Sys_error _ -> ());
    (try Unix.rmdir d with Unix.Unix_error _ -> ())

let with_ctx g f =
  let prev = Atomic.get ambient in
  g.started <- Unix.gettimeofday ();
  g.deadline <-
    (match g.timeout with Some s -> g.started +. s | None -> infinity);
  Atomic.set ambient (Some g);
  Fun.protect
    ~finally:(fun () ->
      Atomic.set ambient prev;
      cleanup g;
      if Obs.enabled () then
        Obs.gauge_max "governor.peak_bytes" (float_of_int (Atomic.get g.peak)))
    f

let () =
  Printexc.register_printer (function
    | Over_budget { requested; used; budget } ->
      Some
        (Printf.sprintf
           "Governor.Over_budget(requested %d, used %d, budget %d)" requested
           used budget)
    | Deadline_exceeded { elapsed; timeout } ->
      Some
        (Printf.sprintf "Governor.Deadline_exceeded(%.3fs elapsed, %gs timeout)"
           elapsed timeout)
    | Cancelled -> Some "Governor.Cancelled"
    | _ -> None)
