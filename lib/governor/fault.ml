exception Injected of { point : string; index : int }

type mode = Off | Count | Inject of int

let mode : mode Atomic.t = Atomic.make Off
let counter = Atomic.make 0

let point name =
  match Atomic.get mode with
  | Off -> ()
  | Count -> ignore (Atomic.fetch_and_add counter 1)
  | Inject k ->
    let i = Atomic.fetch_and_add counter 1 + 1 in
    (* Only the armed index fires; points crossed later (error-handling
       and cleanup paths included) pass through, so a cleanup that itself
       contains points can never raise a second injection. *)
    if i = k then raise (Injected { point = name; index = k })

let points_hit () = Atomic.get counter

let run_in m f =
  Atomic.set counter 0;
  Atomic.set mode m;
  Fun.protect ~finally:(fun () -> Atomic.set mode Off) f

let with_count f =
  let v = run_in Count f in
  v, points_hit ()

let with_inject ~at f =
  if at < 1 then invalid_arg "Fault.with_inject: index is 1-based";
  let outcome =
    run_in (Inject at) (fun () ->
        match f () with v -> Ok v | exception e -> Error e)
  in
  outcome, points_hit ()

let () =
  Printexc.register_printer (function
    | Injected { point; index } ->
      Some (Printf.sprintf "Fault.Injected(%s, point %d)" point index)
    | _ -> None)
