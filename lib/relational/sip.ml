module Pool = Qf_exec_pool.Pool
module Obs = Qf_obs.Obs
module Buf = Chunkrel.Buf

let exact_cutoff = 4096

(* The exact representation keeps both faces of the summarized value set:
   the dictionary codes (columnar probes compare raw ints) and the values
   themselves (row probes never touch the dictionary, and crucially never
   *extend* it — probing with [Dict.encode] would assign fresh codes to
   every unseen candidate).  Codes are process-unique per value, so code
   membership is value membership. *)
type exact = {
  codes : (int, unit) Hashtbl.t;
  values : (Value.t, unit) Hashtbl.t;
}

(* Bloom bits are derived from {!Value.hash} of the decoded value — not
   from the raw code.  Code assignment order differs between layouts (it
   depends on which relations were encoded first), so code-based bits
   would make false-positive sets — and therefore pruned-row counts —
   layout-dependent.  Value hashes are layout-independent. *)
type bloom = {
  bits : Bytes.t;
  mask : int;  (** bit-index mask; bit count is a power of two *)
}

type t =
  | Exact of exact
  | Bloom of bloom

let is_exact = function Exact _ -> true | Bloom _ -> false

let bloom_hashes mask vh =
  let h1 = Chunkrel.mix 17 vh land mask in
  let h2 = Chunkrel.mix 31 vh lor 1 in
  h1, h2

let bloom_set b vh =
  let h1, h2 = bloom_hashes b.mask vh in
  for i = 0 to 2 do
    let bit = (h1 + (i * h2)) land b.mask in
    let byte = bit lsr 3 in
    Bytes.unsafe_set b.bits byte
      (Char.chr (Char.code (Bytes.unsafe_get b.bits byte) lor (1 lsl (bit land 7))))
  done

let bloom_mem b vh =
  let h1, h2 = bloom_hashes b.mask vh in
  let rec probe i =
    i > 2
    ||
    let bit = (h1 + (i * h2)) land b.mask in
    Char.code (Bytes.unsafe_get b.bits (bit lsr 3)) land (1 lsl (bit land 7)) <> 0
    && probe (i + 1)
  in
  probe 0

let exact_of_codes codes =
  let n = Array.length codes in
  let e = { codes = Hashtbl.create (max 16 n); values = Hashtbl.create (max 16 n) } in
  Array.iter
    (fun c ->
      if not (Hashtbl.mem e.codes c) then begin
        Hashtbl.replace e.codes c ();
        Hashtbl.replace e.values (Dict.decode c) ()
      end)
    codes;
  Exact e

let bloom_of_codes codes =
  (* ~12 bits per key with 3 probes: false-positive rate around 1%. *)
  let nbits = Chunkrel.hash_capacity (12 * max 1 (Array.length codes)) in
  let b = { bits = Bytes.make (nbits lsr 3) '\000'; mask = nbits - 1 } in
  Array.iter (fun c -> bloom_set b (Value.hash (Dict.decode c))) codes;
  Bloom b

let of_values values =
  let distinct : (Value.t, unit) Hashtbl.t =
    Hashtbl.create (max 16 (Array.length values))
  in
  Array.iter (fun v -> Hashtbl.replace distinct v ()) values;
  if Obs.enabled () then Obs.count "sip.reducer_built" 1;
  let n = Hashtbl.length distinct in
  if n <= exact_cutoff then begin
    let codes = Hashtbl.create (max 16 n) in
    (* Code membership is only consulted by columnar probes, where every
       stored value is already interned; in row mode the table stays empty
       rather than force-interning values the dictionary may not hold. *)
    (match Layout.mode () with
    | Layout.Columnar ->
      Hashtbl.iter (fun v () -> Hashtbl.replace codes (Dict.encode v) ()) distinct
    | Layout.Row -> ());
    Exact { codes; values = distinct }
  end
  else begin
    let nbits = Chunkrel.hash_capacity (12 * max 1 n) in
    let b = { bits = Bytes.make (nbits lsr 3) '\000'; mask = nbits - 1 } in
    Hashtbl.iter (fun v () -> bloom_set b (Value.hash v)) distinct;
    Bloom b
  end

let of_column rel col =
  let chunk = Relation.codes rel in
  let pos = Schema.position (Relation.schema rel) col in
  let codes = chunk.Chunkrel.cols.(pos) in
  let distinct = Chunkrel.distinct_rows [| codes |] chunk.Chunkrel.nrows in
  let distinct_codes = Array.map (fun i -> codes.(i)) distinct in
  if Obs.enabled () then Obs.count "sip.reducer_built" 1;
  if Array.length distinct_codes <= exact_cutoff then
    exact_of_codes distinct_codes
  else bloom_of_codes distinct_codes

let mem t code =
  match t with
  | Exact e -> Hashtbl.mem e.codes code
  | Bloom b -> bloom_mem b (Value.hash (Dict.decode code))

let mem_value t v =
  match t with
  | Exact e -> Hashtbl.mem e.values v
  | Bloom b -> bloom_mem b (Value.hash v)

let merge_bufs chunks =
  let total = List.fold_left (fun a c -> a + Buf.length c) 0 chunks in
  let dst = Array.make total 0 in
  let pos = ref 0 in
  List.iter (fun c -> pos := Buf.blit_into c dst !pos) chunks;
  dst

let filter rel ~pos t =
  match Layout.mode () with
  | Layout.Row ->
    (* Reducer membership is a pure read; safe from worker domains. *)
    Relation.select rel (fun tup -> mem_value t (Tuple.get tup pos))
  | Layout.Columnar ->
    let chunk = Relation.codes rel in
    let col = chunk.Chunkrel.cols.(pos) in
    let n = chunk.Chunkrel.nrows in
    let pool = Pool.default () in
    let kept =
      if Pool.size pool = 1 || n < Pool.par_threshold () then begin
        let buf = Buf.create n in
        for i = 0 to n - 1 do
          if mem t col.(i) then Buf.push buf i
        done;
        Buf.to_array buf
      end
      else
        Pool.run_chunks pool ~n (fun ~lo ~hi ->
            let buf = Buf.create (hi - lo) in
            for i = lo to hi - 1 do
              if mem t col.(i) then Buf.push buf i
            done;
            buf)
        |> merge_bufs
    in
    Relation.of_chunkrel (Relation.schema rel) (Chunkrel.gather chunk kept)
