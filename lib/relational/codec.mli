(** Binary serialization of values, tuples, and schemas.

    Encoding: a value is a tag byte ([0] int, [1] real, [2] string)
    followed by a fixed 8-byte little-endian payload for numbers or a
    length-prefixed (4-byte LE) byte sequence for strings.  A tuple is a
    2-byte LE field count followed by its values.  Schemas serialize as a
    tuple of strings.

    Robustness contract (fuzz-tested on truncated and bit-flipped
    buffers): decoding validates every tag, length, and bound against the
    buffer before reading, and raises [Failure] — never any other
    exception, never an out-of-bounds access — on any corruption. *)

val encode_value : Buffer.t -> Value.t -> unit

(** [decode_value bytes off] returns the value and the offset past it. *)
val decode_value : bytes -> int -> Value.t * int

val encode_tuple : Buffer.t -> Tuple.t -> unit
val decode_tuple : bytes -> int -> Tuple.t * int

(** Whole-buffer helpers for records stored in pages. *)
val tuple_to_string : Tuple.t -> string

val tuple_of_string : string -> Tuple.t

val schema_to_string : Schema.t -> string
val schema_of_string : string -> Schema.t
