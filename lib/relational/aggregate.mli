(** Grouping and aggregation over relations, with set semantics.

    Grouping a relation [r] by columns [keys] partitions the distinct tuples
    of [r]; the aggregate is then computed over each group's tuples.  Because
    relations are duplicate-free, [COUNT] counts distinct tuples per group —
    exactly the support count a query flock's filter needs. *)

(** Aggregate functions over a group.  The [string] argument names the column
    the aggregate reads.  [Count] counts whole tuples. *)
type func =
  | Count
  | Sum of string
  | Min of string
  | Max of string

val pp_func : Format.formatter -> func -> unit

(** [eval func schema tuples] computes the aggregate over a non-empty group.
    [Count] yields [Real (cardinal)]; [Sum]/[Min]/[Max] read the named
    column ([Min]/[Max] use {!Value.compare}; [Sum] requires numeric values
    and raises [Invalid_argument] on a string). *)
val eval : func -> Schema.t -> Tuple.t list -> Value.t

(** [group_by rel ~keys ~func] returns a list of
    [(key_tuple, aggregate_value)] pairs, one per distinct key, in an
    unspecified order.

    Above [par_threshold] tuples (default
    {!Qf_exec_pool.Pool.par_threshold}) on a pool of size > 1, rows are
    hash-partitioned by key across the pool's domains and each partition
    aggregates its own disjoint key set — same groups, same values (SUM
    may associate float additions differently; exact on integer-valued
    data). *)
val group_by :
  ?pool:Qf_exec_pool.Pool.t ->
  ?par_threshold:int ->
  Relation.t ->
  keys:string list ->
  func:func ->
  (Tuple.t * Value.t) list

(** [group_filter rel ~keys ~func ~threshold] keeps the keys whose aggregate
    value is [>= threshold] (numeric comparison) and returns them as a
    relation over [keys].  This is the FILTER step's core operation.
    Parallel above the threshold, like {!group_by}. *)
val group_filter :
  ?pool:Qf_exec_pool.Pool.t ->
  ?par_threshold:int ->
  Relation.t ->
  keys:string list ->
  func:func ->
  threshold:float ->
  Relation.t

(** Like {!group_filter}, but also returns the number of candidate
    groups (the distinct key count before the threshold test — exactly
    [cardinal (project rel keys)], without the extra projection pass).
    Plan execution reports this as the a-priori candidate count. *)
val group_filter_report :
  ?pool:Qf_exec_pool.Pool.t ->
  ?par_threshold:int ->
  Relation.t ->
  keys:string list ->
  func:func ->
  threshold:float ->
  Relation.t * int
