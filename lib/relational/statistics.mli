(** Per-relation statistics for cost-based plan selection (System-R style).

    The optimizer (Sec. 4.3 of the paper) needs relation cardinalities and
    per-column distinct-value counts to estimate join sizes and the benefit
    of a candidate FILTER step. *)

type t

(** Summary of one column, as consumed by the abstract interpreter
    ({!Qf_analysis.Absint}): value range, distinct count, and the tuple
    count of the most frequent value. *)
type column_profile = {
  ndv : int;
  min_value : Value.t option;  (** [None] iff the relation is empty *)
  max_value : Value.t option;
  max_frequency : int;
      (** tuples carried by the most frequent value; 0 if empty *)
}

(** Scan a relation and collect statistics. *)
val of_relation : Relation.t -> t

val cardinality : t -> int

(** Distinct values in the named column.  Raises [Not_found] on an unknown
    column. *)
val distinct : t -> string -> int

(** Average number of tuples per distinct value of the column:
    [cardinality / distinct].  0 if the relation is empty. *)
val tuples_per_value : t -> string -> float

(** Estimated size of the equi-join [a ⋈ b] on the given column pairs
    ([(col_of_a, col_of_b)]), using the standard independence assumption:
    |a||b| / prod(max(V(a,ca), V(b,cb))).  With no join columns this is the
    cross-product size. *)
val estimate_join : t -> t -> (string * string) list -> float

(** Estimated selectivity in [0,1] of an equality between a column and a
    constant: 1 / V(col). *)
val eq_selectivity : t -> string -> float

(** [count_at_least t col c] — the exact number of distinct values of [col]
    appearing in at least [c] tuples.  This is the survivor count of a
    single-subgoal COUNT filter step, the "substantial gathering of
    statistics to support the filter/don't filter decision" of the paper's
    Ex. 4.4.  Computed from the per-value frequency distribution collected
    at construction.  Raises [Not_found] on an unknown column. *)
val count_at_least : t -> string -> int -> int

(** The frequency distribution of a column: per-value tuple counts, sorted
    descending.  Exposed for diagnostics and workload analysis. *)
val frequencies : t -> string -> int array

(** Range/ndv/max-frequency profile of the named column.  Raises
    [Not_found] on an unknown column. *)
val column_profile : t -> string -> column_profile

val pp : Format.formatter -> t -> unit
