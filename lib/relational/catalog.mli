(** A catalog maps predicate names to stored relations.

    Datalog evaluation resolves every relational subgoal through a catalog.
    Statistics are computed lazily per relation and cached; {!add} and
    {!remove} invalidate the cached entry.  Mutating a relation *after*
    adding it does not invalidate its cached statistics — re-[add] it. *)

type t

val create : unit -> t

(** Register (or replace) a relation under a predicate name. *)
val add : t -> string -> Relation.t -> unit

val remove : t -> string -> unit

(** Raises [Failure] with a helpful message if absent. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool

(** Names in an unspecified order. *)
val names : t -> string list

(** Cached statistics for a stored relation.  Raises [Not_found]. *)
val stats : t -> string -> Statistics.t

(** [index t rel positions] is [Index.build rel positions], memoized.
    Entries are keyed by ({!Relation.id}, positions) and tagged with the
    {!Relation.version} they were built against: mutating the relation
    makes the entry stale and the next lookup rebuilds it.  The relation
    need not be registered in the catalog. *)
val index : t -> Relation.t -> int list -> Index.t

(** Like {!index} with named columns. *)
val index_on : t -> Relation.t -> string list -> Index.t

(** [(hits, misses)] of the index cache since creation (or the last
    {!reset_index_stats}). *)
val index_stats : t -> int * int

(** Entries evicted from the index cache's LRU byte budget since
    creation.  The budget comes from [QF_INDEX_BUDGET] (bytes, with
    optional [k]/[m]/[g] suffix, or ["unbounded"]; default 128 MiB). *)
val index_evictions : t -> int

(** Override the index cache's byte budget ([0] disables caching). *)
val set_index_budget : t -> int -> unit

val reset_index_stats : t -> unit

(** Per-run attribution over the shared cache: the counters are shared
    between a catalog and its {!copy}s, so cumulative {!index_stats}
    conflates runs.  Take a {!index_stats_mark} before a logical run and
    read the run's own hits/misses with {!index_stats_since} — no reset,
    so concurrent runs keep their baselines. *)
val index_stats_mark : t -> int * int

(** [index_stats_since t mark] — [(hits, misses)] accumulated since
    [mark] was taken. *)
val index_stats_since : t -> int * int -> int * int

(** {1 Subplan memo}

    A cross-level memo table for FILTER-step outputs, keyed by canonical
    step signatures (opaque strings; [qf_core]'s [Stepsig] computes them
    and embeds every referenced relation's (id, version) pair, so
    mutation invalidates by key change — the index cache's version
    discipline).  Bounded by an LRU byte budget from [QF_MEMO_BUDGET]
    (same syntax as [QF_INDEX_BUDGET]; default 64 MiB; [0] disables
    memoization entirely).  Shared across {!copy}s, like the index
    cache. *)

(** [false] when the budget is [0]: {!memo_find} always misses silently
    and {!memo_add} is a no-op. *)
val memo_enabled : t -> bool

(** Lookup by signature.  Counts a hit or miss (per-catalog stats and,
    when observability is enabled, the [memo.hit]/[memo.miss] Obs
    counters). *)
val memo_find : t -> string -> Relation.t option

(** Store a step output under its signature; LRU-evicts past the budget
    (counted in {!memo_stats} and the [memo.evict] Obs counter). *)
val memo_add : t -> string -> Relation.t -> unit

(** [(hits, misses, evictions)] since creation. *)
val memo_stats : t -> int * int * int

val memo_budget : t -> int

(** Override the byte budget ([0] disables; shrinking evicts). *)
val set_memo_budget : t -> int -> unit

(** Drop every memo entry (budget and stats are kept). *)
val memo_clear : t -> unit

(** Current resident bytes (approximate, as declared at insertion). *)
val memo_bytes : t -> int

(** A shallow copy: the new catalog shares relations but registering in one
    does not affect the other.  Plan execution uses this to add temporary
    [ok] relations without polluting the base catalog.  The index cache
    and subplan memo are shared with the copy (entries are keyed by
    relation identity resp. signatures embedding relation identities, so
    sharing is sound and lets working copies reuse each other's work). *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
