(* A tuple caches its structural hash at construction.  Every hashtable
   probe on the hot join/aggregation paths used to refold the whole value
   array; with the cache a probe reads one immediate field, and [equal]
   gets a cheap negative fast path for free.  Construction goes through
   {!of_array} so the cache can never go stale (callers must not mutate
   the array afterwards; every constructor here allocates a fresh one). *)

type t = { values : Value.t array; hash : int }

let hash_values values =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 values

let of_array values = { values; hash = hash_values values }
let of_list l = of_array (Array.of_list l)
let arity t = Array.length t.values
let get t i = t.values.(i)
let hash t = t.hash
let to_list t = Array.to_list t.values
let to_seq t = Array.to_seq t.values

let compare a b =
  let la = Array.length a.values and lb = Array.length b.values in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Value.compare a.values.(i) b.values.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b =
  a == b
  || a.hash = b.hash
     && Array.length a.values = Array.length b.values
     &&
     let rec loop i =
       i >= Array.length a.values
       || (Value.equal a.values.(i) b.values.(i) && loop (i + 1))
     in
     loop 0

(* Positions come pre-computed as an [int array] so the projection is a
   single bounds-checked [Array.init] with no list traversal. *)
let project positions tup =
  of_array (Array.init (Array.length positions) (fun i -> tup.values.(positions.(i))))

let append a b = of_array (Array.append a.values b.values)

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_seq t.values)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
