(** Slotted pages.

    A page is a fixed-size byte block laid out as:
    {v
    [u16 slot_count][u16 free_offset][slot directory ...][... free ...][records]
    v}
    The slot directory grows forward from the header, records grow backward
    from the end; [free_offset] is the end of the record area.  Each slot is
    a (u16 offset, u16 length) pair.  This is the classic heap-page layout
    every storage textbook describes; no deletion support (the flock system
    is read-mostly — relations are imported, then queried). *)

val size : int
(** 4096 bytes. *)

type t

(** A fresh empty page. *)
val create : unit -> t

(** Wrap raw bytes read from disk.  Raises [Failure] if the header is
    malformed or the length is not {!size}. *)
val of_bytes : bytes -> t

val to_bytes : t -> bytes

(** Number of records. *)
val count : t -> int

(** Free space available for one more record (accounting for its slot). *)
val free_space : t -> int

(** [add page record] appends a record; returns [false] (leaving the page
    unchanged) when it does not fit.  Raises [Invalid_argument] if the
    record could never fit even in an empty page. *)
val add : t -> string -> bool

(** [get page i] — the [i]th record.  Raises [Invalid_argument] on a bad
    index. *)
val get : t -> int -> string

val iter : (string -> unit) -> t -> unit

(** Maximum record size storable in an empty page. *)
val max_record_size : int
