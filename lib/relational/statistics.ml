type column_stats = {
  distinct : int;
  frequencies : int array;  (** per-value tuple counts, descending *)
  min_value : Value.t option;  (** None iff the relation is empty *)
  max_value : Value.t option;
}

type column_profile = {
  ndv : int;
  min_value : Value.t option;
  max_value : Value.t option;
  max_frequency : int;  (** tuples carried by the most frequent value; 0 if empty *)
}

type t = {
  cardinality : int;
  columns : (string * column_stats) list;
}

let minmax_fold (lo, hi) v =
  let lo = match lo with None -> Some v | Some l -> if Value.compare v l < 0 then Some v else lo in
  let hi = match hi with None -> Some v | Some h -> if Value.compare v h > 0 then Some v else hi in
  lo, hi

(* Row layout: fold every tuple through per-column value tables. *)
let of_relation_rows rel =
  let schema = Relation.schema rel in
  let arity = Schema.arity schema in
  let tables = Array.init arity (fun _ -> Hashtbl.create 64) in
  let ranges = Array.make arity (None, None) in
  Relation.iter
    (fun tup ->
      for i = 0 to Tuple.arity tup - 1 do
        let v = Tuple.get tup i in
        let table = tables.(i) in
        let key = Value.hash v, v in
        let n = match Hashtbl.find_opt table key with Some n -> n | None -> 0 in
        Hashtbl.replace table key (n + 1);
        ranges.(i) <- minmax_fold ranges.(i) v
      done)
    rel;
  let columns =
    List.mapi
      (fun i col ->
        let table = tables.(i) in
        let frequencies =
          Hashtbl.fold (fun _ n acc -> n :: acc) table []
          |> List.sort (fun a b -> Int.compare b a)
          |> Array.of_list
        in
        let min_value, max_value = ranges.(i) in
        col, { distinct = Hashtbl.length table; frequencies; min_value; max_value })
      (Schema.columns schema)
  in
  { cardinality = Relation.cardinal rel; columns }

(* Columnar layout: dictionary codes are already canonical value ids, so
   per-column counting is an int-keyed histogram — no value hashing, no
   (hash, value) key pairs.  Min/max still compare decoded values (the
   code order is assignment order, not the value order). *)
let of_relation_cols rel =
  let schema = Relation.schema rel in
  let chunk = Relation.codes rel in
  let n = chunk.Chunkrel.nrows in
  let columns =
    List.mapi
      (fun i col ->
        let codes = chunk.Chunkrel.cols.(i) in
        let counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
        for r = 0 to n - 1 do
          let c = Array.unsafe_get codes r in
          match Hashtbl.find_opt counts c with
          | Some k -> Hashtbl.replace counts c (k + 1)
          | None -> Hashtbl.add counts c 1
        done;
        let frequencies =
          Hashtbl.fold (fun _ k acc -> k :: acc) counts []
          |> List.sort (fun a b -> Int.compare b a)
          |> Array.of_list
        in
        let range =
          Hashtbl.fold
            (fun code _ acc -> minmax_fold acc (Dict.decode code))
            counts (None, None)
        in
        let min_value, max_value = range in
        col, { distinct = Hashtbl.length counts; frequencies; min_value; max_value })
      (Schema.columns schema)
  in
  { cardinality = Relation.cardinal rel; columns }

let of_relation rel =
  match Layout.mode () with
  | Layout.Row -> of_relation_rows rel
  | Layout.Columnar -> of_relation_cols rel

let cardinality t = t.cardinality

let column t col =
  match List.assoc_opt col t.columns with
  | Some c -> c
  | None -> raise Not_found

let distinct t col = (column t col).distinct

let column_profile t col =
  let c = column t col in
  {
    ndv = c.distinct;
    min_value = c.min_value;
    max_value = c.max_value;
    max_frequency = (if Array.length c.frequencies = 0 then 0 else c.frequencies.(0));
  }

let tuples_per_value t col =
  let d = distinct t col in
  if d = 0 then 0. else float_of_int t.cardinality /. float_of_int d

let estimate_join a b pairs =
  let base = float_of_int a.cardinality *. float_of_int b.cardinality in
  List.fold_left
    (fun acc (ca, cb) ->
      let v = max (distinct a ca) (distinct b cb) in
      if v = 0 then 0. else acc /. float_of_int v)
    base pairs

let eq_selectivity t col =
  let d = distinct t col in
  if d = 0 then 0. else 1. /. float_of_int d

let count_at_least t col c =
  let { frequencies; _ } = column t col in
  (* frequencies are descending: binary search for the boundary. *)
  let n = Array.length frequencies in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if frequencies.(mid) >= c then search (mid + 1) hi else search lo mid
  in
  search 0 n

let frequencies t col = Array.copy (column t col).frequencies

let pp ppf t =
  Format.fprintf ppf "@[<v>|R| = %d@,%a@]" t.cardinality
    (Format.pp_print_list (fun ppf (c, s) ->
         Format.fprintf ppf "V(%s) = %d" c s.distinct))
    t.columns
