(** Physical-layout selection for the relational kernels.

    Every relation can materialize two physical layouts: the classic
    row-at-a-time hash set of {!Tuple.t}s, and the columnar form — one
    dictionary-encoded [int array] per attribute (see {!Chunkrel}).  The
    kernels ({!Join}, {!Aggregate}, [Relation.select]/[project], the
    Datalog evaluator) consult the current {!mode} to pick their code
    path; both paths compute identical result sets.

    The mode is a process-wide dial, not a per-relation property:
    relations convert lazily at the boundary when a kernel asks for the
    other layout. *)

type mode =
  | Row  (** row-at-a-time [Tuple.t] kernels (the pre-columnar engine) *)
  | Columnar  (** dictionary-encoded column kernels (the default) *)

(** The current mode: the {!set_override} value when set, else
    [QF_LAYOUT] ([row] / [columnar], read once), else {!Columnar}. *)
val mode : unit -> mode

(** Force a mode programmatically (benchmark ablations, equivalence
    tests); [None] returns control to the environment/default. *)
val set_override : mode option -> unit

val of_string : string -> mode option
val to_string : mode -> string
