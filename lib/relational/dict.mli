(** The process-wide value dictionary backing the columnar layout.

    Every distinct {!Value.t} (under {!Value.equal} — so [Int 1] and
    [Real 1.0] stay distinct, matching tuple set semantics) maps to one
    small integer code; columnar relations store codes, and code equality
    is then exactly value equality.  The dictionary extends the existing
    string interning: {!Value.str} already canonicalizes strings, so
    encode probes compare interned strings pointer-first.

    Encoding is guarded by a mutex (use {!with_encoder} to amortize the
    lock over a bulk conversion).  Decoding is lock-free: codes index an
    append-only array republished through an [Atomic] after every
    extension, so worker domains may decode concurrently with an encoder
    on another domain. *)

(** The code for [v], assigning a fresh one on first sight. *)
val encode : Value.t -> int

(** [with_encoder f] runs [f encode] holding the dictionary lock once,
    for bulk conversions.  The encoder must not escape [f], and [f] must
    not call {!encode}/{!with_encoder} itself. *)
val with_encoder : ((Value.t -> int) -> 'a) -> 'a

(** The value for a code previously returned by an encode.  Unchecked:
    an out-of-range code raises [Invalid_argument]. *)
val decode : int -> Value.t

(** Number of codes assigned so far. *)
val size : unit -> int
