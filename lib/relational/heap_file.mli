(** Heap files: an unordered sequence of records over a {!Pager}.

    Records append into the last page, spilling to a fresh page when full.
    Page 0 is reserved for the file header (currently just the schema
    record), so data pages start at 1. *)

type t

(** Create a new heap file at [path] storing relations of the given schema.
    Truncates any existing file.  Raises [Failure] if the schema record
    exceeds a page. *)
val create : ?capacity:int -> string -> Schema.t -> t

(** Open an existing heap file; reads the schema from the header page. *)
val open_existing : ?capacity:int -> string -> t

val schema : t -> Schema.t

(** Append one tuple.  Raises [Invalid_argument] on arity mismatch or a
    record larger than a page. *)
val append : t -> Tuple.t -> unit

(** Scan every record in storage order. *)
val iter : (Tuple.t -> unit) -> t -> unit

(** Materialize the whole file as an in-memory relation (set semantics:
    duplicates stored on disk collapse). *)
val to_relation : t -> Relation.t

(** Append every tuple of a relation. *)
val append_relation : t -> Relation.t -> unit

(** Pager cache statistics: (hits, misses, evictions). *)
val cache_stats : t -> int * int * int

(** Pages in the file, header included. *)
val page_count : t -> int

val flush : t -> unit
val close : t -> unit

(** Close without flushing — for spill runs about to be deleted. *)
val discard : t -> unit
