(* A small state-machine CSV reader: handles quoted fields with embedded
   commas, doubled quotes, and newlines.  Rows are value-string lists. *)
let parse_rows text =
  let rows = ref [] and fields = ref [] and buf = Buffer.create 32 in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let push_row () =
    push_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let n = String.length text in
  let rec plain i =
    if i >= n then (if Buffer.length buf > 0 || !fields <> [] then push_row ())
    else
      match text.[i] with
      | ',' ->
        push_field ();
        plain (i + 1)
      | '\n' ->
        push_row ();
        plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv.parse: unterminated quoted field"
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let parse_string text =
  match parse_rows text with
  | [] -> failwith "Csv.parse: empty input (missing header)"
  | header :: rows ->
    let schema = Schema.of_list header in
    let rel = Relation.create schema in
    List.iteri
      (fun i row ->
        if List.length row <> Schema.arity schema then
          failwith
            (Printf.sprintf "Csv.parse: row %d has %d fields, expected %d"
               (i + 2) (List.length row) (Schema.arity schema));
        Relation.add rel (Tuple.of_list (List.map Value.of_string row)))
      rows;
    (* Load boundary: materialize the preferred physical layout now so
       the first kernel does not pay the conversion mid-query. *)
    Relation.prepare rel;
    rel

let escape_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let field_of_value = function
  | Value.Int i -> string_of_int i
  | Value.Real f -> Printf.sprintf "%g" f
  | Value.Str s -> escape_field s

let to_string rel =
  let buf = Buffer.create 1024 in
  let add_row fields =
    Buffer.add_string buf (String.concat "," fields);
    Buffer.add_char buf '\n'
  in
  add_row (List.map escape_field (Schema.columns (Relation.schema rel)));
  List.iter
    (fun tup -> add_row (List.map field_of_value (Tuple.to_list tup)))
    (Relation.to_sorted_list rel);
  Buffer.contents buf

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

let save path rel =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string rel))
