module Pool = Qf_exec_pool.Pool
module Obs = Qf_obs.Obs
module Buf = Chunkrel.Buf
module Governor = Qf_governor.Governor

type func =
  | Count
  | Sum of string
  | Min of string
  | Max of string

let pp_func ppf = function
  | Count -> Format.pp_print_string ppf "COUNT(*)"
  | Sum c -> Format.fprintf ppf "SUM(%s)" c
  | Min c -> Format.fprintf ppf "MIN(%s)" c
  | Max c -> Format.fprintf ppf "MAX(%s)" c

let numeric_exn context v =
  match Value.to_float v with
  | Some f -> f
  | None ->
    invalid_arg
      (Printf.sprintf "Aggregate.%s: non-numeric value %s" context
         (Value.to_string v))

let eval func schema tuples =
  match tuples with
  | [] -> invalid_arg "Aggregate.eval: empty group"
  | first :: rest -> (
    match func with
    | Count -> Value.Real (float_of_int (List.length tuples))
    | Sum col ->
      let pos = Schema.position schema col in
      let total =
        List.fold_left
          (fun acc tup -> acc +. numeric_exn "sum" (Tuple.get tup pos))
          0. tuples
      in
      Value.Real total
    | Min col ->
      let pos = Schema.position schema col in
      List.fold_left
        (fun acc tup ->
          if Value.compare (Tuple.get tup pos) acc < 0 then Tuple.get tup pos
          else acc)
        (Tuple.get first pos) rest
    | Max col ->
      let pos = Schema.position schema col in
      List.fold_left
        (fun acc tup ->
          if Value.compare (Tuple.get tup pos) acc > 0 then Tuple.get tup pos
          else acc)
        (Tuple.get first pos) rest)

(* {1 Row-layout parallel grouping}

   Group-by is the FILTER step's core operation and routinely runs over
   millions of tabulated rows, so it gets the full two-phase treatment:

   - phase 1 (parallel over row chunks): project each tuple's key and
     scatter [(key, tuple)] into one of [d] buckets by key hash, so every
     distinct key lands in exactly one partition;
   - phase 2 (parallel over the [d] partitions): build the per-partition
     group table and evaluate the aggregate per group.

   No cross-domain merge is needed — partitioning by key hash makes the
   partitions disjoint — and the cached tuple hash makes both the scatter
   and the table probes O(1).  Results are the same (unordered) group
   list as the sequential path. *)

let group_by_parallel pool rel ~key_positions ~func =
  let schema = Relation.schema rel in
  let tuples = Relation.to_array rel in
  let n = Array.length tuples in
  let d = Pool.size pool in
  let buckets_per_chunk =
    Pool.run_chunks pool ~n (fun ~lo ~hi ->
        let buckets = Array.make d [] in
        for i = lo to hi - 1 do
          let tup = tuples.(i) in
          let key = Tuple.project key_positions tup in
          let j = (Tuple.hash key land max_int) mod d in
          buckets.(j) <- (key, tup) :: buckets.(j)
        done;
        buckets)
  in
  let partitions =
    List.init d (fun j ->
        List.map (fun buckets -> buckets.(j)) buckets_per_chunk)
  in
  let per_partition =
    Pool.run_all pool
      (List.map
         (fun pieces () ->
           let groups : Tuple.t list ref Tuple.Table.t =
             Tuple.Table.create 64
           in
           List.iter
             (List.iter (fun (key, tup) ->
                  match Tuple.Table.find_opt groups key with
                  | Some cell -> cell := tup :: !cell
                  | None -> Tuple.Table.add groups key (ref [ tup ])))
             pieces;
           Tuple.Table.fold
             (fun key cell acc -> (key, eval func schema !cell) :: acc)
             groups [])
         partitions)
  in
  List.concat per_partition

let group_by_rows ?pool ?par_threshold rel ~keys ~func =
  let threshold =
    match par_threshold with Some v -> v | None -> Pool.par_threshold ()
  in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if Pool.size pool > 1 && Relation.cardinal rel >= threshold then
    let key_positions =
      Array.of_list (List.map (Schema.position (Relation.schema rel)) keys)
    in
    group_by_parallel pool rel ~key_positions ~func
  else begin
    let schema = Relation.schema rel in
    let idx = Index.build_on rel keys in
    let out = ref [] in
    Index.iter_groups
      (fun key tuples -> out := (key, eval func schema tuples) :: !out)
      idx;
    !out
  end

(* {1 Columnar grouping}

   Rows are grouped by their key *codes*: a group id per distinct key
   row, assigned through either a dense code→gid map (single key column
   with a small code domain — the perfect-hash path) or open addressing
   over representative rows.  Aggregates then accumulate into per-gid
   arrays in one vectorized pass; [SUM]/[MIN]/[MAX] decode the measure
   column's codes on the fly (an array read per row), [COUNT] touches no
   values at all.

   The parallel path reuses the two-phase scheme above, but over int
   buffers: scatter row indices by key hash into [d] disjoint partitions,
   then group and aggregate each partition independently; per-partition
   results merge by [Array.blit]. *)

(* Group the rows listed in [idxs]; returns [rep] (one representative row
   per group, in first-appearance order) and [gid] (parallel to [idxs]). *)
let group_rows key_cols idxs =
  let m = Array.length idxs in
  let gid = Array.make m 0 in
  let dense_path () =
    match key_cols with
    | [| col |] when m > 0 ->
      let maxc = ref 0 in
      for k = 0 to m - 1 do
        let c = Array.unsafe_get col (Array.unsafe_get idxs k) in
        if c > !maxc then maxc := c
      done;
      if !maxc <= (2 * m) + 1024 then Some !maxc else None
    | _ -> None
  in
  match dense_path () with
  | Some maxc ->
    let col = key_cols.(0) in
    let map = Array.make (maxc + 1) (-1) in
    let rep = Buf.create (m / 4) in
    for k = 0 to m - 1 do
      let i = Array.unsafe_get idxs k in
      let c = Array.unsafe_get col i in
      let g = Array.unsafe_get map c in
      if g >= 0 then Array.unsafe_set gid k g
      else begin
        let g = Buf.length rep in
        Array.unsafe_set map c g;
        Buf.push rep i;
        Array.unsafe_set gid k g
      end
    done;
    Buf.to_array rep, gid
  | None ->
    let cap = Chunkrel.hash_capacity (2 * m) in
    let mask = cap - 1 in
    let slots = Array.make cap (-1) in
    let rep = Buf.create (m / 4 + 8) in
    let nk = Array.length key_cols in
    let keys_equal i j =
      let rec loop k =
        k >= nk
        || Array.unsafe_get (Array.unsafe_get key_cols k) i
           = Array.unsafe_get (Array.unsafe_get key_cols k) j
           && loop (k + 1)
      in
      loop 0
    in
    for k = 0 to m - 1 do
      let i = Array.unsafe_get idxs k in
      let h = ref (Chunkrel.hash_key key_cols i land mask) in
      let stop = ref false in
      while not !stop do
        let g = Array.unsafe_get slots !h in
        if g = -1 then begin
          let g = Buf.length rep in
          Array.unsafe_set slots !h g;
          Buf.push rep i;
          Array.unsafe_set gid k g;
          stop := true
        end
        else if keys_equal i (Buf.get rep g) then begin
          Array.unsafe_set gid k g;
          stop := true
        end
        else h := (!h + 1) land mask
      done
    done;
    Buf.to_array rep, gid

(* Per-gid aggregate values over the rows in [idxs]. *)
let aggregate_gids (chunk : Chunkrel.t) schema ~func ~rep ~gid ~idxs =
  let ngroups = Array.length rep in
  let m = Array.length idxs in
  match func with
  | Count ->
    let counts = Array.make ngroups 0 in
    for k = 0 to m - 1 do
      let g = Array.unsafe_get gid k in
      Array.unsafe_set counts g (Array.unsafe_get counts g + 1)
    done;
    Array.map (fun c -> Value.Real (float_of_int c)) counts
  | Sum col ->
    let vcol = chunk.Chunkrel.cols.(Schema.position schema col) in
    let sums = Array.make ngroups 0. in
    for k = 0 to m - 1 do
      let i = Array.unsafe_get idxs k in
      let v = numeric_exn "sum" (Dict.decode (Array.unsafe_get vcol i)) in
      let g = Array.unsafe_get gid k in
      Array.unsafe_set sums g (Array.unsafe_get sums g +. v)
    done;
    Array.map (fun s -> Value.Real s) sums
  | Min col | Max col ->
    let vcol = chunk.Chunkrel.cols.(Schema.position schema col) in
    let want = match func with Min _ -> -1 | _ -> 1 in
    let best = Array.make ngroups (-1) in
    for k = 0 to m - 1 do
      let i = Array.unsafe_get idxs k in
      let g = Array.unsafe_get gid k in
      let b = Array.unsafe_get best g in
      if b = -1 then Array.unsafe_set best g i
      else begin
        let ci = Array.unsafe_get vcol i and cb = Array.unsafe_get vcol b in
        if ci <> cb then begin
          let c = Value.compare (Dict.decode ci) (Dict.decode cb) in
          if (want < 0 && c < 0) || (want > 0 && c > 0) then
            Array.unsafe_set best g i
        end
      end
    done;
    Array.map (fun i -> Dict.decode vcol.(i)) best

let identity_idxs n = Array.init n (fun i -> i)

(* Phase 1 of the parallel path: row indices scattered into [d] disjoint
   partitions by key hash, merged per partition by blit. *)
let partition_rows pool key_cols n =
  let d = Pool.size pool in
  let per_chunk =
    Pool.run_chunks pool ~n (fun ~lo ~hi ->
        let bufs = Array.init d (fun _ -> Buf.create ((hi - lo) / d + 8)) in
        for i = lo to hi - 1 do
          Buf.push bufs.(Chunkrel.hash_key key_cols i mod d) i
        done;
        bufs)
  in
  List.init d (fun j ->
      let pieces = List.map (fun bufs -> bufs.(j)) per_chunk in
      let total = List.fold_left (fun a c -> a + Buf.length c) 0 pieces in
      let dst = Array.make total 0 in
      let pos = ref 0 in
      List.iter (fun c -> pos := Buf.blit_into c dst !pos) pieces;
      dst)

let columnar_partitions ?pool ?par_threshold rel ~key_cols =
  let chunk = Relation.codes rel in
  let n = chunk.Chunkrel.nrows in
  let threshold =
    match par_threshold with Some v -> v | None -> Pool.par_threshold ()
  in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if Pool.size pool > 1 && n >= threshold then
    Some pool, partition_rows pool key_cols n
  else None, [ identity_idxs n ]

let group_by_cols ?pool ?par_threshold rel ~keys ~func =
  let schema = Relation.schema rel in
  let chunk = Relation.codes rel in
  let key_positions =
    Array.of_list (List.map (Schema.position schema) keys)
  in
  let key_cols = Array.map (fun p -> chunk.Chunkrel.cols.(p)) key_positions in
  let pool, parts = columnar_partitions ?pool ?par_threshold rel ~key_cols in
  let job idxs () =
    let rep, gid = group_rows key_cols idxs in
    let aggs = aggregate_gids chunk schema ~func ~rep ~gid ~idxs in
    rep, aggs
  in
  let per_part =
    match pool with
    | Some pool -> Pool.run_all pool (List.map job parts)
    | None -> List.map (fun idxs -> job idxs ()) parts
  in
  List.concat_map
    (fun (rep, aggs) ->
      List.init (Array.length rep) (fun g ->
          let i = rep.(g) in
          let key =
            Tuple.of_array
              (Array.map (fun col -> Dict.decode col.(i)) key_cols)
          in
          key, aggs.(g)))
    per_part

(* {1 Spilling group-by}

   Under a governed budget too small for the in-memory group table, rows
   hash-partition by their group key into temp heap-file runs, then each
   partition aggregates independently under a per-partition charge.
   Equal keys land in the same partition, so per-partition group lists
   concatenate into exactly the in-memory result — no cross-partition
   merge is ever needed. *)
let spill_group_by g rel ~keys ~func =
  let schema = Relation.schema rel in
  let key_positions =
    Array.of_list (List.map (Schema.position schema) keys)
  in
  let need = 2 * Relation.approx_bytes rel in
  let parts = Spill.partition_count g ~need in
  let runs = Spill.partition_by_key g rel ~positions:key_positions ~parts in
  Fun.protect ~finally:(fun () -> Array.iter Spill.discard runs)
  @@ fun () ->
  Spill.note_runs g runs;
  let out = ref [] in
  Array.iter
    (fun run ->
      Governor.check ();
      let part = Spill.to_relation run in
      let cost = 2 * Relation.approx_bytes part in
      Governor.charge g cost;
      Fun.protect ~finally:(fun () -> Governor.release g cost) @@ fun () ->
      let idx = Index.build_on part keys in
      Index.iter_groups
        (fun key tuples -> out := (key, eval func schema tuples) :: !out)
        idx)
    runs;
  !out

let group_by ?pool ?par_threshold rel ~keys ~func =
  Governor.check ();
  let in_memory () =
    match Layout.mode () with
    | Layout.Row -> group_by_rows ?pool ?par_threshold rel ~keys ~func
    | Layout.Columnar -> group_by_cols ?pool ?par_threshold rel ~keys ~func
  in
  let compute () =
    (* The group table holds every distinct key plus its tuple list;
       charge roughly twice the input, spill when it does not fit. *)
    Spill.governed
      ~need:(2 * Relation.approx_bytes rel)
      in_memory
      (fun g ->
        if Obs.enabled () then Obs.count "governor.spill.groups" 1;
        spill_group_by g rel ~keys ~func)
  in
  if not (Obs.enabled ()) then compute ()
  else
    Obs.with_span "aggregate.group_by"
      ~attrs:[ "rows_in", Obs.Int (Relation.cardinal rel) ]
      (fun () ->
        let groups = compute () in
        Obs.set_attr "groups_out" (Obs.Int (List.length groups));
        groups)

(* Columnar FILTER: group, aggregate, filter by threshold, and gather the
   surviving representative rows' key codes straight into the output
   chunk — no tuple is built for keys that fail the support test, and
   none at all for the survivors either. *)
let group_filter_cols ?pool ?par_threshold rel ~keys ~func ~threshold =
  let schema = Relation.schema rel in
  let chunk = Relation.codes rel in
  let key_positions =
    Array.of_list (List.map (Schema.position schema) keys)
  in
  let key_cols = Array.map (fun p -> chunk.Chunkrel.cols.(p)) key_positions in
  let grouping () =
    let pool, parts =
      columnar_partitions ?pool ?par_threshold rel ~key_cols
    in
    let job idxs () =
      let rep, gid = group_rows key_cols idxs in
      let aggs = aggregate_gids chunk schema ~func ~rep ~gid ~idxs in
      rep, aggs
    in
    match pool with
    | Some pool -> Pool.run_all pool (List.map job parts)
    | None -> List.map (fun idxs -> job idxs ()) parts
  in
  (* Keep the nested group-by span (and its attribute values) identical
     to the row layout's, so profiled runs are layout-insensitive. *)
  let per_part =
    if not (Obs.enabled ()) then grouping ()
    else
      Obs.with_span "aggregate.group_by"
        ~attrs:[ "rows_in", Obs.Int (Relation.cardinal rel) ]
        (fun () ->
          let per_part = grouping () in
          Obs.set_attr "groups_out"
            (Obs.Int
               (List.fold_left
                  (fun a (rep, _) -> a + Array.length rep)
                  0 per_part));
          per_part)
  in
  let candidates =
    List.fold_left (fun a (rep, _) -> a + Array.length rep) 0 per_part
  in
  let kept_bufs =
    List.map
      (fun (rep, aggs) ->
        let buf = Buf.create (Array.length rep) in
        Array.iteri
          (fun g i ->
            if numeric_exn "group_filter" aggs.(g) >= threshold then
              Buf.push buf i)
          rep;
        buf)
      per_part
  in
  let total = List.fold_left (fun a b -> a + Buf.length b) 0 kept_bufs in
  let kept = Array.make total 0 in
  let pos = ref 0 in
  List.iter (fun b -> pos := Buf.blit_into b kept !pos) kept_bufs;
  let out =
    Relation.of_chunkrel
      (Schema.restrict schema keys)
      {
        Chunkrel.nrows = total;
        cols = Chunkrel.gather_cols key_cols kept;
        rows_cache = None;
      }
  in
  out, candidates

(* Spilling FILTER (columnar layout's fallback): group via the spill
   path, then threshold-filter the group list.  The nested group-by span
   mirrors the in-memory paths' exactly, so governed profiled runs stay
   layout-insensitive. *)
let spill_group_filter g rel ~keys ~func ~threshold =
  let grouping () = spill_group_by g rel ~keys ~func in
  let groups =
    if not (Obs.enabled ()) then grouping ()
    else
      Obs.with_span "aggregate.group_by"
        ~attrs:[ "rows_in", Obs.Int (Relation.cardinal rel) ]
        (fun () ->
          let groups = grouping () in
          Obs.set_attr "groups_out" (Obs.Int (List.length groups));
          groups)
  in
  let out = Relation.create (Schema.restrict (Relation.schema rel) keys) in
  List.iter
    (fun (key, v) ->
      if numeric_exn "group_filter" v >= threshold then Relation.add out key)
    groups;
  out, List.length groups

let group_filter_report ?pool ?par_threshold rel ~keys ~func ~threshold =
  Governor.check ();
  let compute () =
    match Layout.mode () with
    | Layout.Columnar ->
      Spill.governed
        ~need:(2 * Relation.approx_bytes rel)
        (fun () ->
          group_filter_cols ?pool ?par_threshold rel ~keys ~func ~threshold)
        (fun g ->
          if Obs.enabled () then Obs.count "governor.spill.groups" 1;
          spill_group_filter g rel ~keys ~func ~threshold)
    | Layout.Row ->
      let groups = group_by ?pool ?par_threshold rel ~keys ~func in
      let out =
        Relation.create (Schema.restrict (Relation.schema rel) keys)
      in
      List.iter
        (fun (key, v) ->
          let x = numeric_exn "group_filter" v in
          if x >= threshold then Relation.add out key)
        groups;
      out, List.length groups
  in
  if not (Obs.enabled ()) then compute ()
  else
    (* The a-priori view of the FILTER: [candidates] parameter assignments
       enter, [survivors] pass the threshold; [pruning_ratio] is the
       surviving fraction, always within [0, 1]. *)
    Obs.with_span "aggregate.group_filter"
      ~attrs:[ "rows_in", Obs.Int (Relation.cardinal rel) ]
      (fun () ->
        let out, candidates = compute () in
        let survivors = Relation.cardinal out in
        Obs.set_attr "candidates" (Obs.Int candidates);
        Obs.set_attr "survivors" (Obs.Int survivors);
        Obs.set_attr "pruning_ratio"
          (Obs.Float
             (if candidates = 0 then 1.
              else float_of_int survivors /. float_of_int candidates));
        out, candidates)

let group_filter ?pool ?par_threshold rel ~keys ~func ~threshold =
  fst (group_filter_report ?pool ?par_threshold rel ~keys ~func ~threshold)
