module Pool = Qf_exec_pool.Pool
module Obs = Qf_obs.Obs

type func =
  | Count
  | Sum of string
  | Min of string
  | Max of string

let pp_func ppf = function
  | Count -> Format.pp_print_string ppf "COUNT(*)"
  | Sum c -> Format.fprintf ppf "SUM(%s)" c
  | Min c -> Format.fprintf ppf "MIN(%s)" c
  | Max c -> Format.fprintf ppf "MAX(%s)" c

let numeric_exn context v =
  match Value.to_float v with
  | Some f -> f
  | None ->
    invalid_arg
      (Printf.sprintf "Aggregate.%s: non-numeric value %s" context
         (Value.to_string v))

let eval func schema tuples =
  match tuples with
  | [] -> invalid_arg "Aggregate.eval: empty group"
  | first :: rest -> (
    match func with
    | Count -> Value.Real (float_of_int (List.length tuples))
    | Sum col ->
      let pos = Schema.position schema col in
      let total =
        List.fold_left
          (fun acc tup -> acc +. numeric_exn "sum" (Tuple.get tup pos))
          0. tuples
      in
      Value.Real total
    | Min col ->
      let pos = Schema.position schema col in
      List.fold_left
        (fun acc tup ->
          if Value.compare (Tuple.get tup pos) acc < 0 then Tuple.get tup pos
          else acc)
        (Tuple.get first pos) rest
    | Max col ->
      let pos = Schema.position schema col in
      List.fold_left
        (fun acc tup ->
          if Value.compare (Tuple.get tup pos) acc > 0 then Tuple.get tup pos
          else acc)
        (Tuple.get first pos) rest)

(* {1 Parallel grouping}

   Group-by is the FILTER step's core operation and routinely runs over
   millions of tabulated rows, so it gets the full two-phase treatment:

   - phase 1 (parallel over row chunks): project each tuple's key and
     scatter [(key, tuple)] into one of [d] buckets by key hash, so every
     distinct key lands in exactly one partition;
   - phase 2 (parallel over the [d] partitions): build the per-partition
     group table and evaluate the aggregate per group.

   No cross-domain merge is needed — partitioning by key hash makes the
   partitions disjoint — and the cached tuple hash makes both the scatter
   and the table probes O(1).  Results are the same (unordered) group
   list as the sequential path. *)

let group_by_parallel pool rel ~key_positions ~func =
  let schema = Relation.schema rel in
  let tuples = Relation.to_array rel in
  let n = Array.length tuples in
  let d = Pool.size pool in
  let buckets_per_chunk =
    Pool.run_chunks pool ~n (fun ~lo ~hi ->
        let buckets = Array.make d [] in
        for i = lo to hi - 1 do
          let tup = tuples.(i) in
          let key = Tuple.project key_positions tup in
          let j = (Tuple.hash key land max_int) mod d in
          buckets.(j) <- (key, tup) :: buckets.(j)
        done;
        buckets)
  in
  let partitions =
    List.init d (fun j ->
        List.map (fun buckets -> buckets.(j)) buckets_per_chunk)
  in
  let per_partition =
    Pool.run_all pool
      (List.map
         (fun pieces () ->
           let groups : Tuple.t list ref Tuple.Table.t =
             Tuple.Table.create 64
           in
           List.iter
             (List.iter (fun (key, tup) ->
                  match Tuple.Table.find_opt groups key with
                  | Some cell -> cell := tup :: !cell
                  | None -> Tuple.Table.add groups key (ref [ tup ])))
             pieces;
           Tuple.Table.fold
             (fun key cell acc -> (key, eval func schema !cell) :: acc)
             groups [])
         partitions)
  in
  List.concat per_partition

let group_by ?pool ?par_threshold rel ~keys ~func =
  let compute () =
    let threshold =
      match par_threshold with Some v -> v | None -> Pool.par_threshold ()
    in
    let pool = match pool with Some p -> p | None -> Pool.default () in
    if Pool.size pool > 1 && Relation.cardinal rel >= threshold then
      let key_positions =
        Array.of_list
          (List.map (Schema.position (Relation.schema rel)) keys)
      in
      group_by_parallel pool rel ~key_positions ~func
    else begin
      let schema = Relation.schema rel in
      let idx = Index.build_on rel keys in
      let out = ref [] in
      Index.iter_groups
        (fun key tuples -> out := (key, eval func schema tuples) :: !out)
        idx;
      !out
    end
  in
  if not (Obs.enabled ()) then compute ()
  else
    Obs.with_span "aggregate.group_by"
      ~attrs:[ "rows_in", Obs.Int (Relation.cardinal rel) ]
      (fun () ->
        let groups = compute () in
        Obs.set_attr "groups_out" (Obs.Int (List.length groups));
        groups)

let group_filter ?pool ?par_threshold rel ~keys ~func ~threshold =
  let compute () =
    let groups = group_by ?pool ?par_threshold rel ~keys ~func in
    let out = Relation.create (Schema.restrict (Relation.schema rel) keys) in
    List.iter
      (fun (key, v) ->
        let x = numeric_exn "group_filter" v in
        if x >= threshold then Relation.add out key)
      groups;
    out, List.length groups
  in
  if not (Obs.enabled ()) then fst (compute ())
  else
    (* The a-priori view of the FILTER: [candidates] parameter assignments
       enter, [survivors] pass the threshold; [pruning_ratio] is the
       surviving fraction, always within [0, 1]. *)
    Obs.with_span "aggregate.group_filter"
      ~attrs:[ "rows_in", Obs.Int (Relation.cardinal rel) ]
      (fun () ->
        let out, candidates = compute () in
        let survivors = Relation.cardinal out in
        Obs.set_attr "candidates" (Obs.Int candidates);
        Obs.set_attr "survivors" (Obs.Int survivors);
        Obs.set_attr "pruning_ratio"
          (Obs.Float
             (if candidates = 0 then 1.
              else float_of_int survivors /. float_of_int candidates));
        out)
