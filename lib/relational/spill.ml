(* Spill runs: temp heap files backing the governed kernels' partitioned
   fallbacks.  A run lives in its governor's private spill directory, so
   every exit path of [Governor.with_ctx] removes it even if the owning
   kernel never got to; [discard] is the kernel-local eager cleanup (no
   flush — the data is about to be deleted, and a cleanup path must not
   fail on a simulated write error). *)

module Governor = Qf_governor.Governor
module Fault = Qf_governor.Fault

type run = { file : Heap_file.t; path : string; mutable rows : int }

(* A small pager cache per run: spill partitions are written once and
   scanned once, so a large cache would only delay the page writes the
   fault sweep wants to see. *)
let run_capacity = 4

let create g schema =
  let path = Governor.fresh_spill_path g in
  Fault.point "spill.create";
  { file = Heap_file.create ~capacity:run_capacity path schema; path; rows = 0 }

let add r tup =
  Heap_file.append r.file tup;
  r.rows <- r.rows + 1

let rows r = r.rows
let bytes r = Heap_file.page_count r.file * Page.size
let to_relation r = Heap_file.to_relation r.file

let discard r =
  Heap_file.discard r.file;
  try Sys.remove r.path with Sys_error _ -> ()

(* The kernels' common budget gate: reserve [need] bytes around the
   in-memory path, or hand control to the spill path when the reservation
   fails.  Ungoverned (or unbounded-budget) runs take the in-memory path
   with no accounting at all. *)
let governed ~need in_memory spill =
  match Governor.current () with
  | Some g when Governor.budget g < max_int ->
    if Governor.try_charge g need then
      Fun.protect ~finally:(fun () -> Governor.release g need) in_memory
    else spill g
  | _ -> in_memory ()

(* Partitions sized so one partition's working set targets about half the
   budget, clamped to [2, 256]. *)
let partition_count g ~need =
  let b = max 1 (Governor.budget g) in
  max 2 (min 256 ((4 * need / b) + 1))

(* Route every tuple of [rel] into [parts] runs by the hash of its key
   projection, so equal keys land in the same run.  Returns the runs;
   the caller must [discard] them (a [Fun.protect] finally). *)
let partition_by_key g rel ~positions ~parts =
  let runs = Array.init parts (fun _ -> create g (Relation.schema rel)) in
  Relation.iter
    (fun tup ->
      let h = Tuple.hash (Tuple.project positions tup) land max_int in
      add runs.(h mod parts) tup)
    rel;
  runs

let note_runs g runs =
  Governor.note_spill g
    ~partitions:(Array.length runs)
    ~bytes:(Array.fold_left (fun a r -> a + bytes r) 0 runs)
    ~rows:(Array.fold_left (fun a r -> a + rows r) 0 runs)
