module Pool = Qf_exec_pool.Pool
module Obs = Qf_obs.Obs
module Buf = Chunkrel.Buf
module Governor = Qf_governor.Governor

(* Span wrapper shared by the three join kinds: probe/build sizes up
   front, output size on completion.  The disabled path costs one atomic
   load. *)
let observed kind a b compute =
  if not (Obs.enabled ()) then compute ()
  else
    Obs.with_span kind
      ~attrs:
        [
          "probe_rows", Obs.Int (Relation.cardinal a);
          "build_rows", Obs.Int (Relation.cardinal b);
        ]
      (fun () ->
        let out = compute () in
        Obs.set_attr "rows_out" (Obs.Int (Relation.cardinal out));
        out)

(* Join-target positions, hoisted once into [int array]s so the per-tuple
   work is pure array indexing (the old code re-ran the linear
   [Schema.position] scan through intermediate lists). *)
let positions_of_pairs a b pairs =
  let sa = Relation.schema a and sb = Relation.schema b in
  ( Array.of_list (List.map (fun (ca, _) -> Schema.position sa ca) pairs),
    Array.of_list (List.map (fun (_, cb) -> Schema.position sb cb) pairs) )

(* Output columns of [b] that are not join targets, renamed on collision
   with a column of [a] — or with another output column: ["c"] from [b]
   colliding with ["c"] from [a] becomes ["c_2"], and if ["c_2"] is also
   taken (say [b] itself has a ["c_2"] column) the suffix escalates to
   ["c_3"], ["c_4"], ... so the output schema never has duplicates. *)
let residual_columns a b pairs =
  let sa = Relation.schema a and sb = Relation.schema b in
  let joined = Hashtbl.create 8 in
  List.iter (fun (_, cb) -> Hashtbl.replace joined cb ()) pairs;
  let used = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace used c ()) (Schema.columns sa);
  let residual_base =
    List.filter (fun c -> not (Hashtbl.mem joined c)) (Schema.columns sb)
  in
  (* Names any residual keeps verbatim are reserved up front, so an early
     rename cannot steal a later residual's own name. *)
  List.iter
    (fun c -> if not (Hashtbl.mem used c) then Hashtbl.replace used c ())
    residual_base;
  List.map
    (fun c ->
      let out =
        if Schema.mem sa c then begin
          let rec fresh i =
            let candidate = Printf.sprintf "%s_%d" c i in
            if Hashtbl.mem used candidate then fresh (i + 1) else candidate
          in
          let name = fresh 2 in
          Hashtbl.replace used name ();
          name
        end
        else c
      in
      c, out)
    residual_base

(* Probe-side SIP prechecks: [(pos, reducer)] pairs over [a]'s columns.
   A probe row failing a reducer cannot match the build side (the caller
   guarantees each reducer over-approximates [b]'s values at the paired
   column), so it is skipped before the chain walk.  Reducers never
   change the result set — only the work — and emit no counters of their
   own here, so join outputs and metrics stay deterministic. *)
let sip_checks_cols ca sip =
  let checks =
    Array.of_list
      (List.map (fun (p, s) -> ca.Chunkrel.cols.(p), s) sip)
  in
  let n = Array.length checks in
  fun i ->
    let rec loop k =
      k >= n
      ||
      let col, s = Array.unsafe_get checks k in
      Sip.mem s (Array.unsafe_get col i) && loop (k + 1)
    in
    loop 0

let sip_pass_row sip tup =
  List.for_all (fun (p, s) -> Sip.mem_value s (Tuple.get tup p)) sip

let use_pool pool n threshold =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if Pool.size pool > 1 && n >= threshold then Some pool else None

let threshold_of = function
  | Some v -> v
  | None -> Pool.par_threshold ()

(* {1 Columnar probe machinery}

   Both kinds of probe walk the build side's bucket chains comparing raw
   key codes; no tuple is ever materialized.  Over set-semantics inputs
   the outputs below are automatically duplicate-free:

   - equi output rows are [a]-row ++ residual([b]-row); two matches with
     the same [a] row come from distinct [b] rows agreeing on every join
     column, which therefore differ in some residual column;
   - semi/anti outputs are subsets of [a]'s rows.

   So the merges are bare [Array.blit]s of per-chunk index buffers, with
   no output-side hash set at all. *)

(* Per-probe-row chain walk: calls [emit j] for every matching build row. *)
let probe_chain (ci : Index.code_index) akey_cols i emit =
  let h = ref 17 in
  let nk = Array.length akey_cols in
  for k = 0 to nk - 1 do
    h := Chunkrel.mix !h (Array.unsafe_get (Array.unsafe_get akey_cols k) i)
  done;
  let j = ref (Array.unsafe_get ci.Index.heads (!h land ci.Index.mask)) in
  while !j >= 0 do
    let bj = !j in
    let rec eq k =
      k >= nk
      || Array.unsafe_get (Array.unsafe_get akey_cols k) i
         = Array.unsafe_get (Array.unsafe_get ci.Index.key_cols k) bj
         && eq (k + 1)
    in
    if eq 0 then emit bj;
    j := Array.unsafe_get ci.Index.next bj
  done

let chain_mem ci akey_cols i =
  let found = ref false in
  (* Cheap early exit is not worth a second walk implementation: chains
     are short under a well-sized radix table. *)
  probe_chain ci akey_cols i (fun _ -> found := true);
  !found

let merge_bufs chunks =
  let total = List.fold_left (fun a c -> a + Buf.length c) 0 chunks in
  let dst = Array.make total 0 in
  let pos = ref 0 in
  List.iter (fun c -> pos := Buf.blit_into c dst !pos) chunks;
  dst

(* {1 Equi-join}

   Build one radix/bucket-chained index on [b]'s key codes, then probe
   with [a]'s key codes.  The parallel path partitions the probe side
   into per-domain chunks, each emitting an interleaved (probe row,
   build row) pair buffer; buffers merge by blit and the output columns
   are gathered once. *)

let equi_cols ?pool ?par_threshold ~sip a b pos_a pos_b residual out_schema =
  let ca = Relation.codes a in
  let ci = Index.code_index (Index.build b (Array.to_list pos_b)) in
  let akey_cols = Array.map (fun p -> ca.Chunkrel.cols.(p)) pos_a in
  let sip_pass = sip_checks_cols ca sip in
  let sb = Relation.schema b in
  let residual_pos =
    Array.of_list (List.map (fun (c, _) -> Schema.position sb c) residual)
  in
  let n = ca.Chunkrel.nrows in
  let pairs =
    match use_pool pool n (threshold_of par_threshold) with
    | None ->
      let buf = Buf.create (2 * n) in
      for i = 0 to n - 1 do
        if sip_pass i then
          probe_chain ci akey_cols i (fun j -> Buf.push2 buf i j)
      done;
      Buf.to_array buf
    | Some pool ->
      Pool.run_chunks pool ~n (fun ~lo ~hi ->
          let buf = Buf.create (2 * (hi - lo)) in
          for i = lo to hi - 1 do
            if sip_pass i then
              probe_chain ci akey_cols i (fun j -> Buf.push2 buf i j)
          done;
          buf)
      |> merge_bufs
  in
  let m = Array.length pairs / 2 in
  let pa = Array.init m (fun k -> pairs.(2 * k)) in
  let pb = Array.init m (fun k -> pairs.((2 * k) + 1)) in
  let out_cols =
    Array.append
      (Chunkrel.gather_cols ca.Chunkrel.cols pa)
      (Chunkrel.gather_cols
         (Array.map (fun p -> ci.Index.chunk.Chunkrel.cols.(p)) residual_pos)
         pb)
  in
  Relation.of_chunkrel out_schema
    { Chunkrel.nrows = m; cols = out_cols; rows_cache = None }

let equi_rows ?pool ?par_threshold ~sip a b pos_a pos_b residual out_schema =
  let sb = Relation.schema b in
  let residual_pos =
    Array.of_list (List.map (fun (c, _) -> Schema.position sb c) residual)
  in
  let out = Relation.create out_schema in
  let idx = Index.build b (Array.to_list pos_b) in
  let probe ta emit =
    if sip_pass_row sip ta then begin
      let key = Tuple.project pos_a ta in
      List.iter
        (fun tb -> emit (Tuple.append ta (Tuple.project residual_pos tb)))
        (Index.lookup idx key)
    end
  in
  (match use_pool pool (Relation.cardinal a) (threshold_of par_threshold) with
  | None -> Relation.iter (fun ta -> probe ta (Relation.add out)) a
  | Some pool ->
    let tuples = Relation.to_array a in
    let produced =
      Pool.run_chunks pool ~n:(Array.length tuples) (fun ~lo ~hi ->
          let acc = ref [] in
          for i = lo to hi - 1 do
            probe tuples.(i) (fun tup -> acc := tup :: !acc)
          done;
          !acc)
    in
    List.iter (List.iter (Relation.add out)) produced);
  out

(* {1 Grace-style spilling equi-join}

   When the governed budget cannot hold the in-memory build index, both
   sides hash-partition by their join-key into temp heap-file runs
   (equal keys land in the same partition index on both sides), and each
   partition pair joins in memory under a per-partition charge.  Results
   are identical to the in-memory paths: partitions are disjoint by key,
   and set semantics dedups as usual.  SIP prechecks are skipped here —
   they only prune probe rows that cannot match, so the output is
   unchanged either way. *)
let spill_equi g a b pos_a pos_b residual out_schema =
  let sb = Relation.schema b in
  let residual_pos =
    Array.of_list (List.map (fun (c, _) -> Schema.position sb c) residual)
  in
  let out = Relation.create out_schema in
  let need = Relation.approx_bytes a + (2 * Relation.approx_bytes b) in
  let parts = Spill.partition_count g ~need in
  let runs_a = Spill.partition_by_key g a ~positions:pos_a ~parts in
  Fun.protect ~finally:(fun () -> Array.iter Spill.discard runs_a)
  @@ fun () ->
  let runs_b = Spill.partition_by_key g b ~positions:pos_b ~parts in
  Fun.protect ~finally:(fun () -> Array.iter Spill.discard runs_b)
  @@ fun () ->
  Spill.note_runs g runs_a;
  Spill.note_runs g runs_b;
  for i = 0 to parts - 1 do
    Governor.check ();
    let pa = Spill.to_relation runs_a.(i) in
    let pb = Spill.to_relation runs_b.(i) in
    let cost = Relation.approx_bytes pa + (2 * Relation.approx_bytes pb) in
    Governor.charge g cost;
    Fun.protect ~finally:(fun () -> Governor.release g cost) @@ fun () ->
    let idx = Index.build pb (Array.to_list pos_b) in
    Relation.iter
      (fun ta ->
        let key = Tuple.project pos_a ta in
        List.iter
          (fun tb ->
            Relation.add out (Tuple.append ta (Tuple.project residual_pos tb)))
          (Index.lookup idx key))
      pa
  done;
  out

let equi ?pool ?par_threshold ?(sip = []) a b pairs =
  observed "join.equi" a b @@ fun () ->
  Governor.check ();
  let pos_a, pos_b = positions_of_pairs a b pairs in
  let residual = residual_columns a b pairs in
  let out_schema =
    Schema.of_list (Schema.columns (Relation.schema a) @ List.map snd residual)
  in
  let in_memory () =
    match Layout.mode () with
    | Layout.Columnar ->
      equi_cols ?pool ?par_threshold ~sip a b pos_a pos_b residual out_schema
    | Layout.Row ->
      equi_rows ?pool ?par_threshold ~sip a b pos_a pos_b residual out_schema
  in
  (* The build-side index (plus the probe pairs) is what an in-memory
     equi-join holds beyond its inputs; charge that, spill when it does
     not fit. *)
  Spill.governed
    ~need:(2 * Relation.approx_bytes b)
    in_memory
    (fun g ->
      if Obs.enabled () then Obs.count "governor.spill.joins" 1;
      spill_equi g a b pos_a pos_b residual out_schema)

(* {1 Semi/anti joins} — membership filters over the probe side. *)

let filter_by_presence_cols ?pool ?par_threshold ~sip ~keep_matching a b pos_a
    pos_b =
  let ca = Relation.codes a in
  let ci = Index.code_index (Index.build b (Array.to_list pos_b)) in
  let akey_cols = Array.map (fun p -> ca.Chunkrel.cols.(p)) pos_a in
  let sip_pass = sip_checks_cols ca sip in
  let n = ca.Chunkrel.nrows in
  let kept =
    match use_pool pool n (threshold_of par_threshold) with
    | None ->
      let buf = Buf.create n in
      for i = 0 to n - 1 do
        if sip_pass i && chain_mem ci akey_cols i = keep_matching then
          Buf.push buf i
      done;
      Buf.to_array buf
    | Some pool ->
      Pool.run_chunks pool ~n (fun ~lo ~hi ->
          let buf = Buf.create (hi - lo) in
          for i = lo to hi - 1 do
            if sip_pass i && chain_mem ci akey_cols i = keep_matching then
              Buf.push buf i
          done;
          buf)
      |> merge_bufs
  in
  Relation.of_chunkrel (Relation.schema a) (Chunkrel.gather ca kept)

let filter_by_presence ?pool ?par_threshold ?(sip = []) ~keep_matching a b
    pairs =
  let pos_a, pos_b = positions_of_pairs a b pairs in
  match Layout.mode () with
  | Layout.Columnar ->
    filter_by_presence_cols ?pool ?par_threshold ~sip ~keep_matching a b pos_a
      pos_b
  | Layout.Row ->
    let idx = Index.build b (Array.to_list pos_b) in
    Relation.select ?pool ?par_threshold a (fun ta ->
        sip_pass_row sip ta
        &&
        let found = Index.mem idx (Tuple.project pos_a ta) in
        if keep_matching then found else not found)

let semi ?pool ?par_threshold ?sip a b pairs =
  observed "join.semi" a b @@ fun () ->
  Governor.check ();
  filter_by_presence ?pool ?par_threshold ?sip ~keep_matching:true a b pairs

let anti ?pool ?par_threshold a b pairs =
  observed "join.anti" a b @@ fun () ->
  Governor.check ();
  filter_by_presence ?pool ?par_threshold ~keep_matching:false a b pairs
