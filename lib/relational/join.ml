module Pool = Qf_exec_pool.Pool
module Obs = Qf_obs.Obs

(* Span wrapper shared by the three join kinds: probe/build sizes up
   front, output size on completion.  The disabled path costs one atomic
   load. *)
let observed kind a b compute =
  if not (Obs.enabled ()) then compute ()
  else
    Obs.with_span kind
      ~attrs:
        [
          "probe_rows", Obs.Int (Relation.cardinal a);
          "build_rows", Obs.Int (Relation.cardinal b);
        ]
      (fun () ->
        let out = compute () in
        Obs.set_attr "rows_out" (Obs.Int (Relation.cardinal out));
        out)

(* Join-target positions, hoisted once into [int array]s so the per-tuple
   work is pure array indexing (the old code re-ran the linear
   [Schema.position] scan through intermediate lists). *)
let positions_of_pairs a b pairs =
  let sa = Relation.schema a and sb = Relation.schema b in
  ( Array.of_list (List.map (fun (ca, _) -> Schema.position sa ca) pairs),
    Array.of_list (List.map (fun (_, cb) -> Schema.position sb cb) pairs) )

(* Output columns of [b] that are not join targets, renamed on collision
   with a column of [a] — or with another output column: ["c"] from [b]
   colliding with ["c"] from [a] becomes ["c_2"], and if ["c_2"] is also
   taken (say [b] itself has a ["c_2"] column) the suffix escalates to
   ["c_3"], ["c_4"], ... so the output schema never has duplicates. *)
let residual_columns a b pairs =
  let sa = Relation.schema a and sb = Relation.schema b in
  let joined = Hashtbl.create 8 in
  List.iter (fun (_, cb) -> Hashtbl.replace joined cb ()) pairs;
  let used = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace used c ()) (Schema.columns sa);
  let residual_base =
    List.filter (fun c -> not (Hashtbl.mem joined c)) (Schema.columns sb)
  in
  (* Names any residual keeps verbatim are reserved up front, so an early
     rename cannot steal a later residual's own name. *)
  List.iter
    (fun c -> if not (Hashtbl.mem used c) then Hashtbl.replace used c ())
    residual_base;
  List.map
    (fun c ->
      let out =
        if Schema.mem sa c then begin
          let rec fresh i =
            let candidate = Printf.sprintf "%s_%d" c i in
            if Hashtbl.mem used candidate then fresh (i + 1) else candidate
          in
          let name = fresh 2 in
          Hashtbl.replace used name ();
          name
        end
        else c
      in
      c, out)
    residual_base

let use_pool pool n threshold =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if Pool.size pool > 1 && n >= threshold then Some pool else None

let threshold_of = function
  | Some v -> v
  | None -> Pool.par_threshold ()

(* {1 Equi-join}

   Build one hash index on [b], then probe with [a]'s tuples.  The
   parallel path partitions the probe side into per-domain chunks, each
   of which emits an ordered output list; the merge dedupes through the
   result relation as usual.  The index is immutable during probing, so
   concurrent lookups are safe. *)

let equi ?pool ?par_threshold a b pairs =
  observed "join.equi" a b @@ fun () ->
  let pos_a, pos_b = positions_of_pairs a b pairs in
  let residual = residual_columns a b pairs in
  let sb = Relation.schema b in
  let residual_pos =
    Array.of_list (List.map (fun (c, _) -> Schema.position sb c) residual)
  in
  let out_schema =
    Schema.of_list (Schema.columns (Relation.schema a) @ List.map snd residual)
  in
  let out = Relation.create out_schema in
  let idx = Index.build b (Array.to_list pos_b) in
  let probe ta emit =
    let key = Tuple.project pos_a ta in
    List.iter
      (fun tb -> emit (Tuple.append ta (Tuple.project residual_pos tb)))
      (Index.lookup idx key)
  in
  (match use_pool pool (Relation.cardinal a) (threshold_of par_threshold) with
  | None -> Relation.iter (fun ta -> probe ta (Relation.add out)) a
  | Some pool ->
    let tuples = Relation.to_array a in
    let produced =
      Pool.run_chunks pool ~n:(Array.length tuples) (fun ~lo ~hi ->
          let acc = ref [] in
          for i = lo to hi - 1 do
            probe tuples.(i) (fun tup -> acc := tup :: !acc)
          done;
          !acc)
    in
    List.iter (List.iter (Relation.add out)) produced);
  out

(* {1 Semi/anti joins} — membership filters over the probe side. *)

let filter_by_presence ?pool ?par_threshold ~keep_matching a b pairs =
  let pos_a, pos_b = positions_of_pairs a b pairs in
  let idx = Index.build b (Array.to_list pos_b) in
  Relation.select ?pool ?par_threshold a (fun ta ->
      let found = Index.mem idx (Tuple.project pos_a ta) in
      if keep_matching then found else not found)

let semi ?pool ?par_threshold a b pairs =
  observed "join.semi" a b @@ fun () ->
  filter_by_presence ?pool ?par_threshold ~keep_matching:true a b pairs

let anti ?pool ?par_threshold a b pairs =
  observed "join.anti" a b @@ fun () ->
  filter_by_presence ?pool ?par_threshold ~keep_matching:false a b pairs
