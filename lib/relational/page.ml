let size = 4096
let header_size = 4
let slot_size = 4
let max_record_size = size - header_size - slot_size

type t = { bytes : Bytes.t }

let get_u16 t off =
  let lo = Char.code (Bytes.get t.bytes off) in
  let hi = Char.code (Bytes.get t.bytes (off + 1)) in
  (hi lsl 8) lor lo

let set_u16 t off x =
  Bytes.set t.bytes off (Char.chr (x land 0xFF));
  Bytes.set t.bytes (off + 1) (Char.chr ((x lsr 8) land 0xFF))

let slot_count t = get_u16 t 0
let free_offset t = get_u16 t 2

let create () =
  let t = { bytes = Bytes.make size '\000' } in
  set_u16 t 0 0;
  set_u16 t 2 size;
  t

let of_bytes bytes =
  if Bytes.length bytes <> size then failwith "Page.of_bytes: wrong length";
  let t = { bytes } in
  let n = slot_count t and free = free_offset t in
  if free > size || header_size + (n * slot_size) > free then
    failwith "Page.of_bytes: corrupt header";
  t

let to_bytes t = t.bytes
let count = slot_count

let free_space t =
  free_offset t - header_size - (slot_count t * slot_size) - slot_size

let add t record =
  let len = String.length record in
  if len > max_record_size then
    invalid_arg
      (Printf.sprintf "Page.add: record of %d bytes exceeds the page payload"
         len);
  if len > free_space t then false
  else begin
    let n = slot_count t in
    let record_off = free_offset t - len in
    Bytes.blit_string record 0 t.bytes record_off len;
    let slot_off = header_size + (n * slot_size) in
    set_u16 t slot_off record_off;
    set_u16 t (slot_off + 2) len;
    set_u16 t 0 (n + 1);
    set_u16 t 2 record_off;
    true
  end

let get t i =
  if i < 0 || i >= slot_count t then invalid_arg "Page.get: bad slot index";
  let slot_off = header_size + (i * slot_size) in
  let off = get_u16 t slot_off and len = get_u16 t (slot_off + 2) in
  Bytes.sub_string t.bytes off len

let iter f t =
  for i = 0 to slot_count t - 1 do
    f (get t i)
  done
