type 'v entry = {
  value : 'v;
  bytes : int;
  mutable last : int;  (** tick of the most recent find/add *)
}

type ('k, 'v) t = {
  table : ('k, 'v entry) Hashtbl.t;
  mutable budget : int;
  mutable total : int;
  mutable tick : int;
  mutable evicted : int;
}

let create ~budget =
  { table = Hashtbl.create 64; budget; total = 0; tick = 0; evicted = 0 }

let budget t = t.budget
let length t = Hashtbl.length t.table
let total_bytes t = t.total
let evictions t = t.evicted

let clear t =
  Hashtbl.reset t.table;
  t.total <- 0

let touch t e =
  t.tick <- t.tick + 1;
  e.last <- t.tick

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some e ->
    touch t e;
    Some e.value

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.table k;
    t.total <- t.total - e.bytes

(* Evict least-recently-used entries until the total fits the budget.
   The scan is O(n) per eviction — fine at catalog-cache sizes, and the
   simplicity keeps eviction order an obvious function of the ticks. *)
let evict_to_budget t =
  let n = ref 0 in
  while t.total > t.budget && Hashtbl.length t.table > 0 do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, oldest) when oldest.last <= e.last -> acc
          | _ -> Some (k, e))
        t.table None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
      remove t k;
      incr n
  done;
  t.evicted <- t.evicted + !n;
  !n

let set_budget t budget =
  t.budget <- budget;
  if budget = 0 then begin
    let n = Hashtbl.length t.table in
    clear t;
    t.evicted <- t.evicted + n;
    n
  end
  else evict_to_budget t

let add t k v ~bytes =
  if t.budget = 0 then 0
  else begin
    remove t k;
    let e = { value = v; bytes; last = 0 } in
    touch t e;
    Hashtbl.replace t.table k e;
    t.total <- t.total + bytes;
    evict_to_budget t
  end
