(** Columnar relation snapshots.

    A chunk stores [nrows] rows as one dictionary-encoded [int array] per
    attribute (see {!Dict}); code equality is value equality, so the hot
    kernels — hash joins, grouping, duplicate elimination — run entirely
    over flat integer arrays with no per-row allocation.  A chunk is
    immutable once built (the optional decoded-row cache is filled at most
    once, by the coordinating domain, before any parallel fan-out reads
    it); worker domains may read [cols] freely. *)

type t = {
  nrows : int;  (** explicit, so arity-0 relations keep their cardinality *)
  cols : int array array;  (** [arity] arrays of [nrows] codes *)
  mutable rows_cache : Tuple.t array option;
      (** decoded rows, filled lazily by {!rows} *)
}

(** Encode an array of (distinct) tuples, all of arity [arity].  The
    tuples double as the decoded-row cache. *)
val of_tuples : arity:int -> Tuple.t array -> t

(** The decoded rows (cached; treat as read-only). *)
val rows : t -> Tuple.t array

(** Decode a single row. *)
val tuple_at : t -> int -> Tuple.t

(** {1 Hashing}

    One mixing function shared by every code kernel (index build, probe,
    grouping, dedup), so an index built by one module can be probed by
    another: fold {!mix} over the key codes in key-position order. *)

val mix : int -> int -> int

(** [hash_key key_cols i] folds {!mix} over [key_cols.(k).(i)]. *)
val hash_key : int array array -> int -> int

(** [hash_codes codes] — same fold over an explicit key-code array
    (must agree with {!hash_key} for equal keys). *)
val hash_codes : int array -> int

(** {1 Row selection} *)

(** [gather t idxs] is the chunk of the rows of [t] at [idxs] (in that
    order), reusing the decoded-row cache when present. *)
val gather : t -> int array -> t

(** [gather_cols cols idxs] gathers bare column arrays. *)
val gather_cols : int array array -> int array -> int array array

(** [distinct_rows cols nrows] returns the indices of the first
    occurrence of each distinct row (order of first appearance). *)
val distinct_rows : int array array -> int -> int array

(** Smallest power of two [>= max 16 n]. *)
val hash_capacity : int -> int

(** {1 Growable int buffers} — the parallel kernels' per-chunk output
    substrate; chunks are merged by {!Buf.blit_into} with no per-row
    boxing. *)
module Buf : sig
  type buf

  val create : int -> buf
  val push : buf -> int -> unit
  val push2 : buf -> int -> int -> unit
  val length : buf -> int
  val get : buf -> int -> int
  val to_array : buf -> int array

  (** [blit_into b dst pos] copies [b]'s contents into [dst] at [pos]
      and returns the next free position. *)
  val blit_into : buf -> int array -> int -> int
end
