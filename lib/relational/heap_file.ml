type t = {
  pager : Pager.t;
  schema : Schema.t;
  mutable last_page : int;  (** id of the page currently receiving appends *)
}

let create ?capacity path schema =
  if Sys.file_exists path then Sys.remove path;
  let pager = Pager.open_file ?capacity path in
  let header_id, header = Pager.append pager in
  assert (header_id = 0);
  if not (Page.add header (Codec.schema_to_string schema)) then
    failwith "Heap_file.create: schema record exceeds a page";
  Pager.mark_dirty pager header_id;
  let first_id, _ = Pager.append pager in
  { pager; schema; last_page = first_id }

let open_existing ?capacity path =
  let pager = Pager.open_file ?capacity path in
  if Pager.page_count pager < 2 then
    failwith (Printf.sprintf "Heap_file.open: %s is not a heap file" path);
  let header = Pager.read pager 0 in
  if Page.count header < 1 then
    failwith (Printf.sprintf "Heap_file.open: %s has no schema record" path);
  let schema = Codec.schema_of_string (Page.get header 0) in
  { pager; schema; last_page = Pager.page_count pager - 1 }

let schema t = t.schema

let append t tup =
  (* Fault-injection site: appends are where spills write. *)
  Qf_governor.Fault.point "heap.append";
  if Tuple.arity tup <> Schema.arity t.schema then
    invalid_arg "Heap_file.append: arity mismatch";
  let record = Codec.tuple_to_string tup in
  let page = Pager.read t.pager t.last_page in
  if Page.add page record then Pager.mark_dirty t.pager t.last_page
  else begin
    let id, fresh = Pager.append t.pager in
    if not (Page.add fresh record) then
      invalid_arg "Heap_file.append: record exceeds the page payload";
    t.last_page <- id
  end

let iter f t =
  for id = 1 to Pager.page_count t.pager - 1 do
    Page.iter (fun record -> f (Codec.tuple_of_string record)) (Pager.read t.pager id)
  done

let to_relation t =
  let rel = Relation.create t.schema in
  iter (Relation.add rel) t;
  (* Load boundary: materialize the layout the kernels prefer, so the
     conversion cost is paid here and not inside the first query. *)
  Relation.prepare rel;
  rel

let append_relation t rel =
  if not (Schema.equal (Relation.schema rel) t.schema) then
    invalid_arg "Heap_file.append_relation: schema mismatch";
  Relation.iter (append t) rel

let cache_stats t = Pager.stats t.pager
let page_count t = Pager.page_count t.pager
let flush t = Pager.flush t.pager
let close t = Pager.close t.pager
let discard t = Pager.discard t.pager
