type t = {
  nrows : int;
  cols : int array array;
  mutable rows_cache : Tuple.t array option;
}

let of_tuples ~arity tuples =
  let n = Array.length tuples in
  let cols = Array.init arity (fun _ -> Array.make n 0) in
  Dict.with_encoder (fun encode ->
      for i = 0 to n - 1 do
        let tup = tuples.(i) in
        for c = 0 to arity - 1 do
          Array.unsafe_set (Array.unsafe_get cols c) i (encode (Tuple.get tup c))
        done
      done);
  { nrows = n; cols; rows_cache = Some tuples }

let tuple_at t i =
  let arity = Array.length t.cols in
  Tuple.of_array (Array.init arity (fun c -> Dict.decode t.cols.(c).(i)))

let rows t =
  match t.rows_cache with
  | Some r -> r
  | None ->
    let r = Array.init t.nrows (fun i -> tuple_at t i) in
    t.rows_cache <- Some r;
    r

(* {1 Hashing} — multiply/xor-shift combine over the key codes.

   Dictionary codes are small, dense integers, and every hash consumer
   masks down to the low bits of a power-of-two table, so the combine
   must avalanche into the low bits: fold the code in additively, spread
   it through the word with an odd multiplier, then fold the high half
   back down.  (A boost-style [h ^ (c + phi + shifts)] combine left the
   masked low bits so clustered that open-addressing grouping degenerated
   to thousands of probes per row on real workloads.) *)

let mix h c =
  let h = (h + c) * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 32)) land max_int

let hash_key key_cols i =
  let h = ref 17 in
  for k = 0 to Array.length key_cols - 1 do
    h := mix !h (Array.unsafe_get (Array.unsafe_get key_cols k) i)
  done;
  !h

let hash_codes codes =
  let h = ref 17 in
  for k = 0 to Array.length codes - 1 do
    h := mix !h (Array.unsafe_get codes k)
  done;
  !h

let hash_capacity n =
  let rec up c = if c >= n then c else up (c * 2) in
  up 16

(* {1 Row selection} *)

let gather_cols cols idxs =
  Array.map
    (fun col ->
      Array.init (Array.length idxs) (fun i ->
          Array.unsafe_get col (Array.unsafe_get idxs i)))
    cols

let gather t idxs =
  let rows_cache =
    match t.rows_cache with
    | Some r -> Some (Array.map (fun i -> r.(i)) idxs)
    | None -> None
  in
  { nrows = Array.length idxs; cols = gather_cols t.cols idxs; rows_cache }

let rows_equal cols i j =
  let rec loop c =
    c >= Array.length cols
    || Array.unsafe_get (Array.unsafe_get cols c) i
       = Array.unsafe_get (Array.unsafe_get cols c) j
       && loop (c + 1)
  in
  loop 0

(* Open-addressing dedup over code rows: slots hold a previously kept row
   index (or -1); linear probing. *)
let distinct_rows cols nrows =
  let cap = hash_capacity (2 * nrows) in
  let mask = cap - 1 in
  let slots = Array.make cap (-1) in
  let kept = Array.make nrows 0 in
  let k = ref 0 in
  for i = 0 to nrows - 1 do
    let h = ref (hash_key cols i land mask) in
    let stop = ref false in
    while not !stop do
      let j = Array.unsafe_get slots !h in
      if j = -1 then begin
        Array.unsafe_set slots !h i;
        kept.(!k) <- i;
        incr k;
        stop := true
      end
      else if rows_equal cols i j then stop := true
      else h := (!h + 1) land mask
    done
  done;
  Array.sub kept 0 !k

(* {1 Growable int buffers} *)

module Buf = struct
  type buf = { mutable data : int array; mutable len : int }

  let create n = { data = Array.make (max 8 n) 0; len = 0 }

  let grow b needed =
    let cap = max needed (2 * Array.length b.data) in
    let data = Array.make cap 0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data

  let push b x =
    if b.len = Array.length b.data then grow b (b.len + 1);
    Array.unsafe_set b.data b.len x;
    b.len <- b.len + 1

  let push2 b x y =
    if b.len + 2 > Array.length b.data then grow b (b.len + 2);
    Array.unsafe_set b.data b.len x;
    Array.unsafe_set b.data (b.len + 1) y;
    b.len <- b.len + 2

  let length b = b.len
  let get b i = b.data.(i)
  let to_array b = Array.sub b.data 0 b.len

  let blit_into b dst pos =
    Array.blit b.data 0 dst pos b.len;
    pos + b.len
end
