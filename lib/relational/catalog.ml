(* {1 Index cache}

   [Index.build] used to run from scratch on every join and FILTER step.
   The cache memoizes built indexes keyed by (relation identity, indexed
   positions) and remembers the relation version each entry was built
   against: a lookup whose stored version no longer matches the live
   relation is a miss and the rebuilt index replaces the stale entry, so
   mutation through {!Relation.add} invalidates soundly and stale entries
   never accumulate per (relation, positions) pair.

   The cache is shared between a catalog and its {!copy}s — keys carry
   the relation's own identity, so sharing across working copies is safe
   and is exactly what lets one plan's FILTER steps, the optimizer's
   candidate probes and the bench's per-support loops reuse each other's
   work.  A small mutex guards the table; parallel kernels only read
   indexes, never the cache.

   Residency is bounded by an LRU byte budget ([QF_INDEX_BUDGET],
   default 128 MiB) instead of the old wipe-everything entry cap: a
   mining run over many supports used to either grow without bound or
   lose the whole working set at once.  Evictions are counted
   ([index_cache.evict]). *)

type index_cache = {
  entries : (int * int list, int * Index.t) Lru.t;
  cache_mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

(* {1 Subplan memo}

   Cross-level memoization of FILTER-step outputs, keyed by the step's
   canonical signature (computed in [qf_core]'s [Stepsig]; the catalog
   only sees opaque strings).  The signature embeds each referenced
   relation's (id, version) pair, so mutation invalidates by key change —
   the same version-counter discipline as the index cache — and entries
   for dead versions age out through the LRU budget ([QF_MEMO_BUDGET],
   default 64 MiB; [0] disables memoization). *)

type memo = {
  memo_entries : (string, Relation.t) Lru.t;
  memo_mutex : Mutex.t;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

(* "512k", "64m", "2g", plain bytes, or "unbounded"; unset/garbage falls
   back to [default]. *)
let budget_of_env var ~default =
  match Sys.getenv_opt var with
  | None -> default
  | Some raw -> (
    let raw = String.trim raw in
    match String.lowercase_ascii raw with
    | "unbounded" | "inf" -> max_int
    | "" -> default
    | s ->
      let scale, digits =
        match s.[String.length s - 1] with
        | 'k' -> 1024, String.sub s 0 (String.length s - 1)
        | 'm' -> 1024 * 1024, String.sub s 0 (String.length s - 1)
        | 'g' -> 1024 * 1024 * 1024, String.sub s 0 (String.length s - 1)
        | _ -> 1, s
      in
      (match int_of_string_opt digits with
      | Some n when n >= 0 -> n * scale
      | Some _ | None -> default))

let default_index_budget = 128 * 1024 * 1024
let default_memo_budget = 64 * 1024 * 1024

type t = {
  relations : (string, Relation.t) Hashtbl.t;
  stats_cache : (string, int * int * Statistics.t) Hashtbl.t;
      (* (relation id, relation version, stats) — same version-counter
         discipline as the index cache: an entry computed against an older
         version (or a different relation re-bound under the same name) is
         a miss, so in-place {!Relation.add} mutation can never leak stale
         profiles into the analyzer, even through {!copy}s. *)
  indexes : index_cache;
  memo : memo;
}

let create () =
  {
    relations = Hashtbl.create 16;
    stats_cache = Hashtbl.create 16;
    indexes =
      {
        entries =
          Lru.create
            ~budget:(budget_of_env "QF_INDEX_BUDGET" ~default:default_index_budget);
        cache_mutex = Mutex.create ();
        hits = 0;
        misses = 0;
      };
    memo =
      {
        memo_entries =
          Lru.create
            ~budget:(budget_of_env "QF_MEMO_BUDGET" ~default:default_memo_budget);
        memo_mutex = Mutex.create ();
        memo_hits = 0;
        memo_misses = 0;
      };
  }

let add t name rel =
  Hashtbl.replace t.relations name rel;
  Hashtbl.remove t.stats_cache name

let remove t name =
  Hashtbl.remove t.relations name;
  Hashtbl.remove t.stats_cache name

let find_opt t name = Hashtbl.find_opt t.relations name

let find t name =
  match find_opt t name with
  | Some rel -> rel
  | None -> failwith (Printf.sprintf "Catalog.find: unknown relation %S" name)

let mem t name = Hashtbl.mem t.relations name
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []

let stats t name =
  let rel = find t name in
  let id = Relation.id rel and version = Relation.version rel in
  match Hashtbl.find_opt t.stats_cache name with
  | Some (cached_id, cached_version, s)
    when cached_id = id && cached_version = version ->
    s
  | Some _ | None ->
    let s = Statistics.of_relation rel in
    Hashtbl.replace t.stats_cache name (id, version, s);
    s

let index t rel positions =
  let c = t.indexes in
  let key = Relation.id rel, positions in
  let current = Relation.version rel in
  Mutex.lock c.cache_mutex;
  let cached =
    match Lru.find c.entries key with
    | Some (version, idx) when version = current ->
      c.hits <- c.hits + 1;
      Some idx
    | Some _ | None ->
      c.misses <- c.misses + 1;
      None
  in
  Mutex.unlock c.cache_mutex;
  (* Mirror the per-catalog counters into the global metrics so profiled
     runs report cache effectiveness without threading the catalog out. *)
  (if Qf_obs.Obs.enabled () then
     match cached with
     | Some _ -> Qf_obs.Obs.count "index_cache.hits" 1
     | None -> Qf_obs.Obs.count "index_cache.misses" 1);
  match cached with
  | Some idx -> idx
  | None ->
    let idx = Index.build rel positions in
    Mutex.lock c.cache_mutex;
    let evicted =
      Lru.add c.entries key (current, idx) ~bytes:(Index.approx_bytes idx)
    in
    Mutex.unlock c.cache_mutex;
    if evicted > 0 && Qf_obs.Obs.enabled () then
      Qf_obs.Obs.count "index_cache.evict" evicted;
    idx

let index_on t rel cols =
  index t rel (List.map (Schema.position (Relation.schema rel)) cols)

let index_stats t = t.indexes.hits, t.indexes.misses
let index_evictions t = Lru.evictions t.indexes.entries
let set_index_budget t budget = ignore (Lru.set_budget t.indexes.entries budget)

let reset_index_stats t =
  t.indexes.hits <- 0;
  t.indexes.misses <- 0

(* Per-logical-run attribution: the cache (and its counters) is shared
   across {!copy}s, so "hits of this run" must be computed as a delta
   against a mark taken on the same shared cache — resetting would
   destroy a concurrent run's baseline. *)
let index_stats_mark = index_stats

let index_stats_since t (h0, m0) =
  t.indexes.hits - h0, t.indexes.misses - m0

(* {1 Memo operations} *)

let memo_enabled t = Lru.budget t.memo.memo_entries > 0

let memo_find t key =
  if not (memo_enabled t) then None
  else begin
    let m = t.memo in
    Mutex.lock m.memo_mutex;
    let cached = Lru.find m.memo_entries key in
    (match cached with
    | Some _ -> m.memo_hits <- m.memo_hits + 1
    | None -> m.memo_misses <- m.memo_misses + 1);
    Mutex.unlock m.memo_mutex;
    (if Qf_obs.Obs.enabled () then
       match cached with
       | Some _ -> Qf_obs.Obs.count "memo.hit" 1
       | None -> Qf_obs.Obs.count "memo.miss" 1);
    cached
  end

let memo_add t key rel =
  if memo_enabled t then begin
    let m = t.memo in
    Mutex.lock m.memo_mutex;
    let evicted =
      Lru.add m.memo_entries key rel
        ~bytes:(Relation.approx_bytes rel + String.length key)
    in
    Mutex.unlock m.memo_mutex;
    if evicted > 0 && Qf_obs.Obs.enabled () then
      Qf_obs.Obs.count "memo.evict" evicted
  end

let memo_stats t =
  t.memo.memo_hits, t.memo.memo_misses, Lru.evictions t.memo.memo_entries

let memo_budget t = Lru.budget t.memo.memo_entries
let set_memo_budget t budget = ignore (Lru.set_budget t.memo.memo_entries budget)

let memo_clear t =
  Mutex.lock t.memo.memo_mutex;
  Lru.clear t.memo.memo_entries;
  Mutex.unlock t.memo.memo_mutex

let memo_bytes t = Lru.total_bytes t.memo.memo_entries

let copy t =
  {
    relations = Hashtbl.copy t.relations;
    stats_cache = Hashtbl.copy t.stats_cache;
    indexes = t.indexes;
    memo = t.memo;
  }

let pp ppf t =
  let sorted = List.sort String.compare (names t) in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf name ->
         Format.fprintf ppf "%s%a [%d tuples]" name Schema.pp
           (Relation.schema (find t name))
           (Relation.cardinal (find t name))))
    sorted
