(* {1 Index cache}

   [Index.build] used to run from scratch on every join and FILTER step.
   The cache memoizes built indexes keyed by (relation identity, indexed
   positions) and remembers the relation version each entry was built
   against: a lookup whose stored version no longer matches the live
   relation is a miss and the rebuilt index replaces the stale entry, so
   mutation through {!Relation.add} invalidates soundly and stale entries
   never accumulate per (relation, positions) pair.

   The cache is shared between a catalog and its {!copy}s — keys carry
   the relation's own identity, so sharing across working copies is safe
   and is exactly what lets one plan's FILTER steps, the optimizer's
   candidate probes and the bench's per-support loops reuse each other's
   work.  A small mutex guards the table; parallel kernels only read
   indexes, never the cache. *)

type index_cache = {
  entries : (int * int list, int * Index.t) Hashtbl.t;
  cache_mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

(* Dead relations (temporary plan-execution results) leave at most one
   entry per (id, positions); cap the table so pathological churn cannot
   grow it without bound. *)
let max_cache_entries = 1024

type t = {
  relations : (string, Relation.t) Hashtbl.t;
  stats_cache : (string, int * int * Statistics.t) Hashtbl.t;
      (* (relation id, relation version, stats) — same version-counter
         discipline as the index cache: an entry computed against an older
         version (or a different relation re-bound under the same name) is
         a miss, so in-place {!Relation.add} mutation can never leak stale
         profiles into the analyzer, even through {!copy}s. *)
  indexes : index_cache;
}

let create () =
  {
    relations = Hashtbl.create 16;
    stats_cache = Hashtbl.create 16;
    indexes =
      {
        entries = Hashtbl.create 64;
        cache_mutex = Mutex.create ();
        hits = 0;
        misses = 0;
      };
  }

let add t name rel =
  Hashtbl.replace t.relations name rel;
  Hashtbl.remove t.stats_cache name

let remove t name =
  Hashtbl.remove t.relations name;
  Hashtbl.remove t.stats_cache name

let find_opt t name = Hashtbl.find_opt t.relations name

let find t name =
  match find_opt t name with
  | Some rel -> rel
  | None -> failwith (Printf.sprintf "Catalog.find: unknown relation %S" name)

let mem t name = Hashtbl.mem t.relations name
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []

let stats t name =
  let rel = find t name in
  let id = Relation.id rel and version = Relation.version rel in
  match Hashtbl.find_opt t.stats_cache name with
  | Some (cached_id, cached_version, s)
    when cached_id = id && cached_version = version ->
    s
  | Some _ | None ->
    let s = Statistics.of_relation rel in
    Hashtbl.replace t.stats_cache name (id, version, s);
    s

let index t rel positions =
  let c = t.indexes in
  let key = Relation.id rel, positions in
  let current = Relation.version rel in
  Mutex.lock c.cache_mutex;
  let cached =
    match Hashtbl.find_opt c.entries key with
    | Some (version, idx) when version = current ->
      c.hits <- c.hits + 1;
      Some idx
    | Some _ | None ->
      c.misses <- c.misses + 1;
      None
  in
  Mutex.unlock c.cache_mutex;
  (* Mirror the per-catalog counters into the global metrics so profiled
     runs report cache effectiveness without threading the catalog out. *)
  (if Qf_obs.Obs.enabled () then
     match cached with
     | Some _ -> Qf_obs.Obs.count "index_cache.hits" 1
     | None -> Qf_obs.Obs.count "index_cache.misses" 1);
  match cached with
  | Some idx -> idx
  | None ->
    let idx = Index.build rel positions in
    Mutex.lock c.cache_mutex;
    if Hashtbl.length c.entries >= max_cache_entries then
      Hashtbl.reset c.entries;
    Hashtbl.replace c.entries key (current, idx);
    Mutex.unlock c.cache_mutex;
    idx

let index_on t rel cols =
  index t rel (List.map (Schema.position (Relation.schema rel)) cols)

let index_stats t = t.indexes.hits, t.indexes.misses

let reset_index_stats t =
  t.indexes.hits <- 0;
  t.indexes.misses <- 0

(* Per-logical-run attribution: the cache (and its counters) is shared
   across {!copy}s, so "hits of this run" must be computed as a delta
   against a mark taken on the same shared cache — resetting would
   destroy a concurrent run's baseline. *)
let index_stats_mark = index_stats

let index_stats_since t (h0, m0) =
  t.indexes.hits - h0, t.indexes.misses - m0

let copy t =
  {
    relations = Hashtbl.copy t.relations;
    stats_cache = Hashtbl.copy t.stats_cache;
    indexes = t.indexes;
  }

let pp ppf t =
  let sorted = List.sort String.compare (names t) in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf name ->
         Format.fprintf ppf "%s%a [%d tuples]" name Schema.pp
           (Relation.schema (find t name))
           (Relation.cardinal (find t name))))
    sorted
