module Pool = Qf_exec_pool.Pool

type code_index = {
  heads : int array;
  next : int array;
  mask : int;
  key_cols : int array array;
  chunk : Chunkrel.t;
}

(* The snapshot the index was built against: both sides (the tuple-keyed
   group table and the bucket-chained code index) are derivable from it,
   so whichever side a caller asks for reflects the same tuple set even
   if the source relation mutates later. *)
type source =
  | Rows of Tuple.t array
  | Chunk of Chunkrel.t

type t = {
  positions : int array;
  source : source;
  mutable groups : Tuple.t list ref Tuple.Table.t option;
  mutable cidx : code_index option;
}

(* {1 Code-index build}

   The bucket array is the radix table: a row's key hash, masked to the
   table size, names its partition; rows sharing a partition chain
   through [next].  Build is one pass and allocation-free beyond the two
   arrays.  Above the parallel threshold the key hashes are precomputed
   in parallel (disjoint writes per chunk); the chaining pass itself is
   sequential and memory-bound.  Tiny build sides skip the partitioned
   hash pass entirely. *)

let build_code_index (chunk : Chunkrel.t) positions =
  let n = chunk.Chunkrel.nrows in
  let key_cols = Array.map (fun p -> chunk.Chunkrel.cols.(p)) positions in
  let cap = Chunkrel.hash_capacity n in
  let mask = cap - 1 in
  let heads = Array.make cap (-1) in
  let next = Array.make (max 1 n) (-1) in
  let pool = Pool.default () in
  if Pool.size pool > 1 && n >= Pool.par_threshold () then begin
    let hashes = Array.make n 0 in
    ignore
      (Pool.run_chunks pool ~n (fun ~lo ~hi ->
           for i = lo to hi - 1 do
             hashes.(i) <- Chunkrel.hash_key key_cols i
           done));
    for i = 0 to n - 1 do
      let b = hashes.(i) land mask in
      next.(i) <- heads.(b);
      heads.(b) <- i
    done
  end
  else
    for i = 0 to n - 1 do
      let b = Chunkrel.hash_key key_cols i land mask in
      next.(i) <- heads.(b);
      heads.(b) <- i
    done;
  { heads; next; mask; key_cols; chunk }

let build_groups positions tuples =
  let groups =
    Tuple.Table.create (max 16 (Array.length tuples / 4))
  in
  Array.iter
    (fun tup ->
      let key = Tuple.project positions tup in
      match Tuple.Table.find_opt groups key with
      | Some cell -> cell := tup :: !cell
      | None -> Tuple.Table.add groups key (ref [ tup ]))
    tuples;
  groups

let build rel positions =
  let positions = Array.of_list positions in
  match Layout.mode () with
  | Layout.Columnar ->
    let chunk = Relation.codes rel in
    {
      positions;
      source = Chunk chunk;
      groups = None;
      cidx = Some (build_code_index chunk positions);
    }
  | Layout.Row ->
    let tuples = Relation.to_array rel in
    {
      positions;
      source = Rows tuples;
      groups = Some (build_groups positions tuples);
      cidx = None;
    }

let build_on rel cols =
  build rel (List.map (Schema.position (Relation.schema rel)) cols)

let positions t = Array.to_list t.positions

let ensure_groups t =
  match t.groups with
  | Some g -> g
  | None ->
    let tuples =
      match t.source with
      | Rows tuples -> tuples
      | Chunk chunk -> Chunkrel.rows chunk
    in
    let g = build_groups t.positions tuples in
    t.groups <- Some g;
    g

let code_index t =
  match t.cidx with
  | Some ci -> ci
  | None ->
    let chunk =
      match t.source with
      | Chunk chunk -> chunk
      | Rows tuples ->
        let arity =
          if Array.length tuples = 0 then
            (* No rows to measure: key columns are all that matter and
               every position array is empty anyway. *)
            1 + Array.fold_left max (-1) t.positions
          else Tuple.arity tuples.(0)
        in
        Chunkrel.of_tuples ~arity tuples
    in
    let ci = build_code_index chunk t.positions in
    t.cidx <- Some ci;
    ci

(* Same layout-independence rule as [Relation.approx_bytes]: the formula
   sees only row and key-column counts, which both layouts agree on. *)
let approx_bytes t =
  let rows =
    match t.source with
    | Rows tuples -> Array.length tuples
    | Chunk chunk -> chunk.Chunkrel.nrows
  in
  (16 * (Array.length t.positions + 2) * rows) + 256

let lookup t key =
  match Tuple.Table.find_opt (ensure_groups t) key with
  | Some l -> !l
  | None -> []

let mem t key = Tuple.Table.mem (ensure_groups t) key
let key_count t = Tuple.Table.length (ensure_groups t)

let iter_groups f t =
  Tuple.Table.iter (fun key cell -> f key !cell) (ensure_groups t)
