type t = { positions : int array; groups : Tuple.t list ref Tuple.Table.t }

(* Group lists live behind a ref cell so inserting into an existing group
   is one cell mutation — the old [find_opt] + [replace] pattern paid two
   hashtable traversals per tuple. *)
let build rel positions =
  let positions = Array.of_list positions in
  let groups = Tuple.Table.create (max 16 (Relation.cardinal rel / 4)) in
  Relation.iter
    (fun tup ->
      let key = Tuple.project positions tup in
      match Tuple.Table.find_opt groups key with
      | Some cell -> cell := tup :: !cell
      | None -> Tuple.Table.add groups key (ref [ tup ]))
    rel;
  { positions; groups }

let build_on rel cols =
  build rel (List.map (Schema.position (Relation.schema rel)) cols)

let positions t = Array.to_list t.positions

let lookup t key =
  match Tuple.Table.find_opt t.groups key with Some l -> !l | None -> []

let mem t key = Tuple.Table.mem t.groups key
let key_count t = Tuple.Table.length t.groups
let iter_groups f t = Tuple.Table.iter (fun key cell -> f key !cell) t.groups
