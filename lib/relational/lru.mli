(** Byte-budgeted LRU tables — the shared eviction policy behind the
    {!Catalog} index cache and subplan memo table.

    Each entry carries an approximate byte size supplied at {!add}; when
    the running total exceeds the budget, least-recently-{!find}ed (or
    added) entries are evicted until it fits again.  Recency is a
    monotone tick bumped on every hit and insertion, so eviction order is
    a deterministic function of the operation sequence — the property the
    cross-pool-size determinism tests rely on.

    A budget of [0] disables the table entirely ({!add} is a no-op and
    {!find} always misses); [max_int] means unbounded.  The table itself
    is not synchronized — callers guard it with their own mutex, exactly
    as the catalog does for its caches. *)

type ('k, 'v) t

(** [create ~budget] — an empty table allowed [budget] bytes. *)
val create : budget:int -> ('k, 'v) t

val budget : ('k, 'v) t -> int

(** Change the budget; shrinking evicts immediately.  Returns the number
    of entries evicted. *)
val set_budget : ('k, 'v) t -> int -> int

(** Lookup; a hit refreshes the entry's recency. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v ~bytes] inserts (or replaces) the binding and evicts down
    to the budget.  Returns the number of entries evicted — including the
    new entry itself when [bytes] alone exceeds the budget.  A no-op
    returning [0] when the budget is [0]. *)
val add : ('k, 'v) t -> 'k -> 'v -> bytes:int -> int

(** Number of live entries. *)
val length : ('k, 'v) t -> int

(** Sum of the live entries' declared sizes. *)
val total_bytes : ('k, 'v) t -> int

(** Evictions performed since {!create} (by {!add} and {!set_budget}). *)
val evictions : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit
