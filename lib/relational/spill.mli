(** Spill runs: temp heap files for the governed kernels' partitioned
    fallbacks, living in the owning governor's spill directory (removed
    on every [Governor.with_ctx] exit). *)

type run

(** A fresh run in [g]'s spill directory. *)
val create : Qf_governor.Governor.t -> Schema.t -> run

val add : run -> Tuple.t -> unit
val rows : run -> int

(** Bytes occupied on disk (page granularity). *)
val bytes : run -> int

(** Materialize the run as an in-memory relation. *)
val to_relation : run -> Relation.t

(** Close (without flushing) and delete the run's file.  Never raises. *)
val discard : run -> unit

(** [governed ~need in_memory spill] — the kernels' budget gate: charge
    [need] bytes around [in_memory ()] when the ambient governor's budget
    allows (or when there is no governor / no finite budget), else run
    [spill g]. *)
val governed :
  need:int -> (unit -> 'a) -> (Qf_governor.Governor.t -> 'a) -> 'a

(** Partition count targeting about a quarter of the budget per partition,
    clamped to [2, 256]. *)
val partition_count : Qf_governor.Governor.t -> need:int -> int

(** Hash-partition [rel] by the key at [positions] into [parts] runs;
    equal keys land in the same run.  Caller must [discard] every run. *)
val partition_by_key :
  Qf_governor.Governor.t ->
  Relation.t ->
  positions:int array ->
  parts:int ->
  run array

(** Record the runs' sizes on the governor ([governor.spill.*]). *)
val note_runs : Qf_governor.Governor.t -> run array -> unit
