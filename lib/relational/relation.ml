module Pool = Qf_exec_pool.Pool

type t = {
  id : int;
  schema : Schema.t;
  tuples : unit Tuple.Table.t;
  mutable version : int;
}

(* Identity for the catalog's index cache: ids are process-unique, and
   [version] bumps on every successful insertion, so (id, version) names
   one immutable snapshot of the tuple set. *)
let next_id = Atomic.make 0

let create schema =
  {
    id = Atomic.fetch_and_add next_id 1;
    schema;
    tuples = Tuple.Table.create 64;
    version = 0;
  }

let id t = t.id
let version t = t.version
let schema t = t.schema
let arity t = Schema.arity t.schema
let cardinal t = Tuple.Table.length t.tuples
let is_empty t = cardinal t = 0

let add t tup =
  if Tuple.arity tup <> arity t then
    invalid_arg
      (Printf.sprintf "Relation.add: arity mismatch (%d vs %d)"
         (Tuple.arity tup) (arity t));
  if not (Tuple.Table.mem t.tuples tup) then begin
    Tuple.Table.add t.tuples tup ();
    t.version <- t.version + 1
  end

(* Internal: insert a tuple known to be absent and of the right arity
   (parallel kernels dedupe per hash partition before merging). *)
let unsafe_add_new t tup =
  Tuple.Table.add t.tuples tup ();
  t.version <- t.version + 1

let mem t tup = Tuple.Table.mem t.tuples tup
let iter f t = Tuple.Table.iter (fun tup () -> f tup) t.tuples
let fold f t init = Tuple.Table.fold (fun tup () acc -> f tup acc) t.tuples init
let to_list t = fold List.cons t []
let to_sorted_list t = List.sort Tuple.compare (to_list t)

let to_array t =
  let n = cardinal t in
  if n = 0 then [||]
  else begin
    let dst = Array.make n (Tuple.of_array [||]) in
    let i = ref 0 in
    iter
      (fun tup ->
        dst.(!i) <- tup;
        incr i)
      t;
    dst
  end

let of_list schema tuples =
  let rel = create schema in
  List.iter (add rel) tuples;
  rel

let of_values columns rows =
  of_list (Schema.of_list columns) (List.map Tuple.of_list rows)

(* {1 Parallel scan kernels}

   [select] and [project] partition the tuple array across the pool; each
   chunk produces an ordered list of outputs and the caller merges them.
   Selection preserves distinctness, so the merge can insert without
   membership probes; projection must still dedupe.  Both fall back to
   the plain sequential scan below [Pool.par_threshold] or on a pool of
   size 1, so results are identical sets either way. *)

let use_pool pool n threshold =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if Pool.size pool > 1 && n >= threshold then Some pool else None

let select ?pool ?par_threshold t pred =
  let out = create t.schema in
  let threshold =
    match par_threshold with Some v -> v | None -> Pool.par_threshold ()
  in
  (match use_pool pool (cardinal t) threshold with
  | None -> iter (fun tup -> if pred tup then unsafe_add_new out tup) t
  | Some pool ->
    let tuples = to_array t in
    let kept =
      Pool.run_chunks pool ~n:(Array.length tuples) (fun ~lo ~hi ->
          let acc = ref [] in
          for i = hi - 1 downto lo do
            let tup = tuples.(i) in
            if pred tup then acc := tup :: !acc
          done;
          !acc)
    in
    List.iter (List.iter (unsafe_add_new out)) kept);
  out

let project ?pool ?par_threshold t cols =
  let positions =
    Array.of_list (List.map (Schema.position t.schema) cols)
  in
  let out = create (Schema.restrict t.schema cols) in
  let threshold =
    match par_threshold with Some v -> v | None -> Pool.par_threshold ()
  in
  (match use_pool pool (cardinal t) threshold with
  | None -> iter (fun tup -> add out (Tuple.project positions tup)) t
  | Some pool ->
    let tuples = to_array t in
    let projected =
      Pool.run_chunks pool ~n:(Array.length tuples) (fun ~lo ~hi ->
          let acc = ref [] in
          for i = hi - 1 downto lo do
            acc := Tuple.project positions tuples.(i) :: !acc
          done;
          !acc)
    in
    List.iter (List.iter (add out)) projected);
  out

let union a b =
  if arity a <> arity b then invalid_arg "Relation.union: arity mismatch";
  let out = create a.schema in
  iter (add out) a;
  iter (add out) b;
  out

let diff a b =
  if arity a <> arity b then invalid_arg "Relation.diff: arity mismatch";
  let out = create a.schema in
  iter (fun tup -> if not (mem b tup) then unsafe_add_new out tup) a;
  out

let column_values t col =
  let pos = Schema.position t.schema col in
  let seen = Hashtbl.create 64 in
  fold
    (fun tup acc ->
      let v = Tuple.get tup pos in
      let key = Value.hash v, v in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        v :: acc
      end)
    t []

let equal a b =
  arity a = arity b
  && cardinal a = cardinal b
  && fold (fun tup ok -> ok && mem b tup) a true

let pp ppf t =
  Format.fprintf ppf "@[<v>%a: %d tuples@,%a@]" Schema.pp t.schema (cardinal t)
    (Format.pp_print_list Tuple.pp)
    (to_sorted_list t)
