module Pool = Qf_exec_pool.Pool

(* A relation is an abstract handle over two interchangeable physical
   layouts:

   - [table]: the row layout — a hash set of {!Tuple.t}s (the only layout
     that supports insertion and O(1) membership);
   - [chunk]: the columnar layout — a {!Chunkrel.t} of dictionary-encoded
     code columns, tagged with the relation [version] it snapshots.

   At least one layout is always present.  [codes] and [ensure_table]
   materialize the missing one lazily; kernels producing columnar output
   construct chunk-only relations through [of_chunkrel] and never build
   the row table unless someone asks for it.  Mutation ([add]) goes
   through the table and bumps [version], staling any cached chunk. *)

type t = {
  id : int;
  schema : Schema.t;
  mutable table : unit Tuple.Table.t option;
  mutable chunk : Chunkrel.t option;
  mutable chunk_version : int;
  mutable card : int;
  mutable version : int;
}

(* Identity for the catalog's index cache: ids are process-unique, and
   [version] bumps on every successful insertion, so (id, version) names
   one immutable snapshot of the tuple set. *)
let next_id = Atomic.make 0

let create schema =
  {
    id = Atomic.fetch_and_add next_id 1;
    schema;
    table = Some (Tuple.Table.create 64);
    chunk = None;
    chunk_version = 0;
    card = 0;
    version = 0;
  }

(* Internal constructor for kernel outputs whose rows are known distinct
   (selections, joins over set inputs, deduplicated projections). *)
let of_chunkrel schema (chunk : Chunkrel.t) =
  if Array.length chunk.Chunkrel.cols <> Schema.arity schema then
    invalid_arg "Relation.of_chunkrel: arity mismatch";
  {
    id = Atomic.fetch_and_add next_id 1;
    schema;
    table = None;
    chunk = Some chunk;
    chunk_version = 0;
    card = chunk.Chunkrel.nrows;
    version = 0;
  }

let id t = t.id
let version t = t.version
let schema t = t.schema
let arity t = Schema.arity t.schema
let cardinal t = t.card
let is_empty t = cardinal t = 0

let ensure_table t =
  match t.table with
  | Some tb -> tb
  | None ->
    let chunk = Option.get t.chunk in
    let tb = Tuple.Table.create (max 64 chunk.Chunkrel.nrows) in
    Array.iter (fun tup -> Tuple.Table.add tb tup ()) (Chunkrel.rows chunk);
    t.table <- Some tb;
    tb

(* The columnar snapshot of the current version, built from the row table
   on demand and cached until the next mutation. *)
let codes t =
  match t.chunk with
  | Some chunk when t.chunk_version = t.version -> chunk
  | _ ->
    let tb = ensure_table t in
    let n = Tuple.Table.length tb in
    let tuples = Array.make n (Tuple.of_array [||]) in
    let i = ref 0 in
    Tuple.Table.iter
      (fun tup () ->
        tuples.(!i) <- tup;
        incr i)
      tb;
    let chunk = Chunkrel.of_tuples ~arity:(arity t) tuples in
    t.chunk <- Some chunk;
    t.chunk_version <- t.version;
    chunk

let prepare t =
  match Layout.mode () with
  | Layout.Columnar -> ignore (codes t)
  | Layout.Row -> ignore (ensure_table t)

let add t tup =
  if Tuple.arity tup <> arity t then
    invalid_arg
      (Printf.sprintf "Relation.add: arity mismatch (%d vs %d)"
         (Tuple.arity tup) (arity t));
  let tb = ensure_table t in
  if not (Tuple.Table.mem tb tup) then begin
    Tuple.Table.add tb tup ();
    t.card <- t.card + 1;
    t.version <- t.version + 1
  end

(* Internal: insert a tuple known to be absent and of the right arity
   (parallel kernels dedupe per hash partition before merging). *)
let unsafe_add_new t tup =
  let tb = ensure_table t in
  Tuple.Table.add tb tup ();
  t.card <- t.card + 1;
  t.version <- t.version + 1

let mem t tup = Tuple.Table.mem (ensure_table t) tup

let iter f t =
  match t.table with
  | Some tb -> Tuple.Table.iter (fun tup () -> f tup) tb
  | None -> Array.iter f (Chunkrel.rows (Option.get t.chunk))

let fold f t init =
  match t.table with
  | Some tb -> Tuple.Table.fold (fun tup () acc -> f tup acc) tb init
  | None ->
    Array.fold_left
      (fun acc tup -> f tup acc)
      init
      (Chunkrel.rows (Option.get t.chunk))

let to_list t = fold List.cons t []
let to_sorted_list t = List.sort Tuple.compare (to_list t)

let to_array t =
  match t.table with
  | None -> Array.copy (Chunkrel.rows (Option.get t.chunk))
  | Some tb ->
    let n = Tuple.Table.length tb in
    if n = 0 then [||]
    else begin
      let dst = Array.make n (Tuple.of_array [||]) in
      let i = ref 0 in
      Tuple.Table.iter
        (fun tup () ->
          dst.(!i) <- tup;
          incr i)
        tb;
      dst
    end

let of_list schema tuples =
  let rel = create schema in
  List.iter (add rel) tuples;
  rel

let of_values columns rows =
  of_list (Schema.of_list columns) (List.map Tuple.of_list rows)

(* {1 Scan kernels}

   Two implementations each, chosen by {!Layout.mode}:

   - row: iterate the tuple table (parallel path: chunked tuple array,
     per-chunk output lists merged through the result's hash set);
   - columnar: a vectorized loop over the decoded row array that collects
     surviving row *indices* into pre-sized int buffers, merges them by
     [Array.blit], and gathers the output columns once.  Selection
     preserves distinctness, so no output hashing happens at all;
     projection deduplicates over code rows.

   Both fall back to sequential below [Pool.par_threshold] or on a pool
   of size 1, and all four paths produce the same result set. *)

let use_pool pool n threshold =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if Pool.size pool > 1 && n >= threshold then Some pool else None

let threshold_of = function
  | Some v -> v
  | None -> Pool.par_threshold ()

let select_rows ?pool ?par_threshold t pred =
  let out = create t.schema in
  (match use_pool pool (cardinal t) (threshold_of par_threshold) with
  | None -> iter (fun tup -> if pred tup then unsafe_add_new out tup) t
  | Some pool ->
    let tuples = to_array t in
    let kept =
      Pool.run_chunks pool ~n:(Array.length tuples) (fun ~lo ~hi ->
          let acc = ref [] in
          for i = hi - 1 downto lo do
            let tup = tuples.(i) in
            if pred tup then acc := tup :: !acc
          done;
          !acc)
    in
    List.iter (List.iter (unsafe_add_new out)) kept);
  out

(* Merge per-chunk index buffers into one pre-sized array. *)
let merge_index_chunks chunks =
  let total = List.fold_left (fun a c -> a + Chunkrel.Buf.length c) 0 chunks in
  let dst = Array.make total 0 in
  let pos = ref 0 in
  List.iter (fun c -> pos := Chunkrel.Buf.blit_into c dst !pos) chunks;
  dst

let select_cols ?pool ?par_threshold t pred =
  let chunk = codes t in
  let rows = Chunkrel.rows chunk in
  let n = chunk.Chunkrel.nrows in
  let kept =
    match use_pool pool n (threshold_of par_threshold) with
    | None ->
      let buf = Chunkrel.Buf.create n in
      for i = 0 to n - 1 do
        if pred rows.(i) then Chunkrel.Buf.push buf i
      done;
      Chunkrel.Buf.to_array buf
    | Some pool ->
      Pool.run_chunks pool ~n (fun ~lo ~hi ->
          let buf = Chunkrel.Buf.create (hi - lo) in
          for i = lo to hi - 1 do
            if pred rows.(i) then Chunkrel.Buf.push buf i
          done;
          buf)
      |> merge_index_chunks
  in
  of_chunkrel t.schema (Chunkrel.gather chunk kept)

let select ?pool ?par_threshold t pred =
  match Layout.mode () with
  | Layout.Row -> select_rows ?pool ?par_threshold t pred
  | Layout.Columnar -> select_cols ?pool ?par_threshold t pred

let project_rows ?pool ?par_threshold t cols positions =
  let out = create (Schema.restrict t.schema cols) in
  (match use_pool pool (cardinal t) (threshold_of par_threshold) with
  | None -> iter (fun tup -> add out (Tuple.project positions tup)) t
  | Some pool ->
    let tuples = to_array t in
    let projected =
      Pool.run_chunks pool ~n:(Array.length tuples) (fun ~lo ~hi ->
          let acc = ref [] in
          for i = hi - 1 downto lo do
            acc := Tuple.project positions tuples.(i) :: !acc
          done;
          !acc)
    in
    List.iter (List.iter (add out)) projected);
  out

(* Parallel columnar dedup: scatter row indices into [d] partitions by
   row hash (phase 1, chunked), then dedup each partition independently
   (distinct rows land in exactly one partition). *)
let distinct_rows_par pool pcols n =
  let d = Pool.size pool in
  let buckets_per_chunk =
    Pool.run_chunks pool ~n (fun ~lo ~hi ->
        let bufs =
          Array.init d (fun _ -> Chunkrel.Buf.create ((hi - lo) / d + 8))
        in
        for i = lo to hi - 1 do
          Chunkrel.Buf.push bufs.(Chunkrel.hash_key pcols i mod d) i
        done;
        bufs)
  in
  let kept_per_partition =
    Pool.run_all pool
      (List.init d (fun j () ->
           let candidates =
             merge_index_chunks
               (List.map (fun bufs -> bufs.(j)) buckets_per_chunk)
           in
           (* Dedup among the candidate indices with open addressing. *)
           let m = Array.length candidates in
           let cap = Chunkrel.hash_capacity (2 * m) in
           let mask = cap - 1 in
           let slots = Array.make cap (-1) in
           let buf = Chunkrel.Buf.create m in
           let ncols = Array.length pcols in
           let rows_equal i j =
             let rec loop c =
               c >= ncols
               || pcols.(c).(i) = pcols.(c).(j) && loop (c + 1)
             in
             loop 0
           in
           for k = 0 to m - 1 do
             let i = candidates.(k) in
             let h = ref (Chunkrel.hash_key pcols i land mask) in
             let stop = ref false in
             while not !stop do
               let j = slots.(!h) in
               if j = -1 then begin
                 slots.(!h) <- i;
                 Chunkrel.Buf.push buf i;
                 stop := true
               end
               else if rows_equal i j then stop := true
               else h := (!h + 1) land mask
             done
           done;
           buf))
  in
  merge_index_chunks kept_per_partition

let project_cols ?pool ?par_threshold t cols positions =
  let chunk = codes t in
  let n = chunk.Chunkrel.nrows in
  let pcols = Array.map (fun p -> chunk.Chunkrel.cols.(p)) positions in
  let kept =
    match use_pool pool n (threshold_of par_threshold) with
    | None -> Chunkrel.distinct_rows pcols n
    | Some pool -> distinct_rows_par pool pcols n
  in
  of_chunkrel
    (Schema.restrict t.schema cols)
    {
      Chunkrel.nrows = Array.length kept;
      cols = Chunkrel.gather_cols pcols kept;
      rows_cache = None;
    }

let project ?pool ?par_threshold t cols =
  let positions = Array.of_list (List.map (Schema.position t.schema) cols) in
  match Layout.mode () with
  | Layout.Row -> project_rows ?pool ?par_threshold t cols positions
  | Layout.Columnar -> project_cols ?pool ?par_threshold t cols positions

let union a b =
  if arity a <> arity b then invalid_arg "Relation.union: arity mismatch";
  let out = create a.schema in
  iter (add out) a;
  iter (add out) b;
  out

let diff a b =
  if arity a <> arity b then invalid_arg "Relation.diff: arity mismatch";
  let out = create a.schema in
  iter (fun tup -> if not (mem b tup) then unsafe_add_new out tup) a;
  out

let column_values t col =
  let pos = Schema.position t.schema col in
  match Layout.mode () with
  | Layout.Columnar ->
    (* Distinct codes of the column, decoded once each. *)
    let chunk = codes t in
    let col = chunk.Chunkrel.cols.(pos) in
    let kept = Chunkrel.distinct_rows [| col |] chunk.Chunkrel.nrows in
    Array.fold_left (fun acc i -> Dict.decode col.(i) :: acc) [] kept
  | Layout.Row ->
    let seen = Hashtbl.create 64 in
    fold
      (fun tup acc ->
        let v = Tuple.get tup pos in
        let key = Value.hash v, v in
        if Hashtbl.mem seen key then acc
        else begin
          Hashtbl.add seen key ();
          v :: acc
        end)
      t []

(* Budget accounting for the catalog's LRU caches.  Deliberately a
   function of (cardinal, arity) only — never of which physical layout
   happens to be materialized — so cache eviction order, and therefore
   the memo.evict counters, are identical across layouts. *)
let approx_bytes t = (16 * (arity t + 2) * cardinal t) + 256

let equal a b =
  arity a = arity b
  && cardinal a = cardinal b
  && fold (fun tup ok -> ok && mem b tup) a true

let pp ppf t =
  Format.fprintf ppf "@[<v>%a: %d tuples@,%a@]" Schema.pp t.schema (cardinal t)
    (Format.pp_print_list Tuple.pp)
    (to_sorted_list t)
