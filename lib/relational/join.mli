(** Generic joins between relations.

    The Datalog evaluator performs its own binding-passing joins; these
    free-standing operators serve the relational layer's own users (tests,
    the classic a-priori miner, CSV tooling) and the anti-join used to
    implement negated subgoals.

    Each operator builds one hash index on [b] and probes it with [a]'s
    tuples.  Above a cardinality threshold (default
    {!Qf_exec_pool.Pool.par_threshold}) and on a pool of size > 1, the
    probe side is partitioned across the pool's domains; the merged
    result is the same set as the sequential path.

    [equi] and [semi] accept optional sideways-information-passing
    reducers: [sip] pairs a probe-side column position with a {!Sip.t}
    that must {e over-approximate} [b]'s values at the corresponding join
    column.  Probe rows failing a reducer are skipped before the chain
    walk; because reducers have no false negatives, the result set is
    unchanged.  (The anti-join takes no reducers — skipping a probe row
    there would wrongly {e keep} it.) *)

(** [equi a b pairs] is the equi-join of [a] and [b] on the column pairs
    [(col_of_a, col_of_b)].  The result schema is [a]'s columns followed
    by [b]'s columns that are not join targets; duplicate output names
    from [b] are suffixed with ['_2'] (escalating to ['_3'], ... if the
    suffixed name is itself taken, so the output schema never contains a
    duplicate).  An empty [pairs] yields the cross product. *)
val equi :
  ?pool:Qf_exec_pool.Pool.t ->
  ?par_threshold:int ->
  ?sip:(int * Sip.t) list ->
  Relation.t ->
  Relation.t ->
  (string * string) list ->
  Relation.t

(** [semi a b pairs] keeps the tuples of [a] that join with at least one
    tuple of [b]. *)
val semi :
  ?pool:Qf_exec_pool.Pool.t ->
  ?par_threshold:int ->
  ?sip:(int * Sip.t) list ->
  Relation.t ->
  Relation.t ->
  (string * string) list ->
  Relation.t

(** [anti a b pairs] keeps the tuples of [a] that join with no tuple of
    [b] — the evaluation of a negated subgoal. *)
val anti :
  ?pool:Qf_exec_pool.Pool.t ->
  ?par_threshold:int ->
  Relation.t ->
  Relation.t ->
  (string * string) list ->
  Relation.t
