type entry = {
  page : Page.t;
  mutable dirty : bool;
  mutable last_used : int;  (** logical clock for LRU *)
}

type t = {
  channel_in : in_channel;
  channel_out : out_channel;
  capacity : int;
  cache : (int, entry) Hashtbl.t;
  mutable pages : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let open_file ?(capacity = 64) path =
  if capacity < 1 then invalid_arg "Pager.open_file: capacity must be >= 1";
  (* Create the file if missing, then open separate read/write channels on
     it (OCaml's stdlib has no single read-write channel). *)
  if not (Sys.file_exists path) then begin
    let oc = open_out_bin path in
    close_out oc
  end;
  let channel_in = open_in_bin path in
  let channel_out = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  let file_len = in_channel_length channel_in in
  if file_len mod Page.size <> 0 then
    failwith (Printf.sprintf "Pager: %s is not page-aligned" path);
  {
    channel_in;
    channel_out;
    capacity;
    cache = Hashtbl.create capacity;
    pages = file_len / Page.size;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let page_count t = t.pages

let write_page t id (page : Page.t) =
  (* Fault-injection site: a simulated device write error. *)
  Qf_governor.Fault.point "pager.write";
  seek_out t.channel_out (id * Page.size);
  output_bytes t.channel_out (Page.to_bytes page);
  (* Flush eagerly: the read channel is a separate descriptor on the same
     file, so buffered writes would be invisible to subsequent reads. *)
  Stdlib.flush t.channel_out

let evict_if_full t =
  if Hashtbl.length t.cache >= t.capacity then begin
    (* Evict the least recently used entry. *)
    let victim =
      Hashtbl.fold
        (fun id entry acc ->
          match acc with
          | Some (_, best) when best.last_used <= entry.last_used -> acc
          | _ -> Some (id, entry))
        t.cache None
    in
    match victim with
    | None -> ()
    | Some (id, entry) ->
      if entry.dirty then write_page t id entry.page;
      Hashtbl.remove t.cache id;
      t.evictions <- t.evictions + 1
  end

let touch t entry =
  t.clock <- t.clock + 1;
  entry.last_used <- t.clock

let read t id =
  if id < 0 || id >= t.pages then invalid_arg "Pager.read: page id out of range";
  match Hashtbl.find_opt t.cache id with
  | Some entry ->
    t.hits <- t.hits + 1;
    touch t entry;
    entry.page
  | None ->
    (* Fault-injection site: a simulated device read error on a miss. *)
    Qf_governor.Fault.point "pager.read";
    t.misses <- t.misses + 1;
    evict_if_full t;
    seek_in t.channel_in (id * Page.size);
    let bytes = Bytes.create Page.size in
    really_input t.channel_in bytes 0 Page.size;
    let entry = { page = Page.of_bytes bytes; dirty = false; last_used = 0 } in
    touch t entry;
    Hashtbl.replace t.cache id entry;
    entry.page

let mark_dirty t id =
  match Hashtbl.find_opt t.cache id with
  | Some entry -> entry.dirty <- true
  | None -> invalid_arg "Pager.mark_dirty: page not cached"

let append t =
  evict_if_full t;
  let id = t.pages in
  let page = Page.create () in
  t.pages <- t.pages + 1;
  let entry = { page; dirty = true; last_used = 0 } in
  touch t entry;
  Hashtbl.replace t.cache id entry;
  id, page

let stats t = t.hits, t.misses, t.evictions

let flush t =
  Hashtbl.iter
    (fun id entry ->
      if entry.dirty then begin
        write_page t id entry.page;
        entry.dirty <- false
      end)
    t.cache;
  Stdlib.flush t.channel_out

let close t =
  flush t;
  close_in_noerr t.channel_in;
  close_out_noerr t.channel_out

let discard t =
  close_in_noerr t.channel_in;
  close_out_noerr t.channel_out
