(** Sideways-information-passing reducers.

    A reducer is a compact, over-approximate membership summary of the
    values appearing in one column of a relation — typically the
    parameter column of a materialized [ok] step.  Downstream consumers
    (join probes, the evaluator's binding extension) test candidate
    values against the reducer {e before} doing the expensive work; a
    negative answer is definitive (no false negatives), a positive answer
    may be a false positive, so a reducer may only ever be used to skip
    work that a later exact operation (the ok-subgoal join itself) would
    discard anyway.

    Two representations, chosen by cardinality at {!of_column}:

    - an {e exact} dictionary-code set below {!exact_cutoff} — membership
      is exact, so pre-filtering with it is itself exact;
    - a {e Bloom filter} above the cutoff.  Bits are derived from
      {!Value.hash} of the {e decoded} value, never from the raw code:
      code assignment depends on the order relations were encoded, which
      differs across layouts, while value hashes do not — this keeps
      every derived row count identical across layouts, which the
      determinism suite checks.

    Reducers answer membership for both physical layouts: {!mem} takes a
    dictionary code (columnar kernels), {!mem_value} a decoded value (row
    kernels).  Both agree on every value. *)

type t

(** Representation switch: columns with at most this many distinct codes
    build exact sets. *)
val exact_cutoff : int

(** [of_column rel col] summarizes the distinct values of column [col].
    Counts one [sip.reducer_built] when observability is enabled. *)
val of_column : Relation.t -> string -> t

(** [of_values vs] summarizes an explicit value set (deduplicated) —
    exact below {!exact_cutoff}, Bloom above it.  Used by the dynamic
    executor's a-priori reducers, whose surviving-value sets come from an
    aggregation rather than a stored column.  Counts one
    [sip.reducer_built] when observability is enabled. *)
val of_values : Value.t array -> t

(** Exact code-set reducer over the given codes (no cutoff applied). *)
val exact_of_codes : int array -> t

(** Bloom reducer over the given codes (no cutoff applied) — exposed so
    property tests can force the approximate representation. *)
val bloom_of_codes : int array -> t

(** [true] for the exact representation (membership has no false
    positives). *)
val is_exact : t -> bool

(** Membership of a dictionary code.  Never a false negative. *)
val mem : t -> int -> bool

(** Membership of a decoded value; agrees with {!mem} on the value's
    code. *)
val mem_value : t -> Value.t -> bool

(** [filter rel ~pos t] keeps the rows whose column [pos] passes the
    reducer — the materialized pre-reduction of a base relation.  The
    result is exact when [t] is, a superset of the exact reduction
    otherwise. *)
val filter : Relation.t -> pos:int -> t -> Relation.t
