(** A buffer pool over one page file.

    Pages are cached with an LRU policy; writes mark the cached page dirty
    and are flushed on eviction, {!flush}, or {!close}.  Page ids are
    0-based file offsets in page units. *)

type t

(** Open (creating if absent) a page file.  [capacity] is the number of
    cached pages (default 64; at least 1). *)
val open_file : ?capacity:int -> string -> t

(** Number of pages currently in the file (including unflushed appended
    pages). *)
val page_count : t -> int

(** Fetch a page (from cache or disk).  Raises [Invalid_argument] on an
    out-of-range id. *)
val read : t -> int -> Page.t

(** Mark a fetched page dirty so eviction/flush persists it.  The page must
    have come from {!read} or {!append}. *)
val mark_dirty : t -> int -> unit

(** Append a fresh empty page; returns its id.  The page is dirty. *)
val append : t -> int * Page.t

(** Cache statistics: (hits, misses, evictions). *)
val stats : t -> int * int * int

val flush : t -> unit
val close : t -> unit

(** Close both channels {e without} flushing dirty pages — for files
    about to be deleted (spill runs), where flushing would only risk
    raising from a cleanup path. *)
val discard : t -> unit
