(** Set-semantics relations.

    A relation is a schema plus a set of tuples of matching arity.  Insertion
    of a duplicate tuple is a no-op, so every relation is duplicate-free — a
    requirement of the query-flocks formalism (the paper's claims fail under
    bag semantics).

    A relation is an abstract handle over two physical layouts — the row
    table of {!Tuple.t}s and the columnar {!Chunkrel.t} of
    dictionary-encoded code arrays — materialized lazily on demand (see
    {!Layout}).  Both layouts describe the same tuple set; the kernels
    pick their path per {!Layout.mode}. *)

type t

(** An empty, mutable relation with the given schema. *)
val create : Schema.t -> t

(** Wrap a columnar chunk whose rows are {e known distinct} (kernel
    outputs: selections, joins over set inputs, deduplicated
    projections).  The row table is built lazily if ever needed.  Raises
    [Invalid_argument] on an arity mismatch with the schema. *)
val of_chunkrel : Schema.t -> Chunkrel.t -> t

(** The columnar snapshot of the current version, built from the row
    table on first demand and cached until the next mutation.  The chunk
    is immutable; parallel kernels read it from worker domains. *)
val codes : t -> Chunkrel.t

(** Force materialization of the layout preferred by the current
    {!Layout.mode} (load boundaries call this so the first kernel does
    not pay the conversion mid-query). *)
val prepare : t -> unit

(** A process-unique identity, assigned at {!create}.  Together with
    {!version} it keys the catalog's index cache. *)
val id : t -> int

(** Monotonic modification counter: bumped on every insertion that
    actually changes the tuple set.  Cached indexes built against an
    older version are stale. *)
val version : t -> int

val schema : t -> Schema.t
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

(** [add rel tup] inserts [tup]; duplicates are ignored.  Raises
    [Invalid_argument] on an arity mismatch. *)
val add : t -> Tuple.t -> unit

val mem : t -> Tuple.t -> bool
val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Tuples in an unspecified order. *)
val to_list : t -> Tuple.t list

(** Tuples sorted by {!Tuple.compare}; convenient for golden tests. *)
val to_sorted_list : t -> Tuple.t list

(** Tuples in an unspecified order, as a fresh array (the parallel
    kernels' chunking substrate). *)
val to_array : t -> Tuple.t array

val of_list : Schema.t -> Tuple.t list -> t

(** Convenience: build from lists of value lists. *)
val of_values : string list -> Value.t list list -> t

(** [project rel cols] projects (with duplicate elimination) onto [cols].
    Runs on [pool] (default: the shared pool) when the relation has at
    least [par_threshold] tuples (default {!Qf_exec_pool.Pool.par_threshold})
    and the pool has size > 1; otherwise sequential.  The result set is
    identical either way. *)
val project :
  ?pool:Qf_exec_pool.Pool.t -> ?par_threshold:int -> t -> string list -> t

(** [select rel pred] keeps tuples satisfying [pred].  Parallel above the
    threshold, like {!project}; [pred] must then be pure and safe to call
    from several domains. *)
val select :
  ?pool:Qf_exec_pool.Pool.t ->
  ?par_threshold:int ->
  t ->
  (Tuple.t -> bool) ->
  t

(** Set union; schemas must have equal arity (result keeps [a]'s schema). *)
val union : t -> t -> t

(** Set difference [a - b]; arities must match. *)
val diff : t -> t -> t

(** Distinct values appearing in a column. *)
val column_values : t -> string -> Value.t list

(** Approximate in-memory size, for the catalog's LRU byte budgets.  A
    function of cardinality and arity only, never of the materialized
    layout — so budget-driven eviction behaves identically across
    layouts. *)
val approx_bytes : t -> int

(** [equal a b] — same set of tuples (schemas must have equal arity). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
