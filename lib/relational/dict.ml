module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* A published snapshot: codes [0, n) are valid indices into [arr].  The
   encoder republishes after every extension; [Atomic.set] is a release
   store and [Atomic.get] an acquire load, so a reader that obtained a
   code (through any happens-before edge — typically the pool's queue
   mutex) sees the corresponding array write. *)
type snapshot = { n : int; arr : Value.t array }

let table : int VH.t = VH.create 4096
let mutex = Mutex.create ()
let published : snapshot Atomic.t = Atomic.make { n = 0; arr = [||] }

(* Encoder-side state, guarded by [mutex]. *)
let live_arr = ref [||]
let live_n = ref 0

let publish () = Atomic.set published { n = !live_n; arr = !live_arr }

let encode_locked v =
  match VH.find_opt table v with
  | Some c -> c
  | None ->
    let n = !live_n in
    if n = Array.length !live_arr then begin
      let cap = max 1024 (2 * n) in
      let arr = Array.make cap (Value.Int 0) in
      Array.blit !live_arr 0 arr 0 n;
      live_arr := arr
    end;
    !live_arr.(n) <- v;
    live_n := n + 1;
    VH.add table v n;
    n

let encode v =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () ->
      publish ();
      Mutex.unlock mutex)
    (fun () -> encode_locked v)

let with_encoder f =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () ->
      publish ();
      Mutex.unlock mutex)
    (fun () -> f encode_locked)

let decode c =
  let s = Atomic.get published in
  if c < 0 || c >= s.n then
    invalid_arg (Printf.sprintf "Dict.decode: unknown code %d" c);
  Array.unsafe_get s.arr c

let size () = (Atomic.get published).n
