type mode =
  | Row
  | Columnar

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "row" | "rows" -> Some Row
  | "columnar" | "column" | "col" -> Some Columnar
  | _ -> None

let to_string = function Row -> "row" | Columnar -> "columnar"

let env_mode =
  lazy (Option.bind (Sys.getenv_opt "QF_LAYOUT") of_string)

let override : mode option ref = ref None
let set_override m = override := m

let mode () =
  match !override with
  | Some m -> m
  | None -> (
    match Lazy.force env_mode with Some m -> m | None -> Columnar)
