type t =
  | Int of int
  | Str of string
  | Real of float

(* {1 String interning}

   String-keyed workloads (items, symptoms, words) compare the same small
   set of strings over and over in hash probes.  Interning maps every
   distinct string to one canonical copy so equality can try pointer
   comparison before falling back to [String.equal].  The table is guarded
   by a mutex because tuple kernels may construct values on worker
   domains; [equal] itself never touches the table, so the fast path stays
   lock-free.  Interning is an optimization, not an invariant: [Str]
   values built without {!str} still compare correctly. *)

let intern_table : (string, string) Hashtbl.t = Hashtbl.create 1024
let intern_mutex = Mutex.create ()

let intern s =
  Mutex.lock intern_mutex;
  let canonical =
    match Hashtbl.find_opt intern_table s with
    | Some c -> c
    | None ->
      Hashtbl.add intern_table s s;
      s
  in
  Mutex.unlock intern_mutex;
  canonical

let str s = Str (intern s)
let interned_count () = Hashtbl.length intern_table

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Real x, Real y -> Float.compare x y
  | Int x, Real y ->
    let c = Float.compare (float_of_int x) y in
    if c <> 0 then c else -1
  | Real x, Int y ->
    let c = Float.compare x (float_of_int y) in
    if c <> 0 then c else 1
  | (Int _ | Real _), Str _ -> -1
  | Str _, (Int _ | Real _) -> 1

let equal a b =
  a == b
  ||
  match a, b with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> x == y || String.equal x y
  | Real x, Real y -> Float.equal x y
  | _, _ -> false

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)
  | Real f -> Hashtbl.hash (2, f)

let to_float = function
  | Int x -> Some (float_of_int x)
  | Real f -> Some f
  | Str _ -> None

let is_numeric = function Int _ | Real _ -> true | Str _ -> false

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Str s -> Format.fprintf ppf "%S" s
  | Real f -> Format.fprintf ppf "%g" f

let to_string v = Format.asprintf "%a" pp v

let of_string s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then str (String.sub s 1 (n - 2))
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with Some f -> Real f | None -> str s)
