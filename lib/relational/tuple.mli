(** Tuples: immutable sequences of {!Value.t} with a hash cached at
    construction.

    The cached hash makes every hashtable probe O(1) instead of O(arity)
    and gives {!equal} a constant-time negative fast path — the dominant
    operations of the join and aggregation kernels.  Construction always
    copies or freshly allocates the backing array; callers of {!of_array}
    transfer ownership and must not mutate the array afterwards. *)

type t

val arity : t -> int

(** [get t i] is the value at position [i].  Raises [Invalid_argument]
    out of range. *)
val get : t -> int -> Value.t

val compare : t -> t -> int
val equal : t -> t -> bool

(** The hash cached at construction (compatible with {!equal}). *)
val hash : t -> int

(** [project positions tup] extracts the values at [positions], in order.
    Positions are a pre-computed [int array] so hot paths hoist the
    schema lookups once.  Raises [Invalid_argument] if a position is out
    of range. *)
val project : int array -> t -> t

(** [append a b] concatenates two tuples. *)
val append : t -> t -> t

(** [of_array values] takes ownership of [values] — do not mutate it
    afterwards. *)
val of_array : Value.t array -> t

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val to_seq : t -> Value.t Seq.t
val pp : Format.formatter -> t -> unit

(** Hash tables keyed by tuples. *)
module Table : Hashtbl.S with type key = t
