let corrupt fmt = Format.kasprintf failwith fmt

let encode_int64 buf x =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xFF))
  done

let decode_int64 bytes off =
  if off + 8 > Bytes.length bytes then corrupt "Codec: truncated int64";
  let x = ref 0L in
  for i = 7 downto 0 do
    x := Int64.logor (Int64.shift_left !x 8)
           (Int64.of_int (Char.code (Bytes.get bytes (off + i))))
  done;
  !x, off + 8

let encode_u32 buf x =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((x lsr (8 * i)) land 0xFF))
  done

let decode_u32 bytes off =
  if off + 4 > Bytes.length bytes then corrupt "Codec: truncated u32";
  let x = ref 0 in
  for i = 3 downto 0 do
    x := (!x lsl 8) lor Char.code (Bytes.get bytes (off + i))
  done;
  !x, off + 4

let encode_u16 buf x =
  Buffer.add_char buf (Char.chr (x land 0xFF));
  Buffer.add_char buf (Char.chr ((x lsr 8) land 0xFF))

let decode_u16 bytes off =
  if off + 2 > Bytes.length bytes then corrupt "Codec: truncated u16";
  let lo = Char.code (Bytes.get bytes off) in
  let hi = Char.code (Bytes.get bytes (off + 1)) in
  (hi lsl 8) lor lo, off + 2

let encode_value buf = function
  | Value.Int i ->
    Buffer.add_char buf '\000';
    encode_int64 buf (Int64.of_int i)
  | Value.Real f ->
    Buffer.add_char buf '\001';
    encode_int64 buf (Int64.bits_of_float f)
  | Value.Str s ->
    Buffer.add_char buf '\002';
    encode_u32 buf (String.length s);
    Buffer.add_string buf s

let decode_value bytes off =
  if off >= Bytes.length bytes then corrupt "Codec: truncated value tag";
  match Bytes.get bytes off with
  | '\000' ->
    let x, off = decode_int64 bytes (off + 1) in
    Value.Int (Int64.to_int x), off
  | '\001' ->
    let x, off = decode_int64 bytes (off + 1) in
    Value.Real (Int64.float_of_bits x), off
  | '\002' ->
    let len, off = decode_u32 bytes (off + 1) in
    if off + len > Bytes.length bytes then corrupt "Codec: truncated string";
    (* Intern on decode: loaded relations get pointer-fast equality. *)
    Value.str (Bytes.sub_string bytes off len), off + len
  | c -> corrupt "Codec: bad value tag %C" c

let encode_tuple buf tup =
  encode_u16 buf (Tuple.arity tup);
  Seq.iter (encode_value buf) (Tuple.to_seq tup)

let decode_tuple bytes off =
  let arity, off = decode_u16 bytes off in
  (* Fail fast on a corrupt arity: every value needs at least its tag
     byte, so a claimed arity beyond the remaining bytes can never decode
     — reject it before allocating or scanning. *)
  if off + arity > Bytes.length bytes then
    corrupt "Codec: truncated tuple (arity %d)" arity;
  let values = Array.make arity (Value.Int 0) in
  let off = ref off in
  for i = 0 to arity - 1 do
    let v, next = decode_value bytes !off in
    values.(i) <- v;
    off := next
  done;
  Tuple.of_array values, !off

let tuple_to_string tup =
  let buf = Buffer.create 64 in
  encode_tuple buf tup;
  Buffer.contents buf

let tuple_of_string s =
  let tup, off = decode_tuple (Bytes.of_string s) 0 in
  if off <> String.length s then corrupt "Codec: trailing bytes after tuple";
  tup

let schema_to_string schema =
  tuple_to_string
    (Tuple.of_list (List.map (fun c -> Value.Str c) (Schema.columns schema)))

let schema_of_string s =
  Schema.of_list
    (List.map
       (function
         | Value.Str c -> c
         | v -> corrupt "Codec: bad schema entry %s" (Value.to_string v))
       (Tuple.to_list (tuple_of_string s)))
