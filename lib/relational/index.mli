(** Hash indexes on a subset of a relation's columns.

    An index maps a key (the tuple of values at the indexed positions) to
    the list of tuples carrying that key.  Indexes are built eagerly and
    are not maintained under later mutation of the source relation — the
    {!Catalog} index cache pairs each index with the relation version it
    was built against and rebuilds when stale.

    A built index is immutable, so concurrent lookups from several
    domains are safe; the parallel join kernels rely on this.

    An index serves two faces over the same snapshot: the tuple-keyed
    group table (the {!lookup}/{!iter_groups} API below) and the
    {!code_index} — a radix/bucket-chained structure over the columnar
    code arrays that the columnar kernels probe without allocating.  Per
    {!Layout.mode} one face is built eagerly at {!build}; the other is
    derived lazily from the captured snapshot on first demand. *)

type t

(** The code-side face: [heads.(h land mask)] starts a chain through
    [next] of the rows whose key codes hash to [h] (hash =
    {!Chunkrel.hash_key} over [key_cols], equivalently
    {!Chunkrel.hash_codes} of the key-code array in position order);
    [-1] terminates.  [key_cols] are the indexed columns of [chunk] in
    {!positions} order. *)
type code_index = {
  heads : int array;
  next : int array;
  mask : int;
  key_cols : int array array;
  chunk : Chunkrel.t;
}

(** The code-side face, built on first demand when the index was built
    in row mode. *)
val code_index : t -> code_index

(** [build rel positions] indexes [rel] on the columns at [positions]. *)
val build : Relation.t -> int list -> t

(** [build_on rel cols] indexes [rel] on the named columns. *)
val build_on : Relation.t -> string list -> t

(** The positions the index was built on. *)
val positions : t -> int list

(** Approximate in-memory size for the catalog's LRU byte budget; a
    function of row and key-column counts only (layout-independent, like
    {!Relation.approx_bytes}). *)
val approx_bytes : t -> int

(** Tuples whose indexed columns equal [key] (same order as the positions
    the index was built on). *)
val lookup : t -> Tuple.t -> Tuple.t list

(** [mem idx key] — does any tuple carry this key?  Cheaper than
    [lookup <> []] in spirit, identical in cost; provided for clarity. *)
val mem : t -> Tuple.t -> bool

(** Number of distinct keys. *)
val key_count : t -> int

(** [iter_groups f idx] calls [f key tuples] for every distinct key. *)
val iter_groups : (Tuple.t -> Tuple.t list -> unit) -> t -> unit
