(** Hash indexes on a subset of a relation's columns.

    An index maps a key (the tuple of values at the indexed positions) to
    the list of tuples carrying that key.  Indexes are built eagerly and
    are not maintained under later mutation of the source relation — the
    {!Catalog} index cache pairs each index with the relation version it
    was built against and rebuilds when stale.

    A built index is immutable, so concurrent lookups from several
    domains are safe; the parallel join kernels rely on this. *)

type t

(** [build rel positions] indexes [rel] on the columns at [positions]. *)
val build : Relation.t -> int list -> t

(** [build_on rel cols] indexes [rel] on the named columns. *)
val build_on : Relation.t -> string list -> t

(** The positions the index was built on. *)
val positions : t -> int list

(** Tuples whose indexed columns equal [key] (same order as the positions
    the index was built on). *)
val lookup : t -> Tuple.t -> Tuple.t list

(** [mem idx key] — does any tuple carry this key?  Cheaper than
    [lookup <> []] in spirit, identical in cost; provided for clarity. *)
val mem : t -> Tuple.t -> bool

(** Number of distinct keys. *)
val key_count : t -> int

(** [iter_groups f idx] calls [f key tuples] for every distinct key. *)
val iter_groups : (Tuple.t -> Tuple.t list -> unit) -> t -> unit
