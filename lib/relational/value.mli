(** Atomic values stored in relations.

    A value is an integer, a string, or a real number.  Values of different
    kinds never compare equal under {!equal} (set semantics distinguishes
    [Int 1] from [Real 1.0]), but {!compare} still orders numeric values of
    different kinds numerically so that arithmetic subgoals such as
    [$x < 3.5] behave as a user expects. *)

type t =
  | Int of int
  | Str of string
  | Real of float

(** Total order on values.  Within a kind the order is the natural one;
    across kinds, [Int] and [Real] are ordered numerically (ties broken with
    [Int] first) and every number precedes every string. *)
val compare : t -> t -> int

(** Structural equality: values of different kinds are never equal.
    Pointer-first: interned strings (see {!str}) usually decide with a
    physical comparison. *)
val equal : t -> t -> bool

(** [str s] is [Str (intern s)]: the canonical copy of [s], shared by
    every value built through {!str} or {!of_string}.  Equality between
    interned strings is (usually) a pointer comparison.  Thread-safe. *)
val str : string -> t

(** Number of distinct strings interned so far (for diagnostics). *)
val interned_count : unit -> int

(** Hash compatible with {!equal}. *)
val hash : t -> int

(** Numeric interpretation of a value, for SUM/MIN/MAX aggregates and
    arithmetic comparisons.  Strings have no numeric interpretation. *)
val to_float : t -> float option

(** [is_numeric v] is [true] for [Int] and [Real] values. *)
val is_numeric : t -> bool

val pp : Format.formatter -> t -> unit

(** Render the value as it would appear in a Datalog program: strings are
    quoted, numbers are printed plainly. *)
val to_string : t -> string

(** Parse a literal as it appears in source text or CSV: an integer, then a
    float, then (fallback) a string.  Surrounding double quotes on a string
    are stripped. *)
val of_string : string -> t
