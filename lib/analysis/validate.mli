(** Translation validation for optimizer rewrites.

    Every rewrite the system performs — CQ minimization (Sec. 3.1),
    subquery extraction into FILTER steps (Sec. 4.2), and the final-step
    lowering that stitches [ok]-subgoals back into the full query — is
    turned into proof obligations discharged with the
    {!Qf_datalog.Containment} engine (Chandra–Merlin containment
    mappings).  Unlike {!Plan_check}, which re-implements the paper's
    {e syntactic} plan-generation rule, this module proves the {e semantic}
    facts the rule exists to guarantee:

    + {e upper bound}: for every step and every rule [i], the flock's rule
      [i] is contained in the step's rule [i] with its [ok]-subgoals
      stripped — so each step tabulates a superset of the flock's groups
      and (with a monotone filter) its output over-approximates the
      surviving parameter tuples.  [ok]-subgoals met along the way
      generate the same obligation recursively under the composed
      parameter renaming, which is what proves the levelwise plans'
      symmetry-renamed references (footnote 3);
    + {e completeness}: the final step's rule [i] is contained in the
      flock's rule [i] — lowering dropped nothing, so the plan's result
      can't exceed the flock's;
    + {e pruning soundness}: plans with auxiliary steps carry a monotone
      filter (checked independently of {!Qf_core.Plan.make}).

    Together these imply plan ≡ flock by the paper's Sec. 4.2 argument.
    The validator is installed as a [Plan.make] auditor next to
    {!Plan_check} (see {!install}), so every plan the optimizer or the
    levelwise generator builds is proved, not trusted. *)

(** Prove [original ≡ minimized] (containment both ways).  Discharges the
    Sec. 3.1 minimization rewrite; used by the linter before it reports a
    subgoal as redundant. *)
val minimization :
  original:Qf_datalog.Ast.rule ->
  minimized:Qf_datalog.Ast.rule ->
  (unit, string) result

(** Validate a plan given as raw components, without going through
    [Plan.make] — the entry point for mutation tests that must be able to
    present deliberately corrupted rewrites. *)
val check :
  flock:Qf_core.Flock.t ->
  steps:Qf_core.Plan.step list ->
  final:Qf_core.Plan.step ->
  (unit, string) result

(** The auditor: {!check} applied to a constructed plan. *)
val verify : Qf_core.Plan.t -> (unit, string) result

(** Install both auditors — {!Plan_check.verify} under the name
    ["plan_check"] and {!verify} under ["validate"] — on
    {!Qf_core.Plan.make}.  Idempotent. *)
val install : unit -> unit
