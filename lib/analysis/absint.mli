(** Abstract interpretation of flock conditions over an interval +
    equality-constraint domain seeded from per-column catalog statistics
    ({!Qf_relational.Statistics.column_profile}).

    The analyzer assigns every variable, parameter, and constant of a rule
    an {e interval} of possible {!Qf_relational.Value.t}s, seeds the
    intervals from the certified min/max of the columns the term occurs in,
    and propagates arithmetic subgoals to a fixpoint.  From the resulting
    abstract state it derives three kinds of certificates:

    - {e dead-code certificates}: a rule (or a whole flock) whose abstract
      state is provably unsatisfiable can return no answers — surfaced as
      [QF07x] diagnostics by {!check_program};
    - {e cardinality certificates}: sound per-step upper bounds on the
      tabulated rows, candidate groups, and surviving assignments of every
      FILTER step of a plan ({!certify_plan}), usable as a
      [min(estimate, bound)] clamp on the cost model;
    - {e monotonicity certificates}: for [SUM] filters, whether the
      certified range of the summand column proves the non-negativity
      assumption behind {!Qf_core.Filter.is_monotone}
      ({!monotonicity}), strengthening the [QF061] verdict.

    Every verdict errs on the side of "don't know": intervals only shrink
    when the shrinking is provable from the catalog, bounds are infinite
    when a predicate is unknown, and dead-code verdicts are emitted only
    when unsatisfiability holds for {e every} database consistent with the
    catalog's statistics. *)

module Ast = Qf_datalog.Ast
module Value = Qf_relational.Value

(** {1 Interval domain} *)

(** One endpoint: the value and whether it is included; [None] is
    unbounded. *)
type bound = (Value.t * bool) option

(** The set of values [v] with [lo <= v <= hi] (strictness per endpoint).
    [{lo = None; hi = None}] is top. *)
type interval = { lo : bound; hi : bound }

val top : interval

(** Greatest lower bound (set intersection). *)
val meet : interval -> interval -> interval

(** Least upper bound (convex hull of the union). *)
val join : interval -> interval -> interval

(** Provably empty?  True only when emptiness holds over the {e dense}
    value order — [lo > hi], or [lo = hi] with a strict end — so the
    verdict is sound for every value kind. *)
val is_empty : interval -> bool

val singleton : Value.t -> interval
val pp_interval : Format.formatter -> interval -> unit

(** {1 Per-rule analysis} *)

(** Why a rule is certifiably dead. *)
type dead_reason =
  | Empty_relation of string  (** a positive subgoal's relation has no rows *)
  | Constant_out_of_range of string * Value.t
      (** (predicate, constant): the constant lies outside the column's
          certified [min, max] *)
  | Unsat_comparison of Ast.term * Ast.comparison * Ast.term
      (** an arithmetic subgoal can never hold given certified ranges *)
  | Empty_interval of string
      (** the fixpoint pinched a term's interval empty (term by
          {!Ast.binding_key}) *)

type rule_report = {
  dead : dead_reason option;
  intervals : (string * interval) list;
      (** final abstract state, keyed by {!Ast.binding_key}; constants
          omitted *)
  rows_bound : float;
      (** certified upper bound on distinct tabulated tuples of the rule;
          [infinity] when some predicate is unknown; [0.] when dead *)
}

(** {1 Statistics environments} *)

(** Per-predicate profile: certified cardinality bound and per-column
    range/ndv/max-frequency bounds.  Derived (step-output) relations use
    {!derived}. *)
type pstats = {
  p_rows : float;
  p_cols : col array;
}

and col = {
  c_interval : interval;  (** certified range of the column's values *)
  c_ndv : float;  (** upper bound on distinct values *)
  c_maxfreq : float;  (** upper bound on tuples per value *)
  c_freqs : int array option;
      (** exact descending per-value counts when known (base relations) *)
}

and env

val env_of_catalog : Qf_relational.Catalog.t -> env
val env_extend : env -> string -> pstats -> env
val env_lookup : env -> string -> pstats option

(** Profile of a step-output relation holding at most [rows] distinct
    parameter tuples with the given per-column certified intervals.  A
    one-column output is a set of singletons, so its max-frequency is 1;
    wider outputs get [rows]. *)
val derived : rows:float -> interval list -> pstats

(** Analyze one rule against the statistics environment.  [env] maps
    predicate names to profiles; unknown predicates contribute top
    intervals and infinite bounds (sound, not precise). *)
val analyze_rule : env -> Ast.rule -> rule_report

(** {1 Plan certification} *)

type step_bound = {
  sb_step : string;  (** step name, matching {!Qf_core.Plan.step.name} *)
  sb_rows : float;  (** certified bound on tabulated rows *)
  sb_groups : float;  (** certified bound on candidate assignments *)
  sb_survivors : float;  (** certified bound on assignments passing the filter *)
  sb_dead_rules : int;  (** rules of the step certified dead *)
}

(** Certified bounds for every step of a plan, auxiliary steps first and
    the final step last (the order of {!Qf_core.Plan.all_steps}).  Each
    auxiliary step's survivor bound feeds later steps' [ok]-subgoals via
    {!derived}, mirroring the executor's dataflow. *)
val certify_plan : Qf_relational.Catalog.t -> Qf_core.Plan.t -> step_bound list

(** The clamp pairs consumed by {!Qf_core.Cost.plan_step_estimates}:
    [(step name, (groups bound, rows bound))] with the survivor bound as
    the rows component. *)
val clamps_of_plan :
  Qf_relational.Catalog.t -> Qf_core.Plan.t -> (string * (float * float)) list

(** {1 Monotonicity certificates} *)

type monotonicity =
  | Monotone  (** [COUNT]/[MAX]: monotone unconditionally (Sec. 5) *)
  | Monotone_sum_certified of string * Value.t
      (** [SUM(col)]: certified minimum of the summand column is the given
          non-negative value, so the non-negativity assumption holds on
          this catalog *)
  | Unverified_sum of string * Value.t option
      (** [SUM(col)]: the certified minimum is negative (witness value) or
          unknown ([None]); the monotonicity assumption is unverified *)
  | Non_monotone  (** [MIN]: never monotone *)

(** Certify the filter's monotonicity against the catalog: for [SUM],
    joins the summand column's certified interval across all rules of the
    query. *)
val monotonicity : Qf_relational.Catalog.t -> Qf_core.Flock.t -> monotonicity

(** {1 Lint integration: QF07x diagnostics}

    Dead-code and monotonicity findings over a located program, for
    [flockc lint --absint]:

    - [QF070] — an arithmetic subgoal is unsatisfiable under certified
      ranges (reported at the subgoal);
    - [QF071] — a positive subgoal can never match: empty relation or a
      constant outside the column's certified range (reported at the
      subgoal);
    - [QF072] — the whole flock is certifiably empty: every rule is dead,
      or the certified survivor bound falls below the threshold;
    - [QF073] — a [SUM] filter whose non-negativity assumption the catalog
      cannot certify ({!Unverified_sum}).

    Requires a catalog (the domain is seeded from its statistics); rules
    mentioning unknown predicates are skipped (QF020 already reports
    them). *)
val check_program :
  catalog:Qf_relational.Catalog.t ->
  Qf_core.Parse.located_program ->
  Diagnostic.t list
