(* Independent re-implementation of the paper's Rule for Generating Query
   Plans (Sec. 4.2).  [Qf_core.Plan.make] performs the same checks while
   constructing a plan; this module re-derives the rule from the paper text
   with a different structure (explicit multiset accounting, worklist over
   earlier steps, fuel-bounded recursion) so the two act as cross-checks:
   installing [verify] as the plan auditor makes every plan built anywhere
   in the system pass both. *)

module Ast = Qf_datalog.Ast
module Plan = Qf_core.Plan
module Flock = Qf_core.Flock
module Filter = Qf_core.Filter

let ( let* ) = Result.bind
let fail fmt = Format.kasprintf (fun s -> Error s) fmt

(* Remove one occurrence of [lit] (up to {!Ast.equal_literal}). *)
let remove_one lit lst =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
      if Ast.equal_literal x lit then Some (List.rev_append acc rest)
      else go (x :: acc) rest
  in
  go [] lst

let distinct_strings l = List.length (List.sort_uniq String.compare l) = List.length l

(* Classify one step-rule body against the matching flock-rule body:
   every literal must be an original subgoal (consumed with multiplicity)
   or a legal ok-subgoal over [earlier].  Returns how many originals were
   retained.  [fuel] bounds the renaming recursion. *)
let rec classify ~fuel ~flock ~earlier ~orig_body body =
  let* () = if fuel <= 0 then Error "renaming recursion too deep" else Ok () in
  let rec loop remaining kept = function
    | [] -> Ok kept
    | lit :: rest -> (
      match remove_one lit remaining with
      | Some remaining' -> loop remaining' (kept + 1) rest
      | None ->
        let* () = legal_ok_subgoal ~fuel ~flock ~earlier lit in
        loop remaining kept rest)
  in
  loop orig_body 0 body

and legal_ok_subgoal ~fuel ~flock ~earlier lit =
  match lit with
  | Ast.Neg _ | Ast.Cmp _ ->
    fail "subgoal %s is neither an original subgoal nor an ok-subgoal"
      (Qf_datalog.Pretty.literal_to_string lit)
  | Ast.Pos a -> (
    match
      List.find_opt
        (fun (s : Plan.step) -> String.equal s.name a.Ast.pred)
        earlier
    with
    | None ->
      fail
        "subgoal %s is not an original subgoal and %s names no earlier \
         FILTER step"
        (Qf_datalog.Pretty.atom_to_string a)
        a.Ast.pred
    | Some s ->
      let params =
        List.filter_map
          (function Ast.Param p -> Some p | Ast.Var _ | Ast.Const _ -> None)
          a.Ast.args
      in
      let* () =
        if
          List.length params = List.length a.Ast.args
          && List.length params = List.length s.params
          && distinct_strings params
        then Ok ()
        else
          fail "ok-subgoal %s must carry the %d distinct parameters of step %s"
            (Qf_datalog.Pretty.atom_to_string a)
            (List.length s.params) s.name
      in
      if List.for_all2 String.equal params s.params then Ok ()
      else begin
        (* Renamed ok-subgoal: the step's query under the renaming must be
           derivable from the flock (parameter symmetry, footnote 3). *)
        let mapping = List.combine s.params params in
        let flock_rules = flock.Flock.query in
        let renamed = List.map (Ast.rename_params mapping) s.query in
        let* () =
          if List.length renamed = List.length flock_rules then Ok ()
          else fail "step %s: rule count differs from the flock" s.name
        in
        List.fold_left2
          (fun acc (orig : Ast.rule) (rr : Ast.rule) ->
            let* () = acc in
            let* _kept =
              classify ~fuel:(fuel - 1) ~flock ~earlier ~orig_body:orig.body
                rr.body
            in
            Ok ())
          (Ok ()) flock_rules renamed
      end)

let check_step ~flock ~earlier ~is_final (s : Plan.step) =
  let flock_rules = flock.Flock.query in
  let* () =
    if
      List.exists
        (fun (e : Plan.step) -> String.equal e.name s.name)
        earlier
    then fail "two FILTER steps are both named %s" s.name
    else Ok ()
  in
  let base_preds =
    List.concat_map
      (fun (r : Ast.rule) ->
        List.filter_map
          (function
            | Ast.Pos a | Ast.Neg a -> Some a.Ast.pred
            | Ast.Cmp _ -> None)
          r.body)
      flock_rules
  in
  let* () =
    if List.mem s.name base_preds then
      fail "step %s shadows a base relation of the flock" s.name
    else Ok ()
  in
  let* () =
    if List.length s.query = List.length flock_rules then Ok ()
    else
      fail "step %s has %d rules but the flock's union has %d" s.name
        (List.length s.query) (List.length flock_rules)
  in
  let* () =
    if s.params = Ast.query_params s.query then Ok ()
    else fail "step %s: declared parameters disagree with its query" s.name
  in
  let check_rule i (orig : Ast.rule) (sr : Ast.rule) =
    let* () =
      if Ast.equal_atom orig.head sr.head then Ok ()
      else fail "step %s, rule %d: head differs from the flock's" s.name i
    in
    let* kept =
      classify ~fuel:32 ~flock ~earlier ~orig_body:orig.body sr.body
    in
    let* () =
      match Lint.rule_is_qf_safe sr with
      | Ok () -> Ok ()
      | Error e -> fail "step %s, rule %d is unsafe: %s" s.name i e
    in
    let* () =
      if kept >= 1 then Ok ()
      else
        fail
          "step %s, rule %d retains no original subgoal: it is not an \
           upper bound"
          s.name i
    in
    if is_final && kept <> List.length orig.body then
      fail "the final step deletes original subgoals (rule %d)" i
    else Ok ()
  in
  let rec per_rule i = function
    | [], [] -> Ok ()
    | orig :: origs, sr :: srs ->
      let* () = check_rule i orig sr in
      per_rule (i + 1) (origs, srs)
    | _ -> fail "step %s: rule count mismatch" s.name
  in
  per_rule 0 (flock_rules, s.query)

let verify (p : Plan.t) =
  let flock = p.Plan.flock in
  let* () =
    if p.Plan.steps <> [] && not (Filter.is_monotone flock.Flock.filter) then
      Error
        "the plan has a-priori FILTER steps but the flock's filter is not \
         monotone: no upper-bound argument exists (Sec. 4.1)"
    else Ok ()
  in
  let rec walk earlier = function
    | [] -> check_step ~flock ~earlier ~is_final:true p.Plan.final
    | s :: rest ->
      let* () = check_step ~flock ~earlier ~is_final:false s in
      walk (s :: earlier) rest
  in
  walk [] p.Plan.steps

let verify_exn p =
  match verify p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Plan_check.verify: " ^ msg)
