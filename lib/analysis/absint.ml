module Ast = Qf_datalog.Ast
module Value = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Statistics = Qf_relational.Statistics
module Flock = Qf_core.Flock
module Filter = Qf_core.Filter
module Plan = Qf_core.Plan
module Parse = Qf_core.Parse
module D = Diagnostic

(* {1 Interval domain}

   Endpoints are values of the total {!Value.compare} order, each carrying
   an inclusivity flag; [None] is unbounded.  Everything is interpreted
   over the {e dense} order (ints and reals interleave, strings follow),
   so [is_empty] never assumes discreteness — the only provable emptiness
   is a crossed or pinched-strict pair of endpoints.  That keeps every
   dead-code verdict sound for all value kinds. *)

type bound = (Value.t * bool) option

type interval = { lo : bound; hi : bound }

let top = { lo = None; hi = None }

let singleton v = { lo = Some (v, true); hi = Some (v, true) }

(* Tighter lower bound of the two (for meet). *)
let max_lo a b =
  match a, b with
  | None, b -> b
  | a, None -> a
  | Some (va, ia), Some (vb, ib) ->
    let c = Value.compare va vb in
    if c > 0 then a
    else if c < 0 then b
    else Some (va, ia && ib)

let min_hi a b =
  match a, b with
  | None, b -> b
  | a, None -> a
  | Some (va, ia), Some (vb, ib) ->
    let c = Value.compare va vb in
    if c < 0 then a
    else if c > 0 then b
    else Some (va, ia && ib)

(* Looser lower bound of the two (for join). *)
let min_lo a b =
  match a, b with
  | None, _ | _, None -> None
  | Some (va, ia), Some (vb, ib) ->
    let c = Value.compare va vb in
    if c < 0 then a
    else if c > 0 then b
    else Some (va, ia || ib)

let max_hi a b =
  match a, b with
  | None, _ | _, None -> None
  | Some (va, ia), Some (vb, ib) ->
    let c = Value.compare va vb in
    if c > 0 then a
    else if c < 0 then b
    else Some (va, ia || ib)

let meet a b = { lo = max_lo a.lo b.lo; hi = min_hi a.hi b.hi }
let join a b = { lo = min_lo a.lo b.lo; hi = max_hi a.hi b.hi }

let is_empty { lo; hi } =
  match lo, hi with
  | Some (vl, il), Some (vh, ih) ->
    let c = Value.compare vl vh in
    c > 0 || (c = 0 && not (il && ih))
  | _ -> false

let equal_bound a b =
  match a, b with
  | None, None -> true
  | Some (va, ia), Some (vb, ib) -> ia = ib && Value.compare va vb = 0
  | _ -> false

let equal_interval a b = equal_bound a.lo b.lo && equal_bound a.hi b.hi

let pp_bound_lo ppf = function
  | None -> Format.fprintf ppf "(-inf"
  | Some (v, true) -> Format.fprintf ppf "[%s" (Value.to_string v)
  | Some (v, false) -> Format.fprintf ppf "(%s" (Value.to_string v)

let pp_bound_hi ppf = function
  | None -> Format.fprintf ppf "+inf)"
  | Some (v, true) -> Format.fprintf ppf "%s]" (Value.to_string v)
  | Some (v, false) -> Format.fprintf ppf "%s)" (Value.to_string v)

let pp_interval ppf i =
  Format.fprintf ppf "%a, %a" pp_bound_lo i.lo pp_bound_hi i.hi

(* {1 Statistics environments} *)

type pstats = {
  p_rows : float;
  p_cols : col array;
}

and col = {
  c_interval : interval;
  c_ndv : float;
  c_maxfreq : float;
  c_freqs : int array option;
}

and env = (string * pstats) list

let env_of_catalog catalog =
  List.map
    (fun name ->
      let rel = Catalog.find catalog name in
      let stats = Catalog.stats catalog name in
      let cols =
        List.map
          (fun c ->
            let p = Statistics.column_profile stats c in
            let c_interval =
              match p.Statistics.min_value, p.Statistics.max_value with
              | Some lo, Some hi -> { lo = Some (lo, true); hi = Some (hi, true) }
              | _ -> (* empty relation: the column holds no value at all *)
                { lo = Some (Value.Int 0, false); hi = Some (Value.Int 0, false) }
            in
            {
              c_interval;
              c_ndv = float_of_int p.Statistics.ndv;
              c_maxfreq = float_of_int p.Statistics.max_frequency;
              c_freqs = Some (Statistics.frequencies stats c);
            })
          (Schema.columns (Relation.schema rel))
      in
      ( name,
        {
          p_rows = float_of_int (Statistics.cardinality stats);
          p_cols = Array.of_list cols;
        } ))
    (Catalog.names catalog)

let env_extend env name p = (name, p) :: env
let env_lookup env name = List.assoc_opt name env

let derived ~rows intervals =
  let arity = List.length intervals in
  {
    p_rows = rows;
    p_cols =
      Array.of_list
        (List.map
           (fun iv ->
             {
               c_interval = iv;
               c_ndv = rows;
               c_maxfreq = (if arity = 1 then Float.min 1. rows else rows);
               c_freqs = None;
             })
           intervals);
  }

(* {1 Abstract state}

   One interval per binding key ({!Ast.binding_key}); keys never seen are
   top.  Equality constraints are handled by meeting both sides and
   re-running to a fixpoint rather than by a union-find — rule bodies are
   tiny, and the fixpoint also settles chains like [X = Y, Y < 3]. *)

type state = (string, interval) Hashtbl.t

let state_get (st : state) key =
  Option.value ~default:top (Hashtbl.find_opt st key)

let refine st key iv changed =
  let cur = state_get st key in
  let next = meet cur iv in
  if not (equal_interval cur next) then begin
    Hashtbl.replace st key next;
    changed := true
  end

(* The interval denoted by a term in the current state. *)
let term_interval st = function
  | Ast.Const v -> singleton v
  | (Ast.Var _ | Ast.Param _) as t -> state_get st (Ast.binding_key t)

(* Narrow a term's interval; constants cannot be narrowed. *)
let term_refine st t iv changed =
  match t with
  | Ast.Const _ -> ()
  | Ast.Var _ | Ast.Param _ -> refine st (Ast.binding_key t) iv changed

(* Propagate one comparison [l cmp r] into the state.  Each rule below is
   an implication valid for every concrete pair in the concretization:
   e.g. from [a < b] and [b <= hi(b)] follows [a < hi(b)]. *)
let propagate_cmp st (l, cmp, r) changed =
  let il = term_interval st l and ir = term_interval st r in
  let strict_hi = function
    | Some (v, _) -> { lo = None; hi = Some (v, false) }
    | None -> top
  and loose_hi = function
    | Some (v, i) -> { lo = None; hi = Some (v, i) }
    | None -> top
  and strict_lo = function
    | Some (v, _) -> { lo = Some (v, false); hi = None }
    | None -> top
  and loose_lo = function
    | Some (v, i) -> { lo = Some (v, i); hi = None }
    | None -> top
  in
  match cmp with
  | Ast.Eq ->
    let both = meet il ir in
    term_refine st l both changed;
    term_refine st r both changed
  | Ast.Lt ->
    term_refine st l (strict_hi ir.hi) changed;
    term_refine st r (strict_lo il.lo) changed
  | Ast.Le ->
    term_refine st l (loose_hi ir.hi) changed;
    term_refine st r (loose_lo il.lo) changed
  | Ast.Gt ->
    term_refine st l (strict_lo ir.lo) changed;
    term_refine st r (strict_hi il.hi) changed
  | Ast.Ge ->
    term_refine st l (loose_lo ir.lo) changed;
    term_refine st r (loose_hi il.hi) changed
  | Ast.Ne ->
    (* Only a point excludes anything: [a <> c] sharpens an inclusive
       endpoint at [c] to a strict one. *)
    let exclude_point t other =
      match other.lo, other.hi with
      | Some (v, true), Some (v', true) when Value.compare v v' = 0 ->
        let cur = term_interval st t in
        let lo' =
          match cur.lo with
          | Some (w, true) when Value.compare w v = 0 -> Some (w, false)
          | b -> b
        and hi' =
          match cur.hi with
          | Some (w, true) when Value.compare w v = 0 -> Some (w, false)
          | b -> b
        in
        term_refine st t { lo = lo'; hi = hi' } changed
      | _ -> ()
    in
    exclude_point l ir;
    exclude_point r il

(* Is [l cmp r] provably unsatisfiable given the current intervals?
   Conservative: [false] means "don't know", never "satisfiable". *)
let cmp_unsat st (l, cmp, r) =
  let il = term_interval st l and ir = term_interval st r in
  if is_empty il || is_empty ir then true
  else
    (* a >= b for every (a, b) in il x ir:  lo(il) above hi(ir). *)
    let always_ge a b =
      match a.lo, b.hi with
      | Some (vl, _), Some (vh, _) -> Value.compare vl vh >= 0
      | _ -> false
    (* a > b for every pair: lo(il) strictly above hi(ir), or touching
       with a strict end on either side. *)
    and always_gt a b =
      match a.lo, b.hi with
      | Some (vl, il'), Some (vh, ih) ->
        let c = Value.compare vl vh in
        c > 0 || (c = 0 && not (il' && ih))
      | _ -> false
    in
    match cmp with
    | Ast.Lt -> always_ge il ir
    | Ast.Le -> always_gt il ir
    | Ast.Gt -> always_ge ir il
    | Ast.Ge -> always_gt ir il
    | Ast.Eq -> is_empty (meet il ir)
    | Ast.Ne -> (
      (* Both pinned to the same single point. *)
      match il.lo, il.hi, ir.lo, ir.hi with
      | Some (a, true), Some (a', true), Some (b, true), Some (b', true) ->
        Value.compare a a' = 0 && Value.compare b b' = 0
        && Value.compare a b = 0
      | _ -> false)

(* {1 Per-rule analysis} *)

type dead_reason =
  | Empty_relation of string
  | Constant_out_of_range of string * Value.t
  | Unsat_comparison of Ast.term * Ast.comparison * Ast.term
  | Empty_interval of string

type rule_report = {
  dead : dead_reason option;
  intervals : (string * interval) list;
  rows_bound : float;
}

let atom_col (p : pstats) i =
  if i < Array.length p.p_cols then Some p.p_cols.(i) else None

(* Seed the state from the positive subgoals: each var/param occurrence
   meets the column's certified range; a constant occurrence outside the
   range makes the subgoal (and hence the rule) dead. *)
let seed_state env (r : Ast.rule) st =
  let dead = ref None in
  let changed = ref false in
  List.iter
    (fun (a : Ast.atom) ->
      if !dead = None then
        match env_lookup env a.pred with
        | None -> ()  (* unknown predicate: no information, stay sound *)
        | Some p ->
          if p.p_rows <= 0. then dead := Some (Empty_relation a.pred)
          else
            List.iteri
              (fun i arg ->
                if !dead = None then
                  match atom_col p i with
                  | None -> ()
                  | Some c -> (
                    match arg with
                    | Ast.Const v ->
                      if is_empty (meet (singleton v) c.c_interval) then
                        dead := Some (Constant_out_of_range (a.pred, v))
                    | Ast.Var _ | Ast.Param _ ->
                      term_refine st arg c.c_interval changed))
              a.args)
    (Ast.positive_atoms r);
  !dead

(* Propagate the rule's comparisons to a fixpoint.  Termination: every
   refinement strictly shrinks some interval, and each interval can only
   take endpoints among the finitely many (value, flag) pairs derived
   from the seeds and the rule's constants; a generous iteration cap
   backstops it anyway. *)
let run_fixpoint st (cmps : (Ast.term * Ast.comparison * Ast.term) list) =
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iterations < 64 do
    incr iterations;
    let changed = ref false in
    List.iter (fun c -> propagate_cmp st c changed) cmps;
    continue_ := !changed
  done

let state_dead st cmps =
  let pinched =
    Hashtbl.fold
      (fun key iv acc ->
        match acc with
        | Some _ -> acc
        | None -> if is_empty iv then Some (Empty_interval key) else None)
      st None
  in
  match pinched with
  | Some _ as d -> d
  | None ->
    List.find_map
      (fun (l, c, r) ->
        if cmp_unsat st (l, c, r) then Some (Unsat_comparison (l, c, r))
        else None)
      cmps

(* Certified upper bound on distinct tabulated tuples: a greedy product
   over the positive subgoals.  Invariant: [rows_bound] bounds the number
   of distinct assignments to the keys in [bound_keys]; each atom
   multiplies it by a bound on matching tuples per assignment —
   [min(|R|, min over bound/constant columns of max-frequency)] — and 1
   when every argument is already bound (set semantics: at most one such
   tuple exists).  Negations and comparisons only filter, so they are
   ignored.  Any order is sound; greedily taking the smallest multiplier
   first tightens the product. *)
let rule_rows_bound env st (r : Ast.rule) =
  let atoms = Ast.positive_atoms r in
  let atom_multiplier bound (a : Ast.atom) =
    match env_lookup env a.pred with
    | None -> infinity
    | Some p ->
      let m = ref p.p_rows in
      let all_bound = ref true in
      List.iteri
        (fun i arg ->
          let arg_bound =
            match arg with
            | Ast.Const _ -> true
            | Ast.Var _ | Ast.Param _ -> List.mem (Ast.binding_key arg) bound
          in
          if arg_bound then begin
            match atom_col p i with
            | Some c -> m := Float.min !m c.c_maxfreq
            | None -> ()
          end
          else begin
            all_bound := false;
            (* An unbound argument pinned to a single point by the
               abstract state behaves like a constant: at most
               max-frequency tuples carry that one value. *)
            match arg, atom_col p i with
            | (Ast.Var _ | Ast.Param _), Some c -> (
              match (term_interval st arg).lo, (term_interval st arg).hi with
              | Some (v, true), Some (v', true) when Value.compare v v' = 0 ->
                m := Float.min !m c.c_maxfreq
              | _ -> ())
            | _ -> ()
          end)
        a.args;
      if !all_bound then Float.min !m 1. else !m
  in
  let keys (a : Ast.atom) =
    List.filter_map
      (function
        | (Ast.Var _ | Ast.Param _) as t -> Some (Ast.binding_key t)
        | Ast.Const _ -> None)
      a.args
  in
  let rec go bound acc remaining =
    match remaining with
    | [] -> acc
    | _ ->
      let best =
        List.fold_left
          (fun best a ->
            let m = atom_multiplier bound a in
            match best with
            | None -> Some (a, m)
            | Some (_, bm) -> if m < bm then Some (a, m) else best)
          None remaining
      in
      let a, m = Option.get best in
      let remaining' =
        let dropped = ref false in
        List.filter
          (fun a' ->
            if (not !dropped) && a' == a then begin
              dropped := true;
              false
            end
            else true)
          remaining
      in
      go
        (List.sort_uniq String.compare (bound @ keys a))
        (acc *. m) remaining'
  in
  if atoms = [] then 0. else go [] 1. atoms

let rule_cmps (r : Ast.rule) =
  List.filter_map
    (function
      | Ast.Cmp (l, c, rt) -> Some (l, c, rt)
      | Ast.Pos _ | Ast.Neg _ -> None)
    r.body

let analyze_rule env (r : Ast.rule) =
  let st : state = Hashtbl.create 16 in
  let dead =
    match seed_state env r st with
    | Some _ as d -> d
    | None -> (
      let cmps = rule_cmps r in
      (* Refute comparisons against the seeded ranges first: an unsat
         verdict found here carries the comparison's own span, which the
         post-fixpoint scan would lose to a pinched-interval verdict. *)
      match
        List.find_map
          (fun ((l, c, rt) as cmp) ->
            if cmp_unsat st cmp then Some (Unsat_comparison (l, c, rt))
            else None)
          cmps
      with
      | Some _ as d -> d
      | None ->
        run_fixpoint st cmps;
        state_dead st cmps)
  in
  let intervals =
    Hashtbl.fold (fun k iv acc -> (k, iv) :: acc) st []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let rows_bound =
    match dead with Some _ -> 0. | None -> rule_rows_bound env st r
  in
  { dead; intervals; rows_bound }

(* {1 Plan certification} *)

type step_bound = {
  sb_step : string;
  sb_rows : float;
  sb_groups : float;
  sb_survivors : float;
  sb_dead_rules : int;
}

(* Distinct-assignment bound for one parameter within one rule: the
   smallest ndv bound among its positive occurrences.  [infinity] when the
   parameter never occurs positively (safety normally prevents this). *)
let param_ndv env (r : Ast.rule) param =
  List.fold_left
    (fun acc (a : Ast.atom) ->
      match env_lookup env a.pred with
      | None -> acc
      | Some p ->
        List.fold_left
          (fun acc (i, arg) ->
            match arg, atom_col p i with
            | Ast.Param q, Some c when String.equal q param ->
              Float.min acc c.c_ndv
            | _ -> acc)
          acc
          (List.mapi (fun i arg -> i, arg) a.args))
    infinity (Ast.positive_atoms r)

(* Exact certified survivor bound for the single-positive-subgoal COUNT
   shape (cf. {!Qf_core.Cost.exact_survivors}, but sound in the presence
   of extra negations/comparisons): with one positive subgoal, every
   tabulated tuple is the image of a distinct base tuple, so a parameter
   value surviving [COUNT >= t] must occur in at least [t] base tuples —
   the count is read off the frequency distribution. *)
let exact_count_bound env ~threshold (r : Ast.rule) params =
  match Ast.positive_atoms r, r.body, params with
  | [ a ], _, [ p ] -> (
    let position =
      List.find_index
        (fun arg ->
          match arg with
          | Ast.Param p' -> String.equal p p'
          | Ast.Var _ | Ast.Const _ -> false)
        a.args
    in
    match position, env_lookup env a.pred with
    | Some i, Some stats -> (
      match atom_col stats i with
      | Some { c_freqs = Some freqs; _ } ->
        let c = int_of_float (Float.ceil threshold) in
        let n = Array.length freqs in
        let rec search lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if freqs.(mid) >= c then search (mid + 1) hi else search lo mid
        in
        Some (float_of_int (search 0 n))
      | _ -> None)
    | _ -> None)
  | _ -> None

(* The certified interval of the head column the filter aggregates, joined
   across live rules (a surviving tuple comes from {e some} rule). *)
let summand_interval reports (rules : Ast.rule list) column =
  let per_rule (report : rule_report) (r : Ast.rule) =
    match report.dead with
    | Some _ -> None
    | None ->
      (* Head columns are named after head variables (constants get
         synthetic names that cannot collide with a real variable we can
         bound); find the head arg whose variable is [column]. *)
      let term =
        List.find_opt
          (function
            | Ast.Var v -> String.equal v column
            | Ast.Param _ | Ast.Const _ -> false)
          r.head.args
      in
      Option.map
        (fun t ->
          match List.assoc_opt (Ast.binding_key t) report.intervals with
          | Some iv -> iv
          | None -> top)
        term
  in
  let rec combine acc reports rules =
    match reports, rules with
    | [], [] -> acc
    | rep :: reps, r :: rs -> (
      match per_rule rep r with
      | None -> combine acc reps rs  (* dead rule contributes nothing *)
      | Some iv -> (
        match acc with
        | None -> combine (Some iv) reps rs
        | Some a -> combine (Some (join a iv)) reps rs))
    | _ -> acc
  in
  combine None reports rules

let hi_float iv =
  match iv.hi with
  | Some (v, _) -> Value.to_float v
  | None -> None

(* Survivor bound for one step under the flock's filter.  [rows] and
   [groups] are the step's certified tabulation/group bounds; [summand]
   the certified interval of the aggregated head column (if any). *)
let survivors_bound (filter : Filter.t) ~rows ~groups ~summand ~exact_count =
  let t = filter.threshold in
  match filter.agg with
  | Filter.Count ->
    let by_mass =
      let c = Float.ceil t in
      if c >= 1. then Float.floor (rows /. c) else groups
    in
    let by_exact = Option.value ~default:infinity exact_count in
    Float.min groups (Float.min by_mass by_exact)
  | Filter.Sum _ -> (
    match summand with
    | None -> groups
    | Some iv -> (
      match hi_float iv with
      | Some h when t > 0. ->
        if h <= 0. then 0.
        else Float.min groups (Float.floor (rows *. h /. t))
      | _ -> groups))
  | Filter.Max _ | Filter.Min _ -> (
    (* A surviving group needs some member with the column >= t, so a
       certified column maximum below t empties the result. *)
    match summand with
    | None -> groups
    | Some iv -> (
      match hi_float iv with
      | Some h when h < t -> 0.
      | _ -> groups))

(* The earlier step an [ok]-style unary atom on parameter [p] refers to,
   if any: a positive subgoal [step($p)] naming an earlier plan step. *)
let ok_step_of earlier (r : Ast.rule) p =
  List.find_map
    (function
      | Ast.Pos (a : Ast.atom) -> (
        match a.args with
        | [ Ast.Param q ] when String.equal q p ->
          List.find_opt
            (fun (s : Plan.step) -> String.equal s.Plan.name a.pred)
            earlier
        | _ -> None)
      | Ast.Neg _ | Ast.Cmp _ -> None)
    r.body

(* Two unary auxiliary steps are alpha-equivalent when renaming one's
   parameter to the other's makes their queries syntactically equal.  On
   one catalog under one filter, alpha-equivalent steps compute the SAME
   output relation (this is the symmetry the executor exploits for step
   reuse, paper footnote 3). *)
let alpha_equivalent (s1 : Plan.step) (s2 : Plan.step) =
  match s1.Plan.params, s2.Plan.params with
  | [ a ], [ b ] ->
    List.map (Ast.rename_params [ a, b ]) s1.Plan.query = s2.Plan.query
  | _ -> false

(* Disjoint parameter pairs (p, q) of [r] under a strict order comparison
   whose values are both drawn from alpha-equivalent earlier steps.  Such
   a pair ranges over ordered 2-subsets of ONE value set: if the set has
   at most n elements, the pair admits at most n(n-1)/2 assignments —
   strictly sharper than the n^2 product the independence bound gives. *)
let symmetric_pairs earlier (s : Plan.step) (r : Ast.rule) =
  let strict_pairs =
    List.filter_map
      (function
        | Ast.Cmp (Ast.Param p, (Ast.Lt | Ast.Gt), Ast.Param q)
          when (not (String.equal p q))
               && List.mem p s.Plan.params
               && List.mem q s.Plan.params ->
          Some (p, q)
        | _ -> None)
      r.body
  in
  let used = Hashtbl.create 4 in
  List.filter
    (fun (p, q) ->
      (not (Hashtbl.mem used p))
      && (not (Hashtbl.mem used q))
      &&
      match ok_step_of earlier r p, ok_step_of earlier r q with
      | Some sp, Some sq when alpha_equivalent sp sq ->
        Hashtbl.replace used p ();
        Hashtbl.replace used q ();
        true
      | _ -> false)
    strict_pairs

let certify_step env (filter : Filter.t) ~earlier (s : Plan.step) =
  let reports = List.map (analyze_rule env) s.query in
  let dead_rules =
    List.length (List.filter (fun r -> r.dead <> None) reports)
  in
  let rows =
    List.fold_left (fun acc r -> acc +. r.rows_bound) 0. reports
  in
  let groups =
    (* Per rule: the product of its parameters' ndv bounds (with
       symmetric strict-order pairs counted as 2-subsets of one set); a
       param tuple in the output must satisfy some rule, so per-rule
       bounds add up.  Each rule's group bound is also capped by its row
       bound (grouping only merges tabulated tuples). *)
    let per_rule (report : rule_report) (r : Ast.rule) =
      match report.dead with
      | Some _ -> 0.
      | None ->
        let pairs = symmetric_pairs earlier s r in
        let paired p = List.exists (fun (a, b) -> p = a || p = b) pairs in
        let by_ndv =
          List.fold_left
            (fun acc (p, q) ->
              let n = Float.min (param_ndv env r p) (param_ndv env r q) in
              acc *. Float.max 0. (n *. (n -. 1.) /. 2.))
            (List.fold_left
               (fun acc p ->
                 if paired p then acc else acc *. param_ndv env r p)
               1. s.params)
            pairs
        in
        Float.min report.rows_bound by_ndv
    in
    let rec sum acc reports rules =
      match reports, rules with
      | rep :: reps, r :: rs -> sum (acc +. per_rule rep r) reps rs
      | _ -> acc
    in
    sum 0. reports s.query
  in
  let summand =
    match filter.agg with
    | Filter.Count -> None
    | Filter.Sum c | Filter.Min c | Filter.Max c ->
      summand_interval reports s.query c
  in
  let exact_count =
    match filter.agg, s.query with
    | Filter.Count, [ rule ] when (List.nth reports 0).dead = None ->
      exact_count_bound env ~threshold:filter.threshold rule s.params
    | _ -> None
  in
  let survivors =
    survivors_bound filter ~rows ~groups ~summand ~exact_count
  in
  (* Certified ranges of the step's output columns (its sorted params):
     join each param's interval across live rules. *)
  let param_intervals =
    List.map
      (fun p ->
        let key = "$" ^ p in
        let rec joined acc = function
          | [] -> acc
          | (rep : rule_report) :: reps -> (
            match rep.dead with
            | Some _ -> joined acc reps
            | None -> (
              let iv =
                Option.value ~default:top (List.assoc_opt key rep.intervals)
              in
              match acc with
              | None -> joined (Some iv) reps
              | Some a -> joined (Some (join a iv)) reps))
        in
        Option.value ~default:top (joined None reports))
      s.params
  in
  ( {
      sb_step = s.name;
      sb_rows = rows;
      sb_groups = groups;
      sb_survivors = survivors;
      sb_dead_rules = dead_rules;
    },
    param_intervals )

let certify_plan catalog (plan : Plan.t) =
  let filter = plan.flock.Flock.filter in
  let env, bounds, earlier =
    List.fold_left
      (fun (env, acc, earlier) (s : Plan.step) ->
        let sb, param_ivs = certify_step env filter ~earlier s in
        ( env_extend env s.Plan.name (derived ~rows:sb.sb_survivors param_ivs),
          sb :: acc,
          earlier @ [ s ] ))
      (env_of_catalog catalog, [], [])
      plan.steps
  in
  let sb, _ = certify_step env filter ~earlier plan.final in
  List.rev (sb :: bounds)

let clamps_of_plan catalog plan =
  List.map
    (fun sb -> sb.sb_step, (sb.sb_groups, sb.sb_survivors))
    (certify_plan catalog plan)

(* {1 Monotonicity certificates} *)

type monotonicity =
  | Monotone
  | Monotone_sum_certified of string * Value.t
  | Unverified_sum of string * Value.t option
  | Non_monotone

let monotonicity catalog (flock : Flock.t) =
  match flock.filter.agg with
  | Filter.Count | Filter.Max _ -> Monotone
  | Filter.Min _ -> Non_monotone
  | Filter.Sum column ->
    let env = env_of_catalog catalog in
    let reports = List.map (analyze_rule env) flock.query in
    let summand = summand_interval reports flock.query column in
    let lo =
      Option.bind summand (fun iv ->
          match iv.lo with Some (v, _) -> Some v | None -> None)
    in
    (match lo with
    | Some v -> (
      match Value.to_float v with
      | Some f when f >= 0. -> Monotone_sum_certified (column, v)
      | Some _ -> Unverified_sum (column, Some v)
      | None -> Unverified_sum (column, Some v))
    | None -> Unverified_sum (column, None))

(* {1 Lint integration: QF07x} *)

let pp_term = function
  | Ast.Var v -> v
  | Ast.Param p -> "$" ^ p
  | Ast.Const v -> Value.to_string v

(* Diagnose one located rule: re-run the analysis, then attribute the
   verdict to a subgoal span.  Rules touching unknown predicates are
   skipped — QF020 already fires and any verdict would rest on missing
   statistics. *)
let check_rule env (lr : Ast.located_rule) =
  let r = lr.Ast.lr_rule in
  let known (a : Ast.atom) = env_lookup env a.pred <> None in
  let all_known =
    List.for_all
      (function Ast.Pos a | Ast.Neg a -> known a | Ast.Cmp _ -> true)
      r.body
  in
  if not all_known then []
  else
    let report = analyze_rule env r in
    match report.dead with
    | None -> []
    | Some reason ->
      let span_of_literal pred_test =
        let rec go body spans =
          match body, spans with
          | lit :: ls, sp :: sps ->
            if pred_test lit then sp else go ls sps
          | _ -> lr.Ast.lr_span
        in
        go r.body lr.Ast.lr_body
      in
      (match reason with
      | Empty_relation pred ->
        let sp =
          span_of_literal (function
            | Ast.Pos a -> String.equal a.Ast.pred pred
            | _ -> false)
        in
        [ D.warningf D.QF071 sp
            "subgoal %s can never match: the stored relation is empty, so \
             this rule contributes no answers"
            pred ]
      | Constant_out_of_range (pred, v) ->
        let sp =
          span_of_literal (function
            | Ast.Pos a ->
              String.equal a.Ast.pred pred
              && List.exists (fun t -> Ast.equal_term t (Ast.Const v)) a.Ast.args
            | _ -> false)
        in
        [ D.warningf D.QF071 sp
            "subgoal %s can never match: constant %s lies outside the \
             column's certified range, so this rule contributes no answers"
            pred (Value.to_string v) ]
      | Unsat_comparison (l, c, rt) ->
        let sp =
          span_of_literal (function
            | Ast.Cmp (l', c', r') ->
              Ast.equal_term l l' && c = c' && Ast.equal_term rt r'
            | _ -> false)
        in
        [ D.warningf D.QF070 sp
            "comparison %s %s %s is unsatisfiable under the certified \
             column ranges: this rule contributes no answers"
            (pp_term l)
            (Ast.comparison_to_string c)
            (pp_term rt) ]
      | Empty_interval key ->
        [ D.warningf D.QF070 lr.Ast.lr_span
            "the certified range of %s is empty under this rule's \
             constraints: the rule contributes no answers"
            key ])

let check_program ~catalog (lp : Parse.located_program) =
  let env = env_of_catalog catalog in
  let per_rule = List.concat_map (check_rule env) lp.Parse.l_query in
  let rules = List.map (fun lr -> lr.Ast.lr_rule) lp.Parse.l_query in
  let known_rule (r : Ast.rule) =
    List.for_all
      (function
        | Ast.Pos a | Ast.Neg a -> env_lookup env a.pred <> None
        | Ast.Cmp _ -> true)
      r.body
  in
  let flock_level =
    if rules = [] || not (List.for_all known_rule rules) then []
    else begin
      let reports = List.map (analyze_rule env) rules in
      let all_dead = List.for_all (fun r -> r.dead <> None) reports in
      let filter = lp.Parse.l_filter in
      let empty_by_bound =
        (* The trivial one-step plan's survivor bound: certified empty
           when even the unpruned result cannot pass the filter. *)
        let params =
          Ast.query_params rules
        in
        let rows =
          List.fold_left (fun acc (r : rule_report) -> acc +. r.rows_bound) 0. reports
        in
        let groups =
          let rec sum acc reps rs =
            match reps, rs with
            | (rep : rule_report) :: reps, r :: rs ->
              let g =
                match rep.dead with
                | Some _ -> 0.
                | None ->
                  Float.min rep.rows_bound
                    (List.fold_left
                       (fun acc p -> acc *. param_ndv env r p)
                       1. params)
              in
              sum (acc +. g) reps rs
            | _ -> acc
          in
          sum 0. reports rules
        in
        let summand =
          match filter.Filter.agg with
          | Filter.Count -> None
          | Filter.Sum c | Filter.Min c | Filter.Max c ->
            summand_interval reports rules c
        in
        survivors_bound filter ~rows ~groups ~summand ~exact_count:None = 0.
      in
      let empties =
        if all_dead then
          [ D.warningf D.QF072 lp.Parse.l_filter_span
              "every rule of the query is certifiably dead: the flock's \
               result is empty on this catalog" ]
        else if empty_by_bound then
          [ D.warningf D.QF072 lp.Parse.l_filter_span
              "the certified upper bound on surviving assignments is 0: \
               the flock's result is empty on this catalog" ]
        else []
      in
      let sum_issue =
        match filter.Filter.agg with
        | Filter.Sum column -> (
          match Flock.make rules filter with
          | Error _ -> []
          | Ok flock -> (
            match monotonicity catalog flock with
            | Unverified_sum (_, witness) ->
              [ D.warningf D.QF073 lp.Parse.l_filter_span
                  "SUM(%s) is treated as monotone assuming non-negative \
                   summands, but the certified minimum of %s is %s: a-priori \
                   pruning may be unsound on this data"
                  column column
                  (match witness with
                  | Some v -> Value.to_string v
                  | None -> "unknown") ]
            | Monotone | Monotone_sum_certified _ | Non_monotone -> []))
        | Filter.Count | Filter.Min _ | Filter.Max _ -> []
      in
      empties @ sum_issue
    end
  in
  D.sort (per_rule @ flock_level)
