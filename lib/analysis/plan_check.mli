(** Independent verifier for the paper's plan-legality rule (Sec. 4.2).

    [verify] re-checks, from scratch, that a built {!Qf_core.Plan.t}
    satisfies the Rule for Generating Query Plans: every step keeps the
    flock's head and filter, adds only ok-subgoals over earlier steps
    (possibly under a parameter renaming whose instance is itself
    derivable — footnote 3), deletes only original subgoals while staying
    safe and retaining at least one, and the final step deletes nothing;
    plans with auxiliary steps require a monotone filter.

    The implementation shares no code with [Plan.make]'s own
    classification (safety comes from the analyzer's Sec. 3.3 pass, the
    subgoal accounting is an explicit multiset), so installing it via
    {!Qf_core.Plan.set_auditor} cross-checks every plan the static
    optimizer and the levelwise generator emit — a sanitizer for plan
    generation. *)

val verify : Qf_core.Plan.t -> (unit, string) result

(** Raises [Invalid_argument] on an illegal plan. *)
val verify_exn : Qf_core.Plan.t -> unit
