(** Multi-pass static analyzer for flock programs.

    Runs over the span-carrying parse ({!Qf_core.Parse.program_located}),
    so every diagnostic points at the offending subgoal.  Passes:

    + safety, re-derived from the paper's three-part condition (Sec. 3.3)
      with the exact failing condition named ([QF010]–[QF013]);
    + union well-formedness (Sec. 3.4) and parameterlessness
      ([QF002], [QF014]);
    + schema/catalog consistency: unknown relations, arity clashes within
      the program and against stored relations ([QF020]–[QF022]);
    + redundant-subgoal detection via containment-based CQ minimization
      (Sec. 3.1) ([QF030]);
    + arithmetic-subgoal reasoning: constant folding, unsatisfiable
      comparisons, contradictory pairs ([QF040]–[QF042]);
    + variable hygiene: singletons and cartesian products
      ([QF050], [QF051]);
    + FILTER sanity: non-head columns and non-monotone aggregates
      ([QF060], [QF061]);
    + view discipline ([QF063]).

    The sister module {!Plan_check} re-checks Sec. 4.2 plan legality on
    built plans. *)

(** Lint a whole program source.  Lex/parse failures yield a single
    [QF001] diagnostic with the failure span; otherwise all passes run.
    With [catalog], subgoals are additionally checked against the stored
    schemas.  The result is in source order. *)
val lint :
  ?catalog:Qf_relational.Catalog.t -> string -> Diagnostic.t list

(** Analyze an already-parsed program. *)
val check_program :
  ?catalog:Qf_relational.Catalog.t ->
  Qf_core.Parse.located_program ->
  Diagnostic.t list

(** {1 Individual passes, exposed for cross-checks} *)

(** The Sec. 3.3 safety pass on one rule.  A rule is QF-safe iff this
    returns no [Error]-severity diagnostic; the property tests assert this
    agrees with {!Qf_datalog.Safety.is_safe} on random rules. *)
val safety_rule : Qf_datalog.Ast.located_rule -> Diagnostic.t list

(** [Ok ()] iff {!safety_rule} finds no error (first error otherwise). *)
val rule_is_qf_safe : Qf_datalog.Ast.rule -> (unit, string) result
