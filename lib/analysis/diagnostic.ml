module Ast = Qf_datalog.Ast

type severity = Error | Warning | Info

type code =
  | QF001  (** syntax error *)
  | QF002  (** ill-formed union *)
  | QF010  (** unsafe head variable (Sec. 3.3 condition 1) *)
  | QF011  (** unsafe negated-subgoal variable (Sec. 3.3 condition 2) *)
  | QF012  (** unsafe arithmetic-subgoal variable (Sec. 3.3 condition 3) *)
  | QF013  (** parameter in rule head *)
  | QF014  (** flock has no parameters *)
  | QF020  (** unknown relation *)
  | QF021  (** inconsistent arity across subgoals *)
  | QF022  (** arity disagrees with the stored relation *)
  | QF030  (** redundant subgoal (CQ minimization) *)
  | QF040  (** arithmetic subgoal is always false *)
  | QF041  (** arithmetic subgoal is always true *)
  | QF042  (** contradictory pair of arithmetic subgoals *)
  | QF050  (** singleton variable *)
  | QF051  (** cartesian product: disconnected join graph *)
  | QF060  (** filter references a non-head column *)
  | QF061  (** non-monotone filter defeats a-priori pruning *)
  | QF063  (** view mentions a parameter *)
  | QF070  (** arithmetic subgoal unsatisfiable under certified ranges *)
  | QF071  (** positive subgoal can never match (dead subgoal) *)
  | QF072  (** flock certified empty *)
  | QF073  (** SUM monotonicity assumption unverified *)

type t = {
  code : code;
  severity : severity;
  span : Ast.span;
  message : string;
}

let code_to_string = function
  | QF001 -> "QF001"
  | QF002 -> "QF002"
  | QF010 -> "QF010"
  | QF011 -> "QF011"
  | QF012 -> "QF012"
  | QF013 -> "QF013"
  | QF014 -> "QF014"
  | QF020 -> "QF020"
  | QF021 -> "QF021"
  | QF022 -> "QF022"
  | QF030 -> "QF030"
  | QF040 -> "QF040"
  | QF041 -> "QF041"
  | QF042 -> "QF042"
  | QF050 -> "QF050"
  | QF051 -> "QF051"
  | QF060 -> "QF060"
  | QF061 -> "QF061"
  | QF063 -> "QF063"
  | QF070 -> "QF070"
  | QF071 -> "QF071"
  | QF072 -> "QF072"
  | QF073 -> "QF073"

(* Which section of the paper motivates each check. *)
let code_section = function
  | QF001 -> "2.2"
  | QF002 -> "3.4"
  | QF010 | QF011 | QF012 -> "3.3"
  | QF013 | QF014 -> "2.2"
  | QF020 | QF021 | QF022 -> "2.1"
  | QF030 -> "3.1"
  | QF040 | QF041 | QF042 -> "2.3"
  | QF050 -> "2.3"
  | QF051 -> "4.3"
  | QF060 -> "2.2"
  | QF061 -> "4.1"
  | QF063 -> "2.3"
  | QF070 | QF071 | QF072 -> "4.3"
  | QF073 -> "5"

let code_summary = function
  | QF001 -> "syntax error"
  | QF002 -> "ill-formed union"
  | QF010 -> "head variable not bound by a positive subgoal"
  | QF011 -> "negated-subgoal variable not bound by a positive subgoal"
  | QF012 -> "arithmetic-subgoal variable not bound by a positive subgoal"
  | QF013 -> "parameter in rule head"
  | QF014 -> "flock has no parameters"
  | QF020 -> "unknown relation"
  | QF021 -> "inconsistent arity across subgoals"
  | QF022 -> "arity disagrees with the stored relation"
  | QF030 -> "redundant subgoal (removable by CQ minimization)"
  | QF040 -> "arithmetic subgoal is always false"
  | QF041 -> "arithmetic subgoal is always true"
  | QF042 -> "contradictory arithmetic subgoals"
  | QF050 -> "singleton variable"
  | QF051 -> "cartesian product (disconnected join graph)"
  | QF060 -> "filter references a non-head column"
  | QF061 -> "non-monotone filter defeats a-priori pruning"
  | QF063 -> "view mentions a parameter"
  | QF070 -> "arithmetic subgoal unsatisfiable under certified ranges"
  | QF071 -> "subgoal can never match the stored relation"
  | QF072 -> "flock certified empty against this catalog"
  | QF073 -> "SUM monotonicity assumption unverified"

let all_codes =
  [ QF001; QF002; QF010; QF011; QF012; QF013; QF014; QF020; QF021; QF022;
    QF030; QF040; QF041; QF042; QF050; QF051; QF060; QF061; QF063;
    QF070; QF071; QF072; QF073 ]

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let make code severity span fmt =
  Format.kasprintf (fun message -> { code; severity; span; message }) fmt

let errorf code span fmt = make code Error span fmt
let warningf code span fmt = make code Warning span fmt
let infof code span fmt = make code Info span fmt

let compare_position (a : Ast.position) (b : Ast.position) =
  match Int.compare a.line b.line with
  | 0 -> Int.compare a.col b.col
  | c -> c

(* Located diagnostics first (in source order), unlocated ones last; ties
   broken by code then message so reports are deterministic. *)
let compare a b =
  match Ast.is_no_span a.span, Ast.is_no_span b.span with
  | true, false -> 1
  | false, true -> -1
  | _ -> (
    match compare_position a.span.Ast.start_pos b.span.Ast.start_pos with
    | 0 -> (
      match
        String.compare (code_to_string a.code) (code_to_string b.code)
      with
      | 0 -> String.compare a.message b.message
      | c -> c)
    | c -> c)

let sort diags = List.stable_sort compare diags

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let distinct_codes diags =
  List.sort_uniq String.compare (List.map (fun d -> code_to_string d.code) diags)

(* {1 Text rendering} *)

let pp_text ~file ppf d =
  let loc =
    if Ast.is_no_span d.span then ""
    else
      Format.asprintf "%d:%d: " d.span.Ast.start_pos.Ast.line
        d.span.Ast.start_pos.Ast.col
  in
  Format.fprintf ppf "%s:%s%s[%s]: %s (see paper Sec. %s)" file loc
    (severity_to_string d.severity)
    (code_to_string d.code) d.message (code_section d.code)

let render_text ~file diags =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter (fun d -> Format.fprintf ppf "%a@." (pp_text ~file) d) (sort diags);
  let errors = count Error diags and warnings = count Warning diags in
  if diags = [] then Format.fprintf ppf "%s: clean@." file
  else
    Format.fprintf ppf "%s: %d error%s, %d warning%s, %d info@." file errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")
      (count Info diags);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* {1 JSON rendering (hand-rolled; no JSON library in the tree)} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_json (s : Ast.span) =
  if Ast.is_no_span s then "null"
  else
    Printf.sprintf
      "{\"start\":{\"line\":%d,\"col\":%d},\"end\":{\"line\":%d,\"col\":%d}}"
      s.start_pos.line s.start_pos.col s.end_pos.line s.end_pos.col

let to_json d =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"span\":%s,\"message\":\"%s\",\"section\":\"%s\"}"
    (code_to_string d.code)
    (severity_to_string d.severity)
    (span_json d.span) (json_escape d.message)
    (code_section d.code)

let render_json ~file diags =
  let body = String.concat ",\n    " (List.map to_json (sort diags)) in
  Printf.sprintf
    "{\n  \"file\": \"%s\",\n  \"errors\": %d,\n  \"warnings\": %d,\n  \"infos\": %d,\n  \"diagnostics\": [%s%s]\n}\n"
    (json_escape file) (count Error diags) (count Warning diags)
    (count Info diags)
    (if diags = [] then "" else "\n    ")
    (if diags = [] then body else body ^ "\n  ")
