module Ast = Qf_datalog.Ast
module Containment = Qf_datalog.Containment
module Value = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module D = Diagnostic
module Parse = Qf_core.Parse
module Filter = Qf_core.Filter

let term_label = function
  | Ast.Var v -> v
  | Ast.Param p -> "$" ^ p
  | Ast.Const v -> Value.to_string v

(* {1 Pass 1: safety, Sec. 3.3}

   Deliberately re-implemented from the paper rather than calling
   {!Qf_datalog.Safety}: the test suite checks the two agree on random
   rules, so each is a cross-check on the other. *)

let positively_bound_keys (r : Ast.rule) =
  List.concat_map
    (function
      | Ast.Pos a ->
        List.filter_map
          (function
            | (Ast.Var _ | Ast.Param _) as t -> Some (Ast.binding_key t)
            | Ast.Const _ -> None)
          a.Ast.args
      | Ast.Neg _ | Ast.Cmp _ -> [])
    r.body

let safety_rule (lr : Ast.located_rule) =
  let r = lr.Ast.lr_rule in
  let bound = positively_bound_keys r in
  let is_bound t = List.mem (Ast.binding_key t) bound in
  let head =
    List.concat_map
      (fun t ->
        match t with
        | Ast.Param p ->
          [ D.errorf D.QF013 lr.Ast.lr_head
              "parameter $%s appears in the head; parameters are the \
               flock's output, not head columns"
              p ]
        | Ast.Var v when not (is_bound t) ->
          [ D.errorf D.QF010 lr.Ast.lr_head
              "head variable %s does not occur in a positive subgoal \
               (violates safety condition (1) of Sec. 3.3)"
              v ]
        | Ast.Var _ | Ast.Const _ -> [])
      r.head.args
  in
  let body =
    List.concat
      (List.map2
         (fun lit span ->
           match lit with
           | Ast.Pos _ -> []
           | Ast.Neg a ->
             List.filter_map
               (function
                 | Ast.Const _ -> None
                 | (Ast.Var _ | Ast.Param _) as t ->
                   if is_bound t then None
                   else
                     Some
                       (D.errorf D.QF011 span
                          "%s occurs in the negated subgoal NOT %s but in \
                           no positive subgoal (violates safety condition \
                           (2) of Sec. 3.3)"
                          (term_label t) a.Ast.pred))
               a.Ast.args
           | Ast.Cmp (l, _, rt) ->
             List.filter_map
               (function
                 | Ast.Const _ -> None
                 | (Ast.Var _ | Ast.Param _) as t ->
                   if is_bound t then None
                   else
                     Some
                       (D.errorf D.QF012 span
                          "%s occurs in an arithmetic subgoal but in no \
                           positive subgoal (violates safety condition (3) \
                           of Sec. 3.3)"
                          (term_label t)))
               [ l; rt ])
         r.body lr.Ast.lr_body)
  in
  head @ body

let rule_is_qf_safe r =
  match
    List.filter (fun d -> d.D.severity = D.Error) (safety_rule (Ast.locate r))
  with
  | [] -> Ok ()
  | d :: _ -> Error d.D.message

(* {1 Pass 2: union well-formedness, Sec. 3.4} *)

let union_pass (query : Ast.located_rule list) =
  match query with
  | [] -> []
  | first :: rest ->
    let f = first.Ast.lr_rule in
    let per_rule i (lr : Ast.located_rule) =
      let r = lr.Ast.lr_rule in
      let head_issues =
        if not (String.equal r.head.pred f.head.pred) then
          [ D.errorf D.QF002 lr.Ast.lr_head
              "rule %d of the union defines %s but rule 0 defines %s; all \
               rules of a flock share one head predicate"
              i r.head.pred f.head.pred ]
        else if List.length r.head.args <> List.length f.head.args then
          [ D.errorf D.QF002 lr.Ast.lr_head
              "rule %d of the union gives %s arity %d but rule 0 gives it \
               arity %d"
              i r.head.pred
              (List.length r.head.args)
              (List.length f.head.args) ]
        else []
      in
      let params_issues =
        if Ast.rule_params r <> Ast.rule_params f then
          [ D.errorf D.QF002 lr.Ast.lr_head
              "rule %d of the union mentions parameters {%s} but rule 0 \
               mentions {%s}; every rule must mention the same parameters \
               (Sec. 3.4)"
              i
              (String.concat ","
                 (List.map (fun p -> "$" ^ p) (Ast.rule_params r)))
              (String.concat ","
                 (List.map (fun p -> "$" ^ p) (Ast.rule_params f))) ]
        else []
      in
      head_issues @ params_issues
    in
    let mismatches = List.concat (List.mapi (fun i lr -> per_rule (i + 1) lr) rest) in
    let no_params =
      if Ast.query_params (List.map (fun lr -> lr.Ast.lr_rule) query) = [] then
        [ D.errorf D.QF014 first.Ast.lr_head
            "the query mentions no $parameters: there is nothing to mine" ]
      else []
    in
    mismatches @ no_params

(* {1 Pass 3: schema and catalog consistency} *)

let body_atoms (lr : Ast.located_rule) =
  List.concat
    (List.map2
       (fun lit span ->
         match lit with
         | Ast.Pos a | Ast.Neg a -> [ a, span ]
         | Ast.Cmp _ -> [])
       lr.Ast.lr_rule.Ast.body lr.Ast.lr_body)

let schema_pass ?catalog ~(views : Ast.located_rule list)
    ~(query : Ast.located_rule list) () =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let view_heads =
    List.map (fun lr -> lr.Ast.lr_rule.Ast.head.pred) views
  in
  (* View heads declare their predicate's arity. *)
  List.iter
    (fun (lr : Ast.located_rule) ->
      let h = lr.Ast.lr_rule.Ast.head in
      let k = List.length h.args in
      match Hashtbl.find_opt seen h.pred with
      | Some k0 when k0 <> k ->
        emit
          (D.errorf D.QF021 lr.Ast.lr_head
             "view %s is defined with arity %d here but arity %d earlier"
             h.pred k k0)
      | Some _ -> ()
      | None -> Hashtbl.add seen h.pred k)
    views;
  let check_atom (a : Ast.atom) span =
    let k = List.length a.args in
    let stored =
      match catalog with
      | Some cat when Catalog.mem cat a.pred ->
        Some (Relation.arity (Catalog.find cat a.pred))
      | _ -> None
    in
    match stored with
    | Some sk ->
      if sk <> k then
        emit
          (D.errorf D.QF022 span
             "%s is used with arity %d but the stored relation has %d \
              column%s"
             a.pred k sk
             (if sk = 1 then "" else "s"))
    | None -> (
      (match catalog with
      | Some _ when not (List.mem a.pred view_heads) ->
        if not (Hashtbl.mem seen ("?unknown:" ^ a.pred)) then begin
          Hashtbl.add seen ("?unknown:" ^ a.pred) 0;
          emit
            (D.errorf D.QF020 span
               "unknown relation %s: it is neither in the catalog nor \
                defined by a view"
               a.pred)
        end
      | _ -> ());
      match Hashtbl.find_opt seen a.pred with
      | Some k0 when k0 <> k ->
        emit
          (D.errorf D.QF021 span
             "%s is used here with arity %d but with arity %d elsewhere in \
              the program"
             a.pred k k0)
      | Some _ -> ()
      | None -> Hashtbl.add seen a.pred k)
  in
  List.iter
    (fun lr -> List.iter (fun (a, sp) -> check_atom a sp) (body_atoms lr))
    (views @ query);
  List.rev !diags

(* {1 Pass 4: redundant subgoals via CQ minimization, Sec. 3.1} *)

let redundancy_pass (lr : Ast.located_rule) =
  let r = lr.Ast.lr_rule in
  if List.length r.body > 12 then []
  else
    let minimized = Containment.minimize r in
    if List.length minimized.Ast.body = List.length r.Ast.body then []
    else begin
      (* [minimize] deletes whole literals and keeps order: align the
         minimized body against the original as a subsequence; whatever
         fails to align was deleted. *)
      let rec diff body spans kept acc =
        match body, spans with
        | [], [] -> List.rev acc
        | lit :: ls, sp :: sps -> (
          match kept with
          | k :: ks when Ast.equal_literal lit k -> diff ls sps ks acc
          | _ ->
            diff ls sps kept
              (D.warningf D.QF030 sp
                 "subgoal %s is redundant: the rule is equivalent without \
                  it (CQ minimization, Sec. 3.1)"
                 (Qf_datalog.Pretty.literal_to_string lit)
              :: acc))
        | _ -> List.rev acc
      in
      diff r.body lr.Ast.lr_body minimized.Ast.body []
    end

(* {1 Pass 5: arithmetic-subgoal reasoning}

   Constant folding, unsatisfiable single comparisons, and pairwise
   contradiction detection over a dense total order (the {!Value} order
   interleaves ints and reals, so strict bounds never pinch to a single
   integer). *)

type relset = { lt : bool; eq : bool; gt : bool }

let relset_of = function
  | Ast.Lt -> { lt = true; eq = false; gt = false }
  | Ast.Le -> { lt = true; eq = true; gt = false }
  | Ast.Gt -> { lt = false; eq = false; gt = true }
  | Ast.Ge -> { lt = false; eq = true; gt = true }
  | Ast.Eq -> { lt = false; eq = true; gt = false }
  | Ast.Ne -> { lt = true; eq = false; gt = true }

let relset_inter a b =
  { lt = a.lt && b.lt; eq = a.eq && b.eq; gt = a.gt && b.gt }

let relset_empty r = not (r.lt || r.eq || r.gt)

let pp_cmp (l, c, r) =
  Qf_datalog.Pretty.literal_to_string (Ast.Cmp (l, c, r))

(* Satisfiability of [rel(v,c1) in s1 && rel(v,c2) in s2] for one unknown
   [v] over a dense unbounded order. *)
let bounds_satisfiable (s1, c1) (s2, c2) =
  let cmp = Value.compare c1 c2 in
  if cmp = 0 then not (relset_empty (relset_inter s1 s2))
  else
    let lo_s, hi_s = if cmp < 0 then s1, s2 else s2, s1 in
    (* v < lo; v = lo; lo < v < hi; v = hi; v > hi *)
    (lo_s.lt && hi_s.lt)
    || (lo_s.eq && hi_s.lt)
    || (lo_s.gt && hi_s.lt)
    || (lo_s.gt && hi_s.eq)
    || (lo_s.gt && hi_s.gt)

let arithmetic_pass (lr : Ast.located_rule) =
  let cmps =
    List.concat
      (List.map2
         (fun lit span ->
           match lit with
           | Ast.Cmp (l, c, r) -> [ l, c, r, span ]
           | Ast.Pos _ | Ast.Neg _ -> [])
         lr.Ast.lr_rule.Ast.body lr.Ast.lr_body)
  in
  let folded = ref [] in
  let singles =
    List.filter_map
      (fun (l, c, r, span) ->
        match l, r with
        | Ast.Const a, Ast.Const b ->
          folded := span :: !folded;
          if Ast.comparison_eval (Value.compare a b) c then
            Some
              (D.infof D.QF041 span
                 "comparison %s between constants is always true; drop it"
                 (pp_cmp (l, c, r)))
          else
            Some
              (D.errorf D.QF040 span
                 "comparison %s between constants never holds: the rule \
                  can produce no answers"
                 (pp_cmp (l, c, r)))
        | _ when Ast.equal_term l r ->
          folded := span :: !folded;
          let s = relset_of c in
          if s.eq then
            Some
              (D.infof D.QF041 span
                 "%s compares a term with itself and is always true; drop \
                  it"
                 (pp_cmp (l, c, r)))
          else
            Some
              (D.errorf D.QF040 span
                 "%s compares a term with itself and never holds: the rule \
                  can produce no answers"
                 (pp_cmp (l, c, r)))
        | _ -> None)
      cmps
  in
  (* Pairwise contradictions among comparisons not already folded away. *)
  let live =
    List.filter (fun (_, _, _, sp) -> not (List.memq sp !folded)) cmps
  in
  (* Orient [c op t] as [t (flip op) c] so constants sit on the right. *)
  let orient (l, c, r, span) =
    match l, r with
    | Ast.Const _, (Ast.Var _ | Ast.Param _) ->
      r, Ast.flip_comparison c, l, span
    | _ -> l, c, r, span
  in
  let live = List.map orient live in
  let rec pairs acc = function
    | [] -> List.rev acc
    | (l1, o1, r1, _sp1) :: rest ->
      let conflicts =
        List.filter_map
          (fun (l2, o2, r2, sp2) ->
            let contradiction =
              match r1, r2 with
              | Ast.Const c1, Ast.Const c2 when Ast.equal_term l1 l2 ->
                (* same term against two constants *)
                not (bounds_satisfiable (relset_of o1, c1) (relset_of o2, c2))
              | _ ->
                (* same pair of non-constant terms, possibly swapped *)
                let same = Ast.equal_term l1 l2 && Ast.equal_term r1 r2 in
                let swapped = Ast.equal_term l1 r2 && Ast.equal_term r1 l2 in
                if same then
                  relset_empty (relset_inter (relset_of o1) (relset_of o2))
                else if swapped then
                  relset_empty
                    (relset_inter (relset_of o1)
                       (relset_of (Ast.flip_comparison o2)))
                else false
            in
            if contradiction then
              Some
                (D.errorf D.QF042 sp2
                   "%s contradicts the earlier subgoal %s: together they \
                    can never hold"
                   (pp_cmp (l2, o2, r2)) (pp_cmp (l1, o1, r1)))
            else None)
          rest
      in
      pairs (List.rev_append conflicts acc) rest
  in
  singles @ pairs [] live

(* {1 Pass 6: variable hygiene — singletons and cartesian products} *)

let literal_terms = function
  | Ast.Pos a | Ast.Neg a -> a.Ast.args
  | Ast.Cmp (l, _, r) -> [ l; r ]

let singleton_pass (lr : Ast.located_rule) =
  let r = lr.Ast.lr_rule in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump t =
    match t with
    | Ast.Var v ->
      Hashtbl.replace counts v
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
    | Ast.Param _ | Ast.Const _ -> ()
  in
  List.iter bump r.head.args;
  List.iter (fun lit -> List.iter bump (literal_terms lit)) r.body;
  let singleton v =
    Hashtbl.find_opt counts v = Some 1 && String.length v > 0 && v.[0] <> '_'
  in
  (* Report at the literal that contains the singleton. *)
  List.concat
    (List.map2
       (fun lit span ->
         List.filter_map
           (function
             | Ast.Var v when singleton v ->
               Some
                 (D.infof D.QF050 span
                    "variable %s occurs only once: it joins nothing and \
                     acts as a wildcard (prefix it with _ if deliberate)"
                    v)
             | _ -> None)
           (List.sort_uniq Stdlib.compare (literal_terms lit)))
       r.body lr.Ast.lr_body)

(* Union-find over binding keys; positive subgoals that end up in different
   classes form a cartesian product. *)
let cartesian_pass (lr : Ast.located_rule) =
  let r = lr.Ast.lr_rule in
  let parent : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let rec find k =
    match Hashtbl.find_opt parent k with
    | None ->
      Hashtbl.add parent k k;
      k
    | Some p when String.equal p k -> k
    | Some p ->
      let root = find p in
      Hashtbl.replace parent k root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent ra rb
  in
  let keys_of lit =
    List.filter_map
      (function
        | (Ast.Var _ | Ast.Param _) as t -> Some (Ast.binding_key t)
        | Ast.Const _ -> None)
      (literal_terms lit)
  in
  List.iter
    (fun lit ->
      match keys_of lit with
      | [] -> []  |> ignore
      | k :: rest -> List.iter (union k) rest)
    r.body;
  (* Group the positive subgoals by the class of their first key. *)
  let groups : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let diags = ref [] in
  List.iter2
    (fun lit span ->
      match lit with
      | Ast.Pos _ -> (
        match keys_of lit with
        | [] -> ()
        | k :: _ ->
          let root = find k in
          if Hashtbl.length groups > 0 && not (Hashtbl.mem groups root) then
            diags :=
              D.warningf D.QF051 span
                "this subgoal shares no variable or parameter with the \
                 preceding subgoals: the join degenerates to a cartesian \
                 product"
              :: !diags;
          Hashtbl.replace groups root ())
      | Ast.Neg _ | Ast.Cmp _ -> ())
    r.body lr.Ast.lr_body;
  List.rev !diags

(* {1 Pass 7: FILTER sanity} *)

let head_columns_of (r : Ast.rule) =
  (* Mirrors {!Qf_datalog.Eval.head_columns}, but tolerates parameters in
     the head (those are reported separately as QF013). *)
  let base =
    List.mapi
      (fun i t ->
        match t with
        | Ast.Var v -> Some v
        | Ast.Const _ -> Some (Printf.sprintf "c%d" i)
        | Ast.Param _ -> None)
      r.head.args
  in
  if List.exists Option.is_none base then None
  else
    let base = List.filter_map Fun.id base in
    let seen = Hashtbl.create 8 in
    Some
      (List.map
         (fun name ->
           let n =
             match Hashtbl.find_opt seen name with Some n -> n + 1 | None -> 1
           in
           Hashtbl.replace seen name n;
           if n = 1 then name else Printf.sprintf "%s_%d" name n)
         base)

let filter_pass (query : Ast.located_rule list) (filter : Filter.t)
    filter_span =
  let column_issue =
    match filter.Filter.agg with
    | Filter.Count -> []
    | Filter.Sum c | Filter.Min c | Filter.Max c -> (
      match query with
      | [] -> []
      | first :: _ -> (
        match head_columns_of first.Ast.lr_rule with
        | None -> []
        | Some cols ->
          if List.mem c cols then []
          else
            [ D.errorf D.QF060 filter_span
                "the filter aggregates column %s but the head produces \
                 only (%s)"
                c (String.concat "," cols) ]))
  in
  let monotone_issue =
    if Filter.is_monotone filter then []
    else
      [ D.warningf D.QF061 filter_span
          "MIN filters are not monotone: no a-priori filter step is sound, \
           so plans degenerate to direct evaluation" ]
  in
  column_issue @ monotone_issue

(* {1 Pass 8: views} *)

let view_pass (lr : Ast.located_rule) =
  let r = lr.Ast.lr_rule in
  let param_spans =
    List.concat
      ((if Ast.atom_params r.head <> [] then [ lr.Ast.lr_head ] else [])
      :: List.map2
           (fun lit span ->
             if Ast.literal_params lit <> [] then [ span ] else [])
           r.body lr.Ast.lr_body)
  in
  match param_spans with
  | [] -> []
  | span :: _ ->
    [ D.errorf D.QF063 span
        "view %s mentions a parameter; views are evaluated once, before \
         mining, and may not depend on $parameters"
        r.head.pred ]

(* {1 Driver} *)

(* Identical findings (same code, span, and message) can arise twice, e.g.
   [$1 < $1] trips safety condition (3) for both occurrences of [$1]. *)
let dedup diags =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (d : D.t) ->
      let key = (d.D.code, d.D.span, d.D.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    diags

let check_program ?catalog (lp : Parse.located_program) =
  let views = lp.Parse.l_views and query = lp.Parse.l_query in
  let per_view lr = safety_rule lr @ view_pass lr @ singleton_pass lr in
  let per_query_rule lr =
    safety_rule lr @ redundancy_pass lr @ arithmetic_pass lr
    @ singleton_pass lr @ cartesian_pass lr
  in
  dedup
    (D.sort
       (List.concat_map per_view views
       @ union_pass query
       @ schema_pass ?catalog ~views ~query ()
       @ List.concat_map per_query_rule query
       @ filter_pass query lp.Parse.l_filter lp.Parse.l_filter_span))

let lint ?catalog text =
  match Parse.program_located text with
  | Error (msg, span) -> [ D.errorf D.QF001 span "%s" msg ]
  | Ok lp -> check_program ?catalog lp
