(** Structured diagnostics for the flock static analyzer.

    Every finding carries a stable [QF0xx] code, a severity, a source span
    (threaded from the lexer through the parser), and a cross-reference to
    the section of the paper that motivates the check.  Codes are grouped:

    - [QF00x] — syntax and program structure;
    - [QF01x] — safety (Sec. 3.3) and parameter placement;
    - [QF02x] — schema/catalog consistency;
    - [QF03x] — redundancy (containment, Sec. 3.1);
    - [QF04x] — arithmetic-subgoal reasoning;
    - [QF05x] — join-shape hygiene;
    - [QF06x] — FILTER-clause sanity;
    - [QF07x] — abstract-interpretation certificates ({!Absint}). *)

type severity = Error | Warning | Info

type code =
  | QF001  (** syntax error *)
  | QF002  (** ill-formed union (Sec. 3.4) *)
  | QF010  (** head variable not bound by a positive subgoal (Sec. 3.3(1)) *)
  | QF011  (** negated-subgoal variable not bound (Sec. 3.3(2)) *)
  | QF012  (** arithmetic-subgoal variable not bound (Sec. 3.3(3)) *)
  | QF013  (** parameter in rule head *)
  | QF014  (** flock has no parameters: nothing to mine *)
  | QF020  (** unknown relation (against a catalog) *)
  | QF021  (** same predicate used with different arities *)
  | QF022  (** arity disagrees with the stored relation *)
  | QF030  (** redundant subgoal: CQ minimization (Sec. 3.1) removes it *)
  | QF040  (** arithmetic subgoal can never hold *)
  | QF041  (** arithmetic subgoal always holds (constant-foldable) *)
  | QF042  (** two arithmetic subgoals are jointly unsatisfiable *)
  | QF050  (** variable occurs exactly once *)
  | QF051  (** positive subgoals form a disconnected join graph *)
  | QF060  (** filter aggregates a column the head does not produce *)
  | QF061  (** non-monotone filter: a-priori pruning unavailable (Sec. 4.1) *)
  | QF063  (** view rule mentions a parameter *)
  | QF070  (** arithmetic subgoal unsatisfiable under certified ranges *)
  | QF071  (** positive subgoal can never match the stored relation *)
  | QF072  (** flock certified empty against this catalog *)
  | QF073  (** SUM monotonicity assumption unverified by certified ranges *)

type t = {
  code : code;
  severity : severity;
  span : Qf_datalog.Ast.span;
  message : string;
}

val code_to_string : code -> string

(** Paper section motivating the check, e.g. ["3.3"]. *)
val code_section : code -> string

(** One-line description for the README error-code table. *)
val code_summary : code -> string

val all_codes : code list
val severity_to_string : severity -> string

(** {1 Construction} *)

val errorf :
  code -> Qf_datalog.Ast.span -> ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  code -> Qf_datalog.Ast.span -> ('a, Format.formatter, unit, t) format4 -> 'a

val infof :
  code -> Qf_datalog.Ast.span -> ('a, Format.formatter, unit, t) format4 -> 'a

(** {1 Reporting} *)

(** Source order, unlocated diagnostics last; deterministic. *)
val sort : t list -> t list

val count : severity -> t list -> int
val has_errors : t list -> bool

(** Sorted list of distinct code strings present. *)
val distinct_codes : t list -> string list

(** [file:line:col: severity[QF0xx]: message (see paper Sec. s)] *)
val pp_text : file:string -> Format.formatter -> t -> unit

(** Full text report including the trailing summary line. *)
val render_text : file:string -> t list -> string

val to_json : t -> string

(** Whole-file JSON report: file, counts, and the diagnostics array. *)
val render_json : file:string -> t list -> string
