module Ast = Qf_datalog.Ast
module Containment = Qf_datalog.Containment
module Pretty = Qf_datalog.Pretty
module Flock = Qf_core.Flock
module Filter = Qf_core.Filter
module Plan = Qf_core.Plan

let error fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) = Result.bind

(* {1 Minimization (Sec. 3.1)} *)

let minimization ~original ~minimized =
  if not (Containment.contains ~sup:original ~sub:minimized) then
    error "minimized rule is not contained in the original"
  else if not (Containment.contains ~sup:minimized ~sub:original) then
    error "original rule is not contained in the minimized rule"
  else Ok ()

(* {1 Plan obligations (Sec. 4.2)}

   The semantic content of the paper's plan-generation rule, proved with
   containment mappings instead of re-checked syntactically:

   - {e upper bound}: flock rule i ⊆ step rule i stripped of ok-subgoals.
     Every group the flock tabulates, the step tabulates (projected onto
     the step's parameters), so with a monotone filter the step's output
     over-approximates the surviving parameter tuples.  An ok-subgoal met
     while stripping refers to an earlier step, possibly under a parameter
     renaming; the renamed instance is only an upper bound if the renamed
     step query is itself an upper-bound query for the flock, which is the
     same obligation one level down — hence the recursion, with renamings
     composed by applying them to the referenced step's rules.

   - {e completeness}: final step rule i ⊆ flock rule i, so the lowering
     dropped no subgoal and the plan's final tabulation cannot exceed the
     flock's.  Together with the upper-bound obligations on the final
     step's ok-subgoals this gives equality of the surviving tuples: a
     parameter tuple that passes the flock's filter satisfies every
     ok-subgoal (upper bound + monotonicity), so its groups coincide.

   The recursion is well-founded: ok-subgoals may only reference earlier
   steps, and we resolve them against the strictly-earlier prefix. *)

let is_param = function Ast.Param _ -> true | Ast.Var _ | Ast.Const _ -> false

let split_oks earlier (r : Ast.rule) =
  List.partition_map
    (fun lit ->
      match lit with
      | Ast.Pos a
        when List.exists
               (fun (s : Plan.step) -> String.equal s.Plan.name a.Ast.pred)
               earlier ->
        Right a
      | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> Left lit)
    r.body

(* Check that [step_rule] (a rule of some step's query, already carrying
   any outer renaming) is an upper bound for [orig] (the corresponding
   flock rule): strip its ok-subgoals, prove orig ⊆ core by containment
   mapping, and recurse into each stripped ok-subgoal. *)
let rec check_upper ~flock_rules ~earlier ~context (step_rule : Ast.rule)
    (orig : Ast.rule) =
  let core, oks = split_oks earlier step_rule in
  let core_rule = { step_rule with Ast.body = core } in
  let* () =
    if core = [] then
      error "%s: no subgoal left after stripping ok-subgoals" context
    else if Containment.contains ~sup:core_rule ~sub:orig then Ok ()
    else
      error
        "%s: the flock's rule is not contained in the step's rule with \
         ok-subgoals stripped — the step does not over-approximate the \
         flock"
        context
  in
  let rec each = function
    | [] -> Ok ()
    | ok :: rest ->
      let* () = check_ok_subgoal ~flock_rules ~earlier ~context ok in
      each rest
  in
  each oks

(* Obligation for one ok-subgoal occurrence [ok_s(args)]: resolve the
   step, require distinct parameter arguments, and prove the renamed step
   query is an upper bound for the flock, rule by rule, against the
   strictly-earlier step prefix. *)
and check_ok_subgoal ~flock_rules ~earlier ~context (a : Ast.atom) =
  match
    List.find_opt
      (fun (s : Plan.step) -> String.equal s.Plan.name a.pred)
      earlier
  with
  | None -> error "%s: %s does not reference an earlier step" context a.pred
  | Some s ->
    let args =
      List.filter_map
        (function Ast.Param p -> Some p | Ast.Var _ | Ast.Const _ -> None)
        a.args
    in
    if
      (not (List.for_all is_param a.args))
      || List.length args <> List.length s.Plan.params
      || List.length (List.sort_uniq String.compare args) <> List.length args
    then
      error "%s: ok-subgoal %s does not carry %d distinct parameters" context
        a.pred
        (List.length s.Plan.params)
    else
      let renaming = List.combine s.Plan.params args in
      let prior =
        (* A step may only reference strictly earlier steps. *)
        let rec before acc = function
          | [] -> List.rev acc
          | (e : Plan.step) :: rest ->
            if String.equal e.Plan.name s.Plan.name then List.rev acc
            else before (e :: acc) rest
        in
        before [] earlier
      in
      check_step_upper ~flock_rules ~earlier:prior
        ~context:(Printf.sprintf "%s -> %s" context a.pred)
        ~renaming s.Plan.query

and check_step_upper ~flock_rules ~earlier ~context ~renaming query =
  let renamed = List.map (Ast.rename_params renaming) query in
  let rec per_rule i = function
    | [], [] -> Ok ()
    | sr :: srs, orig :: origs ->
      let* () =
        check_upper ~flock_rules ~earlier
          ~context:(Printf.sprintf "%s (rule %d)" context i)
          sr orig
      in
      per_rule (i + 1) (srs, origs)
    | _ -> error "%s: rule count differs from the flock's" context
  in
  per_rule 0 (renamed, flock_rules)

let identity_renaming (s : Plan.step) =
  List.map (fun p -> p, p) s.Plan.params

let check ~(flock : Flock.t) ~steps ~(final : Plan.step) =
  let flock_rules = flock.Flock.query in
  let* () =
    if steps = [] || Filter.is_monotone flock.Flock.filter then Ok ()
    else
      error
        "auxiliary steps with a non-monotone filter: no upper-bound \
         argument applies, pruning is unsound"
  in
  (* Upper-bound obligations, one per step (auxiliary and final), with
     each step checked against the strictly-earlier prefix. *)
  let rec per_step earlier = function
    | [] -> Ok earlier
    | (s : Plan.step) :: rest ->
      let* () =
        check_step_upper ~flock_rules ~earlier
          ~context:(Printf.sprintf "step %s" s.Plan.name)
          ~renaming:(identity_renaming s) s.Plan.query
      in
      per_step (earlier @ [ s ]) rest
  in
  let* earlier = per_step [] steps in
  let* () =
    check_step_upper ~flock_rules ~earlier
      ~context:(Printf.sprintf "final step %s" final.Plan.name)
      ~renaming:(identity_renaming final) final.Plan.query
  in
  (* Completeness: the final step deletes nothing — its rule i is
     contained in flock rule i (the ok-subgoals only shrink it
     further). *)
  let rec completeness i = function
    | [], [] -> Ok ()
    | (fr : Ast.rule) :: frs, (orig : Ast.rule) :: origs ->
      if Containment.contains ~sup:orig ~sub:fr then
        completeness (i + 1) (frs, origs)
      else
        error
          "final step rule %d is not contained in the flock's rule %d: the \
           lowering dropped a subgoal (plan result may exceed the flock's)"
          i i
    | _ -> error "final step: rule count differs from the flock's"
  in
  completeness 0 (final.Plan.query, flock_rules)

let verify (plan : Plan.t) =
  check ~flock:plan.Plan.flock ~steps:plan.Plan.steps ~final:plan.Plan.final

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Plan.add_auditor ~name:"plan_check" Plan_check.verify;
    Plan.add_auditor ~name:"validate" verify
  end
