(** Execution observability: hierarchical tracing spans and process-wide
    metrics, with pluggable sinks.

    The subsystem is a single global collector guarded by one mutex, plus a
    per-domain stack of open spans (so nesting is tracked without threading
    a context value through every executor signature).  Everything is
    gated on {!enabled}: when disabled — the default unless [QF_PROFILE] is
    set — every entry point is a single atomic load followed by a direct
    call of the instrumented function, so the overhead on hot paths is
    negligible.

    Conventions used by the instrumented kernels and executors:

    - FILTER steps record ["rows_in"], ["groups"], ["rows_out"] and
      ["pruning_ratio"] (surviving fraction, in [[0,1]]) on a
      ["filter.step"] span, plus ["est_rows"] when a cost estimate is
      available — the estimated-vs-actual pair the profiler reports;
    - joins record ["probe_rows"], ["build_rows"] and ["rows_out"];
    - grouping records ["rows_in"], ["candidates"], ["survivors"];
    - the Domain pool records per-chunk task timings under the
      ["pool.chunk"] metric prefix (a counter and total/max gauges) —
      these are the only metrics that legitimately vary with the pool
      size, so determinism checks exclude the ["pool."] prefix. *)

(** {1 The enabled switch} *)

(** Observability is on.  Initialized from the [QF_PROFILE] environment
    variable ([1]/[true]/[yes]); flipped by {!set_enabled}. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** {1 Spans} *)

(** Attribute values attached to spans. *)
type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span = {
  id : int;  (** allocation order = start order; unique per {!reset} epoch *)
  parent : int option;  (** enclosing span on the same domain *)
  name : string;
  mutable attrs : (string * value) list;  (** insertion order *)
  start_s : float;  (** wall clock, {!now} *)
  mutable stop_s : float;  (** [neg_infinity] while the span is open *)
}

(** [with_span name f] runs [f] inside a span; the span finishes when [f]
    returns or raises.  When disabled this is just [f ()]. *)
val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a

(** Set (or replace) an attribute on the innermost open span of the calling
    domain.  No-op when disabled or when no span is open. *)
val set_attr : string -> value -> unit

(** {1 Metrics} *)

(** [count name n] adds [n] to the counter [name] (creating it at 0). *)
val count : string -> int -> unit

val gauge_set : string -> float -> unit
val gauge_add : string -> float -> unit

(** Keep the maximum of the stored and the offered value. *)
val gauge_max : string -> float -> unit

(** [timed name f] times [f] and aggregates the duration under [name]:
    counter [name ^ ".tasks"], gauges [name ^ ".time_total_s"] and
    [name ^ ".time_max_s"].  Safe to call from worker domains.  When
    disabled this is just [f ()]. *)
val timed : string -> (unit -> 'a) -> 'a

(** Wall clock (seconds since the epoch); the clock every span uses. *)
val now : unit -> float

(** {1 Reports} *)

type report = {
  spans : span list;  (** finished spans, in start (= id) order *)
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
}

(** Snapshot of everything recorded since the last {!reset}.  Spans still
    open are not included. *)
val report : unit -> report

(** Drop all recorded spans and metrics and restart span ids at 0. *)
val reset : unit -> unit

(** {1 Sinks} *)

type sink = {
  on_span : span -> unit;  (** called as each span finishes *)
  on_report : report -> unit;  (** called by {!flush} *)
}

(** Drops everything (the default). *)
val silent : sink

(** Renders the span tree and metrics as text on {!flush}. *)
val text_tree : Format.formatter -> sink

(** Streams one JSON object per finished span, then one [counter]/[gauge]
    line per metric on {!flush}. *)
val json_lines : out_channel -> sink

val set_sink : sink -> unit

(** Send {!report} to the current sink's [on_report]. *)
val flush : unit -> unit

(** {1 Rendering}

    Both renderers are deterministic: spans in id order, attributes in
    insertion order, metrics sorted by name.  With [redact_timings] every
    duration prints as ["-"] (text) or [null] (JSON) and time-named gauges
    are redacted too, so the output is byte-stable across runs — the form
    the golden tests pin down. *)

val render_text : ?redact_timings:bool -> report -> string
val render_json : ?redact_timings:bool -> report -> string

(** One attribute value as a compact string (JSON-compatible for numbers
    and booleans; strings unquoted). *)
val value_to_string : value -> string
