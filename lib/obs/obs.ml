(* Tracing spans + metrics.  One global collector under a mutex; the
   current span is a per-domain stack (Domain.DLS), so instrumented code
   never threads a context value.  All entry points are gated on a single
   atomic flag: the disabled fast path is one load and a tail call. *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span = {
  id : int;
  parent : int option;
  name : string;
  mutable attrs : (string * value) list;
  start_s : float;
  mutable stop_s : float;
}

type report = {
  spans : span list;
  counters : (string * int) list;
  gauges : (string * float) list;
}

type sink = {
  on_span : span -> unit;
  on_report : report -> unit;
}

(* {1 State} *)

let truthy = function
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let enabled_flag = Atomic.make (truthy (Sys.getenv_opt "QF_PROFILE"))
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let mutex = Mutex.create ()
let next_id = ref 0
let finished : span list ref = ref []
let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauges_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 32

(* Stack of open spans on this domain, innermost first. *)
let stack_key : span list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let silent = { on_span = ignore; on_report = ignore }
let current_sink = ref silent
let set_sink s = current_sink := s

let now = Unix.gettimeofday

(* {1 Spans} *)

let start_span ?(attrs = []) name =
  let parent =
    match Domain.DLS.get stack_key with
    | [] -> None
    | s :: _ -> Some s.id
  in
  Mutex.lock mutex;
  let id = !next_id in
  incr next_id;
  Mutex.unlock mutex;
  let s = { id; parent; name; attrs; start_s = now (); stop_s = neg_infinity } in
  Domain.DLS.set stack_key (s :: Domain.DLS.get stack_key);
  s

let finish_span s =
  s.stop_s <- now ();
  (match Domain.DLS.get stack_key with
  | top :: rest when top == s -> Domain.DLS.set stack_key rest
  | stack ->
    (* Out-of-order finish (an exception unwound through several spans):
       drop [s] wherever it sits. *)
    Domain.DLS.set stack_key (List.filter (fun x -> x != s) stack));
  Mutex.lock mutex;
  finished := s :: !finished;
  Mutex.unlock mutex;
  !current_sink.on_span s

let with_span ?attrs name f =
  if not (enabled ()) then f ()
  else begin
    let s = start_span ?attrs name in
    Fun.protect ~finally:(fun () -> finish_span s) f
  end

let set_attr key v =
  if enabled () then
    match Domain.DLS.get stack_key with
    | [] -> ()
    | s :: _ ->
      s.attrs <-
        (if List.mem_assoc key s.attrs then
           List.map (fun (k, old) -> if String.equal k key then k, v else k, old) s.attrs
         else s.attrs @ [ key, v ])

(* {1 Metrics} *)

let count name n =
  if enabled () then begin
    Mutex.lock mutex;
    (match Hashtbl.find_opt counters_tbl name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace counters_tbl name (ref n));
    Mutex.unlock mutex
  end

let gauge_update name f =
  Mutex.lock mutex;
  (match Hashtbl.find_opt gauges_tbl name with
  | Some r -> r := f (Some !r)
  | None -> Hashtbl.replace gauges_tbl name (ref (f None)));
  Mutex.unlock mutex

let gauge_set name v =
  if enabled () then gauge_update name (fun _ -> v)

let gauge_add name v =
  if enabled () then
    gauge_update name (function None -> v | Some old -> old +. v)

let gauge_max name v =
  if enabled () then
    gauge_update name (function None -> v | Some old -> Float.max old v)

let timed name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now () in
    Fun.protect f ~finally:(fun () ->
        let dt = now () -. t0 in
        count (name ^ ".tasks") 1;
        gauge_add (name ^ ".time_total_s") dt;
        gauge_max (name ^ ".time_max_s") dt)
  end

(* {1 Reports} *)

let by_name (a, _) (b, _) = String.compare a b

let report () =
  Mutex.lock mutex;
  let spans = List.sort (fun a b -> Int.compare a.id b.id) !finished in
  let counters =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl []
    |> List.sort by_name
  in
  let gauges =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gauges_tbl []
    |> List.sort by_name
  in
  Mutex.unlock mutex;
  { spans; counters; gauges }

let reset () =
  Mutex.lock mutex;
  finished := [];
  next_id := 0;
  Hashtbl.reset counters_tbl;
  Hashtbl.reset gauges_tbl;
  Mutex.unlock mutex;
  Domain.DLS.set stack_key []

let flush () = !current_sink.on_report (report ())

(* {1 Rendering} *)

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let value_to_string = function
  | Int n -> string_of_int n
  | Float f -> float_str f
  | Str s -> s
  | Bool b -> string_of_bool b

let is_time_gauge name =
  (* Gauges carrying wall-clock fractions; redacted in stable output. *)
  let has_sub sub =
    let n = String.length name and m = String.length sub in
    let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
    go 0
  in
  has_sub "time" || has_sub "seconds"

let duration s = s.stop_s -. s.start_s

let render_text ?(redact_timings = false) r =
  let buf = Buffer.create 1024 in
  let children =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun s ->
        match s.parent with
        | Some p -> Hashtbl.replace tbl p (s :: Option.value (Hashtbl.find_opt tbl p) ~default:[])
        | None -> ())
      (List.rev r.spans);
    tbl
  in
  let rec emit depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf s.name;
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf " %s=%s" k (value_to_string v)))
      s.attrs;
    Buffer.add_string buf
      (if redact_timings then " (-)"
       else Printf.sprintf " (%.6fs)" (duration s));
    Buffer.add_char buf '\n';
    List.iter (emit (depth + 1))
      (Hashtbl.find_opt children s.id |> Option.value ~default:[])
  in
  let roots = List.filter (fun s -> s.parent = None) r.spans in
  if roots <> [] then begin
    Buffer.add_string buf "spans:\n";
    List.iter (emit 1) roots
  end;
  if r.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k v))
      r.counters
  end;
  if r.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s %s\n" k
             (if redact_timings && is_time_gauge k then "-" else float_str v)))
      r.gauges
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Int n -> string_of_int n
  | Float f ->
    if Float.is_finite f then float_str f
    else Printf.sprintf "%S" (Float.to_string f)
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> string_of_bool b

let span_to_json ?(redact_timings = false) s =
  let attrs =
    String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\": %s" (json_escape k) (value_to_json v))
         s.attrs)
  in
  Printf.sprintf
    "{ \"id\": %d, \"parent\": %s, \"name\": \"%s\", \"attrs\": { %s }, \
     \"duration_s\": %s }"
    s.id
    (match s.parent with None -> "null" | Some p -> string_of_int p)
    (json_escape s.name) attrs
    (if redact_timings then "null" else Printf.sprintf "%.6f" (duration s))

let render_json ?(redact_timings = false) r =
  let spans =
    String.concat ",\n    " (List.map (span_to_json ~redact_timings) r.spans)
  in
  let counters =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
         r.counters)
  in
  let gauges =
    String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\": %s" (json_escape k)
             (if redact_timings && is_time_gauge k then "null" else float_str v))
         r.gauges)
  in
  Printf.sprintf
    "{\n  \"spans\": [\n    %s\n  ],\n  \"counters\": { %s },\n  \"gauges\": { %s }\n}\n"
    spans counters gauges

let text_tree ppf =
  {
    on_span = ignore;
    on_report =
      (fun r ->
        Format.fprintf ppf "%s@?" (render_text r));
  }

let json_lines oc =
  {
    on_span =
      (fun s ->
        output_string oc (span_to_json s);
        output_char oc '\n');
    on_report =
      (fun r ->
        List.iter
          (fun (k, v) ->
            Printf.fprintf oc
              "{ \"counter\": \"%s\", \"value\": %d }\n" (json_escape k) v)
          r.counters;
        List.iter
          (fun (k, v) ->
            Printf.fprintf oc
              "{ \"gauge\": \"%s\", \"value\": %s }\n" (json_escape k)
              (float_str v))
          r.gauges;
        Stdlib.flush oc);
  }
