(** A dependency-free [Domain]-based worker pool.

    A pool of size [s] represents a total parallelism of [s]: [s - 1]
    spawned worker domains plus the calling domain, which participates in
    every {!run_all}.  A pool of size 1 spawns nothing and runs every task
    inline, so sequential configurations pay no synchronization cost.

    The relational kernels ({!Qf_relational.Join}, [Relation.select],
    [Aggregate.group_by], the Datalog evaluator's binding extension) fan
    work out over the {!default} pool when the input is large enough (see
    {!par_threshold}) and fall back to their sequential paths otherwise. *)

type t

(** [create ~size] makes a pool of parallelism [max 1 size].  Its
    [size - 1] worker domains are spawned lazily on the first multi-task
    {!run_all}, not here: an idle domain is not free (every minor-GC
    stop-the-world must rendezvous with it), so a pool that never
    dispatches — e.g. when {!par_threshold} keeps every kernel
    sequential on a host with no parallel headroom — costs nothing. *)
val create : size:int -> t

(** Total parallelism (workers + caller). *)
val size : t -> int

(** Join every worker domain.  Idempotent; the pool must not be used
    afterwards. *)
val shutdown : t -> unit

(** [run_all pool thunks] runs every thunk to completion — on the workers
    and the calling domain — and returns their results in input order.
    The first exception raised by any thunk is re-raised in the caller
    (after all thunks have finished). *)
val run_all : t -> (unit -> 'a) list -> 'a list

(** [run_chunks pool ~n f] splits [0, n)] into near-equal [~lo ~hi)
    ranges and runs [f] on each in parallel, returning per-chunk results
    in ascending-range order.  The chunk count is proportional to the
    pool size (a small oversubscription factor lets fast domains steal
    slack from stragglers); a size-1 pool gets exactly one chunk.
    Deterministic given deterministic [f]. *)
val run_chunks : t -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list

(** The chunk boundaries {!run_chunks} uses (exposed for tests). *)
val chunks_of : size:int -> n:int -> (int * int) list

(** Pool size for the shared default pool: [QF_DOMAINS] when set to a
    positive integer, else [Domain.recommended_domain_count ()]. *)
val default_size : unit -> int

(** Input cardinality below which parallel kernels stay sequential.
    [QF_PAR_THRESHOLD] (positive integer) overrides — resolved when the
    default pool is created, so override-then-[set_default_size] takes
    effect and the per-call cost is a field read; otherwise the
    threshold is calibrated on first use — per pool size, cached — by
    measuring the pool's actual dispatch cost against a per-row work
    proxy, scaled by the winnable fraction [1 - 1/eff] where [eff] is
    [min (pool size) (hardware domain count)], and clamped to
    [1024, 2^20].  When [eff <= 1] (a pool no wider than one hardware
    thread, or any pool on a 1-core host) the threshold is [max_int]:
    with no parallel headroom a fan-out can only lose, so the kernels
    never dispatch. *)
val par_threshold : unit -> int

(** The shared pool, created lazily from {!default_size}. *)
val default : unit -> t

(** Replace the shared pool with one of the given size (shutting the old
    one down).  The benchmark's scaling sweeps use this. *)
val set_default_size : int -> unit
