(* A dependency-free Domain-based worker pool (OCaml >= 5.0 stdlib only).

   A pool of size [s] owns [s - 1] worker domains plus the calling domain:
   [run_all] pushes thunks onto a shared queue, the caller drains the queue
   alongside the workers, and a countdown latch releases the caller once
   every thunk has finished.  Workers never block on anything but the queue
   condition, so nested [run_all] calls cannot deadlock (a nested caller
   first helps drain the queue, then waits only for tasks already running
   on other domains).

   A pool of size 1 spawns no domains at all: [run_all] degenerates to
   [List.map (fun f -> f ())], so single-core configurations pay nothing. *)

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  mutable spawned : bool;
  mutable threshold : int;
      (* calibrated par-threshold for this pool; 0 = not yet computed.
         Cached here so the kernels' per-call [par_threshold] is a plain
         field read, not a mutex + hashtable probe (that asymmetry
         against the size-1 fast path was visible in the E12 sweep). *)
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
}

let size t = t.size

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stop then begin
        Mutex.unlock t.mutex;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some job ->
          Mutex.unlock t.mutex;
          Some job
        | None ->
          Condition.wait t.nonempty t.mutex;
          wait ()
    in
    match wait () with
    | None -> ()
    | Some job ->
      job ();
      next ()
  in
  next ()

let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 1 -> Some v
    | _ -> None)

let create ~size =
  let size = max 1 size in
  {
    size;
    workers = [||];
    spawned = false;
    (* [QF_PAR_THRESHOLD] is resolved once, when the pool is made: the
       kernels consult [par_threshold] on every call, and a getenv there
       is measurable.  Tests that override the variable re-create the
       default pool afterwards (set_default_size), so they still see it. *)
    threshold = (match env_int "QF_PAR_THRESHOLD" with Some v -> v | None -> 0);
    queue = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    stop = false;
  }

(* Workers are spawned on the first real fan-out, not at [create]: an
   idle domain is not free — every minor-GC stop-the-world section must
   rendezvous with it, which on a host without spare cores means extra
   context switches on the critical path (measured ~10% at size 2 on a
   1-core container, growing with the domain count).  A pool whose
   threshold never lets a kernel dispatch therefore costs literally
   nothing, which is what makes the E12 sweep's 2-domain configuration
   run at parity instead of a guaranteed loss. *)
let ensure_workers t =
  if (not t.spawned) && t.size > 1 then begin
    Mutex.lock t.mutex;
    if (not t.spawned) && not t.stop then begin
      t.workers <-
        Array.init (t.size - 1) (fun _ ->
            Domain.spawn (fun () -> worker_loop t));
      t.spawned <- true
    end;
    Mutex.unlock t.mutex
  end

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopped = t.stop in
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  if not was_stopped then Array.iter Domain.join t.workers

let run_all : type a. t -> (unit -> a) list -> a list =
 fun t thunks ->
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ when t.size = 1 -> List.map (fun f -> f ()) thunks
  | _ ->
    ensure_workers t;
    let n = List.length thunks in
    let results : a option array = Array.make n None in
    let first_error : exn option Atomic.t = Atomic.make None in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let wrap i f () =
      (try results.(i) <- Some (f ())
       with e -> ignore (Atomic.compare_and_set first_error None (Some e)));
      (* The last finisher wakes the caller; intermediate finishers only
         decrement.  The atomic RMW chain orders every task's writes before
         the caller's read of [remaining = 0]. *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_mutex;
        Condition.broadcast done_cond;
        Mutex.unlock done_mutex
      end
    in
    Mutex.lock t.mutex;
    List.iteri (fun i f -> Queue.add (wrap i f) t.queue) thunks;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* The caller participates: drain the queue before waiting. *)
    let rec help () =
      Mutex.lock t.mutex;
      let job = Queue.take_opt t.queue in
      Mutex.unlock t.mutex;
      match job with
      | Some job ->
        job ();
        help ()
      | None -> ()
    in
    help ();
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    Array.to_list results
    |> List.map (function
         | Some v -> v
         | None -> failwith "Exec_pool.run_all: missing result")

(* {1 Chunked fan-out over [0, n)} *)

let chunks_of ~size ~n =
  (* At most [size] chunks, each of near-equal width; fewer when [n] is
     small so no chunk is empty. *)
  let k = min size (max 1 n) in
  let base = n / k and rem = n mod k in
  List.init k (fun i ->
      let lo = (i * base) + min i rem in
      let width = base + if i < rem then 1 else 0 in
      lo, lo + width)

(* More chunks than domains gives the queue slack to balance uneven
   per-row costs: a domain finishing a cheap chunk immediately takes the
   next one instead of idling behind a straggler.  [chunks_of] itself
   keeps its at-most-[size] contract (tests rely on it); the
   oversubscription factor applies only here. *)
let chunk_factor = 4

let run_chunks t ~n f =
  if n <= 0 then []
  else begin
    (* Per-chunk task timings (the observability layer's view of the pool):
       each chunk contributes to the [pool.chunk] task counter and its
       total/max duration gauges.  Guarded so the disabled path adds no
       per-chunk work; [Obs.timed] is safe from worker domains. *)
    let f =
      if Qf_obs.Obs.enabled () then fun ~lo ~hi ->
        Qf_obs.Obs.timed "pool.chunk" (fun () -> f ~lo ~hi)
      else f
    in
    (* Chunk boundaries are the pool's cancellation checkpoints: a
       governed query's deadline or cancellation interrupts a fan-out
       between chunks (one atomic load per chunk when ungoverned). *)
    let f ~lo ~hi =
      Qf_governor.Governor.check ();
      f ~lo ~hi
    in
    let size = if t.size = 1 then 1 else t.size * chunk_factor in
    run_all t
      (List.map (fun (lo, hi) -> fun () -> f ~lo ~hi) (chunks_of ~size ~n))
  end

(* {1 The shared default pool} *)

let default_size () =
  match env_int "QF_DOMAINS" with
  | Some v -> v
  | None -> Domain.recommended_domain_count ()

let default_pool : t option ref = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create ~size:(default_size ()) in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_mutex;
  pool

let set_default_size size =
  Mutex.lock default_mutex;
  let old = !default_pool in
  default_pool := Some (create ~size);
  Mutex.unlock default_mutex;
  Option.iter shutdown old

(* {1 Adaptive parallel threshold}

   The break-even input size depends on the machine: how much a fan-out
   dispatch costs (queue round-trip, worker wake-up, latch) relative to
   one row of kernel work.  A fixed constant was mis-calibrated both
   ways — on an oversubscribed host (more domains than cores) dispatch
   is so expensive that 4096-row kernels lost time going parallel (the
   E12 regression), while on a wide idle machine it left work on the
   table.  So on first use we measure both sides and derive the
   threshold, per pool size:

   - dispatch cost: the best of a few empty [run_chunks] fan-outs
     (optimistic on purpose — contention only raises the real cost, and
     a higher measurement only makes us more conservative);
   - per-row cost: a simple array-walk proxy for a cheap kernel row.

   The threshold asks the sequential work to dominate dispatch by
   [work_factor], clamped to a sane range.  [QF_PAR_THRESHOLD] (used by
   the tests to force the parallel paths) bypasses calibration. *)

let work_factor = 12.
let threshold_min = 1024
let threshold_max = 1 lsl 20

let calibrated : (int, int) Hashtbl.t = Hashtbl.create 4
let calibrated_mutex = Mutex.create ()

let measure_dispatch pool =
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Qf_obs.Obs.now () in
    ignore (run_chunks pool ~n:(size pool * chunk_factor) (fun ~lo:_ ~hi:_ -> ()));
    best := Float.min !best (Qf_obs.Obs.now () -. t0)
  done;
  !best

let measure_row_cost () =
  let n = 1 lsl 16 in
  let a = Array.init n (fun i -> i land 0xFF) in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Qf_obs.Obs.now () in
    let s = ref 0 in
    for i = 0 to n - 1 do
      s := (!s * 31) + Array.unsafe_get a i
    done;
    ignore (Sys.opaque_identity !s);
    best := Float.min !best (Qf_obs.Obs.now () -. t0)
  done;
  !best /. float_of_int n

let calibrate pool =
  (* Effective parallelism is bounded by the hardware, not the pool: a
     2-domain pool on a 1-core host time-shares the core, so a fan-out
     can never beat the sequential path — it only adds dispatch, merge,
     and stop-the-world cost.  With no headroom the answer is categorical
     (never dispatch), not a measurement. *)
  let hw = Domain.recommended_domain_count () in
  let eff = min (size pool) hw in
  if eff <= 1 then max_int
  else begin
    let dispatch = measure_dispatch pool in
    let per_row = Float.max 1e-10 (measure_row_cost ()) in
    (* A fan-out can save at most the (1 - 1/eff) fraction of the
       sequential work that other cores absorb; ask that winnable
       fraction, not the whole input, to dominate dispatch. *)
    let win = 1. -. (1. /. float_of_int eff) in
    let t = int_of_float (work_factor *. dispatch /. (per_row *. win)) in
    min threshold_max (max threshold_min t)
  end

let par_threshold () =
  let pool = default () in
  if pool.threshold > 0 then pool.threshold
  else if size pool = 1 then threshold_min
    (* irrelevant: kernels never fan out on a size-1 pool *)
  else begin
      Mutex.lock calibrated_mutex;
      let v =
        match Hashtbl.find_opt calibrated (size pool) with
        | Some v -> v
        | None ->
          Mutex.unlock calibrated_mutex;
          (* Calibrate outside the lock: the fan-outs below must not
             deadlock against another caller; a duplicate measurement is
             harmless. *)
          let v = calibrate pool in
          Mutex.lock calibrated_mutex;
          Hashtbl.replace calibrated (size pool) v;
          v
      in
      Mutex.unlock calibrated_mutex;
      (* Benign race: concurrent callers store the same cached value. *)
      pool.threshold <- v;
      v
    end
