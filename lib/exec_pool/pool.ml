(* A dependency-free Domain-based worker pool (OCaml >= 5.0 stdlib only).

   A pool of size [s] owns [s - 1] worker domains plus the calling domain:
   [run_all] pushes thunks onto a shared queue, the caller drains the queue
   alongside the workers, and a countdown latch releases the caller once
   every thunk has finished.  Workers never block on anything but the queue
   condition, so nested [run_all] calls cannot deadlock (a nested caller
   first helps drain the queue, then waits only for tasks already running
   on other domains).

   A pool of size 1 spawns no domains at all: [run_all] degenerates to
   [List.map (fun f -> f ())], so single-core configurations pay nothing. *)

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
}

let size t = t.size

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stop then begin
        Mutex.unlock t.mutex;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some job ->
          Mutex.unlock t.mutex;
          Some job
        | None ->
          Condition.wait t.nonempty t.mutex;
          wait ()
    in
    match wait () with
    | None -> ()
    | Some job ->
      job ();
      next ()
  in
  next ()

let create ~size =
  let size = max 1 size in
  let t =
    {
      size;
      workers = [||];
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      stop = false;
    }
  in
  if size > 1 then
    t.workers <-
      Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopped = t.stop in
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  if not was_stopped then Array.iter Domain.join t.workers

let run_all : type a. t -> (unit -> a) list -> a list =
 fun t thunks ->
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ when t.size = 1 -> List.map (fun f -> f ()) thunks
  | _ ->
    let n = List.length thunks in
    let results : a option array = Array.make n None in
    let first_error : exn option Atomic.t = Atomic.make None in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let wrap i f () =
      (try results.(i) <- Some (f ())
       with e -> ignore (Atomic.compare_and_set first_error None (Some e)));
      (* The last finisher wakes the caller; intermediate finishers only
         decrement.  The atomic RMW chain orders every task's writes before
         the caller's read of [remaining = 0]. *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_mutex;
        Condition.broadcast done_cond;
        Mutex.unlock done_mutex
      end
    in
    Mutex.lock t.mutex;
    List.iteri (fun i f -> Queue.add (wrap i f) t.queue) thunks;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* The caller participates: drain the queue before waiting. *)
    let rec help () =
      Mutex.lock t.mutex;
      let job = Queue.take_opt t.queue in
      Mutex.unlock t.mutex;
      match job with
      | Some job ->
        job ();
        help ()
      | None -> ()
    in
    help ();
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    Array.to_list results
    |> List.map (function
         | Some v -> v
         | None -> failwith "Exec_pool.run_all: missing result")

(* {1 Chunked fan-out over [0, n)} *)

let chunks_of ~size ~n =
  (* At most [size] chunks, each of near-equal width; fewer when [n] is
     small so no chunk is empty. *)
  let k = min size (max 1 n) in
  let base = n / k and rem = n mod k in
  List.init k (fun i ->
      let lo = (i * base) + min i rem in
      let width = base + if i < rem then 1 else 0 in
      lo, lo + width)

let run_chunks t ~n f =
  if n <= 0 then []
  else begin
    (* Per-chunk task timings (the observability layer's view of the pool):
       each chunk contributes to the [pool.chunk] task counter and its
       total/max duration gauges.  Guarded so the disabled path adds no
       per-chunk work; [Obs.timed] is safe from worker domains. *)
    let f =
      if Qf_obs.Obs.enabled () then fun ~lo ~hi ->
        Qf_obs.Obs.timed "pool.chunk" (fun () -> f ~lo ~hi)
      else f
    in
    run_all t
      (List.map (fun (lo, hi) -> fun () -> f ~lo ~hi) (chunks_of ~size:t.size ~n))
  end

(* {1 The shared default pool} *)

let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 1 -> Some v
    | _ -> None)

let default_size () =
  match env_int "QF_DOMAINS" with
  | Some v -> v
  | None -> Domain.recommended_domain_count ()

(* Below this many items a kernel should stay sequential: chunking and
   merging overhead beats the win on small inputs. *)
let par_threshold () =
  match env_int "QF_PAR_THRESHOLD" with Some v -> v | None -> 4096

let default_pool : t option ref = ref None
let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create ~size:(default_size ()) in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_mutex;
  pool

let set_default_size size =
  Mutex.lock default_mutex;
  let old = !default_pool in
  default_pool := Some (create ~size);
  Mutex.unlock default_mutex;
  Option.iter shutdown old
