(* Heap files moved into [qf_relational] (spill kernels write them);
   re-exported here for the storage API's users. *)
include Qf_relational.Heap_file
