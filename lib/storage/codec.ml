(* The binary codec moved into [qf_relational] (spill kernels need it);
   re-exported here for the storage API's users. *)
include Qf_relational.Codec
