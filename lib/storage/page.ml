(* Slotted pages moved into [qf_relational] so the governed kernels can
   spill through them; re-exported here for the storage API's users. *)
include Qf_relational.Page
