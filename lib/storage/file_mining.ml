module Value = Qf_relational.Value
module Tuple = Qf_relational.Tuple
module Schema = Qf_relational.Schema
module Relation = Qf_relational.Relation

type pair_count = {
  item1 : Value.t;
  item2 : Value.t;
  support : int;
}

(* Hash tables keyed by values and value pairs (polymorphic hash is fine:
   Value.t is a plain variant). *)
module Vtbl = Hashtbl

let check_schema file =
  if Schema.arity (Heap_file.schema file) <> 2 then
    invalid_arg "File_mining: expected a (BID, Item) heap file"

let frequent_pairs file ~support =
  check_schema file;
  (* Pass 1: per-item distinct-basket counts.  Duplicated (B, item) rows
     must not double-count, so track seen pairs. *)
  let item_counts : (Value.t, int) Vtbl.t = Vtbl.create 1024 in
  let seen : (Value.t * Value.t, unit) Vtbl.t = Vtbl.create 4096 in
  Heap_file.iter
    (fun tup ->
      let b = Tuple.get tup 0 and item = Tuple.get tup 1 in
      if not (Vtbl.mem seen (b, item)) then begin
        Vtbl.add seen (b, item) ();
        Vtbl.replace item_counts item
          (1 + Option.value (Vtbl.find_opt item_counts item) ~default:0)
      end)
    file;
  Vtbl.reset seen;
  let frequent item =
    match Vtbl.find_opt item_counts item with
    | Some n -> n >= support
    | None -> false
  in
  (* Pass 2: accumulate each basket's surviving items; the a-priori filter
     is what keeps this in-memory structure small. *)
  let baskets : (Value.t, Value.t list) Vtbl.t = Vtbl.create 4096 in
  Heap_file.iter
    (fun tup ->
      let b = Tuple.get tup 0 and item = Tuple.get tup 1 in
      if frequent item then begin
        let existing = Option.value (Vtbl.find_opt baskets b) ~default:[] in
        if not (List.exists (Value.equal item) existing) then
          Vtbl.replace baskets b (item :: existing)
      end)
    file;
  let pair_counts : (Value.t * Value.t, int) Vtbl.t = Vtbl.create 4096 in
  Vtbl.iter
    (fun _b items ->
      let items = List.sort Value.compare items in
      let rec pairs = function
        | [] -> ()
        | x :: rest ->
          List.iter
            (fun y ->
              let key = x, y in
              Vtbl.replace pair_counts key
                (1 + Option.value (Vtbl.find_opt pair_counts key) ~default:0))
            rest;
          pairs rest
      in
      pairs items)
    baskets;
  Vtbl.fold
    (fun (item1, item2) n acc ->
      if n >= support then { item1; item2; support = n } :: acc else acc)
    pair_counts []
  |> List.sort (fun a b ->
         match Value.compare a.item1 b.item1 with
         | 0 -> Value.compare a.item2 b.item2
         | c -> c)

let frequent_pairs_relation file ~support =
  let out = Relation.create (Schema.of_list [ "$1"; "$2" ]) in
  List.iter
    (fun { item1; item2; _ } -> Relation.add out (Tuple.of_array [| item1; item2 |]))
    (frequent_pairs file ~support);
  out
