module Value = Qf_relational.Value
module Tuple = Qf_relational.Tuple
module Schema = Qf_relational.Schema
module Relation = Qf_relational.Relation
module Catalog = Qf_relational.Catalog

let binding_keys (r : Ast.rule) =
  let of_literal lit =
    List.map (fun v -> v) (Ast.literal_vars lit)
    @ List.map (fun p -> "$" ^ p) (Ast.literal_params lit)
  in
  List.sort_uniq String.compare
    (List.concat_map of_literal r.body @ Ast.atom_vars r.head)

let active_domain catalog (r : Ast.rule) =
  let seen = Hashtbl.create 64 in
  let values = ref [] in
  List.iter
    (fun lit ->
      match lit with
      | Ast.Pos a | Ast.Neg a ->
        let rel = Catalog.find catalog a.Ast.pred in
        Relation.iter
          (fun tup ->
            Seq.iter
              (fun v ->
                let key = Value.hash v, Value.to_string v in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  values := v :: !values
                end)
              (Tuple.to_seq tup))
          rel
      | Ast.Cmp (l, _, rt) ->
        (* Constants in comparisons also belong to the domain: a rule like
           [X = 3] can bind X to 3 even if 3 is not stored. *)
        List.iter
          (function
            | Ast.Const v ->
              let key = Value.hash v, Value.to_string v in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                values := v :: !values
              end
            | Ast.Var _ | Ast.Param _ -> ())
          [ l; rt ])
    r.body;
  !values

let term_value env = function
  | Ast.Const v -> v
  | (Ast.Var _ | Ast.Param _) as t -> List.assoc (Ast.binding_key t) env

let satisfies catalog env (lit : Ast.literal) =
  match lit with
  | Ast.Pos a ->
    Relation.mem
      (Catalog.find catalog a.pred)
      (Tuple.of_list (List.map (term_value env) a.args))
  | Ast.Neg a ->
    not
      (Relation.mem
         (Catalog.find catalog a.pred)
         (Tuple.of_list (List.map (term_value env) a.args)))
  | Ast.Cmp (l, c, rt) ->
    Ast.comparison_eval (Value.compare (term_value env l) (term_value env rt)) c

let tabulate ?(max_assignments = 5_000_000) catalog (r : Ast.rule) =
  (match Safety.check r with
  | Ok () -> ()
  | Error e -> raise (Eval.Error e));
  List.iter
    (fun lit ->
      match lit with
      | Ast.Pos a | Ast.Neg a ->
        if not (Catalog.mem catalog a.Ast.pred) then
          raise (Eval.Error (Printf.sprintf "unknown predicate %s" a.Ast.pred))
      | Ast.Cmp _ -> ())
    r.body;
  let keys = binding_keys r in
  let domain = active_domain catalog r in
  let space =
    List.fold_left
      (fun acc _ -> acc * max 1 (List.length domain))
      1 keys
  in
  if space > max_assignments then
    invalid_arg
      (Printf.sprintf "Reference.tabulate: %d assignments exceed the limit"
         space);
  let params = Ast.rule_params r in
  let param_columns = List.map (fun p -> "$" ^ p) params in
  let out =
    Relation.create (Schema.of_list (param_columns @ Eval.head_columns r))
  in
  let rec assign env = function
    | [] ->
      if List.for_all (satisfies catalog env) r.body then begin
        let row =
          List.map (fun p -> List.assoc ("$" ^ p) env) params
          @ List.map (term_value env) r.head.args
        in
        Relation.add out (Tuple.of_list row)
      end
    | key :: rest ->
      List.iter (fun v -> assign ((key, v) :: env) rest) domain
  in
  assign [] keys;
  out
