(** Evaluation of extended conjunctive queries against a catalog.

    Evaluation is a binding-passing (sideways-information-passing) join: an
    {e environment} binds variables and parameters (keyed as in
    {!Ast.binding_key}) to values; a positive subgoal extends each
    environment with the matching tuples of its stored relation, found
    through a hash index on the already-bound argument positions; negated
    and arithmetic subgoals filter environments once their terms are bound.

    The incremental {!Envs} interface is exposed because the dynamic
    query-flock executor (paper Sec. 4.4) interleaves these steps with
    support-based pruning decisions of its own. *)

exception Error of string

(** {1 Environment sets} *)

module Envs : sig
  (** A set of environments sharing one bound-key set. *)
  type t

  (** The single empty environment (neutral element for joins). *)
  val start : unit -> t

  (** Keys currently bound, in binding order. *)
  val bound_keys : t -> string list

  (** Number of environments. *)
  val count : t -> int

  (** [extend_pos catalog envs atom] joins with the stored relation for
      [atom].  Raises {!Error} on an unknown predicate or arity mismatch.

      [sip] maps binding keys (as in {!Ast.binding_key}, e.g. ["$p"]) to
      sideways-information-passing reducers: when the atom {e binds} such
      a key for the first time, candidate matches whose fresh value fails
      the reducer are dropped before the extended row is emitted.  Sound
      only when the reducer over-approximates the values the rest of the
      rule accepts for that key (reducers have no false negatives, so the
      final result set is unchanged — only intermediate rows shrink).
      Rejections are flushed as one [sip.rows_pruned] Obs count, whose
      total is deterministic across layouts and pool sizes. *)
  val extend_pos :
    ?sip:(string * Qf_relational.Sip.t) list ->
    Qf_relational.Catalog.t ->
    t ->
    Ast.atom ->
    t

  (** [filter_neg catalog envs atom] keeps environments for which the
      instantiated atom is {e not} in its relation.  All argument terms must
      be bound (guaranteed if the rule is safe and positives ran first). *)
  val filter_neg : Qf_relational.Catalog.t -> t -> Ast.atom -> t

  (** Keep environments satisfying the arithmetic comparison. *)
  val filter_cmp : t -> Ast.term -> Ast.comparison -> Ast.term -> t

  (** [project envs ~keys ~columns] is the relation of distinct bindings of
      [keys], with schema [columns].  Raises {!Error} on an unbound key. *)
  val project : t -> keys:string list -> columns:string list -> Qf_relational.Relation.t

  (** [semijoin envs ~keys ~keep] keeps environments whose [keys]-projection
      is a tuple of [keep] — the pruning step of dynamic evaluation. *)
  val semijoin : t -> keys:string list -> keep:Qf_relational.Relation.t -> t
end

(** {1 Literal ordering} *)

(** Greedy cost-based ordering of a body: repeatedly emit every negated and
    arithmetic subgoal whose terms are bound, then the positive subgoal with
    the fewest estimated index matches (System-R-style, using catalog
    statistics).  Raises {!Error} if the rule is unsafe. *)
val order_body : Qf_relational.Catalog.t -> Ast.rule -> Ast.literal list

(** {1 Whole-rule evaluation} *)

(** Column names for a rule's head arguments: a [Var] contributes its name,
    a constant contributes ["c<i>"]; duplicates are suffixed ["_2"], ... *)
val head_columns : Ast.rule -> string list

(** [tabulate catalog rule] treats parameters as free grouping variables and
    returns the relation with schema [$p1; ...; $pk] (sorted parameter
    names, each prefixed with [$]) followed by {!head_columns}, containing
    the distinct (parameter values, head values) combinations derivable
    from the body.  This is the building block of both direct flock
    evaluation and FILTER steps.  Raises {!Error} on an unsafe rule. *)
val tabulate :
  ?sip:(string * Qf_relational.Sip.t) list ->
  Qf_relational.Catalog.t ->
  Ast.rule ->
  Qf_relational.Relation.t

(** [answers catalog ~bindings rule] evaluates the rule with all parameters
    bound by [bindings] (keys as in {!Ast.binding_key}, e.g. ["$s"]) and
    returns the head relation.  Raises {!Error} if a parameter is unbound
    or the rule is unsafe. *)
val answers :
  Qf_relational.Catalog.t ->
  bindings:(string * Qf_relational.Value.t) list ->
  Ast.rule ->
  Qf_relational.Relation.t

(** [tabulate_query catalog query] evaluates a union: the set-union of each
    rule's {!tabulate}, with all results renamed to the first rule's schema
    (positionally).  [sip] as in {!Envs.extend_pos}, applied to every
    rule.  Raises {!Error} if {!Ast.wf_query} fails. *)
val tabulate_query :
  ?sip:(string * Qf_relational.Sip.t) list ->
  Qf_relational.Catalog.t ->
  Ast.query ->
  Qf_relational.Relation.t
