module Value = Qf_relational.Value
module Tuple = Qf_relational.Tuple
module Schema = Qf_relational.Schema
module Relation = Qf_relational.Relation
module Index = Qf_relational.Index
module Catalog = Qf_relational.Catalog
module Statistics = Qf_relational.Statistics
module Layout = Qf_relational.Layout
module Dict = Qf_relational.Dict
module Chunkrel = Qf_relational.Chunkrel
module Buf = Chunkrel.Buf
module Pool = Qf_exec_pool.Pool
module Sip = Qf_relational.Sip
module Obs = Qf_obs.Obs

exception Error of string

let log_src = Logs.Src.create "qf.eval" ~doc:"Datalog evaluation"

module Log = (val Logs.src_log log_src)

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let relation_for catalog (a : Ast.atom) =
  match Catalog.find_opt catalog a.pred with
  | None -> errorf "unknown predicate %s" a.pred
  | Some rel ->
    if Relation.arity rel <> List.length a.args then
      errorf "predicate %s: arity mismatch (query %d, stored %d)" a.pred
        (List.length a.args) (Relation.arity rel);
    rel

module Envs = struct
  (* [slots] maps a binding key to its column in every row; rows all have
     width [List.length slots].

     Two physical engines share the interface, picked by {!Layout.mode}
     at {!start}:

     - [Vals]: one boxed [Value.t array] per environment (the original
       representation) — rows are what the row-mode kernels consume.
     - [Codes]: all environments in one flat dictionary-code array of
       stride [width] ([count * width] ints).  Binding extension probes
       the {!Index.code_index} chains directly over code arrays, filters
       compare codes, and parallel steps emit per-chunk {!Chunkrel.Buf}s
       merged by a single blit — no per-row boxing anywhere on the hot
       path. *)
  type repr =
    | Vals of Value.t array list
    | Codes of { width : int; count : int; data : int array }

  type t = { slots : (string * int) list; repr : repr }

  let start () =
    let repr =
      match Layout.mode () with
      | Layout.Columnar -> Codes { width = 0; count = 1; data = [||] }
      | Layout.Row -> Vals [ [||] ]
    in
    { slots = []; repr }

  let bound_keys t = List.map fst t.slots

  let count t =
    match t.repr with
    | Vals rows -> List.length rows
    | Codes { count; _ } -> count

  let slot_of t key = List.assoc_opt key t.slots

  (* {2 Parallel row fan-out}

     The environment list is the evaluator's working set; binding
     extension and the row filters are embarrassingly parallel over it.
     Each chunk emits its slice in input order and the chunks are
     concatenated in order, so the resulting row list is *identical* to
     the sequential one — not merely equal as a set. *)

  let par_concat_map f rows =
    let pool = Pool.default () in
    let n = List.length rows in
    if Pool.size pool = 1 || n < Pool.par_threshold () then
      List.concat_map f rows
    else begin
      let arr = Array.of_list rows in
      Pool.run_chunks pool ~n (fun ~lo ~hi ->
          let acc = ref [] in
          for i = hi - 1 downto lo do
            acc := f arr.(i) @ !acc
          done;
          !acc)
      |> List.concat
    end

  let par_filter pred rows =
    let pool = Pool.default () in
    let n = List.length rows in
    if Pool.size pool = 1 || n < Pool.par_threshold () then
      List.filter pred rows
    else begin
      let arr = Array.of_list rows in
      Pool.run_chunks pool ~n (fun ~lo ~hi ->
          let acc = ref [] in
          for i = hi - 1 downto lo do
            if pred arr.(i) then acc := arr.(i) :: !acc
          done;
          !acc)
      |> List.concat
    end

  (* {2 Code-engine helpers}

     A [Codes] step produces per-chunk [Buf]s (each an [(emitted rows) *
     stride] run of codes) and merges them with one pre-sized allocation
     and [Array.blit] per chunk — the merge never boxes a row. *)

  let merge_code_chunks ~width pieces =
    let count = List.fold_left (fun acc (k, _) -> acc + k) 0 pieces in
    let data = Array.make (count * width) 0 in
    let pos = ref 0 in
    List.iter (fun (_, b) -> pos := Buf.blit_into b data !pos) pieces;
    Codes { width; count; data }

  (* [filter_codes mk_pred ~width ~count ~data] keeps the rows satisfying
     the predicate ([mk_pred ()] is called once per chunk so predicates
     may own scratch buffers; the predicate receives the row's base
     offset). *)
  let filter_codes mk_pred ~width ~count ~data =
    let run ~lo ~hi =
      let pred = mk_pred () in
      let out = Buf.create ((hi - lo) * width) in
      let kept = ref 0 in
      for r = lo to hi - 1 do
        let base = r * width in
        if pred base then begin
          incr kept;
          for c = 0 to width - 1 do Buf.push out data.(base + c) done
        end
      done;
      !kept, out
    in
    let pool = Pool.default () in
    let pieces =
      if Pool.size pool = 1 || count < Pool.par_threshold () then
        [ run ~lo:0 ~hi:count ]
      else Pool.run_chunks pool ~n:count run
    in
    merge_code_chunks ~width pieces

  (* Chain-walk membership over a full-arity code index: does any row of
     the indexed chunk match the probe codes exactly? *)
  let code_mem (ci : Index.code_index) probe =
    let nkeys = Array.length probe in
    let h = Chunkrel.hash_codes probe in
    let rec keys_eq row k =
      k >= nkeys
      || Array.unsafe_get (Array.unsafe_get ci.key_cols k) row
         = Array.unsafe_get probe k
         && keys_eq row (k + 1)
    in
    let rec walk j = j >= 0 && (keys_eq j 0 || walk ci.next.(j)) in
    walk ci.heads.(h land ci.mask)

  (* A term as seen by the code engine: a pre-encoded constant or a slot
     offset into the current row. *)
  let code_spec t = function
    | Ast.Const v -> `Const (Dict.encode v)
    | (Ast.Var _ | Ast.Param _) as term -> (
      let key = Ast.binding_key term in
      match slot_of t key with
      | Some s -> `Slot s
      | None -> errorf "unbound %s in non-positive subgoal" key)

  (* A transient full-arity code index for membership filtering.  Built
     with [Index.build] directly — NOT through the catalog cache — so the
     [index_cache] hit/miss counters stay identical to row mode, where
     membership goes through [Relation.mem] and never touches the cache. *)
  let membership_index rel =
    Index.code_index (Index.build rel (List.init (Relation.arity rel) Fun.id))

  (* How each argument position of an atom is consumed given current slots:
     part of the lookup key, a fresh binding, or an intra-tuple check
     against a fresh binding made at an earlier position. *)
  type arg_role =
    | Key_const of Value.t
    | Key_slot of int  (** row column *)
    | Bind_new  (** first occurrence of an unbound key *)
    | Check_new of int  (** later occurrence; index into the new-values list *)

  let analyze_args t (a : Ast.atom) =
    let fresh = ref [] in
    let roles =
      List.map
        (fun arg ->
          match arg with
          | Ast.Const v -> Key_const v
          | Ast.Var _ | Ast.Param _ -> (
            let key = Ast.binding_key arg in
            match slot_of t key with
            | Some s -> Key_slot s
            | None -> (
              match
                List.find_index (fun k -> String.equal k key) (List.rev !fresh)
              with
              | Some i -> Check_new i
              | None ->
                fresh := key :: !fresh;
                Bind_new)))
        a.args
    in
    roles, List.rev !fresh

  (* Sideways-information-passing at binding extension: [sip] maps a
     binding key about to be bound ([Bind_new]) to a reducer
     over-approximating the values that can survive the rest of the rule
     (in practice: the parameter column of a materialized [ok] step whose
     subgoal is still in the body).  A candidate match whose fresh value
     fails its reducer is dropped before the row is emitted; the
     ok-subgoal join would have dropped it later anyway, so results are
     unchanged — only the intermediate row count shrinks.

     Rejections are totted up in one atomic and flushed as a single
     [sip.rows_pruned] count: the set of key-matched candidates examined
     is the same in both layouts and under any chunking, so the total is
     deterministic across layouts and pool sizes (the invariant the
     differential suite pins down). *)
  let extend_pos ?(sip = []) catalog t (a : Ast.atom) =
    let rel = relation_for catalog a in
    let roles, fresh_keys = analyze_args t a in
    let key_positions =
      List.concat
        (List.mapi
           (fun i role ->
             match role with
             | Key_const _ | Key_slot _ -> [ i ]
             | Bind_new | Check_new _ -> [])
           roles)
    in
    (* Memoized through the catalog: FILTER steps, optimizer probes and
       repeated runs against the same stored relations all share built
       indexes (invalidated by relation version). *)
    let idx = Catalog.index catalog rel key_positions in
    let width = List.length t.slots in
    let new_width = width + List.length fresh_keys in
    let key_builders =
      List.filter_map
        (function
          | Key_const v -> Some (fun (_ : Value.t array) -> v)
          | Key_slot s -> Some (fun (row : Value.t array) -> row.(s))
          | Bind_new | Check_new _ -> None)
        roles
    in
    (* For each matching tuple: positions to copy into new slots, and
       positions to check for intra-tuple repeated fresh variables. *)
    let fills = ref [] and checks = ref [] in
    List.iteri
      (fun pos role ->
        match role with
        | Bind_new -> fills := pos :: !fills
        | Check_new i -> checks := (pos, i) :: !checks
        | Key_const _ | Key_slot _ -> ())
      roles;
    let fills = List.rev !fills and checks = List.rev !checks in
    (* Reducers aligned with the fresh bindings: [(index into the
       fresh-values list, reducer)]. *)
    let sip_checks =
      if sip = [] then []
      else
        List.mapi (fun i key -> i, List.assoc_opt key sip) fresh_keys
        |> List.filter_map (fun (i, s) -> Option.map (fun s -> i, s) s)
    in
    let rejects =
      if sip_checks <> [] && Obs.enabled () then Some (Atomic.make 0) else None
    in
    let reject () =
      match rejects with
      | Some r -> ignore (Atomic.fetch_and_add r 1)
      | None -> ()
    in
    let slots =
      t.slots @ List.mapi (fun i key -> key, width + i) fresh_keys
    in
    let result =
      match t.repr with
    | Vals rows ->
      let extend_row row =
        let key = Tuple.of_list (List.map (fun f -> f row) key_builders) in
        List.filter_map
          (fun tup ->
            let fresh_values = List.map (Tuple.get tup) fills in
            let ok =
              List.for_all
                (fun (pos, i) ->
                  Value.equal (Tuple.get tup pos) (List.nth fresh_values i))
                checks
            in
            if not ok then None
            else if
              not
                (List.for_all
                   (fun (i, s) -> Sip.mem_value s (List.nth fresh_values i))
                   sip_checks)
            then begin
              reject ();
              None
            end
            else begin
              let row' = Array.make new_width (Value.Int 0) in
              Array.blit row 0 row' 0 width;
              List.iteri (fun i v -> row'.(width + i) <- v) fresh_values;
              Some row'
            end)
          (Index.lookup idx key)
      in
      { slots; repr = Vals (par_concat_map extend_row rows) }
    | Codes { width = w; count; data } ->
      assert (w = width);
      (* Everything below runs over flat code arrays.  The probe key for
         an environment is its slot codes plus pre-encoded constant codes,
         hashed exactly as the index hashed its key columns
         ([Chunkrel.hash_codes] = [Chunkrel.hash_key] for equal keys). *)
      let ci = Index.code_index idx in
      let key_specs =
        Array.of_list
          (List.filter_map
             (function
               | Key_const v -> Some (`Const (Dict.encode v))
               | Key_slot s -> Some (`Slot s)
               | Bind_new | Check_new _ -> None)
             roles)
      in
      let nkeys = Array.length key_specs in
      let chunk_cols = ci.Index.chunk.Chunkrel.cols in
      let fill_cols =
        Array.of_list (List.map (fun pos -> chunk_cols.(pos)) fills)
      in
      let n_fresh = Array.length fill_cols in
      (* An intra-tuple repeat check compares two columns of the *same*
         candidate row, so it needs no per-row fresh-value staging. *)
      let check_pairs =
        Array.of_list
          (List.map
             (fun (pos, i) -> chunk_cols.(pos), fill_cols.(i))
             checks)
      in
      let nchecks = Array.length check_pairs in
      let sip_cols =
        Array.of_list (List.map (fun (i, s) -> fill_cols.(i), s) sip_checks)
      in
      let nsips = Array.length sip_cols in
      let run ~lo ~hi =
        let out = Buf.create ((hi - lo) * new_width) in
        let emitted = ref 0 in
        let probe = Array.make nkeys 0 in
        for r = lo to hi - 1 do
          let base = r * width in
          for k = 0 to nkeys - 1 do
            probe.(k) <-
              (match Array.unsafe_get key_specs k with
              | `Const c -> c
              | `Slot s -> Array.unsafe_get data (base + s))
          done;
          let h = Chunkrel.hash_codes probe in
          let j = ref ci.Index.heads.(h land ci.Index.mask) in
          while !j >= 0 do
            let row = !j in
            let rec keys_eq k =
              k >= nkeys
              || Array.unsafe_get
                   (Array.unsafe_get ci.Index.key_cols k)
                   row
                 = Array.unsafe_get probe k
                 && keys_eq (k + 1)
            in
            let rec checks_ok c =
              c >= nchecks
              ||
              let ca, cb = Array.unsafe_get check_pairs c in
              Array.unsafe_get ca row = Array.unsafe_get cb row
              && checks_ok (c + 1)
            in
            let rec sip_ok k =
              k >= nsips
              ||
              let col, s = Array.unsafe_get sip_cols k in
              Sip.mem s (Array.unsafe_get col row) && sip_ok (k + 1)
            in
            if keys_eq 0 && checks_ok 0 then begin
              if sip_ok 0 then begin
                incr emitted;
                for c = 0 to width - 1 do
                  Buf.push out (Array.unsafe_get data (base + c))
                done;
                for k = 0 to n_fresh - 1 do
                  Buf.push out
                    (Array.unsafe_get (Array.unsafe_get fill_cols k) row)
                done
              end
              else reject ()
            end;
            j := ci.Index.next.(row)
          done
        done;
        !emitted, out
      in
      let pool = Pool.default () in
      let pieces =
        if Pool.size pool = 1 || count < Pool.par_threshold () then
          [ run ~lo:0 ~hi:count ]
        else Pool.run_chunks pool ~n:count run
      in
      { slots; repr = merge_code_chunks ~width:new_width pieces }
    in
    (match rejects with
    | Some r -> Obs.count "sip.rows_pruned" (Atomic.get r)
    | None -> ());
    result

  let term_getter t = function
    | Ast.Const v -> fun (_ : Value.t array) -> v
    | (Ast.Var _ | Ast.Param _) as term -> (
      let key = Ast.binding_key term in
      match slot_of t key with
      | Some s -> fun row -> row.(s)
      | None -> errorf "unbound %s in non-positive subgoal" key)

  (* [specs] as per {!code_spec}; builds a per-chunk closure that writes
     the instantiated code tuple into its own scratch array. *)
  let probe_filler specs data =
    let specs = Array.of_list specs in
    let n = Array.length specs in
    fun () ->
      let scratch = Array.make n 0 in
      fun base ->
        for k = 0 to n - 1 do
          scratch.(k) <-
            (match Array.unsafe_get specs k with
            | `Const c -> c
            | `Slot s -> Array.unsafe_get data (base + s))
        done;
        scratch

  let filter_neg catalog t (a : Ast.atom) =
    let rel = relation_for catalog a in
    match t.repr with
    | Vals rows ->
      let getters = List.map (term_getter t) a.args in
      (* Force the membership table on this domain before the fan-out:
         [Relation.mem] materializes lazily and must not race. *)
      Relation.prepare rel;
      let rows =
        par_filter
          (fun row ->
            let tup = Tuple.of_list (List.map (fun g -> g row) getters) in
            not (Relation.mem rel tup))
          rows
      in
      { t with repr = Vals rows }
    | Codes { width; count; data } ->
      let ci = membership_index rel in
      let mk = probe_filler (List.map (code_spec t) a.args) data in
      let mk_pred () =
        let fill = mk () in
        fun base -> not (code_mem ci (fill base))
      in
      { t with repr = filter_codes mk_pred ~width ~count ~data }

  (* A term as a [Value.t] reader over the flat code array (constants are
     hoisted; slot codes decode through the lock-free dictionary). *)
  let value_getter t data = function
    | Ast.Const v -> fun (_ : int) -> v
    | (Ast.Var _ | Ast.Param _) as term -> (
      let key = Ast.binding_key term in
      match slot_of t key with
      | Some s -> fun base -> Dict.decode (Array.unsafe_get data (base + s))
      | None -> errorf "unbound %s in non-positive subgoal" key)

  let filter_cmp t left cmp right =
    match t.repr with
    | Vals rows ->
      let gl = term_getter t left and gr = term_getter t right in
      let rows =
        par_filter
          (fun row ->
            Ast.comparison_eval (Value.compare (gl row) (gr row)) cmp)
          rows
      in
      { t with repr = Vals rows }
    | Codes { width; count; data } ->
      let gl = value_getter t data left and gr = value_getter t data right in
      let mk_pred () base =
        Ast.comparison_eval (Value.compare (gl base) (gr base)) cmp
      in
      { t with repr = filter_codes mk_pred ~width ~count ~data }

  let key_positions t keys =
    List.map
      (fun key ->
        match slot_of t key with
        | Some s -> s
        | None -> errorf "Envs.project: unbound key %s" key)
      keys

  let project t ~keys ~columns =
    let positions = key_positions t keys in
    match t.repr with
    | Vals rows ->
      let rel = Relation.create (Schema.of_list columns) in
      List.iter
        (fun row ->
          Relation.add rel
            (Tuple.of_list (List.map (Array.get row) positions)))
        rows;
      rel
    | Codes { width; count; data } ->
      (* Gather the projected columns out of the stride layout, dedupe the
         code rows in one open-addressing pass, and hand the surviving
         distinct rows to the relation as an already-distinct chunk. *)
      let pcols =
        Array.of_list
          (List.map
             (fun p ->
               Array.init count (fun r -> Array.unsafe_get data ((r * width) + p)))
             positions)
      in
      let idxs = Chunkrel.distinct_rows pcols count in
      let chunk =
        {
          Chunkrel.nrows = Array.length idxs;
          cols = Chunkrel.gather_cols pcols idxs;
          rows_cache = None;
        }
      in
      Relation.of_chunkrel (Schema.of_list columns) chunk

  let semijoin t ~keys ~keep =
    let positions = key_positions t keys in
    match t.repr with
    | Vals rows ->
      (* Same lazy-materialization guard as [filter_neg]. *)
      Relation.prepare keep;
      let rows =
        par_filter
          (fun row ->
            Relation.mem keep
              (Tuple.of_list (List.map (Array.get row) positions)))
          rows
      in
      { t with repr = Vals rows }
    | Codes { width; count; data } ->
      let ci = membership_index keep in
      let mk = probe_filler (List.map (fun s -> `Slot s) positions) data in
      let mk_pred () =
        let fill = mk () in
        fun base -> code_mem ci (fill base)
      in
      { t with repr = filter_codes mk_pred ~width ~count ~data }
end

(* {1 Literal ordering} *)

let literal_keys lit =
  List.map (fun v -> v) (Ast.literal_vars lit)
  @ List.map (fun p -> "$" ^ p) (Ast.literal_params lit)

let atom_keys (a : Ast.atom) =
  List.filter_map
    (function
      | (Ast.Var _ | Ast.Param _) as t -> Some (Ast.binding_key t)
      | Ast.Const _ -> None)
    a.args

(* Estimated number of index matches per environment for [atom] given the
   bound-key set: |R| divided by the distinct counts of the columns at
   bound (or constant) positions, assuming independence. *)
let estimate_matches catalog bound (a : Ast.atom) =
  let rel = relation_for catalog a in
  let stats = Catalog.stats catalog a.pred in
  let columns = Schema.columns (Relation.schema rel) in
  let est = ref (float_of_int (Statistics.cardinality stats)) in
  let bound_positions = ref 0 in
  List.iteri
    (fun i arg ->
      let is_bound =
        match arg with
        | Ast.Const _ -> true
        | Ast.Var _ | Ast.Param _ -> List.mem (Ast.binding_key arg) bound
      in
      if is_bound then begin
        incr bound_positions;
        let d = Statistics.distinct stats (List.nth columns i) in
        est := !est /. float_of_int (max 1 d)
      end)
    a.args;
  !est, !bound_positions

let order_body catalog (r : Ast.rule) =
  (match Safety.check r with
  | Ok () -> ()
  | Error e -> raise (Error e));
  let rec loop bound remaining ordered =
    if remaining = [] then List.rev ordered
    else begin
      (* First flush every Neg/Cmp whose keys are all bound. *)
      let ready, rest =
        List.partition
          (fun lit ->
            match lit with
            | Ast.Pos _ -> false
            | Ast.Neg _ | Ast.Cmp _ ->
              List.for_all (fun k -> List.mem k bound) (literal_keys lit))
          remaining
      in
      if ready <> [] then loop bound rest (List.rev_append ready ordered)
      else begin
        (* Pick the cheapest positive subgoal. *)
        let candidates =
          List.filter_map
            (function Ast.Pos a -> Some a | Ast.Neg _ | Ast.Cmp _ -> None)
            rest
        in
        match candidates with
        | [] ->
          errorf "order_body: non-positive subgoals with unbound variables"
        | _ ->
          let best =
            List.fold_left
              (fun acc a ->
                let est, bp = estimate_matches catalog bound a in
                match acc with
                | None -> Some (a, est, bp)
                | Some (_, best_est, best_bp) ->
                  if est < best_est || (est = best_est && bp > best_bp) then
                    Some (a, est, bp)
                  else acc)
              None candidates
          in
          let a, _, _ = Option.get best in
          let rest' =
            let removed = ref false in
            List.filter
              (fun lit ->
                match lit with
                | Ast.Pos a' when (not !removed) && Ast.equal_atom a' a ->
                  removed := true;
                  false
                | _ -> true)
              rest
          in
          loop
            (List.sort_uniq String.compare (bound @ atom_keys a))
            rest'
            (Ast.Pos a :: ordered)
      end
    end
  in
  let ordered = loop [] r.body [] in
  Log.debug (fun m ->
      m "join order for %s: %s" r.head.pred
        (String.concat " ; " (List.map Pretty.literal_to_string ordered)));
  ordered

(* {1 Whole-rule evaluation} *)

let head_columns (r : Ast.rule) =
  let base =
    List.mapi
      (fun i t ->
        match t with
        | Ast.Var v -> v
        | Ast.Const _ -> Printf.sprintf "c%d" i
        | Ast.Param p -> errorf "parameter $%s in head" p)
      r.head.args
  in
  (* Disambiguate duplicates: B, B -> B, B_2. *)
  let seen = Hashtbl.create 8 in
  List.map
    (fun name ->
      let n =
        match Hashtbl.find_opt seen name with Some n -> n + 1 | None -> 1
      in
      Hashtbl.replace seen name n;
      if n = 1 then name else Printf.sprintf "%s_%d" name n)
    base

let run_body ?sip catalog (r : Ast.rule) =
  let ordered = order_body catalog r in
  List.fold_left
    (fun envs lit ->
      (* Literal boundaries are the evaluator's cancellation checkpoints:
         a governed deadline interrupts a rule between joins (one atomic
         load per literal when ungoverned). *)
      Qf_governor.Governor.check ();
      match lit with
      | Ast.Pos a -> Envs.extend_pos ?sip catalog envs a
      | Ast.Neg a -> Envs.filter_neg catalog envs a
      | Ast.Cmp (l, c, rt) -> Envs.filter_cmp envs l c rt)
    (Envs.start ()) ordered

let head_keys (r : Ast.rule) =
  List.map
    (fun t ->
      match t with
      | Ast.Var _ -> `Key (Ast.binding_key t)
      | Ast.Const v -> `Const v
      | Ast.Param p -> errorf "parameter $%s in head" p)
    r.head.args

(* Project environments onto (group keys, head terms).  Head constants are
   materialized directly. *)
let project_with_consts envs ~group_keys ~group_columns (r : Ast.rule) =
  let head = head_keys r in
  let keys =
    group_keys
    @ List.filter_map (function `Key k -> Some k | `Const _ -> None) head
  in
  let columns =
    group_columns
    @ List.filteri
        (fun i _ ->
          match List.nth head i with `Key _ -> true | `Const _ -> false)
        (head_columns r)
  in
  let narrow = Envs.project envs ~keys ~columns in
  if List.for_all (function `Key _ -> true | `Const _ -> false) head then
    narrow
  else begin
    (* Re-insert constant head columns in position. *)
    let full_schema =
      Schema.of_list (group_columns @ head_columns r)
    in
    let out = Relation.create full_schema in
    let n_group = List.length group_columns in
    Relation.iter
      (fun tup ->
        let rest = ref (Tuple.to_list tup |> List.filteri (fun i _ -> i >= n_group)) in
        let prefix = Tuple.to_list tup |> List.filteri (fun i _ -> i < n_group) in
        let head_vals =
          List.map
            (function
              | `Const v -> v
              | `Key _ -> (
                match !rest with
                | v :: tl ->
                  rest := tl;
                  v
                | [] -> errorf "project_with_consts: internal arity error"))
            head
        in
        Relation.add out (Tuple.of_list (prefix @ head_vals)))
      narrow;
    out
  end

let param_keys_and_columns (r : Ast.rule) =
  let params = Ast.rule_params r in
  List.map (fun p -> "$" ^ p) params, List.map (fun p -> "$" ^ p) params

let tabulate ?sip catalog (r : Ast.rule) =
  let envs = run_body ?sip catalog r in
  let group_keys, group_columns = param_keys_and_columns r in
  project_with_consts envs ~group_keys ~group_columns r

let answers catalog ~bindings (r : Ast.rule) =
  let r' = Ast.subst_rule bindings r in
  (match Ast.rule_params r' with
  | [] -> ()
  | p :: _ -> errorf "answers: parameter $%s left unbound" p);
  let envs = run_body catalog r' in
  project_with_consts envs ~group_keys:[] ~group_columns:[] r'

let tabulate_query ?sip catalog (q : Ast.query) =
  (match Ast.wf_query q with Ok () -> () | Error e -> raise (Error e));
  match q with
  | [] -> assert false
  | first :: rest ->
    let acc = tabulate ?sip catalog first in
    List.fold_left
      (fun acc r ->
        Qf_governor.Governor.check ();
        let next = tabulate ?sip catalog r in
        (* Positional rename: arities agree by wf_query. *)
        Relation.fold (fun tup () -> Relation.add acc tup) next ();
        acc)
      acc rest
