module Value = Qf_relational.Value

exception Error of string
exception Error_at of string * Ast.span

type state = { tokens : Lexer.spanned array; mutable pos : int }

let of_spanned tokens = { tokens = Array.of_list tokens; pos = 0 }

let of_tokens tokens =
  of_spanned
    (List.map (fun tok -> { Lexer.tok; span = Ast.no_span }) tokens)

let of_string text =
  match Lexer.tokenize_spanned text with
  | tokens -> of_spanned tokens
  | exception Lexer.Error (msg, pos) ->
    raise
      (Error_at
         ( Printf.sprintf "lex error at line %d, column %d: %s" pos.Ast.line
             pos.Ast.col msg,
           { Ast.start_pos = pos; end_pos = pos } ))

let nth_spanned st i =
  if i < Array.length st.tokens then st.tokens.(i)
  else if Array.length st.tokens > 0 then
    { (st.tokens.(Array.length st.tokens - 1)) with tok = Lexer.Eof }
  else { Lexer.tok = Lexer.Eof; span = Ast.no_span }

let peek st = (nth_spanned st st.pos).tok
let peek2 st = (nth_spanned st (st.pos + 1)).tok

(* Span of the token at the cursor. *)
let peek_span st = (nth_spanned st st.pos).span

(* Span of the most recently consumed token. *)
let last_span st = (nth_spanned st (max 0 (st.pos - 1))).span

let next st =
  let tok = peek st in
  if tok <> Lexer.Eof then st.pos <- st.pos + 1;
  tok

let fail st expected =
  let sp = peek_span st in
  let where =
    if Ast.is_no_span sp then Printf.sprintf " (token %d)" st.pos
    else
      Printf.sprintf " at line %d, column %d" sp.Ast.start_pos.Ast.line
        sp.Ast.start_pos.Ast.col
  in
  raise
    (Error_at
       ( Format.asprintf "expected %s but found '%a'%s" expected Lexer.pp_token
           (peek st) where,
         sp ))

let expect st tok = if next st <> tok then fail st (Format.asprintf "%a" Lexer.pp_token tok)

let term st =
  match next st with
  | Lexer.Uident v -> Ast.Var v
  | Lexer.Param p -> Ast.Param p
  | Lexer.Lident s -> Ast.Const (Value.Str s)
  | Lexer.Int i -> Ast.Const (Value.Int i)
  | Lexer.Real f -> Ast.Const (Value.Real f)
  | Lexer.String s -> Ast.Const (Value.Str s)
  | _ ->
    st.pos <- st.pos - 1;
    fail st "a term"

let atom_args st =
  expect st Lexer.Lparen;
  let rec more acc =
    let t = term st in
    match next st with
    | Lexer.Comma -> more (t :: acc)
    | Lexer.Rparen -> List.rev (t :: acc)
    | _ ->
      st.pos <- st.pos - 1;
      fail st "',' or ')'"
  in
  more []

(* An atom plus the span from the predicate name to the closing paren. *)
let atom_spanned st =
  match next st with
  | Lexer.Lident pred ->
    let start = last_span st in
    let args = atom_args st in
    { Ast.pred; args }, Ast.join_spans start (last_span st)
  | _ ->
    st.pos <- st.pos - 1;
    fail st "a predicate name"

let literal_spanned st =
  match peek st with
  | Lexer.Not ->
    let start = peek_span st in
    ignore (next st);
    let a, sp = atom_spanned st in
    Ast.Neg a, Ast.join_spans start sp
  | Lexer.Lident _ when peek2 st = Lexer.Lparen ->
    let a, sp = atom_spanned st in
    Ast.Pos a, sp
  | _ -> (
    let start = peek_span st in
    let left = term st in
    match next st with
    | Lexer.Cmp c ->
      let right = term st in
      Ast.Cmp (left, c, right), Ast.join_spans start (last_span st)
    | _ ->
      st.pos <- st.pos - 1;
      fail st "a comparison operator")

let rule_located st =
  let head, head_span = atom_spanned st in
  expect st Lexer.Implies;
  let rec more acc =
    let l = literal_spanned st in
    match peek st with
    | Lexer.And ->
      ignore (next st);
      more (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  let body = more [] in
  let spans = List.map snd body in
  {
    Ast.lr_rule = { Ast.head; body = List.map fst body };
    lr_head = head_span;
    lr_body = spans;
    lr_span = List.fold_left Ast.join_spans head_span spans;
  }

let rule st = (rule_located st).Ast.lr_rule

(* A new rule begins iff the cursor sits on `lident (` — a head atom.  The
   following `:-` is then required by [rule]. *)
let at_rule_start st =
  match peek st, peek2 st with
  | Lexer.Lident _, Lexer.Lparen -> true
  | _ -> false

let rules_located st =
  let rec loop acc =
    if at_rule_start st then loop (rule_located st :: acc) else List.rev acc
  in
  let parsed = loop [] in
  if parsed = [] then fail st "at least one rule";
  parsed

let rules st = List.map (fun lr -> lr.Ast.lr_rule) (rules_located st)

let run_to_result f text =
  match f (of_string text) with
  | v -> Ok v
  | exception Error msg -> Error msg
  | exception Error_at (msg, _) -> Error msg

let parse_rule text =
  run_to_result
    (fun st ->
      let r = rule st in
      if peek st <> Lexer.Eof then fail st "end of input";
      r)
    text

let parse_query text =
  Result.bind
    (run_to_result
       (fun st ->
         let q = rules st in
         if peek st <> Lexer.Eof then fail st "end of input";
         q)
       text)
    (fun q ->
      match Ast.wf_query q with Ok () -> Ok q | Error e -> Error e)
