(** Abstract syntax for extended conjunctive queries (the paper's flock
    query language, Sec. 2.3): conjunctive queries over stored relations,
    extended with negated subgoals and arithmetic subgoals, with
    distinguished {e parameters} written [$name].  A {!query} is a union of
    such rules (Sec. 3.4). *)

(** {1 Source locations}

    Lines and columns are 1-based; {!no_span} (line 0) marks synthesized
    nodes with no source location. *)

type position = { line : int; col : int }
type span = { start_pos : position; end_pos : position }

val no_pos : position
val no_span : span
val is_no_span : span -> bool

(** Smallest span covering both; {!no_span} is the identity. *)
val join_spans : span -> span -> span

val pp_position : Format.formatter -> position -> unit

(** ["3:5-12"] within one line, ["3:5-4:2"] across lines, ["-"] for
    {!no_span}. *)
val pp_span : Format.formatter -> span -> unit

type term =
  | Var of string  (** ordinary variable, conventionally capitalized *)
  | Param of string  (** flock parameter [$name] (name stored without [$]) *)
  | Const of Qf_relational.Value.t

type atom = { pred : string; args : term list }

type comparison =
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type literal =
  | Pos of atom  (** positive relational subgoal *)
  | Neg of atom  (** negated relational subgoal, [NOT p(...)] *)
  | Cmp of term * comparison * term  (** arithmetic subgoal, e.g. [$1 < $2] *)

type rule = { head : atom; body : literal list }

(** A union of rules.  All rules of a well-formed query share the same head
    predicate and arity and mention the same set of parameters (checked by
    {!wf_query}). *)
type query = rule list

(** {1 Located rules}

    The parser's span-carrying product: the rule plus the source span of
    its head and of each body literal (same order as [body]).  Synthesized
    rules get {!no_span} everywhere via {!locate}. *)

type located_rule = {
  lr_rule : rule;
  lr_head : span;
  lr_body : span list;
  lr_span : span;
}

val locate : rule -> located_rule

(** {1 Equality} *)

val equal_term : term -> term -> bool
val equal_atom : atom -> atom -> bool
val equal_literal : literal -> literal -> bool
val equal_rule : rule -> rule -> bool

(** {1 Structure accessors} *)

(** Variable names (not parameters) in a term/atom/literal, left to right. *)
val term_vars : term -> string list

val atom_vars : atom -> string list
val literal_vars : literal -> string list

(** Parameter names (without [$]) likewise. *)
val term_params : term -> string list

val atom_params : atom -> string list
val literal_params : literal -> string list

(** Distinct variable names of a rule body, in first-occurrence order. *)
val rule_vars : rule -> string list

(** Distinct parameter names of a rule, in sorted order.  Sorted so that
    every component agrees on the column order of parameter tuples. *)
val rule_params : rule -> string list

(** Distinct parameter names of a query (sorted). *)
val query_params : query -> string list

val positive_atoms : rule -> atom list

(** [comparison_eval c cmp] interprets [cmp] on the result [c] of
    {!Qf_relational.Value.compare}. *)
val comparison_eval : int -> comparison -> bool

val comparison_to_string : comparison -> string

(** Flip a comparison's operands: [a op b] iff [b (flip op) a]. *)
val flip_comparison : comparison -> comparison

(** {1 Substitution} *)

(** [subst_term bindings t] replaces bound [Var]/[Param] terms by constants.
    Bindings are keyed as produced by {!binding_key}. *)
val subst_term : (string * Qf_relational.Value.t) list -> term -> term

val subst_rule : (string * Qf_relational.Value.t) list -> rule -> rule

(** [rename_params mapping r] renames parameters according to
    [(old, new)] pairs, simultaneously (no chaining).  Parameters not in
    the mapping are untouched. *)
val rename_params : (string * string) list -> rule -> rule

(** The environment key for a term: variables by name, parameters prefixed
    with [$].  Raises [Invalid_argument] on a constant. *)
val binding_key : term -> string

(** {1 Well-formedness} *)

(** Checks: non-empty union; equal head predicates and arities; equal
    parameter sets across rules; no parameter in any head; no empty body. *)
val wf_query : query -> (unit, string) result
