(** Recursive-descent parser for rules and unions of rules.

    Grammar (paper syntax):
    {v
    query   ::= rule+
    rule    ::= atom ":-" literal ("AND" literal)*
    literal ::= "NOT" atom | atom | term cmpop term
    atom    ::= lident "(" term ("," term)* ")"
    term    ::= Uident | $param | lident | number | "string"
    cmpop   ::= "<" | "<=" | ">" | ">=" | "=" | "!=" | "<>"
    v}

    Capitalized identifiers are variables, [$name] are parameters, lowercase
    identifiers and literals are constants.  The stateful entry points are
    exposed so the flock-program parser (in [qf_core]) can share the token
    stream. *)

exception Error of string

(** Syntax errors found at a known source location: the message already
    names the line and column, the span points at the offending token. *)
exception Error_at of string * Ast.span

(** Mutable cursor over a token list. *)
type state

val of_tokens : Lexer.token list -> state

(** Lexes with spans; a {!Lexer.Error} is re-raised as {!Error_at} with the
    line:col and the offending lexeme in the message. *)
val of_string : string -> state

(** Current token without consuming it. *)
val peek : state -> Lexer.token

(** Source span of the token at the cursor ({!Ast.no_span} when the state
    was built from bare tokens). *)
val peek_span : state -> Ast.span

(** Source span of the most recently consumed token. *)
val last_span : state -> Ast.span

(** Consume and return the current token. *)
val next : state -> Lexer.token

(** Consume the given token or raise {!Error_at}. *)
val expect : state -> Lexer.token -> unit

(** Parse one rule starting at the cursor. *)
val rule : state -> Ast.rule

(** Like {!rule}, but the result carries the head and per-literal source
    spans. *)
val rule_located : state -> Ast.located_rule

(** Parse a maximal sequence of rules (a union): rules are recognized while
    the cursor sits on a lowercase identifier followed by [( ... ) :-]. *)
val rules : state -> Ast.rule list

val rules_located : state -> Ast.located_rule list

(** {1 Whole-string conveniences} *)

val parse_rule : string -> (Ast.rule, string) result

(** Parses a union of one or more rules and checks {!Ast.wf_query}. *)
val parse_query : string -> (Ast.query, string) result
