module Value = Qf_relational.Value

type position = { line : int; col : int }
type span = { start_pos : position; end_pos : position }

let no_pos = { line = 0; col = 0 }
let no_span = { start_pos = no_pos; end_pos = no_pos }
let is_no_span s = s.start_pos.line = 0

let join_spans a b =
  if is_no_span a then b
  else if is_no_span b then a
  else
    let le p q = p.line < q.line || (p.line = q.line && p.col <= q.col) in
    { start_pos = (if le a.start_pos b.start_pos then a.start_pos else b.start_pos);
      end_pos = (if le a.end_pos b.end_pos then b.end_pos else a.end_pos) }

let pp_position ppf p = Format.fprintf ppf "%d:%d" p.line p.col

let pp_span ppf s =
  if is_no_span s then Format.pp_print_string ppf "-"
  else if s.start_pos.line = s.end_pos.line then
    Format.fprintf ppf "%d:%d-%d" s.start_pos.line s.start_pos.col s.end_pos.col
  else
    Format.fprintf ppf "%a-%a" pp_position s.start_pos pp_position s.end_pos

type term =
  | Var of string
  | Param of string
  | Const of Value.t

type atom = { pred : string; args : term list }

type comparison =
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of term * comparison * term

type rule = { head : atom; body : literal list }
type query = rule list

(** A rule together with the source spans of its head and each body
    literal, as recorded by the parser.  Programmatically built rules use
    {!locate}, which attaches {!no_span} everywhere. *)
type located_rule = {
  lr_rule : rule;
  lr_head : span;
  lr_body : span list;
  lr_span : span;
}

let locate r =
  { lr_rule = r;
    lr_head = no_span;
    lr_body = List.map (fun _ -> no_span) r.body;
    lr_span = no_span }

let equal_term a b =
  match a, b with
  | Var x, Var y | Param x, Param y -> String.equal x y
  | Const x, Const y -> Value.equal x y
  | (Var _ | Param _ | Const _), _ -> false

let equal_atom a b =
  String.equal a.pred b.pred
  && List.length a.args = List.length b.args
  && List.for_all2 equal_term a.args b.args

let equal_literal a b =
  match a, b with
  | Pos x, Pos y | Neg x, Neg y -> equal_atom x y
  | Cmp (l1, c1, r1), Cmp (l2, c2, r2) ->
    c1 = c2 && equal_term l1 l2 && equal_term r1 r2
  | (Pos _ | Neg _ | Cmp _), _ -> false

let equal_rule a b =
  equal_atom a.head b.head
  && List.length a.body = List.length b.body
  && List.for_all2 equal_literal a.body b.body

let term_vars = function Var v -> [ v ] | Param _ | Const _ -> []
let atom_vars a = List.concat_map term_vars a.args

let literal_vars = function
  | Pos a | Neg a -> atom_vars a
  | Cmp (l, _, r) -> term_vars l @ term_vars r

let term_params = function Param p -> [ p ] | Var _ | Const _ -> []
let atom_params a = List.concat_map term_params a.args

let literal_params = function
  | Pos a | Neg a -> atom_params a
  | Cmp (l, _, r) -> term_params l @ term_params r

let dedup_keep_order names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let rule_vars r = dedup_keep_order (List.concat_map literal_vars r.body)

let rule_params r =
  List.sort_uniq String.compare
    (atom_params r.head @ List.concat_map literal_params r.body)

let query_params q =
  List.sort_uniq String.compare (List.concat_map rule_params q)

let positive_atoms r =
  List.filter_map (function Pos a -> Some a | Neg _ | Cmp _ -> None) r.body

let comparison_eval c = function
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0
  | Eq -> c = 0
  | Ne -> c <> 0

let comparison_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "!="

let flip_comparison = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | Eq -> Eq
  | Ne -> Ne

let binding_key = function
  | Var v -> v
  | Param p -> "$" ^ p
  | Const _ -> invalid_arg "Ast.binding_key: constant term"

let subst_term bindings t =
  match t with
  | Const _ -> t
  | Var _ | Param _ -> (
    match List.assoc_opt (binding_key t) bindings with
    | Some v -> Const v
    | None -> t)

let subst_atom bindings a = { a with args = List.map (subst_term bindings) a.args }

let subst_literal bindings = function
  | Pos a -> Pos (subst_atom bindings a)
  | Neg a -> Neg (subst_atom bindings a)
  | Cmp (l, c, r) -> Cmp (subst_term bindings l, c, subst_term bindings r)

let subst_rule bindings r =
  { head = subst_atom bindings r.head;
    body = List.map (subst_literal bindings) r.body }

let rename_params mapping r =
  let term = function
    | Param p as t -> (
      match List.assoc_opt p mapping with Some p' -> Param p' | None -> t)
    | (Var _ | Const _) as t -> t
  in
  let atom a = { a with args = List.map term a.args } in
  let literal = function
    | Pos a -> Pos (atom a)
    | Neg a -> Neg (atom a)
    | Cmp (l, c, rt) -> Cmp (term l, c, term rt)
  in
  { r with body = List.map literal r.body }

let wf_query q =
  let ( let* ) r f = Result.bind r f in
  let* () = if q = [] then Error "empty union" else Ok () in
  let first = List.hd q in
  let check_rule i r =
    let* () =
      if String.equal r.head.pred first.head.pred then Ok ()
      else Error (Printf.sprintf "rule %d: head predicate differs" i)
    in
    let* () =
      if List.length r.head.args = List.length first.head.args then Ok ()
      else Error (Printf.sprintf "rule %d: head arity differs" i)
    in
    let* () =
      if atom_params r.head = [] then Ok ()
      else Error (Printf.sprintf "rule %d: parameter in head" i)
    in
    let* () =
      if r.body <> [] then Ok ()
      else Error (Printf.sprintf "rule %d: empty body" i)
    in
    if rule_params r = rule_params first then Ok ()
    else Error (Printf.sprintf "rule %d: parameter set differs across union" i)
  in
  List.fold_left
    (fun acc (i, r) ->
      let* () = acc in
      check_rule i r)
    (Ok ())
    (List.mapi (fun i r -> i, r) q)
