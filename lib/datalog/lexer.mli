(** Hand-written lexer for the flock surface language.

    Token conventions follow the paper: predicates and bare string constants
    are lowercase identifiers; variables are capitalized identifiers;
    parameters are [$name] (also [$1], [$2] — digits allowed); [AND] and
    [NOT] are keywords; [QUERY:] and [FILTER:] introduce the two sections of
    a flock program.  Comments run from [%] or [//] to end of line. *)

type token =
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Implies  (** [:-] *)
  | And
  | Not
  | Query_kw  (** [QUERY:] *)
  | Filter_kw  (** [FILTER:] *)
  | Views_kw  (** [VIEWS:] *)
  | Cmp of Ast.comparison
  | Lident of string  (** lowercase identifier *)
  | Uident of string  (** capitalized identifier *)
  | Param of string  (** [$name], stored without the [$] *)
  | Int of int
  | Real of float
  | String of string  (** double-quoted *)
  | Eof

(** A token together with its source span (1-based line/col, end
    exclusive). *)
type spanned = { tok : token; span : Ast.span }

val pp_token : Format.formatter -> token -> unit

exception Error of string * Ast.position  (** message, 1-based line:col *)

(** Tokenize an entire input.  The result always ends with [Eof].
    Raises {!Error} on an illegal character or unterminated string. *)
val tokenize : string -> token list

(** Like {!tokenize}, but every token carries its source span. *)
val tokenize_spanned : string -> spanned list

(** [position_table input offset] maps a byte offset into [input] to a
    1-based line:col position (used to report positions for inputs lexed
    elsewhere). *)
val position_table : string -> int -> Ast.position
