type token =
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Implies
  | And
  | Not
  | Query_kw
  | Filter_kw
  | Views_kw
  | Cmp of Ast.comparison
  | Lident of string
  | Uident of string
  | Param of string
  | Int of int
  | Real of float
  | String of string
  | Eof

type spanned = { tok : token; span : Ast.span }

let pp_token ppf = function
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Comma -> Format.pp_print_string ppf ","
  | Dot -> Format.pp_print_string ppf "."
  | Star -> Format.pp_print_string ppf "*"
  | Implies -> Format.pp_print_string ppf ":-"
  | And -> Format.pp_print_string ppf "AND"
  | Not -> Format.pp_print_string ppf "NOT"
  | Query_kw -> Format.pp_print_string ppf "QUERY:"
  | Filter_kw -> Format.pp_print_string ppf "FILTER:"
  | Views_kw -> Format.pp_print_string ppf "VIEWS:"
  | Cmp c -> Format.pp_print_string ppf (Ast.comparison_to_string c)
  | Lident s | Uident s -> Format.pp_print_string ppf s
  | Param p -> Format.fprintf ppf "$%s" p
  | Int i -> Format.pp_print_int ppf i
  | Real f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Eof -> Format.pp_print_string ppf "<eof>"

exception Error of string * Ast.position

(* Map byte offsets to 1-based line:col.  The table of line-start offsets
   is built once per input; positions past the end clamp to the last
   line. *)
let position_table input =
  let n = String.length input in
  let starts = ref [ 0 ] in
  for i = 0 to n - 1 do
    if input.[i] = '\n' then starts := (i + 1) :: !starts
  done;
  let starts = Array.of_list (List.rev !starts) in
  fun off ->
    let off = if off < 0 then 0 else if off > n then n else off in
    (* Last line start <= off. *)
    let rec bsearch lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if starts.(mid) <= off then bsearch mid hi else bsearch lo (mid - 1)
    in
    let line = bsearch 0 (Array.length starts - 1) in
    { Ast.line = line + 1; col = off - starts.(line) + 1 }

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let tokenize_spanned input =
  let n = String.length input in
  let pos_of = position_table input in
  let span i j = { Ast.start_pos = pos_of i; end_pos = pos_of j } in
  let error msg i = raise (Error (msg, pos_of i)) in
  let tokens = ref [] in
  let emit tok i j = tokens := { tok; span = span i j } :: !tokens in
  let rec skip_line i = if i < n && input.[i] <> '\n' then skip_line (i + 1) else i in
  let rec ident_end i = if i < n && is_ident_char input.[i] then ident_end (i + 1) else i in
  let number_end i =
    let rec digits i = if i < n && is_digit input.[i] then digits (i + 1) else i in
    let i = digits i in
    if i < n && input.[i] = '.' && i + 1 < n && is_digit input.[i + 1] then
      let i = digits (i + 1) in
      if i < n && (input.[i] = 'e' || input.[i] = 'E') then
        let j = if i + 1 < n && (input.[i + 1] = '+' || input.[i + 1] = '-') then i + 2 else i + 1 in
        digits j, true
      else i, true
    else i, false
  in
  let rec string_end start i buf =
    if i >= n then error "unterminated string literal" start
    else
      match input.[i] with
      | '"' -> i + 1
      | '\\' when i + 1 < n ->
        Buffer.add_char buf input.[i + 1];
        string_end start (i + 2) buf
      | c ->
        Buffer.add_char buf c;
        string_end start (i + 1) buf
  in
  let rec loop i =
    if i >= n then emit Eof i i
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '%' -> loop (skip_line i)
      | '/' when i + 1 < n && input.[i + 1] = '/' -> loop (skip_line i)
      | '(' ->
        emit Lparen i (i + 1);
        loop (i + 1)
      | ')' ->
        emit Rparen i (i + 1);
        loop (i + 1)
      | ',' ->
        emit Comma i (i + 1);
        loop (i + 1)
      | '*' ->
        emit Star i (i + 1);
        loop (i + 1)
      | '.' ->
        emit Dot i (i + 1);
        loop (i + 1)
      | ';' -> loop (i + 1)
      | ':' when i + 1 < n && input.[i + 1] = '-' ->
        emit Implies i (i + 2);
        loop (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' ->
        emit (Cmp Ast.Le) i (i + 2);
        loop (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '>' ->
        emit (Cmp Ast.Ne) i (i + 2);
        loop (i + 2)
      | '<' ->
        emit (Cmp Ast.Lt) i (i + 1);
        loop (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' ->
        emit (Cmp Ast.Ge) i (i + 2);
        loop (i + 2)
      | '>' ->
        emit (Cmp Ast.Gt) i (i + 1);
        loop (i + 1)
      | '!' when i + 1 < n && input.[i + 1] = '=' ->
        emit (Cmp Ast.Ne) i (i + 2);
        loop (i + 2)
      | '=' ->
        emit (Cmp Ast.Eq) i (i + 1);
        loop (i + 1)
      | '"' ->
        let buf = Buffer.create 16 in
        let j = string_end i (i + 1) buf in
        emit (String (Buffer.contents buf)) i j;
        loop j
      | '$' ->
        let j = ident_end (i + 1) in
        if j = i + 1 then error "empty parameter name after $" i;
        emit (Param (String.sub input (i + 1) (j - i - 1))) i j;
        loop j
      | '0' .. '9' ->
        let j, is_real = number_end i in
        let text = String.sub input i (j - i) in
        if is_real then emit (Real (float_of_string text)) i j
        else emit (Int (int_of_string text)) i j;
        loop j
      | '-' when i + 1 < n && is_digit input.[i + 1] ->
        let j, is_real = number_end (i + 1) in
        let text = String.sub input i (j - i) in
        if is_real then emit (Real (float_of_string text)) i j
        else emit (Int (int_of_string text)) i j;
        loop j
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ident_end i in
        let word = String.sub input i (j - i) in
        let with_colon = j < n && input.[j] = ':' && (j + 1 >= n || input.[j + 1] <> '-') in
        (match word, with_colon with
        | "QUERY", true ->
          emit Query_kw i (j + 1);
          loop (j + 1)
        | "FILTER", true ->
          emit Filter_kw i (j + 1);
          loop (j + 1)
        | "VIEWS", true ->
          emit Views_kw i (j + 1);
          loop (j + 1)
        | "AND", _ ->
          emit And i j;
          loop j
        | "NOT", _ ->
          emit Not i j;
          loop j
        | _ ->
          (match word.[0] with
          | 'A' .. 'Z' -> emit (Uident word) i j
          | _ -> emit (Lident word) i j);
          loop j)
      | c -> error (Printf.sprintf "illegal character %C" c) i
  in
  loop 0;
  List.rev !tokens

let tokenize input = List.map (fun s -> s.tok) (tokenize_spanned input)
