module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Value = Qf_relational.Value
module Tuple = Qf_relational.Tuple

type db = Itemset.t list

let db_of_relation rel =
  let schema = Relation.schema rel in
  (match Schema.arity schema with
  | 2 -> ()
  | n ->
    invalid_arg
      (Printf.sprintf "Apriori.db_of_relation: arity %d, expected (BID, Item)" n));
  let by_basket = Hashtbl.create 1024 in
  Relation.iter
    (fun tup ->
      let item =
        match Tuple.get tup 1 with
        | Value.Int i -> i
        | v ->
          invalid_arg
            (Printf.sprintf "Apriori.db_of_relation: non-integer item %s"
               (Value.to_string v))
      in
      let key = Tuple.get tup 0 in
      let existing =
        match Hashtbl.find_opt by_basket key with Some l -> l | None -> []
      in
      Hashtbl.replace by_basket key (item :: existing))
    rel;
  Hashtbl.fold (fun _ items acc -> Itemset.of_list items :: acc) by_basket []

type frequent = {
  itemset : Itemset.t;
  support : int;
}

(* Enumerate the size-[k] sub-itemsets of [basket] (sorted), calling [f] on
   each.  Used to count candidate supports basket-by-basket: a basket of b
   items yields C(b,k) combinations, usually far fewer than the number of
   candidates. *)
let iter_combinations basket k f =
  let n = Array.length basket in
  let combo = Array.make k 0 in
  let rec go pos start =
    if pos = k then f (Array.copy combo)
    else
      for i = start to n - (k - pos) do
        combo.(pos) <- basket.(i);
        go (pos + 1) (i + 1)
      done
  in
  if k <= n then go 0 0

let binomial n k =
  if k > n then 0
  else begin
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let count_supports db candidates =
  let counts = Itemset.Table.create (List.length candidates * 2) in
  List.iter (fun c -> Itemset.Table.replace counts c 0) candidates;
  let n_candidates = List.length candidates in
  let k = match candidates with c :: _ -> Itemset.size c | [] -> 0 in
  let bump c =
    match Itemset.Table.find_opt counts c with
    | Some n -> Itemset.Table.replace counts c (n + 1)
    | None -> ()
  in
  List.iter
    (fun basket ->
      (* Pick the cheaper direction per basket: enumerate the basket's
         k-subsets against the candidate hash, or scan the candidates. *)
      if binomial (Array.length basket) k <= n_candidates then
        iter_combinations basket k bump
      else
        Itemset.Table.iter
          (fun c n ->
            if Itemset.subset c basket then Itemset.Table.replace counts c (n + 1))
          counts)
    db;
  counts

let frequent_of_counts ~support counts =
  Itemset.Table.fold
    (fun itemset n acc ->
      if n >= support then { itemset; support = n } :: acc else acc)
    counts []
  |> List.sort (fun a b -> Itemset.compare a.itemset b.itemset)

let frequent_items db ~support =
  let counts = Hashtbl.create 1024 in
  List.iter
    (fun basket ->
      Array.iter
        (fun item ->
          let n =
            match Hashtbl.find_opt counts item with Some n -> n | None -> 0
          in
          Hashtbl.replace counts item (n + 1))
        basket)
    db;
  Hashtbl.fold
    (fun item n acc ->
      if n >= support then { itemset = [| item |]; support = n } :: acc
      else acc)
    counts []
  |> List.sort (fun a b -> Itemset.compare a.itemset b.itemset)

let candidates level =
  let level = List.sort Itemset.compare level in
  let kept = Itemset.Table.create 64 in
  List.iter (fun s -> Itemset.Table.replace kept s ()) level;
  let joined =
    List.concat_map
      (fun a ->
        List.filter_map (fun b -> Itemset.join a b) level)
      level
  in
  (* a-priori pruning: every (k)-subset of a (k+1)-candidate must be
     frequent at the previous level *)
  List.filter
    (fun c ->
      List.for_all (fun sub -> Itemset.Table.mem kept sub) (Itemset.drop_one c))
    joined
  |> List.sort_uniq Itemset.compare

let mine db ~support ~max_size =
  let l1 = frequent_items db ~support in
  let rec levels acc current k =
    if k >= max_size || current = [] then List.rev acc
    else begin
      let cands = candidates (List.map (fun f -> f.itemset) current) in
      if cands = [] then List.rev acc
      else begin
        let counts = count_supports db cands in
        let next = frequent_of_counts ~support counts in
        if next = [] then List.rev acc else levels (next :: acc) next (k + 1)
      end
    end
  in
  if l1 = [] then [] else levels [ l1 ] l1 1

let frequent_of_size db ~support ~size =
  match List.nth_opt (mine db ~support ~max_size:size) (size - 1) with
  | Some level -> level
  | None -> []

type rule = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  rule_support : int;
  confidence : float;
  interest : float;
}

let rules db ~support ~max_size ~min_confidence =
  let levels = mine db ~support ~max_size in
  let support_of =
    let table = Itemset.Table.create 256 in
    List.iter
      (fun level ->
        List.iter (fun f -> Itemset.Table.replace table f.itemset f.support) level)
      levels;
    fun itemset -> Itemset.Table.find_opt table itemset
  in
  let n_baskets = List.length db in
  let from_itemset f =
    if Itemset.size f.itemset < 2 then []
    else
      List.filter_map
        (fun consequent_item ->
          let consequent = [| consequent_item |] in
          let antecedent = Itemset.minus f.itemset consequent in
          match support_of antecedent, support_of consequent with
          | Some sa, Some sc ->
            let confidence = float_of_int f.support /. float_of_int sa in
            let p_consequent = float_of_int sc /. float_of_int n_baskets in
            if confidence >= min_confidence then
              Some
                {
                  antecedent;
                  consequent;
                  rule_support = f.support;
                  confidence;
                  interest = confidence /. p_consequent;
                }
            else None
          | _ -> None)
        (Itemset.to_list f.itemset)
  in
  List.concat_map (fun level -> List.concat_map from_itemset level) levels
