module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Value = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Tuple = Qf_relational.Tuple

type config = {
  n_patients : int;
  diseases_per_patient : int;
  n_diseases : int;
  n_symptoms : int;
  n_medicines : int;
  symptoms_per_disease : int;
  background_symptoms : int;
  background_medicines : int;
  symptom_zipf : float;
  medicine_zipf : float;
  planted_side_effects : int;
  side_effect_rate : float;
  seed : int;
}

let default =
  {
    n_patients = 2000;
    diseases_per_patient = 1;
    n_diseases = 20;
    n_symptoms = 300;
    n_medicines = 100;
    symptoms_per_disease = 4;
    background_symptoms = 3;
    background_medicines = 1;
    symptom_zipf = 1.0;
    medicine_zipf = 0.8;
    planted_side_effects = 3;
    side_effect_rate = 0.8;
    seed = 7;
  }

type t = {
  catalog : Qf_relational.Catalog.t;
  planted : (int * int) list;
}

let patient i = Value.Int i
let disease i = Value.Int i
let symptom i = Value.Int i
let medicine i = Value.Int i

let generate config =
  let rng = Rng.create config.seed in
  let symptom_dist = Zipf.create ~n:config.n_symptoms ~s:config.symptom_zipf in
  let medicine_dist =
    Zipf.create ~n:config.n_medicines ~s:config.medicine_zipf
  in
  (* Disease profile: caused symptoms and the indicated medicine. *)
  let caused = Array.make (config.n_diseases + 1) [] in
  let indicated = Array.make (config.n_diseases + 1) 1 in
  for d = 1 to config.n_diseases do
    let symptoms = ref [] in
    while List.length !symptoms < config.symptoms_per_disease do
      let s = 1 + Rng.int rng config.n_symptoms in
      if not (List.mem s !symptoms) then symptoms := s :: !symptoms
    done;
    caused.(d) <- !symptoms;
    indicated.(d) <- 1 + Rng.int rng config.n_medicines
  done;
  (* Planted side effects: the indicated medicine of disease d produces a
     symptom that d does not cause, so the effect is "unexplained". *)
  let planted =
    List.init (min config.planted_side_effects config.n_diseases) (fun i ->
        let d = i + 1 in
        let s = ref (1 + Rng.int rng config.n_symptoms) in
        while List.mem !s caused.(d) do
          s := 1 + Rng.int rng config.n_symptoms
        done;
        d, indicated.(d), !s)
  in
  let diagnoses = Relation.create (Schema.of_list [ "Patient"; "Disease" ]) in
  let exhibits = Relation.create (Schema.of_list [ "Patient"; "Symptom" ]) in
  let treatments = Relation.create (Schema.of_list [ "Patient"; "Medicine" ]) in
  let causes = Relation.create (Schema.of_list [ "Disease"; "Symptom" ]) in
  for d = 1 to config.n_diseases do
    List.iter
      (fun s ->
        Relation.add causes (Tuple.of_array [| disease d; symptom s |]))
      caused.(d)
  done;
  for p = 1 to config.n_patients do
    let n_diseases = max 1 config.diseases_per_patient in
    let patient_diseases =
      List.init n_diseases (fun _ -> 1 + Rng.int rng config.n_diseases)
      |> List.sort_uniq Int.compare
    in
    List.iter
      (fun d ->
        Relation.add diagnoses (Tuple.of_array [| patient p; disease d |]);
        List.iter
          (fun s ->
            if Rng.bool rng 0.8 then
              Relation.add exhibits (Tuple.of_array [| patient p; symptom s |]))
          caused.(d);
        Relation.add treatments
          (Tuple.of_array [| patient p; medicine indicated.(d) |]);
        (* Planted effects fire for patients of the planted disease (who
           all take its indicated medicine). *)
        List.iter
          (fun (pd, _m, s) ->
            if pd = d && Rng.bool rng config.side_effect_rate then
              Relation.add exhibits (Tuple.of_array [| patient p; symptom s |]))
          planted)
      patient_diseases;
    for _ = 1 to config.background_symptoms do
      Relation.add exhibits
        (Tuple.of_array
           [| patient p; symptom (Zipf.sample symptom_dist rng) |])
    done;
    for _ = 1 to config.background_medicines do
      Relation.add treatments
        (Tuple.of_array
           [| patient p; medicine (Zipf.sample medicine_dist rng) |])
    done
  done;
  let catalog = Catalog.create () in
  Catalog.add catalog "diagnoses" diagnoses;
  Catalog.add catalog "exhibits" exhibits;
  Catalog.add catalog "treatments" treatments;
  Catalog.add catalog "causes" causes;
  { catalog; planted = List.map (fun (_, m, s) -> m, s) planted }
