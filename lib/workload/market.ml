module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Value = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Tuple = Qf_relational.Tuple

type config = {
  n_baskets : int;
  n_items : int;
  avg_basket_size : int;
  zipf_exponent : float;
  seed : int;
}

let default =
  {
    n_baskets = 2000;
    n_items = 500;
    avg_basket_size = 8;
    zipf_exponent = 1.0;
    seed = 42;
  }

let relation config =
  let rng = Rng.create config.seed in
  let zipf = Zipf.create ~n:config.n_items ~s:config.zipf_exponent in
  let rel = Relation.create (Schema.of_list [ "BID"; "Item" ]) in
  for bid = 1 to config.n_baskets do
    (* Basket size: uniform in [1, 2*avg - 1], mean = avg. *)
    let size = 1 + Rng.int rng (max 1 ((2 * config.avg_basket_size) - 1)) in
    for _ = 1 to size do
      let item = Zipf.sample zipf rng in
      Relation.add rel (Tuple.of_array [| Value.Int bid; Value.Int item |])
    done
  done;
  rel

let relation_with_patterns config ~n_patterns ~pattern_size ~rate =
  let rng = Rng.create (config.seed + 104729) in
  let zipf = Zipf.create ~n:config.n_items ~s:config.zipf_exponent in
  (* Pattern items live at the top of the id range: the Zipf tail, so the
     pattern signal is not confounded by independently-popular items. *)
  let patterns =
    List.init n_patterns (fun p ->
        List.init pattern_size (fun i ->
            config.n_items + 1 + (p * pattern_size) + i))
  in
  let rel = Relation.create (Schema.of_list [ "BID"; "Item" ]) in
  for bid = 1 to config.n_baskets do
    let size = 1 + Rng.int rng (max 1 ((2 * config.avg_basket_size) - 1)) in
    for _ = 1 to size do
      Relation.add rel
        (Tuple.of_array [| Value.Int bid; Value.Int (Zipf.sample zipf rng) |])
    done;
    List.iter
      (fun pattern ->
        if Rng.bool rng rate then
          List.iter
            (fun item ->
              Relation.add rel
                (Tuple.of_array [| Value.Int bid; Value.Int item |]))
            pattern)
      patterns
  done;
  rel, patterns

let catalog ?(pred = "baskets") config =
  let cat = Catalog.create () in
  Catalog.add cat pred (relation config);
  cat

let catalog_with_importance ?(pred = "baskets") ?(max_weight = 10) config =
  let cat = catalog ~pred config in
  let rng = Rng.create (config.seed + 7919) in
  let importance = Relation.create (Schema.of_list [ "BID"; "W" ]) in
  for bid = 1 to config.n_baskets do
    Relation.add importance
      (Tuple.of_array
         [| Value.Int bid; Value.Int (1 + Rng.int rng max_weight) |])
  done;
  Catalog.add cat "importance" importance;
  cat
