module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Value = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Ast = Qf_datalog.Ast

type config = {
  n_nodes : int;
  max_out_degree : int;
  degree_zipf : float;
  seed : int;
}

let default =
  { n_nodes = 400; max_out_degree = 60; degree_zipf = 1.2; seed = 99 }

let generate config =
  let rng = Rng.create config.seed in
  let degree_dist = Zipf.create ~n:config.max_out_degree ~s:config.degree_zipf in
  let arc = Relation.create (Schema.of_list [ "X"; "Y" ]) in
  for x = 1 to config.n_nodes do
    (* Out-degree is the sampled Zipf rank itself: most nodes have very few
       successors; high-degree hubs are rare — the skew that makes the ok0
       pruning step of Fig. 7 worthwhile. *)
    let degree = Zipf.sample degree_dist rng in
    for _ = 1 to degree do
      let y = 1 + Rng.int rng config.n_nodes in
      Relation.add arc
        (Qf_relational.Tuple.of_array [| Value.Int x; Value.Int y |])
    done
  done;
  let catalog = Catalog.create () in
  Catalog.add catalog "arc" arc;
  catalog

let arc_atom a b = Ast.Pos { Ast.pred = "arc"; args = [ a; b ] }

let path_body n =
  let first = arc_atom (Ast.Param "1") (Ast.Var "X") in
  if n = 0 then [ first ]
  else
    let chain =
      List.init n (fun i ->
          let src = if i = 0 then Ast.Var "X" else Ast.Var (Printf.sprintf "Y%d" i) in
          let dst = Ast.Var (Printf.sprintf "Y%d" (i + 1)) in
          arc_atom src dst)
    in
    first :: chain

let path_flock ~n ~support =
  if n < 0 then invalid_arg "path_flock: n must be >= 0";
  let rule =
    { Ast.head = { Ast.pred = "answer"; args = [ Ast.Var "X" ] };
      body = path_body n }
  in
  Qf_core.Flock.make_exn [ rule ] (Qf_core.Filter.count_at_least support)

let chain_plan flock ~n =
  if n < 1 then invalid_arg "chain_plan: n must be >= 1";
  let prefixes = List.init n (fun k -> List.init (k + 1) Fun.id) in
  match Qf_core.Apriori_gen.chain_plan flock ~prefixes with
  | Ok plan -> plan
  | Error msg -> invalid_arg ("Graph.chain_plan: " ^ msg)
