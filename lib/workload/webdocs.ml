module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Value = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Tuple = Qf_relational.Tuple

type config = {
  n_docs : int;
  n_words : int;
  n_anchors : int;
  title_words : int;
  anchor_words : int;
  word_zipf : float;
  anchor_affinity : float;
  target_zipf : float;
  seed : int;
}

let default =
  {
    n_docs = 500;
    n_words = 400;
    n_anchors = 1500;
    title_words = 4;
    anchor_words = 3;
    word_zipf = 1.0;
    anchor_affinity = 0.6;
    target_zipf = 0.9;
    seed = 23;
  }

let word i = Value.Int i

let generate config =
  let rng = Rng.create config.seed in
  let word_dist = Zipf.create ~n:config.n_words ~s:config.word_zipf in
  let target_dist = Zipf.create ~n:config.n_docs ~s:config.target_zipf in
  let in_title = Relation.create (Schema.of_list [ "D"; "W" ]) in
  let in_anchor = Relation.create (Schema.of_list [ "A"; "W" ]) in
  let link = Relation.create (Schema.of_list [ "A"; "D1"; "D2" ]) in
  (* Titles. *)
  let titles = Array.make (config.n_docs + 1) [] in
  for d = 1 to config.n_docs do
    let words = ref [] in
    for _ = 1 to config.title_words do
      words := Zipf.sample word_dist rng :: !words
    done;
    titles.(d) <- List.sort_uniq Int.compare !words;
    List.iter
      (fun w ->
        Relation.add in_title (Tuple.of_array [| Value.Int d; word w |]))
      titles.(d)
  done;
  (* Anchors: id space disjoint from documents. *)
  for i = 1 to config.n_anchors do
    let a = config.n_docs + i in
    let source = 1 + Rng.int rng config.n_docs in
    let target = Zipf.sample target_dist rng in
    Relation.add link
      (Tuple.of_array [| Value.Int a; Value.Int source; Value.Int target |]);
    for _ = 1 to config.anchor_words do
      let w =
        if Rng.bool rng config.anchor_affinity && titles.(target) <> [] then begin
          let t = titles.(target) in
          List.nth t (Rng.int rng (List.length t))
        end
        else Zipf.sample word_dist rng
      in
      Relation.add in_anchor (Tuple.of_array [| Value.Int a; word w |])
    done
  done;
  let catalog = Catalog.create () in
  Catalog.add catalog "inTitle" in_title;
  Catalog.add catalog "inAnchor" in_anchor;
  Catalog.add catalog "link" link;
  catalog
