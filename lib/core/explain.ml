module Pretty = Qf_datalog.Pretty

let pp_params ppf params =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf p -> Format.fprintf ppf "$%s" p))
    params

let pp_step ~filter ~head ppf (s : Plan.step) =
  Format.fprintf ppf "@[<v 4>%s%a := FILTER(%a,@,%a,@,%a@]@,);" s.name
    pp_params s.params pp_params s.params Pretty.pp_query s.query
    (Filter.pp ~head) filter

let pp_plan ppf (plan : Plan.t) =
  let head = Flock.head_name plan.flock in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
       (pp_step ~filter:plan.flock.filter ~head))
    (Plan.all_steps plan)

let plan_to_string plan = Format.asprintf "%a" pp_plan plan

let plan_summary (plan : Plan.t) =
  Plan.all_steps plan
  |> List.map (fun (s : Plan.step) ->
         Printf.sprintf "%s(%s)" s.name
           (String.concat "," (List.map (fun p -> "$" ^ p) s.params)))
  |> String.concat " -> "

(* {1 Profiled execution (flockc explain --profile)} *)

module Obs = Qf_obs.Obs

type step_profile = {
  name : string;
  params : string list;
  rows_in : int;
  groups : int;
  rows_out : int;
  seconds : float;
  est_rows : float option;
  est_groups : float option;
  bound_rows : float option;
  bound_groups : float option;
  reused_from : string option;
  memo_hit : bool;
  sip_pruned : int;
}

type profile = {
  summary : string;
  steps : step_profile list;
  result_rows : int;
  total_seconds : float;
  counters : (string * int) list;
  governor : Qf_governor.Governor.stats option;
}

let profile ?options ?(clamps = []) ?governor catalog (plan : Plan.t) =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      let t0 = Obs.now () in
      let report =
        let run () = Plan_exec.run_with_report ?options catalog plan in
        match governor with
        | None -> run ()
        | Some g -> Qf_governor.Governor.with_ctx g run
      in
      let total_seconds = Obs.now () -. t0 in
      let obs = Obs.report () in
      let estimates =
        match Cost.plan_step_estimates ~clamps (Cost.of_catalog catalog) plan with
        | ests -> ests
        | exception Failure _ -> []
      in
      let est_for name =
        List.find_opt
          (fun (e : Cost.step_estimate) -> String.equal e.Cost.step name)
          estimates
      in
      let steps =
        List.map2
          (fun (s : Plan.step) (r : Plan_exec.step_report) ->
            let est = est_for s.name in
            let bounds = List.assoc_opt s.name clamps in
            {
              name = s.name;
              params = s.params;
              rows_in = r.Plan_exec.tabulated_rows;
              groups = r.Plan_exec.groups;
              rows_out = r.Plan_exec.survivors;
              seconds = r.Plan_exec.seconds;
              est_rows = Option.map (fun (e : Cost.step_estimate) -> e.Cost.est_rows) est;
              est_groups =
                Option.map (fun (e : Cost.step_estimate) -> e.Cost.est_groups) est;
              bound_rows = Option.map snd bounds;
              bound_groups = Option.map fst bounds;
              reused_from = r.Plan_exec.reused_from;
              memo_hit = r.Plan_exec.memo_hit;
              sip_pruned = r.Plan_exec.sip_pruned;
            })
          (Plan.all_steps plan) report.Plan_exec.steps
      in
      (* The pool's per-chunk metrics are the only ones that legitimately
         vary with the machine (domain count, chunking); keep the profile
         deterministic by reporting everything else. *)
      let counters =
        List.filter
          (fun (k, _) -> not (String.starts_with ~prefix:"pool." k))
          obs.Obs.counters
      in
      {
        summary = plan_summary plan;
        steps;
        result_rows =
          Qf_relational.Relation.cardinal report.Plan_exec.result;
        total_seconds;
        counters;
        governor = Option.map Qf_governor.Governor.stats governor;
      })

let profile_text ?(redact_timings = false) (p : profile) =
  let buf = Buffer.create 1024 in
  let time s = if redact_timings then "-" else Printf.sprintf "%.6f" s in
  let est = function
    | None -> "-"
    | Some f ->
      if Float.is_finite f then Printf.sprintf "%.1f" f else "inf"
  in
  Buffer.add_string buf (Printf.sprintf "plan: %s\n\n" p.summary);
  let name_width =
    List.fold_left
      (fun acc (s : step_profile) ->
        let n =
          match s.reused_from with
          | Some t -> String.length s.name + String.length t + 3
          | None -> String.length s.name
        in
        max acc n)
      (String.length "step") p.steps
  in
  (* Certified-bound columns appear only when bounds were supplied, so
     unclamped profiles keep the original layout. *)
  let have_bounds =
    List.exists
      (fun (s : step_profile) ->
        s.bound_rows <> None || s.bound_groups <> None)
      p.steps
  in
  let bound_cols a b = if have_bounds then Printf.sprintf " %10s %10s" a b else "" in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %10s %10s%s %10s %10s %10s %10s %5s %12s\n"
       name_width "step" "est_grps" "est_rows"
       (bound_cols "cert_grps" "cert_rows")
       "rows_in" "groups" "rows_out" "sip_prune" "memo" "time_s");
  List.iter
    (fun (s : step_profile) ->
      let shown =
        match s.reused_from with
        | Some t -> s.name ^ " = " ^ t
        | None -> s.name
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %10s %10s%s %10d %10d %10d %10d %5s %12s\n"
           name_width shown (est s.est_groups) (est s.est_rows)
           (bound_cols (est s.bound_groups) (est s.bound_rows))
           s.rows_in s.groups s.rows_out s.sip_pruned
           (if s.memo_hit then "hit" else "-")
           (time s.seconds)))
    p.steps;
  Buffer.add_string buf
    (Printf.sprintf "\nresult rows: %d\ntotal time_s: %s\n" p.result_rows
       (time p.total_seconds));
  (* Governed profiles carry one extra summary line; ungoverned output
     stays byte-identical to the pre-governor format. *)
  (match p.governor with
  | None -> ()
  | Some (g : Qf_governor.Governor.stats) ->
    Buffer.add_string buf
      (Printf.sprintf
         "governor: peak_bytes=%d spill_partitions=%d spilled_bytes=%d \
          spilled_rows=%d\n"
         g.peak_bytes g.spill_partitions g.spilled_bytes g.spilled_rows));
  if p.counters <> [] then begin
    Buffer.add_string buf "\ncounters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s = %d\n" k v))
      p.counters
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if not (Float.is_finite f) then "\"inf\""
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let profile_json ?(redact_timings = false) (p : profile) =
  let buf = Buffer.create 1024 in
  let time s =
    if redact_timings then "null" else json_float s
  in
  let opt_float = function None -> "null" | Some f -> json_float f in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"plan\": \"%s\",\n" (json_escape p.summary));
  Buffer.add_string buf "  \"steps\": [\n";
  List.iteri
    (fun i (s : step_profile) ->
      let bounds =
        (* Only clamped profiles carry the certified-bound fields, so
           unclamped JSON stays byte-identical to the pre-bound format. *)
        match s.bound_groups, s.bound_rows with
        | None, None -> ""
        | g, r ->
          Printf.sprintf ", \"bound_groups\": %s, \"bound_rows\": %s"
            (opt_float g) (opt_float r)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"params\": [%s], \"est_groups\": %s, \
            \"est_rows\": %s%s, \"rows_in\": %d, \"groups\": %d, \"rows_out\": \
            %d, \"sip_pruned\": %d, \"memo_hit\": %b, \"reused_from\": %s, \
            \"seconds\": %s}%s\n"
           (json_escape s.name)
           (String.concat ", "
              (List.map (fun q -> "\"" ^ json_escape q ^ "\"") s.params))
           (opt_float s.est_groups) (opt_float s.est_rows) bounds s.rows_in
           s.groups s.rows_out s.sip_pruned s.memo_hit
           (match s.reused_from with
           | None -> "null"
           | Some t -> "\"" ^ json_escape t ^ "\"")
           (time s.seconds)
           (if i = List.length p.steps - 1 then "" else ",")))
    p.steps;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"result_rows\": %d,\n" p.result_rows);
  Buffer.add_string buf
    (Printf.sprintf "  \"total_seconds\": %s,\n" (time p.total_seconds));
  (match p.governor with
  | None -> ()
  | Some (g : Qf_governor.Governor.stats) ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"governor\": {\"peak_bytes\": %d, \"spill_partitions\": %d, \
          \"spilled_bytes\": %d, \"spilled_rows\": %d},\n"
         g.peak_bytes g.spill_partitions g.spilled_bytes g.spilled_rows));
  Buffer.add_string buf "  \"counters\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
          p.counters));
  Buffer.add_string buf "}\n}\n";
  Buffer.contents buf
