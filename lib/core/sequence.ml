module Ast = Qf_datalog.Ast
module Eval = Qf_datalog.Eval
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Tuple = Qf_relational.Tuple
module Value = Qf_relational.Value
module Aggregate = Qf_relational.Aggregate

type level = {
  k : int;
  itemsets : Qf_relational.Relation.t;
}

let param i = string_of_int i
let prev_pred k = Printf.sprintf "frequent_%d" k

(* All (j-1)-element subsets of the sorted parameters 1..j. *)
let subsets_dropping_one j =
  List.init j (fun drop ->
      List.filteri (fun i _ -> i <> drop) (List.init j (fun i -> i + 1)))

(* The k-th flock's rule: k basket subgoals, all pairwise order constraints,
   and — the "depends on the previous flock" part — the previous level's
   result applied to every (k-1)-subset of the parameters. *)
let level_rule ~pred k =
  let atoms =
    List.init k (fun i ->
        Ast.Pos
          { Ast.pred; args = [ Ast.Var "B"; Ast.Param (param (i + 1)) ] })
  in
  let cmps =
    List.concat
      (List.init k (fun i ->
           List.init
             (k - i - 1)
             (fun d ->
               Ast.Cmp
                 ( Ast.Param (param (i + 1)),
                   Ast.Lt,
                   Ast.Param (param (i + 2 + d)) ))))
  in
  let prune =
    if k <= 1 then []
    else
      List.map
        (fun subset ->
          Ast.Pos
            {
              Ast.pred = prev_pred (k - 1);
              args = List.map (fun i -> Ast.Param (param i)) subset;
            })
        (subsets_dropping_one k)
  in
  { Ast.head = { Ast.pred = "answer"; args = [ Ast.Var "B" ] };
    body = atoms @ cmps @ prune }

let frequent_levels ?(max_k = 9) catalog ~pred ~support =
  if max_k < 1 || max_k > 9 then
    invalid_arg "Sequence.frequent_levels: max_k must be in 1..9";
  let threshold = float_of_int support in
  let work = Catalog.copy catalog in
  let baskets = Catalog.find work pred in
  let item_col = List.nth (Schema.columns (Relation.schema baskets)) 1 in
  (* Level 1 directly: items in at least [support] baskets. *)
  let level1 =
    let rel =
      Aggregate.group_filter baskets ~keys:[ item_col ]
        ~func:Aggregate.Count ~threshold
    in
    (* Rename the column to $1 so every level shares the convention. *)
    let renamed = Relation.create (Schema.of_list [ "$1" ]) in
    Relation.iter (Relation.add renamed) rel;
    renamed
  in
  let rec levels acc k prev =
    if Relation.is_empty prev || k > max_k then List.rev acc
    else begin
      Catalog.add work (prev_pred (k - 1)) prev;
      if k > 1 && Relation.cardinal prev < k then List.rev acc
      else begin
        let rule = level_rule ~pred k in
        let tab = Eval.tabulate work rule in
        let keys = List.init k (fun i -> "$" ^ param (i + 1)) in
        let next =
          Aggregate.group_filter tab ~keys ~func:Aggregate.Count ~threshold
        in
        if Relation.is_empty next then List.rev acc
        else levels ({ k; itemsets = next } :: acc) (k + 1) next
      end
    end
  in
  if Relation.is_empty level1 then []
  else levels [ { k = 1; itemsets = level1 } ] 2 level1

(* [subset a b]: both tuples ascending; is every value of [a] in [b]? *)
let tuple_subset a b =
  let la = Tuple.arity a and lb = Tuple.arity b in
  let rec loop i j =
    if i >= la then true
    else if j >= lb then false
    else
      let c = Value.compare (Tuple.get a i) (Tuple.get b j) in
      if c = 0 then loop (i + 1) (j + 1)
      else if c > 0 then loop i (j + 1)
      else false
  in
  loop 0 0

let maximal levels =
  let rec walk = function
    | [] -> []
    | [ last ] ->
      List.map (fun tup -> last.k, tup) (Relation.to_sorted_list last.itemsets)
    | current :: (next :: _ as rest) ->
      let supersets = Relation.to_list next.itemsets in
      let here =
        List.filter_map
          (fun tup ->
            if List.exists (fun sup -> tuple_subset tup sup) supersets then None
            else Some (current.k, tup))
          (Relation.to_sorted_list current.itemsets)
      in
      here @ walk rest
  in
  walk levels
