(** Static cost-based plan search (paper Sec. 4.3, restriction 1).

    The space of legal plans is not even exponentially bounded, so the
    optimizer searches the paper's first exponential restriction: choose a
    set of parameter sets; for each, one FILTER step; finally the original
    query plus all [ok] subgoals.  Candidate parameter sets default to the
    singletons plus the full parameter set.  Every subset of the candidate
    collection is costed with {!Cost.estimate_plan}; the cheapest plan wins
    (the empty subset gives the trivial plan, so the optimizer never loses
    to {!Direct} under its own model). *)

type choice = {
  plan : Plan.t;
  param_sets : string list list;  (** the filter steps chosen *)
  cost : float;
}

(** All costed alternatives, cheapest first.  [param_sets] defaults to
    singletons plus (when there are at least two parameters) the full set.
    Alternatives whose parameter set admits no safe subquery are skipped.
    Non-monotone filters yield only the trivial plan.  [clamp] computes
    certified per-step bounds for each candidate (typically
    [Qf_analysis.Absint.clamps_of_plan]); its result is passed to
    {!Cost.estimate_plan} so costing never trusts an estimate above a
    certified bound. *)
val enumerate :
  ?param_sets:string list list ->
  ?clamp:(Plan.t -> (string * (float * float)) list) ->
  Qf_relational.Catalog.t ->
  Flock.t ->
  choice list

(** The cheapest plan under the model. *)
val optimize :
  ?param_sets:string list list ->
  ?clamp:(Plan.t -> (string * (float * float)) list) ->
  Qf_relational.Catalog.t ->
  Flock.t ->
  Plan.t
