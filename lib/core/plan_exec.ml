module Ast = Qf_datalog.Ast
module Eval = Qf_datalog.Eval
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Aggregate = Qf_relational.Aggregate
module Join = Qf_relational.Join

module Obs = Qf_obs.Obs

let log_src = Logs.Src.create "qf.plan" ~doc:"FILTER-step plan execution"

module Log = (val Logs.src_log log_src)

type step_report = {
  step_name : string;
  tabulated_rows : int;
  groups : int;
  survivors : int;
  seconds : float;
  reused_from : string option;
}

type report = {
  result : Qf_relational.Relation.t;
  steps : step_report list;
}

type options = {
  semijoin_reduction : bool;
  symmetric_reuse : bool;
}

let default_options = { semijoin_reduction = true; symmetric_reuse = true }

(* Semijoin reduction — the rewrite the paper's Sec. 1.3 measured: "first
   find those items that appeared in at least 20 baskets ... and then join
   the set of these items with the baskets relation before performing the
   query".  For every unary ok-subgoal [ok($p)] in a rule, each base
   subgoal with [$p] in some argument position is replaced by the
   materialized semijoin of its relation with [ok] on that column.  The
   binding-passing evaluator prunes the first parameter it binds for free,
   but later extensions scan unreduced posting lists; materializing the
   reduction is what yields the multiplicative (per-parameter) savings.
   Reductions are memoized across rules and steps of one plan execution. *)
let reduce_rule work ~step_names ~canon ~cache (r : Ast.rule) =
  let unary_oks =
    List.filter_map
      (function
        | Ast.Pos { Ast.pred; args = [ Ast.Param p ] }
          when List.mem pred step_names ->
          Some (p, pred)
        | _ -> None)
      r.body
  in
  if unary_oks = [] then r
  else begin
    let reduce_atom (a : Ast.atom) =
      if List.mem a.pred step_names then a
      else begin
        let pred = ref a.pred in
        List.iteri
          (fun i arg ->
            match arg with
            | Ast.Param p -> (
              match List.assoc_opt p unary_oks with
              | None -> ()
              | Some ok_name ->
                let canonical_ok =
                  match Hashtbl.find_opt canon ok_name with
                  | Some c -> c
                  | None -> ok_name
                in
                let reduced_name =
                  Printf.sprintf "%s~%d~%s" !pred i canonical_ok
                in
                (match Hashtbl.find_opt cache reduced_name with
                | Some () -> ()
                | None ->
                  let base = Catalog.find work !pred in
                  let ok = Catalog.find work canonical_ok in
                  let col =
                    List.nth (Schema.columns (Relation.schema base)) i
                  in
                  let ok_col =
                    List.hd (Schema.columns (Relation.schema ok))
                  in
                  Catalog.add work reduced_name
                    (Join.semi base ok [ col, ok_col ]);
                  Hashtbl.replace cache reduced_name ());
                pred := reduced_name)
            | Ast.Var _ | Ast.Const _ -> ())
          a.args;
        { a with Ast.pred = !pred }
      end
    in
    let body =
      List.map
        (function
          | Ast.Pos a -> Ast.Pos (reduce_atom a)
          | (Ast.Neg _ | Ast.Cmp _) as lit -> lit)
        r.body
    in
    { r with Ast.body }
  end

let run_step work ~options ~step_names ~canon ~cache ~est (flock : Flock.t)
    (s : Plan.step) =
  let t0 = Obs.now () in
  let compute () =
    let query =
      if options.semijoin_reduction then
        List.map (reduce_rule work ~step_names ~canon ~cache) s.query
      else s.query
    in
    let tab = Eval.tabulate_query work query in
    let keys = List.map (fun p -> "$" ^ p) s.params in
    let func =
      Filter.to_aggregate flock.filter
        ~head_columns:(Eval.head_columns (List.hd s.query))
    in
    (* One grouping pass yields both the survivors and the candidate
       count: [group_filter_report]'s candidate count is exactly
       [Relation.cardinal (Relation.project tab keys)], so the separate
       projection pass this step used to make is fused away. *)
    let survivors, groups =
      Aggregate.group_filter_report tab ~keys ~func
        ~threshold:flock.filter.threshold
    in
    Catalog.add work s.name survivors;
    survivors, Relation.cardinal tab, groups, Relation.cardinal survivors
  in
  let survivors, tab_rows, groups, survived =
    if not (Obs.enabled ()) then compute ()
    else
      (* The FILTER-step span: rows in, candidate groups, surviving rows,
         the a-priori pruning ratio (surviving fraction), and — when the
         cost model produced one — the estimated output cardinality next
         to the observed one. *)
      Obs.with_span "filter.step" ~attrs:[ "step", Obs.Str s.name ] (fun () ->
          let (_, tab_rows, groups, survived) as r = compute () in
          Obs.set_attr "rows_in" (Obs.Int tab_rows);
          Obs.set_attr "groups" (Obs.Int groups);
          Obs.set_attr "rows_out" (Obs.Int survived);
          Obs.set_attr "pruning_ratio"
            (Obs.Float
               (if groups = 0 then 1.
                else float_of_int survived /. float_of_int groups));
          (match est with
          | Some (e : Cost.step_estimate) ->
            Obs.set_attr "est_rows" (Obs.Float e.Cost.est_rows);
            Obs.set_attr "est_groups" (Obs.Float e.Cost.est_groups)
          | None -> ());
          r)
  in
  Log.debug (fun m ->
      m "step %s: %d rows -> %d groups -> %d survive" s.name tab_rows groups
        survived);
  ( survivors,
    {
      step_name = s.name;
      tabulated_rows = tab_rows;
      groups;
      survivors = survived;
      seconds = Obs.now () -. t0;
      reused_from = None;
    } )

(* Symmetric-step reuse (paper Ex. 3.1: "by symmetry, the set of $1's that
   survive ... is exactly the same as the set of $2's"): when a step's query
   equals an earlier step's query up to renaming its (sorted) parameters,
   register the earlier result under the new name instead of recomputing.
   The sorted-positional bijection matches the result relation's column
   order, so the aliased relation is exactly the step's output. *)
let find_symmetric_twin earlier (s : Plan.step) =
  List.find_opt
    (fun (e : Plan.step) ->
      List.length e.params = List.length s.params
      && List.length e.query = List.length s.query
      &&
      let mapping = List.combine e.params s.params in
      List.for_all2
        (fun er sr -> Ast.equal_rule (Ast.rename_params mapping er) sr)
        e.query s.query)
    earlier

let run_with_report ?(options = default_options) catalog (plan : Plan.t) =
  Obs.with_span "plan.run"
    ~attrs:[ "steps", Obs.Int (List.length plan.steps + 1) ]
  @@ fun () ->
  (* Confront the System-R estimates with reality: when profiling, cost
     each step up front so the spans carry estimated next to observed
     cardinalities.  Derived predicates the model has no statistics for
     (e.g. view outputs on a bare catalog) disable the estimates, never
     the run. *)
  let estimates =
    if not (Obs.enabled ()) then []
    else
      match Cost.plan_step_estimates (Cost.of_catalog catalog) plan with
      | ests -> ests
      | exception Failure _ -> []
  in
  let est_for (s : Plan.step) =
    List.find_opt
      (fun (e : Cost.step_estimate) -> String.equal e.Cost.step s.Plan.name)
      estimates
  in
  let work = Catalog.copy catalog in
  let cache = Hashtbl.create 8 in
  let canon : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let _, reports =
    List.fold_left
      (fun ((executed, defined), acc) (s : Plan.step) ->
        match
          if options.symmetric_reuse then find_symmetric_twin executed s
          else None
        with
        | Some twin ->
          let t0 = Obs.now () in
          let rel = Catalog.find work twin.Plan.name in
          Catalog.add work s.name rel;
          Hashtbl.replace canon s.name
            (match Hashtbl.find_opt canon twin.Plan.name with
            | Some c -> c
            | None -> twin.Plan.name);
          if Obs.enabled () then
            Obs.with_span "filter.step"
              ~attrs:
                [
                  "step", Obs.Str s.name;
                  "reused_from", Obs.Str twin.Plan.name;
                  "rows_out", Obs.Int (Relation.cardinal rel);
                ]
              (fun () -> ());
          let report =
            {
              step_name = s.name ^ " (= " ^ twin.Plan.name ^ " by symmetry)";
              tabulated_rows = 0;
              groups = Relation.cardinal rel;
              survivors = Relation.cardinal rel;
              seconds = Obs.now () -. t0;
              reused_from = Some twin.Plan.name;
            }
          in
          (s :: executed, s.name :: defined), report :: acc
        | None ->
          let _, report =
            run_step work ~options ~step_names:defined ~canon ~cache
              ~est:(est_for s) plan.flock s
          in
          (s :: executed, s.name :: defined), report :: acc)
      (([], []), [])
      plan.steps
  in
  let step_names = List.map (fun (s : Plan.step) -> s.Plan.name) plan.steps in
  let result, final_report =
    run_step work ~options ~step_names ~canon ~cache ~est:(est_for plan.final)
      plan.flock plan.final
  in
  Obs.set_attr "rows_out" (Obs.Int (Relation.cardinal result));
  { result; steps = List.rev reports @ [ final_report ] }

let run ?options catalog plan = (run_with_report ?options catalog plan).result
