module Ast = Qf_datalog.Ast
module Eval = Qf_datalog.Eval
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Aggregate = Qf_relational.Aggregate
module Sip = Qf_relational.Sip

module Obs = Qf_obs.Obs

let log_src = Logs.Src.create "qf.plan" ~doc:"FILTER-step plan execution"

module Log = (val Logs.src_log log_src)

type step_report = {
  step_name : string;
  tabulated_rows : int;
  groups : int;
  survivors : int;
  seconds : float;
  reused_from : string option;
  memo_hit : bool;
  sip_pruned : int;
}

type report = {
  result : Qf_relational.Relation.t;
  steps : step_report list;
}

type options = {
  semijoin_reduction : bool;
  symmetric_reuse : bool;
  memoize : bool;
}

let default_options =
  { semijoin_reduction = true; symmetric_reuse = true; memoize = true }

(* Sideways information passing — the rewrite the paper's Sec. 1.3 measured:
   "first find those items that appeared in at least 20 baskets ... and then
   join the set of these items with the baskets relation before performing
   the query".  Two mechanisms:

   {ul
   {- For every {e unary} ok-subgoal [ok($p)] in a rule, each base subgoal
      with [$p] in some argument position is replaced by the materialized
      reduction of its relation against a {!Sip} reducer built over [ok]'s
      column — exact below {!Sip.exact_cutoff}, a Bloom filter above it.
      The reduction may over-approximate (Bloom false positives); that is
      sound because the [ok] subgoal itself stays in the body, so spurious
      survivors are eliminated by the actual join.  {!Cost.should_reduce}
      gates placement: when [ok] covers (almost) the whole column domain
      the reduction cannot prune and is skipped.}
   {- For every {e multi-parameter} ok-subgoal [ok($p, $q, ...)], a per
      column reducer is handed to the evaluator ([Eval.tabulate_query
      ~sip]), which consults it the moment a binding for that parameter is
      about to be created — pruning posting-list extensions before they
      enter the environment relation.}}

   The binding-passing evaluator prunes the first parameter it binds for
   free, but later extensions scan unreduced posting lists; materializing
   the reduction is what yields the multiplicative (per-parameter) savings.
   Reductions and reducers are memoized across rules and steps of one plan
   execution.  [pruned] accumulates rows removed by materialized
   reductions (the deterministic [base - reduced] difference, identical
   across layouts and pool sizes). *)
let reduce_rule work ~step_names ~canon ~cache ~sips ~pruned (r : Ast.rule) =
  let param_oks =
    List.filter_map
      (function
        | Ast.Pos { Ast.pred; args }
          when List.mem pred step_names
               && args <> []
               && List.for_all
                    (function Ast.Param _ -> true | _ -> false)
                    args ->
          Some
            ( pred,
              List.map
                (function Ast.Param p -> p | _ -> assert false)
                args )
        | _ -> None)
      r.body
  in
  if param_oks = [] then r, []
  else begin
    let canonical name =
      match Hashtbl.find_opt canon name with Some c -> c | None -> name
    in
    (* Reducer over the [rank]-th column of [ok_name]'s relation, shared
       across rules and steps.  Columns are addressed positionally: step
       outputs carry their own (sorted) parameter names, which differ from
       this step's parameters when the relation was registered by the
       symmetry or memo shortcut. *)
    let reducer ok_name rank =
      let key = Printf.sprintf "%s#%d" ok_name rank in
      match Hashtbl.find_opt sips key with
      | Some s -> s
      | None ->
        let rel = Catalog.find work ok_name in
        let col = List.nth (Schema.columns (Relation.schema rel)) rank in
        let s = Sip.of_column rel col in
        Hashtbl.replace sips key s;
        s
    in
    let unary_oks =
      List.filter_map
        (function ok, [ p ] -> Some (p, ok) | _ -> None)
        param_oks
    in
    let reduce_atom (a : Ast.atom) =
      if List.mem a.pred step_names then a
      else begin
        let pred = ref a.pred in
        List.iteri
          (fun i arg ->
            match arg with
            | Ast.Param p -> (
              match List.assoc_opt p unary_oks with
              | None -> ()
              | Some ok_name ->
                let canonical_ok = canonical ok_name in
                let reduced_name =
                  Printf.sprintf "%s~%d~%s" !pred i canonical_ok
                in
                if Hashtbl.mem cache reduced_name then pred := reduced_name
                else begin
                  let base = Catalog.find work !pred in
                  let ok = Catalog.find work canonical_ok in
                  let col =
                    List.nth (Schema.columns (Relation.schema base)) i
                  in
                  if
                    Cost.should_reduce work ~pred:!pred ~col
                      ~ok_cardinal:(Relation.cardinal ok)
                  then begin
                    let reduced =
                      Sip.filter base ~pos:i (reducer canonical_ok 0)
                    in
                    let removed =
                      Relation.cardinal base - Relation.cardinal reduced
                    in
                    pruned := !pruned + removed;
                    if Obs.enabled () then
                      Obs.count "sip.rows_pruned" removed;
                    Catalog.add work reduced_name reduced;
                    Hashtbl.replace cache reduced_name ();
                    pred := reduced_name
                  end
                end)
            | Ast.Var _ | Ast.Const _ -> ())
          a.args;
        { a with Ast.pred = !pred }
      end
    in
    let body =
      List.map
        (function
          | Ast.Pos a -> Ast.Pos (reduce_atom a)
          | (Ast.Neg _ | Ast.Cmp _) as lit -> lit)
        r.body
    in
    (* Evaluator-side reducers for multi-parameter ok steps (keyed by the
       parameters' binding keys).  The reducer for parameter [p] reads the
       column at [p]'s rank in the subgoal's {e sorted} parameter list —
       the positional bijection under which aliased step outputs are
       α-equivalent. *)
    let sip =
      List.fold_left
        (fun acc (ok_name, params) ->
          if List.length params < 2 then acc
          else begin
            let ok_name = canonical ok_name in
            let sorted = List.sort String.compare params in
            List.fold_left
              (fun acc p ->
                let key = "$" ^ p in
                if List.mem_assoc key acc then acc
                else
                  match List.find_index (String.equal p) sorted with
                  | Some rank -> (key, reducer ok_name rank) :: acc
                  | None -> acc)
              acc params
          end)
        [] param_oks
    in
    { r with Ast.body }, sip
  end

let run_step work ~options ~step_names ~canon ~cache ~sips ~est
    (flock : Flock.t) (s : Plan.step) =
  let t0 = Obs.now () in
  let pruned = ref 0 in
  let compute () =
    let query, sip =
      if options.semijoin_reduction then begin
        let reduced =
          List.map
            (reduce_rule work ~step_names ~canon ~cache ~sips ~pruned)
            s.query
        in
        ( List.map fst reduced,
          List.fold_left
            (fun acc (_, sip) ->
              List.fold_left
                (fun acc (k, r) ->
                  if List.mem_assoc k acc then acc else (k, r) :: acc)
                acc sip)
            [] reduced )
      end
      else s.query, []
    in
    let tab = Eval.tabulate_query ~sip work query in
    let keys = List.map (fun p -> "$" ^ p) s.params in
    let func =
      Filter.to_aggregate flock.filter
        ~head_columns:(Eval.head_columns (List.hd s.query))
    in
    (* One grouping pass yields both the survivors and the candidate
       count: [group_filter_report]'s candidate count is exactly
       [Relation.cardinal (Relation.project tab keys)], so the separate
       projection pass this step used to make is fused away. *)
    let survivors, groups =
      Aggregate.group_filter_report tab ~keys ~func
        ~threshold:flock.filter.threshold
    in
    Catalog.add work s.name survivors;
    survivors, Relation.cardinal tab, groups, Relation.cardinal survivors
  in
  let survivors, tab_rows, groups, survived =
    if not (Obs.enabled ()) then compute ()
    else
      (* The FILTER-step span: rows in, candidate groups, surviving rows,
         the a-priori pruning ratio (surviving fraction), rows removed by
         semijoin reducers, and — when the cost model produced one — the
         estimated output cardinality next to the observed one. *)
      Obs.with_span "filter.step" ~attrs:[ "step", Obs.Str s.name ] (fun () ->
          let (_, tab_rows, groups, survived) as r = compute () in
          Obs.set_attr "rows_in" (Obs.Int tab_rows);
          Obs.set_attr "groups" (Obs.Int groups);
          Obs.set_attr "rows_out" (Obs.Int survived);
          Obs.set_attr "pruning_ratio"
            (Obs.Float
               (if groups = 0 then 1.
                else float_of_int survived /. float_of_int groups));
          if options.semijoin_reduction then
            Obs.set_attr "sip_pruned" (Obs.Int !pruned);
          (match est with
          | Some (e : Cost.step_estimate) ->
            Obs.set_attr "est_rows" (Obs.Float e.Cost.est_rows);
            Obs.set_attr "est_groups" (Obs.Float e.Cost.est_groups)
          | None -> ());
          r)
  in
  Log.debug (fun m ->
      m "step %s: %d rows -> %d groups -> %d survive (sip pruned %d)" s.name
        tab_rows groups survived !pruned);
  ( survivors,
    {
      step_name = s.name;
      tabulated_rows = tab_rows;
      groups;
      survivors = survived;
      seconds = Obs.now () -. t0;
      reused_from = None;
      memo_hit = false;
      sip_pruned = !pruned;
    } )

(* Symmetric-step reuse (paper Ex. 3.1: "by symmetry, the set of $1's that
   survive ... is exactly the same as the set of $2's"): when a step's query
   equals an earlier step's query up to renaming its (sorted) parameters,
   register the earlier result under the new name instead of recomputing.
   The sorted-positional bijection matches the result relation's column
   order, so the aliased relation is exactly the step's output. *)
let find_symmetric_twin earlier (s : Plan.step) =
  List.find_opt
    (fun (e : Plan.step) ->
      List.length e.params = List.length s.params
      && List.length e.query = List.length s.query
      &&
      let mapping = List.combine e.params s.params in
      List.for_all2
        (fun er sr -> Ast.equal_rule (Ast.rename_params mapping er) sr)
        e.query s.query)
    earlier

let run_with_report ?(options = default_options) catalog (plan : Plan.t) =
  Obs.with_span "plan.run"
    ~attrs:[ "steps", Obs.Int (List.length plan.steps + 1) ]
  @@ fun () ->
  (* Confront the System-R estimates with reality: when profiling, cost
     each step up front so the spans carry estimated next to observed
     cardinalities.  Derived predicates the model has no statistics for
     (e.g. view outputs on a bare catalog) disable the estimates, never
     the run. *)
  let estimates =
    if not (Obs.enabled ()) then []
    else
      match Cost.plan_step_estimates (Cost.of_catalog catalog) plan with
      | ests -> ests
      | exception Failure _ -> []
  in
  let est_for (s : Plan.step) =
    List.find_opt
      (fun (e : Cost.step_estimate) -> String.equal e.Cost.step s.Plan.name)
      estimates
  in
  let work = Catalog.copy catalog in
  let cache = Hashtbl.create 8 in
  let sips : (string, Sip.t) Hashtbl.t = Hashtbl.create 8 in
  let canon : (string, string) Hashtbl.t = Hashtbl.create 8 in
  (* One step, three shortcuts in increasing cost: alias a symmetric twin
     computed earlier in this plan; fetch an α-equivalent subplan from the
     catalog's cross-level memo (possibly written by a {e previous} plan —
     the k-1 levelwise pass, typically); or compute, and publish into the
     memo.  A memo hit registers the {e stored relation object}, so its
     (id, version) pair flows into the signatures of this plan's later
     steps and an entire plan prefix can cascade into hits. *)
  let exec_step ~executed ~defined (s : Plan.step) =
    (* Step boundaries are the plan executor's cancellation checkpoints:
       a governed deadline interrupts a plan between steps. *)
    Qf_governor.Governor.check ();
    match
      if options.symmetric_reuse then find_symmetric_twin executed s
      else None
    with
    | Some twin ->
      let t0 = Obs.now () in
      let rel = Catalog.find work twin.Plan.name in
      Catalog.add work s.name rel;
      Hashtbl.replace canon s.name
        (match Hashtbl.find_opt canon twin.Plan.name with
        | Some c -> c
        | None -> twin.Plan.name);
      if Obs.enabled () then
        Obs.with_span "filter.step"
          ~attrs:
            [
              "step", Obs.Str s.name;
              "reused_from", Obs.Str twin.Plan.name;
              "rows_out", Obs.Int (Relation.cardinal rel);
            ]
          (fun () -> ());
      ( rel,
        {
          step_name = s.name ^ " (= " ^ twin.Plan.name ^ " by symmetry)";
          tabulated_rows = 0;
          groups = Relation.cardinal rel;
          survivors = Relation.cardinal rel;
          seconds = Obs.now () -. t0;
          reused_from = Some twin.Plan.name;
          memo_hit = false;
          sip_pruned = 0;
        } )
    | None -> (
      let memo_key =
        if options.memoize && Catalog.memo_enabled work then
          Stepsig.of_step ~work ~filter:plan.flock.filter s
        else None
      in
      match Option.bind memo_key (Catalog.memo_find work) with
      | Some rel ->
        let t0 = Obs.now () in
        Catalog.add work s.name rel;
        if Obs.enabled () then
          Obs.with_span "filter.step"
            ~attrs:
              [
                "step", Obs.Str s.name;
                "memo", Obs.Str "hit";
                "rows_out", Obs.Int (Relation.cardinal rel);
              ]
            (fun () -> ());
        ( rel,
          {
            step_name = s.name ^ " (memo)";
            tabulated_rows = 0;
            groups = Relation.cardinal rel;
            survivors = Relation.cardinal rel;
            seconds = Obs.now () -. t0;
            reused_from = None;
            memo_hit = true;
            sip_pruned = 0;
          } )
      | None ->
        let rel, report =
          run_step work ~options ~step_names:defined ~canon ~cache ~sips
            ~est:(est_for s) plan.flock s
        in
        (match memo_key with
        | Some key -> Catalog.memo_add work key rel
        | None -> ());
        rel, report)
  in
  let _, reports =
    List.fold_left
      (fun ((executed, defined), acc) (s : Plan.step) ->
        let _, report = exec_step ~executed ~defined s in
        (s :: executed, s.name :: defined), report :: acc)
      (([], []), [])
      plan.steps
  in
  let step_names = List.map (fun (s : Plan.step) -> s.Plan.name) plan.steps in
  let result, final_report =
    exec_step ~executed:[] ~defined:step_names plan.final
  in
  Obs.set_attr "rows_out" (Obs.Int (Relation.cardinal result));
  { result; steps = List.rev reports @ [ final_report ] }

let run ?options catalog plan = (run_with_report ?options catalog plan).result
