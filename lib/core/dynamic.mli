(** Dynamic selection of filter steps (paper Sec. 4.4).

    A join order is fixed up front (the evaluator's greedy order, or a
    caller-supplied one); whether to interpose a FILTER step after each join
    is decided {e at execution time} from the sizes of the intermediate
    result, not estimated in advance:

    - if the current parameter set [S] has not been filtered before, filter
      when the average number of tuples per [S]-assignment is below
      [ratio_factor * threshold] (few tuples per assignment means many
      assignments are about to die);
    - if [S] was seen before, filter when the average has dropped below
      [improvement_factor] times the best previously observed average
      (something substantial changed since the last filtering opportunity).

    A filter step is only possible once the head variables are bound (the
    prefix must be a safe subquery).

    {b Unions} (Sec. 3.4) need care: an assignment can fail one rule's
    prefix count and still reach the threshold through the other rules, so
    pruning a branch from its own counts alone is unsound.  The executor
    therefore precomputes, for every rule [j] and parameter [p], the
    per-value answer-count bound of [j]'s minimal safe subquery for [p];
    while evaluating rule [i], assignment [a] is pruned only when

    {v prefix_count_i(a) + sum over j<>i of B_j(a) < threshold v}

    with [B_j(a) = min over p of bound_{j,p}(a_p)] — then the union total
    provably fails the filter ([|A ∪ B| <= |A| + |B|]), so dropping [a]
    from branch [i] cannot change the result.  Union support covers COUNT
    filters; SUM/MAX unions return [Error] (their per-rule bounds would
    need weighted subquery aggregates). *)

type config = {
  ratio_factor : float;  (** default 1.0 *)
  improvement_factor : float;  (** default 0.5 *)
  sip_reducers : bool;
      (** default [true]: for single-rule COUNT filters, prime the walk
          with a-priori {!Qf_relational.Sip} reducers — one per parameter,
          keeping the values whose minimal-safe-subquery count reaches the
          threshold — so the evaluator skips doomed bindings instead of
          creating and later filtering them.  Sound by the levelwise
          a-priori argument; disabled automatically for unions and
          non-COUNT filters.  Does not change the trace shape (one
          decision per literal) or the answers. *)
}

val default_config : config

type decision = {
  after : string;  (** the literal just applied (paper syntax) *)
  param_set : string list;  (** parameters bound at this point *)
  rows : int;  (** environments after the literal *)
  assignments : int;  (** distinct parameter assignments among them *)
  ratio : float;  (** rows / assignments *)
  filtered : bool;
  survivors : int option;  (** assignments surviving, when filtered *)
}

type result = {
  answers : Qf_relational.Relation.t;  (** the flock's result *)
  trace : decision list;  (** one decision per body literal, in join order *)
}

(** Raises nothing; returns [Error] for unions, non-monotone filters, and
    evaluation failures. *)
val run :
  ?config:config ->
  Qf_relational.Catalog.t ->
  Flock.t ->
  (result, string) Stdlib.result
