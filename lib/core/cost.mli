(** Cost model for flock query plans (paper Sec. 4.3: "the general theory of
    cost-based optimization applies here").

    Estimates follow System-R conventions: the work of a binding-passing
    join is the sum of intermediate result sizes; per-subgoal match counts
    divide the relation's cardinality by the distinct counts of the bound
    columns (independence assumption).  FILTER-step survivor counts use a
    deliberately simple linear heuristic — if the expected number of answer
    tuples per parameter assignment [avg] is below the threshold [s], a
    fraction [avg/s] of assignments is assumed to survive, else no pruning
    is assumed.  The model is only used to rank plans; the dynamic executor
    (Sec. 4.4) is the paper's own answer to the model's imprecision. *)

(** Virtual statistics for one predicate. *)
type vstats = {
  rows : float;
  distinct : float array;  (** per column position *)
  frequencies : int array array;
      (** per column, per-value tuple counts descending; empty arrays for
          derived relations whose distribution is unknown *)
}

(** Statistics environment: predicate name -> stats.  Plan costing extends
    it with estimates for step outputs. *)
type env

(** Statistics for every relation in the catalog. *)
val of_catalog : Qf_relational.Catalog.t -> env

(** Add (or override) a predicate's stats, e.g. an auxiliary step output. *)
val extend : env -> string -> vstats -> env

val lookup : env -> string -> vstats option

type estimate = {
  work : float;  (** total intermediate tuples touched *)
  rows : float;  (** tabulated result size (params x head bindings) *)
}

(** Estimate tabulating one rule (greedy join order, mirroring the
    evaluator's).  Raises [Failure] on a predicate missing from [env]. *)
val estimate_rule : env -> Qf_datalog.Ast.rule -> estimate

(** Union: work adds up, rows add up (upper bound, ignores overlap). *)
val estimate_query : env -> Qf_datalog.Ast.query -> estimate

(** Estimated number of distinct assignments of the given parameters
    (product of the parameters' smallest positive-occurrence column distinct
    counts across the rules of the query). *)
val estimate_groups : env -> Qf_datalog.Ast.query -> string list -> float

(** Reducer-placement decision for the executor's sideways-information
    passing: [should_reduce catalog ~pred ~col ~ok_cardinal] is [true]
    when semijoin-reducing base relation [pred] on column [col] against
    an [ok] step of [ok_cardinal] surviving values is expected to shrink
    it — i.e. when the ok set excludes part of the column's distinct
    domain (read from the catalog's version-coherent column profiles).
    At [ok_cardinal >= distinct(col)] the reduction cannot remove a row
    and is skipped.  Unknown statistics default to reducing (sound either
    way; this is purely a cost choice). *)
val should_reduce :
  Qf_relational.Catalog.t ->
  pred:string ->
  col:string ->
  ok_cardinal:int ->
  bool

(** [estimate_step env flock step] estimates executing one FILTER step:
    returns the estimated work and the {!vstats} of the step's output
    relation (the surviving parameter assignments).  When the step is a
    single-rule, single-positive-subgoal COUNT filter over one parameter,
    the survivor count is computed {e exactly} from the column's frequency
    distribution (Ex. 4.4's statistics gathering); otherwise the linear
    heuristic applies. *)
val estimate_step : env -> threshold:float -> Plan.step -> float * vstats

(** Total estimated work of a plan (auxiliary steps plus final step, with
    each step's output statistics fed into later estimates).  [clamps]
    maps step names to certified [(groups, rows)] upper bounds (from
    [Qf_analysis.Absint.clamps_of_plan]); each step's estimated output is
    clamped to [min(estimate, bound)] before feeding later steps. *)
val estimate_plan :
  ?clamps:(string * (float * float)) list -> env -> Plan.t -> float

(** {1 Per-step estimates for the profiler} *)

type step_estimate = {
  step : string;  (** step name, matching {!Plan.step.name} *)
  est_work : float;  (** estimated intermediate tuples touched *)
  est_groups : float;  (** estimated candidate parameter assignments *)
  est_rows : float;  (** estimated surviving assignments (output rows) *)
}

(** One estimate per step, auxiliary steps first and the final step last,
    with each step's estimated output statistics feeding later steps —
    the estimated half of [flockc explain --profile]'s
    estimated-vs-observed report.  [clamps] as in {!estimate_plan}:
    certified bounds cap [est_groups]/[est_rows] ([min(estimate, bound)])
    and the output statistics fed forward.  Raises [Failure] when [env]
    lacks a referenced predicate. *)
val plan_step_estimates :
  ?clamps:(string * (float * float)) list ->
  env ->
  Plan.t ->
  step_estimate list
