(** Rendering plans in the paper's FILTER-program notation (cf. Fig. 5):

    {v
    ok_s($s) := FILTER(($s),
        answer(P) :-
            exhibits(P,$s),
        COUNT(answer(star)) >= 20
    );
    v}

    where [star] stands for the asterisk the real output prints. *)

val pp_step : filter:Filter.t -> head:string -> Format.formatter -> Plan.step -> unit
val pp_plan : Format.formatter -> Plan.t -> unit
val plan_to_string : Plan.t -> string

(** One-line summary: step names with their parameter sets. *)
val plan_summary : Plan.t -> string

(** {1 Profiled execution}

    [flockc explain --profile]'s backend: run the plan with observability
    enabled and pair each step's observed cardinalities and wall-clock time
    with the cost model's estimates. *)

type step_profile = {
  name : string;
  params : string list;
  rows_in : int;  (** tuples tabulated before grouping *)
  groups : int;  (** candidate parameter assignments *)
  rows_out : int;  (** assignments surviving the filter *)
  seconds : float;
  est_rows : float option;  (** cost model's predicted [rows_out], clamped *)
  est_groups : float option;  (** cost model's predicted [groups], clamped *)
  bound_rows : float option;  (** certified upper bound on [rows_out] *)
  bound_groups : float option;  (** certified upper bound on [groups] *)
  reused_from : string option;  (** symmetric-step alias, not recomputed *)
  memo_hit : bool;  (** fetched from the cross-level subplan memo *)
  sip_pruned : int;  (** base rows removed by materialized semijoin reducers *)
}

type profile = {
  summary : string;  (** {!plan_summary} of the profiled plan *)
  steps : step_profile list;  (** execution order, final step last *)
  result_rows : int;
  total_seconds : float;
  counters : (string * int) list;
      (** sorted by name; machine-dependent ["pool."] metrics excluded *)
  governor : Qf_governor.Governor.stats option;
      (** resource accounting of the governed run; [None] when the run
          was ungoverned (the profile then renders exactly as before) *)
}

(** Run [plan] with {!Qf_obs.Obs} enabled (restoring the previous enabled
    state afterwards) and collect per-step observed-vs-estimated numbers.
    Estimates are omitted when the cost model lacks statistics for a
    referenced predicate.  [clamps] maps step names to certified
    [(groups, rows)] bounds (from [Qf_analysis.Absint.clamps_of_plan]):
    estimates are clamped to [min(estimate, bound)] and the bounds are
    reported alongside them; without [clamps] the profile is identical to
    the unclamped format (no bound columns/fields).  [governor] installs
    the given governor around the run ({!Qf_governor.Governor.with_ctx})
    and reports its {!Qf_governor.Governor.stats} — peak bytes, spill
    partitions/bytes/rows — in the profile; resource faults
    ([Over_budget], [Deadline_exceeded]) propagate to the caller. *)
val profile :
  ?options:Plan_exec.options ->
  ?clamps:(string * (float * float)) list ->
  ?governor:Qf_governor.Governor.t ->
  Qf_relational.Catalog.t ->
  Plan.t ->
  profile

(** Deterministic renderers.  With [redact_timings] every duration prints
    as ["-"] (text) or [null] (JSON), making the output byte-stable for
    golden tests. *)

val profile_text : ?redact_timings:bool -> profile -> string
val profile_json : ?redact_timings:bool -> profile -> string
