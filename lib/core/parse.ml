module Ast = Qf_datalog.Ast
module Lexer = Qf_datalog.Lexer
module Parser = Qf_datalog.Parser

let parse_agg st head_pred =
  let agg_name =
    match Parser.next st with
    | Lexer.Uident name -> name
    | tok ->
      raise
        (Parser.Error_at
           ( Format.asprintf "expected an aggregate name, found %a"
               Lexer.pp_token tok,
             Parser.last_span st ))
  in
  Parser.expect st Lexer.Lparen;
  (match Parser.next st with
  | Lexer.Lident p when String.equal p head_pred -> ()
  | Lexer.Lident p ->
    raise
      (Parser.Error_at
         ( Printf.sprintf "filter aggregates %s but the query head is %s" p
             head_pred,
           Parser.last_span st ))
  | tok ->
    raise
      (Parser.Error_at
         ( Format.asprintf "expected the head predicate name, found %a"
             Lexer.pp_token tok,
           Parser.last_span st )));
  let column =
    match Parser.next st with
    | Lexer.Dot -> (
      match Parser.next st with
      | Lexer.Uident c | Lexer.Lident c -> Some c
      | tok ->
        raise
          (Parser.Error_at
             ( Format.asprintf "expected a column name, found %a"
                 Lexer.pp_token tok,
               Parser.last_span st )))
    | Lexer.Lparen ->
      Parser.expect st Lexer.Star;
      Parser.expect st Lexer.Rparen;
      None
    | tok ->
      raise
        (Parser.Error_at
           ( Format.asprintf "expected '.' or '(*)', found %a" Lexer.pp_token
               tok,
             Parser.last_span st ))
  in
  Parser.expect st Lexer.Rparen;
  Parser.expect st (Lexer.Cmp Qf_datalog.Ast.Ge);
  let threshold =
    match Parser.next st with
    | Lexer.Int i -> float_of_int i
    | Lexer.Real f -> f
    | tok ->
      raise
        (Parser.Error_at
           ( Format.asprintf "expected a numeric threshold, found %a"
               Lexer.pp_token tok,
             Parser.last_span st ))
  in
  let agg =
    match agg_name, column with
    | "COUNT", _ -> Filter.Count
    | "SUM", Some c -> Filter.Sum c
    | "MIN", Some c -> Filter.Min c
    | "MAX", Some c -> Filter.Max c
    | ("SUM" | "MIN" | "MAX"), None ->
      raise
        (Parser.Error_at
           (agg_name ^ " requires a column, not (*)", Parser.last_span st))
    | other, _ ->
      raise
        (Parser.Error_at
           ( Printf.sprintf "unknown aggregate %s" other,
             Parser.last_span st ))
  in
  { Filter.agg; threshold }

type program = {
  views : Qf_datalog.Ast.rule list;
  flock : Flock.t;
}

(** The purely syntactic product of parsing a program, spans included: what
    the static analyzer ({!Qf_analysis.Lint}) consumes.  No semantic checks
    (safety, well-formedness, filter-column existence) have run yet. *)
type located_program = {
  l_views : Ast.located_rule list;
  l_query : Ast.located_rule list;
  l_filter : Filter.t;
  l_filter_span : Ast.span;
}

let parse_program_tokens st =
  let views =
    match Parser.peek st with
    | Lexer.Views_kw ->
      ignore (Parser.next st);
      Parser.rules_located st
    | _ -> []
  in
  Parser.expect st Lexer.Query_kw;
  let rules = Parser.rules_located st in
  Parser.expect st Lexer.Filter_kw;
  let filter_start = Parser.peek_span st in
  let head_pred =
    (List.hd rules).Ast.lr_rule.Qf_datalog.Ast.head.pred
  in
  let filter = parse_agg st head_pred in
  let filter_span = Ast.join_spans filter_start (Parser.last_span st) in
  (match Parser.peek st with
  | Lexer.Eof -> ()
  | tok ->
    raise
      (Parser.Error_at
         ( Format.asprintf "trailing input after filter: %a" Lexer.pp_token tok,
           Parser.peek_span st )));
  { l_views = views; l_query = rules; l_filter = filter;
    l_filter_span = filter_span }

let program_located text =
  match parse_program_tokens (Parser.of_string text) with
  | lp -> Ok lp
  | exception Parser.Error msg -> Error (msg, Ast.no_span)
  | exception Parser.Error_at (msg, span) -> Error (msg, span)

let check_view_rule (r : Qf_datalog.Ast.rule) =
  let ( let* ) = Result.bind in
  let* () = Qf_datalog.Safety.check r in
  if Qf_datalog.Ast.rule_params r = [] then Ok ()
  else
    Error
      (Printf.sprintf "view %s: views may not mention parameters"
         r.head.pred)

let program text =
  match program_located text with
  | Error (msg, _) -> Error msg
  | Ok lp ->
    let views = List.map (fun lr -> lr.Ast.lr_rule) lp.l_views in
    let rules = List.map (fun lr -> lr.Ast.lr_rule) lp.l_query in
    Result.bind
      (List.fold_left
         (fun acc r -> Result.bind acc (fun () -> check_view_rule r))
         (Ok ()) views)
      (fun () ->
        Result.map
          (fun flock -> { views; flock })
          (Flock.make rules lp.l_filter))

let flock text =
  Result.bind (program text) (fun p ->
      if p.views = [] then Ok p.flock
      else Error "program has a VIEWS: section; use Parse.program")

let flock_exn text =
  match flock text with
  | Ok f -> f
  | Error msg -> invalid_arg ("Parse.flock: " ^ msg)

let program_exn text =
  match program text with
  | Ok p -> p
  | Error msg -> invalid_arg ("Parse.program: " ^ msg)
