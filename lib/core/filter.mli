(** Filter conditions of query flocks.

    The paper's main results concern {e support-type} filters: a lower bound
    on an aggregate of the query's answer.  We support the four aggregates
    of the paper's "monotone filter conditions" discussion (Sec. 5):
    [COUNT] of answer tuples and [SUM]/[MIN]/[MAX] of a head column.  The
    comparison is always [>=] (a lower bound). *)

type agg =
  | Count  (** number of distinct answer tuples *)
  | Sum of string  (** sum of a head column over distinct answer tuples *)
  | Min of string
  | Max of string

type t = { agg : agg; threshold : float }

val count_at_least : int -> t
val sum_at_least : string -> float -> t

(** A filter is monotone when [true] on a set implies [true] on every
    superset: [COUNT >= s], [MAX >= s], and [SUM >= s] {e assuming
    non-negative summands} are monotone; [MIN >= s] is not.  Only monotone
    filters admit a-priori filter steps (the upper-bound argument needs
    monotonicity). *)
val is_monotone : t -> bool

(** The relational aggregate evaluating this filter over a tabulated
    relation, given the head column names of the query.  Raises [Failure]
    if the aggregate references a column that is not a head column. *)
val to_aggregate : t -> head_columns:string list -> Qf_relational.Aggregate.func

(** [holds t value] — does an aggregate outcome pass the filter? *)
val holds : t -> Qf_relational.Value.t -> bool

(** Print in the paper's notation, e.g. [COUNT(answer.P) >= 20]; [head]
    names the answer predicate, [column] the aggregated head column (ignored
    for [Count], which prints the head predicate applied to a star). *)
val pp : head:string -> Format.formatter -> t -> unit

val equal : t -> t -> bool

(** Canonical rendering for memo signatures: the aggregate with its
    column replaced by the column's {e position} in [head_columns] (so
    α-equivalent steps with renamed head variables agree), plus the
    threshold.  [None] when the aggregated column is not a head column. *)
val signature : t -> head_columns:string list -> string option
