module Ast = Qf_datalog.Ast
module Eval = Qf_datalog.Eval
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Value = Qf_relational.Value

exception Unresolvable

let of_step ~work ~filter (s : Plan.step) =
  try
    let param_rank p =
      match List.find_index (String.equal p) s.params with
      | Some i -> i
      | None -> raise Unresolvable
    in
    (* Predicates rename to their first-occurrence rank; the relations
       they resolve to are recorded as (id, version) pairs in the same
       order, so the rank doubles as an index into the dependency list. *)
    let pred_ranks : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let deps = ref [] in
    let pred_rank pred =
      match Hashtbl.find_opt pred_ranks pred with
      | Some i -> i
      | None -> (
        match Catalog.find_opt work pred with
        | None -> raise Unresolvable
        | Some rel ->
          let i = Hashtbl.length pred_ranks in
          Hashtbl.replace pred_ranks pred i;
          deps := (Relation.id rel, Relation.version rel) :: !deps;
          i)
    in
    let buf = Buffer.create 256 in
    let render_rule (r : Ast.rule) =
      let var_ranks : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let var_rank v =
        match Hashtbl.find_opt var_ranks v with
        | Some i -> i
        | None ->
          let i = Hashtbl.length var_ranks in
          Hashtbl.replace var_ranks v i;
          i
      in
      let term = function
        | Ast.Var v -> Printf.sprintf "v%d" (var_rank v)
        | Ast.Param p -> Printf.sprintf "p%d" (param_rank p)
        | Ast.Const c -> "c:" ^ Value.to_string c
      in
      let atom (a : Ast.atom) =
        Printf.sprintf "r%d(%s)" (pred_rank a.pred)
          (String.concat "," (List.map term a.args))
      in
      let literal = function
        | Ast.Pos a -> atom a
        | Ast.Neg a -> "!" ^ atom a
        | Ast.Cmp (l, c, r) ->
          Printf.sprintf "%s%s%s" (term l) (Ast.comparison_to_string c)
            (term r)
      in
      (* The head predicate is the step's own (fresh) name, never a
         stored relation — only its argument pattern is semantic. *)
      Buffer.add_string buf "H(";
      Buffer.add_string buf (String.concat "," (List.map term r.head.args));
      Buffer.add_string buf ")<-";
      Buffer.add_string buf (String.concat "," (List.map literal r.body))
    in
    (match s.query with [] -> raise Unresolvable | _ -> ());
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char buf ';';
        render_rule r)
      s.query;
    let head_columns =
      match Eval.head_columns (List.hd s.query) with
      | cols -> cols
      | exception Eval.Error _ -> raise Unresolvable
    in
    let fsig =
      match Filter.signature filter ~head_columns with
      | Some f -> f
      | None -> raise Unresolvable
    in
    let deps_str =
      String.concat ","
        (List.rev_map (fun (id, v) -> Printf.sprintf "%d.%d" id v) !deps)
    in
    Some (Printf.sprintf "%s|%s|[%s]" (Buffer.contents buf) fsig deps_str)
  with Unresolvable -> None
