(** FILTER-step query plans (paper Sec. 4.1–4.2).

    A plan is a sequence of steps
    [R(P) := FILTER(P, Q, C)], each defining an auxiliary relation [R] over
    a set of parameters [P]; the last step defines the flock's result.  The
    paper's {e Rule for Generating Query Plans} constrains each step:

    + it uses the same filter condition [C] as the flock;
    + it defines a uniquely named relation;
    + its query is derived from the flock's query by adding zero or more
      subgoals that are heads of earlier steps and deleting zero or more
      original subgoals, keeping the query safe;
    + the final step deletes no original subgoal.

    For a union query, a step derives per-rule: rule [i] of the step's query
    is derived from rule [i] of the flock's query (Sec. 3.4).  A step whose
    query drops a rule of the union entirely is illegal (it would not be an
    upper bound).

    One extension beyond the paper's literal-copy rule: an [ok]-subgoal may
    carry a {e renaming} of its step's parameters when the step's query
    under that renaming is itself derivable from the flock — the parameter
    symmetry that classic a-priori exploits (the paper's footnote 3).  This
    is what lets the levelwise k-itemset plan prune by {e all} (k-1)-subsets
    rather than only the lexicographic prefix. *)

type step = {
  name : string;  (** relation the step defines, e.g. ["ok_s"] *)
  params : string list;  (** sorted parameters of the step's query *)
  query : Qf_datalog.Ast.query;
      (** per-rule: retained original subgoals plus [ok]-subgoals *)
}

type t = private {
  flock : Flock.t;
  steps : step list;  (** earlier auxiliary steps, in execution order *)
  final : step;  (** full query plus [ok]-subgoals; defines the result *)
}

(** Construct a step; [params] is derived from the query. *)
val step : name:string -> Qf_datalog.Ast.query -> step

(** Validate the plan-generation rule and package a plan.  Plans with at
    least one auxiliary step also require a monotone filter (no upper-bound
    argument exists otherwise); the trivial zero-step plan is sound for any
    filter. *)
val make : Flock.t -> steps:step list -> final:step -> (t, string) result

val make_exn : Flock.t -> steps:step list -> final:step -> t

(** The trivial plan: no auxiliary steps; the final step is the flock's own
    query.  Always legal; equivalent to {!Direct.run}. *)
val trivial : Flock.t -> t

(** {1 Plan auditing}

    Installed auditors are consulted, in installation order, at the end of
    every successful {!make}: if one rejects, [make] returns its error
    prefixed with the auditor's name (and [make_exn] raises).  The
    intended auditors are [Qf_analysis.Plan_check.verify] (an independent
    re-implementation of the Sec. 4.2 legality rule) and
    [Qf_analysis.Validate.verify] (a containment-based translation
    validator); installing them turns every plan construction into a
    cross-checked one, like a sanitizer for plan generation. *)

(** Install (or replace) the auditor registered under [name]. *)
val add_auditor : name:string -> (t -> (unit, string) result) -> unit

(** Remove the auditor registered under [name] (no-op when absent). *)
val remove_auditor : name:string -> unit

(** [add_auditor ~name:"adhoc"] — kept for single-auditor callers. *)
val set_auditor : (t -> (unit, string) result) -> unit

(** Remove every installed auditor. *)
val clear_auditor : unit -> unit

(** All steps in execution order (auxiliary then final). *)
val all_steps : t -> step list

(** Number of auxiliary filter steps. *)
val filter_step_count : t -> int
