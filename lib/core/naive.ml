module Ast = Qf_datalog.Ast
module Eval = Qf_datalog.Eval
module Value = Qf_relational.Value
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Tuple = Qf_relational.Tuple
module Catalog = Qf_relational.Catalog
module Aggregate = Qf_relational.Aggregate

module Value_set = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

(* Values a parameter can take in one rule: intersection over its positive
   occurrences of the stored column's values. *)
let rule_domain catalog (r : Ast.rule) param =
  let occurrence_values =
    List.concat_map
      (fun (a : Ast.atom) ->
        let rel = Catalog.find catalog a.pred in
        let columns = Schema.columns (Relation.schema rel) in
        List.concat
          (List.mapi
             (fun i arg ->
               match arg with
               | Ast.Param p when String.equal p param ->
                 [ Value_set.of_list
                     (Relation.column_values rel (List.nth columns i)) ]
               | _ -> [])
             a.args))
      (Ast.positive_atoms r)
  in
  match occurrence_values with
  | [] -> Value_set.empty
  | first :: rest -> List.fold_left Value_set.inter first rest

let domains catalog (flock : Flock.t) =
  List.map
    (fun param ->
      let dom =
        List.fold_left
          (fun acc r -> Value_set.union acc (rule_domain catalog r param))
          Value_set.empty flock.query
      in
      param, Value_set.elements dom)
    (Flock.params flock)

let run ?(max_assignments = 2_000_000) catalog (flock : Flock.t) =
  Qf_obs.Obs.with_span "naive.run" @@ fun () ->
  let doms = domains catalog flock in
  let space =
    List.fold_left (fun acc (_, d) -> acc * max 1 (List.length d)) 1 doms
  in
  Qf_obs.Obs.set_attr "assignments" (Qf_obs.Obs.Int space);
  if space > max_assignments then
    invalid_arg
      (Printf.sprintf "Naive.run: %d assignments exceed the limit of %d" space
         max_assignments);
  let result = Relation.create (Schema.of_list (Flock.result_columns flock)) in
  let head_columns = Flock.head_columns flock in
  let func = Filter.to_aggregate flock.filter ~head_columns in
  let rec assign acc = function
    | [] ->
      Qf_governor.Governor.check ();
      let bindings = List.rev acc in
      let answer =
        List.fold_left
          (fun acc_rel rule ->
            let part = Eval.answers catalog ~bindings rule in
            match acc_rel with
            | None -> Some part
            | Some rel ->
              Relation.iter (Relation.add rel) part;
              Some rel)
          None flock.query
      in
      let answer = Option.get answer in
      if
        (not (Relation.is_empty answer))
        && Filter.holds flock.filter
             (Aggregate.eval func (Relation.schema answer)
                (Relation.to_list answer))
      then
        Relation.add result
          (Tuple.of_list (List.map (fun (_, v) -> v) bindings))
    | (param, dom) :: rest ->
      List.iter (fun v -> assign (("$" ^ param, v) :: acc) rest) dom
  in
  assign [] doms;
  Qf_obs.Obs.set_attr "rows_out" (Qf_obs.Obs.Int (Relation.cardinal result));
  result
