(** Execution of FILTER-step plans.

    Steps run in order against a working copy of the catalog: each step
    tabulates its query (parameters as grouping variables), applies the
    flock's filter per parameter group, and registers the surviving
    parameter tuples as a new stored relation, which later steps join as an
    ordinary subgoal.  The final step's output is the flock's result.

    Because every auxiliary step's query upper-bounds the flock's query
    (subset of subgoals, Sec. 3) and the filter is monotone, the plan's
    result equals {!Direct.run} — tested as a core invariant. *)

type step_report = {
  step_name : string;
  tabulated_rows : int;  (** rows produced before grouping *)
  groups : int;  (** distinct parameter assignments seen *)
  survivors : int;  (** assignments passing the filter *)
  seconds : float;  (** wall-clock time of the step *)
  reused_from : string option;
      (** [Some earlier] when the step was aliased to an earlier step's
          result by symmetry instead of being computed *)
  memo_hit : bool;
      (** the step's result came from the catalog's cross-level subplan
          memo (an α-equivalent step computed by this or a previous plan
          run against the same base relations) *)
  sip_pruned : int;
      (** rows removed from base relations by materialized semijoin
          reducers while computing this step (deterministic: identical
          across layouts and domain-pool sizes) *)
}

type report = {
  result : Qf_relational.Relation.t;
  steps : step_report list;  (** in execution order, final step last *)
}

(** Executor optimizations, exposed so the benchmarks can ablate them.

    - [semijoin_reduction] pre-filters base relations against {!Sip}
      reducers (exact code sets or Bloom filters) built over the unary
      [ok] relations restricting their parameters — the rewrite behind
      the paper's Sec. 1.3 speedup — and hands multi-parameter [ok]
      reducers to the evaluator's binding extension
      ([Eval.tabulate_query ~sip]).  Placement is cost-gated by
      {!Cost.should_reduce};
    - [symmetric_reuse] computes a filter step once when it equals an
      earlier step up to parameter renaming (the Ex. 3.1 remark);
    - [memoize] consults and feeds the catalog's cross-level subplan memo
      ({!Qf_relational.Catalog.memo_find}): steps α-equivalent to one
      computed by an earlier plan run over the same relation versions
      (e.g. level k-1's final query, which is exactly one of level k's
      auxiliary steps) are fetched instead of recomputed.  A no-op when
      the memo budget ([QF_MEMO_BUDGET]) is 0. *)
type options = {
  semijoin_reduction : bool;
  symmetric_reuse : bool;
  memoize : bool;
}

(** All enabled. *)
val default_options : options

(** Run a plan.  The input catalog is not modified. *)
val run :
  ?options:options -> Qf_relational.Catalog.t -> Plan.t -> Qf_relational.Relation.t

(** Like {!run} but also reports per-step sizes (for benchmarks and the
    optimizer's calibration). *)
val run_with_report :
  ?options:options -> Qf_relational.Catalog.t -> Plan.t -> report
