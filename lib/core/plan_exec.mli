(** Execution of FILTER-step plans.

    Steps run in order against a working copy of the catalog: each step
    tabulates its query (parameters as grouping variables), applies the
    flock's filter per parameter group, and registers the surviving
    parameter tuples as a new stored relation, which later steps join as an
    ordinary subgoal.  The final step's output is the flock's result.

    Because every auxiliary step's query upper-bounds the flock's query
    (subset of subgoals, Sec. 3) and the filter is monotone, the plan's
    result equals {!Direct.run} — tested as a core invariant. *)

type step_report = {
  step_name : string;
  tabulated_rows : int;  (** rows produced before grouping *)
  groups : int;  (** distinct parameter assignments seen *)
  survivors : int;  (** assignments passing the filter *)
  seconds : float;  (** wall-clock time of the step *)
  reused_from : string option;
      (** [Some earlier] when the step was aliased to an earlier step's
          result by symmetry instead of being computed *)
}

type report = {
  result : Qf_relational.Relation.t;
  steps : step_report list;  (** in execution order, final step last *)
}

(** Executor optimizations, exposed so the benchmarks can ablate them.

    - [semijoin_reduction] materializes the semijoin of each base relation
      with the unary [ok] relations restricting its parameters before the
      joins — the rewrite behind the paper's Sec. 1.3 speedup;
    - [symmetric_reuse] computes a filter step once when it equals an
      earlier step up to parameter renaming (the Ex. 3.1 remark). *)
type options = {
  semijoin_reduction : bool;
  symmetric_reuse : bool;
}

(** Both enabled. *)
val default_options : options

(** Run a plan.  The input catalog is not modified. *)
val run :
  ?options:options -> Qf_relational.Catalog.t -> Plan.t -> Qf_relational.Relation.t

(** Like {!run} but also reports per-step sizes (for benchmarks and the
    optimizer's calibration). *)
val run_with_report :
  ?options:options -> Qf_relational.Catalog.t -> Plan.t -> report
