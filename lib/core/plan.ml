module Ast = Qf_datalog.Ast
module Safety = Qf_datalog.Safety

type step = {
  name : string;
  params : string list;
  query : Ast.query;
}

type t = {
  flock : Flock.t;
  steps : step list;
  final : step;
}

let step ~name query = { name; params = Ast.query_params query; query }

let ( let* ) = Result.bind

let error fmt = Format.kasprintf (fun s -> Error s) fmt

(* An ok-subgoal referencing an earlier step is, in the paper's rule, a
   literal copy of that step's head: predicate = step name, arguments = its
   parameters as parameter terms.  We additionally accept a head whose
   arguments are a {e renaming} of the step's parameters, provided the
   step's query under that renaming is itself derivable from the flock —
   the parameter-symmetry extension the paper's footnote 3 appeals to for
   levelwise a-priori.  Derivability of the renamed query is checked
   recursively with the same classification used for step bodies. *)
let rec ok_subgoal_check flock earlier (lit : Ast.literal) =
  match lit with
  | Ast.Neg _ | Ast.Cmp _ -> Error "not an ok-subgoal"
  | Ast.Pos a -> (
    match List.find_opt (fun s -> String.equal s.name a.pred) earlier with
    | None -> error "%s is not an earlier step" a.pred
    | Some s ->
      let args_params =
        List.filter_map
          (function Ast.Param p -> Some p | Ast.Var _ | Ast.Const _ -> None)
          a.args
      in
      if
        List.length a.args <> List.length s.params
        || List.length args_params <> List.length a.args
        || List.length (List.sort_uniq String.compare args_params)
           <> List.length args_params
      then
        error "ok-subgoal %s must carry %d distinct parameters" a.pred
          (List.length s.params)
      else if List.for_all2 String.equal args_params s.params then Ok ()
      else begin
        (* Renamed: the renamed subquery must be derivable from the flock. *)
        let mapping = List.combine s.params args_params in
        let renamed = List.map (Ast.rename_params mapping) s.query in
        let rec per_rule i = function
          | [], [] -> Ok ()
          | (orig : Ast.rule) :: origs, (rr : Ast.rule) :: rrs ->
            let* _kept =
              classify_body flock earlier orig.body rr.body
            in
            let* () = per_rule (i + 1) (origs, rrs) in
            Ok ()
          | _ -> error "ok-subgoal %s: rule count mismatch" a.pred
        in
        per_rule 0 (flock.Flock.query, renamed)
      end)

(* Split a step rule's body into retained original literals and ok-subgoals;
   fail on anything else.  Duplicated literals are matched with
   multiplicity. *)
and classify_body flock earlier (original : Ast.literal list) body =
  let remaining = ref original in
  let take lit =
    let rec go acc = function
      | [] -> None
      | l :: rest ->
        if Ast.equal_literal l lit then Some (List.rev_append acc rest)
        else go (l :: acc) rest
    in
    match go [] !remaining with
    | Some rest ->
      remaining := rest;
      true
    | None -> false
  in
  let rec loop kept = function
    | [] -> Ok (List.rev kept)
    | lit :: rest ->
      if take lit then loop (lit :: kept) rest
      else begin
        match ok_subgoal_check flock earlier lit with
        | Ok () -> loop kept rest
        | Error _ ->
          error "subgoal %s is neither an original subgoal nor an ok-subgoal"
            (Qf_datalog.Pretty.literal_to_string lit)
      end
  in
  loop [] body

let check_step (flock : Flock.t) earlier (s : step) ~is_final =
  let* () =
    if List.exists (fun e -> String.equal e.name s.name) earlier then
      error "duplicate step name %s" s.name
    else Ok ()
  in
  let base_preds =
    List.concat_map
      (fun (r : Ast.rule) ->
        List.filter_map
          (function
            | Ast.Pos a | Ast.Neg a -> Some a.Ast.pred
            | Ast.Cmp _ -> None)
          r.body)
      flock.query
  in
  let* () =
    if List.mem s.name base_preds then
      error "step name %s shadows a base relation" s.name
    else Ok ()
  in
  let* () =
    if List.length s.query = List.length flock.query then Ok ()
    else
      error "step %s: %d rules but the flock has %d (one subquery per rule)"
        s.name (List.length s.query) (List.length flock.query)
  in
  let* () =
    if s.params = Ast.query_params s.query then Ok ()
    else error "step %s: declared parameters disagree with its query" s.name
  in
  let check_rule i (orig : Ast.rule) (sr : Ast.rule) =
    let* () =
      if Ast.equal_atom orig.head sr.head then Ok ()
      else error "step %s, rule %d: head differs from the flock's" s.name i
    in
    let* kept = classify_body flock earlier orig.body sr.body in
    let* () =
      match Safety.check sr with
      | Ok () -> Ok ()
      | Error e -> error "step %s, rule %d: %s" s.name i e
    in
    let* () =
      if kept = [] then
        error "step %s, rule %d: retains no original subgoal" s.name i
      else Ok ()
    in
    if is_final && List.length kept <> List.length orig.body then
      error "final step deletes original subgoals (rule %d)" i
    else Ok ()
  in
  let rec check_all i = function
    | [], [] -> Ok ()
    | orig :: origs, sr :: srs ->
      let* () = check_rule i orig sr in
      check_all (i + 1) (origs, srs)
    | _ -> error "step %s: rule count mismatch" s.name
  in
  check_all 0 (flock.query, s.query)

(* Externally installed second opinions on every plan this module admits.
   [qf_analysis] installs two: the independent Sec. 4.2 legality verifier
   ([Plan_check.verify]) and the containment-based translation validator
   ([Validate.verify]).  Both run on every plan the optimizer or the
   levelwise generator produces, so plan generation is re-checked by code
   that shares nothing with the classification logic above — a sanitizer
   for plan generation.  Auditors are named so each can be installed,
   replaced, or removed independently. *)
let auditors : (string * (t -> (unit, string) result)) list ref = ref []

let add_auditor ~name f =
  auditors :=
    List.filter (fun (n, _) -> not (String.equal n name)) !auditors
    @ [ name, f ]

let remove_auditor ~name =
  auditors := List.filter (fun (n, _) -> not (String.equal n name)) !auditors

let set_auditor f = add_auditor ~name:"adhoc" f
let clear_auditor () = auditors := []

let make flock ~steps ~final =
  let* () =
    (* A plan with no auxiliary steps never prunes, so it is sound for any
       filter; pruning steps need monotonicity for the upper-bound
       argument. *)
    if steps = [] || Filter.is_monotone flock.Flock.filter then Ok ()
    else
      Error
        "plans require a monotone filter (a-priori filter steps are unsound \
         otherwise)"
  in
  let rec check earlier = function
    | [] -> check_step flock earlier final ~is_final:true
    | s :: rest ->
      let* () = check_step flock earlier s ~is_final:false in
      check (s :: earlier) rest
  in
  let* () = check [] steps in
  let t = { flock; steps; final } in
  let rec audit = function
    | [] -> Ok t
    | (name, f) :: rest -> (
      match f t with
      | Ok () -> audit rest
      | Error e -> error "plan auditor %s rejected the plan: %s" name e)
  in
  audit !auditors

let make_exn flock ~steps ~final =
  match make flock ~steps ~final with
  | Ok t -> t
  | Error msg -> invalid_arg ("Plan.make: " ^ msg)

let trivial flock =
  make_exn flock ~steps:[]
    ~final:(step ~name:"result" flock.Flock.query)

let all_steps t = t.steps @ [ t.final ]
let filter_step_count t = List.length t.steps
