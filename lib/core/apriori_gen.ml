module Ast = Qf_datalog.Ast
module Subquery = Qf_datalog.Subquery

type selection = [ `Fewest_subgoals | `Cheapest of Cost.env ]

let ( let* ) = Result.bind
let error fmt = Format.kasprintf (fun s -> Error s) fmt

let step_name params = "ok_" ^ String.concat "_" params

let ok_atom name params =
  Ast.Pos { Ast.pred = name; args = List.map (fun p -> Ast.Param p) params }

(* Choose one safe subquery of [rule] with exactly [params].  When
   profiling, the candidate-generation funnel is metered: how many safe
   subqueries the a-priori generator enumerated versus how many survived
   selection (one per (rule, parameter-set) on success). *)
let choose_candidate selection (rule : Ast.rule) params =
  let candidates = Subquery.for_params rule params in
  if Qf_obs.Obs.enabled () then
    Qf_obs.Obs.count "apriori.candidate_subqueries" (List.length candidates);
  let chosen =
    match candidates with
    | [] -> None
    | _ -> (
      match selection with
      | `Fewest_subgoals -> Subquery.minimal_for_params rule params
      | `Cheapest env ->
        List.fold_left
          (fun best (c : Subquery.candidate) ->
            let cost = (Cost.estimate_rule env c.rule).Cost.work in
            match best with
            | None -> Some (c, cost)
            | Some (_, bc) -> if cost < bc then Some (c, cost) else best)
          None candidates
        |> Option.map fst)
  in
  (if Qf_obs.Obs.enabled () then
     match chosen with
     | Some _ -> Qf_obs.Obs.count "apriori.chosen_subqueries" 1
     | None -> ());
  chosen

let param_set_plan ?(selection = `Fewest_subgoals) (flock : Flock.t)
    ~param_sets =
  let all_params = Flock.params flock in
  let* steps =
    List.fold_left
      (fun acc set ->
        let* steps = acc in
        let set = List.sort_uniq String.compare set in
        let* () =
          if set = [] then Error "empty parameter set"
          else if List.for_all (fun p -> List.mem p all_params) set then Ok ()
          else error "parameter set {%s} not within the flock's parameters"
                 (String.concat "," set)
        in
        let* subqueries =
          List.fold_left
            (fun acc rule ->
              let* rules = acc in
              match choose_candidate selection rule set with
              | Some c -> Ok (c.Subquery.rule :: rules)
              | None ->
                error "no safe subquery with parameters {%s} for rule %s"
                  (String.concat "," set)
                  (Qf_datalog.Pretty.rule_to_string rule))
            (Ok []) flock.query
        in
        Ok (Plan.step ~name:(step_name set) (List.rev subqueries) :: steps))
      (Ok []) param_sets
  in
  let steps = List.rev steps in
  let ok_atoms =
    List.map (fun (s : Plan.step) -> ok_atom s.name s.params) steps
  in
  let final_query =
    List.map
      (fun (r : Ast.rule) -> { r with Ast.body = r.body @ ok_atoms })
      flock.query
  in
  Plan.make flock ~steps ~final:(Plan.step ~name:"result" final_query)

let singleton_plan ?(selection = `Fewest_subgoals) (flock : Flock.t) =
  let viable =
    List.filter
      (fun p ->
        List.for_all
          (fun rule -> choose_candidate selection rule [ p ] <> None)
          flock.query)
      (Flock.params flock)
  in
  param_set_plan ~selection flock ~param_sets:(List.map (fun p -> [ p ]) viable)

let chain_plan (flock : Flock.t) ~prefixes =
  let* rule =
    match flock.query with
    | [ r ] -> Ok r
    | _ -> Error "chain_plan: only single-rule flocks are supported"
  in
  let body = Array.of_list rule.body in
  let* () =
    if prefixes = [] then Error "chain_plan: empty prefix list" else Ok ()
  in
  let make_step i prev indices =
    let kept =
      List.map
        (fun j ->
          if j < 0 || j >= Array.length body then
            invalid_arg "chain_plan: literal index out of range"
          else body.(j))
        indices
    in
    let extra =
      match prev with
      | None -> []
      | Some (s : Plan.step) -> [ ok_atom s.name s.params ]
    in
    Plan.step
      ~name:(Printf.sprintf "ok%d" i)
      [ { rule with Ast.body = extra @ kept } ]
  in
  let steps =
    List.rev
      (snd
         (List.fold_left
            (fun (i, acc) indices ->
              let prev = match acc with [] -> None | s :: _ -> Some s in
              i + 1, make_step i prev indices :: acc)
            (0, []) prefixes))
  in
  let last = List.nth steps (List.length steps - 1) in
  let final_query =
    [ { rule with Ast.body = rule.body @ [ ok_atom last.name last.params ] } ]
  in
  Plan.make flock ~steps ~final:(Plan.step ~name:"result" final_query)

(* {1 Market baskets} *)

let param_name i = string_of_int i

(* All pairwise order constraints $i < $j for i < j <= k.  Pairwise (rather
   than only consecutive) constraints keep every renamed instance of a
   lower level's ordering subgoals an original subgoal, which the levelwise
   plan's symmetry argument needs. *)
let order_cmps upto =
  List.concat
    (List.init upto (fun i ->
         List.init
           (upto - i - 1)
           (fun d ->
             Ast.Cmp
               ( Ast.Param (param_name (i + 1)),
                 Ast.Lt,
                 Ast.Param (param_name (i + 2 + d)) ))))

let basket_flock ~pred ~k ~support =
  if k < 1 || k > 9 then invalid_arg "basket_flock: k must be in 1..9";
  let atoms =
    List.init k (fun i ->
        Ast.Pos
          { Ast.pred; args = [ Ast.Var "B"; Ast.Param (param_name (i + 1)) ] })
  in
  let rule =
    { Ast.head = { Ast.pred = "answer"; args = [ Ast.Var "B" ] };
      body = atoms @ order_cmps k }
  in
  Flock.make_exn [ rule ] (Filter.count_at_least support)

(* All (j-1)-element subsets of [1..j], each sorted. *)
let subsets_dropping_one j =
  List.init j (fun drop ->
      List.filteri (fun i _ -> i <> drop) (List.init j (fun i -> i + 1)))

let levelwise_basket ~pred ~k ~support =
  let flock = basket_flock ~pred ~k ~support in
  let level_body j =
    let atoms =
      List.init j (fun i ->
          Ast.Pos
            { Ast.pred; args = [ Ast.Var "B"; Ast.Param (param_name (i + 1)) ] })
    in
    atoms @ order_cmps j
  in
  let prune_atoms j =
    (* ok_{j-1} applied to every (j-1)-subset of this level's parameters —
       sound by parameter symmetry (see {!Plan}). *)
    if j <= 1 then []
    else
      let prev_name =
        step_name (List.init (j - 1) (fun i -> param_name (i + 1)))
      in
      List.map
        (fun subset ->
          Ast.Pos
            {
              Ast.pred = prev_name;
              args = List.map (fun i -> Ast.Param (param_name i)) subset;
            })
        (subsets_dropping_one j)
  in
  let head = { Ast.pred = "answer"; args = [ Ast.Var "B" ] } in
  let steps =
    List.init (k - 1) (fun idx ->
        let j = idx + 1 in
        let params = List.init j (fun i -> param_name (i + 1)) in
        Plan.step ~name:(step_name params)
          [ { Ast.head; body = level_body j @ prune_atoms j } ])
  in
  let final_query =
    [ { Ast.head; body = level_body k @ prune_atoms k } ]
  in
  let plan =
    Plan.make_exn flock ~steps ~final:(Plan.step ~name:"result" final_query)
  in
  flock, plan
