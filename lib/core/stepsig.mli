(** Canonical α-equivalence signatures for FILTER steps — the memo keys
    of the catalog's cross-level subplan memo.

    Two steps get the same signature only when a bijective renaming of
    parameters (positional over the steps' sorted parameter lists, so it
    matches the output relations' column order) and of variables
    (first-occurrence order per rule) maps one query onto the other,
    their filters agree under that renaming (aggregated columns compared
    by head position), and every referenced predicate resolves to the
    {e same relation snapshot} — the signature embeds each dependency's
    ({!Qf_relational.Relation.id}, {!Qf_relational.Relation.version})
    pair in first-occurrence order, which is what makes memo entries
    invalidate on mutation and cascade across plan runs: when an earlier
    step memo-hits, the very same relation object is registered under the
    new plan's step name, so downstream signatures keep matching.

    The check is sound but deliberately incomplete: reordered bodies or
    semantically-equivalent-but-structurally-different queries hash
    apart and are simply recomputed. *)

(** [of_step ~work ~filter step] — the signature of [step] against the
    working catalog [work] (which must already hold the outputs of the
    plan's earlier steps).  [None] when a referenced predicate is not in
    [work] or the filter's column cannot be positioned — such steps are
    not memoized. *)
val of_step :
  work:Qf_relational.Catalog.t -> filter:Filter.t -> Plan.step -> string option
