module Value = Qf_relational.Value
module Aggregate = Qf_relational.Aggregate

type agg =
  | Count
  | Sum of string
  | Min of string
  | Max of string

type t = { agg : agg; threshold : float }

let count_at_least n = { agg = Count; threshold = float_of_int n }
let sum_at_least column threshold = { agg = Sum column; threshold }

let is_monotone t =
  match t.agg with Count | Sum _ | Max _ -> true | Min _ -> false

let to_aggregate t ~head_columns =
  let checked column =
    if List.mem column head_columns then column
    else
      failwith
        (Printf.sprintf "Filter.to_aggregate: %s is not a head column" column)
  in
  match t.agg with
  | Count -> Aggregate.Count
  | Sum c -> Aggregate.Sum (checked c)
  | Min c -> Aggregate.Min (checked c)
  | Max c -> Aggregate.Max (checked c)

let holds t value =
  match Value.to_float value with
  | Some x -> x >= t.threshold
  | None ->
    (* MIN/MAX of a string column: compare against nothing sensible. *)
    false

let pp_threshold ppf x =
  if Float.is_integer x then Format.fprintf ppf "%.0f" x
  else Format.fprintf ppf "%g" x

let pp ~head ppf t =
  match t.agg with
  | Count ->
    Format.fprintf ppf "COUNT(%s(*)) >= %a" head pp_threshold t.threshold
  | Sum c -> Format.fprintf ppf "SUM(%s.%s) >= %a" head c pp_threshold t.threshold
  | Min c -> Format.fprintf ppf "MIN(%s.%s) >= %a" head c pp_threshold t.threshold
  | Max c -> Format.fprintf ppf "MAX(%s.%s) >= %a" head c pp_threshold t.threshold

(* Canonical form for memo keys: the aggregated column is named by its
   *position* among the head columns, not its name — α-renamed queries
   change head variable names but not positions, and two steps must only
   share a memo entry when their filters agree under the renaming. *)
let signature t ~head_columns =
  let positional label c =
    match List.find_index (String.equal c) head_columns with
    | Some i -> Some (Printf.sprintf "%s@%d" label i)
    | None -> None
  in
  let agg =
    match t.agg with
    | Count -> Some "COUNT"
    | Sum c -> positional "SUM" c
    | Min c -> positional "MIN" c
    | Max c -> positional "MAX" c
  in
  Option.map (fun a -> Printf.sprintf "%s>=%.17g" a t.threshold) agg

let equal a b =
  a.threshold = b.threshold
  &&
  match a.agg, b.agg with
  | Count, Count -> true
  | Sum x, Sum y | Min x, Min y | Max x, Max y -> String.equal x y
  | (Count | Sum _ | Min _ | Max _), _ -> false
