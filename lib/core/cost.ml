module Ast = Qf_datalog.Ast
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Statistics = Qf_relational.Statistics

type vstats = {
  rows : float;
  distinct : float array;
  frequencies : int array array;
}

type env = (string * vstats) list

let of_catalog catalog =
  List.map
    (fun name ->
      let stats = Catalog.stats catalog name in
      let columns = Schema.columns (Relation.schema (Catalog.find catalog name)) in
      ( name,
        {
          rows = float_of_int (Statistics.cardinality stats);
          distinct =
            Array.of_list
              (List.map
                 (fun c -> float_of_int (Statistics.distinct stats c))
                 columns);
          frequencies =
            Array.of_list
              (List.map (fun c -> Statistics.frequencies stats c) columns);
        } ))
    (Catalog.names catalog)

let extend env name stats = (name, stats) :: env
let lookup env name = List.assoc_opt name env

let lookup_exn env name =
  match lookup env name with
  | Some s -> s
  | None -> failwith (Printf.sprintf "Cost: no statistics for predicate %s" name)

type estimate = {
  work : float;
  rows : float;
}

(* Expected index matches per environment for [atom] given bound keys. *)
let est_matches env bound (a : Ast.atom) =
  let (s : vstats) = lookup_exn env a.pred in
  let est = ref s.rows in
  List.iteri
    (fun i arg ->
      let is_bound =
        match arg with
        | Ast.Const _ -> true
        | Ast.Var _ | Ast.Param _ -> List.mem (Ast.binding_key arg) bound
      in
      if is_bound && i < Array.length s.distinct then
        est := !est /. Float.max 1. s.distinct.(i))
    a.args;
  Float.max 0. !est

let atom_keys (a : Ast.atom) =
  List.filter_map
    (function
      | (Ast.Var _ | Ast.Param _) as t -> Some (Ast.binding_key t)
      | Ast.Const _ -> None)
    a.args

(* Greedy simulation of the evaluator's join order; negations and
   comparisons are charged a pass over the current rows and a default
   selectivity. *)
let neg_selectivity = 0.8
let cmp_selectivity = 0.5

let estimate_rule env (r : Ast.rule) =
  let rec loop bound rows work remaining =
    match remaining with
    | [] -> { work; rows }
    | _ ->
      let ready, rest =
        List.partition
          (fun lit ->
            match lit with
            | Ast.Pos _ -> false
            | Ast.Neg _ | Ast.Cmp _ ->
              List.for_all
                (fun k -> List.mem k bound)
                (List.map (fun v -> v) (Ast.literal_vars lit)
                @ List.map (fun p -> "$" ^ p) (Ast.literal_params lit)))
          remaining
      in
      if ready <> [] then begin
        let selectivity =
          List.fold_left
            (fun acc lit ->
              match lit with
              | Ast.Neg _ -> acc *. neg_selectivity
              | Ast.Cmp _ -> acc *. cmp_selectivity
              | Ast.Pos _ -> acc)
            1. ready
        in
        loop bound (rows *. selectivity) (work +. rows) rest
      end
      else begin
        let candidates =
          List.filter_map
            (function Ast.Pos a -> Some a | Ast.Neg _ | Ast.Cmp _ -> None)
            rest
        in
        match candidates with
        | [] -> { work; rows }
        | _ ->
          let best =
            List.fold_left
              (fun acc a ->
                let m = est_matches env bound a in
                match acc with
                | None -> Some (a, m)
                | Some (_, bm) -> if m < bm then Some (a, m) else acc)
              None candidates
          in
          let a, m = Option.get best in
          let rows' = rows *. m in
          let rest' =
            let removed = ref false in
            List.filter
              (fun lit ->
                match lit with
                | Ast.Pos a' when (not !removed) && Ast.equal_atom a' a ->
                  removed := true;
                  false
                | _ -> true)
              rest
          in
          loop
            (List.sort_uniq String.compare (bound @ atom_keys a))
            rows' (work +. rows') rest'
      end
  in
  loop [] 1. 0. r.body

let estimate_query env (q : Ast.query) =
  List.fold_left
    (fun acc r ->
      let e = estimate_rule env r in
      { work = acc.work +. e.work; rows = acc.rows +. e.rows })
    { work = 0.; rows = 0. }
    q

(* Domain of a parameter within a query: the smallest distinct count among
   its positive occurrences (any rule). *)
let param_domain env (q : Ast.query) param =
  let occ = ref infinity in
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (fun (a : Ast.atom) ->
          let s = lookup_exn env a.pred in
          List.iteri
            (fun i arg ->
              match arg with
              | Ast.Param p
                when String.equal p param && i < Array.length s.distinct ->
                occ := Float.min !occ s.distinct.(i)
              | _ -> ())
            a.args)
        (Ast.positive_atoms r))
    q;
  if !occ = infinity then 1. else Float.max 1. !occ

let estimate_groups env q params =
  List.fold_left (fun acc p -> acc *. param_domain env q p) 1. params

(* Exact survivors for the single-subgoal, single-parameter COUNT shape:
   answer(..) :- p(..., $x, ...).  The number of $x values passing the
   threshold is the number of column values with at least [threshold]
   occurrences — read directly off the column's frequency distribution. *)
let exact_survivors env ~threshold (s : Plan.step) =
  match s.query, s.params with
  | [ { Ast.body = [ Ast.Pos a ]; _ } ], [ p ] ->
    let position =
      List.find_index
        (fun arg ->
          match arg with
          | Ast.Param p' -> String.equal p p'
          | Ast.Var _ | Ast.Const _ -> false)
        a.args
    in
    Option.bind position (fun i ->
        match lookup env a.pred with
        | Some (stats : vstats) when i < Array.length stats.frequencies ->
          let freqs = stats.frequencies.(i) in
          if Array.length freqs = 0 then None
          else begin
            let c = int_of_float (Float.round threshold) in
            let n = Array.length freqs in
            let rec search lo hi =
              if lo >= hi then lo
              else
                let mid = (lo + hi) / 2 in
                if freqs.(mid) >= c then search (mid + 1) hi else search lo mid
            in
            Some (float_of_int (search 0 n))
          end
        | _ -> None)
  | _ -> None

let estimate_step env ~threshold (s : Plan.step) =
  let e = estimate_query env s.query in
  let groups = estimate_groups env s.query s.params in
  let avg = if groups <= 0. then 0. else e.rows /. groups in
  let survival =
    if threshold <= 0. then 1.
    else if avg >= threshold then 1.
    else avg /. threshold
  in
  let survivors =
    match exact_survivors env ~threshold s with
    | Some exact -> Float.max 1. exact
    | None -> Float.max 1. (groups *. survival)
  in
  let per_column = Float.max 1. survivors in
  let out_stats =
    {
      rows = survivors;
      distinct = Array.make (List.length s.params) per_column;
      frequencies = [||];
    }
  in
  (* Materializing the tabulated relation and grouping it cost roughly
     three passes over its rows (hash-set insert, key projection, group
     index) on top of the join work itself. *)
  e.work +. (3. *. e.rows), out_stats

(* Reducer placement (executor-side SIP): materializing the semijoin of
   a base relation with an [ok] step pays one pass over the base rows; it
   wins when the ok set actually excludes values of the reduced column.
   The survivor set can only shrink the column's domain, so comparing the
   ok cardinality against the column's distinct count — the same
   version-coherent profile the bound certifier seeds from — is a sound
   keep-fraction estimate: at [ok_cardinal >= distinct] the reduction is
   certifiably a no-op and is skipped. *)
let reduce_keep_fraction = 0.98

let should_reduce catalog ~pred ~col ~ok_cardinal =
  match Statistics.distinct (Catalog.stats catalog pred) col with
  | exception (Failure _ | Not_found) -> true
  | d -> d > 0 && float_of_int ok_cardinal < reduce_keep_fraction *. float_of_int d

(* Total row mass carried by the column values meeting the threshold. *)
let mass_at_least freqs c =
  Array.fold_left (fun acc f -> if f >= c then acc +. float_of_int f else acc) 0. freqs

(* Model the executor's semijoin reduction: for every single-parameter
   auxiliary step, shrink the statistics of the base atoms the final query
   applies that parameter to.  Without this, the model sees few surviving
   values but misses that those values carry most of the row mass on
   skewed data — the exact mistake that made filtering look free. *)
let reduce_env_for_final env ~threshold (plan : Plan.t) =
  let single_param_steps =
    List.filter_map
      (fun (s : Plan.step) ->
        match s.params with [ p ] -> Some (p, s) | _ -> None)
      plan.steps
  in
  List.fold_left
    (fun env (r : Ast.rule) ->
      List.fold_left
        (fun env (a : Ast.atom) ->
          List.fold_left
            (fun env (i, arg) ->
              match arg with
              | Ast.Param p -> (
                match List.assoc_opt p single_param_steps with
                | None -> env
                | Some _ -> (
                  match lookup env a.pred with
                  | Some (stats : vstats)
                    when i < Array.length stats.frequencies
                         && Array.length stats.frequencies.(i) > 0 ->
                    let c = int_of_float (Float.round threshold) in
                    let freqs = stats.frequencies.(i) in
                    let kept_mass = mass_at_least freqs c in
                    let kept_values =
                      float_of_int
                        (Array.fold_left
                           (fun acc f -> if f >= c then acc + 1 else acc)
                           0 freqs)
                    in
                    let distinct = Array.copy stats.distinct in
                    if i < Array.length distinct then
                      distinct.(i) <- Float.max 1. kept_values;
                    extend env a.pred
                      {
                        stats with
                        rows = Float.min stats.rows (Float.max 1. kept_mass);
                        distinct;
                      }
                  | _ -> env))
              | Ast.Var _ | Ast.Const _ -> env)
            env
            (List.mapi (fun i arg -> i, arg) a.args))
        env (Ast.positive_atoms r))
    env plan.final.query

(* Apply a certified (groups, rows) upper bound to a step's estimated
   output: survivors cannot exceed the certified survivor bound, and the
   per-column distinct counts cannot exceed the clamped row count.  The
   clamp only ever tightens — [min(estimate, bound)] — so an absent or
   infinite bound leaves the estimate untouched. *)
let clamp_out clamps name (out : vstats) =
  match List.assoc_opt name clamps with
  | None -> out
  | Some (_groups_bound, rows_bound) ->
    if out.rows <= rows_bound then out
    else
      let rows = rows_bound in
      {
        out with
        rows;
        distinct = Array.map (fun d -> Float.min d (Float.max 1. rows)) out.distinct;
      }

let estimate_plan ?(clamps = []) env (plan : Plan.t) =
  let threshold = plan.flock.filter.threshold in
  let env, work =
    List.fold_left
      (fun (env, acc) s ->
        let w, out = estimate_step env ~threshold s in
        let out = clamp_out clamps s.Plan.name out in
        extend env s.Plan.name out, acc +. w)
      (env, 0.) plan.steps
  in
  let final_env = reduce_env_for_final env ~threshold plan in
  let w, _ = estimate_step final_env ~threshold plan.final in
  work +. w

(* Per-step estimates, exposed so the profiler can print estimated next to
   observed cardinalities.  Mirrors [estimate_plan]'s environment
   threading: each auxiliary step's estimated output statistics feed the
   later steps, and the final step sees the semijoin-reduced env. *)

type step_estimate = {
  step : string;
  est_work : float;
  est_groups : float;
  est_rows : float;
}

let plan_step_estimates ?(clamps = []) env (plan : Plan.t) =
  let threshold = plan.flock.filter.threshold in
  let one env (s : Plan.step) =
    let w, out = estimate_step env ~threshold s in
    let out = clamp_out clamps s.Plan.name out in
    let groups_bound =
      match List.assoc_opt s.Plan.name clamps with
      | Some (g, _) -> g
      | None -> infinity
    in
    ( out,
      {
        step = s.name;
        est_work = w;
        est_groups = Float.min groups_bound (estimate_groups env s.query s.params);
        est_rows = out.rows;
      } )
  in
  let env, acc =
    List.fold_left
      (fun (env, acc) (s : Plan.step) ->
        let out, e = one env s in
        extend env s.Plan.name out, e :: acc)
      (env, []) plan.steps
  in
  let final_env = reduce_env_for_final env ~threshold plan in
  let _, e = one final_env plan.final in
  List.rev (e :: acc)
