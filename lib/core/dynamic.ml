module Ast = Qf_datalog.Ast
module Eval = Qf_datalog.Eval
module Pretty = Qf_datalog.Pretty
module Subquery = Qf_datalog.Subquery
module Relation = Qf_relational.Relation
module Value = Qf_relational.Value
module Tuple = Qf_relational.Tuple
module Aggregate = Qf_relational.Aggregate
module Sip = Qf_relational.Sip

module Obs = Qf_obs.Obs

let log_src = Logs.Src.create "qf.dynamic" ~doc:"Dynamic filter selection"

module Log = (val Logs.src_log log_src)

type config = {
  ratio_factor : float;
  improvement_factor : float;
  sip_reducers : bool;
}

let default_config =
  { ratio_factor = 1.0; improvement_factor = 0.5; sip_reducers = true }

type decision = {
  after : string;
  param_set : string list;
  rows : int;
  assignments : int;
  ratio : float;
  filtered : bool;
  survivors : int option;
}

type result = {
  answers : Qf_relational.Relation.t;
  trace : decision list;
}

let param_keys_of envs =
  List.filter (fun k -> String.length k > 0 && k.[0] = '$')
    (Eval.Envs.bound_keys envs)

(* Project the current environments to (parameters, head variables). *)
let project_prefix envs ~param_keys ~head_keys ~head_columns =
  Eval.Envs.project envs ~keys:(param_keys @ head_keys)
    ~columns:(param_keys @ head_columns)

(* Support count of each parameter assignment over the current prefix,
   keeping the assignments [keep] accepts given their count.  [keep] also
   receives the parameter names the key covers (a walk may filter before
   every parameter is bound). *)
let assignments_passing projected ~param_keys ~func ~keep =
  let groups = Aggregate.group_by projected ~keys:param_keys ~func in
  let params = List.map (fun k -> String.sub k 1 (String.length k - 1)) param_keys in
  let out =
    Relation.create
      (Qf_relational.Schema.of_list param_keys)
  in
  List.iter
    (fun (key, v) -> if keep ~params key v then Relation.add out key)
    groups;
  out

(* Walk one rule's body in the evaluator's order, deciding after each
   literal whether to interpose a filter.  [keep key aggregate_value]
   decides which parameter assignments survive a filter (this is where the
   union slack enters).  Returns the final environments and the trace. *)
let walk_rule config catalog rule ~sip ~head_keys ~head_columns ~func ~keep =
  let ordered = Eval.order_body catalog rule in
  let best_ratio : (string list, float) Hashtbl.t = Hashtbl.create 8 in
  let threshold_hint = ref infinity in
  let step (envs, trace) lit =
    Qf_governor.Governor.check ();
    let envs =
      match lit with
      | Ast.Pos a -> Eval.Envs.extend_pos ~sip catalog envs a
      | Ast.Neg a -> Eval.Envs.filter_neg catalog envs a
      | Ast.Cmp (l, c, r) -> Eval.Envs.filter_cmp envs l c r
    in
    let param_keys = param_keys_of envs in
    let rows = Eval.Envs.count envs in
    let head_bound =
      List.for_all (fun k -> List.mem k (Eval.Envs.bound_keys envs)) head_keys
    in
    if param_keys = [] || (not head_bound) || rows = 0 then
      ( envs,
        {
          after = Pretty.literal_to_string lit;
          param_set = param_keys;
          rows;
          assignments = 0;
          ratio = 0.;
          filtered = false;
          survivors = None;
        }
        :: trace )
    else begin
      let assignments =
        Relation.cardinal
          (Eval.Envs.project envs ~keys:param_keys ~columns:param_keys)
      in
      let ratio = float_of_int rows /. float_of_int assignments in
      let should_filter =
        match Hashtbl.find_opt best_ratio param_keys with
        | None -> ratio < config.ratio_factor *. !threshold_hint
        | Some best -> ratio < config.improvement_factor *. best
      in
      let previous_best =
        Option.value (Hashtbl.find_opt best_ratio param_keys) ~default:infinity
      in
      Hashtbl.replace best_ratio param_keys (Float.min ratio previous_best);
      Log.debug (fun m ->
          m "after %s: %d rows / %d assignments (ratio %.1f) -> %s"
            (Pretty.literal_to_string lit)
            rows assignments ratio
            (if should_filter then "FILTER" else "no filter"));
      if not should_filter then
        ( envs,
          {
            after = Pretty.literal_to_string lit;
            param_set = param_keys;
            rows;
            assignments;
            ratio;
            filtered = false;
            survivors = None;
          }
          :: trace )
      else begin
        let projected =
          project_prefix envs ~param_keys ~head_keys ~head_columns
        in
        let kept = assignments_passing projected ~param_keys ~func ~keep in
        let envs = Eval.Envs.semijoin envs ~keys:param_keys ~keep:kept in
        ( envs,
          {
            after = Pretty.literal_to_string lit;
            param_set = param_keys;
            rows;
            assignments;
            ratio;
            filtered = true;
            survivors = Some (Relation.cardinal kept);
          }
          :: trace )
      end
    end
  in
  let step acc lit =
    (* One span per run-time decision point: the sizes the Ex. 4.4
       heuristic saw and whether it interposed a filter. *)
    if not (Obs.enabled ()) then step acc lit
    else
      Obs.with_span "dynamic.decision" (fun () ->
          let (envs, trace) = step acc lit in
          (match trace with
          | (d : decision) :: _ ->
            Obs.set_attr "after" (Obs.Str d.after);
            Obs.set_attr "rows" (Obs.Int d.rows);
            Obs.set_attr "assignments" (Obs.Int d.assignments);
            Obs.set_attr "filtered" (Obs.Bool d.filtered);
            (match d.survivors with
            | Some s -> Obs.set_attr "survivors" (Obs.Int s)
            | None -> ())
          | [] -> ());
          (envs, trace))
  in
  fun ~threshold ->
    threshold_hint := threshold;
    let envs, trace = List.fold_left step (Eval.Envs.start (), []) ordered in
    envs, List.rev trace

let head_var_keys (rule : Ast.rule) =
  List.filter_map
    (function
      | (Ast.Var _ : Ast.term) as t -> Some (Ast.binding_key t)
      | Ast.Param _ | Ast.Const _ -> None)
    rule.head.args

(* {1 Single-rule evaluation (the paper's Ex. 4.4)} *)

(* A-priori reducers for the walk (single-rule COUNT filters only): for
   each parameter [p], the COUNT of [p]'s minimal safe subquery per value
   upper-bounds the full rule's per-value answer count (same a-priori
   argument as the levelwise ok steps, and the same per-parameter tables
   the union executor's slack bounds are built from).  Values whose bound
   misses the threshold can never contribute a surviving assignment, so
   the evaluator may refuse to even create bindings for them.  A reducer
   that would keep every value is omitted. *)
let apriori_reducers catalog rule ~params ~threshold =
  List.filter_map
    (fun p ->
      match Subquery.minimal_for_params rule [ p ] with
      | None -> None
      | Some c ->
        let tab = Eval.tabulate catalog c.rule in
        let counts =
          Aggregate.group_by tab ~keys:[ "$" ^ p ] ~func:Aggregate.Count
        in
        let passing =
          List.filter_map
            (fun ((key : Tuple.t), v) ->
              match Value.to_float v with
              | Some x when x >= threshold -> Some (Tuple.get key 0)
              | _ -> None)
            counts
        in
        if List.compare_lengths passing counts = 0 then None
        else Some ("$" ^ p, Sip.of_values (Array.of_list passing)))
    params

let run_single config catalog (flock : Flock.t) rule =
  let head_keys = head_var_keys rule in
  let head_columns = Eval.head_columns rule in
  let func = Filter.to_aggregate flock.filter ~head_columns in
  let threshold = flock.filter.threshold in
  let keep ~params:_ _key v =
    match Value.to_float v with Some x -> x >= threshold | None -> false
  in
  let sip =
    match flock.filter.agg with
    | Filter.Count when config.sip_reducers ->
      apriori_reducers catalog rule ~params:(Flock.params flock) ~threshold
    | _ -> []
  in
  let envs, trace =
    walk_rule config catalog rule ~sip ~head_keys ~head_columns ~func ~keep
      ~threshold
  in
  let param_keys = List.map (fun p -> "$" ^ p) (Flock.params flock) in
  let projected = project_prefix envs ~param_keys ~head_keys ~head_columns in
  let answers = assignments_passing projected ~param_keys ~func ~keep in
  Ok { answers; trace }

(* {1 Union evaluation (Sec. 3.4)}

   Sound per-branch pruning: drop assignment [a] from rule [i] only when
   prefix_count_i(a) plus the sum of the other rules' per-assignment bounds
   cannot reach the threshold — then the union total fails the filter
   whatever the other branches contribute. *)

(* Per-rule, per-parameter value -> answer-count bound, from the rule's
   minimal safe subquery for that parameter. *)
let rule_param_bounds catalog (rule : Ast.rule) params =
  List.filter_map
    (fun p ->
      match Subquery.minimal_for_params rule [ p ] with
      | None -> None
      | Some c ->
        let tab = Eval.tabulate catalog c.rule in
        let counts =
          Aggregate.group_by tab ~keys:[ "$" ^ p ] ~func:Aggregate.Count
        in
        let tbl : (Value.t, int) Hashtbl.t =
          Hashtbl.create (List.length counts)
        in
        List.iter
          (fun ((key : Tuple.t), v) ->
            match Value.to_float v with
            | Some x -> Hashtbl.replace tbl (Tuple.get key 0) (int_of_float x)
            | None -> ())
          counts;
        Some (p, tbl))
    params

(* B_j(a): the tightest available bound for rule j at the (possibly
   partial) assignment a, whose key tuple covers exactly [bound_params] in
   order.  With no applicable per-parameter table the bound is unknown
   (max_int), which disables pruning — always sound. *)
let rule_bound bounds bound_params (key : Tuple.t) =
  List.fold_left
    (fun acc (p, tbl) ->
      match List.find_index (String.equal p) bound_params with
      | None -> acc
      | Some i ->
        let b = Option.value (Hashtbl.find_opt tbl (Tuple.get key i)) ~default:0 in
        min acc b)
    max_int bounds

let ( let* ) = Result.bind

let run_union config catalog (flock : Flock.t) rules =
  let params = Flock.params flock in
  let param_keys = List.map (fun p -> "$" ^ p) params in
  let* () =
    match flock.filter.agg with
    | Filter.Count -> Ok ()
    | Filter.Sum _ | Filter.Min _ | Filter.Max _ ->
      Error "Dynamic.run: unions support COUNT filters only"
  in
  let* () =
    if
      List.for_all
        (fun (r : Ast.rule) ->
          List.for_all
            (function Ast.Var _ -> true | Ast.Param _ | Ast.Const _ -> false)
            r.head.args)
        rules
    then Ok ()
    else Error "Dynamic.run: union heads must be plain variables"
  in
  let threshold = flock.filter.threshold in
  let bounds = List.map (fun r -> rule_param_bounds catalog r params) rules in
  let head_columns = Flock.head_columns flock in
  let union_tab =
    Relation.create
      (Qf_relational.Schema.of_list (param_keys @ head_columns))
  in
  let traces =
    List.mapi
      (fun i rule ->
        (* Slack from the other branches. *)
        let extra bound_params key =
          List.fold_left
            (fun acc (j, b) ->
              if j = i then acc
              else
                let bound = rule_bound b bound_params key in
                if bound = max_int || acc = max_int then max_int
                else acc + bound)
            0
            (List.mapi (fun j b -> j, b) bounds)
        in
        let keep ~params:bound_params key v =
          match Value.to_float v with
          | None -> false
          | Some x ->
            let slack = extra bound_params key in
            slack = max_int || x +. float_of_int slack >= threshold
        in
        let head_keys = head_var_keys rule in
        (* No reducers here: a value below one branch's own threshold may
           still pass through the union (see [test_union_crosses_branches]),
           so per-branch a-priori pruning would be unsound. *)
        let envs, trace =
          walk_rule config catalog rule ~sip:[] ~head_keys
            ~head_columns:(Eval.head_columns rule)
            ~func:Aggregate.Count ~keep ~threshold
        in
        (* Accumulate this branch's full tabulation, renamed positionally to
           the union schema. *)
        let projected =
          Eval.Envs.project envs
            ~keys:(param_keys @ head_keys)
            ~columns:(param_keys @ Eval.head_columns rule)
        in
        Relation.iter (Relation.add union_tab) projected;
        List.map
          (fun d -> { d with after = Printf.sprintf "rule %d: %s" i d.after })
          trace)
      rules
  in
  let answers =
    Aggregate.group_filter union_tab ~keys:param_keys ~func:Aggregate.Count
      ~threshold
  in
  Ok { answers; trace = List.concat traces }

let run ?(config = default_config) catalog (flock : Flock.t) =
  Obs.with_span "dynamic.run" @@ fun () ->
  if not (Filter.is_monotone flock.filter) then
    Error "Dynamic.run: the filter is not monotone"
  else
    try
      let result =
        match flock.query with
        | [] -> Error "Dynamic.run: empty query"
        | [ rule ] -> run_single config catalog flock rule
        | rules -> run_union config catalog flock rules
      in
      (match result with
      | Ok r ->
        Obs.set_attr "rows_out" (Obs.Int (Relation.cardinal r.answers))
      | Error _ -> ());
      result
    with
    | Eval.Error msg -> Error msg
    | Failure msg -> Error msg
