module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Value = Qf_relational.Value
module Aggregate = Qf_relational.Aggregate
module Join = Qf_relational.Join

type rule = {
  antecedent : Value.t;
  consequent : Value.t;
  pair_support : int;
  confidence : float;
  interest : float;
}

let pair_rules catalog ~pred ~support ~min_confidence =
  if support < 1 then invalid_arg "Measures.pair_rules: support must be >= 1";
  let baskets = Catalog.find catalog pred in
  let columns = Schema.columns (Relation.schema baskets) in
  let bid_col = List.hd columns and item_col = List.nth columns 1 in
  let n_baskets = List.length (Relation.column_values baskets bid_col) in
  (* Item supports: distinct baskets per item. *)
  let item_support =
    Aggregate.group_by baskets ~keys:[ item_col ] ~func:Aggregate.Count
    |> List.map (fun (key, v) ->
           ( Qf_relational.Tuple.get key 0,
             match Value.to_float v with Some f -> int_of_float f | None -> 0 ))
  in
  let support_of item =
    match List.find_opt (fun (i, _) -> Value.equal i item) item_support with
    | Some (_, n) -> n
    | None -> 0
  in
  (* The a-priori trick, by hand: restrict baskets to frequent items before
     the pair join (the paper's Sec. 1.3 rewrite). *)
  let frequent_items =
    Aggregate.group_filter baskets ~keys:[ item_col ] ~func:Aggregate.Count
      ~threshold:(float_of_int support)
  in
  let reduced = Join.semi baskets frequent_items [ item_col, item_col ] in
  let work = Catalog.copy catalog in
  Catalog.add work pred reduced;
  let tab = Direct.tabulate work (Apriori_gen.basket_flock ~pred ~k:2 ~support) in
  let counts = Aggregate.group_by tab ~keys:[ "$1"; "$2" ] ~func:Aggregate.Count in
  let directed =
    List.concat_map
      (fun (key, v) ->
        let n =
          match Value.to_float v with Some f -> int_of_float f | None -> 0
        in
        if n < support then []
        else begin
          let a = Qf_relational.Tuple.get key 0
          and b = Qf_relational.Tuple.get key 1 in
          [ a, b, n; b, a, n ]
        end)
      counts
  in
  List.filter_map
    (fun (a, b, n) ->
      let sa = support_of a and sb = support_of b in
      if sa = 0 || sb = 0 || n_baskets = 0 then None
      else begin
        let confidence = float_of_int n /. float_of_int sa in
        if confidence < min_confidence then None
        else
          Some
            {
              antecedent = a;
              consequent = b;
              pair_support = n;
              confidence;
              interest =
                confidence /. (float_of_int sb /. float_of_int n_baskets);
            }
      end)
    directed
  |> List.sort (fun x y -> Float.compare y.interest x.interest)

let pp_rule ppf r =
  Format.fprintf ppf "%a -> %a  support %d  confidence %.2f  interest %.2f"
    Value.pp r.antecedent Value.pp r.consequent r.pair_support r.confidence
    r.interest
