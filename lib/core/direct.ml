module Eval = Qf_datalog.Eval
module Aggregate = Qf_relational.Aggregate
module Relation = Qf_relational.Relation
module Obs = Qf_obs.Obs

let tabulate catalog (flock : Flock.t) = Eval.tabulate_query catalog flock.query

let run catalog (flock : Flock.t) =
  Qf_governor.Governor.check ();
  let compute () =
    let tab = tabulate catalog flock in
    let func =
      Filter.to_aggregate flock.filter ~head_columns:(Flock.head_columns flock)
    in
    ( tab,
      Aggregate.group_filter tab
        ~keys:(Flock.result_columns flock)
        ~func ~threshold:flock.filter.threshold )
  in
  if not (Obs.enabled ()) then snd (compute ())
  else
    Obs.with_span "direct.run" (fun () ->
        let tab, result = compute () in
        Obs.set_attr "rows_in" (Obs.Int (Relation.cardinal tab));
        Obs.set_attr "rows_out" (Obs.Int (Relation.cardinal result));
        result)
