type choice = {
  plan : Plan.t;
  param_sets : string list list;
  cost : float;
}

let default_param_sets flock =
  let params = Flock.params flock in
  let singletons = List.map (fun p -> [ p ]) params in
  if List.length params >= 2 then singletons @ [ params ] else singletons

(* All subsets of a list, smallest first. *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let without = subsets rest in
    without @ List.map (fun s -> x :: s) without

let enumerate ?param_sets ?(clamp = fun _ -> []) catalog flock =
  let sets =
    match param_sets with Some s -> s | None -> default_param_sets flock
  in
  if not (Filter.is_monotone flock.Flock.filter) then
    [ { plan = Plan.trivial flock; param_sets = []; cost = 0. } ]
  else begin
    let env = Cost.of_catalog catalog in
    let selection = `Cheapest env in
    (* Keep only parameter sets every rule has a safe subquery for. *)
    let viable =
      List.filter
        (fun set ->
          match Apriori_gen.param_set_plan ~selection flock ~param_sets:[ set ] with
          | Ok _ -> true
          | Error _ -> false)
        sets
    in
    let choices =
      List.filter_map
        (fun chosen ->
          match
            Apriori_gen.param_set_plan ~selection flock ~param_sets:chosen
          with
          | Ok plan ->
            Some
              {
                plan;
                param_sets = chosen;
                cost = Cost.estimate_plan ~clamps:(clamp plan) env plan;
              }
          | Error _ -> None)
        (subsets viable)
    in
    List.sort (fun a b -> Float.compare a.cost b.cost) choices
  end

let optimize ?param_sets ?clamp catalog flock =
  match enumerate ?param_sets ?clamp catalog flock with
  | [] -> Plan.trivial flock
  | best :: _ -> best.plan
