(** Parser for complete flock programs in the paper's notation:

    {v
    QUERY:

    answer(B) :-
        baskets(B,$1) AND
        baskets(B,$2) AND
        $1 < $2

    FILTER:

    COUNT(answer.B) >= 20
    v}

    The filter line is [AGG(head.Column) >= n] or [AGG(head(star)) >= n] (star written `*`) with
    [AGG] one of [COUNT]/[SUM]/[MIN]/[MAX].  [COUNT(head.X)] is normalized
    to a distinct-tuple count — under set semantics counting a head column
    of the answer equals counting answer tuples when the head has one
    column, which is how the paper uses it. *)

(** Parse a flock program.  Errors include lexing, parsing, and the
    semantic checks of {!Flock.make}. *)
val flock : string -> (Flock.t, string) result

(** Raises [Invalid_argument] on error; convenient for tests/examples. *)
val flock_exn : string -> Flock.t

(** A program may start with an optional [VIEWS:] section defining
    intermediate predicates (see {!Views}), evaluated before the flock:

    {v
    VIEWS:
    explained(P,S) :- diagnoses(P,D) AND causes(D,S)

    QUERY:
    answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT explained(P,$s)

    FILTER:
    COUNT(answer.P) >= 20
    v} *)
type program = {
  views : Qf_datalog.Ast.rule list;  (** empty when there is no VIEWS: section *)
  flock : Flock.t;
}

(** Parse a full program.  View rules are checked for safety and absence of
    parameters here; the catalog-dependent checks (shadowing, recursion)
    happen in {!Views.materialize}. *)
val program : string -> (program, string) result

val program_exn : string -> program

(** {1 Span-preserving parse for static analysis}

    {!program_located} stops after the purely syntactic phase: rules carry
    their source spans and {e no} semantic check (safety, query
    well-formedness, filter-column existence) has run.  This is the entry
    point the [qf_analysis] linter builds on — it reports those violations
    itself, with positions and stable error codes, instead of stopping at
    the first one. *)

type located_program = {
  l_views : Qf_datalog.Ast.located_rule list;
  l_query : Qf_datalog.Ast.located_rule list;
  l_filter : Filter.t;
  l_filter_span : Qf_datalog.Ast.span;
}

(** Errors are lex/parse/section-structure only, with the offending span
    ({!Qf_datalog.Ast.no_span} when unknown). *)
val program_located :
  string -> (located_program, string * Qf_datalog.Ast.span) result
