(* Benchmark harness: regenerates every evaluation artifact of the paper.

   The paper (a framework paper) has no measured tables; its artifacts are
   Figures 1-10 (worked queries and plans) plus one quantitative claim: the
   ~20-fold speedup of a-priori pre-filtering over the direct SQL
   formulation on word-occurrence data (Sec. 1.3).  Each experiment below
   rebuilds the corresponding workload, runs the paper's plan(s) and the
   baselines, asserts they agree, and prints the shape the paper reports.

   Run:  dune exec bench/main.exe            (all experiments + bechamel)
         dune exec bench/main.exe -- E1 E5   (a subset)
         dune exec bench/main.exe -- quick   (smaller workloads)

   EXPERIMENTS.md records paper-claim vs measured for every run. *)

module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
open Qf_core

let quick = ref false
let json = ref false

(* {1 Small timing/printing toolkit} *)

(* Monotonic-enough wall clock.  [Sys.time] measures *CPU* time summed
   over every domain, so under the multicore executor it charges a
   4-domain run roughly 4x its elapsed time and speedups vanish from the
   report; wall clock is what the paper's end-to-end claims are about. *)
let now = Unix.gettimeofday

let time f =
  let t0 = now () in
  let v = f () in
  v, now () -. t0

(* Median of three runs: robust enough for the factor-level claims we
   check, without bechamel's per-run overhead on multi-second workloads. *)
let time3 f =
  let _, a = time f in
  let v, b = time f in
  let _, c = time f in
  let sorted = List.sort compare [ a; b; c ] in
  v, List.nth sorted 1

(* Best of [k] runs: on a shared container the interference (CFS quota
   throttling, neighbour noise) is strictly additive, so the smallest
   sample is the one nearest the true cost.  The E14 ablation compares
   engines against each other, and a single throttled sample in a
   median-of-3 can swing a ratio by an order of magnitude. *)
let time_best k f =
  let v, t0 = time f in
  let best = ref t0 in
  for _ = 2 to k do
    let _, t = time f in
    if t < !best then best := t
  done;
  v, !best

let header id title = Format.printf "@.=== %s: %s ===@." id title

let row fmt = Format.printf fmt

let check_equal name expected actual =
  if not (Relation.equal expected actual) then
    failwith (Printf.sprintf "%s: result mismatch!" name)

(* {1 E1 — Fig. 1 / Sec. 1.3: the ~20x a-priori speedup} *)

let e1 () =
  header "E1" "Fig. 1 + Sec. 1.3 — a-priori pre-filter vs direct pair counting";
  Format.printf
    "paper claim: rewriting the SQL of Fig. 1 to pre-filter items gave a \
     20-fold speedup on word-occurrence data@.";
  let docs = if !quick then 600 else 2500 in
  let config =
    {
      Qf_workload.Market.n_baskets = docs;
      n_items = docs * 10;
      avg_basket_size = 24;
      zipf_exponent = 0.85;
      seed = 101;
    }
  in
  let catalog = Qf_workload.Market.catalog config in
  let rows_count = Relation.cardinal (Catalog.find catalog "baskets") in
  Format.printf "workload: %d documents, %d vocabulary, %d occurrence rows@."
    config.n_baskets config.n_items rows_count;
  Format.printf "%-10s %14s %14s %10s %8s@." "support" "direct (s)"
    "apriori (s)" "speedup" "pairs";
  List.iter
    (fun support ->
      let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support in
      let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
      let plan =
        match Apriori_gen.singleton_plan flock with
        | Ok p -> p
        | Error e -> failwith e
      in
      let planned, t_plan = time3 (fun () -> Plan_exec.run catalog plan) in
      check_equal "E1" direct planned;
      row "%-10d %14.3f %14.3f %9.1fx %8d@." support t_direct t_plan
        (t_direct /. Float.max 1e-9 t_plan)
        (Relation.cardinal direct))
    (if !quick then [ 5; 10 ] else [ 10; 20; 50; 100 ])

(* {1 E2 — Fig. 2: the market-basket flock, all evaluators agree} *)

let e2 () =
  header "E2" "Fig. 2 — market-basket flock: naive = direct = plan = dynamic";
  let config =
    { Qf_workload.Market.default with n_baskets = 400; n_items = 50; seed = 7 }
  in
  let catalog = Qf_workload.Market.catalog config in
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
  let naive, t_naive = time (fun () -> Naive.run catalog flock) in
  let plan =
    match Apriori_gen.singleton_plan flock with Ok p -> p | Error e -> failwith e
  in
  let planned, t_plan = time3 (fun () -> Plan_exec.run catalog plan) in
  let dynamic, t_dyn =
    time3 (fun () ->
        match Dynamic.run catalog flock with
        | Ok r -> r.answers
        | Error e -> failwith e)
  in
  check_equal "E2 naive" direct naive;
  check_equal "E2 plan" direct planned;
  check_equal "E2 dynamic" direct dynamic;
  row "%-22s %10s %8s@." "evaluator" "time (s)" "pairs";
  row "%-22s %10.3f %8d@." "naive (oracle)" t_naive (Relation.cardinal naive);
  row "%-22s %10.3f %8d@." "direct (Fig. 1 SQL)" t_direct
    (Relation.cardinal direct);
  row "%-22s %10.3f %8d@." "a-priori plan" t_plan (Relation.cardinal planned);
  row "%-22s %10.3f %8d@." "dynamic (Sec. 4.4)" t_dyn (Relation.cardinal dynamic);
  row "all four evaluators agree: OK@."

(* {1 E3 — Figs. 3 & 5: the medical flock and its plan space} *)

let medical_flock support =
  Parse.flock_exn
    (Printf.sprintf
       {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= %d|}
       support)

let e3 () =
  header "E3"
    "Figs. 3 & 5 — medical side effects: the plan alternatives of Ex. 3.2";
  let config =
    {
      Qf_workload.Medical.default with
      n_patients = (if !quick then 2500 else 8000);
      n_symptoms = 12000;
      n_medicines = 2000;
      background_symptoms = 10;
      background_medicines = 3;
      symptom_zipf = 0.5;
      medicine_zipf = 0.5;
      seed = 31;
    }
  in
  let { Qf_workload.Medical.catalog; planted } =
    Qf_workload.Medical.generate config
  in
  let flock = medical_flock 20 in
  let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
  Format.printf
    "workload: %d patients; %d planted side effects; direct finds %d pairs in %.3fs@."
    config.n_patients (List.length planted) (Relation.cardinal direct) t_direct;
  row "%-34s %10s %9s@." "plan (paper Ex. 3.2 subqueries)" "time (s)" "speedup";
  let run_variant name param_sets =
    match Apriori_gen.param_set_plan flock ~param_sets with
    | Error e -> failwith (name ^ ": " ^ e)
    | Ok plan ->
      let result, t = time3 (fun () -> Plan_exec.run catalog plan) in
      check_equal name direct result;
      row "%-34s %10.3f %8.1fx@." name t (t_direct /. Float.max 1e-9 t)
  in
  row "%-34s %10.3f %9s@." "no filter (direct)" t_direct "1.0x";
  run_variant "filter $s (subquery 1)" [ [ "s" ] ];
  run_variant "filter $m (subquery 2)" [ [ "m" ] ];
  run_variant "filter $s and $m (Fig. 5)" [ [ "s" ]; [ "m" ] ];
  run_variant "filter ($s,$m) pairs (subquery 4)" [ [ "s"; "m" ] ];
  run_variant "all three filters" [ [ "s" ]; [ "m" ]; [ "s"; "m" ] ];
  let best = Optimizer.optimize catalog flock in
  let opt_result, t_opt = time3 (fun () -> Plan_exec.run catalog best) in
  check_equal "optimizer" direct opt_result;
  row "%-34s %10.3f %8.1fx  (%s)@." "cost-based optimizer's choice" t_opt
    (t_direct /. Float.max 1e-9 t_opt)
    (Explain.plan_summary best)

(* {1 E4 — Fig. 4 / Ex. 3.3: the union flock for connected words} *)

let web_flock support =
  Parse.flock_exn
    (Printf.sprintf
       {|QUERY:
answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
FILTER:
COUNT(answer(*)) >= %d|}
       support)

let e4 () =
  header "E4" "Fig. 4 + Ex. 3.3 — union flock: strongly connected words";
  let config =
    {
      Qf_workload.Webdocs.default with
      n_docs = (if !quick then 400 else 1200);
      n_anchors = (if !quick then 1500 else 6000);
      n_words = 5000;
      title_words = 7;
      anchor_words = 5;
      word_zipf = 0.5;
      seed = 41;
    }
  in
  let catalog = Qf_workload.Webdocs.generate config in
  row "%-10s %12s %12s %9s %7s@." "support" "direct (s)" "union plan" "speedup"
    "pairs";
  List.iter
    (fun support ->
      let flock = web_flock support in
      let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
      let plan =
        match Apriori_gen.singleton_plan flock with
        | Ok p -> p
        | Error e -> failwith e
      in
      let planned, t_plan = time3 (fun () -> Plan_exec.run catalog plan) in
      check_equal "E4" direct planned;
      row "%-10d %12.3f %12.3f %8.1fx %7d@." support t_direct t_plan
        (t_direct /. Float.max 1e-9 t_plan)
        (Relation.cardinal direct))
    [ 20; 40; 80 ];
  (* Ex. 3.3: each rule contributes exactly one (minimal) safe subquery for
     $1. *)
  let flock = web_flock 20 in
  List.iteri
    (fun i rule ->
      let cands = Qf_datalog.Subquery.for_params rule [ "1" ] in
      row "rule %d: %d safe subqueries restricting $1@." i (List.length cands))
    flock.Flock.query

(* {1 E5 — Figs. 6 & 7: the pathological path flock and its chain plan} *)

let e5 () =
  header "E5" "Figs. 6 & 7 — path flock: the (n+1)-step chain plan";
  let config =
    {
      Qf_workload.Graph.default with
      n_nodes = (if !quick then 250 else 500);
      max_out_degree = 50;
      seed = 51;
    }
  in
  let catalog = Qf_workload.Graph.generate config in
  row "graph: %d nodes, %d arcs@." config.n_nodes
    (Relation.cardinal (Catalog.find catalog "arc"));
  row "%-6s %12s %16s %9s %7s@." "n" "direct (s)" "chain plan (s)" "speedup"
    "nodes";
  List.iter
    (fun n ->
      let flock = Qf_workload.Graph.path_flock ~n ~support:20 in
      let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
      let plan = Qf_workload.Graph.chain_plan flock ~n in
      let planned, t_plan = time3 (fun () -> Plan_exec.run catalog plan) in
      check_equal "E5" direct planned;
      row "%-6d %12.3f %16.3f %8.1fx %7d@." n t_direct t_plan
        (t_direct /. Float.max 1e-9 t_plan)
        (Relation.cardinal direct))
    (if !quick then [ 1; 2 ] else [ 1; 2; 3; 4 ])

(* {1 E6 — Figs. 8 & 9 / Ex. 4.4: dynamic filter selection} *)

let e6 () =
  header "E6" "Figs. 8 & 9 — dynamic evaluation vs static plans";
  let run_one label config =
    let { Qf_workload.Medical.catalog; _ } =
      Qf_workload.Medical.generate config
    in
    let flock = medical_flock 20 in
    let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
    let static = Optimizer.optimize catalog flock in
    let s_result, t_static = time3 (fun () -> Plan_exec.run catalog static) in
    let d_result, t_dynamic =
      time3 (fun () ->
          match Dynamic.run catalog flock with
          | Ok r -> r
          | Error e -> failwith e)
    in
    check_equal "E6 static" direct s_result;
    check_equal "E6 dynamic" direct d_result.answers;
    let filters_taken =
      List.length
        (List.filter (fun (d : Dynamic.decision) -> d.filtered) d_result.trace)
    in
    row "%-26s %9.3f %9.3f %9.3f %11d@." label t_direct t_static t_dynamic
      filters_taken
  in
  row "%-26s %9s %9s %9s %11s@." "workload" "direct" "static" "dynamic"
    "dyn filters";
  let base =
    {
      Qf_workload.Medical.default with
      n_patients = (if !quick then 1500 else 5000);
      n_symptoms = 8000;
      n_medicines = 1500;
      background_symptoms = 10;
      background_medicines = 3;
      medicine_zipf = 0.5;
      seed = 61;
    }
  in
  run_one "skewed symptoms (z=1.2)" { base with symptom_zipf = 1.2 };
  run_one "mild skew (z=0.8)" { base with symptom_zipf = 0.8 };
  run_one "uniform symptoms (z=0)" { base with symptom_zipf = 0. };
  row
    "the dynamic executor decides per intermediate result (Ex. 4.4): filter \
     when tuples-per-assignment is low, skip when it is high@."

(* {1 E7 — Fig. 10: weighted baskets, monotone SUM filter} *)

let e7 () =
  header "E7" "Fig. 10 — weighted market baskets (monotone SUM filter)";
  let config =
    {
      Qf_workload.Market.default with
      n_baskets = (if !quick then 800 else 2500);
      n_items = 3000;
      zipf_exponent = 0.9;
      seed = 71;
    }
  in
  let catalog =
    Qf_workload.Market.catalog_with_importance ~max_weight:10 config
  in
  let flock support =
    Parse.flock_exn
      (Printf.sprintf
         {|QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2
FILTER:
SUM(answer.W) >= %d|}
         support)
  in
  row "%-10s %12s %12s %9s %7s@." "SUM >= s" "direct (s)" "plan (s)" "speedup"
    "pairs";
  List.iter
    (fun support ->
      let flock = flock support in
      let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
      let plan =
        match Apriori_gen.singleton_plan flock with
        | Ok p -> p
        | Error e -> failwith e
      in
      let planned, t_plan = time3 (fun () -> Plan_exec.run catalog plan) in
      check_equal "E7" direct planned;
      row "%-10d %12.3f %12.3f %8.1fx %7d@." support t_direct t_plan
        (t_direct /. Float.max 1e-9 t_plan)
        (Relation.cardinal direct))
    [ 100; 200; 400 ]

(* {1 E8 — Sec. 4.3 strategy 2 / footnote 3: levelwise = classic a-priori} *)

let e8 () =
  header "E8" "Sec. 4.3 — levelwise flock plan vs the dedicated a-priori miner";
  let config =
    {
      Qf_workload.Market.n_baskets = (if !quick then 800 else 3000);
      n_items = 2000;
      avg_basket_size = 10;
      zipf_exponent = 0.9;
      seed = 81;
    }
  in
  let catalog = Qf_workload.Market.catalog config in
  let db = Qf_apriori.Apriori.db_of_relation (Catalog.find catalog "baskets") in
  row "%-14s %14s %16s %14s %8s@." "k / support" "direct (s)" "flock plan (s)"
    "dedicated (s)" "k-sets";
  List.iter
    (fun (k, support) ->
      let flock, plan =
        Apriori_gen.levelwise_basket ~pred:"baskets" ~k ~support
      in
      let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
      let planned, t_plan = time3 (fun () -> Plan_exec.run catalog plan) in
      let classic, t_classic =
        time3 (fun () -> Qf_apriori.Apriori.frequent_of_size db ~support ~size:k)
      in
      check_equal "E8 plan" direct planned;
      if List.length classic <> Relation.cardinal direct then
        failwith "E8: classic a-priori disagrees with the flock";
      row "k=%d s=%-6d %14.3f %16.3f %14.3f %8d@." k support t_direct t_plan
        t_classic (Relation.cardinal direct))
    [ 2, 30; 2, 60; 3, 20 ]

(* {1 E9 — ablation: when does filtering pay? (Sec. 3.2 discussion)} *)

let e9 () =
  header "E9"
    "Sec. 3.2 ablation — filter benefit vs symptom skew, and the model's pick";
  let flock = medical_flock 20 in
  row "%-18s %12s %12s %12s %16s@." "symptom skew" "direct (s)" "okS plan (s)"
    "speedup" "model prefers";
  List.iter
    (fun skew ->
      let config =
        {
          Qf_workload.Medical.default with
          n_patients = (if !quick then 1500 else 4000);
          n_symptoms = 8000;
          background_symptoms = 10;
          symptom_zipf = skew;
          seed = 91;
        }
      in
      let { Qf_workload.Medical.catalog; _ } =
        Qf_workload.Medical.generate config
      in
      let direct, t_direct = time3 (fun () -> Direct.run catalog flock) in
      let plan =
        match Apriori_gen.param_set_plan flock ~param_sets:[ [ "s" ] ] with
        | Ok p -> p
        | Error e -> failwith e
      in
      let planned, t_plan = time3 (fun () -> Plan_exec.run catalog plan) in
      check_equal "E9" direct planned;
      let model_choice =
        match Optimizer.enumerate catalog flock with
        | best :: _ ->
          if best.Optimizer.param_sets = [] then "no filter"
          else
            String.concat "+"
              (List.map
                 (fun s -> "{$" ^ String.concat ",$" s ^ "}")
                 best.Optimizer.param_sets)
        | [] -> "-"
      in
      row "%-18.1f %12.3f %12.3f %11.1fx %16s@." skew t_direct t_plan
        (t_direct /. Float.max 1e-9 t_plan)
        model_choice)
    [ 0.4; 0.8; 1.2; 1.6 ]

(* {1 E10 — ablation of the executor's two optimizations} *)

let e10 () =
  header "E10"
    "ablation — semijoin reduction (Sec. 1.3 rewrite) and symmetric-step \
     reuse (Ex. 3.1)";
  let docs = if !quick then 600 else 2000 in
  let catalog =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.n_baskets = docs;
        n_items = docs * 10;
        avg_basket_size = 24;
        zipf_exponent = 0.85;
        seed = 103;
      }
  in
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let plan =
    match Apriori_gen.singleton_plan flock with Ok p -> p | Error e -> failwith e
  in
  let expected = Direct.run catalog flock in
  row "%-44s %10s@." "executor configuration" "time (s)";
  List.iter
    (fun (label, options) ->
      let result, t = time3 (fun () -> Plan_exec.run ~options catalog plan) in
      check_equal "E10" expected result;
      row "%-44s %10.3f@." label t)
    [
      ( "neither (plain binding-passing joins)",
        {
          Plan_exec.semijoin_reduction = false;
          symmetric_reuse = false;
          memoize = false;
        } );
      ( "symmetric reuse only",
        {
          Plan_exec.semijoin_reduction = false;
          symmetric_reuse = true;
          memoize = false;
        } );
      ( "semijoin reduction only",
        {
          Plan_exec.semijoin_reduction = true;
          symmetric_reuse = false;
          memoize = false;
        } );
      ( "both (no memo)",
        {
          Plan_exec.semijoin_reduction = true;
          symmetric_reuse = true;
          memoize = false;
        } );
    ];
  let _, t_direct = time3 (fun () -> Direct.run catalog flock) in
  row "%-44s %10.3f@." "direct (no plan at all)" t_direct

(* {1 E11 — Sec. 1.4: DBMS-based vs file-based mining} *)

let e11 () =
  header "E11"
    "Sec. 1.4 — DBMS-style flock evaluation vs ad-hoc file processing on \
     the same stored file";
  let docs = if !quick then 800 else 2500 in
  let catalog =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.n_baskets = docs;
        n_items = docs * 10;
        avg_basket_size = 24;
        zipf_exponent = 0.85;
        seed = 111;
      }
  in
  let baskets = Catalog.find catalog "baskets" in
  let path = Filename.temp_file "qf_e11" ".qfh" in
  let file = Qf_storage.Heap_file.create path (Relation.schema baskets) in
  Qf_storage.Heap_file.append_relation file baskets;
  Qf_storage.Heap_file.flush file;
  let pages =
    let ic = open_in_bin path in
    let n = in_channel_length ic / 4096 in
    close_in ic;
    n
  in
  row "heap file: %d occurrence rows, %d pages of 4 KiB@."
    (Relation.cardinal baskets) pages;
  row "%-10s %16s %18s %18s %7s@." "support" "flock plan (s)"
    "incl. load (s)" "file 2-pass (s)" "pairs";
  List.iter
    (fun support ->
      let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support in
      let plan =
        match Apriori_gen.singleton_plan flock with
        | Ok p -> p
        | Error e -> failwith e
      in
      (* DBMS path, data already loaded. *)
      let planned, t_plan = time3 (fun () -> Plan_exec.run catalog plan) in
      (* DBMS path including the load from disk. *)
      let _, t_load_and_plan =
        time3 (fun () ->
            let reopened = Qf_storage.Heap_file.open_existing path in
            let rel = Qf_storage.Heap_file.to_relation reopened in
            Qf_storage.Heap_file.close reopened;
            let cat = Catalog.create () in
            Catalog.add cat "baskets" rel;
            Plan_exec.run cat plan)
      in
      (* File path: streaming two-pass a-priori. *)
      let streamed, t_file =
        time3 (fun () ->
            Qf_storage.File_mining.frequent_pairs_relation file ~support)
      in
      check_equal "E11" planned streamed;
      row "%-10d %16.3f %18.3f %18.3f %7d@." support t_plan t_load_and_plan
        t_file
        (Relation.cardinal planned))
    [ 20; 50; 100 ];
  Qf_storage.Heap_file.close file;
  Sys.remove path;
  row
    "the paper's concession holds: the ad-hoc file algorithm beats the \
     DBMS-style evaluation, and by more when the load is charged too@."

(* {1 E12 — the multicore execution engine: domain-count scaling} *)

module Pool = Qf_exec_pool.Pool

type e12_entry = {
  workload : string;
  domains : int;
  best_s : float;
  speedup : float;
  cache_hits : int;
  cache_misses : int;
}

let e12_entries : e12_entry list ref = ref []

let e12_json_file = "BENCH_parallel.json"

let e12_write_json entries =
  let oc = open_out e12_json_file in
  let field (e : e12_entry) =
    Printf.sprintf
      {|    { "workload": %S, "domains": %d, "best_s": %.6f, "speedup": %.2f, "cache_hits": %d, "cache_misses": %d }|}
      e.workload e.domains e.best_s e.speedup e.cache_hits e.cache_misses
  in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E12\",\n  \"quick\": %b,\n  \"clock\": \
     \"wall\",\n  \"entries\": [\n%s\n  ]\n}\n"
    !quick
    (String.concat ",\n" (List.map field (List.rev entries)));
  close_out oc;
  row "wrote %s (%d entries)@." e12_json_file (List.length entries)

let e12 () =
  header "E12"
    "multicore execution engine — QF_DOMAINS sweep over the E1 and E3 \
     workloads";
  row
    "pool: %d domain(s) recommended by the runtime on this machine; sweep \
     forces 1/2/4/8@."
    (Domain.recommended_domain_count ());
  let sweep name catalog runs =
    row "@.%-30s %8s %12s %9s %12s@." name "domains" "best (s)" "speedup"
      "cache hit%";
    let sizes = [ 1; 2; 4; 8 ] in
    let nsizes = List.length sizes in
    (* Warm-up: build the shared index-cache entries once, so the counter
       pass below measures every pool size against the same warm cache
       (otherwise whichever size runs first absorbs all the misses). *)
    ignore (runs ());
    (* Pass 1 — correctness and counter attribution, once per pool size.
       The 1-domain run is the baseline; every other size must produce a
       [Relation.equal] result.  The index-cache counters live on a cache
       shared across every [Catalog.copy] a run makes, so a reset would
       clobber other runs' baselines and cumulative reads conflate runs:
       mark before, read the delta after. *)
    let baseline = ref None in
    let stats =
      List.map
        (fun size ->
          Pool.set_default_size size;
          let mark = Catalog.index_stats_mark catalog in
          let result = runs () in
          let hits, misses = Catalog.index_stats_since catalog mark in
          (match !baseline with
          | None -> baseline := Some result
          | Some expected ->
            check_equal (Printf.sprintf "E12 %s @ %d domains" name size)
              expected result);
          (size, hits, misses))
        sizes
    in
    (* Pass 2 — timing, round-robin: one sample per size per round, so a
       shared container's scheduling drift lands on every configuration
       equally instead of biasing whichever ran last.  [Gc.full_major]
       levels the heap before each sample (no configuration pays to
       collect another's garbage), and the per-size minimum over the
       rounds is the noise-robust estimator: interference is strictly
       additive, so with enough rounds every size touches its true
       floor.  (On a host with no parallel headroom the floors coincide
       by construction — the kernels never dispatch — so the reported
       speedups sit at 1.0 up to residual scheduler jitter.) *)
    let rounds = if !quick then 7 else 101 in
    let keep = if !quick then 3 else 11 in
    let samples = Array.make_matrix nsizes rounds infinity in
    let order = Array.init nsizes Fun.id in
    let sizes_arr = Array.of_list sizes in
    (* Clock-seeded: a fixed seed replays the same within-round order
       every invocation, so any aliasing against the container's CPU
       throttling period repeats identically instead of averaging out. *)
    let rng = ref (int_of_float (Unix.gettimeofday () *. 1e6) land 0x3FFFFFFF) in
    let next_rng () =
      rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
      (!rng lsr 12) land 0x7FFF
    in
    for round = 0 to rounds - 1 do
      (* Shuffle the within-round order (Fisher–Yates): a fixed order
         gives every configuration a fixed phase inside the round, and
         on a CPU-quota'd container that phase aliases with the
         scheduler's throttling period — a positional bias no per-size
         estimator can remove.  Randomized order turns it into noise. *)
      for i = nsizes - 1 downto 1 do
        let j = next_rng () mod (i + 1) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      Array.iter
        (fun i ->
          Pool.set_default_size sizes_arr.(i);
          Gc.full_major ();
          let _, t = time runs in
          samples.(i).(round) <- t)
        order
    done;
    (* Estimator: mean of the [keep] smallest samples.  Interference is
       strictly additive, so the smallest samples sit nearest the true
       cost; averaging several of them has far less variance than the
       raw minimum, and the slight common upward bias cancels in the
       speedup ratio. *)
    let best =
      Array.map
        (fun row ->
          let sorted = Array.copy row in
          Array.sort compare sorted;
          let s = ref 0. in
          for i = 0 to keep - 1 do
            s := !s +. sorted.(i)
          done;
          !s /. float_of_int keep)
        samples
    in
    let t1 = best.(0) in
    List.iteri
      (fun i (size, hits, misses) ->
        let t = best.(i) in
        let hit_pct =
          if hits + misses = 0 then 0.
          else 100. *. float_of_int hits /. float_of_int (hits + misses)
        in
        e12_entries :=
          {
            workload = name;
            domains = size;
            best_s = t;
            speedup = t1 /. Float.max 1e-9 t;
            cache_hits = hits;
            cache_misses = misses;
          }
          :: !e12_entries;
        row "%-30s %8d %12.3f %8.2fx %11.1f%%@." name size t
          (t1 /. Float.max 1e-9 t)
          hit_pct)
      stats
  in
  (* The E1 market workload under its a-priori plan. *)
  let docs = if !quick then 600 else 2500 in
  let market =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.n_baskets = docs;
        n_items = docs * 10;
        avg_basket_size = 24;
        zipf_exponent = 0.85;
        seed = 101;
      }
  in
  let pair_flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let pair_plan =
    match Apriori_gen.singleton_plan pair_flock with
    | Ok p -> p
    | Error e -> failwith e
  in
  sweep "E1 market / a-priori plan" market (fun () ->
      Plan_exec.run market pair_plan);
  (* The E3 medical workload under the Fig. 5 two-filter plan. *)
  let mconfig =
    {
      Qf_workload.Medical.default with
      n_patients = (if !quick then 2500 else 8000);
      n_symptoms = 12000;
      n_medicines = 2000;
      background_symptoms = 10;
      background_medicines = 3;
      symptom_zipf = 0.5;
      medicine_zipf = 0.5;
      seed = 31;
    }
  in
  let { Qf_workload.Medical.catalog = medical; _ } =
    Qf_workload.Medical.generate mconfig
  in
  let med_flock = medical_flock 20 in
  let med_plan =
    match
      Apriori_gen.param_set_plan med_flock ~param_sets:[ [ "s" ]; [ "m" ] ]
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  sweep "E3 medical / Fig. 5 plan" medical (fun () ->
      Plan_exec.run medical med_plan);
  (* Restore whatever QF_DOMAINS / the hardware asked for. *)
  Pool.set_default_size (Pool.default_size ());
  if !json then e12_write_json !e12_entries

(* {1 E13 — estimator accuracy: System-R estimates vs observed counts} *)

type e13_entry = {
  e13_workload : string;
  e13_step : string;
  e13_est_groups : float;
  e13_obs_groups : int;
  e13_est_rows : float;
  e13_obs_rows : int;
  e13_q_groups : float;
  e13_q_rows : float;
}

let e13_entries : e13_entry list ref = ref []

let e13_json_file = "BENCH_estimator.json"

(* Multiplicative estimation error, floored at 1 on both sides so empty
   steps do not divide by zero: q = max(est/act, act/est) >= 1, with 1
   meaning a perfect estimate. *)
let q_error est act =
  let e = Float.max 1. est and a = Float.max 1. (float_of_int act) in
  Float.max (e /. a) (a /. e)

let e13_write_json entries =
  let oc = open_out e13_json_file in
  let field (e : e13_entry) =
    Printf.sprintf
      {|    { "workload": %S, "step": %S, "est_groups": %.3f, "groups": %d, "est_rows": %.3f, "rows_out": %d, "q_groups": %.3f, "q_rows": %.3f }|}
      e.e13_workload e.e13_step e.e13_est_groups e.e13_obs_groups
      e.e13_est_rows e.e13_obs_rows e.e13_q_groups e.e13_q_rows
  in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E13\",\n  \"quick\": %b,\n  \"metric\": \
     \"q_error\",\n  \"entries\": [\n%s\n  ]\n}\n"
    !quick
    (String.concat ",\n" (List.map field (List.rev entries)));
  close_out oc;
  row "wrote %s (%d entries)@." e13_json_file (List.length entries)

let e13 () =
  header "E13"
    "estimator accuracy — per-step estimated vs observed cardinalities \
     (q-error, 1.0 = perfect)";
  let examine name catalog plan =
    let estimates = Cost.plan_step_estimates (Cost.of_catalog catalog) plan in
    let report = Plan_exec.run_with_report catalog plan in
    row "@.%-26s %-14s %11s %8s %10s %9s %7s %7s@." name "step" "est_grps"
      "groups" "est_rows" "rows_out" "q(grp)" "q(rows)";
    let worst = ref 1. in
    List.iter2
      (fun (est : Cost.step_estimate) (r : Plan_exec.step_report) ->
        (* A step aliased by symmetry never tabulates, so its reported
           group count is just the reused output size; the group estimate
           only applies to computed steps. *)
        let reused = r.Plan_exec.reused_from <> None in
        let qg =
          if reused then 1. else q_error est.Cost.est_groups r.Plan_exec.groups
        in
        let qr = q_error est.Cost.est_rows r.Plan_exec.survivors in
        worst := Float.max !worst (Float.max qg qr);
        e13_entries :=
          {
            e13_workload = name;
            e13_step = est.Cost.step;
            e13_est_groups = est.Cost.est_groups;
            e13_obs_groups = r.Plan_exec.groups;
            e13_est_rows = est.Cost.est_rows;
            e13_obs_rows = r.Plan_exec.survivors;
            e13_q_groups = qg;
            e13_q_rows = qr;
          }
          :: !e13_entries;
        row "%-26s %-14s %11.1f %8d %10.1f %9d %7s %6.2fx@." "" est.Cost.step
          est.Cost.est_groups r.Plan_exec.groups est.Cost.est_rows
          r.Plan_exec.survivors
          (if reused then "reused" else Printf.sprintf "%.2fx" qg)
          qr)
      estimates report.Plan_exec.steps;
    row "%-26s worst q-error %.2fx@." "" !worst
  in
  (* Same workloads and plans as E12's scaling sweep (E1 market under its
     a-priori plan, E3 medical under the Fig. 5 two-filter plan), so the
     estimator is judged exactly where the end-to-end claims are made. *)
  let docs = if !quick then 600 else 2500 in
  let market =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.n_baskets = docs;
        n_items = docs * 10;
        avg_basket_size = 24;
        zipf_exponent = 0.85;
        seed = 101;
      }
  in
  let pair_flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let pair_plan =
    match Apriori_gen.singleton_plan pair_flock with
    | Ok p -> p
    | Error e -> failwith e
  in
  examine "E1 market / a-priori plan" market pair_plan;
  let mconfig =
    {
      Qf_workload.Medical.default with
      n_patients = (if !quick then 2500 else 8000);
      n_symptoms = 12000;
      n_medicines = 2000;
      background_symptoms = 10;
      background_medicines = 3;
      symptom_zipf = 0.5;
      medicine_zipf = 0.5;
      seed = 31;
    }
  in
  let { Qf_workload.Medical.catalog = medical; _ } =
    Qf_workload.Medical.generate mconfig
  in
  let med_flock = medical_flock 20 in
  let med_plan =
    match
      Apriori_gen.param_set_plan med_flock ~param_sets:[ [ "s" ]; [ "m" ] ]
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  examine "E3 medical / Fig. 5 plan" medical med_plan;
  if !json then e13_write_json !e13_entries

(* {1 E14 — physical layout ablation: row vs columnar kernels × domains} *)

module Layout = Qf_relational.Layout

type e14_entry = {
  e14_workload : string;
  e14_layout : string;
  e14_domains : int;
  e14_best_s : float;
  e14_vs_row : float;
      (* row best / this engine's best at the same domain count *)
}

let e14_entries : e14_entry list ref = ref []

let e14_json_file = "BENCH_columnar.json"

let e14_write_json entries =
  let oc = open_out e14_json_file in
  let field (e : e14_entry) =
    Printf.sprintf
      {|    { "workload": %S, "layout": %S, "domains": %d, "best_s": %.6f, "vs_row": %.2f }|}
      e.e14_workload e.e14_layout e.e14_domains e.e14_best_s e.e14_vs_row
  in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E14\",\n  \"quick\": %b,\n  \"clock\": \
     \"wall\",\n  \"entries\": [\n%s\n  ]\n}\n"
    !quick
    (String.concat ",\n" (List.map field (List.rev entries)));
  close_out oc;
  row "wrote %s (%d entries)@." e14_json_file (List.length entries)

let e14 () =
  header "E14"
    "physical layout ablation — row vs columnar kernels over the E1 and E3 \
     plans, per pool size";
  row
    "both layouts compute identical result sets; vs_row is the row \
     engine's best over this engine's best at the same domain count@.";
  let reps = if !quick then 3 else 7 in
  let ablate name runs =
    row "@.%-30s %8s %10s %12s %9s@." name "domains" "layout" "best (s)"
      "vs row";
    (* Warm both layouts once before anything is timed: the first
       execution under each layout pays one-time costs the others don't —
       materializing that layout's representation of the base relations
       and populating the version-keyed index cache.  Without this the
       first configs in sweep order absorb those costs and the ratios are
       distorted (the very effect the E12 sweep's warm-up removes). *)
    List.iter
      (fun mode ->
        Layout.set_override (Some mode);
        ignore (runs ());
        Layout.set_override None)
      [ Layout.Row; Layout.Columnar ];
    let expected = ref None in
    List.iter
      (fun domains ->
        Pool.set_default_size domains;
        let t_row = ref nan in
        List.iter
          (fun mode ->
            Layout.set_override (Some mode);
            Gc.compact ();
            let result, t = time_best reps runs in
            Layout.set_override None;
            (match !expected with
            | None -> expected := Some result
            | Some e ->
              check_equal
                (Printf.sprintf "E14 %s / %s @ %d domains" name
                   (Layout.to_string mode) domains)
                e result);
            let vs_row =
              match mode with
              | Layout.Row ->
                t_row := t;
                1.
              | Layout.Columnar -> !t_row /. Float.max 1e-9 t
            in
            e14_entries :=
              {
                e14_workload = name;
                e14_layout = Layout.to_string mode;
                e14_domains = domains;
                e14_best_s = t;
                e14_vs_row = vs_row;
              }
              :: !e14_entries;
            row "%-30s %8d %10s %12.3f %8.2fx@." name domains
              (Layout.to_string mode) t vs_row)
          [ Layout.Row; Layout.Columnar ])
      [ 1; 2; 4 ]
  in
  (* Same workloads and plans as E12, so the layout ablation reads against
     the same baseline the scaling sweep established. *)
  let docs = if !quick then 600 else 2500 in
  let market =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.n_baskets = docs;
        n_items = docs * 10;
        avg_basket_size = 24;
        zipf_exponent = 0.85;
        seed = 101;
      }
  in
  let pair_flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let pair_plan =
    match Apriori_gen.singleton_plan pair_flock with
    | Ok p -> p
    | Error e -> failwith e
  in
  ablate "E1 market / a-priori plan" (fun () ->
      Plan_exec.run market pair_plan);
  let mconfig =
    {
      Qf_workload.Medical.default with
      n_patients = (if !quick then 2500 else 8000);
      n_symptoms = 12000;
      n_medicines = 2000;
      background_symptoms = 10;
      background_medicines = 3;
      symptom_zipf = 0.5;
      medicine_zipf = 0.5;
      seed = 31;
    }
  in
  let { Qf_workload.Medical.catalog = medical; _ } =
    Qf_workload.Medical.generate mconfig
  in
  let med_flock = medical_flock 20 in
  let med_plan =
    match
      Apriori_gen.param_set_plan med_flock ~param_sets:[ [ "s" ]; [ "m" ] ]
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  ablate "E3 medical / Fig. 5 plan" (fun () ->
      Plan_exec.run medical med_plan);
  Pool.set_default_size (Pool.default_size ());
  if !json then e14_write_json !e14_entries

(* {1 Bechamel micro-benchmarks: one Test per experiment's core contrast} *)

let bechamel_suite () =
  header "BECHAMEL"
    "micro-benchmarks (OLS time/run) — one test pair per experiment";
  let open Bechamel in
  let market =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.default with
        n_baskets = 300;
        n_items = 150;
        zipf_exponent = 1.1;
        seed = 201;
      }
  in
  let pair_flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:15 in
  let pair_plan =
    match Apriori_gen.singleton_plan pair_flock with
    | Ok p -> p
    | Error e -> failwith e
  in
  let medical =
    (Qf_workload.Medical.generate
       { Qf_workload.Medical.default with n_patients = 800; seed = 202 })
      .catalog
  in
  let med_flock = medical_flock 10 in
  let med_plan =
    match Apriori_gen.singleton_plan med_flock with
    | Ok p -> p
    | Error e -> failwith e
  in
  let graph =
    Qf_workload.Graph.generate
      {
        Qf_workload.Graph.default with
        n_nodes = 200;
        max_out_degree = 30;
        seed = 203;
      }
  in
  let path = Qf_workload.Graph.path_flock ~n:2 ~support:15 in
  let chain = Qf_workload.Graph.chain_plan path ~n:2 in
  let webdocs =
    Qf_workload.Webdocs.generate
      {
        Qf_workload.Webdocs.default with
        n_docs = 200;
        n_anchors = 600;
        seed = 204;
      }
  in
  let web = web_flock 10 in
  let web_plan =
    match Apriori_gen.singleton_plan web with Ok p -> p | Error e -> failwith e
  in
  let stage f = Staged.stage f in
  let tests =
    [
      Test.make ~name:"E1/direct" (stage (fun () -> Direct.run market pair_flock));
      Test.make ~name:"E1/apriori"
        (stage (fun () -> Plan_exec.run market pair_plan));
      Test.make ~name:"E3/direct" (stage (fun () -> Direct.run medical med_flock));
      Test.make ~name:"E3/fig5-plan"
        (stage (fun () -> Plan_exec.run medical med_plan));
      Test.make ~name:"E5/direct" (stage (fun () -> Direct.run graph path));
      Test.make ~name:"E5/chain" (stage (fun () -> Plan_exec.run graph chain));
      Test.make ~name:"E4/direct" (stage (fun () -> Direct.run webdocs web));
      Test.make ~name:"E4/union-plan"
        (stage (fun () -> Plan_exec.run webdocs web_plan));
      Test.make ~name:"E6/dynamic"
        (stage (fun () ->
             match Dynamic.run medical med_flock with
             | Ok r -> r.answers
             | Error e -> failwith e));
    ]
  in
  let grouped = Test.make_grouped ~name:"query-flocks" ~fmt:"%s %s" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.6) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  row "%-36s %16s@." "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else Printf.sprintf "%8.2f us" (ns /. 1e3)
      in
      row "%-36s %16s@." name pretty)
    rows

(* {1 E15 — certified-bound clamping: estimator q-error before vs after} *)

(* E13 flags the multi-parameter final steps as the estimator's weak spot:
   their group estimate is a product of per-parameter distinct counts and
   ignores every join constraint.  The abstract interpreter's certified
   bounds (Absint.certify_plan) cap exactly those products with provable
   row/group ceilings; E15 reruns E13's workloads and reports the q-error
   of the raw estimates next to the clamped min(estimate, bound) ones. *)

type e15_entry = {
  e15_workload : string;
  e15_step : string;
  e15_params : int;
  e15_q_groups_plain : float;
  e15_q_groups_clamped : float;
  e15_q_rows_plain : float;
  e15_q_rows_clamped : float;
}

let e15_entries : e15_entry list ref = ref []
let e15_json_file = "BENCH_absint.json"

let median = function
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let e15_write_json entries ~median_plain ~median_clamped =
  let oc = open_out e15_json_file in
  let field (e : e15_entry) =
    Printf.sprintf
      {|    { "workload": %S, "step": %S, "params": %d, "q_groups_plain": %.3f, "q_groups_clamped": %.3f, "q_rows_plain": %.3f, "q_rows_clamped": %.3f }|}
      e.e15_workload e.e15_step e.e15_params e.e15_q_groups_plain
      e.e15_q_groups_clamped e.e15_q_rows_plain e.e15_q_rows_clamped
  in
  Printf.fprintf oc
    "{\n  \"experiment\": \"E15\",\n  \"quick\": %b,\n  \"metric\": \
     \"q_error\",\n  \"multi_param_final_steps\": { \
     \"median_q_groups_plain\": %.3f, \"median_q_groups_clamped\": %.3f \
     },\n  \"entries\": [\n%s\n  ]\n}\n"
    !quick median_plain median_clamped
    (String.concat ",\n" (List.map field (List.rev entries)));
  close_out oc;
  row "wrote %s (%d entries)@." e15_json_file (List.length entries)

let e15 () =
  header "E15"
    "certified-bound clamping — estimator q-error before vs after \
     min(estimate, bound)";
  let examine name catalog plan =
    let env = Cost.of_catalog catalog in
    let clamps = Qf_analysis.Absint.clamps_of_plan catalog plan in
    let plain = Cost.plan_step_estimates env plan in
    let clamped = Cost.plan_step_estimates ~clamps env plan in
    let report = Plan_exec.run_with_report catalog plan in
    let steps = Plan.all_steps plan in
    row "@.%-26s %-14s %8s %9s %9s %9s %9s@." name "step" "params"
      "q(grp)" "clamped" "q(rows)" "clamped";
    List.iteri
      (fun i (s : Plan.step) ->
        let p = List.nth plain i
        and c = List.nth clamped i
        and r = List.nth report.Plan_exec.steps i in
        let reused = r.Plan_exec.reused_from <> None in
        let qgp =
          if reused then 1. else q_error p.Cost.est_groups r.Plan_exec.groups
        in
        let qgc =
          if reused then 1. else q_error c.Cost.est_groups r.Plan_exec.groups
        in
        let qrp = q_error p.Cost.est_rows r.Plan_exec.survivors in
        let qrc = q_error c.Cost.est_rows r.Plan_exec.survivors in
        e15_entries :=
          {
            e15_workload = name;
            e15_step = s.Plan.name;
            e15_params = List.length s.Plan.params;
            e15_q_groups_plain = qgp;
            e15_q_groups_clamped = qgc;
            e15_q_rows_plain = qrp;
            e15_q_rows_clamped = qrc;
          }
          :: !e15_entries;
        row "%-26s %-14s %8d %8.2fx %8.2fx %8.2fx %8.2fx@." "" s.Plan.name
          (List.length s.Plan.params)
          qgp qgc qrp qrc)
      steps
  in
  (* E13's exact workloads and plans, so before/after is apples to apples. *)
  let docs = if !quick then 600 else 2500 in
  let market =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.n_baskets = docs;
        n_items = docs * 10;
        avg_basket_size = 24;
        zipf_exponent = 0.85;
        seed = 101;
      }
  in
  let pair_flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let pair_plan =
    match Apriori_gen.singleton_plan pair_flock with
    | Ok p -> p
    | Error e -> failwith e
  in
  examine "E1 market / a-priori plan" market pair_plan;
  let mconfig =
    {
      Qf_workload.Medical.default with
      n_patients = (if !quick then 2500 else 8000);
      n_symptoms = 12000;
      n_medicines = 2000;
      background_symptoms = 10;
      background_medicines = 3;
      symptom_zipf = 0.5;
      medicine_zipf = 0.5;
      seed = 31;
    }
  in
  let { Qf_workload.Medical.catalog = medical; _ } =
    Qf_workload.Medical.generate mconfig
  in
  let med_flock = medical_flock 20 in
  let med_plan =
    match
      Apriori_gen.param_set_plan med_flock ~param_sets:[ [ "s" ]; [ "m" ] ]
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  examine "E3 medical / Fig. 5 plan" medical med_plan;
  (* The headline number: median q-error of the GROUP estimates on the
     multi-parameter final steps E13 flags — the per-parameter products
     the certified bounds provably cap. *)
  let multi =
    List.filter (fun e -> e.e15_params >= 2) !e15_entries
  in
  let median_plain = median (List.map (fun e -> e.e15_q_groups_plain) multi)
  and median_clamped =
    median (List.map (fun e -> e.e15_q_groups_clamped) multi)
  in
  row "@.%-26s median group q-error (multi-param steps): %.2fx -> %.2fx@." ""
    median_plain median_clamped;
  if not (median_clamped < median_plain) then
    row "%-26s WARNING: clamping did not strictly reduce the median@." "";
  if !json then e15_write_json !e15_entries ~median_plain ~median_clamped

(* {1 E16 — sideways information passing and the cross-level subplan memo} *)

type e16_entry = {
  e16_config : string;
  e16_best_s : float;
  e16_speedup : float;
  e16_tabulated : int;
  e16_sip_pruned : int;
  e16_memo_hits : int;
}

let e16_json_file = "BENCH_sip.json"

let e16_write_json entries ~pruned_ratio =
  let oc = open_out e16_json_file in
  let field e =
    Printf.sprintf
      {|    { "config": %S, "best_s": %.6f, "speedup": %.2f, "tabulated_rows": %d, "sip_pruned": %d, "memo_hits": %d }|}
      e.e16_config e.e16_best_s e.e16_speedup e.e16_tabulated e.e16_sip_pruned
      e.e16_memo_hits
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E16\",\n\
    \  \"quick\": %b,\n\
    \  \"clock\": \"wall\",\n\
    \  \"workload\": \"levelwise basket chain k=2..4\",\n\
    \  \"rows_pruned_ratio\": %.4f,\n\
    \  \"entries\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    !quick pruned_ratio
    (String.concat ",\n" (List.map field entries));
  close_out oc;
  row "wrote %s (%d entries)@." e16_json_file (List.length entries)

let e16 () =
  header "E16"
    "sideways information passing + cross-level memo — levelwise chain k=2..4";
  let support = 18 in
  let catalog =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.n_baskets = (if !quick then 300 else 1000);
        n_items = 400;
        avg_basket_size = 8;
        zipf_exponent = 0.9;
        seed = 16;
      }
  in
  let plans =
    List.map
      (fun k -> snd (Apriori_gen.levelwise_basket ~pred:"baskets" ~k ~support))
      [ 2; 3; 4 ]
  in
  (* Three configurations of the same chain.  "off" is the pre-SIP executor
     (symmetry reuse stays on in all three — it predates this ablation);
     "sjr" adds the semijoin reducers; "full" adds the cross-level memo,
     whose hits cascade because level k-1's final query is α-equivalent to
     one of level k's auxiliary steps.  The memo is cleared before every
     sample, so "full" measures the intra-chain cascade, not a warm cache
     left over from a previous round. *)
  let configs =
    [
      ( "off",
        { Plan_exec.semijoin_reduction = false;
          symmetric_reuse = true;
          memoize = false;
        },
        0 );
      ( "sjr",
        { Plan_exec.semijoin_reduction = true;
          symmetric_reuse = true;
          memoize = false;
        },
        0 );
      ( "full",
        { Plan_exec.semijoin_reduction = true;
          symmetric_reuse = true;
          memoize = true;
        },
        max_int );
    ]
  in
  let prepare budget =
    Catalog.set_memo_budget catalog budget;
    Catalog.memo_clear catalog
  in
  let chain options =
    List.map (fun plan -> Plan_exec.run ~options catalog plan) plans
  in
  (* Correctness: every configuration returns byte-identical k-sets. *)
  let baseline =
    let _, options, budget = List.hd configs in
    prepare budget;
    chain options
  in
  List.iter
    (fun (name, options, budget) ->
      prepare budget;
      List.iter2
        (fun expected got ->
          check_equal (Printf.sprintf "E16 %s" name) expected got)
        baseline (chain options))
    (List.tl configs);
  (* Metrics pass: per-config totals over the chain's step reports. *)
  let metrics =
    List.map
      (fun (name, options, budget) ->
        prepare budget;
        let steps =
          List.concat_map
            (fun plan ->
              (Plan_exec.run_with_report ~options catalog plan).Plan_exec.steps)
            plans
        in
        let sum f = List.fold_left (fun acc s -> acc + f s) 0 steps in
        ( name,
          ( sum (fun s -> s.Plan_exec.tabulated_rows),
            sum (fun s -> s.Plan_exec.sip_pruned),
            List.length (List.filter (fun s -> s.Plan_exec.memo_hit) steps) ) ))
      configs
  in
  (* Timing — round-robin shuffled rounds with the min-of-keep estimator,
     exactly E12's protocol (see the comments there for why). *)
  let rounds = if !quick then 7 else 31 in
  let keep = if !quick then 3 else 7 in
  let configs_arr = Array.of_list configs in
  let nconfigs = Array.length configs_arr in
  let samples = Array.make_matrix nconfigs rounds infinity in
  let order = Array.init nconfigs Fun.id in
  let rng = ref (int_of_float (Unix.gettimeofday () *. 1e6) land 0x3FFFFFFF) in
  let next_rng () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    (!rng lsr 12) land 0x7FFF
  in
  for round = 0 to rounds - 1 do
    for i = nconfigs - 1 downto 1 do
      let j = next_rng () mod (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    Array.iter
      (fun i ->
        let _, options, budget = configs_arr.(i) in
        prepare budget;
        Gc.full_major ();
        let _, t = time (fun () -> chain options) in
        samples.(i).(round) <- t)
      order
  done;
  let best =
    Array.map
      (fun row ->
        let sorted = Array.copy row in
        Array.sort compare sorted;
        let s = ref 0. in
        for i = 0 to keep - 1 do
          s := !s +. sorted.(i)
        done;
        !s /. float_of_int keep)
      samples
  in
  let t_off = best.(0) in
  row "@.%-8s %12s %9s %14s %12s %10s@." "config" "best (s)" "speedup"
    "tabulated" "sip pruned" "memo hits";
  let entries =
    List.mapi
      (fun i (name, _, _) ->
        let tabulated, sip_pruned, memo_hits = List.assoc name metrics in
        let speedup = t_off /. best.(i) in
        row "%-8s %12.3f %8.2fx %14d %12d %10d@." name best.(i) speedup
          tabulated sip_pruned memo_hits;
        {
          e16_config = name;
          e16_best_s = best.(i);
          e16_speedup = speedup;
          e16_tabulated = tabulated;
          e16_sip_pruned = sip_pruned;
          e16_memo_hits = memo_hits;
        })
      configs
  in
  let tabulated name =
    let t, _, _ = List.assoc name metrics in
    t
  in
  let pruned_ratio =
    1. -. (float_of_int (tabulated "full") /. float_of_int (tabulated "off"))
  in
  let full = List.nth entries 2 in
  row
    "@.%-26s rows-pruned ratio (1 - tabulated_full/tabulated_off): %.2f; \
     full-vs-off speedup: %.2fx@."
    "" pruned_ratio full.e16_speedup;
  if full.e16_speedup < 1.3 then
    row "%-26s WARNING: full config below the 1.3x acceptance floor@." "";
  if !json then e16_write_json entries ~pruned_ratio

(* {1 E17: resource-governed spill ablation}

   The same levelwise mining chain under shrinking memory budgets: the
   unbounded run is the in-memory baseline, the governed runs force the
   group-by/join kernels through the Grace-style spill paths.  The claim
   under test is graceful degradation — identical answers at every
   budget, spilling visible in the governor's stats, and a bounded
   slowdown (disk pages instead of an OOM kill). *)

module Governor = Qf_governor.Governor

let e17_json_file = "BENCH_spill.json"

type e17_entry = {
  e17_budget : string;
  e17_best_s : float;
  e17_slowdown : float;
  e17_peak_bytes : int;
  e17_spill_partitions : int;
  e17_spilled_rows : int;
}

let e17_write_json entries =
  let oc = open_out e17_json_file in
  let field e =
    Printf.sprintf
      {|    { "budget": %S, "best_s": %.6f, "slowdown": %.2f, "peak_bytes": %d, "spill_partitions": %d, "spilled_rows": %d }|}
      e.e17_budget e.e17_best_s e.e17_slowdown e.e17_peak_bytes
      e.e17_spill_partitions e.e17_spilled_rows
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E17\",\n\
    \  \"quick\": %b,\n\
    \  \"clock\": \"wall\",\n\
    \  \"workload\": \"levelwise basket chain k=3 under memory budgets\",\n\
    \  \"entries\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    !quick
    (String.concat ",\n" (List.map field entries));
  close_out oc;
  row "wrote %s (%d entries)@." e17_json_file (List.length entries)

let e17 () =
  header "E17" "resource governor: spill-to-disk ablation over memory budgets";
  let support = 18 in
  let catalog =
    Qf_workload.Market.catalog
      {
        Qf_workload.Market.n_baskets = (if !quick then 300 else 1000);
        n_items = 400;
        avg_basket_size = 8;
        zipf_exponent = 0.9;
        seed = 17;
      }
  in
  let _, plan = Apriori_gen.levelwise_basket ~pred:"baskets" ~k:3 ~support in
  let reps = if !quick then 3 else 5 in
  let budgets =
    [ "unbounded", max_int; "1m", 1024 * 1024; "64k", 65536 ]
  in
  let run_with budget =
    let stats = ref None in
    let result, best =
      time_best reps (fun () ->
          (* A memo hit would skip the kernels entirely and no budget
             could ever trip; every sample executes the plan cold. *)
          Catalog.memo_clear catalog;
          let g = Governor.create ~mem_budget:budget () in
          let r = Governor.with_ctx g (fun () -> Plan_exec.run catalog plan) in
          stats := Some (Governor.stats g);
          r)
    in
    result, best, Option.get !stats
  in
  let baseline_result, baseline_best, baseline_stats = run_with max_int in
  let entries =
    List.map
      (fun (name, budget) ->
        let result, best, stats =
          if budget = max_int then
            baseline_result, baseline_best, baseline_stats
          else run_with budget
        in
        check_equal (Printf.sprintf "E17 %s" name) baseline_result result;
        row
          "%-26s best %.4fs  slowdown %.2fx  peak %d bytes  %d spill \
           partitions (%d rows)@."
          (Printf.sprintf "budget %s" name)
          best (best /. baseline_best) stats.Governor.peak_bytes
          stats.Governor.spill_partitions stats.Governor.spilled_rows;
        {
          e17_budget = name;
          e17_best_s = best;
          e17_slowdown = best /. baseline_best;
          e17_peak_bytes = stats.Governor.peak_bytes;
          e17_spill_partitions = stats.Governor.spill_partitions;
          e17_spilled_rows = stats.Governor.spilled_rows;
        })
      budgets
  in
  let governed = List.nth entries 2 in
  if governed.e17_spill_partitions = 0 then
    row "%-26s WARNING: the 64k budget never spilled@." "";
  if !json then e17_write_json entries

(* {1 Driver} *)

let all_experiments =
  [
    "E1", e1;
    "E2", e2;
    "E3", e3;
    "E4", e4;
    "E5", e5;
    "E6", e6;
    "E7", e7;
    "E8", e8;
    "E9", e9;
    "E10", e10;
    "E11", e11;
    "E12", e12;
    "E13", e13;
    "E14", e14;
    "E15", e15;
    "E16", e16;
    "E17", e17;
    "BECHAMEL", bechamel_suite;
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        match String.lowercase_ascii a with
        | "quick" ->
          quick := true;
          false
        | "--json" ->
          json := true;
          false
        | _ -> true)
      args
  in
  let selected =
    match args with
    | [] -> all_experiments
    | names -> List.filter (fun (id, _) -> List.mem id names) all_experiments
  in
  Format.printf "Query Flocks (SIGMOD 1998) — benchmark harness%s@."
    (if !quick then " [quick]" else "");
  List.iter (fun (_, f) -> f ()) selected;
  Format.printf "@.done.@."
