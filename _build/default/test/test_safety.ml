(* Safety (Sec. 3.2-3.3) and safe-subquery enumeration (Sec. 3.1),
   including the paper's own counts for Examples 3.1 and 3.2. *)
open Qf_datalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rule text =
  match Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" text e

let medical =
  "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND \
   NOT causes(D,$s)"

let test_safe_basic () =
  check_bool "market-basket rule is safe" true
    (Safety.is_safe (rule "answer(B) :- baskets(B,$1) AND baskets(B,$2)"));
  check_bool "medical rule is safe" true (Safety.is_safe (rule medical))

let test_head_variable_must_be_bound () =
  check_bool "unbound head var" false
    (Safety.is_safe (rule "answer(P) :- q(X,$a)"));
  check_bool "head var only in negation" false
    (Safety.is_safe (rule "answer(P) :- q(X,$a) AND NOT r(P)"));
  check_bool "head var only in comparison" false
    (Safety.is_safe (rule "answer(P) :- q(X,$a) AND P < X"))

let test_negated_variables_must_be_bound () =
  check_bool "negation var unbound" false
    (Safety.is_safe (rule "answer(P) :- exhibits(P,$s) AND NOT causes(D,$s)"));
  check_bool "negation param unbound" false
    (Safety.is_safe (rule "answer(P) :- diagnoses(P,D) AND NOT causes(D,$s)"));
  check_bool "negation fully bound" true
    (Safety.is_safe
       (rule "answer(P) :- diagnoses(P,D) AND exhibits(P,$s) AND NOT causes(D,$s)"))

let test_arithmetic_variables_must_be_bound () =
  check_bool "cmp var unbound" false
    (Safety.is_safe (rule "answer(P) :- q(P,$a) AND X < 3"));
  check_bool "cmp param unbound" false
    (Safety.is_safe (rule "answer(B) :- baskets(B,$1) AND $1 < $2"));
  check_bool "cmp on constants is safe" true
    (Safety.is_safe (rule "answer(B) :- baskets(B,$1) AND 1 < 2"))

let test_constants_are_always_safe_terms () =
  check_bool "const in head" true (Safety.is_safe (rule "answer(B,1) :- p(B,$a)"));
  check_bool "const in negation" true
    (Safety.is_safe (rule "answer(B) :- p(B,$a) AND NOT q(B,7)"))

(* Example 3.2: of the 14 nontrivial proper subsets of the four subgoals,
   exactly 8 are safe.  We recount with the safety checker directly. *)
let test_paper_example_3_2_count () =
  let r = rule medical in
  let body = Array.of_list r.body in
  let n = Array.length body in
  let safe_count = ref 0 in
  for mask = 1 to (1 lsl n) - 2 do
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then kept := body.(i) :: !kept
    done;
    if Safety.is_safe { r with body = !kept } then incr safe_count
  done;
  check_int "8 safe proper subsets (paper Ex. 3.2)" 8 !safe_count

(* Subquery.enumerate excludes parameterless candidates; the medical rule
   has one safe parameterless subset (diagnoses alone), leaving 7. *)
let test_subquery_enumeration_medical () =
  let candidates = Subquery.enumerate (rule medical) in
  check_int "7 candidates with parameters" 7 (List.length candidates);
  let with_params ps =
    List.filter (fun c -> c.Subquery.params = ps) candidates
  in
  (* {ex}, {ex,diag}, {ex,diag,NOT causes} restrict $s; {tr}, {tr,diag}
     restrict $m; {ex,tr}, {ex,tr,diag} restrict both. *)
  check_int "3 candidates restrict $s alone" 3 (List.length (with_params [ "s" ]));
  check_int "2 candidates restrict $m alone" 2 (List.length (with_params [ "m" ]));
  check_int "2 candidates restrict both" 2
    (List.length (with_params [ "m"; "s" ]))

(* Example 3.1: the pair flock without arithmetic has exactly two nontrivial
   subqueries. *)
let test_subquery_enumeration_baskets () =
  let r = rule "answer(B) :- baskets(B,$1) AND baskets(B,$2)" in
  let candidates = Subquery.enumerate r in
  check_int "two candidates (paper Ex. 3.1)" 2 (List.length candidates);
  check_bool "params are {1} and {2}" true
    (List.sort compare (List.map (fun c -> c.Subquery.params) candidates)
    = [ [ "1" ]; [ "2" ] ])

let test_subquery_safety_filtering () =
  (* With arithmetic, a subquery keeping the comparison must keep both
     parameters' positive subgoals. *)
  let r = rule "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2" in
  let candidates = Subquery.enumerate r in
  List.iter
    (fun c ->
      check_bool "every candidate is safe" true (Safety.is_safe c.Subquery.rule))
    candidates;
  (* Candidates: {b1}, {b2}, {b1,b2}, {b1,b2,cmp}? the last is the full
     query, excluded.  So exactly 3. *)
  check_int "3 candidates" 3 (List.length candidates)

let test_minimal_for_params () =
  let r = rule medical in
  (match Subquery.minimal_for_params r [ "s" ] with
  | Some c ->
    check_int "minimal $s candidate keeps one subgoal" 1 (List.length c.kept)
  | None -> Alcotest.fail "expected a candidate for $s");
  match Subquery.minimal_for_params r [ "zz" ] with
  | Some _ -> Alcotest.fail "no candidate should exist for unknown param"
  | None -> ()

let test_maximal_per_param_set () =
  let r = rule medical in
  let maximal = Subquery.maximal_per_param_set r in
  (* For {s}: {exhibits} and {exhibits,diagnoses,causes} — the latter is
     maximal; the former is dominated. *)
  let s_max =
    List.filter (fun c -> c.Subquery.params = [ "s" ]) maximal
  in
  check_int "one maximal candidate for $s" 1 (List.length s_max);
  check_int "it keeps three subgoals" 3
    (List.length (List.hd s_max).Subquery.kept)

let test_positively_bound () =
  let r = rule medical in
  Alcotest.(check (list string))
    "bound keys"
    [ "$m"; "$s"; "D"; "P" ]
    (Safety.positively_bound r)

let suite =
  [
    Alcotest.test_case "safe rules" `Quick test_safe_basic;
    Alcotest.test_case "head variables must be bound" `Quick
      test_head_variable_must_be_bound;
    Alcotest.test_case "negated variables must be bound" `Quick
      test_negated_variables_must_be_bound;
    Alcotest.test_case "arithmetic variables must be bound" `Quick
      test_arithmetic_variables_must_be_bound;
    Alcotest.test_case "constants are safe" `Quick
      test_constants_are_always_safe_terms;
    Alcotest.test_case "paper Ex. 3.2: 8 safe subsets" `Quick
      test_paper_example_3_2_count;
    Alcotest.test_case "medical candidate enumeration" `Quick
      test_subquery_enumeration_medical;
    Alcotest.test_case "paper Ex. 3.1: two subqueries" `Quick
      test_subquery_enumeration_baskets;
    Alcotest.test_case "candidates are safe" `Quick test_subquery_safety_filtering;
    Alcotest.test_case "minimal_for_params" `Quick test_minimal_for_params;
    Alcotest.test_case "maximal_per_param_set" `Quick test_maximal_per_param_set;
    Alcotest.test_case "positively_bound" `Quick test_positively_bound;
  ]
