(* FILTER-step plans: the legality rule of Sec. 4.2, plan execution, and the
   soundness invariant plan-result = direct-result. *)
open Qf_core
module Ast = Qf_datalog.Ast
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rule text =
  match Qf_datalog.Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" text e

let medical_flock threshold =
  Parse.flock_exn
    (Printf.sprintf
       {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= %d|}
       threshold)

let medical_catalog () =
  (Qf_workload.Medical.generate
     { Qf_workload.Medical.default with n_patients = 300; seed = 3 })
    .catalog

(* The Fig. 5 plan, built by hand. *)
let fig5_plan flock =
  let ok_s = Plan.step ~name:"ok_s" [ rule "answer(P) :- exhibits(P,$s)" ] in
  let ok_m = Plan.step ~name:"ok_m" [ rule "answer(P) :- treatments(P,$m)" ] in
  let final =
    Plan.step ~name:"result"
      [
        rule
          "answer(P) :- ok_s($s) AND ok_m($m) AND diagnoses(P,D) AND \
           exhibits(P,$s) AND treatments(P,$m) AND NOT causes(D,$s)";
      ]
  in
  Plan.make flock ~steps:[ ok_s; ok_m ] ~final

let test_fig5_plan_is_legal () =
  match fig5_plan (medical_flock 20) with
  | Ok plan -> check_int "two auxiliary steps" 2 (Plan.filter_step_count plan)
  | Error e -> Alcotest.failf "Fig. 5 plan rejected: %s" e

let test_fig5_plan_equivalent () =
  let flock = medical_flock 10 in
  let cat = medical_catalog () in
  match fig5_plan flock with
  | Error e -> Alcotest.failf "plan rejected: %s" e
  | Ok plan ->
    Alcotest.check Test_util.relation "plan = direct" (Direct.run cat flock)
      (Plan_exec.run cat plan)

let test_trivial_plan () =
  let flock = medical_flock 10 in
  let cat = medical_catalog () in
  let plan = Plan.trivial flock in
  check_int "no auxiliary steps" 0 (Plan.filter_step_count plan);
  Alcotest.check Test_util.relation "trivial = direct" (Direct.run cat flock)
    (Plan_exec.run cat plan)

let test_final_must_keep_all_subgoals () =
  let flock = medical_flock 20 in
  let final =
    Plan.step ~name:"result"
      [ rule "answer(P) :- exhibits(P,$s) AND treatments(P,$m)" ]
  in
  match Plan.make flock ~steps:[] ~final with
  | Ok _ -> Alcotest.fail "final step deleting subgoals must be rejected"
  | Error e ->
    check_bool "mentions final" true (Test_util.contains ~sub:"final" e)

let test_foreign_subgoal_rejected () =
  let flock = medical_flock 20 in
  let bad =
    Plan.step ~name:"ok_s" [ rule "answer(P) :- exhibits(P,$s) AND other(P)" ]
  in
  let final = Plan.step ~name:"result" flock.Flock.query in
  match Plan.make flock ~steps:[ bad ] ~final with
  | Ok _ -> Alcotest.fail "foreign subgoal must be rejected"
  | Error e ->
    check_bool "mentions subgoal" true (Test_util.contains ~sub:"subgoal" e)

let test_unsafe_step_rejected () =
  let flock = medical_flock 20 in
  (* Keeping only the negated subgoal is unsafe (paper Ex. 3.2). *)
  let bad =
    Plan.step ~name:"ok_bad" [ rule "answer(P) :- NOT causes(D,$s)" ] in
  let final = Plan.step ~name:"result" flock.Flock.query in
  check_bool "unsafe step rejected" true
    (Result.is_error (Plan.make flock ~steps:[ bad ] ~final))

let test_duplicate_step_names_rejected () =
  let flock = medical_flock 20 in
  let s1 = Plan.step ~name:"ok" [ rule "answer(P) :- exhibits(P,$s)" ] in
  let s2 = Plan.step ~name:"ok" [ rule "answer(P) :- treatments(P,$m)" ] in
  let final = Plan.step ~name:"result" flock.Flock.query in
  check_bool "duplicate names rejected" true
    (Result.is_error (Plan.make flock ~steps:[ s1; s2 ] ~final))

let test_step_shadowing_base_relation_rejected () =
  let flock = medical_flock 20 in
  let s = Plan.step ~name:"exhibits" [ rule "answer(P) :- exhibits(P,$s)" ] in
  let final = Plan.step ~name:"result" flock.Flock.query in
  check_bool "shadowing rejected" true
    (Result.is_error (Plan.make flock ~steps:[ s ] ~final))

let test_unknown_ok_subgoal_rejected () =
  let flock = medical_flock 20 in
  let final =
    Plan.step ~name:"result"
      [
        rule
          "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
           diagnoses(P,D) AND NOT causes(D,$s) AND nonexistent($s)";
      ]
  in
  check_bool "unknown ok-subgoal rejected" true
    (Result.is_error (Plan.make flock ~steps:[] ~final))

let test_renamed_ok_rejected_without_symmetry () =
  (* ok_s is built from exhibits(P,$s); using it as ok_s($m) would prune
     medicines by symptom statistics — illegal because the renamed query is
     not derivable from the flock. *)
  let flock = medical_flock 20 in
  let ok_s = Plan.step ~name:"ok_s" [ rule "answer(P) :- exhibits(P,$s)" ] in
  let final =
    Plan.step ~name:"result"
      [
        rule
          "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND \
           diagnoses(P,D) AND NOT causes(D,$s) AND ok_s($m)";
      ]
  in
  check_bool "asymmetric renaming rejected" true
    (Result.is_error (Plan.make flock ~steps:[ ok_s ] ~final))

let test_renamed_ok_accepted_with_symmetry () =
  (* In the market-basket flock, baskets(B,$1) and baskets(B,$2) are
     symmetric, so ok_1 may be applied to $2. *)
  let flock =
    Parse.flock_exn
      {|QUERY:
answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2
FILTER:
COUNT(answer.B) >= 2|}
  in
  let ok_1 = Plan.step ~name:"ok_1" [ rule "answer(B) :- baskets(B,$1)" ] in
  let final =
    Plan.step ~name:"result"
      [
        rule
          "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2 AND \
           ok_1($1) AND ok_1($2)";
      ]
  in
  match Plan.make flock ~steps:[ ok_1 ] ~final with
  | Ok plan ->
    (* And it computes the right thing. *)
    let cat = Catalog.create () in
    Catalog.add cat "baskets"
      (R.of_values [ "BID"; "Item" ]
         V.[
           [ Int 1; Int 7 ]; [ Int 1; Int 8 ]; [ Int 2; Int 7 ];
           [ Int 2; Int 8 ]; [ Int 3; Int 7 ]; [ Int 3; Int 9 ];
         ]);
    Alcotest.check Test_util.relation "renamed-ok plan = direct"
      (Direct.run cat flock) (Plan_exec.run cat plan)
  | Error e -> Alcotest.failf "symmetric renaming rejected: %s" e

let test_non_monotone_filter_rejected () =
  let flock =
    Flock.make_exn
      [ rule "answer(B,W) :- baskets(B,$1) AND importance(B,W)" ]
      { Filter.agg = Min "W"; threshold = 5. }
  in
  let ok_1 = Plan.step ~name:"ok_1" [ rule "answer(B,W) :- baskets(B,$1) AND importance(B,W)" ] in
  check_bool "MIN filter cannot take pruning steps" true
    (Result.is_error
       (Plan.make flock ~steps:[ ok_1 ]
          ~final:(Plan.step ~name:"result" flock.query)));
  check_bool "trivial plan is fine for MIN" true
    (Result.is_ok
       (Plan.make flock ~steps:[] ~final:(Plan.step ~name:"result" flock.query)))

let test_plan_exec_report () =
  let flock = medical_flock 10 in
  let cat = medical_catalog () in
  match Apriori_gen.singleton_plan flock with
  | Error e -> Alcotest.failf "singleton plan: %s" e
  | Ok plan ->
    let report = Plan_exec.run_with_report cat plan in
    check_int "one report per step (incl final)"
      (List.length (Plan.all_steps plan))
      (List.length report.steps);
    List.iter
      (fun (s : Plan_exec.step_report) ->
        check_bool
          (Printf.sprintf "%s: survivors <= groups" s.step_name)
          true
          (s.survivors <= s.groups))
      report.steps;
    Alcotest.check Test_util.relation "report result = direct"
      (Direct.run cat flock) report.result

let test_singleton_plan_equivalence_medical () =
  let cat = medical_catalog () in
  List.iter
    (fun threshold ->
      let flock = medical_flock threshold in
      match Apriori_gen.singleton_plan flock with
      | Error e -> Alcotest.failf "singleton plan: %s" e
      | Ok plan ->
        Alcotest.check Test_util.relation
          (Printf.sprintf "threshold %d" threshold)
          (Direct.run cat flock) (Plan_exec.run cat plan))
    [ 2; 5; 10; 40 ]

let test_pair_step_plan_equivalence () =
  (* Subquery (4) of paper Ex. 3.2: filter ($s,$m) pairs jointly. *)
  let flock = medical_flock 8 in
  let cat = medical_catalog () in
  match Apriori_gen.param_set_plan flock ~param_sets:[ [ "s"; "m" ] ] with
  | Error e -> Alcotest.failf "pair plan: %s" e
  | Ok plan ->
    Alcotest.check Test_util.relation "pair-step plan = direct"
      (Direct.run cat flock) (Plan_exec.run cat plan)

let test_explain_output () =
  let flock = medical_flock 20 in
  match fig5_plan flock with
  | Error e -> Alcotest.failf "plan: %s" e
  | Ok plan ->
    let text = Explain.plan_to_string plan in
    check_bool "has FILTER steps" true (Test_util.contains ~sub:":= FILTER((" text);
    check_bool "names ok_s" true (Test_util.contains ~sub:"ok_s($s)" text);
    check_bool "prints the filter" true
      (Test_util.contains ~sub:">= 20" text);
    Alcotest.(check string)
      "summary" "ok_s($s) -> ok_m($m) -> result($m,$s)"
      (Explain.plan_summary plan)

let suite =
  [
    Alcotest.test_case "Fig. 5 plan is legal" `Quick test_fig5_plan_is_legal;
    Alcotest.test_case "Fig. 5 plan = direct" `Quick test_fig5_plan_equivalent;
    Alcotest.test_case "trivial plan" `Quick test_trivial_plan;
    Alcotest.test_case "final step must keep all subgoals" `Quick
      test_final_must_keep_all_subgoals;
    Alcotest.test_case "foreign subgoal rejected" `Quick
      test_foreign_subgoal_rejected;
    Alcotest.test_case "unsafe step rejected" `Quick test_unsafe_step_rejected;
    Alcotest.test_case "duplicate step names rejected" `Quick
      test_duplicate_step_names_rejected;
    Alcotest.test_case "step shadowing base relation" `Quick
      test_step_shadowing_base_relation_rejected;
    Alcotest.test_case "unknown ok-subgoal rejected" `Quick
      test_unknown_ok_subgoal_rejected;
    Alcotest.test_case "asymmetric ok renaming rejected" `Quick
      test_renamed_ok_rejected_without_symmetry;
    Alcotest.test_case "symmetric ok renaming accepted" `Quick
      test_renamed_ok_accepted_with_symmetry;
    Alcotest.test_case "non-monotone filter rejected" `Quick
      test_non_monotone_filter_rejected;
    Alcotest.test_case "plan execution report" `Quick test_plan_exec_report;
    Alcotest.test_case "singleton plan = direct (sweep)" `Quick
      test_singleton_plan_equivalence_medical;
    Alcotest.test_case "pair-step plan = direct" `Quick
      test_pair_step_plan_equivalence;
    Alcotest.test_case "explain output" `Quick test_explain_output;
  ]
