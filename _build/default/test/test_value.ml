open Qf_relational

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_compare_same_kind () =
  check_bool "int order" true (Value.compare (Int 1) (Int 2) < 0);
  check_bool "str order" true (Value.compare (Str "a") (Str "b") < 0);
  check_bool "real order" true (Value.compare (Real 1.5) (Real 2.5) < 0);
  check_int "reflexive int" 0 (Value.compare (Int 3) (Int 3));
  check_int "reflexive str" 0 (Value.compare (Str "x") (Str "x"))

let test_compare_cross_kind () =
  (* Numbers order numerically across kinds; ties break Int first. *)
  check_bool "int < real numeric" true (Value.compare (Int 1) (Real 2.0) < 0);
  check_bool "real < int numeric" true (Value.compare (Real 0.5) (Int 1) < 0);
  check_bool "tie: int before real" true (Value.compare (Int 1) (Real 1.0) < 0);
  check_bool "tie: real after int" true (Value.compare (Real 1.0) (Int 1) > 0);
  check_bool "number before string" true (Value.compare (Int 9) (Str "0") < 0);
  check_bool "string after number" true (Value.compare (Str "0") (Real 9.) > 0)

let test_compare_total_order () =
  (* Antisymmetry over a mixed sample. *)
  let sample =
    Value.[ Int 0; Int 1; Real 0.5; Real 1.0; Str ""; Str "a"; Int (-3) ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Value.compare a b and ba = Value.compare b a in
          check_bool
            (Format.asprintf "antisym %a %a" Value.pp a Value.pp b)
            true
            ((ab > 0 && ba < 0) || (ab < 0 && ba > 0) || (ab = 0 && ba = 0)))
        sample)
    sample

let test_equal_structural () =
  check_bool "int eq" true (Value.equal (Int 4) (Int 4));
  check_bool "cross-kind never equal" false (Value.equal (Int 1) (Real 1.0));
  check_bool "str/int never equal" false (Value.equal (Str "1") (Int 1))

let test_hash_consistent () =
  check_int "equal values same hash" (Value.hash (Str "x")) (Value.hash (Str "x"));
  check_int "equal ints same hash" (Value.hash (Int 17)) (Value.hash (Int 17))

let test_to_float () =
  Alcotest.(check (option (float 0.)))
    "int" (Some 5.) (Value.to_float (Int 5));
  Alcotest.(check (option (float 0.)))
    "real" (Some 2.5) (Value.to_float (Real 2.5));
  Alcotest.(check (option (float 0.))) "str" None (Value.to_float (Str "5"))

let test_of_string () =
  check_bool "int" true (Value.equal (Value.of_string "42") (Int 42));
  check_bool "negative int" true (Value.equal (Value.of_string "-7") (Int (-7)));
  check_bool "float" true (Value.equal (Value.of_string "2.5") (Real 2.5));
  check_bool "string fallback" true
    (Value.equal (Value.of_string "beer") (Str "beer"));
  check_bool "quoted string" true
    (Value.equal (Value.of_string "\"12\"") (Str "12"))

let test_to_string () =
  check_string "int" "42" (Value.to_string (Int 42));
  check_string "str quoted" "\"a b\"" (Value.to_string (Str "a b"));
  check_string "real" "2.5" (Value.to_string (Real 2.5))

let suite =
  [
    Alcotest.test_case "compare within kinds" `Quick test_compare_same_kind;
    Alcotest.test_case "compare across kinds" `Quick test_compare_cross_kind;
    Alcotest.test_case "compare is a total order" `Quick test_compare_total_order;
    Alcotest.test_case "equality is structural" `Quick test_equal_structural;
    Alcotest.test_case "hash agrees with equal" `Quick test_hash_consistent;
    Alcotest.test_case "to_float" `Quick test_to_float;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "to_string" `Quick test_to_string;
  ]
