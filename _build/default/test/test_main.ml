(* Aggregates every suite; `dune runtest` runs this executable. *)
let () =
  Alcotest.run "query_flocks"
    [
      "value", Test_value.suite;
      "relational", Test_relational.suite;
      "algebra", Test_algebra.suite;
      "syntax", Test_syntax.suite;
      "safety", Test_safety.suite;
      "containment", Test_containment.suite;
      "eval", Test_eval.suite;
      "flock", Test_flock.suite;
      "plan", Test_plan.suite;
      "dynamic", Test_dynamic.suite;
      "generation", Test_generation.suite;
      "apriori", Test_apriori.suite;
      "workload", Test_workload.suite;
      "views", Test_views.suite;
      "sql", Test_sql.suite;
      "storage", Test_storage.suite;
      "sequence", Test_sequence.suite;
      "golden", Test_golden.suite;
      "properties", Test_props.suite;
    ]
