(* Lexer, parser, pretty-printer: the paper's surface syntax. *)
open Qf_datalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let parse_rule_exn text =
  match Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse_rule %S: %s" text e

let parse_query_exn text =
  match Parser.parse_query text with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse_query %S: %s" text e

let test_lexer_tokens () =
  let tokens = Lexer.tokenize "answer(B) :- baskets(B,$1) AND $1 < $2" in
  check_int "token count (incl eof)" 16 (List.length tokens);
  check_bool "ends with eof" true (List.nth tokens 15 = Lexer.Eof)

let test_lexer_comments () =
  let tokens = Lexer.tokenize "p(X) % trailing comment\n// line comment\n" in
  check_int "comments skipped" 5 (List.length tokens)

let test_lexer_keywords_and_sections () =
  check_bool "QUERY:" true (List.mem Lexer.Query_kw (Lexer.tokenize "QUERY:"));
  check_bool "FILTER:" true (List.mem Lexer.Filter_kw (Lexer.tokenize "FILTER:"));
  check_bool "AND" true (List.mem Lexer.And (Lexer.tokenize "AND"));
  check_bool "NOT" true (List.mem Lexer.Not (Lexer.tokenize "NOT"));
  (* A capitalized identifier that merely starts like a keyword is not one. *)
  check_bool "ANDREW is a variable" true
    (List.mem (Lexer.Uident "ANDREW") (Lexer.tokenize "ANDREW"))

let test_lexer_literals () =
  let toks = Lexer.tokenize {|42 -7 2.5 1.0e3 "hi \" there" $s $12|} in
  check_bool "int" true (List.mem (Lexer.Int 42) toks);
  check_bool "negative" true (List.mem (Lexer.Int (-7)) toks);
  check_bool "real" true (List.mem (Lexer.Real 2.5) toks);
  check_bool "exponent" true (List.mem (Lexer.Real 1000.) toks);
  check_bool "string with escape" true (List.mem (Lexer.String "hi \" there") toks);
  check_bool "param" true (List.mem (Lexer.Param "s") toks);
  check_bool "numeric param" true (List.mem (Lexer.Param "12") toks)

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "p(X) & q(Y)");
     Alcotest.fail "expected a lex error"
   with Lexer.Error (msg, _) ->
     check_bool "mentions character" true
       (Test_util.contains ~sub:"illegal" msg
        || String.length msg > 0));
  try
    ignore (Lexer.tokenize "\"unterminated");
    Alcotest.fail "expected a lex error"
  with Lexer.Error _ -> ()

let test_parse_simple_rule () =
  let r = parse_rule_exn "answer(B) :- baskets(B,$1) AND baskets(B,$2)" in
  check_string "head" "answer" r.head.pred;
  check_int "body length" 2 (List.length r.body);
  check_bool "params" true (Ast.rule_params r = [ "1"; "2" ])

let test_parse_term_kinds () =
  let r = parse_rule_exn {|p(X) :- q(X, $y, foo, "Bar", 3, 2.5)|} in
  match r.body with
  | [ Ast.Pos a ] ->
    check_bool "var" true (List.nth a.args 0 = Ast.Var "X");
    check_bool "param" true (List.nth a.args 1 = Ast.Param "y");
    check_bool "bare const" true
      (List.nth a.args 2 = Ast.Const (Qf_relational.Value.Str "foo"));
    check_bool "quoted const" true
      (List.nth a.args 3 = Ast.Const (Qf_relational.Value.Str "Bar"));
    check_bool "int const" true
      (List.nth a.args 4 = Ast.Const (Qf_relational.Value.Int 3));
    check_bool "real const" true
      (List.nth a.args 5 = Ast.Const (Qf_relational.Value.Real 2.5))
  | _ -> Alcotest.fail "expected one positive literal"

let test_parse_negation_and_cmp () =
  let r =
    parse_rule_exn
      "answer(P) :- exhibits(P,$s) AND NOT causes(D,$s) AND diagnoses(P,D) AND $s != 3"
  in
  check_int "body" 4 (List.length r.body);
  (match List.nth r.body 1 with
  | Ast.Neg a -> check_string "negated pred" "causes" a.pred
  | _ -> Alcotest.fail "expected negation");
  match List.nth r.body 3 with
  | Ast.Cmp (Ast.Param "s", Ast.Ne, Ast.Const (Qf_relational.Value.Int 3)) -> ()
  | _ -> Alcotest.fail "expected comparison"

let test_parse_union () =
  let q =
    parse_query_exn
      "answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2\n\
       answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2"
  in
  check_int "two rules" 2 (List.length q)

let test_parse_union_validation () =
  check_bool "differing head arity rejected" true
    (Result.is_error
       (Parser.parse_query "answer(X) :- p(X,$a)\nanswer(X,Y) :- q(X,Y,$a)"));
  check_bool "differing params rejected" true
    (Result.is_error
       (Parser.parse_query "answer(X) :- p(X,$a)\nanswer(X) :- p(X,$b)"));
  check_bool "param in head rejected" true
    (Result.is_error (Parser.parse_query "answer($a) :- p(X,$a)"))

let test_parse_errors () =
  check_bool "missing implies" true
    (Result.is_error (Parser.parse_rule "answer(B) baskets(B,$1)"));
  check_bool "trailing garbage" true
    (Result.is_error (Parser.parse_rule "p(X) :- q(X) r"));
  check_bool "empty arg list" true
    (Result.is_error (Parser.parse_rule "p() :- q(X)"));
  check_bool "bare comparison only is fine syntactically" true
    (Result.is_ok (Parser.parse_rule "p(X) :- q(X) AND 1 < 2"))

let roundtrip rule_text =
  let r = parse_rule_exn rule_text in
  let printed = Pretty.rule_to_string r in
  let r' = parse_rule_exn printed in
  Alcotest.(check bool)
    (Printf.sprintf "roundtrip %s" rule_text)
    true (Ast.equal_rule r r')

let test_pretty_roundtrip () =
  roundtrip "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2";
  roundtrip
    "answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND diagnoses(P,D) AND NOT causes(D,$s)";
  roundtrip {|p(X,Y) :- q(X,"odd name",3) AND r(Y,2.5) AND X >= Y|};
  roundtrip "answer(X) :- arc($1,X) AND arc(X,Y1) AND arc(Y1,Y2)"

let test_pretty_quoting () =
  let r = parse_rule_exn {|p(X) :- q(X, "Needs Quotes", plain)|} in
  let printed = Pretty.rule_to_string r in
  check_bool "quoted where needed" true
    (Test_util.contains ~sub:{|"Needs Quotes"|} printed);
  check_bool "bare where possible" true
    (Test_util.contains ~sub:",plain)" printed)

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer keywords/sections" `Quick
      test_lexer_keywords_and_sections;
    Alcotest.test_case "lexer literals" `Quick test_lexer_literals;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse simple rule" `Quick test_parse_simple_rule;
    Alcotest.test_case "parse term kinds" `Quick test_parse_term_kinds;
    Alcotest.test_case "parse negation and comparison" `Quick
      test_parse_negation_and_cmp;
    Alcotest.test_case "parse union" `Quick test_parse_union;
    Alcotest.test_case "union validation" `Quick test_parse_union_validation;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pretty/parse roundtrip" `Quick test_pretty_roundtrip;
    Alcotest.test_case "pretty quoting" `Quick test_pretty_quoting;
  ]
