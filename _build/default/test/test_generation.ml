(* Plan generation (Apriori_gen), cost model, and the static optimizer. *)
open Qf_core
module Ast = Qf_datalog.Ast
module Catalog = Qf_relational.Catalog
module R = Qf_relational.Relation

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let market_catalog () =
  Qf_workload.Market.catalog
    { Qf_workload.Market.default with n_baskets = 400; n_items = 120; seed = 2 }

let test_basket_flock_shape () =
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:3 ~support:10 in
  check_int "one rule" 1 (Flock.rule_count flock);
  Alcotest.(check (list string)) "params" [ "1"; "2"; "3" ] (Flock.params flock);
  let body = (List.hd flock.Flock.query).Ast.body in
  (* 3 atoms + 3 pairwise comparisons *)
  check_int "body size" 6 (List.length body)

let test_basket_flock_bounds () =
  Alcotest.check_raises "k too large"
    (Invalid_argument "basket_flock: k must be in 1..9") (fun () ->
      ignore (Apriori_gen.basket_flock ~pred:"b" ~k:10 ~support:1))

let test_singleton_plan_structure () =
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:10 in
  match Apriori_gen.singleton_plan flock with
  | Error e -> Alcotest.failf "singleton: %s" e
  | Ok plan ->
    check_int "two filter steps" 2 (Plan.filter_step_count plan);
    Alcotest.(check string)
      "summary" "ok_1($1) -> ok_2($2) -> result($1,$2)"
      (Explain.plan_summary plan)

let test_param_set_plan_errors () =
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:10 in
  check_bool "unknown param" true
    (Result.is_error (Apriori_gen.param_set_plan flock ~param_sets:[ [ "zz" ] ]));
  check_bool "empty set" true
    (Result.is_error (Apriori_gen.param_set_plan flock ~param_sets:[ [] ]))

let test_levelwise_structure () =
  let _, plan = Apriori_gen.levelwise_basket ~pred:"baskets" ~k:3 ~support:10 in
  check_int "k-1 levels" 2 (Plan.filter_step_count plan);
  (* Level 2 must prune with BOTH 1-subsets; level 3 (final) with all three
     2-subsets. *)
  let step2 = List.nth (Plan.all_steps plan) 1 in
  let ok_atoms =
    List.filter
      (function
        | Ast.Pos a -> a.Ast.pred = "ok_1"
        | _ -> false)
      (List.hd step2.Plan.query).Ast.body
  in
  check_int "two ok_1 prunes at level 2" 2 (List.length ok_atoms);
  let final = List.nth (Plan.all_steps plan) 2 in
  let ok2_atoms =
    List.filter
      (function
        | Ast.Pos a -> a.Ast.pred = "ok_1_2"
        | _ -> false)
      (List.hd final.Plan.query).Ast.body
  in
  check_int "three ok_1_2 prunes at level 3" 3 (List.length ok2_atoms)

let test_levelwise_equivalence () =
  let cat = market_catalog () in
  List.iter
    (fun (k, support) ->
      let flock, plan = Apriori_gen.levelwise_basket ~pred:"baskets" ~k ~support in
      Alcotest.check Test_util.relation
        (Printf.sprintf "k=%d support=%d" k support)
        (Direct.run cat flock) (Plan_exec.run cat plan))
    [ 2, 20; 2, 60; 3, 20 ]

let test_chain_plan_structure_and_equivalence () =
  let cat =
    Qf_workload.Graph.generate
      { Qf_workload.Graph.default with n_nodes = 120; max_out_degree = 25; seed = 4 }
  in
  let flock = Qf_workload.Graph.path_flock ~n:2 ~support:10 in
  let plan = Qf_workload.Graph.chain_plan flock ~n:2 in
  check_int "n steps before final" 2 (Plan.filter_step_count plan);
  Alcotest.check Test_util.relation "chain plan = direct" (Direct.run cat flock)
    (Plan_exec.run cat plan)

let test_chain_plan_rejects_union () =
  let flock =
    Parse.flock_exn
      "QUERY:\nanswer(X) :- arc(X,$a)\nanswer(X) :- arc($a,X)\nFILTER:\nCOUNT(answer.X) >= 1"
  in
  check_bool "union rejected" true
    (Result.is_error (Apriori_gen.chain_plan flock ~prefixes:[ [ 0 ] ]))

let test_cost_model_sanity () =
  let cat = market_catalog () in
  let env = Cost.of_catalog cat in
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let rule = List.hd flock.Flock.query in
  let est = Cost.estimate_rule env rule in
  check_bool "positive work" true (est.Cost.work > 0.);
  check_bool "positive rows" true (est.Cost.rows > 0.);
  (* A subquery costs no more than the full query under the model. *)
  let sub =
    match Qf_datalog.Subquery.minimal_for_params rule [ "1" ] with
    | Some c -> c.Qf_datalog.Subquery.rule
    | None -> Alcotest.fail "no candidate"
  in
  let est_sub = Cost.estimate_rule env sub in
  check_bool "subquery is cheaper" true (est_sub.Cost.work <= est.Cost.work)

let test_cost_groups () =
  let cat = market_catalog () in
  let env = Cost.of_catalog cat in
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let groups = Cost.estimate_groups env flock.Flock.query [ "1"; "2" ] in
  let items = float_of_int (List.length (R.column_values (Catalog.find cat "baskets") "Item")) in
  Alcotest.(check (float 1.)) "groups = items^2" (items *. items) groups

let test_cost_exact_survivors () =
  (* For a single-subgoal single-parameter COUNT step, the model's survivor
     estimate must equal the exact frequency-distribution count. *)
  let cat = market_catalog () in
  let env = Cost.of_catalog cat in
  let rule =
    match Qf_datalog.Parser.parse_rule "answer(B) :- baskets(B,$1)" with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let step = Plan.step ~name:"ok_1" [ rule ] in
  let stats = Catalog.stats cat "baskets" in
  List.iter
    (fun threshold ->
      let _, out = Cost.estimate_step env ~threshold:(float_of_int threshold) step in
      let exact =
        Qf_relational.Statistics.count_at_least stats "Item" threshold
      in
      Alcotest.(check (float 0.5))
        (Printf.sprintf "survivors at %d" threshold)
        (float_of_int (max 1 exact))
        out.Cost.rows)
    [ 1; 5; 20; 60; 10_000 ]

let test_optimizer_returns_correct_plan () =
  let cat = market_catalog () in
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let plan = Optimizer.optimize cat flock in
  Alcotest.check Test_util.relation "optimized plan = direct"
    (Direct.run cat flock) (Plan_exec.run cat plan)

let test_optimizer_enumerates_trivial () =
  let cat = market_catalog () in
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:20 in
  let choices = Optimizer.enumerate cat flock in
  check_bool "at least 4 alternatives" true (List.length choices >= 4);
  check_bool "includes the trivial plan" true
    (List.exists (fun c -> c.Optimizer.param_sets = []) choices);
  (* Sorted by cost ascending. *)
  let costs = List.map (fun c -> c.Optimizer.cost) choices in
  check_bool "sorted" true (List.sort compare costs = costs)

let test_optimizer_prefers_filters_on_skewed_data () =
  (* With Zipf items and a high threshold, filter steps should win under the
     model. *)
  let cat =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 800; n_items = 400;
        zipf_exponent = 1.2; seed = 9 }
  in
  let flock = Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:40 in
  match Optimizer.enumerate cat flock with
  | [] -> Alcotest.fail "no choices"
  | best :: _ ->
    check_bool "best plan uses at least one filter step" true
      (best.Optimizer.param_sets <> [])

let test_optimizer_non_monotone_fallback () =
  let cat = market_catalog () in
  let rule =
    match Qf_datalog.Parser.parse_rule "answer(B) :- baskets(B,$1)" with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let flock = Flock.make_exn [ rule ] { Filter.agg = Min "B"; threshold = 0. } in
  let choices = Optimizer.enumerate cat flock in
  check_int "only the trivial plan" 1 (List.length choices)

let suite =
  [
    Alcotest.test_case "basket flock shape" `Quick test_basket_flock_shape;
    Alcotest.test_case "basket flock bounds" `Quick test_basket_flock_bounds;
    Alcotest.test_case "singleton plan structure" `Quick
      test_singleton_plan_structure;
    Alcotest.test_case "param_set_plan errors" `Quick test_param_set_plan_errors;
    Alcotest.test_case "levelwise structure (footnote 3)" `Quick
      test_levelwise_structure;
    Alcotest.test_case "levelwise plan = direct" `Quick test_levelwise_equivalence;
    Alcotest.test_case "chain plan (Fig. 7)" `Quick
      test_chain_plan_structure_and_equivalence;
    Alcotest.test_case "chain plan rejects unions" `Quick
      test_chain_plan_rejects_union;
    Alcotest.test_case "cost model sanity" `Quick test_cost_model_sanity;
    Alcotest.test_case "cost groups estimate" `Quick test_cost_groups;
    Alcotest.test_case "cost: exact survivor counts" `Quick
      test_cost_exact_survivors;
    Alcotest.test_case "optimizer plan = direct" `Quick
      test_optimizer_returns_correct_plan;
    Alcotest.test_case "optimizer enumerates alternatives" `Quick
      test_optimizer_enumerates_trivial;
    Alcotest.test_case "optimizer prefers filters on skew" `Quick
      test_optimizer_prefers_filters_on_skewed_data;
    Alcotest.test_case "optimizer non-monotone fallback" `Quick
      test_optimizer_non_monotone_fallback;
  ]
