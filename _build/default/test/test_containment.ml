(* Containment mappings (Chandra-Merlin, paper Sec. 3.1). *)
open Qf_datalog

let check_bool = Alcotest.(check bool)

let rule text =
  match Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" text e

let test_subgoal_deletion_contains () =
  (* Deleting a subgoal yields a containing query. *)
  let full = rule "answer(B) :- baskets(B,$1) AND baskets(B,$2)" in
  let sub1 = rule "answer(B) :- baskets(B,$1)" in
  check_bool "sub1 contains full" true
    (Containment.positive_contains ~sup:sub1 ~sub:full);
  check_bool "full does not contain sub1" false
    (Containment.positive_contains ~sup:full ~sub:sub1)

let test_identity_containment () =
  let q = rule "answer(X) :- p(X,Y) AND q(Y,Z)" in
  check_bool "reflexive" true (Containment.positive_contains ~sup:q ~sub:q);
  check_bool "equivalent to itself" true (Containment.equivalent q q)

let test_variable_renaming_equivalence () =
  let a = rule "answer(X) :- p(X,Y)" in
  let b = rule "answer(U) :- p(U,W)" in
  check_bool "alpha-equivalent" true (Containment.equivalent a b)

let test_classic_redundant_subgoal () =
  (* p(X,Y) AND p(X,Z) is equivalent to p(X,Y): the redundant subgoal folds. *)
  let redundant = rule "answer(X) :- p(X,Y) AND p(X,Z)" in
  let minimal = rule "answer(X) :- p(X,Y)" in
  check_bool "minimal contains redundant" true
    (Containment.positive_contains ~sup:minimal ~sub:redundant);
  check_bool "redundant contains minimal" true
    (Containment.positive_contains ~sup:redundant ~sub:minimal);
  check_bool "equivalent" true (Containment.equivalent redundant minimal)

let test_constants_are_rigid () =
  let general = rule "answer(X) :- p(X,Y)" in
  let specific = rule "answer(X) :- p(X,3)" in
  check_bool "general contains specific" true
    (Containment.positive_contains ~sup:general ~sub:specific);
  check_bool "specific does not contain general" false
    (Containment.positive_contains ~sup:specific ~sub:general)

let test_params_are_rigid () =
  (* $a cannot map to $b: parameters are distinguished. *)
  let qa = rule "answer(X) :- p(X,$a) AND p(X,$b)" in
  let qb = rule "answer(X) :- p(X,$a)" in
  check_bool "deleting the $b subgoal contains" true
    (Containment.positive_contains ~sup:qb ~sub:qa);
  let qc = rule "answer(X) :- p(X,$b)" in
  check_bool "$b-subquery also contains (matches its own subgoal)" true
    (Containment.positive_contains ~sup:qc ~sub:qa);
  check_bool "$a-subquery does not contain a query lacking $a" false
    (Containment.positive_contains ~sup:qb ~sub:qc)

let test_head_must_map () =
  let a = rule "answer(X) :- p(X,Y)" in
  let b = rule "answer(Y) :- p(X,Y)" in
  (* b asks for second components; a for first: neither contains other in
     general.  (A mapping X->X',Y->Y' must send a's head X to b's head Y,
     forcing p(Y,?) to match p(X,Y), impossible.) *)
  check_bool "no containment a over b" false
    (Containment.positive_contains ~sup:a ~sub:b);
  check_bool "no containment b over a" false
    (Containment.positive_contains ~sup:b ~sub:a)

let test_path_containment () =
  (* A shorter path query contains a longer one. *)
  let two = rule "answer(X) :- arc(X,Y) AND arc(Y,Z)" in
  let one = rule "answer(X) :- arc(X,Y)" in
  check_bool "1-path contains 2-path" true
    (Containment.positive_contains ~sup:one ~sub:two);
  check_bool "2-path does not contain 1-path" false
    (Containment.positive_contains ~sup:two ~sub:one)

let test_extended_contains () =
  let full =
    rule
      "answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)"
  in
  let no_neg = rule "answer(P) :- exhibits(P,$s) AND diagnoses(P,D)" in
  check_bool "dropping the negation contains" true
    (Containment.contains ~sup:no_neg ~sub:full);
  (* The converse fails: sup's negation has no image in sub. *)
  check_bool "negation blocks reverse containment" false
    (Containment.contains ~sup:full ~sub:no_neg)

let test_extended_with_cmp () =
  let full = rule "answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2" in
  let no_cmp = rule "answer(B) :- baskets(B,$1) AND baskets(B,$2)" in
  check_bool "dropping the comparison contains" true
    (Containment.contains ~sup:no_cmp ~sub:full);
  check_bool "comparison blocks reverse" false
    (Containment.contains ~sup:full ~sub:no_cmp)

let test_minimize_redundant () =
  let redundant = rule "answer(X) :- p(X,Y) AND p(X,Z)" in
  let minimized = Containment.minimize redundant in
  Alcotest.(check int)
    "one subgoal remains" 1
    (List.length minimized.Qf_datalog.Ast.body);
  check_bool "equivalent to the input" true
    (Containment.equivalent redundant minimized)

let test_minimize_chain_with_shortcut () =
  (* p(X,Y) AND p(X,X): the first subgoal folds into the second only if Y
     can map to X — it can, so the minimal form keeps p(X,X) alone. *)
  let q = rule "answer(X) :- p(X,Y) AND p(X,X)" in
  let m = Containment.minimize q in
  Alcotest.(check int) "folds to the loop subgoal" 1 (List.length m.Qf_datalog.Ast.body);
  check_bool "still equivalent" true (Containment.equivalent q m)

let test_minimize_keeps_needed_subgoals () =
  let q = rule "answer(X) :- p(X,Y) AND q(Y,Z)" in
  let m = Containment.minimize q in
  Alcotest.(check int) "nothing removable" 2 (List.length m.Qf_datalog.Ast.body)

let test_minimize_respects_safety_and_negation () =
  (* diagnoses is redundant for the positive part only if D maps somewhere,
     but the negated subgoal needs D positively bound: minimize must keep
     it. *)
  let q =
    rule
      "answer(P) :- exhibits(P,$s) AND diagnoses(P,D) AND NOT causes(D,$s)"
  in
  let m = Containment.minimize q in
  Alcotest.(check int) "all three subgoals kept" 3
    (List.length m.Qf_datalog.Ast.body)

let test_minimize_params_block_folding () =
  (* p(X,$a) and p(X,$b) cannot fold: parameters are rigid. *)
  let q = rule "answer(X) :- p(X,$a) AND p(X,$b)" in
  let m = Containment.minimize q in
  Alcotest.(check int) "both parameter subgoals kept" 2
    (List.length m.Qf_datalog.Ast.body)

let suite =
  [
    Alcotest.test_case "subgoal deletion contains" `Quick
      test_subgoal_deletion_contains;
    Alcotest.test_case "minimize redundant subgoal" `Quick
      test_minimize_redundant;
    Alcotest.test_case "minimize folds onto loop" `Quick
      test_minimize_chain_with_shortcut;
    Alcotest.test_case "minimize keeps needed subgoals" `Quick
      test_minimize_keeps_needed_subgoals;
    Alcotest.test_case "minimize respects safety/negation" `Quick
      test_minimize_respects_safety_and_negation;
    Alcotest.test_case "minimize: params are rigid" `Quick
      test_minimize_params_block_folding;
    Alcotest.test_case "identity containment" `Quick test_identity_containment;
    Alcotest.test_case "alpha equivalence" `Quick test_variable_renaming_equivalence;
    Alcotest.test_case "redundant subgoal folds" `Quick
      test_classic_redundant_subgoal;
    Alcotest.test_case "constants are rigid" `Quick test_constants_are_rigid;
    Alcotest.test_case "parameters are rigid" `Quick test_params_are_rigid;
    Alcotest.test_case "head must map" `Quick test_head_must_map;
    Alcotest.test_case "path queries" `Quick test_path_containment;
    Alcotest.test_case "extended: negation side-condition" `Quick
      test_extended_contains;
    Alcotest.test_case "extended: arithmetic side-condition" `Quick
      test_extended_with_cmp;
  ]
