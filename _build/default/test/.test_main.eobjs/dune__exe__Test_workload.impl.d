test/test_workload.ml: Alcotest Array Graph List Market Medical Printf Qf_core Qf_datalog Qf_relational Qf_workload Rng Webdocs Zipf
