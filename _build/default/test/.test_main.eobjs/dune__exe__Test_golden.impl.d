test/test_golden.ml: Alcotest Explain Flock Parse Plan Qf_core Qf_datalog Qf_workload
