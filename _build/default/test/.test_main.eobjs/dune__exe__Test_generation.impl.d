test/test_generation.ml: Alcotest Apriori_gen Cost Direct Explain Filter Flock List Optimizer Parse Plan Plan_exec Printf Qf_core Qf_datalog Qf_relational Qf_workload Result Test_util
