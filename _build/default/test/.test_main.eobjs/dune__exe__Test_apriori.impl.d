test/test_apriori.ml: Alcotest Apriori Array Itemset List Option Printf Qf_apriori Qf_core Qf_relational Qf_workload
