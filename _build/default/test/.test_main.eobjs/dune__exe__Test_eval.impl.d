test/test_eval.ml: Alcotest Array Ast Eval List Parser Qf_datalog Qf_relational Test_util
