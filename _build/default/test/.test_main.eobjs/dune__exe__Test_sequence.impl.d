test/test_sequence.ml: Alcotest Array List Printf Qf_apriori Qf_core Qf_relational Qf_workload Sequence
