test/test_storage.ml: Alcotest Buffer Bytes Codec File_mining Filename Format Heap_file List Page Printf Qf_core Qf_relational Qf_storage Qf_workload Store String Sys Test_util
