test/test_flock.ml: Alcotest Direct Filter Flock List Naive Parse Printf Qf_core Qf_relational Result Test_util
