test/test_syntax.ml: Alcotest Ast Lexer List Parser Pretty Printf Qf_datalog Qf_relational Result String Test_util
