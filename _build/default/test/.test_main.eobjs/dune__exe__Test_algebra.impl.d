test/test_algebra.ml: Aggregate Alcotest Catalog Csv Filename Join List Qf_relational Relation Schema Statistics Sys Tuple Value
