test/test_safety.ml: Alcotest Array List Parser Qf_datalog Safety Subquery
