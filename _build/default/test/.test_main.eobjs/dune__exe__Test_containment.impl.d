test/test_containment.ml: Alcotest Containment List Parser Qf_datalog
