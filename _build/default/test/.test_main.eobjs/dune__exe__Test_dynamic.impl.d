test/test_dynamic.ml: Alcotest Direct Dynamic Filter Flock List Option Parse Printf Qf_core Qf_datalog Qf_relational Qf_workload Test_util
