test/test_value.ml: Alcotest Format List Qf_relational Value
