test/test_sql.ml: Alcotest Compile List Printf Qf_core Qf_datalog Qf_relational Qf_sql Qf_workload Result Sql_ast Sql_parser Test_util
