test/test_util.ml: Alcotest Format List Qf_relational String
