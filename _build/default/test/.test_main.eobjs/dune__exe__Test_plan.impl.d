test/test_plan.ml: Alcotest Apriori_gen Direct Explain Filter Flock List Parse Plan Plan_exec Printf Qf_core Qf_datalog Qf_relational Qf_workload Result Test_util
