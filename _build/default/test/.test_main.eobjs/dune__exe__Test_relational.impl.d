test/test_relational.ml: Alcotest Array Index List Qf_relational Relation Schema Statistics Tuple Value
