test/test_views.ml: Alcotest Direct Dynamic Flock List Measures Optimizer Parse Plan_exec Qf_apriori Qf_core Qf_datalog Qf_relational Qf_workload Result Test_util Views
