(* Shared helpers for the test suite. *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let relation =
  Alcotest.testable Qf_relational.Relation.pp Qf_relational.Relation.equal

(* Sorted list of tuples as strings: stable golden form for result sets. *)
let rows rel =
  List.map
    (fun tup -> Format.asprintf "%a" Qf_relational.Tuple.pp tup)
    (Qf_relational.Relation.to_sorted_list rel)
