(* Golden tests: the explain output reproduces the paper's figures
   verbatim (modulo our naming conventions). *)
open Qf_core

let check_string = Alcotest.(check string)

let rule text =
  match Qf_datalog.Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" text e

(* Fig. 5: the medical plan. *)
let test_fig5_text () =
  let flock =
    Parse.flock_exn
      {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 20|}
  in
  let ok_s = Plan.step ~name:"ok_s" [ rule "answer(P) :- exhibits(P,$s)" ] in
  let ok_m = Plan.step ~name:"ok_m" [ rule "answer(P) :- treatments(P,$m)" ] in
  let final =
    Plan.step ~name:"ok"
      [
        rule
          "answer(P) :- ok_s($s) AND ok_m($m) AND diagnoses(P,D) AND \
           exhibits(P,$s) AND treatments(P,$m) AND NOT causes(D,$s)";
      ]
  in
  let plan = Plan.make_exn flock ~steps:[ ok_s; ok_m ] ~final in
  check_string "Fig. 5 rendering"
    {|ok_s($s) := FILTER(($s),
    answer(P) :-
        exhibits(P,$s),
    COUNT(answer(*)) >= 20
);

ok_m($m) := FILTER(($m),
    answer(P) :-
        treatments(P,$m),
    COUNT(answer(*)) >= 20
);

ok($m,$s) := FILTER(($m,$s),
    answer(P) :-
        ok_s($s) AND
        ok_m($m) AND
        diagnoses(P,D) AND
        exhibits(P,$s) AND
        treatments(P,$m) AND
        NOT causes(D,$s),
    COUNT(answer(*)) >= 20
);|}
    (Explain.plan_to_string plan)

(* Fig. 7: the chain plan for the path flock, n = 2. *)
let test_fig7_text () =
  let flock = Qf_workload.Graph.path_flock ~n:2 ~support:20 in
  let plan = Qf_workload.Graph.chain_plan flock ~n:2 in
  check_string "Fig. 7 rendering"
    {|ok0($1) := FILTER(($1),
    answer(X) :-
        arc($1,X),
    COUNT(answer(*)) >= 20
);

ok1($1) := FILTER(($1),
    answer(X) :-
        ok0($1) AND
        arc($1,X) AND
        arc(X,Y1),
    COUNT(answer(*)) >= 20
);

result($1) := FILTER(($1),
    answer(X) :-
        arc($1,X) AND
        arc(X,Y1) AND
        arc(Y1,Y2) AND
        ok1($1),
    COUNT(answer(*)) >= 20
);|}
    (Explain.plan_to_string plan)

(* Fig. 10's flock prints back in the paper's notation. *)
let test_fig10_text () =
  let flock =
    Parse.flock_exn
      {|QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W)
FILTER:
SUM(answer.W) >= 20|}
  in
  check_string "Fig. 10 rendering"
    {|QUERY:

answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W)

FILTER:

SUM(answer.W) >= 20|}
    (Flock.to_string flock)

let suite =
  [
    Alcotest.test_case "Fig. 5 plan text" `Quick test_fig5_text;
    Alcotest.test_case "Fig. 7 plan text" `Quick test_fig7_text;
    Alcotest.test_case "Fig. 10 flock text" `Quick test_fig10_text;
  ]
