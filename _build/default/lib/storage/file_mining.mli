(** The file-based setting of the paper's Sec. 1.4:

    "We cannot dispute the demonstrated fact that ad-hoc file processing
    algorithms can outperform, often significantly, DBMS-based algorithms
    ... The algorithms for mining and the optimizations we develop can be
    carried over to a file-based, rather than DBMS-based setting, with
    corresponding speedup."

    This module is that carry-over for the market-basket flock: a streaming
    two-pass a-priori over a [(BID, Item)] heap file that never
    materializes the relation —

    + pass 1 streams the file counting per-item basket occurrences;
    + pass 2 streams again, keeping {e only} the items that met the
      threshold (the a-priori trick is what bounds memory), accumulates
      each basket's surviving items, and counts the pairs.

    Benchmark E11 compares it against the DBMS-style path (load into the
    catalog, run the optimized flock plan) on the same file. *)

type pair_count = {
  item1 : Qf_relational.Value.t;  (** [item1 < item2] under {!Value.compare} *)
  item2 : Qf_relational.Value.t;
  support : int;
}

(** [frequent_pairs file ~support] — pairs of items co-occurring in at
    least [support] distinct baskets.  The file's schema must have exactly
    two columns ([BID], [Item]); rows may appear in any order and may
    contain duplicates (both are deduplicated per basket).  Result sorted
    by (item1, item2). *)
val frequent_pairs : Heap_file.t -> support:int -> pair_count list

(** Same result as a relation with columns [$1; $2] — directly comparable
    to the flock's output. *)
val frequent_pairs_relation :
  Heap_file.t -> support:int -> Qf_relational.Relation.t
