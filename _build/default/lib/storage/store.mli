(** A store is a directory of heap files — the "conventional relational
    system" the paper assumes the data lives in (Sec. 1.4).

    Layout: each relation [name] lives in [<dir>/<name>.qfh]; the directory
    itself is the catalog.  Relation names are restricted to
    [[A-Za-z0-9_-]+] so they are safe as file names. *)

type t

(** Open (creating the directory if needed) a store. *)
val open_dir : string -> t

val dir : t -> string

(** Relation names present, sorted. *)
val list : t -> string list

(** [save store name rel] (re)writes a relation.  Raises [Invalid_argument]
    on an unsafe name. *)
val save : t -> string -> Qf_relational.Relation.t -> unit

(** Load one relation.  Raises [Failure] if absent or corrupt. *)
val load : t -> string -> Qf_relational.Relation.t

val mem : t -> string -> bool

(** Load every relation into a fresh catalog — the bridge to the query
    stack. *)
val to_catalog : t -> Qf_relational.Catalog.t

(** Save every relation of a catalog. *)
val of_catalog : string -> Qf_relational.Catalog.t -> t
