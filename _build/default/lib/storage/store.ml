module Relation = Qf_relational.Relation
module Catalog = Qf_relational.Catalog

type t = { dir : string }

let extension = ".qfh"

let safe_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false)
       name

let open_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "Store.open_dir: %s is not a directory" dir);
  { dir }

let dir t = t.dir
let path t name = Filename.concat t.dir (name ^ extension)

let list t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map (fun f ->
         if Filename.check_suffix f extension then
           Some (Filename.chop_suffix f extension)
         else None)
  |> List.sort String.compare

let check_name name =
  if not (safe_name name) then
    invalid_arg (Printf.sprintf "Store: unsafe relation name %S" name)

let save t name rel =
  check_name name;
  let file = Heap_file.create (path t name) (Relation.schema rel) in
  Fun.protect
    ~finally:(fun () -> Heap_file.close file)
    (fun () -> Heap_file.append_relation file rel)

let mem t name = safe_name name && Sys.file_exists (path t name)

let load t name =
  check_name name;
  if not (Sys.file_exists (path t name)) then
    failwith (Printf.sprintf "Store.load: no relation %S in %s" name t.dir);
  let file = Heap_file.open_existing (path t name) in
  Fun.protect
    ~finally:(fun () -> Heap_file.close file)
    (fun () -> Heap_file.to_relation file)

let to_catalog t =
  let catalog = Catalog.create () in
  List.iter (fun name -> Catalog.add catalog name (load t name)) (list t);
  catalog

let of_catalog dir catalog =
  let t = open_dir dir in
  List.iter (fun name -> save t name (Catalog.find catalog name)) (Catalog.names catalog);
  t
