lib/storage/pager.ml: Bytes Hashtbl Page Printf Stdlib Sys
