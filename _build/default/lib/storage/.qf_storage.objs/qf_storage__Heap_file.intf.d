lib/storage/heap_file.mli: Qf_relational
