lib/storage/store.mli: Qf_relational
