lib/storage/codec.ml: Array Buffer Bytes Char Format Int64 List Qf_relational String
