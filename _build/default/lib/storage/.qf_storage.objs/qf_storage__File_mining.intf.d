lib/storage/file_mining.mli: Heap_file Qf_relational
