lib/storage/file_mining.ml: Array Hashtbl Heap_file List Option Qf_relational
