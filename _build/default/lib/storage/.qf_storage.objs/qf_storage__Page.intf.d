lib/storage/page.mli:
