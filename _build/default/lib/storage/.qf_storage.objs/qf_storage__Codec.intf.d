lib/storage/codec.mli: Buffer Qf_relational
