lib/storage/store.ml: Array Filename Fun Heap_file List Printf Qf_relational String Sys
