lib/storage/heap_file.ml: Codec Page Pager Printf Qf_relational Sys
