(** Binary serialization of values, tuples, and schemas.

    Encoding: a value is a tag byte ([0] int, [1] real, [2] string)
    followed by a fixed 8-byte little-endian payload for numbers or a
    length-prefixed (4-byte LE) byte sequence for strings.  A tuple is a
    2-byte LE field count followed by its values.  Schemas serialize as a
    tuple of strings.  Decoding validates tags and bounds and raises
    [Failure] on corruption. *)

val encode_value : Buffer.t -> Qf_relational.Value.t -> unit

(** [decode_value bytes off] returns the value and the offset past it. *)
val decode_value : bytes -> int -> Qf_relational.Value.t * int

val encode_tuple : Buffer.t -> Qf_relational.Tuple.t -> unit
val decode_tuple : bytes -> int -> Qf_relational.Tuple.t * int

(** Whole-buffer helpers for records stored in pages. *)
val tuple_to_string : Qf_relational.Tuple.t -> string

val tuple_of_string : string -> Qf_relational.Tuple.t

val schema_to_string : Qf_relational.Schema.t -> string
val schema_of_string : string -> Qf_relational.Schema.t
