lib/apriori/itemset.ml: Array Format Hashtbl Int List
