lib/apriori/itemset.mli: Format Hashtbl
