lib/apriori/apriori.ml: Array Hashtbl Itemset List Printf Qf_relational
