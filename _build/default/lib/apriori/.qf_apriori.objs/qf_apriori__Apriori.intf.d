lib/apriori/apriori.mli: Itemset Qf_relational
