(** Itemsets: sorted, duplicate-free arrays of integer item ids. *)

type t = int array

(** Normalize an arbitrary list into an itemset. *)
val of_list : int list -> t

val to_list : t -> int list
val size : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

(** [mem item set] — binary search. *)
val mem : int -> t -> bool

(** [subset a b] — is every item of [a] in [b]?  Linear merge. *)
val subset : t -> t -> bool

(** [union a b] and [minus a b] keep the sorted-set invariant. *)
val union : t -> t -> t

val minus : t -> t -> t

(** All subsets of size [size t - 1], in order of the dropped position. *)
val drop_one : t -> t list

(** [join a b]: if [a] and [b] (both of size k) share their first k-1 items,
    their union of size k+1; the a-priori candidate-generation join. *)
val join : t -> t -> t option

val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
