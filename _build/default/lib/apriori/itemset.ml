type t = int array

let of_list items = Array.of_list (List.sort_uniq Int.compare items)
let to_list = Array.to_list
let size = Array.length

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal a b = compare a b = 0

let mem item set =
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if set.(mid) = item then true
      else if set.(mid) < item then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length set)

let subset a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i j =
    if i >= la then true
    else if j >= lb then false
    else if a.(i) = b.(j) then loop (i + 1) (j + 1)
    else if a.(i) > b.(j) then loop i (j + 1)
    else false
  in
  loop 0 0

let union a b = of_list (Array.to_list a @ Array.to_list b)
let minus a b = Array.of_list (List.filter (fun x -> not (mem x b)) (Array.to_list a))

let drop_one t =
  List.init (Array.length t) (fun drop ->
      Array.of_list
        (List.filteri (fun i _ -> i <> drop) (Array.to_list t)))

let join a b =
  let k = Array.length a in
  if k = 0 || Array.length b <> k then None
  else
    let rec prefix_eq i = i >= k - 1 || (a.(i) = b.(i) && prefix_eq (i + 1)) in
    if prefix_eq 0 && a.(k - 1) < b.(k - 1) then begin
      let out = Array.make (k + 1) 0 in
      Array.blit a 0 out 0 k;
      out.(k) <- b.(k - 1);
      Some out
    end
    else None

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash t = Array.fold_left (fun acc x -> (acc * 31) + x) 17 t
end)
