(** Classic levelwise frequent-itemset mining (Agrawal–Imielinski–Swami 1993
    / Agrawal–Srikant 1994) — the specialist algorithm the paper's query
    flocks generalize, used here as the E8 baseline and the correctness
    cross-check for the levelwise flock plan.

    The algorithm: [L1] = items with support >= s; repeat: candidates
    [C(k+1)] come from joining compatible pairs of [Lk] and pruning any
    candidate with an infrequent k-subset (the a-priori trick); [L(k+1)] =
    candidates reaching support s in a scan of the baskets. *)

(** A transaction database: each basket is an itemset. *)
type db = Itemset.t list

(** Convert a (BID, Item) relation with integer items to a database.
    Raises [Invalid_argument] on non-integer item values. *)
val db_of_relation : Qf_relational.Relation.t -> db

type frequent = {
  itemset : Itemset.t;
  support : int;  (** number of baskets containing the itemset *)
}

(** [mine db ~support ~max_size] — all frequent itemsets up to [max_size]
    items, grouped by level: element [k-1] of the result lists the frequent
    k-itemsets.  Levels stop early when empty. *)
val mine : db -> support:int -> max_size:int -> frequent list list

(** Frequent itemsets of exactly [size] items, sorted by itemset. *)
val frequent_of_size : db -> support:int -> size:int -> frequent list

(** Candidate generation alone (join + prune), exposed for tests. *)
val candidates : Itemset.t list -> Itemset.t list

(** {1 Association rules} *)

type rule = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  rule_support : int;  (** baskets containing antecedent ∪ consequent *)
  confidence : float;  (** support(A ∪ B) / support(A) *)
  interest : float;
      (** confidence / P(B): > 1 means positively correlated, < 1 negatively
          (paper Sec. 1.1's third measure) *)
}

(** All rules [A -> B] with [B] a single item, from the frequent itemsets of
    [db], meeting the confidence floor. *)
val rules :
  db -> support:int -> max_size:int -> min_confidence:float -> rule list
