(** Printing queries back in the paper's surface syntax, e.g.

    {v
    answer(B) :-
        baskets(B,$1) AND
        baskets(B,$2) AND
        $1 < $2
    v}

    The output of {!rule_to_string} re-parses to an equal rule (round-trip
    property, tested). *)

val pp_term : Format.formatter -> Ast.term -> unit
val pp_atom : Format.formatter -> Ast.atom -> unit
val pp_literal : Format.formatter -> Ast.literal -> unit
val pp_rule : Format.formatter -> Ast.rule -> unit

(** Union: rules separated by blank lines. *)
val pp_query : Format.formatter -> Ast.query -> unit

val term_to_string : Ast.term -> string
val atom_to_string : Ast.atom -> string
val literal_to_string : Ast.literal -> string
val rule_to_string : Ast.rule -> string
val query_to_string : Ast.query -> string
