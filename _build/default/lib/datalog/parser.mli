(** Recursive-descent parser for rules and unions of rules.

    Grammar (paper syntax):
    {v
    query   ::= rule+
    rule    ::= atom ":-" literal ("AND" literal)*
    literal ::= "NOT" atom | atom | term cmpop term
    atom    ::= lident "(" term ("," term)* ")"
    term    ::= Uident | $param | lident | number | "string"
    cmpop   ::= "<" | "<=" | ">" | ">=" | "=" | "!=" | "<>"
    v}

    Capitalized identifiers are variables, [$name] are parameters, lowercase
    identifiers and literals are constants.  The stateful entry points are
    exposed so the flock-program parser (in [qf_core]) can share the token
    stream. *)

exception Error of string

(** Mutable cursor over a token list. *)
type state

val of_tokens : Lexer.token list -> state
val of_string : string -> state

(** Current token without consuming it. *)
val peek : state -> Lexer.token

(** Consume and return the current token. *)
val next : state -> Lexer.token

(** Consume the given token or raise {!Error}. *)
val expect : state -> Lexer.token -> unit

(** Parse one rule starting at the cursor. *)
val rule : state -> Ast.rule

(** Parse a maximal sequence of rules (a union): rules are recognized while
    the cursor sits on a lowercase identifier followed by [( ... ) :-]. *)
val rules : state -> Ast.rule list

(** {1 Whole-string conveniences} *)

val parse_rule : string -> (Ast.rule, string) result

(** Parses a union of one or more rules and checks {!Ast.wf_query}. *)
val parse_query : string -> (Ast.query, string) result
