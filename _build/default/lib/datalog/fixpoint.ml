module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema

type program = Ast.rule list

let ( let* ) = Result.bind
let error fmt = Format.kasprintf (fun s -> Error s) fmt

let head_preds rules =
  List.sort_uniq String.compare
    (List.map (fun (r : Ast.rule) -> r.head.pred) rules)

(* Dependency edges among head predicates: [h] depends on [q] when [q]
   appears in the body of a rule for [h]; the edge is negative when the
   occurrence is negated. *)
let edges rules heads =
  List.concat_map
    (fun (r : Ast.rule) ->
      List.filter_map
        (function
          | Ast.Pos a when List.mem a.Ast.pred heads ->
            Some (r.head.pred, a.Ast.pred, false)
          | Ast.Neg a when List.mem a.Ast.pred heads ->
            Some (r.head.pred, a.Ast.pred, true)
          | _ -> None)
        r.body)
    rules

(* Tarjan's strongly connected components; returns SCCs in reverse
   topological order (dependencies last), which we reverse. *)
let sccs nodes deps =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (deps v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* Tarjan emits an SCC only after everything it depends on; [components]
     is built by prepending, so it is already dependency-first order. *)
  List.rev !components

let strata rules =
  let heads = head_preds rules in
  let edge_list = edges rules heads in
  let deps v =
    List.filter_map
      (fun (h, q, _) -> if String.equal h v then Some q else None)
      edge_list
    |> List.sort_uniq String.compare
  in
  let components = sccs heads deps in
  (* Stratification: no negative edge inside one component. *)
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        let bad =
          List.exists
            (fun (h, q, negative) -> negative && List.mem h c && List.mem q c)
            edge_list
        in
        if bad then
          error "program is not stratified: negation through the cycle {%s}"
            (String.concat ", " c)
        else Ok ())
      (Ok ()) components
  in
  Ok components

let check catalog rules =
  let* () = if rules = [] then Error "empty program" else Ok () in
  (* Arity agreement per head. *)
  let arities = Hashtbl.create 8 in
  let* () =
    List.fold_left
      (fun acc (r : Ast.rule) ->
        let* () = acc in
        let head = r.head.pred in
        let arity = List.length r.head.args in
        match Hashtbl.find_opt arities head with
        | Some a when a <> arity ->
          error "%s: head arity differs between rules (%d vs %d)" head a arity
        | _ ->
          Hashtbl.replace arities head arity;
          Ok ())
      (Ok ()) rules
  in
  let heads = head_preds rules in
  let* () =
    List.fold_left
      (fun acc (r : Ast.rule) ->
        let* () = acc in
        let head = r.head.pred in
        let* () =
          match Safety.check r with
          | Ok () -> Ok ()
          | Error e -> error "%s: %s" head e
        in
        let* () =
          if Ast.rule_params r = [] then Ok ()
          else error "%s: intermediate predicates may not mention parameters" head
        in
        let* () =
          if Catalog.mem catalog head then
            error "%s shadows a stored relation" head
          else Ok ()
        in
        (* Body predicates must be stored or defined by the program. *)
        List.fold_left
          (fun acc lit ->
            let* () = acc in
            match lit with
            | Ast.Pos a | Ast.Neg a ->
              if Catalog.mem catalog a.Ast.pred || List.mem a.Ast.pred heads
              then Ok ()
              else error "%s: unknown predicate %s in body" head a.Ast.pred
            | Ast.Cmp _ -> Ok ())
          (Ok ()) r.body)
      (Ok ()) rules
  in
  Result.map (fun _ -> ()) (strata rules)

let delta_name pred = pred ^ "~delta"

(* Rewrite one in-stratum positive occurrence (the [target]-th, counting
   in-stratum positive atoms left to right) to read the delta relation. *)
let differentiate stratum (r : Ast.rule) target =
  let seen = ref (-1) in
  let body =
    List.map
      (fun lit ->
        match lit with
        | Ast.Pos a when List.mem a.Ast.pred stratum ->
          incr seen;
          if !seen = target then
            Ast.Pos { a with Ast.pred = delta_name a.Ast.pred }
          else lit
        | _ -> lit)
      r.body
  in
  { r with body }

let in_stratum_occurrences stratum (r : Ast.rule) =
  List.length
    (List.filter
       (function
         | Ast.Pos a -> List.mem a.Ast.pred stratum
         | Ast.Neg _ | Ast.Cmp _ -> false)
       r.body)

(* Invariant per round: [pred] (the total) holds everything discovered so
   far; [pred~delta] holds exactly the previous round's new tuples.  Each
   round accumulates its discoveries in fresh local relations, so nothing
   read during the round mutates under it. *)
let evaluate_stratum work rules stratum =
  let stratum_rules =
    List.filter (fun (r : Ast.rule) -> List.mem r.head.pred stratum) rules
  in
  let schema_of =
    List.map
      (fun pred ->
        let rule =
          List.find
            (fun (r : Ast.rule) -> String.equal r.head.pred pred)
            stratum_rules
        in
        pred, Schema.of_list (Eval.head_columns rule))
      stratum
  in
  List.iter
    (fun (pred, schema) ->
      Catalog.add work pred (Relation.create schema);
      Catalog.add work (delta_name pred) (Relation.create schema))
    schema_of;
  let fresh_accumulators () =
    List.map (fun (pred, schema) -> pred, Relation.create schema) schema_of
  in
  let collect acc pred rel =
    let total = Catalog.find work pred in
    let target = List.assoc pred acc in
    Relation.iter
      (fun tup -> if not (Relation.mem total tup) then Relation.add target tup)
      rel;
    acc
  in
  (* Commit a round: totals += new, deltas := new.  Re-register both so any
     cached statistics are invalidated. *)
  let commit acc =
    List.iter
      (fun (pred, fresh) ->
        let total = Catalog.find work pred in
        Relation.iter (Relation.add total) fresh;
        Catalog.add work pred total;
        Catalog.add work (delta_name pred) fresh)
      acc;
    List.exists (fun (_, fresh) -> not (Relation.is_empty fresh)) acc
  in
  (* Round 0: full rules against empty totals — base cases only. *)
  let acc0 =
    List.fold_left
      (fun acc (r : Ast.rule) -> collect acc r.head.pred (Eval.tabulate work r))
      (fresh_accumulators ()) stratum_rules
  in
  let changed = ref (commit acc0) in
  while !changed do
    let acc =
      List.fold_left
        (fun acc (r : Ast.rule) ->
          let n = in_stratum_occurrences stratum r in
          let rec variants k acc =
            if k >= n then acc
            else
              let rule = differentiate stratum r k in
              variants (k + 1) (collect acc r.head.pred (Eval.tabulate work rule))
          in
          variants 0 acc)
        (fresh_accumulators ()) stratum_rules
    in
    changed := commit acc
  done;
  List.iter (fun (pred, _) -> Catalog.remove work (delta_name pred)) schema_of

let materialize catalog rules =
  let* () = check catalog rules in
  let* stratification = strata rules in
  let work = Catalog.copy catalog in
  List.iter (fun stratum -> evaluate_stratum work rules stratum) stratification;
  Ok work
