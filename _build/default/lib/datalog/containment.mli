(** Conjunctive-query containment via containment mappings
    (Chandra–Merlin; paper Sec. 3.1).

    [Q2 ⊆ Q1] (the answer of [Q2] is a subset of the answer of [Q1] on every
    database) holds for positive conjunctive queries iff there is a
    {e containment mapping} [h] from the variables of [Q1] to the terms of
    [Q2] such that [h] is the identity on constants and parameters, maps the
    head of [Q1] onto the head of [Q2], and maps every subgoal of [Q1] onto
    some subgoal of [Q2].

    Parameters are treated as distinguished constants: a flock's result
    tuples are parameter assignments, so a mapping that renamed parameters
    would not preserve the flock's meaning.

    These functions consider only the positive, non-arithmetic subgoals of
    the rules; {!contains} additionally requires (sufficient condition) that
    the negated and arithmetic subgoals of [q1] are a subset (up to literal
    equality) of those of [q2]. *)

(** [positive_contains ~sup ~sub]: is there a containment mapping from [sup]
    to [sub] over positive subgoals (ignoring negation/arithmetic in both)?
    When both rules are positive CQs this decides [sub ⊆ sup]. *)
val positive_contains : sup:Ast.rule -> sub:Ast.rule -> bool

(** Sufficient test for [sub ⊆ sup] for extended CQs: a containment mapping
    on the positive parts under which every negated and arithmetic subgoal
    of [sup] maps to a negated/arithmetic subgoal of [sub]. *)
val contains : sup:Ast.rule -> sub:Ast.rule -> bool

(** Two positive CQs are equivalent iff they contain each other. *)
val equivalent : Ast.rule -> Ast.rule -> bool

(** Minimize a rule by deleting redundant positive subgoals: a subgoal is
    dropped when the smaller rule is still safe and still contained in the
    current rule (deletion always contains in the other direction), so the
    result is equivalent to the input.  For pure positive CQs this computes
    the Chandra–Merlin core; with negation/arithmetic the sufficient
    {!contains} test makes it conservative (it may keep a removable
    subgoal, never drop a needed one). *)
val minimize : Ast.rule -> Ast.rule
