(** Brute-force reference evaluation.

    [tabulate] enumerates every assignment of the rule's variables and
    parameters over the {e active domain} (every value occurring in a
    relation the rule references) and keeps the assignments satisfying all
    body literals.  Exponential in the number of variables — it exists only
    as the oracle that the real evaluator ({!Eval}) is property-tested
    against, and mirrors the textbook semantics of safe Datalog rules
    (safety guarantees answers outside the active domain are impossible). *)

(** Same output schema as {!Eval.tabulate}: sorted [$param] columns followed
    by {!Eval.head_columns}.  Raises [Invalid_argument] when the assignment
    space exceeds [max_assignments] (default 5_000_000) and {!Eval.Error}
    on unsafe rules or unknown predicates. *)
val tabulate :
  ?max_assignments:int ->
  Qf_relational.Catalog.t ->
  Ast.rule ->
  Qf_relational.Relation.t
