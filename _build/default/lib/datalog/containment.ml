(* A candidate mapping binds each variable of the containing query [sup] to a
   term of the contained query [sub].  Constants and parameters are rigid. *)
type mapping = (string * Ast.term) list

let unify_term (m : mapping) (t_sup : Ast.term) (t_sub : Ast.term) :
    mapping option =
  match t_sup with
  | Ast.Const c -> (
    match t_sub with
    | Ast.Const c' when Qf_relational.Value.equal c c' -> Some m
    | _ -> None)
  | Ast.Param p -> (
    match t_sub with Ast.Param p' when String.equal p p' -> Some m | _ -> None)
  | Ast.Var v -> (
    match List.assoc_opt v m with
    | Some bound -> if Ast.equal_term bound t_sub then Some m else None
    | None -> Some ((v, t_sub) :: m))

let unify_args m args_sup args_sub =
  if List.length args_sup <> List.length args_sub then None
  else
    List.fold_left2
      (fun acc a b -> Option.bind acc (fun m -> unify_term m a b))
      (Some m) args_sup args_sub

let unify_atom m (a_sup : Ast.atom) (a_sub : Ast.atom) =
  if String.equal a_sup.pred a_sub.pred then unify_args m a_sup.args a_sub.args
  else None

let apply_mapping (m : mapping) (t : Ast.term) =
  match t with
  | Ast.Var v -> ( match List.assoc_opt v m with Some t' -> t' | None -> t)
  | Ast.Param _ | Ast.Const _ -> t

let apply_to_atom m (a : Ast.atom) =
  { a with Ast.args = List.map (apply_mapping m) a.args }

let apply_to_literal m = function
  | Ast.Pos a -> Ast.Pos (apply_to_atom m a)
  | Ast.Neg a -> Ast.Neg (apply_to_atom m a)
  | Ast.Cmp (l, c, r) -> Ast.Cmp (apply_mapping m l, c, apply_mapping m r)

let nonpositive_literals (r : Ast.rule) =
  List.filter
    (function Ast.Pos _ -> false | Ast.Neg _ | Ast.Cmp _ -> true)
    r.body

(* Depth-first search over assignments of sup's positive subgoals to sub's
   positive subgoals.  [accept] filters complete mappings (used to impose
   the negation/arithmetic side-condition). *)
let search ~(sup : Ast.rule) ~(sub : Ast.rule) ~(accept : mapping -> bool) =
  let sub_atoms = Ast.positive_atoms sub in
  let rec assign m = function
    | [] -> accept m
    | atom :: rest ->
      List.exists
        (fun cand ->
          match unify_atom m atom cand with
          | Some m' -> assign m' rest
          | None -> false)
        sub_atoms
  in
  match unify_atom [] sup.head sub.head with
  | None -> false
  | Some m0 -> assign m0 (Ast.positive_atoms sup)

let positive_contains ~sup ~sub = search ~sup ~sub ~accept:(fun _ -> true)

let contains ~sup ~sub =
  let sub_extras = nonpositive_literals sub in
  let accept m =
    List.for_all
      (fun lit ->
        let image = apply_to_literal m lit in
        List.exists (Ast.equal_literal image) sub_extras)
      (nonpositive_literals sup)
  in
  search ~sup ~sub ~accept

let equivalent q1 q2 =
  positive_contains ~sup:q1 ~sub:q2 && positive_contains ~sup:q2 ~sub:q1

let minimize (r : Ast.rule) =
  (* Try deleting each positive subgoal in turn; restart after a success so
     interactions between redundant subgoals are handled. *)
  let try_delete (current : Ast.rule) i =
    let body = List.filteri (fun j _ -> j <> i) current.body in
    let candidate = { current with body } in
    if Safety.is_safe candidate && contains ~sup:current ~sub:candidate then
      Some candidate
    else None
  in
  let rec shrink current =
    let n = List.length current.Ast.body in
    let rec attempt i =
      if i >= n then current
      else
        match List.nth current.Ast.body i with
        | Ast.Pos _ -> (
          match try_delete current i with
          | Some smaller -> shrink smaller
          | None -> attempt (i + 1))
        | Ast.Neg _ | Ast.Cmp _ -> attempt (i + 1)
    in
    attempt 0
  in
  shrink r
