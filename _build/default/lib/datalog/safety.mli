(** Safety of extended conjunctive queries (paper Sec. 3.2–3.3).

    A rule is {e safe} when
    + every variable in the head appears in a positive, non-arithmetic
      subgoal of the body;
    + every variable in a negated subgoal appears in a positive,
      non-arithmetic subgoal;
    + every variable in an arithmetic subgoal appears in a positive,
      non-arithmetic subgoal.

    Parameters count as variables for conditions (2) and (3); they may not
    appear in the head at all.  Safe queries define finite answers and are
    exactly the candidates usable as a-priori filter subqueries. *)

(** [check rule] is [Ok ()] or [Error reason]. *)
val check : Ast.rule -> (unit, string) result

val is_safe : Ast.rule -> bool

(** A union is safe when every rule is (Sec. 3.4). *)
val check_query : Ast.query -> (unit, string) result

val is_safe_query : Ast.query -> bool

(** Names (binding keys, see {!Ast.binding_key}) of variables and parameters
    bound by positive subgoals of the body. *)
val positively_bound : Ast.rule -> string list
