module Value = Qf_relational.Value

exception Error of string

type state = { tokens : Lexer.token array; mutable pos : int }

let of_tokens tokens = { tokens = Array.of_list tokens; pos = 0 }

let of_string text =
  match Lexer.tokenize text with
  | tokens -> of_tokens tokens
  | exception Lexer.Error (msg, off) ->
    raise (Error (Printf.sprintf "lex error at offset %d: %s" off msg))

let peek st =
  if st.pos < Array.length st.tokens then st.tokens.(st.pos) else Lexer.Eof

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1)
  else Lexer.Eof

let next st =
  let tok = peek st in
  if tok <> Lexer.Eof then st.pos <- st.pos + 1;
  tok

let fail st expected =
  raise
    (Error
       (Format.asprintf "expected %s but found %a (token %d)" expected
          Lexer.pp_token (peek st) st.pos))

let expect st tok = if next st <> tok then fail st (Format.asprintf "%a" Lexer.pp_token tok)

let term st =
  match next st with
  | Lexer.Uident v -> Ast.Var v
  | Lexer.Param p -> Ast.Param p
  | Lexer.Lident s -> Ast.Const (Value.Str s)
  | Lexer.Int i -> Ast.Const (Value.Int i)
  | Lexer.Real f -> Ast.Const (Value.Real f)
  | Lexer.String s -> Ast.Const (Value.Str s)
  | _ ->
    st.pos <- st.pos - 1;
    fail st "a term"

let atom_args st =
  expect st Lexer.Lparen;
  let rec more acc =
    let t = term st in
    match next st with
    | Lexer.Comma -> more (t :: acc)
    | Lexer.Rparen -> List.rev (t :: acc)
    | _ ->
      st.pos <- st.pos - 1;
      fail st "',' or ')'"
  in
  more []

let atom st =
  match next st with
  | Lexer.Lident pred -> { Ast.pred; args = atom_args st }
  | _ ->
    st.pos <- st.pos - 1;
    fail st "a predicate name"

let literal st =
  match peek st with
  | Lexer.Not ->
    ignore (next st);
    Ast.Neg (atom st)
  | Lexer.Lident _ when peek2 st = Lexer.Lparen -> Ast.Pos (atom st)
  | _ -> (
    let left = term st in
    match next st with
    | Lexer.Cmp c ->
      let right = term st in
      Ast.Cmp (left, c, right)
    | _ ->
      st.pos <- st.pos - 1;
      fail st "a comparison operator")

let rule st =
  let head = atom st in
  expect st Lexer.Implies;
  let rec more acc =
    let l = literal st in
    match peek st with
    | Lexer.And ->
      ignore (next st);
      more (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  { Ast.head; body = more [] }

(* A new rule begins iff the cursor sits on `lident (` — a head atom.  The
   following `:-` is then required by [rule]. *)
let at_rule_start st =
  match peek st, peek2 st with
  | Lexer.Lident _, Lexer.Lparen -> true
  | _ -> false

let rules st =
  let rec loop acc =
    if at_rule_start st then loop (rule st :: acc) else List.rev acc
  in
  let parsed = loop [] in
  if parsed = [] then fail st "at least one rule";
  parsed

let run_to_result f text =
  match f (of_string text) with
  | v -> Ok v
  | exception Error msg -> Error msg

let parse_rule text =
  run_to_result
    (fun st ->
      let r = rule st in
      if peek st <> Lexer.Eof then fail st "end of input";
      r)
    text

let parse_query text =
  Result.bind
    (run_to_result
       (fun st ->
         let q = rules st in
         if peek st <> Lexer.Eof then fail st "end of input";
         q)
       text)
    (fun q ->
      match Ast.wf_query q with Ok () -> Ok q | Error e -> Error e)
