(** Enumeration of candidate a-priori subqueries (paper Sec. 3.1–3.3).

    The generalized a-priori optimization evaluates a cheaper query that
    upper-bounds the flock's query and prunes parameter values below the
    support threshold.  By the containment-mapping theorem it suffices to
    consider {e subsets of the subgoals} of the original rule (no variable
    splitting).  A candidate must be {e safe} (Sec. 3.3); deleting subgoals
    from a rule only ever enlarges its answer, so every safe subset is a
    sound upper bound. *)

type candidate = {
  rule : Ast.rule;  (** the subquery: original head, retained subgoals *)
  kept : int list;  (** indices (into the original body) of retained literals *)
  params : string list;  (** sorted parameter names the subquery restricts *)
}

(** All safe candidates obtained by deleting one or more subgoals (the
    original rule itself is not included).  Candidates with an empty
    parameter set are excluded (they cannot prune any parameter).
    Enumeration is exponential in body size; raises [Invalid_argument] for
    bodies longer than 20 literals. *)
val enumerate : Ast.rule -> candidate list

(** Candidates whose parameter set is exactly [params] (sorted or not). *)
val for_params : Ast.rule -> string list -> candidate list

(** The maximal candidates for each parameter set: among candidates with the
    same parameter set, keep those whose kept-literal sets are not strictly
    contained in another candidate's.  More subgoals = tighter bound, so
    these dominate for pruning power (though not necessarily for cost). *)
val maximal_per_param_set : Ast.rule -> candidate list

(** A minimal candidate for [params]: fewest retained literals (tie-broken
    by smaller index set), or [None] if no safe candidate exists. *)
val minimal_for_params : Ast.rule -> string list -> candidate option
