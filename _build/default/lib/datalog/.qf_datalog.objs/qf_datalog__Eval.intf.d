lib/datalog/eval.mli: Ast Qf_relational
