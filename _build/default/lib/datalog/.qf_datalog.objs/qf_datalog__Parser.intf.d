lib/datalog/parser.mli: Ast Lexer
