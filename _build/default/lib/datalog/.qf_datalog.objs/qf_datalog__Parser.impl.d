lib/datalog/parser.ml: Array Ast Format Lexer List Printf Qf_relational Result
