lib/datalog/fixpoint.mli: Ast Qf_relational
