lib/datalog/eval.ml: Array Ast Format Hashtbl List Logs Option Pretty Printf Qf_relational Safety String
