lib/datalog/subquery.mli: Ast
