lib/datalog/safety.ml: Ast List Printf Result String
