lib/datalog/ast.ml: Hashtbl List Printf Qf_relational Result String
