lib/datalog/fixpoint.ml: Ast Eval Format Hashtbl List Qf_relational Result Safety String
