lib/datalog/pretty.ml: Ast Format Qf_relational String
