lib/datalog/reference.mli: Ast Qf_relational
