lib/datalog/reference.ml: Array Ast Eval Hashtbl List Printf Qf_relational Safety String
