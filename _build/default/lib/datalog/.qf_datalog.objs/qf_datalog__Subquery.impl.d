lib/datalog/subquery.ml: Ast List Printf Safety String
