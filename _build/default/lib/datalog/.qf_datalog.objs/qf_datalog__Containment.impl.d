lib/datalog/containment.ml: Ast List Option Qf_relational Safety String
