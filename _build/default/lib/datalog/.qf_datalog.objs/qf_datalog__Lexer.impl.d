lib/datalog/lexer.ml: Ast Buffer Format List Printf String
