lib/datalog/ast.mli: Qf_relational
