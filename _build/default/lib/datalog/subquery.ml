type candidate = {
  rule : Ast.rule;
  kept : int list;
  params : string list;
}

let subset_rule (r : Ast.rule) mask n =
  let kept = ref [] in
  let body = ref [] in
  for i = n - 1 downto 0 do
    if mask land (1 lsl i) <> 0 then begin
      kept := i :: !kept;
      body := List.nth r.body i :: !body
    end
  done;
  { Ast.head = r.head; body = !body }, !kept

let enumerate (r : Ast.rule) =
  let n = List.length r.body in
  if n > 20 then
    invalid_arg
      (Printf.sprintf "Subquery.enumerate: body too long (%d literals)" n);
  let out = ref [] in
  (* masks 1 .. 2^n - 2: nonempty proper subsets *)
  for mask = (1 lsl n) - 2 downto 1 do
    let rule, kept = subset_rule r mask n in
    if Safety.is_safe rule then begin
      let params = Ast.rule_params rule in
      if params <> [] then out := { rule; kept; params } :: !out
    end
  done;
  !out

let for_params r params =
  let wanted = List.sort_uniq String.compare params in
  List.filter (fun c -> c.params = wanted) (enumerate r)

let subset_ints a b = List.for_all (fun x -> List.mem x b) a

let maximal_per_param_set r =
  let all = enumerate r in
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' ->
             c'.params = c.params
             && c' != c
             && subset_ints c.kept c'.kept
             && List.length c'.kept > List.length c.kept)
           all))
    all

let minimal_for_params r params =
  let candidates = for_params r params in
  let better a b =
    let la = List.length a.kept and lb = List.length b.kept in
    if la <> lb then la < lb else a.kept < b.kept
  in
  List.fold_left
    (fun best c ->
      match best with
      | None -> Some c
      | Some b -> if better c b then Some c else best)
    None candidates
