module Value = Qf_relational.Value

(* A string constant prints bare (Datalog-style lowercase symbol) when it
   lexes back as a plain identifier; otherwise it is double-quoted. *)
let is_bare_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let pp_term ppf = function
  | Ast.Var v -> Format.pp_print_string ppf v
  | Ast.Param p -> Format.fprintf ppf "$%s" p
  | Ast.Const (Value.Str s) when is_bare_ident s -> Format.pp_print_string ppf s
  | Ast.Const v -> Value.pp ppf v

let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    pp_term ppf args

let pp_atom ppf (a : Ast.atom) =
  Format.fprintf ppf "%s(%a)" a.pred pp_args a.args

let pp_literal ppf = function
  | Ast.Pos a -> pp_atom ppf a
  | Ast.Neg a -> Format.fprintf ppf "NOT %a" pp_atom a
  | Ast.Cmp (l, c, r) ->
    Format.fprintf ppf "%a %s %a" pp_term l (Ast.comparison_to_string c) pp_term
      r

let pp_rule ppf (r : Ast.rule) =
  Format.fprintf ppf "@[<v 4>%a :-@,%a@]" pp_atom r.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND@,")
       pp_literal)
    r.body

let pp_query ppf q =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_rule ppf q

let term_to_string t = Format.asprintf "%a" pp_term t
let atom_to_string a = Format.asprintf "%a" pp_atom a
let literal_to_string l = Format.asprintf "%a" pp_literal l
let rule_to_string r = Format.asprintf "@[<v>%a@]" pp_rule r
let query_to_string q = Format.asprintf "@[<v>%a@]" pp_query q
