let binding_keys_of_atom a =
  List.filter_map
    (function
      | (Ast.Var _ | Ast.Param _) as t -> Some (Ast.binding_key t)
      | Ast.Const _ -> None)
    a.Ast.args

let positively_bound (r : Ast.rule) =
  List.concat_map
    (function
      | Ast.Pos a -> binding_keys_of_atom a
      | Ast.Neg _ | Ast.Cmp _ -> [])
    r.body
  |> List.sort_uniq String.compare

let check (r : Ast.rule) =
  let bound = positively_bound r in
  let is_bound key = List.mem key bound in
  let check_terms what terms =
    List.fold_left
      (fun acc t ->
        Result.bind acc (fun () ->
            match t with
            | Ast.Const _ -> Ok ()
            | Ast.Var _ | Ast.Param _ ->
              let key = Ast.binding_key t in
              if is_bound key then Ok ()
              else
                Error
                  (Printf.sprintf
                     "unsafe: %s %s does not appear in a positive subgoal" what
                     key)))
      (Ok ()) terms
  in
  let head_ok =
    (* Parameters cannot appear in the head (they are the flock's output,
       not the query's); plain head variables must be positively bound. *)
    List.fold_left
      (fun acc t ->
        Result.bind acc (fun () ->
            match t with
            | Ast.Param p -> Error (Printf.sprintf "parameter $%s in head" p)
            | Ast.Const _ -> Ok ()
            | Ast.Var _ -> check_terms "head variable" [ t ]))
      (Ok ()) r.head.args
  in
  List.fold_left
    (fun acc lit ->
      Result.bind acc (fun () ->
          match lit with
          | Ast.Pos _ -> Ok ()
          | Ast.Neg a -> check_terms "negated-subgoal variable" a.args
          | Ast.Cmp (l, _, rt) ->
            check_terms "arithmetic-subgoal variable" [ l; rt ]))
    head_ok r.body

let is_safe r = Result.is_ok (check r)

let check_query q =
  List.fold_left (fun acc r -> Result.bind acc (fun () -> check r)) (Ok ()) q

let is_safe_query q = Result.is_ok (check_query q)
