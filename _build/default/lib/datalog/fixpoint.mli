(** Stratified, semi-naive evaluation of parameter-free Datalog programs.

    This generalizes the paper's Sec. 2.3 intermediate-predicate extension
    to {e recursive} intermediate predicates (transitive closure and
    friends), which the flock machinery then queries like stored relations.

    A program is a list of rules defining one or more head predicates (in
    any order; rules may be mutually recursive).  Requirements, checked by
    {!check}:

    - every rule is safe and mentions no parameters;
    - no head predicate shadows a stored relation;
    - rules for one predicate agree on head arity;
    - the program is {e stratified}: no negation through a recursive cycle
      (a predicate may only be negated once fully computed).

    Evaluation proceeds stratum by stratum (strongly connected components
    of the dependency graph in topological order); each recursive stratum
    runs the classic semi-naive fixpoint — per iteration, each rule is
    differentiated on each in-stratum body atom, substituting the last
    round's delta for that occurrence. *)

type program = Ast.rule list

val check : Qf_relational.Catalog.t -> program -> (unit, string) result

(** Materialize every head predicate into a copy of the catalog (the input
    is untouched).  Runs {!check} first. *)
val materialize :
  Qf_relational.Catalog.t ->
  program ->
  (Qf_relational.Catalog.t, string) result

(** The stratification itself: head predicates grouped into strata in
    evaluation order.  Exposed for diagnostics and tests. *)
val strata : program -> (string list list, string) result
