(** Synthetic HTML-document corpus for the strongly-connected-words flock
    (paper Ex. 2.3, Fig. 4).

    Relations generated:
    - [inTitle(D, W)] — word [W] occurs in the title of document [D];
    - [inAnchor(A, W)] — word [W] occurs in the anchor text of anchor [A];
    - [link(A, D1, D2)] — anchor [A] links document [D1] to document [D2].

    Document and anchor ids live in disjoint ranges (documents [1..n_docs],
    anchors [n_docs+1 ..]), matching the paper's assumption that the two id
    spaces never collide (otherwise the union's count could be too low).
    Anchor words are correlated with the target document's title words with
    probability [anchor_affinity], which is what creates strongly connected
    pairs. *)

type config = {
  n_docs : int;
  n_words : int;
  n_anchors : int;
  title_words : int;  (** words per title *)
  anchor_words : int;  (** words per anchor text *)
  word_zipf : float;
  anchor_affinity : float;
  target_zipf : float;
      (** skew of link-target popularity: a few documents attract many
          anchors, which is what makes anchor-word/title-word pairs reach
          the support threshold *)
  seed : int;
}

val default : config

val generate : config -> Qf_relational.Catalog.t

(** Word constants are integers [1..n_words]. *)
val word : int -> Qf_relational.Value.t
