(** Random directed graphs for the "pathological" path flock (paper Ex. 4.3,
    Figs. 6/7).

    The flock asks for nodes [$1] with at least [s] successors from which a
    path of length [n] extends; the interesting structure is a skewed
    out-degree distribution: a few hub nodes with many successors, a long
    tail with few.  Out-degrees are drawn Zipf-style so that hub pruning
    (the ok0 step of Fig. 7) bites. *)

type config = {
  n_nodes : int;
  max_out_degree : int;
  degree_zipf : float;  (** skew of the out-degree distribution *)
  seed : int;
}

val default : config

(** Catalog with a single relation [arc(X, Y)]; nodes are [Int 1..n]. *)
val generate : config -> Qf_relational.Catalog.t

(** [path_flock ~n ~support] is the flock of Fig. 6: [answer(X) :-
    arc($1,X) AND arc(X,Y1) AND ... AND arc(Y_(n-1),Y_n)], counting
    distinct first successors [X]. *)
val path_flock : n:int -> support:int -> Qf_core.Flock.t

(** The (n+1)-step chain plan of Fig. 7 for {!path_flock}: step [k] keeps
    the first [k+1] arc subgoals plus the previous step's [ok]. *)
val chain_plan : Qf_core.Flock.t -> n:int -> Qf_core.Plan.t
