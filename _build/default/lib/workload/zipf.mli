(** Zipf-distributed sampling over ranks [1..n].

    P(rank = r) ∝ 1 / r^s.  Heavy-tailed item popularity is the property
    that makes a-priori pre-filtering pay off (most items fall below the
    support threshold while a few dominate), so every synthetic workload in
    this reproduction draws from a Zipf. *)

type t

(** [create ~n ~s] precomputes the CDF.  [n >= 1], [s >= 0] ([s = 0] is
    uniform). *)
val create : n:int -> s:float -> t

(** A rank in [1..n]; binary search over the CDF. *)
val sample : t -> Rng.t -> int

(** Exact probability of a rank. *)
val prob : t -> int -> float
