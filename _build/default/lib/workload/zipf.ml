type t = { cdf : float array }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if s < 0. then invalid_arg "Zipf.create: s must be >= 0";
  let weights = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.;
  { cdf }

let sample t rng =
  let u = Rng.float rng in
  (* first index with cdf >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length t.cdf - 1) + 1

let prob t rank =
  if rank < 1 || rank > Array.length t.cdf then 0.
  else if rank = 1 then t.cdf.(0)
  else t.cdf.(rank - 1) -. t.cdf.(rank - 2)
