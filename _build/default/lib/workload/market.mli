(** Synthetic market-basket data (and the word-occurrence corpora of the
    paper's Sec. 1.3, which have the same shape).

    Items are integers [1..n_items] drawn with Zipf popularity; each basket
    holds a random number of distinct items around [avg_basket_size].  The
    result is a [(BID, Item)] relation under the predicate name [pred]. *)

type config = {
  n_baskets : int;
  n_items : int;
  avg_basket_size : int;
  zipf_exponent : float;  (** item-popularity skew; ~1.0 is realistic *)
  seed : int;
}

val default : config

(** The baskets relation, columns [BID] (Int) and [Item] (Int). *)
val relation : config -> Qf_relational.Relation.t

(** Like {!relation} but additionally plants item-set patterns, Quest-style:
    each pattern is a fixed itemset injected into a [rate] fraction of
    baskets, so generated data has known ground-truth associations.
    Returns the relation and the planted itemsets (sorted item ids).
    Pattern items are drawn from the top of the id range so they rarely
    collide with the Zipf head. *)
val relation_with_patterns :
  config ->
  n_patterns:int ->
  pattern_size:int ->
  rate:float ->
  Qf_relational.Relation.t * int list list

(** A catalog binding the relation under [pred] (default ["baskets"]). *)
val catalog : ?pred:string -> config -> Qf_relational.Catalog.t

(** Like {!catalog}, additionally binding [importance(BID, W)] with integer
    weights in [1..max_weight] — the weighted-basket extension of Fig. 10. *)
val catalog_with_importance :
  ?pred:string -> ?max_weight:int -> config -> Qf_relational.Catalog.t
