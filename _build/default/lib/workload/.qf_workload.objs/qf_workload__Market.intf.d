lib/workload/market.mli: Qf_relational
