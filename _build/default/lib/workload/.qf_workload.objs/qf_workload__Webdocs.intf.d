lib/workload/webdocs.mli: Qf_relational
