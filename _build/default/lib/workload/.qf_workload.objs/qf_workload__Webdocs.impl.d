lib/workload/webdocs.ml: Array Int List Qf_relational Rng Zipf
