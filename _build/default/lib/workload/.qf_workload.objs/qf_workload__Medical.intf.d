lib/workload/medical.mli: Qf_relational
