lib/workload/market.ml: List Qf_relational Rng Zipf
