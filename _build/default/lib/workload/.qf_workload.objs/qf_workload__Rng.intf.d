lib/workload/rng.mli:
