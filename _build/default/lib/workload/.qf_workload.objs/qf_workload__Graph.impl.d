lib/workload/graph.ml: Fun List Printf Qf_core Qf_datalog Qf_relational Rng Zipf
