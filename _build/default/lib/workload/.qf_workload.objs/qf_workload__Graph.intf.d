lib/workload/graph.mli: Qf_core Qf_relational
