lib/workload/medical.ml: Array Int List Qf_relational Rng Zipf
