(* SplitMix64 (Steele, Lea & Flood 2014): tiny state, excellent statistical
   quality for simulation workloads, and trivially splittable. *)
type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the value fits OCaml's 63-bit int, staying
     non-negative. *)
  let raw = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) in
  raw mod bound

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int bits53 /. 9007199254740992.0

let bool t p = float t < p

let split t = { state = next t }
