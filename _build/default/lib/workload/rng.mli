(** Deterministic pseudo-random numbers (SplitMix64).

    Every workload generator takes an explicit seed so that examples, tests,
    and benchmarks are reproducible run-to-run and machine-to-machine; the
    global [Random] state is never touched. *)

type t

val create : int -> t

(** Uniform in [0, bound); [bound > 0]. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Bernoulli with probability [p]. *)
val bool : t -> float -> bool

(** An independent generator split off deterministically. *)
val split : t -> t
