(** Synthetic medical database for the side-effects flock (paper Ex. 2.2,
    Figs. 3/5/8/9).

    Relations generated:
    - [diagnoses(Patient, Disease)] — one disease per patient (the paper's
      simplifying assumption);
    - [exhibits(Patient, Symptom)] — symptoms of the patient's disease plus
      Zipf-distributed background symptoms;
    - [treatments(Patient, Medicine)] — a medicine indicated for the
      disease, plus background medicines;
    - [causes(Disease, Symptom)] — the known disease-symptom associations.

    A configurable number of {e planted side effects} (medicine, symptom)
    pairs is injected: patients taking the medicine exhibit the symptom even
    though their disease does not cause it.  The generator returns the
    planted pairs so tests can check that the flock finds them. *)

type config = {
  n_patients : int;
  diseases_per_patient : int;
      (** 1 reproduces the paper's simplifying assumption; higher values
          exercise the intermediate-predicate (VIEWS) extension *)
  n_diseases : int;
  n_symptoms : int;
  n_medicines : int;
  symptoms_per_disease : int;
  background_symptoms : int;  (** extra random symptoms per patient *)
  background_medicines : int;  (** extra random medicines per patient *)
  symptom_zipf : float;  (** background symptom popularity skew *)
  medicine_zipf : float;
  planted_side_effects : int;
  side_effect_rate : float;  (** P(symptom | taking the planted medicine) *)
  seed : int;
}

val default : config

type t = {
  catalog : Qf_relational.Catalog.t;
  planted : (int * int) list;
      (** (medicine id, symptom id) pairs injected into the data *)
}

val generate : config -> t

(** Constant names used in the relations: patient [i] is [Int i], and so
    on; exposed so tests can build expectations. *)
val patient : int -> Qf_relational.Value.t

val disease : int -> Qf_relational.Value.t
val symptom : int -> Qf_relational.Value.t
val medicine : int -> Qf_relational.Value.t
