type t = Value.t array

let arity = Array.length

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b =
  Array.length a = Array.length b
  &&
  let rec loop i =
    i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
  in
  loop 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
let project positions tup = Array.of_list (List.map (Array.get tup) positions)
let append = Array.append
let of_list = Array.of_list
let to_list = Array.to_list

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_seq t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
