(** A catalog maps predicate names to stored relations.

    Datalog evaluation resolves every relational subgoal through a catalog.
    Statistics are computed lazily per relation and cached; {!add} and
    {!remove} invalidate the cached entry.  Mutating a relation *after*
    adding it does not invalidate its cached statistics — re-[add] it. *)

type t

val create : unit -> t

(** Register (or replace) a relation under a predicate name. *)
val add : t -> string -> Relation.t -> unit

val remove : t -> string -> unit

(** Raises [Failure] with a helpful message if absent. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool

(** Names in an unspecified order. *)
val names : t -> string list

(** Cached statistics for a stored relation.  Raises [Not_found]. *)
val stats : t -> string -> Statistics.t

(** A shallow copy: the new catalog shares relations but registering in one
    does not affect the other.  Plan execution uses this to add temporary
    [ok] relations without polluting the base catalog. *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
