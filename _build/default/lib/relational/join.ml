let positions_of_pairs a b pairs =
  let sa = Relation.schema a and sb = Relation.schema b in
  ( List.map (fun (ca, _) -> Schema.position sa ca) pairs,
    List.map (fun (_, cb) -> Schema.position sb cb) pairs )

(* Output columns of [b] that are not join targets, renamed on collision
   with a column of [a]. *)
let residual_columns a b pairs =
  let sa = Relation.schema a and sb = Relation.schema b in
  let joined = List.map snd pairs in
  Schema.columns sb
  |> List.filter (fun c -> not (List.mem c joined))
  |> List.map (fun c -> c, if Schema.mem sa c then c ^ "_2" else c)

let equi a b pairs =
  let pos_a, pos_b = positions_of_pairs a b pairs in
  let residual = residual_columns a b pairs in
  let sb = Relation.schema b in
  let residual_pos = List.map (fun (c, _) -> Schema.position sb c) residual in
  let out_schema =
    Schema.of_list (Schema.columns (Relation.schema a) @ List.map snd residual)
  in
  let out = Relation.create out_schema in
  let idx = Index.build b pos_b in
  Relation.iter
    (fun ta ->
      let key = Tuple.project pos_a ta in
      List.iter
        (fun tb ->
          Relation.add out (Tuple.append ta (Tuple.project residual_pos tb)))
        (Index.lookup idx key))
    a;
  out

let filter_by_presence ~keep_matching a b pairs =
  let pos_a, pos_b = positions_of_pairs a b pairs in
  let idx = Index.build b pos_b in
  Relation.select a (fun ta ->
      let found = Index.lookup idx (Tuple.project pos_a ta) <> [] in
      if keep_matching then found else not found)

let semi a b pairs = filter_by_presence ~keep_matching:true a b pairs
let anti a b pairs = filter_by_presence ~keep_matching:false a b pairs
