(** Tuples: immutable arrays of {!Value.t}.

    Callers must not mutate a tuple after handing it to a {!Relation} or
    {!Index}; the hash tables key on its contents. *)

type t = Value.t array

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [project positions tup] extracts the values at [positions], in order.
    Raises [Invalid_argument] if a position is out of range. *)
val project : int list -> t -> t

(** [append a b] concatenates two tuples. *)
val append : t -> t -> t

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val pp : Format.formatter -> t -> unit

(** Hash tables keyed by tuples. *)
module Table : Hashtbl.S with type key = t
