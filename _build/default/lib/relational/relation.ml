type t = { schema : Schema.t; tuples : unit Tuple.Table.t }

let create schema = { schema; tuples = Tuple.Table.create 64 }
let schema t = t.schema
let arity t = Schema.arity t.schema
let cardinal t = Tuple.Table.length t.tuples
let is_empty t = cardinal t = 0

let add t tup =
  if Tuple.arity tup <> arity t then
    invalid_arg
      (Printf.sprintf "Relation.add: arity mismatch (%d vs %d)"
         (Tuple.arity tup) (arity t));
  if not (Tuple.Table.mem t.tuples tup) then Tuple.Table.add t.tuples tup ()

let mem t tup = Tuple.Table.mem t.tuples tup
let iter f t = Tuple.Table.iter (fun tup () -> f tup) t.tuples
let fold f t init = Tuple.Table.fold (fun tup () acc -> f tup acc) t.tuples init
let to_list t = fold List.cons t []
let to_sorted_list t = List.sort Tuple.compare (to_list t)

let of_list schema tuples =
  let rel = create schema in
  List.iter (add rel) tuples;
  rel

let of_values columns rows =
  of_list (Schema.of_list columns) (List.map Tuple.of_list rows)

let project t cols =
  let positions = List.map (Schema.position t.schema) cols in
  let out = create (Schema.restrict t.schema cols) in
  iter (fun tup -> add out (Tuple.project positions tup)) t;
  out

let select t pred =
  let out = create t.schema in
  iter (fun tup -> if pred tup then add out tup) t;
  out

let union a b =
  if arity a <> arity b then invalid_arg "Relation.union: arity mismatch";
  let out = create a.schema in
  iter (add out) a;
  iter (add out) b;
  out

let diff a b =
  if arity a <> arity b then invalid_arg "Relation.diff: arity mismatch";
  let out = create a.schema in
  iter (fun tup -> if not (mem b tup) then add out tup) a;
  out

let column_values t col =
  let pos = Schema.position t.schema col in
  let seen = Hashtbl.create 64 in
  fold
    (fun tup acc ->
      let v = tup.(pos) in
      let key = Value.hash v, v in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        v :: acc
      end)
    t []

let equal a b =
  arity a = arity b
  && cardinal a = cardinal b
  && fold (fun tup ok -> ok && mem b tup) a true

let pp ppf t =
  Format.fprintf ppf "@[<v>%a: %d tuples@,%a@]" Schema.pp t.schema (cardinal t)
    (Format.pp_print_list Tuple.pp)
    (to_sorted_list t)
