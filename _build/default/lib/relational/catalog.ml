type t = {
  relations : (string, Relation.t) Hashtbl.t;
  stats_cache : (string, Statistics.t) Hashtbl.t;
}

let create () =
  { relations = Hashtbl.create 16; stats_cache = Hashtbl.create 16 }

let add t name rel =
  Hashtbl.replace t.relations name rel;
  Hashtbl.remove t.stats_cache name

let remove t name =
  Hashtbl.remove t.relations name;
  Hashtbl.remove t.stats_cache name

let find_opt t name = Hashtbl.find_opt t.relations name

let find t name =
  match find_opt t name with
  | Some rel -> rel
  | None -> failwith (Printf.sprintf "Catalog.find: unknown relation %S" name)

let mem t name = Hashtbl.mem t.relations name
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []

let stats t name =
  match Hashtbl.find_opt t.stats_cache name with
  | Some s -> s
  | None ->
    let s = Statistics.of_relation (find t name) in
    Hashtbl.replace t.stats_cache name s;
    s

let copy t =
  {
    relations = Hashtbl.copy t.relations;
    stats_cache = Hashtbl.copy t.stats_cache;
  }

let pp ppf t =
  let sorted = List.sort String.compare (names t) in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf name ->
         Format.fprintf ppf "%s%a [%d tuples]" name Schema.pp
           (Relation.schema (find t name))
           (Relation.cardinal (find t name))))
    sorted
