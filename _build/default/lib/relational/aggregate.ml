type func =
  | Count
  | Sum of string
  | Min of string
  | Max of string

let pp_func ppf = function
  | Count -> Format.pp_print_string ppf "COUNT(*)"
  | Sum c -> Format.fprintf ppf "SUM(%s)" c
  | Min c -> Format.fprintf ppf "MIN(%s)" c
  | Max c -> Format.fprintf ppf "MAX(%s)" c

let numeric_exn context v =
  match Value.to_float v with
  | Some f -> f
  | None ->
    invalid_arg
      (Printf.sprintf "Aggregate.%s: non-numeric value %s" context
         (Value.to_string v))

let eval func schema tuples =
  match tuples with
  | [] -> invalid_arg "Aggregate.eval: empty group"
  | first :: rest -> (
    match func with
    | Count -> Value.Real (float_of_int (List.length tuples))
    | Sum col ->
      let pos = Schema.position schema col in
      let total =
        List.fold_left
          (fun acc tup -> acc +. numeric_exn "sum" tup.(pos))
          0. tuples
      in
      Value.Real total
    | Min col ->
      let pos = Schema.position schema col in
      List.fold_left
        (fun acc tup -> if Value.compare tup.(pos) acc < 0 then tup.(pos) else acc)
        first.(pos) rest
    | Max col ->
      let pos = Schema.position schema col in
      List.fold_left
        (fun acc tup -> if Value.compare tup.(pos) acc > 0 then tup.(pos) else acc)
        first.(pos) rest)

let group_by rel ~keys ~func =
  let schema = Relation.schema rel in
  let idx = Index.build_on rel keys in
  let out = ref [] in
  Index.iter_groups
    (fun key tuples -> out := (key, eval func schema tuples) :: !out)
    idx;
  !out

let group_filter rel ~keys ~func ~threshold =
  let out = Relation.create (Schema.restrict (Relation.schema rel) keys) in
  List.iter
    (fun (key, v) ->
      let x = numeric_exn "group_filter" v in
      if x >= threshold then Relation.add out key)
    (group_by rel ~keys ~func);
  out
