lib/relational/statistics.ml: Array Format Hashtbl Int List Relation Schema Value
