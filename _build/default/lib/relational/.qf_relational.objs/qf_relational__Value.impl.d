lib/relational/value.ml: Float Format Hashtbl Int String
