lib/relational/statistics.mli: Format Relation
