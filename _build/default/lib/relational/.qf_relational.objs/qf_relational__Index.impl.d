lib/relational/index.ml: List Relation Schema Tuple
