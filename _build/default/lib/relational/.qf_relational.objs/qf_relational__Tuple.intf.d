lib/relational/tuple.mli: Format Hashtbl Value
