lib/relational/csv.ml: Buffer Fun List Printf Relation Schema String Tuple Value
