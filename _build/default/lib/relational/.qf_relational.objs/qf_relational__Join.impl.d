lib/relational/join.ml: Index List Relation Schema Tuple
