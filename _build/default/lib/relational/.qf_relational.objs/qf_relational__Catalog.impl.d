lib/relational/catalog.ml: Format Hashtbl List Printf Relation Schema Statistics String
