lib/relational/index.mli: Relation Tuple
