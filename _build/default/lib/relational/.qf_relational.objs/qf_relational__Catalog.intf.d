lib/relational/catalog.mli: Format Relation Statistics
