lib/relational/aggregate.mli: Format Relation Schema Tuple Value
