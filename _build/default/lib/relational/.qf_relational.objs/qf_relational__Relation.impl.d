lib/relational/relation.ml: Array Format Hashtbl List Printf Schema Tuple Value
