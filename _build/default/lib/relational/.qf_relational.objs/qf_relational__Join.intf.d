lib/relational/join.mli: Relation
