lib/relational/aggregate.ml: Array Format Index List Printf Relation Schema Value
