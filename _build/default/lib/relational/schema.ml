type t = { columns : string array }

let of_list columns =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem tbl c then
        invalid_arg (Printf.sprintf "Schema.of_list: duplicate column %S" c);
      Hashtbl.add tbl c ())
    columns;
  { columns = Array.of_list columns }

let columns t = Array.to_list t.columns
let arity t = Array.length t.columns

let position_opt t col =
  let rec loop i =
    if i >= Array.length t.columns then None
    else if String.equal t.columns.(i) col then Some i
    else loop (i + 1)
  in
  loop 0

let position t col =
  match position_opt t col with Some i -> i | None -> raise Not_found

let mem t col = Option.is_some (position_opt t col)

let equal a b =
  Array.length a.columns = Array.length b.columns
  && Array.for_all2 String.equal a.columns b.columns

let restrict t cols =
  List.iter (fun c -> ignore (position t c)) cols;
  of_list cols

let append a b = of_list (columns a @ columns b)

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (columns t)
