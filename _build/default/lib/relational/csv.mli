(** Minimal CSV import/export for relations.

    Format: first line is the header (column names), subsequent lines are
    rows.  Fields are comma-separated; a field containing a comma, a double
    quote or a newline is written double-quoted with embedded quotes doubled,
    and such quoting is understood on input.  Field values are parsed with
    {!Value.of_string} (integers, then floats, then strings). *)

(** Raises [Failure] on malformed input. *)
val parse_string : string -> Relation.t

val to_string : Relation.t -> string

(** Raises [Sys_error] on I/O failure, [Failure] on malformed input. *)
val load : string -> Relation.t

val save : string -> Relation.t -> unit
