(** Generic joins between relations.

    The Datalog evaluator performs its own binding-passing joins; these
    free-standing operators serve the relational layer's own users (tests,
    the classic a-priori miner, CSV tooling) and the anti-join used to
    implement negated subgoals. *)

(** [equi a b pairs] is the equi-join of [a] and [b] on the column pairs
    [(col_of_a, col_of_b)].  The result schema is [a]'s columns followed by
    [b]'s columns that are not join targets; duplicate output names from [b]
    are suffixed with ['_2].  An empty [pairs] yields the cross product. *)
val equi : Relation.t -> Relation.t -> (string * string) list -> Relation.t

(** [semi a b pairs] keeps the tuples of [a] that join with at least one
    tuple of [b]. *)
val semi : Relation.t -> Relation.t -> (string * string) list -> Relation.t

(** [anti a b pairs] keeps the tuples of [a] that join with no tuple of [b]
    — the evaluation of a negated subgoal. *)
val anti : Relation.t -> Relation.t -> (string * string) list -> Relation.t
