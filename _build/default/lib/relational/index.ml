type t = { positions : int list; groups : Tuple.t list Tuple.Table.t }

let build rel positions =
  let groups = Tuple.Table.create (max 16 (Relation.cardinal rel / 4)) in
  Relation.iter
    (fun tup ->
      let key = Tuple.project positions tup in
      let existing =
        match Tuple.Table.find_opt groups key with Some l -> l | None -> []
      in
      Tuple.Table.replace groups key (tup :: existing))
    rel;
  { positions; groups }

let build_on rel cols =
  build rel (List.map (Schema.position (Relation.schema rel)) cols)

let lookup t key =
  match Tuple.Table.find_opt t.groups key with Some l -> l | None -> []

let key_count t = Tuple.Table.length t.groups
let iter_groups f t = Tuple.Table.iter f t.groups
