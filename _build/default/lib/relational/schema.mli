(** Relation schemas: an ordered list of distinct column names. *)

type t

(** Raises [Invalid_argument] if names are not distinct. *)
val of_list : string list -> t

val columns : t -> string list
val arity : t -> int

(** [position schema col] is the index of [col].  Raises [Not_found]. *)
val position : t -> string -> int

(** [position_opt schema col] is the index of [col], if present. *)
val position_opt : t -> string -> int option

val mem : t -> string -> bool
val equal : t -> t -> bool

(** [restrict schema cols] is the sub-schema with exactly [cols] (in the
    given order).  Raises [Not_found] if a column is absent. *)
val restrict : t -> string list -> t

(** [append a b] concatenates schemas.  Raises [Invalid_argument] on a
    duplicate column name. *)
val append : t -> t -> t

val pp : Format.formatter -> t -> unit
