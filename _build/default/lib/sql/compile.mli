(** Compile the Fig. 1 SQL fragment into a query flock (paper Sec. 2.2).

    The translation needs the catalog to resolve each table's column list:

    - every FROM entry becomes a positive subgoal whose arguments are fresh
      variables, one per column of the stored relation;
    - WHERE equalities between columns unify variables; equalities with a
      literal place the constant directly in the subgoal; other comparisons
      become arithmetic subgoals;
    - GROUP BY columns become the flock's parameters [$1, $2, ...] (in
      GROUP BY order); the SELECT list must equal the GROUP BY list — the
      flock's result {e is} the grouped column assignment;
    - for [COUNT], the HAVING aggregate's column becomes the head of the
      [answer] predicate, so the filter counts distinct values of that
      column per parameter assignment — SQL's [COUNT(DISTINCT ...)], which
      is what the paper's Fig. 1 means (support = number of baskets);
    - for [SUM]/[MIN]/[MAX], the head carries {e every} variable of the
      query: under set semantics the distinct full bindings are exactly the
      join's rows, so the aggregate ranges over SQL's group rows (this is
      why the paper's Fig. 10 writes [answer(B,W)], not [answer(W)]). *)

(** Compile a parsed query against a catalog. *)
val compile :
  Qf_relational.Catalog.t -> Sql_ast.query -> (Qf_core.Flock.t, string) result

(** Parse and compile in one step. *)
val of_string :
  Qf_relational.Catalog.t -> string -> (Qf_core.Flock.t, string) result
