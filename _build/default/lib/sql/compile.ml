module Ast = Qf_datalog.Ast
module Value = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module Schema = Qf_relational.Schema

let ( let* ) = Result.bind
let error fmt = Format.kasprintf (fun s -> Error s) fmt

(* Union-find over variable names, for WHERE equalities. *)
module Uf = struct
  let create () = Hashtbl.create 16

  let rec find t x =
    match Hashtbl.find_opt t x with
    | None -> x
    | Some p ->
      let r = find t p in
      Hashtbl.replace t x r;
      r

  let union t x y =
    let rx = find t x and ry = find t y in
    if not (String.equal rx ry) then Hashtbl.replace t rx ry
end

let var_name alias col = Printf.sprintf "V_%s_%s" alias col

let compile catalog (q : Sql_ast.query) =
  (* FROM: aliases must be distinct, tables known. *)
  let* () =
    let aliases = List.map snd q.from in
    if List.length (List.sort_uniq String.compare aliases) = List.length aliases
    then Ok ()
    else Error "duplicate alias in FROM"
  in
  let* tables =
    List.fold_left
      (fun acc (table, alias) ->
        let* items = acc in
        match Catalog.find_opt catalog table with
        | None -> error "unknown table %s" table
        | Some rel ->
          Ok ((alias, table, Schema.columns (Relation.schema rel)) :: items))
      (Ok []) q.from
  in
  let tables = List.rev tables in
  let resolve (c : Sql_ast.column) =
    match List.find_opt (fun (a, _, _) -> String.equal a c.alias) tables with
    | None -> error "unknown alias %s" c.alias
    | Some (_, table, columns) ->
      if List.mem c.column columns then Ok (var_name c.alias c.column)
      else error "table %s has no column %s" table c.column
  in
  (* WHERE: equalities unify; constants bind; the rest become arithmetic
     subgoals (expressed over representatives at the end). *)
  let uf = Uf.create () in
  let constants : (string, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let* cmps =
    List.fold_left
      (fun acc (p : Sql_ast.predicate) ->
        let* cmps = acc in
        match p.op, p.left, p.right with
        | Ast.Eq, Sql_ast.Col a, Sql_ast.Col b ->
          let* va = resolve a in
          let* vb = resolve b in
          Uf.union uf va vb;
          Ok cmps
        | Ast.Eq, Sql_ast.Col a, Sql_ast.Lit v
        | Ast.Eq, Sql_ast.Lit v, Sql_ast.Col a ->
          let* va = resolve a in
          Ok ((`Bind (va, v)) :: cmps)
        | _, _, _ ->
          let* left =
            match p.left with
            | Sql_ast.Col c -> Result.map (fun v -> `Var v) (resolve c)
            | Sql_ast.Lit v -> Ok (`Lit v)
          in
          let* right =
            match p.right with
            | Sql_ast.Col c -> Result.map (fun v -> `Var v) (resolve c)
            | Sql_ast.Lit v -> Ok (`Lit v)
          in
          Ok ((`Cmp (left, p.op, right)) :: cmps))
      (Ok []) q.where
  in
  let cmps = List.rev cmps in
  (* Apply constant bindings to representatives; detect contradictions. *)
  let* () =
    List.fold_left
      (fun acc item ->
        let* () = acc in
        match item with
        | `Bind (v, value) -> (
          let r = Uf.find uf v in
          match Hashtbl.find_opt constants r with
          | Some existing when not (Value.equal existing value) ->
            error "contradictory constants for %s" r
          | _ ->
            Hashtbl.replace constants r value;
            Ok ())
        | `Cmp _ -> Ok ())
      (Ok ()) cmps
  in
  (* GROUP BY columns become parameters $1..$k. *)
  let params : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let* () =
    List.fold_left
      (fun acc (i, col) ->
        let* () = acc in
        let* v = resolve col in
        let r = Uf.find uf v in
        if Hashtbl.mem constants r then
          error "grouped column %s.%s is fixed by a constant" col.alias
            col.column
        else if Hashtbl.mem params r then
          error "GROUP BY columns %s.%s duplicate an earlier grouped column"
            col.alias col.column
        else begin
          Hashtbl.replace params r (string_of_int (i + 1));
          Ok ()
        end)
      (Ok ())
      (List.mapi (fun i c -> i, c) q.group_by)
  in
  (* SELECT must be the GROUP BY list (the flock's result is the parameter
     assignment). *)
  let* () =
    if List.length q.select <> List.length q.group_by then
      Error "SELECT list must equal the GROUP BY list"
    else
      List.fold_left
        (fun acc (s, g) ->
          let* () = acc in
          let* vs = resolve s in
          let* vg = resolve g in
          if String.equal (Uf.find uf vs) (Uf.find uf vg) then Ok ()
          else
            error "SELECT %s.%s does not match GROUP BY %s.%s" s.alias s.column
              g.alias g.column)
        (Ok ())
        (List.combine q.select q.group_by)
  in
  let term_of_var v =
    let r = Uf.find uf v in
    match Hashtbl.find_opt constants r with
    | Some value -> Ast.Const value
    | None -> (
      match Hashtbl.find_opt params r with
      | Some p -> Ast.Param p
      | None -> Ast.Var r)
  in
  (* HAVING.  COUNT(c) counts the distinct values of c per group (the
     paper's reading of Fig. 1: support = number of baskets).  SUM/MIN/MAX
     aggregate over the distinct joined rows, so the head must carry every
     variable of the query — under set semantics the distinct full bindings
     are exactly the join's rows, mirroring Fig. 10's answer(B,W). *)
  let agg_column =
    match q.having.agg with
    | Sql_ast.Count c | Sql_ast.Sum c | Sql_ast.Min c | Sql_ast.Max c -> c
  in
  let* head_var = resolve agg_column in
  let* agg_term =
    match term_of_var head_var with
    | Ast.Var _ as t -> Ok t
    | Ast.Param _ ->
      error "HAVING aggregates grouped column %s.%s" agg_column.alias
        agg_column.column
    | Ast.Const _ -> error "HAVING aggregates a column fixed to a constant"
  in
  let agg_var = match agg_term with Ast.Var v -> v | _ -> assert false in
  let all_row_vars =
    (* Every representative variable of the query, agg column first so its
       head-column name is just the variable name. *)
    let rest =
      List.concat_map
        (fun (alias, _, columns) ->
          List.filter_map
            (fun c ->
              match term_of_var (var_name alias c) with
              | Ast.Var v when not (String.equal v agg_var) -> Some v
              | Ast.Var _ | Ast.Param _ | Ast.Const _ -> None)
            columns)
        tables
      |> List.sort_uniq String.compare
    in
    agg_var :: rest
  in
  let head_args, filter_agg =
    match q.having.agg with
    | Sql_ast.Count _ -> [ agg_term ], Qf_core.Filter.Count
    | Sql_ast.Sum _ ->
      List.map (fun v -> Ast.Var v) all_row_vars, Qf_core.Filter.Sum agg_var
    | Sql_ast.Min _ -> [ agg_term ], Qf_core.Filter.Min agg_var
    | Sql_ast.Max _ -> [ agg_term ], Qf_core.Filter.Max agg_var
  in
  (* Assemble the rule. *)
  let atoms =
    List.map
      (fun (alias, table, columns) ->
        Ast.Pos
          {
            Ast.pred = table;
            args = List.map (fun c -> term_of_var (var_name alias c)) columns;
          })
      tables
  in
  let arith =
    List.filter_map
      (function
        | `Cmp (left, op, right) ->
          let term = function
            | `Var v -> term_of_var v
            | `Lit value -> Ast.Const value
          in
          Some (Ast.Cmp (term left, op, term right))
        | `Bind _ -> None)
      cmps
  in
  let rule =
    { Ast.head = { Ast.pred = "answer"; args = head_args };
      body = atoms @ arith }
  in
  Qf_core.Flock.make [ rule ]
    { Qf_core.Filter.agg = filter_agg; threshold = q.having.lower_bound }

let of_string catalog text =
  let* q = Sql_parser.parse text in
  compile catalog q
