(** Parser for the Fig. 1 SQL fragment.

    Keywords are case-insensitive; identifiers keep their case.  String
    literals use single quotes (['beer']); [<>] and [!=] both mean
    not-equal.  [HAVING] accepts both orientations of the lower bound
    ([COUNT(c) >= n] and [n <= COUNT(c)]) and normalizes them. *)

val parse : string -> (Sql_ast.query, string) result
val parse_exn : string -> Sql_ast.query
