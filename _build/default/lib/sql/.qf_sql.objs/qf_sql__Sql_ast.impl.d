lib/sql/sql_ast.ml: Format Qf_datalog Qf_relational String
