lib/sql/sql_parser.ml: Array Buffer Format List Qf_datalog Qf_relational Sql_ast String
