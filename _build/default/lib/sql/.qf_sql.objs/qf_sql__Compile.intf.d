lib/sql/compile.mli: Qf_core Qf_relational Sql_ast
