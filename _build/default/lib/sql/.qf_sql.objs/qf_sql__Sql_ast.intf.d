lib/sql/sql_ast.mli: Format Qf_datalog Qf_relational
