lib/sql/compile.ml: Format Hashtbl List Printf Qf_core Qf_datalog Qf_relational Result Sql_ast Sql_parser String
