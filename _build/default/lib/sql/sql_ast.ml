type column = { alias : string; column : string }

type operand =
  | Col of column
  | Lit of Qf_relational.Value.t

type predicate = {
  left : operand;
  op : Qf_datalog.Ast.comparison;
  right : operand;
}

type aggregate =
  | Count of column
  | Sum of column
  | Min of column
  | Max of column

type having = { agg : aggregate; lower_bound : float }

type query = {
  select : column list;
  from : (string * string) list;
  where : predicate list;
  group_by : column list;
  having : having;
}

let pp_column ppf c = Format.fprintf ppf "%s.%s" c.alias c.column

let pp_operand ppf = function
  | Col c -> pp_column ppf c
  | Lit v -> Qf_relational.Value.pp ppf v

let pp_aggregate ppf = function
  | Count c -> Format.fprintf ppf "COUNT(%a)" pp_column c
  | Sum c -> Format.fprintf ppf "SUM(%a)" pp_column c
  | Min c -> Format.fprintf ppf "MIN(%a)" pp_column c
  | Max c -> Format.fprintf ppf "MAX(%a)" pp_column c

let pp_list pp ppf items =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf items

let pp_query ppf q =
  Format.fprintf ppf "@[<v>SELECT %a@,FROM %a@," (pp_list pp_column) q.select
    (pp_list (fun ppf (t, a) ->
         if String.equal t a then Format.pp_print_string ppf t
         else Format.fprintf ppf "%s %s" t a))
    q.from;
  if q.where <> [] then
    Format.fprintf ppf "WHERE %a@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " AND ")
         (fun ppf (p : predicate) ->
           Format.fprintf ppf "%a %s %a" pp_operand p.left
             (Qf_datalog.Ast.comparison_to_string p.op)
             pp_operand p.right))
      q.where;
  Format.fprintf ppf "GROUP BY %a@,HAVING %g <= %a@]" (pp_list pp_column)
    q.group_by q.having.lower_bound pp_aggregate q.having.agg
