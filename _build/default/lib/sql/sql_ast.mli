(** Abstract syntax for the SQL subset the paper's Fig. 1 lives in:

    {v
    SELECT i1.Item, i2.Item
    FROM baskets i1, baskets i2
    WHERE i1.Item < i2.Item AND i1.BID = i2.BID
    GROUP BY i1.Item, i2.Item
    HAVING 20 <= COUNT(i1.BID)
    v}

    — conjunctive SELECT-FROM-WHERE with self-joins, GROUP BY, and a single
    aggregate lower bound in HAVING.  This is exactly the fragment that
    translates to query flocks with support-style filters (Sec. 2.2). *)

(** A qualified column reference [alias.column]. *)
type column = { alias : string; column : string }

type operand =
  | Col of column
  | Lit of Qf_relational.Value.t

(** The comparison operators of the paper's queries. *)
type predicate = {
  left : operand;
  op : Qf_datalog.Ast.comparison;
  right : operand;
}

type aggregate =
  | Count of column
  | Sum of column
  | Min of column
  | Max of column

(** [HAVING n <= AGG(col)] or [HAVING AGG(col) >= n], normalized to a lower
    bound. *)
type having = { agg : aggregate; lower_bound : float }

type query = {
  select : column list;
  from : (string * string) list;  (** (table, alias); alias defaults to table *)
  where : predicate list;  (** conjunction *)
  group_by : column list;
  having : having;
}

val pp_column : Format.formatter -> column -> unit
val pp_query : Format.formatter -> query -> unit
