module Value = Qf_relational.Value
module Ast = Qf_datalog.Ast

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* {1 Lexer} *)

type token =
  | Kw of string  (** uppercased keyword *)
  | Ident of string
  | Int of int
  | Real of float
  | String of string
  | Cmp of Ast.comparison
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Eof

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "GROUP"; "BY"; "HAVING"; "AS";
    "COUNT"; "SUM"; "MIN"; "MAX" ]

let pp_token ppf = function
  | Kw k -> Format.pp_print_string ppf k
  | Ident s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Real f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "'%s'" s
  | Cmp c -> Format.pp_print_string ppf (Ast.comparison_to_string c)
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Comma -> Format.pp_print_string ppf ","
  | Dot -> Format.pp_print_string ppf "."
  | Star -> Format.pp_print_string ppf "*"
  | Eof -> Format.pp_print_string ppf "<eof>"

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let tokenize input =
  let n = String.length input in
  let out = ref [] in
  let emit t = out := t :: !out in
  let rec ident_end i =
    if i < n && is_ident_char input.[i] then ident_end (i + 1) else i
  in
  let rec digits i = if i < n && is_digit input.[i] then digits (i + 1) else i in
  let rec string_end i buf =
    if i >= n then fail "unterminated string literal"
    else if input.[i] = '\'' then
      if i + 1 < n && input.[i + 1] = '\'' then begin
        Buffer.add_char buf '\'';
        string_end (i + 2) buf
      end
      else i + 1
    else begin
      Buffer.add_char buf input.[i];
      string_end (i + 1) buf
    end
  in
  let rec loop i =
    if i >= n then emit Eof
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
        let rec eol i = if i < n && input.[i] <> '\n' then eol (i + 1) else i in
        loop (eol i)
      | '(' ->
        emit Lparen;
        loop (i + 1)
      | ')' ->
        emit Rparen;
        loop (i + 1)
      | ',' ->
        emit Comma;
        loop (i + 1)
      | '.' ->
        emit Dot;
        loop (i + 1)
      | '*' ->
        emit Star;
        loop (i + 1)
      | '\'' ->
        let buf = Buffer.create 16 in
        let j = string_end (i + 1) buf in
        emit (String (Buffer.contents buf));
        loop j
      | '<' when i + 1 < n && input.[i + 1] = '=' ->
        emit (Cmp Ast.Le);
        loop (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '>' ->
        emit (Cmp Ast.Ne);
        loop (i + 2)
      | '<' ->
        emit (Cmp Ast.Lt);
        loop (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' ->
        emit (Cmp Ast.Ge);
        loop (i + 2)
      | '>' ->
        emit (Cmp Ast.Gt);
        loop (i + 1)
      | '!' when i + 1 < n && input.[i + 1] = '=' ->
        emit (Cmp Ast.Ne);
        loop (i + 2)
      | '=' ->
        emit (Cmp Ast.Eq);
        loop (i + 1)
      | '0' .. '9' ->
        let j = digits i in
        if j < n && input.[j] = '.' && j + 1 < n && is_digit input.[j + 1] then begin
          let j = digits (j + 1) in
          emit (Real (float_of_string (String.sub input i (j - i))));
          loop j
        end
        else begin
          emit (Int (int_of_string (String.sub input i (j - i))));
          loop j
        end
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ident_end i in
        let word = String.sub input i (j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (Kw upper) else emit (Ident word);
        loop j
      | c -> fail "illegal character %C" c
  in
  loop 0;
  List.rev !out

(* {1 Parser} *)

type state = { tokens : token array; mutable pos : int }

let peek st = if st.pos < Array.length st.tokens then st.tokens.(st.pos) else Eof

let next st =
  let t = peek st in
  if t <> Eof then st.pos <- st.pos + 1;
  t

let expect_kw st kw =
  match next st with
  | Kw k when String.equal k kw -> ()
  | t -> fail "expected %s, found %a" kw (fun ppf -> pp_token ppf) t

let expect st tok =
  let t = next st in
  if t <> tok then
    fail "expected %a, found %a" (fun ppf -> pp_token ppf) tok
      (fun ppf -> pp_token ppf) t

let ident st =
  match next st with
  | Ident s -> s
  | t -> fail "expected an identifier, found %a" (fun ppf -> pp_token ppf) t

(* alias.column *)
let column st =
  let alias = ident st in
  expect st Dot;
  let col = ident st in
  { Sql_ast.alias; column = col }

let operand st =
  match peek st with
  | Ident _ -> Sql_ast.Col (column st)
  | Int i ->
    ignore (next st);
    Sql_ast.Lit (Value.Int i)
  | Real f ->
    ignore (next st);
    Sql_ast.Lit (Value.Real f)
  | String s ->
    ignore (next st);
    Sql_ast.Lit (Value.Str s)
  | t -> fail "expected a column or literal, found %a" (fun ppf -> pp_token ppf) t

let comma_list st parse_item =
  let rec more acc =
    let item = parse_item st in
    match peek st with
    | Comma ->
      ignore (next st);
      more (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  more []

let predicate st =
  let left = operand st in
  let op =
    match next st with
    | Cmp c -> c
    | t -> fail "expected a comparison, found %a" (fun ppf -> pp_token ppf) t
  in
  let right = operand st in
  { Sql_ast.left; op; right }

let aggregate st =
  let make kw =
    expect st Lparen;
    let c = column st in
    expect st Rparen;
    match kw with
    | "COUNT" -> Sql_ast.Count c
    | "SUM" -> Sql_ast.Sum c
    | "MIN" -> Sql_ast.Min c
    | "MAX" -> Sql_ast.Max c
    | _ -> assert false
  in
  match next st with
  | Kw (("COUNT" | "SUM" | "MIN" | "MAX") as kw) -> make kw
  | t -> fail "expected an aggregate, found %a" (fun ppf -> pp_token ppf) t

let number st =
  match next st with
  | Int i -> float_of_int i
  | Real f -> f
  | t -> fail "expected a number, found %a" (fun ppf -> pp_token ppf) t

(* HAVING n <= AGG(c)   or   HAVING AGG(c) >= n *)
let having st =
  match peek st with
  | Int _ | Real _ ->
    let bound = number st in
    (match next st with
    | Cmp Ast.Le -> ()
    | Cmp Ast.Lt -> fail "HAVING requires a non-strict bound (<= or >=)"
    | t -> fail "expected <=, found %a" (fun ppf -> pp_token ppf) t);
    let agg = aggregate st in
    { Sql_ast.agg; lower_bound = bound }
  | _ ->
    let agg = aggregate st in
    (match next st with
    | Cmp Ast.Ge -> ()
    | Cmp Ast.Gt -> fail "HAVING requires a non-strict bound (<= or >=)"
    | t -> fail "expected >=, found %a" (fun ppf -> pp_token ppf) t);
    let bound = number st in
    { Sql_ast.agg; lower_bound = bound }

let from_item st =
  let table = ident st in
  match peek st with
  | Ident _ -> table, ident st
  | Kw "AS" ->
    ignore (next st);
    table, ident st
  | _ -> table, table

let query st =
  expect_kw st "SELECT";
  let select = comma_list st column in
  expect_kw st "FROM";
  let from = comma_list st from_item in
  let where =
    match peek st with
    | Kw "WHERE" ->
      ignore (next st);
      let rec preds acc =
        let p = predicate st in
        match peek st with
        | Kw "AND" ->
          ignore (next st);
          preds (p :: acc)
        | _ -> List.rev (p :: acc)
      in
      preds []
    | _ -> []
  in
  expect_kw st "GROUP";
  expect_kw st "BY";
  let group_by = comma_list st column in
  expect_kw st "HAVING";
  let hv = having st in
  (match peek st with
  | Eof -> ()
  | t -> fail "trailing input: %a" (fun ppf -> pp_token ppf) t);
  { Sql_ast.select; from; where; group_by; having = hv }

let parse text =
  match query { tokens = Array.of_list (tokenize text); pos = 0 } with
  | q -> Ok q
  | exception Error msg -> Error msg

let parse_exn text =
  match parse text with
  | Ok q -> q
  | Error msg -> invalid_arg ("Sql_parser.parse: " ^ msg)
