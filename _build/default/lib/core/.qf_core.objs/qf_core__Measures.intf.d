lib/core/measures.mli: Format Qf_relational
