lib/core/dynamic.mli: Flock Qf_relational Stdlib
