lib/core/apriori_gen.ml: Array Cost Filter Flock Format List Option Plan Printf Qf_datalog Result String
