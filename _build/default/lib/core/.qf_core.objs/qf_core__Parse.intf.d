lib/core/parse.mli: Flock Qf_datalog
