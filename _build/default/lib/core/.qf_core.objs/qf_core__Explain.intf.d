lib/core/explain.mli: Filter Format Plan
