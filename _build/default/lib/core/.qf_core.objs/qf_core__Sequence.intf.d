lib/core/sequence.mli: Qf_relational
