lib/core/cost.mli: Plan Qf_datalog Qf_relational
