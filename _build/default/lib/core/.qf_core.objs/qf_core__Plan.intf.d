lib/core/plan.mli: Flock Qf_datalog
