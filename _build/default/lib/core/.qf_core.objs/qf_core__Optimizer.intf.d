lib/core/optimizer.mli: Flock Plan Qf_relational
