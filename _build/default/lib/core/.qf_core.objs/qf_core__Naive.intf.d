lib/core/naive.mli: Flock Qf_relational
