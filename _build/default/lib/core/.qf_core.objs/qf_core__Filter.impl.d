lib/core/filter.ml: Float Format List Printf Qf_relational String
