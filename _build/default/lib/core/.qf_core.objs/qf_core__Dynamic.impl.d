lib/core/dynamic.ml: Array Filter Float Flock Hashtbl List Logs Option Printf Qf_datalog Qf_relational Result String
