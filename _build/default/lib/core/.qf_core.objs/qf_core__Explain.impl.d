lib/core/explain.ml: Filter Flock Format List Plan Printf Qf_datalog String
