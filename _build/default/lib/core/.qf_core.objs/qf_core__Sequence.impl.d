lib/core/sequence.ml: Array List Printf Qf_datalog Qf_relational
