lib/core/measures.ml: Apriori_gen Array Direct Float Format List Qf_relational
