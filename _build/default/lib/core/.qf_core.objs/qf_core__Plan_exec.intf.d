lib/core/plan_exec.mli: Plan Qf_relational
