lib/core/plan_exec.ml: Filter Flock Hashtbl List Logs Plan Printf Qf_datalog Qf_relational
