lib/core/filter.mli: Format Qf_relational
