lib/core/plan.ml: Filter Flock Format List Qf_datalog Result String
