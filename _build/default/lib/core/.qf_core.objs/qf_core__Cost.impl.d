lib/core/cost.ml: Array Float List Option Plan Printf Qf_datalog Qf_relational String
