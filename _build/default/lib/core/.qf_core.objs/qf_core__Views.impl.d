lib/core/views.ml: Qf_datalog
