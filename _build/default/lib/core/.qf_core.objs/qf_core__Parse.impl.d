lib/core/parse.ml: Filter Flock Format List Printf Qf_datalog Result String
