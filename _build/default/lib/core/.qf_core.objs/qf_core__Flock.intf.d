lib/core/flock.mli: Filter Format Qf_datalog
