lib/core/flock.ml: Filter Format List Qf_datalog Result
