lib/core/views.mli: Qf_datalog Qf_relational
