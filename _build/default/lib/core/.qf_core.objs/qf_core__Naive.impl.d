lib/core/naive.ml: Filter Flock List Option Printf Qf_datalog Qf_relational Set String
