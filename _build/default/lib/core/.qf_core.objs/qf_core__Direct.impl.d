lib/core/direct.ml: Filter Flock Qf_datalog Qf_relational
