lib/core/direct.mli: Flock Qf_relational
