lib/core/optimizer.ml: Apriori_gen Cost Filter Float Flock List Plan
