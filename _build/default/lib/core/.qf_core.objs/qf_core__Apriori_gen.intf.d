lib/core/apriori_gen.mli: Cost Flock Plan
