module Lexer = Qf_datalog.Lexer
module Parser = Qf_datalog.Parser

let parse_agg st head_pred =
  let agg_name =
    match Parser.next st with
    | Lexer.Uident name -> name
    | tok ->
      raise
        (Parser.Error
           (Format.asprintf "expected an aggregate name, found %a"
              Lexer.pp_token tok))
  in
  Parser.expect st Lexer.Lparen;
  (match Parser.next st with
  | Lexer.Lident p when String.equal p head_pred -> ()
  | Lexer.Lident p ->
    raise
      (Parser.Error
         (Printf.sprintf "filter aggregates %s but the query head is %s" p
            head_pred))
  | tok ->
    raise
      (Parser.Error
         (Format.asprintf "expected the head predicate name, found %a"
            Lexer.pp_token tok)));
  let column =
    match Parser.next st with
    | Lexer.Dot -> (
      match Parser.next st with
      | Lexer.Uident c | Lexer.Lident c -> Some c
      | tok ->
        raise
          (Parser.Error
             (Format.asprintf "expected a column name, found %a" Lexer.pp_token
                tok)))
    | Lexer.Lparen ->
      Parser.expect st Lexer.Star;
      Parser.expect st Lexer.Rparen;
      None
    | tok ->
      raise
        (Parser.Error
           (Format.asprintf "expected '.' or '(*)', found %a" Lexer.pp_token
              tok))
  in
  Parser.expect st Lexer.Rparen;
  Parser.expect st (Lexer.Cmp Qf_datalog.Ast.Ge);
  let threshold =
    match Parser.next st with
    | Lexer.Int i -> float_of_int i
    | Lexer.Real f -> f
    | tok ->
      raise
        (Parser.Error
           (Format.asprintf "expected a numeric threshold, found %a"
              Lexer.pp_token tok))
  in
  let agg =
    match agg_name, column with
    | "COUNT", _ -> Filter.Count
    | "SUM", Some c -> Filter.Sum c
    | "MIN", Some c -> Filter.Min c
    | "MAX", Some c -> Filter.Max c
    | ("SUM" | "MIN" | "MAX"), None ->
      raise (Parser.Error (agg_name ^ " requires a column, not (*)"))
    | other, _ ->
      raise (Parser.Error (Printf.sprintf "unknown aggregate %s" other))
  in
  { Filter.agg; threshold }

type program = {
  views : Qf_datalog.Ast.rule list;
  flock : Flock.t;
}

let parse_program_tokens st =
  let views =
    match Parser.peek st with
    | Lexer.Views_kw ->
      ignore (Parser.next st);
      Parser.rules st
    | _ -> []
  in
  Parser.expect st Lexer.Query_kw;
  let rules = Parser.rules st in
  Parser.expect st Lexer.Filter_kw;
  let head_pred = (List.hd rules).Qf_datalog.Ast.head.pred in
  let filter = parse_agg st head_pred in
  (match Parser.peek st with
  | Lexer.Eof -> ()
  | tok ->
    raise
      (Parser.Error
         (Format.asprintf "trailing input after filter: %a" Lexer.pp_token tok)));
  views, rules, filter

let check_view_rule (r : Qf_datalog.Ast.rule) =
  let ( let* ) = Result.bind in
  let* () = Qf_datalog.Safety.check r in
  if Qf_datalog.Ast.rule_params r = [] then Ok ()
  else
    Error
      (Printf.sprintf "view %s: views may not mention parameters"
         r.head.pred)

let program text =
  match
    let st = Parser.of_string text in
    let views, rules, filter = parse_program_tokens st in
    Result.bind
      (List.fold_left
         (fun acc r -> Result.bind acc (fun () -> check_view_rule r))
         (Ok ()) views)
      (fun () ->
        Result.map (fun flock -> { views; flock }) (Flock.make rules filter))
  with
  | result -> result
  | exception Parser.Error msg -> Error msg

let flock text =
  Result.bind (program text) (fun p ->
      if p.views = [] then Ok p.flock
      else Error "program has a VIEWS: section; use Parse.program")

let flock_exn text =
  match flock text with
  | Ok f -> f
  | Error msg -> invalid_arg ("Parse.flock: " ^ msg)

let program_exn text =
  match program text with
  | Ok p -> p
  | Error msg -> invalid_arg ("Parse.program: " ^ msg)
