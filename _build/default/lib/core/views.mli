(** Intermediate predicates — the language extension sketched in the
    paper's Sec. 2.3: "To include patients with several diseases
    simultaneously, we would have to extend our query-flocks language to
    allow intermediate predicates (in particular, a predicate relating
    patients to the set of symptoms from all their diseases).  That
    extension is feasible ..."

    Views are parameter-free Datalog rules materialized before the flock
    runs; the flock's query then uses the view predicates like stored
    relations.  Views may be {e recursive} (e.g. transitive closure) as
    long as the program is stratified — evaluation is the semi-naive
    fixpoint of {!Qf_datalog.Fixpoint}. *)

(** Validate a view program against a catalog: every rule safe and
    parameter-free, no head shadowing a stored relation, per-head arity
    agreement, body predicates known, stratified negation. *)
val check :
  Qf_relational.Catalog.t -> Qf_datalog.Ast.rule list -> (unit, string) result

(** Materialize the views into a copy of the catalog (the input catalog is
    untouched).  Runs {!check} first. *)
val materialize :
  Qf_relational.Catalog.t ->
  Qf_datalog.Ast.rule list ->
  (Qf_relational.Catalog.t, string) result
