(** Direct ("SQL-style") flock evaluation — the paper's Fig. 1 baseline.

    Evaluate the full query with parameters as free grouping variables,
    group by the parameters, aggregate the distinct answer tuples of each
    group, and keep the groups passing the filter.  This is what a
    conventional DBMS does with the GROUP BY / HAVING formulation, with no
    a-priori pruning — correct, and the yardstick the optimized plans are
    measured against. *)

(** Result relation over the flock's {!Flock.result_columns}. *)
val run : Qf_relational.Catalog.t -> Flock.t -> Qf_relational.Relation.t

(** The tabulated (ungrouped) relation: parameters columns followed by head
    columns.  Exposed for diagnostics and benchmarks that want to report
    intermediate sizes. *)
val tabulate : Qf_relational.Catalog.t -> Flock.t -> Qf_relational.Relation.t
