module Ast = Qf_datalog.Ast
module Safety = Qf_datalog.Safety
module Eval = Qf_datalog.Eval
module Pretty = Qf_datalog.Pretty

type t = { query : Ast.query; filter : Filter.t }

let head_columns_of_query q = Eval.head_columns (List.hd q)

let make query filter =
  let ( let* ) r f = Result.bind r f in
  let* () = Ast.wf_query query in
  let* () = Safety.check_query query in
  let* () =
    if Ast.query_params query = [] then
      Error "flock has no parameters: nothing to mine"
    else Ok ()
  in
  let* () =
    match
      Filter.to_aggregate filter ~head_columns:(head_columns_of_query query)
    with
    | _ -> Ok ()
    | exception Failure msg -> Error msg
  in
  Ok { query; filter }

let make_exn query filter =
  match make query filter with
  | Ok t -> t
  | Error msg -> invalid_arg ("Flock.make: " ^ msg)

let params t = Ast.query_params t.query
let result_columns t = List.map (fun p -> "$" ^ p) (params t)
let head_name t = (List.hd t.query).Ast.head.pred
let head_columns t = head_columns_of_query t.query
let rule_count t = List.length t.query

let pp ppf t =
  Format.fprintf ppf "@[<v>QUERY:@,@,%a@,@,FILTER:@,@,%a@]" Pretty.pp_query
    t.query
    (Filter.pp ~head:(head_name t))
    t.filter

let to_string t = Format.asprintf "%a" pp t
let equal a b = List.equal Ast.equal_rule a.query b.query && Filter.equal a.filter b.filter
