module Pretty = Qf_datalog.Pretty

let pp_params ppf params =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf p -> Format.fprintf ppf "$%s" p))
    params

let pp_step ~filter ~head ppf (s : Plan.step) =
  Format.fprintf ppf "@[<v 4>%s%a := FILTER(%a,@,%a,@,%a@]@,);" s.name
    pp_params s.params pp_params s.params Pretty.pp_query s.query
    (Filter.pp ~head) filter

let pp_plan ppf (plan : Plan.t) =
  let head = Flock.head_name plan.flock in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
       (pp_step ~filter:plan.flock.filter ~head))
    (Plan.all_steps plan)

let plan_to_string plan = Format.asprintf "%a" pp_plan plan

let plan_summary (plan : Plan.t) =
  Plan.all_steps plan
  |> List.map (fun (s : Plan.step) ->
         Printf.sprintf "%s(%s)" s.name
           (String.concat "," (List.map (fun p -> "$" ^ p) s.params)))
  |> String.concat " -> "
