module Eval = Qf_datalog.Eval
module Aggregate = Qf_relational.Aggregate

let tabulate catalog (flock : Flock.t) = Eval.tabulate_query catalog flock.query

let run catalog (flock : Flock.t) =
  let tab = tabulate catalog flock in
  let func =
    Filter.to_aggregate flock.filter ~head_columns:(Flock.head_columns flock)
  in
  Aggregate.group_filter tab
    ~keys:(Flock.result_columns flock)
    ~func ~threshold:flock.filter.threshold
