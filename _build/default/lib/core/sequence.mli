(** Sequences of query flocks (paper Sec. 2.2, footnote 2):

    "finding something more complex, like the set of {e maximal} sets of
    items that appear in at least c baskets (regardless of the cardinality
    of the set of items) ... would be expressed as a sequence of query
    flocks for increasing cardinalities, with each flock depending on the
    result of the previous flock."

    {!frequent_levels} runs exactly that sequence: the k-th flock is the
    k-item basket flock whose body is pruned by the (k−1)-th flock's result
    relation (applied to every (k−1)-subset of its parameters, the
    parameter-symmetry trick of footnote 3).  {!maximal} then keeps the
    itemsets with no frequent superset. *)

type level = {
  k : int;
  itemsets : Qf_relational.Relation.t;
      (** frequent k-item sets; columns [$1..$k], values ascending within
          each tuple *)
}

(** Run the flock sequence until a level comes back empty (or [max_k] is
    reached, default 9 — the basket-flock limit).  Level 1 is computed by
    direct grouping.  The relation [pred] must have columns [(BID, Item)]. *)
val frequent_levels :
  ?max_k:int ->
  Qf_relational.Catalog.t ->
  pred:string ->
  support:int ->
  level list

(** Itemsets (as tuples, with their level) that have no frequent superset
    one level up.  Sorted by level, then tuple order. *)
val maximal : level list -> (int * Qf_relational.Tuple.t) list
