(* Views are exactly parameter-free stratified Datalog programs; the heavy
   lifting (stratification, semi-naive fixpoint) lives in
   {!Qf_datalog.Fixpoint}. *)

let check = Qf_datalog.Fixpoint.check
let materialize = Qf_datalog.Fixpoint.materialize
