(** Rendering plans in the paper's FILTER-program notation (cf. Fig. 5):

    {v
    ok_s($s) := FILTER(($s),
        answer(P) :-
            exhibits(P,$s),
        COUNT(answer(star)) >= 20
    );
    v}

    where [star] stands for the asterisk the real output prints. *)

val pp_step : filter:Filter.t -> head:string -> Format.formatter -> Plan.step -> unit
val pp_plan : Format.formatter -> Plan.t -> unit
val plan_to_string : Plan.t -> string

(** One-line summary: step names with their parameter sets. *)
val plan_summary : Plan.t -> string
