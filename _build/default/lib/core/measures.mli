(** The three association measures of the paper's Sec. 1.1 — support,
    confidence, interest — computed at the flock level for item pairs.

    Support comes from the pair flock (evaluated with its a-priori plan);
    confidence and interest relate the pair's support to the items' own
    supports:

    - [confidence (a -> b) = support {a,b} / support {a}];
    - [interest (a -> b) = confidence / P(b)] where [P(b) = support {b} /
      number of baskets].  Interest far from 1 means the rule says more
      than item popularity alone (the paper's beer/diapers discussion). *)

type rule = {
  antecedent : Qf_relational.Value.t;
  consequent : Qf_relational.Value.t;
  pair_support : int;
  confidence : float;
  interest : float;
}

(** [pair_rules catalog ~pred ~support ~min_confidence] mines the
    [(BID, Item)] relation stored under [pred]: pairs with at least
    [support] baskets, turned into directed rules meeting
    [min_confidence], sorted by descending interest.  Raises [Failure] if
    [pred] is missing and [Invalid_argument] if [support < 1]. *)
val pair_rules :
  Qf_relational.Catalog.t ->
  pred:string ->
  support:int ->
  min_confidence:float ->
  rule list

val pp_rule : Format.formatter -> rule -> unit
