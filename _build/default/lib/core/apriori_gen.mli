(** Plan generation: the generalized a-priori strategies of Sec. 4.3.

    Strategy 1 ({!param_set_plan}): choose parameter sets; for each, one
    FILTER step built from a safe subquery with exactly those parameters
    (per rule of the union, Sec. 3.4); the final step joins all resulting
    [ok] relations into the original query.  This specializes to classic
    a-priori for two-item sets.

    Strategy 2 ({!chain_plan}): a sequence of steps over growing subsets of
    the subgoals, each step's query including the previous step's [ok]
    relation — the (n+1)-step plan of Fig. 7.  {!levelwise_basket} uses the
    same idea plus parameter symmetry to reproduce classic a-priori for
    k-item sets (footnote 3). *)

(** How to choose, per rule, among the safe subqueries with a given
    parameter set.  [`Fewest_subgoals] favors the cheapest-looking bound;
    [`Cheapest env] ranks by {!Cost.estimate_rule}. *)
type selection = [ `Fewest_subgoals | `Cheapest of Cost.env ]

(** [param_set_plan flock ~param_sets] builds a strategy-1 plan with one
    auxiliary step per parameter set (in the given order).  Fails if some
    rule of the union has no safe subquery for one of the sets, or if a set
    is empty/not a subset of the flock's parameters. *)
val param_set_plan :
  ?selection:selection ->
  Flock.t ->
  param_sets:string list list ->
  (Plan.t, string) result

(** Strategy 1 with every singleton parameter set (the Fig. 5 shape).
    Parameter sets that admit no safe subquery are skipped silently. *)
val singleton_plan : ?selection:selection -> Flock.t -> (Plan.t, string) result

(** [chain_plan flock ~prefixes] (single-rule flocks): step [k] keeps the
    body literals whose indices are in [List.nth prefixes k] plus the
    previous step's [ok] subgoal.  Every prefix must yield a safe rule with
    the full parameter set.  Reproduces Fig. 7 when the prefixes grow one
    arc at a time. *)
val chain_plan : Flock.t -> prefixes:int list list -> (Plan.t, string) result

(** [basket_flock ~pred ~k ~support] is the market-basket flock for k-item
    sets: [answer(B) :- pred(B,$i1) AND ... AND pred(B,$ik) AND $i1 < $i2
    AND ...], [COUNT >= support]. *)
val basket_flock : pred:string -> k:int -> support:int -> Flock.t

(** The levelwise a-priori plan for {!basket_flock}: one step per level
    [j = 1 .. k-1] computing the frequent [j]-sets, each level pruned by
    {e all} its [(j-1)]-subsets via the symmetry of the parameters; the
    final step computes the frequent k-sets.  This is classic a-priori
    expressed as a query-flock plan. *)
val levelwise_basket : pred:string -> k:int -> support:int -> Flock.t * Plan.t
