(** Query flocks (paper Sec. 2): a parametrized query plus a filter.

    The {e result} of a flock is the set of parameter assignments for which
    the instantiated query's answer passes the filter — a relation whose
    columns are the parameters, not the query's answer. *)

type t = private {
  query : Qf_datalog.Ast.query;  (** union of extended CQs *)
  filter : Filter.t;
}

(** Validates {!Qf_datalog.Ast.wf_query}, safety of every rule, at least one
    parameter, and that a [SUM]/[MIN]/[MAX] filter names a head column. *)
val make : Qf_datalog.Ast.query -> Filter.t -> (t, string) result

(** Like {!make} but raises [Invalid_argument]. *)
val make_exn : Qf_datalog.Ast.query -> Filter.t -> t

(** Sorted parameter names (without [$]). *)
val params : t -> string list

(** Result schema column names: parameters prefixed with [$], sorted. *)
val result_columns : t -> string list

(** Head predicate name (e.g. ["answer"]). *)
val head_name : t -> string

(** Head column names (see {!Qf_datalog.Eval.head_columns}), taken from the
    first rule of the union. *)
val head_columns : t -> string list

(** Number of rules in the union. *)
val rule_count : t -> int

val pp : Format.formatter -> t -> unit

(** Render as a full flock program ([QUERY:] / [FILTER:] sections);
    re-parses with {!Parse.flock} to an equal flock. *)
val to_string : t -> string

val equal : t -> t -> bool
