(** Reference semantics: generate-and-test (paper Sec. 2).

    "We determine the acceptable parameter assignments by, in principle,
    trying all such assignments in the query, evaluating the query, and
    seeing whether the result passes the filter test."

    The assignment space is the cross product of each parameter's {e active
    domain} — the values the parameter can take from the columns where it
    occurs in positive subgoals (any assignment outside it yields an empty
    answer and cannot pass a support filter with positive threshold).  This
    evaluator is exponential and exists as the oracle the optimized
    evaluators are tested against. *)

(** Raises [Invalid_argument] if the assignment space exceeds
    [max_assignments] (default [2_000_000]); raises
    {!Qf_datalog.Eval.Error} on evaluation failure. *)
val run :
  ?max_assignments:int ->
  Qf_relational.Catalog.t ->
  Flock.t ->
  Qf_relational.Relation.t

(** The per-parameter active domains used by {!run}: for each parameter (in
    sorted order), the union over rules of the intersection, within a rule,
    of the column values at the parameter's positive occurrences. *)
val domains :
  Qf_relational.Catalog.t ->
  Flock.t ->
  (string * Qf_relational.Value.t list) list
