(** Parser for complete flock programs in the paper's notation:

    {v
    QUERY:

    answer(B) :-
        baskets(B,$1) AND
        baskets(B,$2) AND
        $1 < $2

    FILTER:

    COUNT(answer.B) >= 20
    v}

    The filter line is [AGG(head.Column) >= n] or [AGG(head(star)) >= n] (star written `*`) with
    [AGG] one of [COUNT]/[SUM]/[MIN]/[MAX].  [COUNT(head.X)] is normalized
    to a distinct-tuple count — under set semantics counting a head column
    of the answer equals counting answer tuples when the head has one
    column, which is how the paper uses it. *)

(** Parse a flock program.  Errors include lexing, parsing, and the
    semantic checks of {!Flock.make}. *)
val flock : string -> (Flock.t, string) result

(** Raises [Invalid_argument] on error; convenient for tests/examples. *)
val flock_exn : string -> Flock.t

(** A program may start with an optional [VIEWS:] section defining
    intermediate predicates (see {!Views}), evaluated before the flock:

    {v
    VIEWS:
    explained(P,S) :- diagnoses(P,D) AND causes(D,S)

    QUERY:
    answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT explained(P,$s)

    FILTER:
    COUNT(answer.P) >= 20
    v} *)
type program = {
  views : Qf_datalog.Ast.rule list;  (** empty when there is no VIEWS: section *)
  flock : Flock.t;
}

(** Parse a full program.  View rules are checked for safety and absence of
    parameters here; the catalog-dependent checks (shadowing, recursion)
    happen in {!Views.materialize}. *)
val program : string -> (program, string) result

val program_exn : string -> program
