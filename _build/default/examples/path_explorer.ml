(* The "pathological" path flock of the paper's Ex. 4.3 (Figs. 6 and 7):
   which nodes have at least 20 successors from which a length-n path
   extends?

   Run with:  dune exec examples/path_explorer.exe

   Shows the (n+1)-step chain plan of Fig. 7 — the example the paper uses
   to argue the plan space is not exponentially bounded — and compares its
   work against direct evaluation as n grows. *)

module Relation = Qf_relational.Relation
open Qf_core

let time f =
  let t0 = Sys.time () in
  let v = f () in
  v, Sys.time () -. t0

let () =
  let config =
    { Qf_workload.Graph.default with n_nodes = 300; max_out_degree = 40 }
  in
  let catalog = Qf_workload.Graph.generate config in
  let arcs = Relation.cardinal (Qf_relational.Catalog.find catalog "arc") in
  Format.printf "Graph: %d nodes, %d arcs@.@." config.n_nodes arcs;

  List.iter
    (fun n ->
      let flock = Qf_workload.Graph.path_flock ~n ~support:20 in
      let direct, t_direct = time (fun () -> Direct.run catalog flock) in
      let plan = Qf_workload.Graph.chain_plan flock ~n in
      let planned, t_plan = time (fun () -> Plan_exec.run catalog plan) in
      assert (Relation.equal direct planned);
      Format.printf
        "n=%d: %3d qualifying nodes | direct %.3fs | %d-step chain plan %.3fs@."
        n
        (Relation.cardinal direct)
        t_direct
        (List.length (Plan.all_steps plan))
        t_plan;
      if n = 2 then
        Format.printf "@.The Fig. 7 chain plan for n=2:@.@.%s@.@."
          (Explain.plan_to_string plan))
    [ 1; 2; 3 ]
