(* Strongly connected words in a web corpus — the union flock of the
   paper's Ex. 2.3 / Fig. 4.

   Run with:  dune exec examples/web_words.exe

   A pair of words is "strongly connected" when, summed over (a) title
   co-occurrence and (b) anchor-text-to-target-title occurrence, it reaches
   the support threshold.  The flock is a union of three rules; the
   a-priori step filters each word by the union of its per-rule safe
   subqueries (paper Ex. 3.3). *)

module Relation = Qf_relational.Relation
open Qf_core

let flock =
  Parse.flock_exn
    {|QUERY:
answer(D) :-
    inTitle(D,$1) AND
    inTitle(D,$2) AND
    $1 < $2

answer(A) :-
    link(A,D1,D2) AND
    inAnchor(A,$1) AND
    inTitle(D2,$2) AND
    $1 < $2

answer(A) :-
    link(A,D1,D2) AND
    inAnchor(A,$2) AND
    inTitle(D2,$1) AND
    $1 < $2

FILTER:
COUNT(answer(*)) >= 20|}

let () =
  let config =
    { Qf_workload.Webdocs.default with n_docs = 800; n_anchors = 4000 }
  in
  let catalog = Qf_workload.Webdocs.generate config in
  Format.printf "Corpus: %d docs, %d anchors, %d words@.@." config.n_docs
    config.n_anchors config.n_words;

  let direct = Direct.run catalog flock in
  Format.printf "Strongly connected word pairs (support 20): %d@."
    (Relation.cardinal direct);
  List.iteri
    (fun i tup ->
      if i < 15 then Format.printf "  %a@." Qf_relational.Tuple.pp tup)
    (Relation.to_sorted_list direct);
  if Relation.cardinal direct > 15 then Format.printf "  ...@.";

  (* Ex. 3.3: the per-rule safe subqueries for $1 form a union that filters
     candidate words; the plan generator assembles it automatically. *)
  match Apriori_gen.singleton_plan flock with
  | Error e -> failwith e
  | Ok plan ->
    Format.printf "@.Union a-priori plan (one subquery per rule, Sec. 3.4):@.@.%s@.@."
      (Explain.plan_to_string plan);
    let report = Plan_exec.run_with_report catalog plan in
    List.iter
      (fun (s : Plan_exec.step_report) ->
        Format.printf "  step %-8s %6d rows -> %5d groups -> %5d survive@."
          s.step_name s.tabulated_rows s.groups s.survivors)
      report.steps;
    assert (Relation.equal direct report.result);
    Format.printf "@.plan = direct: OK@."
