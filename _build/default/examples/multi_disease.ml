(* Side-effect mining when patients have several diseases — the language
   extension the paper sketches in Sec. 2.3: "we would have to extend our
   query-flocks language to allow intermediate predicates (in particular, a
   predicate relating patients to the set of symptoms from all their
   diseases)".

   Run with:  dune exec examples/multi_disease.exe

   The VIEWS: section defines exactly that predicate; the flock then asks
   for (symptom, medicine) pairs unexplained by ANY of the patient's
   diseases. *)

module Relation = Qf_relational.Relation
open Qf_core

let program_text =
  {|VIEWS:
explained(P,S) :-
    diagnoses(P,D) AND
    causes(D,S)

QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    NOT explained(P,$s)

FILTER:
COUNT(answer.P) >= 20|}

let () =
  let config =
    {
      Qf_workload.Medical.default with
      n_patients = 3000;
      diseases_per_patient = 3;
      planted_side_effects = 3;
    }
  in
  let { Qf_workload.Medical.catalog; planted } =
    Qf_workload.Medical.generate config
  in
  Format.printf
    "Generated %d patients with up to %d diseases each; planted: %s@.@."
    config.n_patients config.diseases_per_patient
    (String.concat ", "
       (List.map (fun (m, s) -> Printf.sprintf "(med %d, sym %d)" m s) planted));

  let { Parse.views; flock } = Parse.program_exn program_text in
  Format.printf "%s@.@." program_text;

  let catalog_with_views =
    match Views.materialize catalog views with
    | Ok c -> c
    | Error e -> failwith e
  in
  Format.printf "materialized view 'explained': %d tuples@.@."
    (Relation.cardinal (Qf_relational.Catalog.find catalog_with_views "explained"));

  let direct = Direct.run catalog_with_views flock in
  Format.printf "unexplained (medicine, symptom) pairs: %d@."
    (Relation.cardinal direct);
  List.iteri
    (fun i tup ->
      if i < 10 then Format.printf "  %a@." Qf_relational.Tuple.pp tup)
    (Relation.to_sorted_list direct);

  (* The whole optimizer stack works on top of views, since a materialized
     view is just another stored relation. *)
  let plan = Optimizer.optimize catalog_with_views flock in
  let planned = Plan_exec.run catalog_with_views plan in
  assert (Relation.equal direct planned);
  Format.printf "@.optimized plan (%s) agrees with direct: OK@."
    (Explain.plan_summary plan);

  match Dynamic.run catalog_with_views flock with
  | Error e -> failwith e
  | Ok { answers; _ } ->
    assert (Relation.equal direct answers);
    Format.printf "dynamic evaluation agrees: OK@."
