(* Association rules with support, confidence, and interest — the three
   measures of the paper's Sec. 1.1 — computed through the flock machinery
   (with the a-priori item pre-filter applied under the hood).

   Run with:  dune exec examples/market_rules.exe *)

open Qf_core

let () =
  let config =
    {
      Qf_workload.Market.default with
      n_baskets = 3000;
      n_items = 300;
      zipf_exponent = 1.0;
    }
  in
  let catalog = Qf_workload.Market.catalog config in
  Format.printf "Mining %d baskets over %d items (support 40, confidence 0.4)@.@."
    config.n_baskets config.n_items;
  let rules =
    Measures.pair_rules catalog ~pred:"baskets" ~support:40 ~min_confidence:0.4
  in
  Format.printf "%d directed rules; top 15 by interest:@." (List.length rules);
  List.iteri
    (fun i r -> if i < 15 then Format.printf "  %a@." Measures.pp_rule r)
    rules;
  (* Interest near 1 means the rule is explained by item popularity alone
     (the paper's beer->diapers caveat); far from 1 means real signal. *)
  match rules with
  | top :: _ when top.interest > 1.0 ->
    Format.printf "@.The top rule is %.1fx more likely than chance.@."
      top.Measures.interest
  | _ -> Format.printf "@.No positively correlated rules at this floor.@."
