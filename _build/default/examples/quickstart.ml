(* Quickstart: the market-basket flock of the paper's Fig. 2.

   Run with:  dune exec examples/quickstart.exe

   Walks the whole API surface once: build a catalog, parse a flock
   program, evaluate it directly, generate an a-priori plan, inspect the
   plan in the paper's notation, and check both agree. *)

module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
module V = Qf_relational.Value
open Qf_core

let () =
  (* 1. Data: a tiny hand-written baskets relation. *)
  let baskets =
    Relation.of_values [ "BID"; "Item" ]
      V.[
        [ Int 1; Str "beer" ]; [ Int 1; Str "diapers" ]; [ Int 1; Str "relish" ];
        [ Int 2; Str "beer" ]; [ Int 2; Str "diapers" ];
        [ Int 3; Str "beer" ]; [ Int 3; Str "chips" ];
        [ Int 4; Str "beer" ]; [ Int 4; Str "diapers" ]; [ Int 4; Str "chips" ];
        [ Int 5; Str "chips" ]; [ Int 5; Str "diapers" ];
        [ Int 6; Str "beer" ]; [ Int 6; Str "diapers" ];
      ]
  in
  let catalog = Catalog.create () in
  Catalog.add catalog "baskets" baskets;

  (* 2. The flock, in the paper's own notation (Fig. 2, threshold 3). *)
  let flock =
    Parse.flock_exn
      {|QUERY:
answer(B) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    $1 < $2

FILTER:
COUNT(answer.B) >= 3|}
  in
  Format.printf "The flock:@.@.%s@.@." (Flock.to_string flock);

  (* 3. Direct (SQL GROUP BY / HAVING style) evaluation. *)
  let direct = Direct.run catalog flock in
  Format.printf "Direct result (%d pairs):@." (Relation.cardinal direct);
  List.iter
    (fun tup -> Format.printf "  %a@." Qf_relational.Tuple.pp tup)
    (Relation.to_sorted_list direct);

  (* 4. A generalized a-priori plan: filter rare items first. *)
  let plan =
    match Apriori_gen.singleton_plan flock with
    | Ok p -> p
    | Error e -> failwith e
  in
  Format.printf "@.The a-priori plan (paper Sec. 4 notation):@.@.%s@.@."
    (Explain.plan_to_string plan);
  let report = Plan_exec.run_with_report catalog plan in
  List.iter
    (fun (s : Plan_exec.step_report) ->
      Format.printf "  step %-8s tabulated %3d rows, %3d groups, %3d survive@."
        s.step_name s.tabulated_rows s.groups s.survivors)
    report.steps;

  (* 5. The two evaluators agree — the invariant the whole paper rests on. *)
  assert (Relation.equal direct report.result);
  Format.printf "@.plan result = direct result: OK@."
