(* Mining a medical database for unexplained side effects — the paper's
   running example (Ex. 2.2, Figs. 3, 5, 8, 9).

   Run with:  dune exec examples/side_effects.exe

   Generates a synthetic medical database with planted side effects, then
   finds them three ways: direct evaluation, the cost-based static plan
   (Sec. 4.3), and dynamic filter selection (Sec. 4.4) — printing the
   decision trace the dynamic executor produced. *)

module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
open Qf_core

let flock =
  Parse.flock_exn
    {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)

FILTER:
COUNT(answer.P) >= 20|}

let () =
  let config =
    { Qf_workload.Medical.default with n_patients = 3000; planted_side_effects = 4 }
  in
  let { Qf_workload.Medical.catalog; planted } =
    Qf_workload.Medical.generate config
  in
  Format.printf "Generated %d patients; planted side effects: %s@.@."
    config.n_patients
    (String.concat ", "
       (List.map (fun (m, s) -> Printf.sprintf "(medicine %d, symptom %d)" m s) planted));

  (* Direct evaluation. *)
  let direct = Direct.run catalog flock in
  Format.printf "Direct evaluation finds %d (medicine, symptom) pairs:@."
    (Relation.cardinal direct);
  List.iter
    (fun tup -> Format.printf "  %a@." Qf_relational.Tuple.pp tup)
    (Relation.to_sorted_list direct);

  (* The static optimizer's choice among the Sec. 4.3 plan space. *)
  let choices = Optimizer.enumerate catalog flock in
  Format.printf "@.The optimizer costed %d alternative plans:@."
    (List.length choices);
  List.iter
    (fun (c : Optimizer.choice) ->
      Format.printf "  est. work %12.0f  filters on {%s}@." c.cost
        (String.concat "; "
           (List.map (fun s -> "$" ^ String.concat ",$" s) c.param_sets)))
    choices;
  let best = (List.hd choices).plan in
  Format.printf "@.Chosen plan:@.@.%s@.@." (Explain.plan_to_string best);
  let planned = Plan_exec.run catalog best in
  assert (Relation.equal direct planned);

  (* Dynamic filter selection, with its decision trace. *)
  match Dynamic.run catalog flock with
  | Error e -> failwith e
  | Ok { answers; trace } ->
    assert (Relation.equal direct answers);
    Format.printf "Dynamic evaluation trace (Sec. 4.4):@.";
    List.iter
      (fun (d : Dynamic.decision) ->
        Format.printf "  after %-28s params {%s}: %6d rows / %5d asgs"
          d.after
          (String.concat "," d.param_set)
          d.rows d.assignments;
        if d.filtered then
          Format.printf "  -> FILTER, %d survive@." (Option.get d.survivors)
        else Format.printf "  -> no filter@.")
      trace;
    Format.printf "@.All three evaluators agree.@."
