examples/quickstart.mli:
