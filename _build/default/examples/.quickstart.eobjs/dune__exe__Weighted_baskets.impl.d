examples/weighted_baskets.ml: Apriori_gen Direct Dynamic Flock Format List Parse Plan_exec Qf_core Qf_relational Qf_workload
