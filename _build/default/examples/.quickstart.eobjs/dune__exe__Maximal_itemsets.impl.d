examples/maximal_itemsets.ml: Format List Qf_apriori Qf_core Qf_relational Qf_workload Sequence
