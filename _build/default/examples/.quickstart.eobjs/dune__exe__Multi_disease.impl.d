examples/multi_disease.ml: Direct Dynamic Explain Format List Optimizer Parse Plan_exec Printf Qf_core Qf_relational Qf_workload String Views
