examples/side_effects.mli:
