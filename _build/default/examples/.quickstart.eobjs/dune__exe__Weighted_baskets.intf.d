examples/weighted_baskets.mli:
