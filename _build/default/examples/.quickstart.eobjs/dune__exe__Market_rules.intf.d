examples/market_rules.mli:
