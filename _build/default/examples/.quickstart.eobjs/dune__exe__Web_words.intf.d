examples/web_words.mli:
