examples/market_rules.ml: Format List Measures Qf_core Qf_workload
