examples/path_explorer.ml: Direct Explain Format List Plan Plan_exec Qf_core Qf_relational Qf_workload Sys
