examples/side_effects.ml: Direct Dynamic Explain Format List Optimizer Option Parse Plan_exec Printf Qf_core Qf_relational Qf_workload String
