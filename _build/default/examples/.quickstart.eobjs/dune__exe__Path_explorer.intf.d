examples/path_explorer.mli:
