examples/quickstart.ml: Apriori_gen Direct Explain Flock Format List Parse Plan_exec Qf_core Qf_relational
