examples/maximal_itemsets.mli:
