examples/web_words.ml: Apriori_gen Direct Explain Format List Parse Plan_exec Qf_core Qf_relational Qf_workload
