examples/multi_disease.mli:
