(* Weighted market baskets — the monotone-filter extension of the paper's
   Sec. 5 (Fig. 10).

   Run with:  dune exec examples/weighted_baskets.exe

   Each basket carries an importance weight; a pair of items qualifies when
   the summed weight of the baskets containing both reaches the threshold.
   SUM over non-negative weights is monotone, so every a-priori machinery
   piece (static plans, dynamic filtering) applies unchanged. *)

module Relation = Qf_relational.Relation
open Qf_core

let flock =
  Parse.flock_exn
    {|QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2

FILTER:
SUM(answer.W) >= 200|}

let () =
  let config =
    { Qf_workload.Market.default with n_baskets = 2500; n_items = 300 }
  in
  let catalog = Qf_workload.Market.catalog_with_importance ~max_weight:10 config in
  Format.printf "Weighted corpus: %d baskets, %d items, weights 1..10@.@."
    config.n_baskets config.n_items;
  Format.printf "%s@.@." (Flock.to_string flock);

  let direct = Direct.run catalog flock in
  Format.printf "Pairs with summed weight >= 200: %d@." (Relation.cardinal direct);

  (* Static plan: filter items whose own weighted support is < 200. *)
  (match Apriori_gen.singleton_plan flock with
  | Error e -> failwith e
  | Ok plan ->
    let report = Plan_exec.run_with_report catalog plan in
    assert (Relation.equal direct report.result);
    List.iter
      (fun (s : Plan_exec.step_report) ->
        Format.printf "  step %-8s %7d rows -> %5d groups -> %5d survive@."
          s.step_name s.tabulated_rows s.groups s.survivors)
      report.steps;
    Format.printf "static SUM plan = direct: OK@.");

  (* Dynamic filtering handles SUM too. *)
  match Dynamic.run catalog flock with
  | Error e -> failwith e
  | Ok { answers; trace } ->
    assert (Relation.equal direct answers);
    let filtered = List.filter (fun (d : Dynamic.decision) -> d.filtered) trace in
    Format.printf "dynamic SUM evaluation = direct: OK (%d filter steps taken)@."
      (List.length filtered)
