(* Maximal frequent itemsets via a SEQUENCE of query flocks — the paper's
   footnote 2: "the set of maximal sets of items that appear in at least c
   baskets ... would be expressed as a sequence of query flocks for
   increasing cardinalities, with each flock depending on the result of the
   previous flock."

   Run with:  dune exec examples/maximal_itemsets.exe *)

open Qf_core
module Relation = Qf_relational.Relation

let () =
  let config =
    {
      Qf_workload.Market.default with
      n_baskets = 2000;
      n_items = 200;
      avg_basket_size = 10;
      zipf_exponent = 1.1;
    }
  in
  let catalog = Qf_workload.Market.catalog config in
  let support = 30 in
  Format.printf "Mining %d baskets over %d items at support %d@.@."
    config.n_baskets config.n_items support;

  let levels = Sequence.frequent_levels catalog ~pred:"baskets" ~support in
  Format.printf "The flock sequence ran %d levels:@." (List.length levels);
  List.iter
    (fun (l : Sequence.level) ->
      Format.printf "  level %d: %5d frequent %d-item sets@." l.k
        (Relation.cardinal l.itemsets) l.k)
    levels;

  let maximal = Sequence.maximal levels in
  Format.printf "@.%d maximal frequent itemsets; the largest:@."
    (List.length maximal);
  let largest = List.fold_left (fun acc (k, _) -> max acc k) 0 maximal in
  List.iter
    (fun (k, tup) ->
      if k = largest then
        Format.printf "  %a@." Qf_relational.Tuple.pp tup)
    maximal;

  (* Cross-check against the dedicated miner. *)
  let db =
    Qf_apriori.Apriori.db_of_relation
      (Qf_relational.Catalog.find catalog "baskets")
  in
  let classic = Qf_apriori.Apriori.mine db ~support ~max_size:9 in
  assert (List.length classic = List.length levels);
  List.iteri
    (fun i (l : Sequence.level) ->
      assert (List.length (List.nth classic i) = Relation.cardinal l.itemsets))
    levels;
  Format.printf "@.every level agrees with the dedicated a-priori miner: OK@."
