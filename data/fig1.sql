-- Fig. 1: the same question in SQL; flockc compiles it to the Fig. 2 flock.
SELECT i1.Item, i2.Item
FROM baskets i1, baskets i2
WHERE i1.Item < i2.Item AND i1.BID = i2.BID
GROUP BY i1.Item, i2.Item
HAVING 3 <= COUNT(i1.BID)
