(* flockc: the query-flock compiler/runner.

   Subcommands:
     flockc check <file.flock>                    parse + safety report
     flockc lint <file.flock> [--format ...]      static analysis (QF0xx)
     flockc candidates <file.flock>               safe a-priori subqueries
     flockc explain <file.flock> -d pred=csv ...  costed plans
     flockc run <file.flock> -d pred=csv ...      evaluate, print result CSV

   Data files are CSV with a header row; the relation is registered under
   the name given before '='. *)

open Cmdliner
module Catalog = Qf_relational.Catalog
module Relation = Qf_relational.Relation
open Qf_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program path =
  match Parse.program (read_file path) with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

(* Materialize the program's views (if any) into the catalog. *)
let prepare catalog (p : Parse.program) =
  if p.views = [] then Ok catalog
  else Views.materialize catalog p.views

let db_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "D"; "database" ] ~docv:"DIR"
        ~doc:
          "Load every relation from a store directory (see $(b,import)); \
           $(b,--data) bindings are applied on top.")

let load_catalog ?db specs =
  let cat =
    match db with
    | Some dir -> Qf_storage.Store.to_catalog (Qf_storage.Store.open_dir dir)
    | None -> Catalog.create ()
  in
  let rec go = function
    | [] -> Ok cat
    | spec :: rest -> (
      match String.index_opt spec '=' with
      | None ->
        Error (Printf.sprintf "--data %S: expected the form pred=file.csv" spec)
      | Some i -> (
        let pred = String.sub spec 0 i in
        let path = String.sub spec (i + 1) (String.length spec - i - 1) in
        match Qf_relational.Csv.load path with
        | rel ->
          Catalog.add cat pred rel;
          go rest
        | exception (Sys_error e | Failure e) ->
          Error (Printf.sprintf "loading %s: %s" path e)))
  in
  go specs

(* {1 Arguments} *)

let flock_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FLOCK" ~doc:"Flock program (QUERY:/FILTER: syntax).")

let data_arg =
  Arg.(
    value & opt_all string []
    & info [ "d"; "data" ] ~docv:"PRED=CSV"
        ~doc:"Bind relation $(i,PRED) to the rows of $(i,CSV). Repeatable.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Log join orders, filter-step sizes, and dynamic decisions.")

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("flockc: " ^ msg);
    exit 1

(* {1 check} *)

let check_cmd =
  let run path =
    match load_program path with
    | Error msg ->
      prerr_endline ("flockc: " ^ msg);
      exit 1
    | Ok { Parse.views; flock } ->
      if views <> [] then
        Format.printf "views: %s@.@."
          (String.concat ", "
             (List.sort_uniq String.compare
                (List.map (fun (r : Qf_datalog.Ast.rule) -> r.head.pred) views)));
      Format.printf "%s@.@." (Flock.to_string flock);
      Format.printf "rules: %d@." (Flock.rule_count flock);
      Format.printf "parameters: %s@."
        (String.concat ", " (List.map (fun p -> "$" ^ p) (Flock.params flock)));
      Format.printf "filter is monotone: %b@."
        (Filter.is_monotone flock.filter);
      Format.printf "safe: yes (checked during parsing)@."
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse a flock program and report its structure")
    Term.(const run $ flock_file)

(* {1 lint} *)

let lint_format_arg =
  Arg.(
    value
    & opt (enum [ "text", `Text; "json", `Json ]) `Text
    & info [ "f"; "format" ] ~docv:"FORMAT"
        ~doc:"Diagnostic output format: $(b,text) or $(b,json).")

let deny_warnings_arg =
  Arg.(
    value & flag
    & info [ "deny-warnings" ]
        ~doc:"Exit non-zero on warnings too, not only on errors.")

let absint_arg =
  Arg.(
    value & flag
    & info [ "absint" ]
        ~doc:
          "Run the abstract interpreter over the program: certify dead \
           subgoals, provably empty flocks, and SUM monotonicity against \
           the loaded catalog's statistics (QF07x).  Requires $(b,--data) \
           or $(b,--database).")

let lint_cmd =
  let run path data db format deny absint =
    let module Diag = Qf_analysis.Diagnostic in
    let text =
      match read_file path with
      | text -> text
      | exception Sys_error e ->
        prerr_endline ("flockc: " ^ e);
        exit 2
    in
    let catalog =
      match data, db with
      | [], None -> None
      | _ -> Some (or_die (load_catalog ?db data))
    in
    let absint_diags =
      if not absint then []
      else
        match catalog with
        | None ->
          prerr_endline
            "flockc: lint --absint needs catalog statistics; pass --data or \
             --database";
          exit 2
        | Some cat -> (
          match Parse.program_located text with
          | Error _ -> []
          | Ok lp ->
            (* Seed the domain from view outputs too, when views parse. *)
            let cat =
              match Parse.program text with
              | Ok p -> (
                match prepare cat p with Ok c -> c | Error _ -> cat)
              | Error _ -> cat
            in
            Qf_analysis.Absint.check_program ~catalog:cat lp)
    in
    let diags = Diag.sort (Qf_analysis.Lint.lint ?catalog text @ absint_diags) in
    (match format with
    | `Text -> print_string (Diag.render_text ~file:path diags)
    | `Json -> print_string (Diag.render_json ~file:path diags));
    (* Cross-check plan generation on clean monotone programs: build the
       default a-priori plan and run the independent Sec. 4.2 verifier over
       it (the auditor inside Plan.make sees it too). *)
    if not (Diag.has_errors diags) then begin
      Qf_analysis.Validate.install ();
      match Parse.program text with
      | Error _ -> ()
      | Ok { Parse.flock; _ } -> (
        match Apriori_gen.singleton_plan flock with
        | Ok plan -> (
          match Qf_analysis.Plan_check.verify plan with
          | Ok () -> ()
          | Error e ->
            prerr_endline ("flockc: internal: illegal generated plan: " ^ e);
            exit 3)
        | Error _ -> ())
    end;
    let failing =
      Diag.has_errors diags || (deny && Diag.count Diag.Warning diags > 0)
    in
    exit (if failing then 1 else 0)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a flock program: safety (Sec. 3.3), schema \
          consistency, redundant subgoals (Sec. 3.1), arithmetic \
          contradictions, join hygiene, and FILTER sanity, as stable \
          QF0xx diagnostics with source spans.  With $(b,--absint), also \
          run abstract-interpretation bound certification (QF07x).  Exit \
          status: 0 clean, 1 findings, 2 unreadable input, 3 internal \
          plan-legality failure.")
    Term.(
      const run $ flock_file $ data_arg $ db_arg $ lint_format_arg
      $ deny_warnings_arg $ absint_arg)

(* {1 candidates} *)

let candidates_cmd =
  let run path =
    let flock = (or_die (load_program path)).Parse.flock in
    List.iteri
      (fun i rule ->
        Format.printf "rule %d: %s@." i (Qf_datalog.Pretty.rule_to_string rule);
        let candidates = Qf_datalog.Subquery.enumerate rule in
        List.iter
          (fun (c : Qf_datalog.Subquery.candidate) ->
            Format.printf "  restricts {%s}: %s@."
              (String.concat "," (List.map (fun p -> "$" ^ p) c.params))
              (Qf_datalog.Pretty.rule_to_string c.rule))
          candidates;
        Format.printf "  (%d safe candidates)@.@." (List.length candidates))
      flock.Flock.query
  in
  Cmd.v
    (Cmd.info "candidates"
       ~doc:"List the safe a-priori subqueries of each rule (Sec. 3)")
    Term.(const run $ flock_file)

(* {1 The resource governor's arguments (explain --profile and mine)} *)

module Governor = Qf_governor.Governor

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline in seconds.  The evaluator is interrupted \
           cooperatively at its next checkpoint and $(b,flockc) exits with \
           status 124.  Defaults to $(b,QF_TIMEOUT) when set.")

let mem_budget_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mem-budget" ] ~docv:"BYTES"
        ~doc:
          "Memory budget: plain bytes, a $(b,k)/$(b,m)/$(b,g) suffix, or \
           $(b,unbounded).  Join and group-by kernels spill to temp files \
           when the budget trips; if even spilling cannot fit, $(b,flockc) \
           exits with status 125.  Defaults to $(b,QF_MEM_BUDGET) when set.")

let make_governor ~timeout ~mem_budget =
  let budget =
    match mem_budget with
    | Some s -> (
      match Governor.budget_of_string s with
      | Some b -> Ok (Some b)
      | None ->
        Error
          (Printf.sprintf
             "--mem-budget %S: expected bytes with an optional k/m/g suffix, \
              or \"unbounded\""
             s))
    | None ->
      Ok (Option.bind (Sys.getenv_opt "QF_MEM_BUDGET") Governor.budget_of_string)
  in
  let timeout =
    match timeout with
    | Some _ -> timeout
    | None -> Option.bind (Sys.getenv_opt "QF_TIMEOUT") float_of_string_opt
  in
  Result.map
    (fun b -> Governor.create ?mem_budget:b ?timeout_s:timeout ())
    budget

(* Resource faults become the conventional shell exit codes: 124 for a
   deadline (mirroring timeout(1)), 125 for an unsatisfiable budget. *)
let governed ~context f =
  try f () with
  | Governor.Deadline_exceeded { timeout; _ } ->
    Printf.eprintf "flockc: %s: deadline exceeded (timeout %gs)\n" context
      timeout;
    exit 124
  | Governor.Over_budget { requested; budget; _ } ->
    Printf.eprintf
      "flockc: %s: memory budget exceeded (requested %d bytes against budget \
       %d)\n"
      context requested budget;
    exit 125

(* {1 explain} *)

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Run the chosen plan with observability enabled and print each \
           step's observed cardinalities and wall-clock time next to the \
           optimizer's estimates, plus mining counters (a-priori candidate \
           funnel, index-cache hits).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the profile as a single JSON object (implies --profile).")

let redact_timings_arg =
  Arg.(
    value & flag
    & info [ "redact-timings" ]
        ~doc:
          "Print every duration as $(b,-) (text) or $(b,null) (JSON) so the \
           output is byte-stable across runs (for golden tests).")

let explain_cmd =
  let run path data db profile json redact timeout mem_budget =
    let program = or_die (load_program path) in
    let flock = program.Parse.flock in
    let catalog = or_die (prepare (or_die (load_catalog ?db data)) program) in
    let clamp = Qf_analysis.Absint.clamps_of_plan catalog in
    let choices = Optimizer.enumerate ~clamp catalog flock in
    let profile = profile || json in
    if not json then begin
      Format.printf "%d costed plans (cheapest first):@.@."
        (List.length choices);
      List.iteri
        (fun i (c : Optimizer.choice) ->
          Format.printf "#%d  estimated work %.0f  steps: %s@." i c.cost
            (Explain.plan_summary c.plan))
        choices;
      match choices with
      | best :: _ ->
        Format.printf "@.chosen plan:@.@.%s@."
          (Explain.plan_to_string best.plan)
      | [] -> ()
    end;
    if profile then
      match choices with
      | [] ->
        prerr_endline "flockc: explain --profile: no plan to profile";
        exit 1
      | best :: _ ->
        let clamps = clamp best.Optimizer.plan in
        (* A governor is installed only when asked for, so ungoverned
           profiles keep their exact historical output. *)
        let governor =
          match timeout, mem_budget with
          | None, None -> None
          | _ -> Some (or_die (make_governor ~timeout ~mem_budget))
        in
        let p =
          governed ~context:"explain" @@ fun () ->
          Explain.profile ~clamps ?governor catalog best.Optimizer.plan
        in
        if json then print_string (Explain.profile_json ~redact_timings:redact p)
        else begin
          Format.printf "@.";
          print_string (Explain.profile_text ~redact_timings:redact p)
        end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Enumerate and cost candidate plans against the data (Sec. 4.3); \
          with $(b,--profile), run the chosen plan and report observed \
          per-step cardinalities and timings next to the estimates; with \
          $(b,--mem-budget) or $(b,--timeout), run it under the resource \
          governor and report peak bytes and spill volume")
    Term.(
      const run $ flock_file $ data_arg $ db_arg $ profile_arg $ json_arg
      $ redact_timings_arg $ timeout_arg $ mem_budget_arg)

(* {1 run} *)

let mode_arg =
  let modes =
    [ "direct", `Direct; "plan", `Plan; "dynamic", `Dynamic; "naive", `Naive ]
  in
  Arg.(
    value
    & opt (enum modes) `Plan
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Evaluation strategy: $(b,direct) (no a-priori), $(b,plan) \
           (cost-based static plan), $(b,dynamic) (run-time filter \
           selection), or $(b,naive) (generate-and-test oracle; tiny inputs \
           only).")

let run_cmd =
  let run path data db mode verbose =
    setup_logs verbose;
    let program = or_die (load_program path) in
    let flock = program.Parse.flock in
    let catalog = or_die (prepare (or_die (load_catalog ?db data)) program) in
    let result =
      match mode with
      | `Direct -> Direct.run catalog flock
      | `Plan -> Plan_exec.run catalog (Optimizer.optimize catalog flock)
      | `Dynamic -> (
        match Dynamic.run catalog flock with
        | Ok r -> r.answers
        | Error e ->
          prerr_endline ("flockc: dynamic: " ^ e ^ "; falling back to direct");
          Direct.run catalog flock)
      | `Naive -> Naive.run catalog flock
    in
    print_string (Qf_relational.Csv.to_string result)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Evaluate a flock against CSV data; print result CSV")
    Term.(const run $ flock_file $ data_arg $ db_arg $ mode_arg $ verbose_arg)

(* {1 mine: governed evaluation} *)

let mine_cmd =
  let run path data db mode verbose timeout mem_budget =
    setup_logs verbose;
    let program = or_die (load_program path) in
    let flock = program.Parse.flock in
    let catalog = or_die (prepare (or_die (load_catalog ?db data)) program) in
    let g = or_die (make_governor ~timeout ~mem_budget) in
    let result =
      governed ~context:"mine" @@ fun () ->
      Governor.with_ctx g @@ fun () ->
      match mode with
      | `Direct -> Direct.run catalog flock
      | `Plan -> Plan_exec.run catalog (Optimizer.optimize catalog flock)
      | `Dynamic -> (
        match Dynamic.run catalog flock with
        | Ok r -> r.answers
        | Error e ->
          prerr_endline ("flockc: dynamic: " ^ e ^ "; falling back to direct");
          Direct.run catalog flock)
      | `Naive -> Naive.run catalog flock
    in
    print_string (Qf_relational.Csv.to_string result);
    if verbose then begin
      let s = Governor.stats g in
      Format.eprintf
        "flockc: mine: peak %d bytes, %d spill partitions (%d rows, %d \
         bytes)@."
        s.peak_bytes s.spill_partitions s.spilled_rows s.spilled_bytes
    end
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Evaluate a flock under a resource governor: a byte-accounted \
          memory budget (spilling joins and group-bys to disk when it \
          trips) and a wall-clock deadline with cooperative cancellation. \
          Exit status: 124 deadline exceeded, 125 budget unsatisfiable \
          even after spilling.")
    Term.(
      const run $ flock_file $ data_arg $ db_arg $ mode_arg $ verbose_arg
      $ timeout_arg $ mem_budget_arg)

(* {1 sql} *)

let sql_cmd =
  let run path data db mode =
    let catalog = or_die (load_catalog ?db data) in
    let flock =
      match Qf_sql.Compile.of_string catalog (read_file path) with
      | Ok f -> f
      | Error e ->
        prerr_endline ("flockc: sql: " ^ e);
        exit 1
    in
    Format.eprintf "compiled flock:@.@.%s@.@." (Flock.to_string flock);
    let result =
      match mode with
      | `Direct -> Direct.run catalog flock
      | `Plan -> Plan_exec.run catalog (Optimizer.optimize catalog flock)
      | `Dynamic -> (
        match Dynamic.run catalog flock with
        | Ok r -> r.answers
        | Error e ->
          prerr_endline ("flockc: dynamic: " ^ e ^ "; falling back to direct");
          Direct.run catalog flock)
      | `Naive -> Naive.run catalog flock
    in
    print_string (Qf_relational.Csv.to_string result)
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:
         "Compile a Fig.-1-style SQL query (SELECT/FROM/WHERE/GROUP           BY/HAVING) to a flock and evaluate it")
    Term.(const run $ flock_file $ data_arg $ db_arg $ mode_arg)

(* {1 rules / maximal: the mining conveniences} *)

let pred_arg =
  Arg.(
    value & opt string "baskets"
    & info [ "p"; "pred" ] ~docv:"PRED"
        ~doc:"The (BID, Item) relation to mine.")

let support_arg =
  Arg.(
    value & opt int 20
    & info [ "s"; "support" ] ~docv:"N" ~doc:"Support threshold.")

let rules_cmd =
  let confidence_arg =
    Arg.(
      value & opt float 0.5
      & info [ "c"; "confidence" ] ~docv:"C" ~doc:"Confidence floor.")
  in
  let run data db pred support confidence =
    let catalog = or_die (load_catalog ?db data) in
    let rules =
      Measures.pair_rules catalog ~pred ~support ~min_confidence:confidence
    in
    Format.printf "%d rules (support >= %d, confidence >= %.2f):@."
      (List.length rules) support confidence;
    List.iter (fun r -> Format.printf "  %a@." Measures.pp_rule r) rules
  in
  Cmd.v
    (Cmd.info "rules"
       ~doc:
         "Mine association rules with support, confidence, and interest \
          (Sec. 1.1)")
    Term.(const run $ data_arg $ db_arg $ pred_arg $ support_arg $ confidence_arg)

let maximal_cmd =
  let run data db pred support =
    let catalog = or_die (load_catalog ?db data) in
    let levels = Sequence.frequent_levels catalog ~pred ~support in
    List.iter
      (fun (l : Sequence.level) ->
        Format.printf "level %d: %d frequent %d-item sets@." l.k
          (Relation.cardinal l.itemsets) l.k)
      levels;
    let maximal = Sequence.maximal levels in
    Format.printf "%d maximal frequent itemsets:@." (List.length maximal);
    List.iter
      (fun (_, tup) ->
        Format.printf "  %a@." Qf_relational.Tuple.pp tup)
      maximal
  in
  Cmd.v
    (Cmd.info "maximal"
       ~doc:
         "Mine maximal frequent itemsets via a flock sequence (the paper's \
          footnote 2)")
    Term.(const run $ data_arg $ db_arg $ pred_arg $ support_arg)

(* {1 import} *)

let import_cmd =
  let dir_pos =
    Cmdliner.Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Store directory (created if missing).")
  in
  let specs_pos =
    Cmdliner.Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"PRED=CSV" ~doc:"Relations to import.")
  in
  let run dir specs =
    let catalog = or_die (load_catalog specs) in
    let store = Qf_storage.Store.open_dir dir in
    List.iter
      (fun name ->
        Qf_storage.Store.save store name (Catalog.find catalog name);
        Format.printf "imported %s (%d tuples)@." name
          (Relation.cardinal (Catalog.find catalog name)))
      (List.sort String.compare (Catalog.names catalog))
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Import CSV files into a store directory")
    Term.(const run $ dir_pos $ specs_pos)

let () =
  let doc = "query flocks: generalized association-rule mining (SIGMOD 1998)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "flockc" ~version:"1.0.0" ~doc)
          [ check_cmd; lint_cmd; candidates_cmd; explain_cmd; run_cmd; mine_cmd; sql_cmd; import_cmd; rules_cmd; maximal_cmd ]))
