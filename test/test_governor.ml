(* The resource governor: byte-accounted budgets, deadlines, cooperative
   cancellation, spill-to-disk kernels — and the deterministic
   fault-injection sweep proving that a failure at *every* counted
   fault point yields either a typed error or the correct result, never
   corruption, a poisoned catalog, or a leaked temp file. *)

module R = Qf_relational.Relation
module Schema = Qf_relational.Schema
module Tuple = Qf_relational.Tuple
module Value = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Layout = Qf_relational.Layout
module Join = Qf_relational.Join
module Aggregate = Qf_relational.Aggregate
module Heap_file = Qf_relational.Heap_file
module Pool = Qf_exec_pool.Pool
module Governor = Qf_governor.Governor
module Fault = Qf_governor.Fault
open Qf_core
open Qf_testgen.Testgen

let with_pool_size size f =
  let saved_size = Pool.size (Pool.default ()) in
  Pool.set_default_size size;
  Fun.protect ~finally:(fun () -> Pool.set_default_size saved_size) f

let with_layout layout f =
  Layout.set_override (Some layout);
  Fun.protect ~finally:(fun () -> Layout.set_override None) f

(* Spill files of THIS process left behind anywhere under the temp dir:
   the hygiene invariant is that this list is empty after every governed
   run, including every faulted one. *)
let leaked_spill_files () =
  let prefix = "qf_spill." ^ string_of_int (Unix.getpid ()) ^ "." in
  let tmp = Filename.get_temp_dir_name () in
  match Sys.readdir tmp with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e -> String.starts_with ~prefix e)
    |> List.map (fun e -> Filename.concat tmp e)
  | exception Sys_error _ -> []

let assert_no_leaks context =
  match leaked_spill_files () with
  | [] -> ()
  | files ->
    (* Clean up so one failure does not cascade into every later case. *)
    List.iter
      (fun dir ->
        (try Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
         with Sys_error _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      files;
    Alcotest.failf "%s: leaked spill files: %s" context
      (String.concat ", " files)

(* {1 Unit tests: accounting, budget parsing, deadlines, cancellation} *)

let test_budget_of_string () =
  let check s expected =
    Alcotest.(check (option int))
      s expected (Governor.budget_of_string s)
  in
  check "4096" (Some 4096);
  check "64k" (Some 65536);
  check "64K" (Some 65536);
  check "2m" (Some (2 * 1024 * 1024));
  check "1g" (Some (1024 * 1024 * 1024));
  check "unbounded" (Some max_int);
  check "inf" (Some max_int);
  check "" None;
  check "k" None;
  check "-1" None;
  check "12x" None;
  check "lots" None

let test_charge_release_peak () =
  let g = Governor.create ~mem_budget:1000 () in
  Governor.charge g 400;
  Alcotest.(check int) "used" 400 (Governor.used g);
  Alcotest.(check bool) "fits" true (Governor.try_charge g 600);
  Alcotest.(check bool) "over" false (Governor.try_charge g 1);
  Alcotest.(check int) "used unchanged by failed charge" 1000
    (Governor.used g);
  Governor.release g 600;
  Governor.release g 400;
  Alcotest.(check int) "released" 0 (Governor.used g);
  Alcotest.(check int) "peak survives release" 1000
    (Governor.stats g).Governor.peak_bytes;
  match Governor.charge g 1001 with
  | () -> Alcotest.fail "charge over budget must raise"
  | exception Governor.Over_budget { requested; used; budget } ->
    Alcotest.(check int) "requested" 1001 requested;
    Alcotest.(check int) "used" 0 used;
    Alcotest.(check int) "budget" 1000 budget

let test_deadline () =
  let g = Governor.create ~timeout_s:0.000001 () in
  match
    Governor.with_ctx g (fun () ->
        Unix.sleepf 0.002;
        Governor.check ();
        "unreachable")
  with
  | _ -> Alcotest.fail "expired deadline must raise at the next check"
  | exception Governor.Deadline_exceeded { elapsed; timeout } ->
    Alcotest.(check bool) "elapsed past timeout" true (elapsed >= timeout)

let test_cancel () =
  let g = Governor.create () in
  match
    Governor.with_ctx g (fun () ->
        Governor.check ();
        Governor.cancel g;
        Governor.check ();
        "unreachable")
  with
  | _ -> Alcotest.fail "cancel must raise at the next check"
  | exception Governor.Cancelled -> ()

let test_ungoverned_check_is_noop () =
  Governor.check ();
  Alcotest.(check bool) "no ambient governor" true (Governor.current () = None)

(* {1 Spill kernels agree with the in-memory kernels} *)

let relation_of_rows columns rows =
  let rel = R.create (Schema.of_list columns) in
  List.iter
    (fun row ->
      R.add rel
        (Tuple.of_array (Array.of_list (List.map Value.str row))))
    rows;
  rel

let big_pair_relation n =
  relation_of_rows [ "B"; "I" ]
    (List.concat_map
       (fun b ->
         List.map
           (fun i ->
             [ Printf.sprintf "b%d" b; Printf.sprintf "i%d" ((b * 7 + i) mod 37) ])
           (List.init (1 + (b mod 5)) Fun.id))
       (List.init n Fun.id))

let test_spilled_join_agrees () =
  with_pool_size 1 @@ fun () ->
  let a = big_pair_relation 60 in
  let b = big_pair_relation 40 in
  let pairs = [ "I", "I" ] in
  let expected = Join.equi a b pairs in
  List.iter
    (fun layout ->
      with_layout layout @@ fun () ->
      let g = Governor.create ~mem_budget:8192 () in
      let got = Governor.with_ctx g (fun () -> Join.equi a b pairs) in
      if not (R.equal expected got) then
        Alcotest.failf "spilled equi-join disagrees (layout %s)"
          (Layout.to_string layout);
      Alcotest.(check bool)
        (Printf.sprintf "join spilled (layout %s)" (Layout.to_string layout))
        true
        ((Governor.stats g).Governor.spill_partitions > 0))
    [ Layout.Row; Layout.Columnar ];
  assert_no_leaks "spilled join"

let test_spilled_group_by_agrees () =
  with_pool_size 1 @@ fun () ->
  let rel = big_pair_relation 80 in
  let sort = List.sort compare in
  let expected =
    sort (Aggregate.group_by rel ~keys:[ "I" ] ~func:Aggregate.Count)
  in
  List.iter
    (fun layout ->
      with_layout layout @@ fun () ->
      let g = Governor.create ~mem_budget:8192 () in
      let got =
        Governor.with_ctx g (fun () ->
            sort (Aggregate.group_by rel ~keys:[ "I" ] ~func:Aggregate.Count))
      in
      if got <> expected then
        Alcotest.failf "spilled group-by disagrees (layout %s)"
          (Layout.to_string layout);
      Alcotest.(check bool)
        (Printf.sprintf "group-by spilled (layout %s)"
           (Layout.to_string layout))
        true
        ((Governor.stats g).Governor.spill_partitions > 0))
    [ Layout.Row; Layout.Columnar ];
  assert_no_leaks "spilled group-by"

let test_spilled_group_filter_agrees () =
  with_pool_size 1 @@ fun () ->
  let rel = big_pair_relation 80 in
  let expected =
    Aggregate.group_filter rel ~keys:[ "I" ] ~func:Aggregate.Count
      ~threshold:3.
  in
  List.iter
    (fun layout ->
      with_layout layout @@ fun () ->
      let g = Governor.create ~mem_budget:8192 () in
      let got =
        Governor.with_ctx g (fun () ->
            Aggregate.group_filter rel ~keys:[ "I" ] ~func:Aggregate.Count
              ~threshold:3.)
      in
      if not (R.equal expected got) then
        Alcotest.failf "spilled group-filter disagrees (layout %s)"
          (Layout.to_string layout))
    [ Layout.Row; Layout.Columnar ];
  assert_no_leaks "spilled group-filter"

(* {1 Executors under a tiny budget agree with ungoverned direct} *)

let tiny_budget = 4096

let run_governed g f = Governor.with_ctx g f

let test_executors_agree_under_tiny_budget () =
  with_pool_size 1 @@ fun () ->
  List.iter
    (fun seed ->
      let rel, threshold = instance ~seed gen_basket_instance in
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      let expected = Direct.run cat flock in
      let governed name f =
        let g = Governor.create ~mem_budget:tiny_budget () in
        let got = run_governed g f in
        if not (R.equal expected got) then
          Alcotest.failf "seed %d: governed %s disagrees with direct" seed
            name
      in
      governed "direct" (fun () -> Direct.run cat flock);
      governed "plan" (fun () ->
          Plan_exec.run cat (Optimizer.optimize cat flock));
      governed "dynamic" (fun () ->
          match Dynamic.run cat flock with
          | Ok r -> r.Dynamic.answers
          | Error e -> Alcotest.failf "seed %d: dynamic: %s" seed e);
      governed "naive" (fun () -> Naive.run cat flock))
    (List.init 10 (fun i -> i * 7));
  assert_no_leaks "tiny-budget executors"

let test_plan_deadline_interrupts () =
  with_pool_size 1 @@ fun () ->
  let rel, threshold = instance ~seed:3 gen_basket_instance in
  let cat = catalog_of rel in
  let flock = pair_flock threshold in
  let plan = Optimizer.optimize cat flock in
  let g = Governor.create ~timeout_s:1e-9 () in
  match Governor.with_ctx g (fun () -> Plan_exec.run cat plan) with
  | _ -> Alcotest.fail "plan under expired deadline must raise"
  | exception Governor.Deadline_exceeded _ -> ()

(* {1 The deterministic fault-injection sweep}

   Each scenario is a self-contained governed computation with a known
   expected answer.  [Fault.with_count] learns how many fault points the
   clean run crosses; the sweep then replays the scenario once per point
   with exactly that point armed.  Every replay must either produce the
   correct answer (the injection landed on a pass-through point, e.g. in
   a counting-only site) or raise a typed error — [Fault.Injected] or a
   governor fault — and must never leak a spill file or corrupt shared
   state (proven by a final clean re-run against the same catalog). *)

type scenario = {
  name : string;
  expected : check:bool -> unit;
      (* runs the computation; [check = true] compares against the known
         answer, [check = false] just exercises it *)
}

let mining_scenario name ~layout ~mode =
  let rel, threshold = instance ~seed:11 gen_basket_instance in
  let cat = catalog_of rel in
  let flock = pair_flock threshold in
  let expected = with_pool_size 1 (fun () -> Direct.run cat flock) in
  let run () =
    with_pool_size 1 @@ fun () ->
    with_layout layout @@ fun () ->
    let g = Governor.create ~mem_budget:tiny_budget () in
    Governor.with_ctx g @@ fun () ->
    match mode with
    | `Direct -> Direct.run cat flock
    | `Plan -> Plan_exec.run cat (Optimizer.optimize cat flock)
    | `Dynamic -> (
      match Dynamic.run cat flock with
      | Ok r -> r.Dynamic.answers
      | Error e -> failwith ("dynamic: " ^ e))
  in
  {
    name;
    expected =
      (fun ~check ->
        let got = run () in
        if check && not (R.equal expected got) then
          Alcotest.failf "%s: wrong result" name);
  }

(* Storage round-trip with a 2-page buffer pool: every append risks an
   eviction flush, so the [pager.write]/[pager.read]/[heap.append] points
   all fire many times. *)
let storage_scenario =
  let rel = big_pair_relation 60 in
  let run () =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "qf_governor_hf.%d" (Unix.getpid ()))
    in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let hf = Heap_file.create ~capacity:2 path (R.schema rel) in
        let ok =
          try
            R.iter (Heap_file.append hf) rel;
            Heap_file.flush hf;
            true
          with e ->
            Heap_file.discard hf;
            raise e
        in
        ignore ok;
        let back = Heap_file.to_relation hf in
        Heap_file.close hf;
        back)
  in
  {
    name = "storage round-trip";
    expected =
      (fun ~check ->
        let got = run () in
        if check && not (R.equal rel got) then
          Alcotest.failf "storage round-trip: wrong result");
  }

let scenarios () =
  [
    mining_scenario "plan/row/tiny-budget" ~layout:Layout.Row ~mode:`Plan;
    mining_scenario "plan/columnar/tiny-budget" ~layout:Layout.Columnar
      ~mode:`Plan;
    mining_scenario "direct/row/tiny-budget" ~layout:Layout.Row ~mode:`Direct;
    mining_scenario "dynamic/row/tiny-budget" ~layout:Layout.Row
      ~mode:`Dynamic;
    storage_scenario;
  ]

let typed_fault = function
  | Fault.Injected _ | Governor.Over_budget _ | Governor.Deadline_exceeded _
  | Governor.Cancelled ->
    true
  | _ -> false

let test_fault_sweep () =
  let total_points = ref 0 in
  List.iter
    (fun s ->
      let (), points = Fault.with_count (fun () -> s.expected ~check:true) in
      assert_no_leaks (s.name ^ " (clean)");
      Alcotest.(check bool)
        (s.name ^ ": counted at least one fault point")
        true (points > 0);
      total_points := !total_points + points;
      for k = 1 to points do
        (match Fault.with_inject ~at:k (fun () -> s.expected ~check:true) with
        | Ok (), _ -> ()
        | Error e, _ when typed_fault e -> ()
        | Error e, _ ->
          Alcotest.failf "%s: injection at point %d leaked exception %s"
            s.name k (Printexc.to_string e));
        assert_no_leaks (Printf.sprintf "%s (inject %d)" s.name k)
      done;
      (* The shared inputs survived every injection: a final clean run
         still produces the exact expected answer. *)
      s.expected ~check:true;
      assert_no_leaks (s.name ^ " (final)"))
    (scenarios ());
  (* The acceptance bar: the sweep must exercise a substantial number of
     distinct injection points across the scenarios. *)
  Alcotest.(check bool)
    (Printf.sprintf "swept >= 200 fault points (got %d)" !total_points)
    true
    (!total_points >= 200)

let suite =
  [
    Alcotest.test_case "budget_of_string" `Quick test_budget_of_string;
    Alcotest.test_case "charge/release/peak accounting" `Quick
      test_charge_release_peak;
    Alcotest.test_case "deadline raises at the next check" `Quick
      test_deadline;
    Alcotest.test_case "cancel raises at the next check" `Quick test_cancel;
    Alcotest.test_case "ungoverned check is a no-op" `Quick
      test_ungoverned_check_is_noop;
    Alcotest.test_case "spilled equi-join = in-memory" `Quick
      test_spilled_join_agrees;
    Alcotest.test_case "spilled group-by = in-memory" `Quick
      test_spilled_group_by_agrees;
    Alcotest.test_case "spilled group-filter = in-memory" `Quick
      test_spilled_group_filter_agrees;
    Alcotest.test_case "executors agree under a tiny budget" `Slow
      test_executors_agree_under_tiny_budget;
    Alcotest.test_case "plan execution honours the deadline" `Quick
      test_plan_deadline_interrupts;
    Alcotest.test_case "fault-injection sweep: typed errors only, no leaks"
      `Slow test_fault_sweep;
  ]
