(* Dynamic filter-step selection (Sec. 4.4). *)
open Qf_core
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let medical_flock threshold =
  Parse.flock_exn
    (Printf.sprintf
       {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= %d|}
       threshold)

let medical_catalog () =
  (Qf_workload.Medical.generate
     { Qf_workload.Medical.default with n_patients = 400; seed = 11 })
    .catalog

let run_exn ?config cat flock =
  match Dynamic.run ?config cat flock with
  | Ok r -> r
  | Error e -> Alcotest.failf "Dynamic.run: %s" e

let test_equivalence_sweep () =
  let cat = medical_catalog () in
  List.iter
    (fun threshold ->
      let flock = medical_flock threshold in
      let dynamic = run_exn cat flock in
      Alcotest.check Test_util.relation
        (Printf.sprintf "threshold %d" threshold)
        (Direct.run cat flock) dynamic.answers)
    [ 2; 5; 20; 60 ]

let test_equivalence_across_configs () =
  let cat = medical_catalog () in
  let flock = medical_flock 15 in
  let expected = Direct.run cat flock in
  List.iter
    (fun (rf, imf) ->
      let config = { Dynamic.ratio_factor = rf; improvement_factor = imf; sip_reducers = true } in
      let result = run_exn ~config cat flock in
      Alcotest.check Test_util.relation
        (Printf.sprintf "config %.1f/%.1f" rf imf)
        expected result.answers)
    [ 0.0, 0.0; 0.5, 0.5; 1.0, 0.5; 10.0, 1.0; 1000., 1000. ]

let test_trace_covers_every_literal () =
  let cat = medical_catalog () in
  let flock = medical_flock 15 in
  let result = run_exn cat flock in
  check_int "one decision per body literal" 4 (List.length result.trace)

let test_aggressive_config_filters () =
  let cat = medical_catalog () in
  let flock = medical_flock 15 in
  let eager =
    run_exn ~config:{ Dynamic.ratio_factor = 1e9; improvement_factor = 1e9; sip_reducers = true }
      cat flock
  in
  check_bool "some step filtered under an eager config" true
    (List.exists (fun (d : Dynamic.decision) -> d.filtered) eager.trace);
  let never =
    run_exn ~config:{ Dynamic.ratio_factor = 0.; improvement_factor = 0.; sip_reducers = true }
      cat flock
  in
  check_bool "no step filtered under a reluctant config" true
    (List.for_all (fun (d : Dynamic.decision) -> not d.filtered) never.trace)

let test_survivors_recorded () =
  let cat = medical_catalog () in
  let flock = medical_flock 15 in
  let eager =
    run_exn ~config:{ Dynamic.ratio_factor = 1e9; improvement_factor = 1e9; sip_reducers = true }
      cat flock
  in
  List.iter
    (fun (d : Dynamic.decision) ->
      if d.filtered then begin
        check_bool "survivors present" true (d.survivors <> None);
        check_bool "survivors <= assignments" true
          (Option.get d.survivors <= d.assignments)
      end)
    eager.trace

let test_union_supported () =
  let cat = Catalog.create () in
  Catalog.add cat "p"
    (R.of_values [ "X"; "Y" ]
       V.[ [ Int 1; Int 2 ]; [ Int 2; Int 1 ]; [ Int 3; Int 1 ]; [ Int 1; Int 3 ] ]);
  let flock =
    Parse.flock_exn
      "QUERY:\nanswer(X) :- p(X,$a)\nanswer(X) :- p($a,X)\nFILTER:\nCOUNT(answer.X) >= 2"
  in
  match Dynamic.run cat flock with
  | Error e -> Alcotest.failf "union dynamic: %s" e
  | Ok r ->
    Alcotest.check Test_util.relation "union dynamic = direct"
      (Direct.run cat flock) r.answers

(* The soundness subtlety the per-branch bounds exist for: an assignment
   that fails the threshold within every single branch but passes through
   the union must survive. *)
let test_union_crosses_branches () =
  let cat = Catalog.create () in
  (* $a = 7: branch 1 contributes {1}, branch 2 contributes {2} — each
     branch alone has count 1 < 2, the union has count 2. *)
  Catalog.add cat "q"
    (R.of_values [ "X"; "Y" ] V.[ [ Int 1; Int 7 ]; [ Int 9; Int 9 ] ]);
  Catalog.add cat "r"
    (R.of_values [ "X"; "Y" ] V.[ [ Int 2; Int 7 ]; [ Int 9; Int 8 ] ]);
  let flock =
    Parse.flock_exn
      "QUERY:\nanswer(X) :- q(X,$a)\nanswer(X) :- r(X,$a)\nFILTER:\nCOUNT(answer.X) >= 2"
  in
  let direct = Direct.run cat flock in
  check_bool "union-only assignment passes directly" true
    (R.mem direct (Qf_relational.Tuple.of_array [| V.Int 7 |]));
  (* Force the most aggressive filtering so a naive per-branch prune would
     kill $a = 7. *)
  let config = { Dynamic.ratio_factor = 1e9; improvement_factor = 1e9; sip_reducers = true } in
  match Dynamic.run ~config cat flock with
  | Error e -> Alcotest.failf "union dynamic: %s" e
  | Ok r ->
    Alcotest.check Test_util.relation "aggressive union dynamic = direct"
      direct r.answers

let test_union_webwords_dynamic () =
  let cat =
    Qf_workload.Webdocs.generate
      { Qf_workload.Webdocs.default with n_docs = 150; n_anchors = 500; seed = 6 }
  in
  let flock =
    Parse.flock_exn
      {|QUERY:
answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
FILTER:
COUNT(answer(*)) >= 5|}
  in
  match Dynamic.run cat flock with
  | Error e -> Alcotest.failf "union dynamic: %s" e
  | Ok r ->
    Alcotest.check Test_util.relation "Fig. 4 union dynamic = direct"
      (Direct.run cat flock) r.answers

let test_union_sum_rejected () =
  let cat = Catalog.create () in
  Catalog.add cat "p" (R.of_values [ "X"; "W" ] V.[ [ Int 1; Int 2 ] ]);
  let rule text =
    match Qf_datalog.Parser.parse_rule text with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let flock =
    Flock.make_exn
      [ rule "answer(X,W) :- p(X,W) AND p(X,$a)";
        rule "answer(X,W) :- p(W,X) AND p(X,$a)" ]
      (Filter.sum_at_least "W" 1.)
  in
  match Dynamic.run cat flock with
  | Ok _ -> Alcotest.fail "SUM unions must be rejected"
  | Error e -> check_bool "says COUNT only" true (Test_util.contains ~sub:"COUNT" e)

let test_min_filter_rejected () =
  let cat = Catalog.create () in
  Catalog.add cat "p" (R.of_values [ "X"; "W" ] V.[ [ Int 1; Int 2 ] ]);
  let flock =
    Flock.make_exn
      [
        (match Qf_datalog.Parser.parse_rule "answer(X,W) :- p(X,W) AND p(X,$a)" with
        | Ok r -> r
        | Error e -> Alcotest.failf "parse: %s" e);
      ]
      { Filter.agg = Min "W"; threshold = 1. }
  in
  match Dynamic.run cat flock with
  | Ok _ -> Alcotest.fail "non-monotone filters must be rejected"
  | Error e -> check_bool "says monotone" true (Test_util.contains ~sub:"monotone" e)

let test_weighted_sum_dynamic () =
  (* Monotone SUM filters work dynamically too (Fig. 10 + Sec. 4.4). *)
  let cat =
    Qf_workload.Market.catalog_with_importance
      { Qf_workload.Market.default with n_baskets = 300; n_items = 60; seed = 5 }
  in
  let flock =
    Parse.flock_exn
      {|QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2
FILTER:
SUM(answer.W) >= 60|}
  in
  let result = run_exn cat flock in
  Alcotest.check Test_util.relation "dynamic SUM = direct"
    (Direct.run cat flock) result.answers

let suite =
  [
    Alcotest.test_case "dynamic = direct (threshold sweep)" `Quick
      test_equivalence_sweep;
    Alcotest.test_case "dynamic = direct (config sweep)" `Quick
      test_equivalence_across_configs;
    Alcotest.test_case "trace covers every literal" `Quick
      test_trace_covers_every_literal;
    Alcotest.test_case "configs control filtering" `Quick
      test_aggressive_config_filters;
    Alcotest.test_case "survivors recorded" `Quick test_survivors_recorded;
    Alcotest.test_case "unions supported" `Quick test_union_supported;
    Alcotest.test_case "union-only assignments survive" `Quick
      test_union_crosses_branches;
    Alcotest.test_case "Fig. 4 union dynamic" `Quick test_union_webwords_dynamic;
    Alcotest.test_case "SUM unions rejected" `Quick test_union_sum_rejected;
    Alcotest.test_case "MIN filter rejected" `Quick test_min_filter_rejected;
    Alcotest.test_case "dynamic SUM filter" `Quick test_weighted_sum_dynamic;
  ]
