(* Shared random generators for the test suites.

   Everything here is deterministic given a seed: the property tests drive
   these through QCheck's own state, while the differential and
   observability suites use {!instance} to replay a fixed sequence of
   seeds, so a failure always names the instance that produced it. *)

module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Ast = Qf_datalog.Ast
open Qf_core

(* {1 Seeded sampling} *)

(* One deterministic sample of [gen]: the same [seed] always yields the
   same value, independent of global [Random] state. *)
let instance ~seed gen =
  QCheck.Gen.generate1 ~rand:(Random.State.make [| 0x5eed; seed |]) gen

(* {1 Relations} *)

let gen_small_relation ~columns ~max_value ~max_rows =
  QCheck.Gen.(
    let* n = int_range 0 max_rows in
    let* rows =
      list_size (return n)
        (list_size
           (return (List.length columns))
           (map (fun i -> V.Int i) (int_range 0 max_value)))
    in
    return (R.of_values columns rows))

let pp_relation rel = Format.asprintf "%a" R.pp rel

(* {1 Market-basket instances} *)

(* A random (BID, Item) relation plus a support threshold — the canonical
   input of the paper's market-basket flocks. *)
let gen_basket_instance =
  QCheck.Gen.(
    let* n_baskets = int_range 1 10 in
    let* n_items = int_range 1 6 in
    let* rows =
      list_size (int_range 0 40)
        (pair (int_range 1 n_baskets) (int_range 1 n_items))
    in
    let* threshold = int_range 1 4 in
    let rel =
      R.of_values [ "BID"; "Item" ]
        (List.map (fun (b, i) -> [ V.Int b; V.Int i ]) rows)
    in
    return (rel, threshold))

let arb_basket_instance =
  QCheck.make
    ~print:(fun (rel, t) ->
      Printf.sprintf "threshold %d\n%s" t (pp_relation rel))
    gen_basket_instance

let pair_flock threshold =
  Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:threshold

let catalog_of rel =
  let cat = Catalog.create () in
  Catalog.add cat "baskets" rel;
  cat

(* {1 Tiny catalogs and random safe rules} *)

(* A random catalog over a tiny value universe, so brute-force reference
   evaluators keep their assignment spaces small. *)
let gen_tiny_catalog =
  QCheck.Gen.(
    let* p = gen_small_relation ~columns:[ "A"; "B" ] ~max_value:3 ~max_rows:10 in
    let* q = gen_small_relation ~columns:[ "A" ] ~max_value:3 ~max_rows:5 in
    let* r = gen_small_relation ~columns:[ "A"; "B" ] ~max_value:3 ~max_rows:10 in
    let cat = Catalog.create () in
    Catalog.add cat "p" p;
    Catalog.add cat "q" q;
    Catalog.add cat "r" r;
    return cat)

(* Random safe extended rules: positive atoms bind; negations, comparisons,
   and the head only use bound terms. *)
let gen_safe_rule =
  QCheck.Gen.(
    let var_pool = [ "X"; "Y"; "Z" ] and param_pool = [ "a"; "b" ] in
    let gen_fresh_term =
      frequency
        [
          4, map (fun v -> Ast.Var v) (oneofl var_pool);
          2, map (fun p -> Ast.Param p) (oneofl param_pool);
          1, map (fun i -> Ast.Const (V.Int i)) (int_range 0 3);
        ]
    in
    let gen_pos =
      let* pred = oneofl [ "p", 2; "q", 1; "r", 2 ] in
      let name, arity = pred in
      let* args = list_size (return arity) gen_fresh_term in
      return { Ast.pred = name; args }
    in
    let* n_pos = int_range 1 3 in
    let* pos_atoms = list_size (return n_pos) gen_pos in
    let bound =
      List.concat_map
        (fun (a : Ast.atom) ->
          List.filter_map
            (function
              | (Ast.Var _ | Ast.Param _) as t -> Some t
              | Ast.Const _ -> None)
            a.args)
        pos_atoms
    in
    let gen_bound_term =
      if bound = [] then map (fun i -> Ast.Const (V.Int i)) (int_range 0 3)
      else
        frequency
          [
            3, oneofl bound;
            1, map (fun i -> Ast.Const (V.Int i)) (int_range 0 3);
          ]
    in
    let* negs =
      list_size (int_range 0 1)
        (let* pred = oneofl [ "p", 2; "r", 2 ] in
         let name, arity = pred in
         let* args = list_size (return arity) gen_bound_term in
         return (Ast.Neg { Ast.pred = name; args }))
    in
    let* cmps =
      list_size (int_range 0 2)
        (let* l = gen_bound_term in
         let* c = oneofl Ast.[ Lt; Le; Gt; Ge; Eq; Ne ] in
         let* rt = gen_bound_term in
         return (Ast.Cmp (l, c, rt)))
    in
    let bound_vars =
      List.filter_map (function Ast.Var v -> Some v | _ -> None) bound
      |> List.sort_uniq String.compare
    in
    let* head_args =
      match bound_vars with
      | [] -> return [ Ast.Const (V.Int 0) ]
      | vs ->
        let* k = int_range 1 (min 2 (List.length vs)) in
        let* picked = list_size (return k) (oneofl vs) in
        return (List.map (fun v -> Ast.Var v) picked)
    in
    return
      {
        Ast.head = { Ast.pred = "answer"; args = head_args };
        body = List.map (fun a -> Ast.Pos a) pos_atoms @ negs @ cmps;
      })

let arb_rule_and_catalog =
  QCheck.make
    ~print:(fun (rule, _) -> Qf_datalog.Pretty.rule_to_string rule)
    QCheck.Gen.(pair gen_safe_rule gen_tiny_catalog)

(* {1 Random rule ASTs (parser round-trips)} *)

let gen_term =
  QCheck.Gen.(
    frequency
      [
        3, map (fun i -> Ast.Var (Printf.sprintf "X%d" i)) (int_range 0 3);
        2, map (fun i -> Ast.Param (Printf.sprintf "p%d" i)) (int_range 0 2);
        1, map (fun i -> Ast.Const (V.Int i)) (int_range 0 9);
        ( 1,
          map
            (fun i -> Ast.Const (V.Str (Printf.sprintf "c%d" i)))
            (int_range 0 3) );
      ])

let gen_atom =
  QCheck.Gen.(
    let* pred = oneofl [ "p"; "q"; "r" ] in
    let* arity = int_range 1 3 in
    let* args = list_size (return arity) gen_term in
    return { Ast.pred; args })

let gen_literal =
  QCheck.Gen.(
    frequency
      [
        5, map (fun a -> Ast.Pos a) gen_atom;
        1, map (fun a -> Ast.Neg a) gen_atom;
        ( 1,
          let* l = gen_term in
          let* r = gen_term in
          let* c = oneofl Ast.[ Lt; Le; Gt; Ge; Eq; Ne ] in
          return (Ast.Cmp (l, c, r)) );
      ])

let gen_rule =
  QCheck.Gen.(
    let* body = list_size (int_range 1 5) gen_literal in
    let* head_args = list_size (int_range 1 2) gen_term in
    (* Heads must not contain parameters (flock convention). *)
    let head_args =
      List.map
        (function Ast.Param p -> Ast.Var ("P" ^ p) | t -> t)
        head_args
    in
    return { Ast.head = { Ast.pred = "answer"; args = head_args }; body })

let arb_rule = QCheck.make ~print:Qf_datalog.Pretty.rule_to_string gen_rule
