(* Aggregates every suite; `dune runtest` runs this executable. *)
let () =
  (* Sanitizer: every plan built anywhere in this binary -- by the static
     optimizer, the levelwise generator, or a test by hand -- is
     cross-checked against the independent Sec. 4.2 legality verifier AND
     the containment-based translation validator. *)
  Qf_analysis.Validate.install ();
  Alcotest.run "query_flocks"
    [
      "value", Test_value.suite;
      "relational", Test_relational.suite;
      "algebra", Test_algebra.suite;
      "syntax", Test_syntax.suite;
      "safety", Test_safety.suite;
      "containment", Test_containment.suite;
      "eval", Test_eval.suite;
      "flock", Test_flock.suite;
      "plan", Test_plan.suite;
      "dynamic", Test_dynamic.suite;
      "generation", Test_generation.suite;
      "apriori", Test_apriori.suite;
      "workload", Test_workload.suite;
      "views", Test_views.suite;
      "sql", Test_sql.suite;
      "storage", Test_storage.suite;
      "sequence", Test_sequence.suite;
      "golden", Test_golden.suite;
      "lint", Test_lint.suite;
      "absint", Test_absint.suite;
      "parallel", Test_parallel.suite;
      "kernels", Test_kernels.suite;
      "properties", Test_props.suite;
      "sip", Test_sip.suite;
      "differential", Test_differential.suite;
      "obs", Test_obs.suite;
      "governor", Test_governor.suite;
    ]
