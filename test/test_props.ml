(* Property-based tests (qcheck): algebraic laws of the relational layer,
   the core soundness invariant (naive = direct = planned = dynamic) on
   random flock instances, the subquery upper-bound property, and parser
   round-trips on random rule ASTs.

   All generators live in the shared [Qf_testgen.Testgen] library, which
   the differential and observability suites reuse with fixed seeds. *)
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Ast = Qf_datalog.Ast
open Qf_core
open Qf_testgen.Testgen

(* {1 Relational-algebra laws} *)

let arb_two_relations =
  QCheck.make
    ~print:(fun (a, b) -> pp_relation a ^ "\n----\n" ^ pp_relation b)
    QCheck.Gen.(
      pair
        (gen_small_relation ~columns:[ "X"; "Y" ] ~max_value:5 ~max_rows:12)
        (gen_small_relation ~columns:[ "Y"; "Z" ] ~max_value:5 ~max_rows:12))

let prop_semi_anti_partition =
  QCheck.Test.make ~name:"semi + anti partition the left relation" ~count:200
    arb_two_relations (fun (a, b) ->
      let semi = Qf_relational.Join.semi a b [ "Y", "Y" ] in
      let anti = Qf_relational.Join.anti a b [ "Y", "Y" ] in
      R.cardinal semi + R.cardinal anti = R.cardinal a
      && R.equal (R.union semi anti) a)

let prop_join_cardinality_bound =
  QCheck.Test.make ~name:"equi-join is bounded by the cross product" ~count:200
    arb_two_relations (fun (a, b) ->
      R.cardinal (Qf_relational.Join.equi a b [ "Y", "Y" ])
      <= R.cardinal a * R.cardinal b)

let prop_project_idempotent =
  QCheck.Test.make ~name:"projection is idempotent" ~count:200
    (QCheck.make ~print:pp_relation
       (gen_small_relation ~columns:[ "X"; "Y" ] ~max_value:5 ~max_rows:15))
    (fun r ->
      let p = R.project r [ "X" ] in
      R.equal p (R.project p [ "X" ]))

let prop_group_filter_antitone_in_threshold =
  QCheck.Test.make
    ~name:"raising the threshold only removes groups" ~count:200
    (QCheck.make ~print:pp_relation
       (gen_small_relation ~columns:[ "G"; "T" ] ~max_value:4 ~max_rows:20))
    (fun r ->
      let at t =
        Qf_relational.Aggregate.group_filter r ~keys:[ "G" ]
          ~func:Qf_relational.Aggregate.Count ~threshold:t
      in
      let low = at 1. and high = at 3. in
      R.fold (fun tup ok -> ok && R.mem low tup) high true)

(* {1 Flock soundness: all evaluators agree} *)

let prop_naive_equals_direct =
  QCheck.Test.make ~name:"naive = direct on random basket instances" ~count:100
    arb_basket_instance (fun (rel, threshold) ->
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      R.equal (Direct.run cat flock) (Naive.run cat flock))

let prop_plans_equal_direct =
  QCheck.Test.make ~name:"all legal generated plans = direct" ~count:100
    arb_basket_instance (fun (rel, threshold) ->
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      let expected = Direct.run cat flock in
      let singleton =
        match Apriori_gen.singleton_plan flock with
        | Ok p -> Plan_exec.run cat p
        | Error e -> failwith e
      in
      let optimized = Plan_exec.run cat (Optimizer.optimize cat flock) in
      let levelwise =
        let _, p = Apriori_gen.levelwise_basket ~pred:"baskets" ~k:2 ~support:threshold in
        Plan_exec.run cat p
      in
      R.equal expected singleton && R.equal expected optimized
      && R.equal expected levelwise)

let prop_dynamic_equals_direct =
  QCheck.Test.make ~name:"dynamic = direct on random basket instances"
    ~count:100 arb_basket_instance (fun (rel, threshold) ->
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      match Dynamic.run cat flock with
      | Ok result -> R.equal (Direct.run cat flock) result.answers
      | Error e -> QCheck.Test.fail_report e)

let prop_union_dynamic_equals_direct =
  QCheck.Test.make
    ~name:"union dynamic = direct under aggressive filtering" ~count:80
    (QCheck.make
       ~print:(fun (a, b, t) ->
         Printf.sprintf "threshold %d\n%s\n----\n%s" t (pp_relation a)
           (pp_relation b))
       QCheck.Gen.(
         let* a = gen_small_relation ~columns:[ "X"; "Y" ] ~max_value:4 ~max_rows:15 in
         let* b = gen_small_relation ~columns:[ "X"; "Y" ] ~max_value:4 ~max_rows:15 in
         let* t = int_range 1 3 in
         return (a, b, t)))
    (fun (a, b, threshold) ->
      let cat = Catalog.create () in
      Catalog.add cat "p" a;
      Catalog.add cat "q" b;
      let flock =
        Parse.flock_exn
          (Printf.sprintf
             "QUERY:\nanswer(X) :- p(X,$a)\nanswer(X) :- q(X,$a)\nFILTER:\nCOUNT(answer.X) >= %d"
             threshold)
      in
      let config = { Dynamic.ratio_factor = 1e9; improvement_factor = 1e9; sip_reducers = true } in
      match Dynamic.run ~config cat flock with
      | Ok r -> R.equal (Direct.run cat flock) r.answers
      | Error e -> QCheck.Test.fail_report e)

let prop_executor_options_equal =
  QCheck.Test.make
    ~name:"plan executor agrees across all optimization combinations"
    ~count:60 arb_basket_instance (fun (rel, threshold) ->
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      match Apriori_gen.singleton_plan flock with
      | Error e -> QCheck.Test.fail_report e
      | Ok plan ->
        let run options = Plan_exec.run ~options cat plan in
        let base =
          run
            {
              Plan_exec.semijoin_reduction = false;
              symmetric_reuse = false;
              memoize = false;
            }
        in
        List.for_all
          (fun (sr, su, mz) ->
            R.equal base
              (run
                 {
                   Plan_exec.semijoin_reduction = sr;
                   symmetric_reuse = su;
                   memoize = mz;
                 }))
          [
            false, true, false;
            true, false, false;
            true, true, false;
            true, true, true;
          ])

let prop_storage_roundtrip =
  QCheck.Test.make ~name:"relations survive the paged store" ~count:40
    (QCheck.make ~print:pp_relation
       (gen_small_relation ~columns:[ "X"; "Y"; "Z" ] ~max_value:50 ~max_rows:60))
    (fun rel ->
      let path = Filename.temp_file "qfprop" ".qfh" in
      let file =
        Qf_storage.Heap_file.create ~capacity:2 path (R.schema rel)
      in
      Qf_relational.Relation.iter (Qf_storage.Heap_file.append file) rel;
      let back = Qf_storage.Heap_file.to_relation file in
      Qf_storage.Heap_file.close file;
      Sys.remove path;
      R.equal rel back)

let prop_fixpoint_transitive_closure =
  QCheck.Test.make
    ~name:"semi-naive transitive closure = brute-force closure" ~count:80
    (QCheck.make ~print:pp_relation
       (gen_small_relation ~columns:[ "X"; "Y" ] ~max_value:8 ~max_rows:25))
    (fun edges ->
      let cat = Catalog.create () in
      Catalog.add cat "edge" edges;
      let rule text =
        match Qf_datalog.Parser.parse_rule text with
        | Ok r -> r
        | Error e -> failwith e
      in
      match
        Views.materialize cat
          [
            rule "reach(X,Y) :- edge(X,Y)";
            rule "reach(X,Z) :- reach(X,Y) AND edge(Y,Z)";
          ]
      with
      | Error e -> QCheck.Test.fail_report e
      | Ok cat' ->
        let reach = Catalog.find cat' "reach" in
        (* Brute force: iterate edge-composition to a fixpoint using the
           plain relational operators. *)
        let closure = ref edges in
        let continue = ref true in
        while !continue do
          let step =
            Qf_relational.Join.equi !closure edges [ "Y", "X" ]
            (* columns: X, Y, Y_2 — keep (X, Y_2) *)
          in
          let next =
            R.fold
              (fun tup acc ->
                R.add acc
                  (Qf_relational.Tuple.of_array
                     [| Qf_relational.Tuple.get tup 0;
                        Qf_relational.Tuple.get tup 2 |]);
                acc)
              step (R.union !closure (R.of_values [ "X"; "Y" ] []))
          in
          if R.equal next !closure then continue := false else closure := next
        done;
        R.equal reach !closure)

(* {1 Subquery upper bound} *)

let count_by_params rel params =
  let groups =
    Qf_relational.Aggregate.group_by rel ~keys:params
      ~func:Qf_relational.Aggregate.Count
  in
  List.map
    (fun (k, v) ->
      ( k,
        match v with
        | V.Real f -> int_of_float f
        | V.Int n -> n
        | V.Str _ -> 0 ))
    groups

let prop_subquery_upper_bound =
  QCheck.Test.make
    ~name:"safe subqueries upper-bound per-assignment counts" ~count:100
    arb_basket_instance (fun (rel, _) ->
      let cat = catalog_of rel in
      let flock = pair_flock 1 in
      let full_rule = List.hd flock.Flock.query in
      let full_tab = Qf_datalog.Eval.tabulate cat full_rule in
      let full_counts = count_by_params full_tab [ "$1"; "$2" ] in
      List.for_all
        (fun (c : Qf_datalog.Subquery.candidate) ->
          let sub_tab = Qf_datalog.Eval.tabulate cat c.rule in
          let keys = List.map (fun p -> "$" ^ p) c.params in
          let sub_counts = count_by_params sub_tab keys in
          (* Every full-query assignment's count is bounded by the
             subquery's count for the projected parameters. *)
          List.for_all
            (fun (full_key, full_n) ->
              let positions =
                List.map
                  (fun key ->
                    match key with
                    | "$1" -> 0
                    | "$2" -> 1
                    | _ -> assert false)
                  keys
              in
              let projected =
                Qf_relational.Tuple.project (Array.of_list positions) full_key
              in
              match
                List.find_opt
                  (fun (k, _) -> Qf_relational.Tuple.equal k projected)
                  sub_counts
              with
              | Some (_, sub_n) -> sub_n >= full_n
              | None -> false)
            full_counts)
        (Qf_datalog.Subquery.enumerate full_rule))

(* {1 Evaluator vs brute-force reference on random safe extended rules} *)

let prop_eval_matches_reference =
  QCheck.Test.make
    ~name:"evaluator = brute-force reference on random safe rules" ~count:300
    arb_rule_and_catalog (fun (rule, catalog) ->
      assert (Qf_datalog.Safety.is_safe rule);
      let fast = Qf_datalog.Eval.tabulate catalog rule in
      let slow = Qf_datalog.Reference.tabulate catalog rule in
      R.equal fast slow)

let prop_minimize_preserves_semantics =
  QCheck.Test.make
    ~name:"CQ minimization preserves evaluation on random rules" ~count:200
    arb_rule_and_catalog (fun (rule, catalog) ->
      let minimized = Qf_datalog.Containment.minimize rule in
      List.length minimized.Ast.body <= List.length rule.Ast.body
      && R.equal
           (Qf_datalog.Eval.tabulate catalog rule)
           (Qf_datalog.Eval.tabulate catalog minimized))

(* {1 Parser round-trip on random ASTs} *)

let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~name:"pretty-print then parse is the identity" ~count:300
    arb_rule (fun rule ->
      match Qf_datalog.Parser.parse_rule (Qf_datalog.Pretty.rule_to_string rule) with
      | Ok rule' -> Ast.equal_rule rule rule'
      | Error e -> QCheck.Test.fail_report e)

(* {1 Classic a-priori agrees with brute force} *)

let prop_apriori_vs_bruteforce =
  QCheck.Test.make ~name:"classic a-priori pairs = brute-force counting"
    ~count:100 arb_basket_instance (fun (rel, threshold) ->
      let db = Qf_apriori.Apriori.db_of_relation rel in
      let mined =
        Qf_apriori.Apriori.frequent_of_size db ~support:threshold ~size:2
      in
      (* Brute force: count every pair directly. *)
      let items =
        List.sort_uniq compare
          (List.concat_map Qf_apriori.Itemset.to_list db)
      in
      let brute =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if i < j then begin
                  let set = Qf_apriori.Itemset.of_list [ i; j ] in
                  let support =
                    List.length
                      (List.filter (fun b -> Qf_apriori.Itemset.subset set b) db)
                  in
                  if support >= threshold then Some (set, support) else None
                end
                else None)
              items)
          items
      in
      List.length mined = List.length brute
      && List.for_all2
           (fun (f : Qf_apriori.Apriori.frequent) (set, support) ->
             Qf_apriori.Itemset.equal f.itemset set && f.support = support)
           mined brute)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_semi_anti_partition;
      prop_join_cardinality_bound;
      prop_project_idempotent;
      prop_group_filter_antitone_in_threshold;
      prop_naive_equals_direct;
      prop_plans_equal_direct;
      prop_dynamic_equals_direct;
      prop_union_dynamic_equals_direct;
      prop_fixpoint_transitive_closure;
      prop_executor_options_equal;
      prop_storage_roundtrip;
      prop_subquery_upper_bound;
      prop_eval_matches_reference;
      prop_minimize_preserves_semantics;
      prop_pretty_parse_roundtrip;
      prop_apriori_vs_bruteforce;
    ]
