(* The multicore execution engine: pool mechanics, agreement of every
   parallel kernel with its sequential path (QCheck, over pool sizes
   1/2/4 with the threshold forced to 0 so the parallel code actually
   runs on small inputs), and the catalog's version-keyed index cache. *)
module R = Qf_relational.Relation
module V = Qf_relational.Value
module T = Qf_relational.Tuple
module Schema = Qf_relational.Schema
module Join = Qf_relational.Join
module Aggregate = Qf_relational.Aggregate
module Catalog = Qf_relational.Catalog
module Index = Qf_relational.Index
module Pool = Qf_exec_pool.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One pool per size, shared by all the properties below (spawning domains
   per QCheck iteration would dominate the run). *)
let pool_sizes = [ 1; 2; 4 ]
let pools = List.map (fun size -> size, Pool.create ~size) pool_sizes

(* {1 Pool mechanics} *)

let test_run_all_order () =
  List.iter
    (fun (_, pool) ->
      let results =
        Pool.run_all pool (List.init 20 (fun i -> fun () -> i * i))
      in
      Alcotest.(check (list int))
        "results in input order"
        (List.init 20 (fun i -> i * i))
        results)
    pools

let test_run_all_exception () =
  let pool = List.assoc 4 pools in
  Alcotest.check_raises "first error re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.run_all pool
           (List.init 8 (fun i ->
                fun () -> if i = 5 then failwith "boom" else i))));
  (* The pool survives a failing batch. *)
  check_int "pool usable after an exception" 3
    (List.length (Pool.run_all pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]))

let test_chunks_cover () =
  List.iter
    (fun (size, n) ->
      let chunks = Pool.chunks_of ~size ~n in
      (* Contiguous ascending cover of [0, n). *)
      let () =
        ignore
          (List.fold_left
             (fun expected_lo (lo, hi) ->
               check_int "contiguous" expected_lo lo;
               check_bool "non-empty or trivial" true (hi >= lo);
               hi)
             0 chunks)
      in
      check_int "covers n"
        (max 0 n)
        (List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 chunks);
      check_bool "at most size chunks" true (List.length chunks <= max 1 size))
    [ 1, 10; 4, 10; 4, 3; 8, 64; 3, 0; 5, 5 ]

let test_default_pool_resize () =
  let saved = Pool.default_size () in
  Pool.set_default_size 3;
  check_int "resized" 3 (Pool.size (Pool.default ()));
  Pool.set_default_size saved;
  check_int "restored" saved (Pool.size (Pool.default ()))

(* {1 Parallel kernels agree with the sequential paths} *)

let gen_relation ~columns ~max_value ~max_rows =
  QCheck.Gen.(
    let* n = int_range 0 max_rows in
    let* rows =
      list_size (return n)
        (list_size
           (return (List.length columns))
           (map (fun i -> V.Int i) (int_range 0 max_value)))
    in
    return (R.of_values columns rows))

let pp_relation rel = Format.asprintf "%a" R.pp rel

let arb_pair =
  QCheck.make
    ~print:(fun (a, b) -> pp_relation a ^ "\n----\n" ^ pp_relation b)
    QCheck.Gen.(
      pair
        (gen_relation ~columns:[ "X"; "Y" ] ~max_value:5 ~max_rows:24)
        (gen_relation ~columns:[ "Y"; "Z" ] ~max_value:5 ~max_rows:24))

let arb_one =
  QCheck.make ~print:pp_relation
    (gen_relation ~columns:[ "G"; "T" ] ~max_value:4 ~max_rows:30)

(* Every pool size must reproduce the sequential ([?pool] absent,
   threshold huge) result; [~par_threshold:0] forces the parallel path
   even on these tiny relations. *)
let on_all_pools f =
  List.for_all (fun (_, pool) -> f ~pool ~par_threshold:0) pools

let prop_equi_parallel =
  QCheck.Test.make ~name:"parallel equi-join = sequential" ~count:100 arb_pair
    (fun (a, b) ->
      let seq = Join.equi ~par_threshold:max_int a b [ "Y", "Y" ] in
      on_all_pools (fun ~pool ~par_threshold ->
          R.equal seq (Join.equi ~pool ~par_threshold a b [ "Y", "Y" ])))

let prop_semi_parallel =
  QCheck.Test.make ~name:"parallel semi-join = sequential" ~count:100 arb_pair
    (fun (a, b) ->
      let seq = Join.semi ~par_threshold:max_int a b [ "Y", "Y" ] in
      on_all_pools (fun ~pool ~par_threshold ->
          R.equal seq (Join.semi ~pool ~par_threshold a b [ "Y", "Y" ])))

let prop_anti_parallel =
  QCheck.Test.make ~name:"parallel anti-join = sequential" ~count:100 arb_pair
    (fun (a, b) ->
      let seq = Join.anti ~par_threshold:max_int a b [ "Y", "Y" ] in
      on_all_pools (fun ~pool ~par_threshold ->
          R.equal seq (Join.anti ~pool ~par_threshold a b [ "Y", "Y" ])))

let prop_select_parallel =
  QCheck.Test.make ~name:"parallel select/project = sequential" ~count:100
    arb_one (fun r ->
      let keep tup = match T.get tup 0 with V.Int i -> i mod 2 = 0 | _ -> false in
      let seq_select = R.select ~par_threshold:max_int r keep in
      let seq_project = R.project ~par_threshold:max_int r [ "T" ] in
      on_all_pools (fun ~pool ~par_threshold ->
          R.equal seq_select (R.select ~pool ~par_threshold r keep)
          && R.equal seq_project (R.project ~pool ~par_threshold r [ "T" ])))

let prop_group_by_parallel =
  QCheck.Test.make ~name:"parallel group_by/group_filter = sequential"
    ~count:100 arb_one (fun r ->
      let sort groups =
        List.sort
          (fun (k, _) (k', _) -> T.compare k k')
          groups
      in
      let eq (k, v) (k', v') = T.equal k k' && V.equal v v' in
      List.for_all
        (fun func ->
          let seq =
            sort (Aggregate.group_by ~par_threshold:max_int r ~keys:[ "G" ] ~func)
          in
          let seq_filter =
            Aggregate.group_filter ~par_threshold:max_int r ~keys:[ "G" ] ~func
              ~threshold:2.
          in
          on_all_pools (fun ~pool ~par_threshold ->
              let par =
                sort (Aggregate.group_by ~pool ~par_threshold r ~keys:[ "G" ] ~func)
              in
              List.length seq = List.length par
              && List.for_all2 eq seq par
              && R.equal seq_filter
                   (Aggregate.group_filter ~pool ~par_threshold r
                      ~keys:[ "G" ] ~func ~threshold:2.)))
        [ Aggregate.Count; Aggregate.Sum "T"; Aggregate.Min "T"; Aggregate.Max "T" ])

(* {1 The catalog's index cache} *)

let fresh_rel () =
  R.of_values [ "X"; "Y" ]
    V.[ [ Int 1; Int 10 ]; [ Int 1; Int 20 ]; [ Int 2; Int 30 ] ]

let test_cache_counters () =
  let cat = Catalog.create () in
  let rel = fresh_rel () in
  Catalog.reset_index_stats cat;
  let i1 = Catalog.index cat rel [ 0 ] in
  check_int "first build misses" 1 (snd (Catalog.index_stats cat));
  let i2 = Catalog.index cat rel [ 0 ] in
  Alcotest.(check (pair int int)) "second lookup hits" (1, 1)
    (Catalog.index_stats cat);
  check_bool "same index object reused" true (i1 == i2);
  (* A different position list is a different cache entry. *)
  ignore (Catalog.index cat rel [ 1 ]);
  Alcotest.(check (pair int int)) "new positions miss" (1, 2)
    (Catalog.index_stats cat)

let test_cache_invalidated_by_add () =
  let cat = Catalog.create () in
  let rel = fresh_rel () in
  let v0 = R.version rel in
  let before = Catalog.index cat rel [ 0 ] in
  check_int "stale key absent" 0
    (List.length (Index.lookup before (T.of_list [ V.Int 9 ])));
  R.add rel (T.of_list [ V.Int 9; V.Int 90 ]);
  check_bool "version bumped" true (R.version rel > v0);
  Catalog.reset_index_stats cat;
  let after = Catalog.index cat rel [ 0 ] in
  Alcotest.(check (pair int int)) "stale entry rebuilt as a miss" (0, 1)
    (Catalog.index_stats cat);
  check_int "rebuilt index sees the new tuple" 1
    (List.length (Index.lookup after (T.of_list [ V.Int 9 ])));
  (* Duplicate insertion does not invalidate. *)
  let v1 = R.version rel in
  R.add rel (T.of_list [ V.Int 9; V.Int 90 ]);
  check_int "duplicate add keeps the version" v1 (R.version rel);
  ignore (Catalog.index cat rel [ 0 ]);
  check_int "and still hits" 1 (fst (Catalog.index_stats cat))

let test_cache_shared_with_copy () =
  let cat = Catalog.create () in
  let rel = fresh_rel () in
  Catalog.add cat "r" rel;
  Catalog.reset_index_stats cat;
  ignore (Catalog.index_on cat rel [ "X" ]);
  let copy = Catalog.copy cat in
  ignore (Catalog.index_on copy rel [ "X" ]);
  check_int "copy reuses the base catalog's entries" 1
    (fst (Catalog.index_stats cat))

let test_plan_exec_cache_hits () =
  (* A multi-step plan must hit the cache: with the semijoin rewrite and
     symmetric-step aliasing disabled, the two FILTER steps and the final
     step all tabulate over the *same* base relation with the same join
     positions, so only the first step pays for the index build. *)
  let cat =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 120; n_items = 40; seed = 5 }
  in
  let flock = Qf_core.Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:8 in
  let plan =
    match
      Qf_core.Apriori_gen.param_set_plan flock ~param_sets:[ [ "1" ]; [ "2" ] ]
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  Catalog.reset_index_stats cat;
  let options =
    {
      Qf_core.Plan_exec.semijoin_reduction = false;
      symmetric_reuse = false;
      memoize = false;
    }
  in
  ignore (Qf_core.Plan_exec.run ~options cat plan);
  let hits, misses = Catalog.index_stats cat in
  check_bool
    (Printf.sprintf "multi-step plan hits the index cache (%d/%d)" hits misses)
    true (hits > 0)

(* {1 Tuple and value kernels} *)

let test_tuple_hash_cached () =
  let a = T.of_list [ V.Int 1; V.str "x" ] in
  let b = T.of_list [ V.Int 1; V.str "x" ] in
  check_int "equal tuples, equal hashes" (T.hash a) (T.hash b);
  check_bool "equal" true (T.equal a b);
  let p = T.project [| 1 |] a in
  check_bool "projection re-hashes" true (T.equal p (T.of_list [ V.str "x" ]))

let test_value_interning () =
  let tag = "qf-intern-test-unique-string" in
  let c0 = V.interned_count () in
  let a = V.str tag in
  let c1 = V.interned_count () in
  let b = V.str tag in
  check_int "second str interns nothing new" c1 (V.interned_count ());
  check_bool "first str interned at most one" true (c1 <= c0 + 1);
  check_bool "interned values equal" true (V.equal a b)

let suite =
  [
    Alcotest.test_case "pool run_all preserves order" `Quick test_run_all_order;
    Alcotest.test_case "pool exception propagation" `Quick
      test_run_all_exception;
    Alcotest.test_case "chunks cover the range" `Quick test_chunks_cover;
    Alcotest.test_case "default pool resize" `Quick test_default_pool_resize;
    Alcotest.test_case "index cache counters" `Quick test_cache_counters;
    Alcotest.test_case "index cache invalidation on add" `Quick
      test_cache_invalidated_by_add;
    Alcotest.test_case "index cache shared with copies" `Quick
      test_cache_shared_with_copy;
    Alcotest.test_case "plan execution hits the cache" `Quick
      test_plan_exec_cache_hits;
    Alcotest.test_case "tuple hash caching" `Quick test_tuple_hash_cached;
    Alcotest.test_case "value interning" `Quick test_value_interning;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_equi_parallel;
        prop_semi_parallel;
        prop_anti_parallel;
        prop_select_parallel;
        prop_group_by_parallel;
      ]
