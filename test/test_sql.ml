(* The SQL front-end: parsing the Fig. 1 fragment and compiling it to
   flocks that agree with hand-written ones. *)
open Qf_sql
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig1 =
  {|SELECT i1.Item, i2.Item
FROM baskets i1, baskets i2
WHERE i1.Item < i2.Item AND i1.BID = i2.BID
GROUP BY i1.Item, i2.Item
HAVING 20 <= COUNT(i1.BID)|}

let basket_catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "baskets"
    (R.of_values [ "BID"; "Item" ]
       V.[
         [ Int 1; Str "beer" ]; [ Int 1; Str "diapers" ];
         [ Int 2; Str "beer" ]; [ Int 2; Str "diapers" ];
         [ Int 3; Str "beer" ]; [ Int 3; Str "chips" ];
         [ Int 4; Str "beer" ]; [ Int 4; Str "diapers" ];
       ]);
  cat

let test_parse_fig1 () =
  let q = Sql_parser.parse_exn fig1 in
  check_int "two FROM entries" 2 (List.length q.Sql_ast.from);
  check_int "two WHERE predicates" 2 (List.length q.Sql_ast.where);
  check_int "two GROUP BY columns" 2 (List.length q.Sql_ast.group_by);
  Alcotest.(check (float 0.)) "bound" 20. q.Sql_ast.having.lower_bound

let test_parse_flexible_syntax () =
  (* Case-insensitive keywords, HAVING in >= orientation, AS aliases,
     comments, string literals. *)
  let q =
    Sql_parser.parse_exn
      {|select t.W from words as t -- a comment
        where t.D = 'doc one'
        group by t.W having count(t.D) >= 5|}
  in
  check_int "one FROM" 1 (List.length q.Sql_ast.from);
  match (List.hd q.Sql_ast.where).Sql_ast.right with
  | Sql_ast.Lit (V.Str "doc one") -> ()
  | _ -> Alcotest.fail "expected string literal"

let test_parse_errors () =
  let is_err s = Result.is_error (Sql_parser.parse s) in
  check_bool "missing GROUP BY" true
    (is_err "SELECT a.X FROM t a HAVING COUNT(a.Y) >= 2");
  check_bool "strict HAVING bound rejected" true
    (is_err "SELECT a.X FROM t a GROUP BY a.X HAVING COUNT(a.Y) > 2");
  check_bool "trailing garbage" true
    (is_err (fig1 ^ " ORDER BY x"))

let test_compile_fig1_shape () =
  let cat = basket_catalog () in
  match Compile.of_string cat fig1 with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok flock ->
    check_int "one rule" 1 (Qf_core.Flock.rule_count flock);
    Alcotest.(check (list string))
      "two params" [ "1"; "2" ]
      (Qf_core.Flock.params flock);
    let body = (List.hd flock.Qf_core.Flock.query).Qf_datalog.Ast.body in
    (* two baskets subgoals + one comparison *)
    check_int "body size" 3 (List.length body);
    check_bool "count filter" true
      (flock.Qf_core.Flock.filter.agg = Qf_core.Filter.Count)

let test_compile_fig1_equals_fig2_flock () =
  (* The compiled SQL must compute exactly what the hand-written Fig. 2
     flock computes, at every threshold. *)
  let cat = basket_catalog () in
  List.iter
    (fun threshold ->
      let sql =
        Printf.sprintf
          "SELECT i1.Item, i2.Item FROM baskets i1, baskets i2 WHERE i1.Item \
           < i2.Item AND i1.BID = i2.BID GROUP BY i1.Item, i2.Item HAVING %d \
           <= COUNT(i1.BID)"
          threshold
      in
      let compiled =
        match Compile.of_string cat sql with
        | Ok f -> f
        | Error e -> Alcotest.failf "compile: %s" e
      in
      let hand =
        Qf_core.Parse.flock_exn
          (Printf.sprintf
             "QUERY:\n\
              answer(B) :- baskets(B,$1) AND baskets(B,$2) AND $1 < $2\n\
              FILTER:\n\
              COUNT(answer.B) >= %d"
             threshold)
      in
      Alcotest.check Test_util.relation
        (Printf.sprintf "threshold %d" threshold)
        (Qf_core.Direct.run cat hand)
        (Qf_core.Direct.run cat compiled))
    [ 1; 2; 3; 4 ]

let test_compile_constant_selection () =
  (* Equality with a literal becomes a constant inside the subgoal. *)
  let cat = basket_catalog () in
  let flock =
    match
      Compile.of_string cat
        "SELECT i2.Item FROM baskets i1, baskets i2 WHERE i1.Item = 'beer' \
         AND i1.BID = i2.BID GROUP BY i2.Item HAVING 2 <= COUNT(i1.BID)"
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let result = Qf_core.Direct.run cat flock in
  (* Items co-occurring with beer in >= 2 baskets: diapers (1,2,4) and
     beer itself (all four baskets). *)
  check_int "beer co-occurrence" 2 (R.cardinal result);
  check_bool "diapers" true (R.mem result (Qf_relational.Tuple.of_array [| V.Str "diapers" |]))

let test_compile_sum_having () =
  let cat = basket_catalog () in
  Catalog.add cat "importance"
    (R.of_values [ "BID"; "W" ]
       V.[ [ Int 1; Int 10 ]; [ Int 2; Int 1 ]; [ Int 3; Int 1 ]; [ Int 4; Int 1 ] ]);
  let flock =
    match
      Compile.of_string cat
        "SELECT b.Item FROM baskets b, importance imp WHERE b.BID = imp.BID \
         GROUP BY b.Item HAVING 12 <= SUM(imp.W)"
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let result = Qf_core.Direct.run cat flock in
  (* beer: baskets 1-4, weights 10+1+1+1 = 13 >= 12; diapers: 1,2,4 -> 12;
     chips: 3 -> 1. *)
  check_int "weighted items" 2 (R.cardinal result)

let test_compile_errors () =
  let cat = basket_catalog () in
  let is_err s = Result.is_error (Compile.of_string cat s) in
  check_bool "unknown table" true
    (is_err "SELECT a.X FROM nosuch a GROUP BY a.X HAVING 1 <= COUNT(a.X)");
  check_bool "unknown column" true
    (is_err
       "SELECT a.Nope FROM baskets a GROUP BY a.Nope HAVING 1 <= COUNT(a.BID)");
  check_bool "unknown alias" true
    (is_err
       "SELECT z.Item FROM baskets a GROUP BY z.Item HAVING 1 <= COUNT(a.BID)");
  check_bool "SELECT != GROUP BY" true
    (is_err
       "SELECT a.BID FROM baskets a GROUP BY a.Item HAVING 1 <= COUNT(a.BID)");
  check_bool "aggregate of grouped column" true
    (is_err
       "SELECT a.Item FROM baskets a GROUP BY a.Item HAVING 1 <= COUNT(a.Item)");
  check_bool "duplicate alias" true
    (is_err
       "SELECT a.Item FROM baskets a, baskets a GROUP BY a.Item HAVING 1 <= \
        COUNT(a.BID)");
  check_bool "contradictory constants" true
    (is_err
       "SELECT a.Item FROM baskets a, baskets b WHERE a.BID = 1 AND a.BID = \
        2 AND a.BID = b.BID GROUP BY a.Item HAVING 1 <= COUNT(b.BID)")

let test_compiled_flock_optimizes () =
  (* The compiled flock is a first-class flock: the whole optimizer stack
     applies. *)
  let cat =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 300; n_items = 100; seed = 5 }
  in
  let flock =
    match
      Compile.of_string cat
        "SELECT i1.Item, i2.Item FROM baskets i1, baskets i2 WHERE i1.Item < \
         i2.Item AND i1.BID = i2.BID GROUP BY i1.Item, i2.Item HAVING 15 <= \
         COUNT(i1.BID)"
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let direct = Qf_core.Direct.run cat flock in
  let plan = Qf_core.Optimizer.optimize cat flock in
  Alcotest.check Test_util.relation "optimized SQL = direct" direct
    (Qf_core.Plan_exec.run cat plan);
  match Qf_core.Dynamic.run cat flock with
  | Ok r -> Alcotest.check Test_util.relation "dynamic SQL = direct" direct r.answers
  | Error e -> Alcotest.failf "dynamic: %s" e

let suite =
  [
    Alcotest.test_case "parse Fig. 1" `Quick test_parse_fig1;
    Alcotest.test_case "parse flexible syntax" `Quick test_parse_flexible_syntax;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "compile Fig. 1 shape" `Quick test_compile_fig1_shape;
    Alcotest.test_case "compiled Fig. 1 = Fig. 2 flock" `Quick
      test_compile_fig1_equals_fig2_flock;
    Alcotest.test_case "constant selection" `Quick test_compile_constant_selection;
    Alcotest.test_case "SUM in HAVING" `Quick test_compile_sum_having;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "compiled flock optimizes" `Quick
      test_compiled_flock_optimizes;
  ]
