(* Abstract-interpretation bound certification (qf_analysis.Absint) and
   translation validation (qf_analysis.Validate):

   - the interval domain's lattice operations behave;
   - SOUNDNESS over the seeded corpus: for every plan the optimizer picks,
     the observed per-step cardinalities from [Explain.profile] never
     exceed the certified bounds of [Absint.certify_plan];
   - the translation validator accepts every rewrite the optimizer and the
     levelwise generator produce, and REJECTS a corrupted lowering that
     drops a subgoal (fail-closed mutation test);
   - [Statistics.column_profile] stays coherent across [Catalog.copy] and
     in-place relation growth (the version-counter discipline);
   - [flockc lint --format json]'s diagnostic stream is deterministic and
     every record carries the paper-section field;
   - QF07x diagnostics fire on certifiably dead programs and stay quiet on
     live ones. *)
open Qf_core
module Ast = Qf_datalog.Ast
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Statistics = Qf_relational.Statistics
module Absint = Qf_analysis.Absint
module Validate = Qf_analysis.Validate
module Diag = Qf_analysis.Diagnostic
open Qf_testgen.Testgen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* {1 Interval domain} *)

let ival lo hi =
  Absint.
    { lo = Some (V.Int lo, true); hi = Some (V.Int hi, true) }

let test_interval_lattice () =
  let open Absint in
  check_bool "top is not empty" false (is_empty top);
  check_bool "meet with top is identity" true
    (meet top (ival 1 5) = ival 1 5);
  check_bool "disjoint meet is empty" true
    (is_empty (meet (ival 1 2) (ival 5 9)));
  check_bool "singleton is not empty" false (is_empty (singleton (V.Int 3)));
  check_bool "join hulls" true (join (ival 1 2) (ival 5 9) = ival 1 9);
  (* Dense order: an open interval between adjacent ints is NOT certified
     empty (soundness over the value order, not integer arithmetic). *)
  let open_13 =
    { lo = Some (V.Int 1, false); hi = Some (V.Int 3, false) }
  in
  check_bool "open (1,3) not empty" false (is_empty open_13);
  let open_12 =
    { lo = Some (V.Int 1, false); hi = Some (V.Int 2, false) }
  in
  check_bool "open (1,2) not certified empty (dense order)" false
    (is_empty open_12);
  let pinched =
    { lo = Some (V.Int 2, false); hi = Some (V.Int 2, true) }
  in
  check_bool "half-open point is empty" true (is_empty pinched)

(* {1 Soundness: observed <= certified over the seeded corpus} *)

let corpus_seeds = List.init 100 Fun.id

let test_bounds_sound () =
  List.iter
    (fun seed ->
      let rel, threshold = instance ~seed gen_basket_instance in
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      let plan = Optimizer.optimize cat flock in
      let bounds = Absint.certify_plan cat plan in
      let p = Explain.profile cat plan in
      List.iter
        (fun (s : Explain.step_profile) ->
          match
            List.find_opt
              (fun (b : Absint.step_bound) ->
                String.equal b.Absint.sb_step s.Explain.name)
              bounds
          with
          | None -> Alcotest.failf "seed %d: no bound for step %s" seed s.name
          | Some b ->
            let leq what obs bound =
              if not (float_of_int obs <= bound) then
                Alcotest.failf
                  "seed %d step %s: observed %s %d exceeds certified %g" seed
                  s.Explain.name what obs bound
            in
            leq "rows_in" s.Explain.rows_in b.Absint.sb_rows;
            leq "groups" s.Explain.groups b.Absint.sb_groups;
            leq "rows_out" s.Explain.rows_out b.Absint.sb_survivors)
        p.Explain.steps)
    corpus_seeds

(* The clamp never raises an estimate: costing with clamps is <= without. *)
let test_clamped_cost_leq () =
  List.iter
    (fun seed ->
      let rel, threshold = instance ~seed gen_basket_instance in
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      let plan = Optimizer.optimize cat flock in
      let env = Cost.of_catalog cat in
      let clamps = Absint.clamps_of_plan cat plan in
      let plain = Cost.plan_step_estimates env plan in
      let clamped = Cost.plan_step_estimates ~clamps env plan in
      List.iter2
        (fun (a : Cost.step_estimate) (b : Cost.step_estimate) ->
          check_bool "clamped rows <= plain rows" true
            (b.Cost.est_rows <= a.Cost.est_rows);
          check_bool "clamped groups <= plain groups" true
            (b.Cost.est_groups <= a.Cost.est_groups))
        plain clamped)
    (List.init 20 Fun.id)

(* {1 Translation validation} *)

(* Every rewrite the system actually performs is proved, not trusted:
   enumerate ALL the optimizer's costed alternatives and the levelwise
   generator's plan, and run the validator over each. *)
let test_validator_accepts_rewrites () =
  List.iter
    (fun seed ->
      let rel, threshold = instance ~seed gen_basket_instance in
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      List.iter
        (fun (c : Optimizer.choice) ->
          match Validate.verify c.Optimizer.plan with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "seed %d: validator rejected a legal plan (%s): %s"
              seed
              (Explain.plan_summary c.Optimizer.plan)
              e)
        (Optimizer.enumerate cat flock))
    corpus_seeds;
  let _, levelwise = Apriori_gen.levelwise_basket ~pred:"baskets" ~k:3 ~support:2 in
  check_bool "levelwise k=3 plan validates" true
    (Validate.verify levelwise = Ok ())

(* Fail-closed: corrupt the lowering by dropping a positive subgoal from
   the final step.  The result can only grow, so the completeness
   obligation (final <= flock) must fail. *)
let test_mutation_dropped_subgoal_rejected () =
  let flock = pair_flock 2 in
  let plan =
    match Apriori_gen.singleton_plan flock with
    | Ok p -> p
    | Error e -> Alcotest.failf "singleton_plan: %s" e
  in
  let drop_first_baskets (r : Ast.rule) =
    let dropped = ref false in
    let body =
      List.filter
        (function
          | Ast.Pos a when (not !dropped) && String.equal a.Ast.pred "baskets"
            ->
            dropped := true;
            false
          | _ -> true)
        r.Ast.body
    in
    check_bool "mutation found a subgoal to drop" true !dropped;
    { r with Ast.body }
  in
  let corrupted_query =
    match plan.Plan.final.Plan.query with
    | r :: rest -> drop_first_baskets r :: rest
    | [] -> Alcotest.fail "empty final query"
  in
  let final = Plan.step ~name:plan.Plan.final.Plan.name corrupted_query in
  match Validate.check ~flock ~steps:plan.Plan.steps ~final with
  | Ok () ->
    Alcotest.fail "validator accepted a lowering that dropped a subgoal"
  | Error e ->
    check_bool "error names the containment failure" true
      (String.length e > 0)

(* And the symmetric corruption: an extra restricting subgoal on an
   auxiliary step shrinks its output, breaking the upper-bound
   obligation. *)
let test_mutation_restricted_step_rejected () =
  let flock = pair_flock 2 in
  let plan =
    match Apriori_gen.singleton_plan flock with
    | Ok p -> p
    | Error e -> Alcotest.failf "singleton_plan: %s" e
  in
  match plan.Plan.steps with
  | [] -> Alcotest.fail "singleton plan has no auxiliary steps"
  | s :: rest ->
    let restrict (r : Ast.rule) =
      (* Restrict the parameter to a single constant: the step's output
         can only shrink, so it no longer over-approximates. *)
      let param =
        match s.Plan.params with
        | p :: _ -> p
        | [] -> Alcotest.fail "auxiliary step without parameters"
      in
      { r with Ast.body = r.Ast.body @ [ Ast.Cmp (Ast.Param param, Ast.Eq, Ast.Const (V.Int 1)) ] }
    in
    let corrupted = Plan.step ~name:s.Plan.name (List.map restrict s.Plan.query) in
    (match
       Validate.check ~flock ~steps:(corrupted :: rest) ~final:plan.Plan.final
     with
    | Ok () ->
      Alcotest.fail "validator accepted an over-restricted auxiliary step"
    | Error _ -> ())

(* {1 Statistics: column profiles and the version-counter discipline} *)

let test_column_profile_coherence () =
  let rel =
    R.of_values [ "BID"; "Item" ]
      [
        [ V.Int 1; V.Str "beer" ];
        [ V.Int 1; V.Str "chips" ];
        [ V.Int 2; V.Str "beer" ];
      ]
  in
  let cat = Catalog.create () in
  Catalog.add cat "baskets" rel;
  let prof () = Statistics.column_profile (Catalog.stats cat "baskets") "BID" in
  let p0 = prof () in
  check_int "ndv" 2 p0.Statistics.ndv;
  check_bool "min" true (p0.Statistics.min_value = Some (V.Int 1));
  check_bool "max" true (p0.Statistics.max_value = Some (V.Int 2));
  check_int "max_frequency" 2 p0.Statistics.max_frequency;
  (* The copy shares the cache but revalidates by (id, version): replacing
     the copy's relation must not disturb the original's profile. *)
  let copy = Catalog.copy cat in
  Catalog.add copy "baskets"
    (R.of_values [ "BID"; "Item" ] [ [ V.Int 9; V.Str "relish" ] ]);
  let pc = Statistics.column_profile (Catalog.stats copy "baskets") "BID" in
  check_bool "copy sees its own relation" true
    (pc.Statistics.min_value = Some (V.Int 9));
  let p1 = prof () in
  check_bool "original unchanged by the copy's rebinding" true
    (p1.Statistics.min_value = Some (V.Int 1) && p1.Statistics.ndv = 2);
  (* In-place growth bumps the relation's version; the cached statistics
     must be recomputed, not served stale. *)
  R.add rel (Qf_relational.Tuple.of_list [ V.Int 7; V.Str "ketchup" ]);
  let p2 = prof () in
  check_int "ndv after in-place add" 3 p2.Statistics.ndv;
  check_bool "max after in-place add" true
    (p2.Statistics.max_value = Some (V.Int 7))

(* {1 Deterministic machine-readable diagnostics} *)

let test_lint_json_deterministic () =
  let src =
    "QUERY:\nanswer(B) :- baskets(B,$1) AND B > 100\n\nFILTER:\nCOUNT(answer.B) >= 2\n"
  in
  let rel, _ = instance ~seed:5 gen_basket_instance in
  let catalog = catalog_of rel in
  let diags () =
    let base = Qf_analysis.Lint.lint ~catalog src in
    let absint =
      match Parse.program_located src with
      | Ok lp -> Absint.check_program ~catalog lp
      | Error _ -> []
    in
    Diag.sort (base @ absint)
  in
  let d1 = diags () and d2 = diags () in
  check_string "two runs render identically"
    (Diag.render_json ~file:"t.flock" d1)
    (Diag.render_json ~file:"t.flock" d2);
  (* Sorting is canonical: a reversed input stream sorts back to the same
     rendering. *)
  check_string "order is canonical under permutation"
    (Diag.render_json ~file:"t.flock" d1)
    (Diag.render_json ~file:"t.flock" (Diag.sort (List.rev d1)));
  (* Every record carries the paper-section field. *)
  List.iter
    (fun (d : Diag.t) ->
      let j = Diag.to_json d in
      check_bool "record has a section field" true
        (let re = "\"section\":" in
         let rec find i =
           i + String.length re <= String.length j
           && (String.sub j i (String.length re) = re || find (i + 1))
         in
         find 0))
    d1

(* {1 QF07x: fires when certifiable, quiet when not} *)

let located src =
  match Parse.program_located src with
  | Ok lp -> lp
  | Error (e, _) -> Alcotest.failf "parse: %s" e

let test_qf07x_codes () =
  let rel, _ = instance ~seed:11 gen_basket_instance in
  let catalog = catalog_of rel in
  let codes src =
    Diag.distinct_codes (Absint.check_program ~catalog (located src))
  in
  let has c src = List.mem c (codes src) in
  check_bool "unsat comparison -> QF070" true
    (has "QF070"
       "QUERY:\nanswer(B) :- baskets(B,$1) AND B > 100\n\nFILTER:\nCOUNT(answer.B) >= 2\n");
  check_bool "impossible threshold -> QF072" true
    (has "QF072"
       "QUERY:\nanswer(B) :- baskets(B,$1)\n\nFILTER:\nCOUNT(answer.B) >= 100000\n");
  (* Items are drawn from [1, 6], so a live program stays undiagnosed. *)
  check_bool "live program is quiet" true
    ([] = codes
       "QUERY:\nanswer(B) :- baskets(B,$1)\n\nFILTER:\nCOUNT(answer.B) >= 1\n");
  (* SUM over the (non-negative) BID column is certified monotone; the
     flip side, a negative summand, is covered by the golden fixture. *)
  check_bool "non-negative SUM is quiet" true
    ([] = codes
       "QUERY:\nanswer(B) :- baskets(B,$1)\n\nFILTER:\nSUM(answer.B) >= 2\n")

let test_monotonicity_certificates () =
  let rel, _ = instance ~seed:11 gen_basket_instance in
  let catalog = catalog_of rel in
  let flock_of src = (Result.get_ok (Parse.program src)).Parse.flock in
  (match
     Absint.monotonicity catalog
       (flock_of
          "QUERY:\nanswer(B) :- baskets(B,$1)\n\nFILTER:\nSUM(answer.B) >= 2\n")
   with
  | Absint.Monotone_sum_certified _ -> ()
  | _ -> Alcotest.fail "expected a certified-monotone SUM");
  let neg = Catalog.create () in
  Catalog.add neg "temps"
    (R.of_values [ "City"; "T" ]
       [ [ V.Str "oslo"; V.Int (-8) ]; [ V.Str "oslo"; V.Int 3 ] ]);
  match
    Absint.monotonicity neg
      (flock_of "QUERY:\nanswer(T) :- temps($1,T)\n\nFILTER:\nSUM(answer.T) >= 2\n")
  with
  | Absint.Unverified_sum (_, Some (V.Int -8)) -> ()
  | _ -> Alcotest.fail "expected an unverified SUM with witness -8"

let suite =
  [
    Alcotest.test_case "interval lattice operations" `Quick
      test_interval_lattice;
    Alcotest.test_case "100-seed corpus: observed <= certified bounds" `Quick
      test_bounds_sound;
    Alcotest.test_case "clamping never raises an estimate" `Quick
      test_clamped_cost_leq;
    Alcotest.test_case "validator accepts every optimizer rewrite" `Quick
      test_validator_accepts_rewrites;
    Alcotest.test_case "mutation: dropped final subgoal is rejected" `Quick
      test_mutation_dropped_subgoal_rejected;
    Alcotest.test_case "mutation: over-restricted step is rejected" `Quick
      test_mutation_restricted_step_rejected;
    Alcotest.test_case "column profiles cohere across copy and growth" `Quick
      test_column_profile_coherence;
    Alcotest.test_case "lint --json output is deterministic" `Quick
      test_lint_json_deterministic;
    Alcotest.test_case "QF07x diagnostics fire exactly when certifiable"
      `Quick test_qf07x_codes;
    Alcotest.test_case "SUM monotonicity certificates" `Quick
      test_monotonicity_certificates;
  ]
