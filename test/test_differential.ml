(* Differential harness: on a corpus of seeded random flock instances,
   every executor must produce exactly the same answer relation as
   {!Direct.run} — naive generate-and-test, the optimizer's chosen plan,
   the a-priori singleton plan, the levelwise plan, and dynamic filter
   selection — and the agreement must be insensitive to the Domain pool's
   size.

   Unlike the QCheck properties (fresh random instances per run), this
   suite replays fixed seeds, so a regression reproduces byte-for-byte and
   the failing seed is named in the assertion message. *)

module R = Qf_relational.Relation
module Catalog = Qf_relational.Catalog
module Layout = Qf_relational.Layout
module Pool = Qf_exec_pool.Pool
open Qf_core
open Qf_testgen.Testgen

let seeds = List.init 100 Fun.id

let instance_of_seed seed = instance ~seed gen_basket_instance

(* All executors on one instance; returns (executor name, result) pairs. *)
let run_all_executors cat flock =
  let direct = Direct.run cat flock in
  let naive = Naive.run cat flock in
  let optimized = Plan_exec.run cat (Optimizer.optimize cat flock) in
  let singleton =
    match Apriori_gen.singleton_plan flock with
    | Ok p -> Plan_exec.run cat p
    | Error e -> failwith ("singleton plan: " ^ e)
  in
  let dynamic =
    match Dynamic.run cat flock with
    | Ok r -> r.Dynamic.answers
    | Error e -> failwith ("dynamic: " ^ e)
  in
  ( direct,
    [
      "naive", naive;
      "optimized plan", optimized;
      "singleton plan", singleton;
      "dynamic", dynamic;
    ] )

let check_seed seed =
  let rel, threshold = instance_of_seed seed in
  let cat = catalog_of rel in
  let flock = pair_flock threshold in
  let expected, results = run_all_executors cat flock in
  List.iter
    (fun (name, got) ->
      if not (R.equal expected got) then
        Alcotest.failf "seed %d: %s disagrees with direct (threshold %d)\n%s"
          seed name threshold (pp_relation rel))
    results

let test_corpus_agrees () = List.iter check_seed seeds

(* The levelwise market-basket plan (k = 3, with its symmetry reuse and
   subset pruning) against direct, on a smaller slice of the corpus. *)
let test_levelwise_agrees () =
  List.iter
    (fun seed ->
      let rel, threshold = instance_of_seed seed in
      let cat = catalog_of rel in
      let flock, plan =
        Apriori_gen.levelwise_basket ~pred:"baskets" ~k:3 ~support:threshold
      in
      let expected = Direct.run cat flock in
      let got = Plan_exec.run cat plan in
      if not (R.equal expected got) then
        Alcotest.failf "seed %d: levelwise k=3 disagrees with direct" seed)
    (List.filteri (fun i _ -> i mod 4 = 0) seeds)

(* Union flocks: two branches over independent random relations, dynamic
   with aggressive filtering vs direct. *)
let gen_union_instance =
  QCheck.Gen.(
    let* a = gen_small_relation ~columns:[ "X"; "Y" ] ~max_value:4 ~max_rows:15 in
    let* b = gen_small_relation ~columns:[ "X"; "Y" ] ~max_value:4 ~max_rows:15 in
    let* t = int_range 1 3 in
    return (a, b, t))

let test_union_corpus_agrees () =
  List.iter
    (fun seed ->
      let a, b, threshold = instance ~seed gen_union_instance in
      let cat = Catalog.create () in
      Catalog.add cat "p" a;
      Catalog.add cat "q" b;
      let flock =
        Parse.flock_exn
          (Printf.sprintf
             "QUERY:\n\
              answer(X) :- p(X,$a)\n\
              answer(X) :- q(X,$a)\n\
              FILTER:\n\
              COUNT(answer.X) >= %d"
             threshold)
      in
      let expected = Direct.run cat flock in
      let config = { Dynamic.ratio_factor = 1e9; improvement_factor = 1e9; sip_reducers = true } in
      match Dynamic.run ~config cat flock with
      | Ok r ->
        if not (R.equal expected r.Dynamic.answers) then
          Alcotest.failf "seed %d: union dynamic disagrees with direct" seed
      | Error e -> Alcotest.failf "seed %d: union dynamic failed: %s" seed e)
    (List.filteri (fun i _ -> i mod 2 = 0) seeds)

(* Pool-size insensitivity: a slice of the corpus, re-run with the shared
   pool forced to 4 domains and the parallel threshold forced low enough
   that the parallel kernels actually engage on these small inputs.  The
   whole suite also runs again under QF_DOMAINS=4 (see dune), so this
   test's job is the *in-process* size switch. *)
let with_pool_size size f =
  let saved_size = Pool.size (Pool.default ()) in
  Pool.set_default_size size;
  Fun.protect ~finally:(fun () -> Pool.set_default_size saved_size) f

let test_pool_size_insensitive () =
  let slice = List.filteri (fun i _ -> i mod 5 = 0) seeds in
  let run_slice () =
    List.map
      (fun seed ->
        let rel, threshold = instance_of_seed seed in
        let cat = catalog_of rel in
        let flock = pair_flock threshold in
        let expected, results = run_all_executors cat flock in
        expected, List.map snd results)
      slice
  in
  let sequential = with_pool_size 1 run_slice in
  let parallel = with_pool_size 4 run_slice in
  List.iteri
    (fun i ((e1, rs1), (e2, rs2)) ->
      let seed = List.nth slice i in
      if not (R.equal e1 e2) then
        Alcotest.failf "seed %d: direct differs across pool sizes" seed;
      List.iter2
        (fun a b ->
          if not (R.equal a b) then
            Alcotest.failf "seed %d: an executor differs across pool sizes"
              seed)
        rs1 rs2)
    (List.combine sequential parallel)

(* The SIP/memo executor against the unreduced baseline, across physical
   layouts, pool sizes, and memo budgets (0 disables the memo, a tiny
   budget forces evictions mid-run, [max_int] is unbounded).  Each
   configuration runs the levelwise plan twice on the same catalog so the
   warm run exercises memo hits and the reducer caches. *)
let test_reduced_equals_unreduced_matrix () =
  let unreduced =
    {
      Plan_exec.semijoin_reduction = false;
      symmetric_reuse = false;
      memoize = false;
    }
  in
  List.iter
    (fun seed ->
      let rel, threshold = instance_of_seed seed in
      List.iter
        (fun layout ->
          Layout.set_override (Some layout);
          Fun.protect ~finally:(fun () -> Layout.set_override None)
          @@ fun () ->
          List.iter
            (fun pool_size ->
              with_pool_size pool_size @@ fun () ->
              let cat = catalog_of rel in
              let _, plan =
                Apriori_gen.levelwise_basket ~pred:"baskets" ~k:3
                  ~support:threshold
              in
              let expected = Plan_exec.run ~options:unreduced cat plan in
              List.iter
                (fun budget ->
                  Catalog.set_memo_budget cat budget;
                  Catalog.memo_clear cat;
                  List.iter
                    (fun pass ->
                      let got = Plan_exec.run cat plan in
                      if not (R.equal expected got) then
                        Alcotest.failf
                          "seed %d: reduced (layout %s, pool %d, budget %d, \
                           %s run) disagrees with unreduced"
                          seed (Layout.to_string layout) pool_size budget
                          pass)
                    [ "cold"; "warm" ])
                [ 0; 2048; max_int ])
            [ 1; 2; 4 ])
        [ Layout.Row; Layout.Columnar ])
    (List.filteri (fun i _ -> i mod 10 = 0) seeds)

(* The governed matrix: budgets (the QF_MEM_BUDGET axis — a tiny budget
   that forces the spill kernels, a 64k budget that mostly fits, and
   unbounded) x layouts x pool sizes.  Every configuration must produce
   exactly the ungoverned direct answer, and the tiny budget must
   actually exercise the spill paths somewhere in the slice (asserted on
   the aggregate spill-partition count, since individual seeds can be too
   small to trip the gate). *)
let test_governed_matrix () =
  let module Governor = Qf_governor.Governor in
  let tiny = 4096 in
  let tiny_spills = ref 0 in
  List.iter
    (fun seed ->
      let rel, threshold = instance_of_seed seed in
      let flock = pair_flock threshold in
      let cat = catalog_of rel in
      let expected = with_pool_size 1 (fun () -> Direct.run cat flock) in
      List.iter
        (fun layout ->
          Layout.set_override (Some layout);
          Fun.protect ~finally:(fun () -> Layout.set_override None)
          @@ fun () ->
          List.iter
            (fun pool_size ->
              with_pool_size pool_size @@ fun () ->
              List.iter
                (fun budget ->
                  let g = Governor.create ~mem_budget:budget () in
                  let got =
                    Governor.with_ctx g (fun () ->
                        Plan_exec.run cat (Optimizer.optimize cat flock))
                  in
                  if budget = tiny then
                    tiny_spills :=
                      !tiny_spills
                      + (Governor.stats g).Governor.spill_partitions;
                  if not (R.equal expected got) then
                    Alcotest.failf
                      "seed %d: governed plan (layout %s, pool %d, budget \
                       %d) disagrees with direct"
                      seed (Layout.to_string layout) pool_size budget)
                [ tiny; 65536; max_int ])
            [ 1; 2; 4 ])
        [ Layout.Row; Layout.Columnar ])
    (List.filteri (fun i _ -> i mod 10 = 0) seeds);
  Alcotest.(check bool)
    "the tiny budget actually spilled somewhere in the slice" true
    (!tiny_spills > 0)

let suite =
  [
    Alcotest.test_case "100-seed corpus: all executors = direct" `Slow
      test_corpus_agrees;
    Alcotest.test_case "levelwise k=3 plan = direct" `Slow
      test_levelwise_agrees;
    Alcotest.test_case "union corpus: dynamic = direct" `Slow
      test_union_corpus_agrees;
    Alcotest.test_case "agreement is pool-size insensitive" `Slow
      test_pool_size_insensitive;
    Alcotest.test_case
      "sip/memo matrix: reduced = unreduced across layouts/pools/budgets"
      `Slow test_reduced_equals_unreduced_matrix;
    Alcotest.test_case
      "governed matrix: budgets x layouts x pools = ungoverned direct"
      `Slow test_governed_matrix;
  ]
