(* Query-flock semantics: parsing whole programs, the reference
   (generate-and-test) evaluator, and direct evaluation — on the paper's
   running examples. *)
open Qf_core
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Fig. 2's flock with a small threshold for hand-checkable data. *)
let baskets_program threshold =
  Printf.sprintf
    {|QUERY:
answer(B) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    $1 < $2
FILTER:
COUNT(answer.B) >= %d|}
    threshold

let basket_catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "baskets"
    (R.of_values [ "BID"; "Item" ]
       V.[
         [ Int 1; Str "beer" ]; [ Int 1; Str "diapers" ];
         [ Int 2; Str "beer" ]; [ Int 2; Str "diapers" ];
         [ Int 3; Str "beer" ]; [ Int 3; Str "chips" ];
         [ Int 4; Str "beer" ]; [ Int 4; Str "diapers" ]; [ Int 4; Str "chips" ];
         [ Int 5; Str "chips" ]; [ Int 5; Str "diapers" ];
       ]);
  cat

(* Fig. 3's medical flock. *)
let medical_program =
  {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 2|}

let medical_catalog () =
  let cat = Catalog.create () in
  (* Disease 1 causes symptom 10; disease 2 causes symptom 20.
     Medicine 100 produces unexplained symptom 20 in patients 1,2 (disease 1). *)
  Catalog.add cat "diagnoses"
    (R.of_values [ "Patient"; "Disease" ]
       V.[ [ Int 1; Int 1 ]; [ Int 2; Int 1 ]; [ Int 3; Int 2 ] ]);
  Catalog.add cat "causes"
    (R.of_values [ "Disease"; "Symptom" ]
       V.[ [ Int 1; Int 10 ]; [ Int 2; Int 20 ] ]);
  Catalog.add cat "exhibits"
    (R.of_values [ "Patient"; "Symptom" ]
       V.[
         [ Int 1; Int 10 ]; [ Int 1; Int 20 ];
         [ Int 2; Int 10 ]; [ Int 2; Int 20 ];
         [ Int 3; Int 20 ];
       ]);
  Catalog.add cat "treatments"
    (R.of_values [ "Patient"; "Medicine" ]
       V.[ [ Int 1; Int 100 ]; [ Int 2; Int 100 ]; [ Int 3; Int 200 ] ]);
  cat

let test_parse_program () =
  let flock = Parse.flock_exn (baskets_program 3) in
  check_int "one rule" 1 (Flock.rule_count flock);
  Alcotest.(check (list string)) "params" [ "1"; "2" ] (Flock.params flock);
  Alcotest.(check string) "head" "answer" (Flock.head_name flock)

let test_parse_program_errors () =
  check_bool "missing FILTER" true
    (Result.is_error (Parse.flock "QUERY:\nanswer(B) :- baskets(B,$1)"));
  check_bool "unknown aggregate" true
    (Result.is_error
       (Parse.flock
          "QUERY:\nanswer(B) :- baskets(B,$1)\nFILTER:\nAVG(answer.B) >= 2"));
  check_bool "aggregate over wrong head" true
    (Result.is_error
       (Parse.flock
          "QUERY:\nanswer(B) :- baskets(B,$1)\nFILTER:\nCOUNT(other.B) >= 2"));
  check_bool "sum needs a column" true
    (Result.is_error
       (Parse.flock
          "QUERY:\nanswer(B) :- baskets(B,$1)\nFILTER:\nSUM(answer(*)) >= 2"));
  check_bool "no parameters rejected" true
    (Result.is_error
       (Parse.flock "QUERY:\nanswer(B) :- baskets(B,Item)\nFILTER:\nCOUNT(answer.B) >= 2"))

let test_flock_print_parse_roundtrip () =
  let flock = Parse.flock_exn medical_program in
  let reparsed = Parse.flock_exn (Flock.to_string flock) in
  check_bool "roundtrip" true (Flock.equal flock reparsed)

let test_direct_baskets () =
  let cat = basket_catalog () in
  let flock = Parse.flock_exn (baskets_program 3) in
  let result = Direct.run cat flock in
  (* beer+diapers in baskets 1,2,4 = 3; chips+diapers in 4,5 = 2; beer+chips
     in 3,4 = 2.  Only (beer, diapers) passes. *)
  check_int "one pair" 1 (R.cardinal result);
  check_bool "beer-diapers" true
    (R.mem result (Qf_relational.Tuple.of_array [| V.Str "beer"; V.Str "diapers" |]))

let test_direct_threshold_2 () =
  let cat = basket_catalog () in
  let flock = Parse.flock_exn (baskets_program 2) in
  let result = Direct.run cat flock in
  check_int "three pairs at support 2" 3 (R.cardinal result)

let test_naive_matches_direct () =
  let cat = basket_catalog () in
  List.iter
    (fun threshold ->
      let flock = Parse.flock_exn (baskets_program threshold) in
      Alcotest.check Test_util.relation
        (Printf.sprintf "threshold %d" threshold)
        (Direct.run cat flock) (Naive.run cat flock))
    [ 1; 2; 3; 4 ]

let test_medical_direct () =
  let cat = medical_catalog () in
  let flock = Parse.flock_exn medical_program in
  let result = Direct.run cat flock in
  (* Patients 1,2: symptom 20 unexplained (disease 1 causes only 10), both on
     medicine 100. Symptom 10 is explained for them.  Patient 3's symptom 20
     is explained by disease 2. *)
  check_int "one side effect" 1 (R.cardinal result);
  check_bool "(m=100, s=20)" true (R.mem result (Qf_relational.Tuple.of_array [| V.Int 100; V.Int 20 |]));
  Alcotest.check Test_util.relation "naive agrees" result (Naive.run cat flock)

let test_medical_result_columns () =
  let flock = Parse.flock_exn medical_program in
  Alcotest.(check (list string))
    "result columns sorted" [ "$m"; "$s" ] (Flock.result_columns flock)

let test_union_flock_webwords () =
  (* Tiny Fig. 4 instance: words 1,2 co-occur in title of doc 1 and via
     anchor 10 -> doc 1. *)
  let cat = Catalog.create () in
  Catalog.add cat "inTitle"
    (R.of_values [ "D"; "W" ]
       V.[ [ Int 1; Int 1 ]; [ Int 1; Int 2 ]; [ Int 2; Int 2 ] ]);
  Catalog.add cat "inAnchor"
    (R.of_values [ "A"; "W" ] V.[ [ Int 10; Int 1 ]; [ Int 11; Int 2 ] ]);
  Catalog.add cat "link"
    (R.of_values [ "A"; "D1"; "D2" ]
       V.[ [ Int 10; Int 2; Int 1 ]; [ Int 11; Int 2; Int 1 ] ]);
  let flock =
    Parse.flock_exn
      {|QUERY:
answer(D) :- inTitle(D,$1) AND inTitle(D,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$1) AND inTitle(D2,$2) AND $1 < $2
answer(A) :- link(A,D1,D2) AND inAnchor(A,$2) AND inTitle(D2,$1) AND $1 < $2
FILTER:
COUNT(answer(*)) >= 3|}
  in
  let result = Direct.run cat flock in
  (* (1,2): title doc1 (1) + anchor10(word1)->doc1 title word2 (1) + anchor11
     (word2)->doc1 title word1 (1) = 3 sources. *)
  check_int "one pair" 1 (R.cardinal result);
  check_bool "(1,2)" true (R.mem result (Qf_relational.Tuple.of_array [| V.Int 1; V.Int 2 |]));
  Alcotest.check Test_util.relation "naive agrees on unions" result
    (Naive.run cat flock)

let test_weighted_sum_filter () =
  (* Fig. 10: weighted baskets. *)
  let cat = basket_catalog () in
  Catalog.add cat "importance"
    (R.of_values [ "BID"; "W" ]
       V.[
         [ Int 1; Int 10 ]; [ Int 2; Int 1 ]; [ Int 3; Int 1 ];
         [ Int 4; Int 1 ]; [ Int 5; Int 10 ];
       ]);
  let flock =
    Parse.flock_exn
      {|QUERY:
answer(B,W) :-
    baskets(B,$1) AND
    baskets(B,$2) AND
    importance(B,W) AND
    $1 < $2
FILTER:
SUM(answer.W) >= 11|}
  in
  let result = Direct.run cat flock in
  (* beer+diapers: baskets 1,2,4 weights 10+1+1=12 >= 11.
     chips+diapers: 4,5 -> 1+10=11 >= 11. beer+chips: 3,4 -> 2. *)
  check_int "two weighted pairs" 2 (R.cardinal result);
  check_bool "beer-diapers" true (R.mem result (Qf_relational.Tuple.of_array [| V.Str "beer"; V.Str "diapers" |]));
  check_bool "chips-diapers" true (R.mem result (Qf_relational.Tuple.of_array [| V.Str "chips"; V.Str "diapers" |]));
  Alcotest.check Test_util.relation "naive agrees on SUM" result
    (Naive.run cat flock)

let test_naive_assignment_cap () =
  let cat = basket_catalog () in
  let flock = Parse.flock_exn (baskets_program 2) in
  Alcotest.check_raises "cap enforced"
    (Invalid_argument "Naive.run: 9 assignments exceed the limit of 4")
    (fun () -> ignore (Naive.run ~max_assignments:4 cat flock))

let test_filter_monotonicity () =
  check_bool "count monotone" true (Filter.is_monotone (Filter.count_at_least 5));
  check_bool "sum monotone" true (Filter.is_monotone (Filter.sum_at_least "W" 5.));
  check_bool "max monotone" true
    (Filter.is_monotone { Filter.agg = Max "W"; threshold = 5. });
  check_bool "min not monotone" false
    (Filter.is_monotone { Filter.agg = Min "W"; threshold = 5. })

let suite =
  [
    Alcotest.test_case "parse flock program" `Quick test_parse_program;
    Alcotest.test_case "parse program errors" `Quick test_parse_program_errors;
    Alcotest.test_case "flock print/parse roundtrip" `Quick
      test_flock_print_parse_roundtrip;
    Alcotest.test_case "Fig. 2 direct evaluation" `Quick test_direct_baskets;
    Alcotest.test_case "threshold sensitivity" `Quick test_direct_threshold_2;
    Alcotest.test_case "naive = direct (baskets)" `Quick test_naive_matches_direct;
    Alcotest.test_case "Fig. 3 medical side effects" `Quick test_medical_direct;
    Alcotest.test_case "result columns" `Quick test_medical_result_columns;
    Alcotest.test_case "Fig. 4 union flock" `Quick test_union_flock_webwords;
    Alcotest.test_case "Fig. 10 weighted SUM filter" `Quick
      test_weighted_sum_filter;
    Alcotest.test_case "naive assignment cap" `Quick test_naive_assignment_cap;
    Alcotest.test_case "filter monotonicity" `Quick test_filter_monotonicity;
  ]
