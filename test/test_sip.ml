(* Sideways information passing and the cross-level subplan memo: the LRU
   byte-budget policy, Bloom/exact reducer membership laws, canonical
   step signatures, memo-hit cascades across levelwise runs, and the
   reduced = unreduced differential matrix over layouts x pool sizes x
   memo budgets. *)
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Dict = Qf_relational.Dict
module Layout = Qf_relational.Layout
module Lru = Qf_relational.Lru
module Sip = Qf_relational.Sip
module Pool = Qf_exec_pool.Pool
module Obs = Qf_obs.Obs
module Ast = Qf_datalog.Ast
open Qf_core
open Qf_testgen.Testgen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let no_shortcut =
  {
    Plan_exec.semijoin_reduction = false;
    symmetric_reuse = false;
    memoize = false;
  }

(* {1 Lru} *)

let test_lru_policy () =
  let t : (string, int) Lru.t = Lru.create ~budget:100 in
  check_int "empty" 0 (Lru.length t);
  check_int "no eviction under budget" 0 (Lru.add t "a" 1 ~bytes:40);
  check_int "no eviction under budget" 0 (Lru.add t "b" 2 ~bytes:40);
  check_int "total tracks declared bytes" 80 (Lru.total_bytes t);
  (* Touch [a] so [b] becomes the least recently used entry. *)
  check_bool "hit" true (Lru.find t "a" = Some 1);
  check_int "one eviction past the budget" 1 (Lru.add t "c" 3 ~bytes:40);
  check_bool "lru entry evicted" true (Lru.find t "b" = None);
  check_bool "recently used survives" true (Lru.find t "a" = Some 1);
  check_bool "new entry resident" true (Lru.find t "c" = Some 3);
  check_int "running eviction count" 1 (Lru.evictions t);
  (* Replacing a key swaps its bytes, not duplicates them. *)
  check_int "replace without eviction" 0 (Lru.add t "a" 9 ~bytes:10);
  check_int "replacement adjusts total" 50 (Lru.total_bytes t);
  (* Shrinking the budget evicts immediately; budget 0 disables. *)
  check_int "shrink evicts to fit" 2 (Lru.set_budget t 0);
  check_int "disabled table holds nothing" 0 (Lru.length t);
  check_int "add is a no-op at budget 0" 0 (Lru.add t "d" 4 ~bytes:1);
  check_bool "find misses at budget 0" true (Lru.find t "d" = None)

let test_lru_oversized_entry () =
  let t : (int, unit) Lru.t = Lru.create ~budget:10 in
  (* An entry larger than the whole budget is admitted and immediately
     evicted (returned in the eviction count) — the table never ends up
     over budget. *)
  let evicted = Lru.add t 1 () ~bytes:1000 in
  check_bool "oversized entry does not stick" true
    (Lru.total_bytes t <= 10 && evicted >= 1)

(* {1 Reducer membership laws} *)

let prop_bloom_no_false_negatives =
  QCheck.Test.make ~name:"Bloom reducers never report a false negative"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 300) (int_range (-1000) 10_000))
    (fun ints ->
      let codes =
        Array.of_list (List.map (fun i -> Dict.encode (V.Int i)) ints)
      in
      let t = Sip.bloom_of_codes codes in
      (not (Sip.is_exact t))
      && Array.for_all (fun c -> Sip.mem t c) codes
      && List.for_all (fun i -> Sip.mem_value t (V.Int i)) ints)

let prop_exact_reducers_are_exact =
  QCheck.Test.make
    ~name:"exact reducers have no false positives (and of_values dedups)"
    ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 100) (int_range 0 500))
        (int_range 501 2000))
    (fun (ints, outside) ->
      let t = Sip.of_values (Array.of_list (List.map (fun i -> V.Int i) ints)) in
      Sip.is_exact t
      && List.for_all (fun i -> Sip.mem_value t (V.Int i)) ints
      && not (Sip.mem_value t (V.Int outside)))

let test_of_column_matches_column () =
  let rel =
    R.of_values [ "X"; "Y" ]
      V.[ [ Int 1; Int 10 ]; [ Int 2; Int 20 ]; [ Int 1; Int 30 ] ]
  in
  let t = Sip.of_column rel "X" in
  check_bool "small column summarized exactly" true (Sip.is_exact t);
  check_bool "column values member" true
    (Sip.mem_value t (V.Int 1) && Sip.mem_value t (V.Int 2));
  check_bool "other column's values are not" true
    (not (Sip.mem_value t (V.Int 10)));
  let kept = Sip.filter rel ~pos:0 (Sip.of_values [| V.Int 1 |]) in
  check_int "filter keeps matching rows" 2 (R.cardinal kept)

(* {1 Step signatures} *)

let rule_exn text =
  match Qf_datalog.Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse_rule %s: %s" text e

let baskets_catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "baskets"
    (R.of_values [ "B"; "I" ]
       V.
         [
           [ Int 1; Int 10 ];
           [ Int 1; Int 20 ];
           [ Int 2; Int 10 ];
           [ Int 3; Int 30 ];
         ]);
  cat

let test_stepsig_alpha_equivalence () =
  let cat = baskets_catalog () in
  let filter = Filter.count_at_least 2 in
  let sig_of name text =
    Stepsig.of_step ~work:cat ~filter (Plan.step ~name [ rule_exn text ])
  in
  let s1 = sig_of "ok_1" "answer(B) :- baskets(B,$1)" in
  let s2 = sig_of "ok_2" "answer(C) :- baskets(C,$2)" in
  check_bool "signatures exist" true (s1 <> None && s2 <> None);
  check_bool "parameter and variable renamings agree" true (s1 = s2);
  let s3 = sig_of "ok_3" "answer(B) :- baskets($3,B)" in
  check_bool "argument positions matter" true (s1 <> s3);
  let other =
    Stepsig.of_step ~work:cat ~filter:(Filter.count_at_least 3)
      (Plan.step ~name:"ok_1" [ rule_exn "answer(B) :- baskets(B,$1)" ])
  in
  check_bool "thresholds are part of the signature" true (s1 <> other)

let test_stepsig_version_sensitivity () =
  let cat = baskets_catalog () in
  let filter = Filter.count_at_least 2 in
  let step = Plan.step ~name:"ok_1" [ rule_exn "answer(B) :- baskets(B,$1)" ] in
  let before = Stepsig.of_step ~work:cat ~filter step in
  (* A different relation object under the same name must change the
     dependency part of the signature — this is what invalidates memo
     entries on catalog mutation. *)
  Catalog.add cat "baskets"
    (R.of_values [ "B"; "I" ] V.[ [ Int 1; Int 10 ] ]);
  let after = Stepsig.of_step ~work:cat ~filter step in
  check_bool "dependency identity is embedded" true
    (before <> None && after <> None && before <> after);
  let missing =
    Stepsig.of_step ~work:cat ~filter
      (Plan.step ~name:"ok_1" [ rule_exn "answer(B) :- nowhere(B,$1)" ])
  in
  check_bool "unresolvable predicates are not memoized" true (missing = None)

(* {1 Memo-hit cascade across levelwise runs} *)

let test_memo_cascade_across_levels () =
  let rel, threshold = instance ~seed:5 gen_basket_instance in
  let cat = catalog_of rel in
  Catalog.set_memo_budget cat max_int;
  let run k =
    let flock, plan =
      Apriori_gen.levelwise_basket ~pred:"baskets" ~k ~support:threshold
    in
    let report = Plan_exec.run_with_report cat plan in
    Direct.run cat flock, report
  in
  let expected3, r3 = run 3 in
  check_bool "k=3 levelwise = direct" true
    (R.equal expected3 r3.Plan_exec.result);
  check_bool "first run computes (no memo hits)" true
    (List.for_all
       (fun (s : Plan_exec.step_report) -> not s.memo_hit)
       r3.Plan_exec.steps);
  (* Re-running k=3 must recompute nothing: every step is either a memo
     hit or a within-run symmetry alias of one. *)
  let _, r3' = run 3 in
  check_bool "second k=3 run recomputes nothing" true
    (List.for_all
       (fun (s : Plan_exec.step_report) -> s.tabulated_rows = 0)
       r3'.Plan_exec.steps);
  check_bool "second k=3 run has memo hits" true
    (List.exists
       (fun (s : Plan_exec.step_report) -> s.memo_hit)
       r3'.Plan_exec.steps);
  (* The cross-level cascade (the tentpole property): k=4's aux steps at
     sizes 1..2 match k=3's, and its 3-parameter step is α-equivalent to
     k=3's *final* query, so only the final 4-parameter step computes. *)
  let expected4, r4 = run 4 in
  check_bool "k=4 levelwise = direct" true
    (R.equal expected4 r4.Plan_exec.result);
  let aux, final =
    match List.rev r4.Plan_exec.steps with
    | f :: rest -> List.rev rest, f
    | [] -> Alcotest.fail "empty report"
  in
  check_bool "k=4 auxiliary steps all reuse k=3's work" true
    (List.for_all (fun (s : Plan_exec.step_report) -> s.tabulated_rows = 0) aux);
  check_bool "k=4's 3-set step memo-hits k=3's final query" true
    (List.exists
       (fun (s : Plan_exec.step_report) ->
         s.memo_hit && String.length s.step_name >= 2)
       aux);
  check_bool "only the k=4 final step computes" true
    (final.tabulated_rows > 0 || final.groups = 0);
  let hits, misses, _ = Catalog.memo_stats cat in
  check_bool "memo stats recorded hits and misses" true
    (hits > 0 && misses > 0)

(* {1 Differential matrix: layouts x pool sizes x memo budgets} *)

let with_pool_size size f =
  let saved = Pool.size (Pool.default ()) in
  Pool.set_default_size size;
  Fun.protect ~finally:(fun () -> Pool.set_default_size saved) f

let with_layout layout f =
  Layout.set_override (Some layout);
  Fun.protect ~finally:(fun () -> Layout.set_override None) f

let test_reduced_equals_unreduced_matrix () =
  List.iter
    (fun seed ->
      let rel, threshold = instance ~seed gen_basket_instance in
      List.iter
        (fun layout ->
          with_layout layout @@ fun () ->
          List.iter
            (fun pool_size ->
              with_pool_size pool_size @@ fun () ->
              let cat = catalog_of rel in
              let flock, plan =
                Apriori_gen.levelwise_basket ~pred:"baskets" ~k:3
                  ~support:threshold
              in
              let expected = Direct.run cat flock in
              let fail name =
                Alcotest.failf
                  "seed %d, layout %s, pool %d: %s disagrees with direct"
                  seed (Layout.to_string layout) pool_size name
              in
              (* Fully unreduced baseline. *)
              let base = Plan_exec.run ~options:no_shortcut cat plan in
              if not (R.equal expected base) then fail "unreduced";
              List.iter
                (fun budget ->
                  Catalog.set_memo_budget cat budget;
                  Catalog.memo_clear cat;
                  (* Cold then warm: the second run exercises memo hits
                     (or, at budget 0 / tiny budgets, eviction paths). *)
                  let cold = Plan_exec.run cat plan in
                  let warm = Plan_exec.run cat plan in
                  if not (R.equal expected cold) then
                    fail (Printf.sprintf "reduced cold (budget %d)" budget);
                  if not (R.equal expected warm) then
                    fail (Printf.sprintf "reduced warm (budget %d)" budget))
                [ 0; 2048; max_int ])
            [ 1; 2; 4 ])
        [ Layout.Row; Layout.Columnar ])
    [ 0; 11; 42 ]

(* {1 Counter determinism across pool sizes and layouts} *)

(* The memo and sip obs counters must not depend on how work was chunked
   across domains or which physical layout ran — [flockc explain
   --profile] output is a golden fixture, and the 4-domain CI pass
   replays it. *)
let test_counters_pool_and_layout_independent () =
  let rel, threshold = instance ~seed:3 gen_basket_instance in
  let counters layout pool_size =
    with_layout layout @@ fun () ->
    with_pool_size pool_size @@ fun () ->
    let was = Obs.enabled () in
    Obs.set_enabled true;
    Obs.reset ();
    Fun.protect ~finally:(fun () -> Obs.set_enabled was) @@ fun () ->
    let cat = catalog_of rel in
    Catalog.set_memo_budget cat max_int;
    let _, plan =
      Apriori_gen.levelwise_basket ~pred:"baskets" ~k:3 ~support:threshold
    in
    ignore (Plan_exec.run cat plan);
    ignore (Plan_exec.run cat plan);
    let report = Obs.report () in
    List.filter
      (fun (k, _) ->
        String.starts_with ~prefix:"sip." k
        || String.starts_with ~prefix:"memo." k
        || String.starts_with ~prefix:"index_cache.evict" k)
      report.Obs.counters
  in
  let reference = counters Layout.Columnar 1 in
  check_bool "sip/memo counters present" true (reference <> []);
  List.iter
    (fun (layout, pool_size) ->
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "layout %s pool %d" (Layout.to_string layout)
           pool_size)
        reference
        (counters layout pool_size))
    [
      Layout.Columnar, 2;
      Layout.Columnar, 4;
      Layout.Row, 1;
      Layout.Row, 4;
    ]

(* {1 Bounded index cache} *)

let test_index_cache_eviction () =
  let cat = Catalog.create () in
  let rel i =
    R.of_values [ "X"; "Y" ]
      (List.init 50 (fun j -> V.[ Int ((100 * i) + j); Int j ]))
  in
  List.iteri (fun i r -> Catalog.add cat (Printf.sprintf "r%d" i) r)
    (List.init 4 rel);
  (* A budget big enough for roughly one index: building four must
     evict. *)
  Catalog.set_index_budget cat 4000;
  List.iter
    (fun i ->
      ignore (Catalog.index_on cat (Catalog.find cat (Printf.sprintf "r%d" i))
          [ "X" ]))
    [ 0; 1; 2; 3 ];
  check_bool "evictions counted" true (Catalog.index_evictions cat > 0);
  (* Evicted indexes rebuild on demand and still answer correctly. *)
  let idx = Catalog.index_on cat (Catalog.find cat "r0") [ "X" ] in
  check_bool "rebuilt index still probes" true
    (Qf_relational.Index.lookup idx (Qf_relational.Tuple.of_list [ V.Int 0 ])
    <> []);
  (* Budget 0 disables caching: every request is a miss, nothing sticks. *)
  Catalog.set_index_budget cat 0;
  Catalog.reset_index_stats cat;
  ignore (Catalog.index_on cat (Catalog.find cat "r1") [ "X" ]);
  ignore (Catalog.index_on cat (Catalog.find cat "r1") [ "X" ]);
  let hits, misses = Catalog.index_stats cat in
  check_bool "budget 0 never hits" true (hits = 0 && misses = 2)

let suite =
  [
    Alcotest.test_case "LRU byte-budget policy" `Quick test_lru_policy;
    Alcotest.test_case "LRU oversized entries" `Quick test_lru_oversized_entry;
    QCheck_alcotest.to_alcotest prop_bloom_no_false_negatives;
    QCheck_alcotest.to_alcotest prop_exact_reducers_are_exact;
    Alcotest.test_case "of_column / filter semantics" `Quick
      test_of_column_matches_column;
    Alcotest.test_case "step signatures are α-equivalence classes" `Quick
      test_stepsig_alpha_equivalence;
    Alcotest.test_case "step signatures track relation versions" `Quick
      test_stepsig_version_sensitivity;
    Alcotest.test_case "memo cascade: k=3 run primes k=4" `Slow
      test_memo_cascade_across_levels;
    Alcotest.test_case
      "reduced = unreduced across layouts x pools x budgets" `Slow
      test_reduced_equals_unreduced_matrix;
    Alcotest.test_case "sip/memo counters are pool- and layout-independent"
      `Slow test_counters_pool_and_layout_independent;
    Alcotest.test_case "index cache evicts within its budget" `Quick
      test_index_cache_eviction;
  ]
