(* Workload generators: determinism, shape, and end-to-end mining checks. *)
open Qf_workload
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_rng_determinism () =
  let a = Rng.create 5 and b = Rng.create 5 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create 6 in
  check_bool "different seed, different stream" true (seq (Rng.create 5) <> seq c)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    check_bool "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_split_independent () =
  let r = Rng.create 3 in
  let s = Rng.split r in
  let a = List.init 10 (fun _ -> Rng.int r 100) in
  let b = List.init 10 (fun _ -> Rng.int s 100) in
  check_bool "split streams differ" true (a <> b)

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let r = Rng.create 17 in
  let counts = Array.make 101 0 in
  for _ = 1 to 20_000 do
    let k = Zipf.sample z r in
    check_bool "rank in range" true (k >= 1 && k <= 100);
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 1 much more frequent than rank 50" true
    (counts.(1) > 5 * counts.(50));
  (* Probabilities sum to 1. *)
  let total = ref 0. in
  for k = 1 to 100 do
    total := !total +. Zipf.prob z k
  done;
  Alcotest.(check (float 1e-9)) "prob mass" 1.0 !total

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~s:0. in
  Alcotest.(check (float 1e-9)) "uniform prob" 0.1 (Zipf.prob z 5)

let test_market_determinism_and_shape () =
  let config = { Market.default with n_baskets = 100; n_items = 50; seed = 8 } in
  let a = Market.relation config and b = Market.relation config in
  check_bool "deterministic" true (R.equal a b);
  check_bool "has rows" true (R.cardinal a > 100);
  let bids = R.column_values a "BID" in
  check_int "all baskets appear" 100 (List.length bids)

let test_market_planted_patterns_recovered () =
  let config =
    { Market.default with n_baskets = 1000; n_items = 100; seed = 19 }
  in
  let rel, patterns =
    Market.relation_with_patterns config ~n_patterns:2 ~pattern_size:3
      ~rate:0.1
  in
  check_int "two patterns" 2 (List.length patterns);
  let cat = Catalog.create () in
  Catalog.add cat "baskets" rel;
  (* Expected pattern support ~ 100 baskets; mine at 50 and check every
     within-pattern pair shows up. *)
  let flock = Qf_core.Apriori_gen.basket_flock ~pred:"baskets" ~k:2 ~support:50 in
  let pairs = Qf_core.Direct.run cat flock in
  List.iter
    (fun pattern ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a < b then
                check_bool
                  (Printf.sprintf "planted pair (%d,%d) found" a b)
                  true
                  (R.mem pairs (Qf_relational.Tuple.of_array [| V.Int a; V.Int b |])))
            pattern)
        pattern)
    patterns;
  (* The flock sequence recovers each full pattern as a frequent 3-set. *)
  let levels = Qf_core.Sequence.frequent_levels cat ~pred:"baskets" ~support:50 in
  let l3 =
    List.find_opt (fun (l : Qf_core.Sequence.level) -> l.k = 3) levels
  in
  match l3 with
  | None -> Alcotest.fail "no frequent 3-sets found"
  | Some l ->
    List.iter
      (fun pattern ->
        let tup =
          Qf_relational.Tuple.of_list (List.map (fun i -> V.Int i) pattern)
        in
        check_bool "planted triple found" true (R.mem l.itemsets tup))
      patterns

let test_market_importance () =
  let cat =
    Market.catalog_with_importance
      { Market.default with n_baskets = 50; seed = 4 }
  in
  let importance = Catalog.find cat "importance" in
  check_int "one weight per basket" 50 (R.cardinal importance)

let test_medical_planted_side_effects_found () =
  let config =
    { Medical.default with n_patients = 1500; planted_side_effects = 2; seed = 21 }
  in
  let { Medical.catalog; planted } = Medical.generate config in
  check_int "two planted pairs" 2 (List.length planted);
  let flock =
    Qf_core.Parse.flock_exn
      {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 20|}
  in
  let result = Qf_core.Direct.run catalog flock in
  List.iter
    (fun (m, s) ->
      check_bool
        (Printf.sprintf "planted (m=%d, s=%d) discovered" m s)
        true
        (R.mem result (Qf_relational.Tuple.of_array [| V.Int m; V.Int s |])))
    planted

let test_medical_one_disease_per_patient () =
  let { Medical.catalog; _ } = Medical.generate { Medical.default with seed = 2 } in
  let diagnoses = Catalog.find catalog "diagnoses" in
  let patients = R.column_values diagnoses "Patient" in
  check_int "one diagnosis per patient (paper assumption)"
    (List.length patients) (R.cardinal diagnoses)

let test_webdocs_id_spaces_disjoint () =
  let config = { Webdocs.default with n_docs = 50; n_anchors = 80; seed = 3 } in
  let cat = Webdocs.generate config in
  let doc_ids = R.column_values (Catalog.find cat "inTitle") "D" in
  let anchor_ids = R.column_values (Catalog.find cat "inAnchor") "A" in
  List.iter
    (fun a ->
      check_bool "anchor id not a doc id" false
        (List.exists (Qf_relational.Value.equal a) doc_ids))
    anchor_ids

let test_webdocs_link_arity () =
  let cat = Webdocs.generate { Webdocs.default with seed = 5 } in
  let link = Catalog.find cat "link" in
  check_int "link arity" 3 (Qf_relational.Schema.arity (R.schema link))

let test_graph_nodes_in_range () =
  let config = { Graph.default with n_nodes = 60; max_out_degree = 10; seed = 12 } in
  let cat = Graph.generate config in
  let arc = Catalog.find cat "arc" in
  R.iter
    (fun tup ->
      match Qf_relational.Tuple.get tup 0, Qf_relational.Tuple.get tup 1 with
      | V.Int x, V.Int y ->
        check_bool "in range" true (x >= 1 && x <= 60 && y >= 1 && y <= 60)
      | _ -> Alcotest.fail "non-integer node")
    arc

let test_path_flock_shape () =
  let flock = Graph.path_flock ~n:3 ~support:5 in
  let body = (List.hd flock.Qf_core.Flock.query).Qf_datalog.Ast.body in
  check_int "n+1 arc subgoals" 4 (List.length body);
  Alcotest.(check (list string)) "single param" [ "1" ] (Qf_core.Flock.params flock)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
    Alcotest.test_case "market determinism/shape" `Quick
      test_market_determinism_and_shape;
    Alcotest.test_case "market planted patterns recovered" `Quick
      test_market_planted_patterns_recovered;
    Alcotest.test_case "market importance" `Quick test_market_importance;
    Alcotest.test_case "medical planted side effects found" `Slow
      test_medical_planted_side_effects_found;
    Alcotest.test_case "medical one disease per patient" `Quick
      test_medical_one_disease_per_patient;
    Alcotest.test_case "webdocs id spaces disjoint" `Quick
      test_webdocs_id_spaces_disjoint;
    Alcotest.test_case "webdocs link arity" `Quick test_webdocs_link_arity;
    Alcotest.test_case "graph nodes in range" `Quick test_graph_nodes_in_range;
    Alcotest.test_case "path flock shape" `Quick test_path_flock_shape;
  ]
