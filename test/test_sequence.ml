(* Flock sequences for maximal frequent itemsets (paper footnote 2). *)
open Qf_core
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let catalog_of_baskets baskets =
  let cat = Catalog.create () in
  let rel = R.create (Qf_relational.Schema.of_list [ "BID"; "Item" ]) in
  List.iteri
    (fun bid items ->
      List.iter (fun i -> R.add rel (Qf_relational.Tuple.of_array [| V.Int (bid + 1); V.Int i |])) items)
    baskets;
  Catalog.add cat "baskets" rel;
  cat

(* Hand-checkable: {1,2,3} in 3 baskets, {4,5} in 2, singleton 6 in 2. *)
let cat () =
  catalog_of_baskets
    [
      [ 1; 2; 3 ];
      [ 1; 2; 3; 6 ];
      [ 1; 2; 3 ];
      [ 4; 5 ];
      [ 4; 5; 6 ];
    ]

let test_levels () =
  let levels = Sequence.frequent_levels (cat ()) ~pred:"baskets" ~support:2 in
  check_int "three levels" 3 (List.length levels);
  let by_k k = (List.find (fun (l : Sequence.level) -> l.k = k) levels).itemsets in
  check_int "L1: 1,2,3,4,5,6" 6 (R.cardinal (by_k 1));
  (* L2: all pairs of {1,2,3} (3), {4,5} (1) = 4. *)
  check_int "L2" 4 (R.cardinal (by_k 2));
  check_int "L3" 1 (R.cardinal (by_k 3));
  check_bool "triple present" true (R.mem (by_k 3) (Qf_relational.Tuple.of_array [| V.Int 1; V.Int 2; V.Int 3 |]))

let test_maximal () =
  let levels = Sequence.frequent_levels (cat ()) ~pred:"baskets" ~support:2 in
  let maximal = Sequence.maximal levels in
  (* Maximal: {1,2,3}, {4,5}, {6}. *)
  check_int "three maximal sets" 3 (List.length maximal);
  let mem k tup = List.exists (fun (k', t) -> k = k' && Qf_relational.Tuple.equal t tup) maximal in
  check_bool "{1,2,3}" true (mem 3 (Qf_relational.Tuple.of_array [| V.Int 1; V.Int 2; V.Int 3 |]));
  check_bool "{4,5}" true (mem 2 (Qf_relational.Tuple.of_array [| V.Int 4; V.Int 5 |]));
  check_bool "{6}" true (mem 1 (Qf_relational.Tuple.of_array [| V.Int 6 |]));
  check_bool "{1,2} not maximal" false (mem 2 (Qf_relational.Tuple.of_array [| V.Int 1; V.Int 2 |]))

let test_empty_when_support_too_high () =
  check_int "no levels" 0
    (List.length (Sequence.frequent_levels (cat ()) ~pred:"baskets" ~support:10))

let test_max_k_caps () =
  let levels =
    Sequence.frequent_levels ~max_k:1 (cat ()) ~pred:"baskets" ~support:2
  in
  check_int "capped at one level" 1 (List.length levels)

(* Cross-check every level against the dedicated miner on generated data. *)
let test_levels_match_classic () =
  let cat =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 300; n_items = 60; seed = 23 }
  in
  let support = 15 in
  let levels = Sequence.frequent_levels cat ~pred:"baskets" ~support in
  let db =
    Qf_apriori.Apriori.db_of_relation (Catalog.find cat "baskets")
  in
  let classic = Qf_apriori.Apriori.mine db ~support ~max_size:9 in
  check_int "same number of levels" (List.length classic) (List.length levels);
  List.iteri
    (fun i (level : Sequence.level) ->
      let classic_level = List.nth classic i in
      check_int
        (Printf.sprintf "level %d size" level.k)
        (List.length classic_level)
        (R.cardinal level.itemsets);
      List.iter
        (fun (f : Qf_apriori.Apriori.frequent) ->
          let tup =
            Qf_relational.Tuple.of_list
              (List.map (fun x -> V.Int x) (Qf_apriori.Itemset.to_list f.itemset))
          in
          check_bool "itemset present" true (R.mem level.itemsets tup))
        classic_level)
    levels

(* Maximality, brute force: a maximal itemset has no frequent superset at
   any higher level (not just one level up — but frequency is downward
   closed, so one level up suffices; verify that reasoning holds on data). *)
let test_maximal_brute_force () =
  let cat =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 200; n_items = 40; seed = 29 }
  in
  let support = 12 in
  let levels = Sequence.frequent_levels cat ~pred:"baskets" ~support in
  let maximal = Sequence.maximal levels in
  let all_frequent =
    List.concat_map
      (fun (l : Sequence.level) ->
        List.map (fun t -> l.k, t) (R.to_sorted_list l.itemsets))
      levels
  in
  let tuple_subset a b =
    Seq.for_all
      (fun v -> Seq.exists (V.equal v) (Qf_relational.Tuple.to_seq b))
      (Qf_relational.Tuple.to_seq a)
  in
  List.iter
    (fun (k, tup) ->
      let has_proper_superset =
        List.exists
          (fun (k', sup) -> k' > k && tuple_subset tup sup)
          all_frequent
      in
      check_bool "no frequent superset at any level" false has_proper_superset)
    maximal;
  (* And every frequent itemset without a superset is reported maximal. *)
  List.iter
    (fun (k, tup) ->
      let has_superset =
        List.exists
          (fun (k', sup) -> k' > k && tuple_subset tup sup)
          all_frequent
      in
      if not has_superset then
        check_bool "reported as maximal" true
          (List.exists
             (fun (k', t) -> k = k' && Qf_relational.Tuple.equal t tup)
             maximal))
    all_frequent

let suite =
  [
    Alcotest.test_case "frequent levels" `Quick test_levels;
    Alcotest.test_case "maximal itemsets" `Quick test_maximal;
    Alcotest.test_case "empty at high support" `Quick
      test_empty_when_support_too_high;
    Alcotest.test_case "max_k caps the sequence" `Quick test_max_k_caps;
    Alcotest.test_case "levels match the classic miner" `Quick
      test_levels_match_classic;
    Alcotest.test_case "maximality, brute force" `Quick test_maximal_brute_force;
  ]
