(* The observability subsystem and the metric invariants it must uphold:

   - disabled (the default) means nothing is recorded;
   - spans form a well-nested forest (parents started first and enclose
     their children in time);
   - every FILTER-step span satisfies rows_out <= groups <= rows_in and
     carries a pruning ratio in [0,1];
   - the deterministic metrics (span cardinalities, a-priori and
     index-cache counters) are identical whatever the Domain pool size —
     only the "pool." chunk metrics may vary;
   - [Explain.profile] pairs observed numbers with the cost model's
     estimates and agrees with the executor's own report. *)

module Obs = Qf_obs.Obs
module R = Qf_relational.Relation
module Pool = Qf_exec_pool.Pool
open Qf_core
open Qf_testgen.Testgen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [f] with observability on and a clean collector; always restores
   the previous enabled state and clears the collector afterwards so no
   other suite sees stale state. *)
let with_obs f =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled was)
    f

let attr name (s : Obs.span) = List.assoc_opt name s.Obs.attrs

(* {1 The collector itself} *)

let test_disabled_records_nothing () =
  Obs.set_enabled false;
  Obs.reset ();
  let v = Obs.with_span "ghost" (fun () -> Obs.count "ghost.counter" 1; 42) in
  check_int "the thunk still runs" 42 v;
  let r = Obs.report () in
  check_int "no spans" 0 (List.length r.Obs.spans);
  check_int "no counters" 0 (List.length r.Obs.counters)

let test_span_nesting_and_metrics () =
  let r =
    with_obs (fun () ->
        Obs.with_span "outer" (fun () ->
            Obs.set_attr "k" (Obs.Int 1);
            Obs.with_span "inner" (fun () -> Obs.count "c" 2);
            Obs.with_span "inner" (fun () -> Obs.count "c" 3));
        Obs.report ())
  in
  (match r.Obs.spans with
  | [ outer; inner1; inner2 ] ->
    Alcotest.(check string) "outer first (start order)" "outer" outer.Obs.name;
    check_bool "outer is a root" true (outer.Obs.parent = None);
    check_bool "inners point at outer" true
      (inner1.Obs.parent = Some outer.Obs.id
      && inner2.Obs.parent = Some outer.Obs.id);
    check_bool "outer kept its attribute" true
      (attr "k" outer = Some (Obs.Int 1));
    Alcotest.(check string) "inner name" "inner" inner1.Obs.name
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans));
  check_bool "counter accumulated" true (List.assoc "c" r.Obs.counters = 2 + 3)

let test_report_renderers_are_stable () =
  let render () =
    with_obs (fun () ->
        Obs.with_span "a" (fun () ->
            Obs.set_attr "rows" (Obs.Int 7);
            Obs.with_span "b" (fun () -> ()));
        Obs.count "z.counter" 1;
        Obs.count "a.counter" 2;
        let r = Obs.report () in
        Obs.render_text ~redact_timings:true r,
        Obs.render_json ~redact_timings:true r)
  in
  let t1, j1 = render () and t2, j2 = render () in
  Alcotest.(check string) "redacted text is byte-stable" t1 t2;
  Alcotest.(check string) "redacted JSON is byte-stable" j1 j2;
  (* Counters render sorted by name: a.counter before z.counter. *)
  let find sub s =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length s then None
      else if String.sub s i n = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let before sub1 sub2 s =
    match find sub1 s, find sub2 s with
    | Some i, Some j -> i < j
    | _ -> false
  in
  check_bool "counters sorted by name" true
    (before "a.counter" "z.counter" t1 && before "a.counter" "z.counter" j1)

(* {1 Span-tree well-nestedness on real executions} *)

let spans_of_execution seed =
  with_obs (fun () ->
      let rel, threshold = instance ~seed gen_basket_instance in
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      ignore (Plan_exec.run cat (Optimizer.optimize cat flock));
      ignore (Direct.run cat flock);
      (match Dynamic.run cat flock with Ok _ | Error _ -> ());
      (Obs.report ()).Obs.spans)

let test_span_tree_well_nested () =
  List.iter
    (fun seed ->
      let spans = spans_of_execution seed in
      check_bool "some spans recorded" true (spans <> []);
      let by_id = Hashtbl.create 64 in
      List.iter (fun (s : Obs.span) -> Hashtbl.replace by_id s.Obs.id s) spans;
      let eps = 1e-3 in
      List.iter
        (fun (s : Obs.span) ->
          check_bool "span has a stop time" true (s.Obs.stop_s >= s.Obs.start_s);
          match s.Obs.parent with
          | None -> ()
          | Some pid -> (
            match Hashtbl.find_opt by_id pid with
            | None ->
              Alcotest.failf "seed %d: span %d has unknown parent %d" seed
                s.Obs.id pid
            | Some p ->
              check_bool "parent started first" true (p.Obs.id < s.Obs.id);
              check_bool "parent encloses child start" true
                (p.Obs.start_s -. eps <= s.Obs.start_s);
              check_bool "parent encloses child stop" true
                (s.Obs.stop_s <= p.Obs.stop_s +. eps)))
        spans)
    [ 1; 2; 3; 11; 42 ]

(* {1 FILTER-step metric invariants (QCheck)} *)

let filter_step_invariants (s : Obs.span) =
  match attr "reused_from" s with
  | Some _ ->
    (* Symmetric reuse: no tabulation happened, only an aliased output. *)
    attr "rows_out" s <> None
  | None -> (
    match
      attr "rows_in" s, attr "groups" s, attr "rows_out" s,
      attr "pruning_ratio" s
    with
    | Some (Obs.Int ri), Some (Obs.Int g), Some (Obs.Int ro),
      Some (Obs.Float pr) ->
      0 <= ro && ro <= g && g <= ri && pr >= 0. && pr <= 1.
    | _ -> false)

let prop_filter_step_metrics =
  QCheck.Test.make
    ~name:"filter.step spans: rows_out <= groups <= rows_in, ratio in [0,1]"
    ~count:60 arb_basket_instance (fun (rel, threshold) ->
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      let spans =
        with_obs (fun () ->
            (match Apriori_gen.singleton_plan flock with
            | Ok p -> ignore (Plan_exec.run cat p)
            | Error e -> failwith e);
            (Obs.report ()).Obs.spans)
      in
      let steps =
        List.filter (fun (s : Obs.span) -> s.Obs.name = "filter.step") spans
      in
      steps <> [] && List.for_all filter_step_invariants steps)

let prop_join_span_metrics =
  QCheck.Test.make
    ~name:"join spans: rows_out <= probe_rows * build_rows" ~count:60
    arb_basket_instance (fun (rel, threshold) ->
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      let spans =
        with_obs (fun () ->
            ignore (Plan_exec.run cat (Optimizer.optimize cat flock));
            (Obs.report ()).Obs.spans)
      in
      List.for_all
        (fun (s : Obs.span) ->
          if not (String.length s.Obs.name >= 5 && String.sub s.Obs.name 0 5 = "join.")
          then true
          else
            match
              attr "probe_rows" s, attr "build_rows" s, attr "rows_out" s
            with
            | Some (Obs.Int a), Some (Obs.Int b), Some (Obs.Int out) ->
              if s.Obs.name = "join.equi" then out <= a * b else out <= a
            | _ -> false)
        spans)

(* {1 Pool-size independence of the deterministic metrics} *)

(* The signature of an execution: every span's (name, attributes) plus all
   counters except the machine-dependent "pool." chunk metrics.  Gauges
   are excluded wholesale: the only ones today are chunk timings. *)
let deterministic_signature seed =
  with_obs (fun () ->
      let rel, threshold = instance ~seed gen_basket_instance in
      let cat = catalog_of rel in
      let flock = pair_flock threshold in
      ignore (Plan_exec.run cat (Optimizer.optimize cat flock));
      ignore (Direct.run cat flock);
      let r = Obs.report () in
      let spans =
        List.map (fun (s : Obs.span) -> s.Obs.name, s.Obs.attrs) r.Obs.spans
      in
      let counters =
        List.filter
          (fun (k, _) -> not (String.starts_with ~prefix:"pool." k))
          r.Obs.counters
      in
      spans, counters)

let with_pool_size size f =
  let saved = Pool.size (Pool.default ()) in
  Pool.set_default_size size;
  Fun.protect ~finally:(fun () -> Pool.set_default_size saved) f

let with_par_threshold value f =
  let saved = Sys.getenv_opt "QF_PAR_THRESHOLD" in
  Unix.putenv "QF_PAR_THRESHOLD" value;
  Fun.protect
    ~finally:(fun () ->
      (* env_int ignores the empty string, restoring the default. *)
      Unix.putenv "QF_PAR_THRESHOLD" (Option.value saved ~default:""))
    f

let test_metrics_pool_size_independent () =
  with_par_threshold "16" @@ fun () ->
  List.iter
    (fun seed ->
      let reference = with_pool_size 1 (fun () -> deterministic_signature seed) in
      List.iter
        (fun size ->
          let got = with_pool_size size (fun () -> deterministic_signature seed) in
          check_bool
            (Printf.sprintf "seed %d: signature at pool size %d = size 1" seed
               size)
            true
            (got = reference))
        [ 2; 4 ])
    [ 0; 5; 9; 23 ]

(* {1 Explain.profile consistency} *)

let test_profile_matches_execution () =
  let rel, threshold = instance ~seed:3 gen_basket_instance in
  let cat = catalog_of rel in
  let flock = pair_flock threshold in
  let plan = Optimizer.optimize cat flock in
  let p = Explain.profile cat plan in
  check_bool "profiling restores the disabled state" true (not (Obs.enabled ()));
  check_int "one profile row per plan step"
    (List.length (Plan.all_steps plan))
    (List.length p.Explain.steps);
  check_int "result rows = direct evaluation"
    (R.cardinal (Direct.run cat flock))
    p.Explain.result_rows;
  List.iter
    (fun (s : Explain.step_profile) ->
      check_bool
        (Printf.sprintf "step %s: rows_out <= groups <= rows_in" s.Explain.name)
        true
        (s.Explain.rows_out <= s.Explain.groups
        && (s.Explain.reused_from <> None
           || s.Explain.groups <= s.Explain.rows_in));
      check_bool
        (Printf.sprintf "step %s: estimates present on a stored catalog"
           s.Explain.name)
        true
        (s.Explain.est_rows <> None && s.Explain.est_groups <> None))
    p.Explain.steps;
  check_bool "no pool counters leak into the profile" true
    (List.for_all
       (fun (k, _) -> not (String.starts_with ~prefix:"pool." k))
       p.Explain.counters);
  (* Deterministic renderers: two profiled runs of the same plan render
     identically once timings are redacted.  A fresh catalog keeps the
     index-cache hit/miss counters comparable (the first run warms the
     original catalog's cache). *)
  let p2 = Explain.profile (catalog_of rel) plan in
  Alcotest.(check string)
    "redacted text profile is stable"
    (Explain.profile_text ~redact_timings:true p)
    (Explain.profile_text ~redact_timings:true p2);
  Alcotest.(check string)
    "redacted JSON profile is stable"
    (Explain.profile_json ~redact_timings:true p)
    (Explain.profile_json ~redact_timings:true p2)

let test_symmetric_reuse_visible_in_spans () =
  (* A two-parameter basket flock whose singleton plan has ok_1 and ok_2:
     by symmetry the second is aliased, and the span says so. *)
  let rel, _ = instance ~seed:12 gen_basket_instance in
  let cat = catalog_of rel in
  let flock = pair_flock 1 in
  match Apriori_gen.singleton_plan flock with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    let spans =
      with_obs (fun () ->
          ignore (Plan_exec.run cat plan);
          (Obs.report ()).Obs.spans)
    in
    let reused =
      List.filter
        (fun (s : Obs.span) ->
          s.Obs.name = "filter.step" && attr "reused_from" s <> None)
        spans
    in
    check_bool "at least one step reused by symmetry" true (reused <> [])

let suite =
  [
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "span nesting and metric accumulation" `Quick
      test_span_nesting_and_metrics;
    Alcotest.test_case "redacted renderers are byte-stable" `Quick
      test_report_renderers_are_stable;
    Alcotest.test_case "span trees are well-nested on real runs" `Quick
      test_span_tree_well_nested;
    Alcotest.test_case "deterministic metrics ignore the pool size" `Slow
      test_metrics_pool_size_independent;
    Alcotest.test_case "Explain.profile agrees with execution" `Quick
      test_profile_matches_execution;
    Alcotest.test_case "symmetric reuse is visible in spans" `Quick
      test_symmetric_reuse_visible_in_spans;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_filter_step_metrics; prop_join_span_metrics ]
