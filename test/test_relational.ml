(* Tuples, schemas, relations, indexes: the storage layer. *)
open Qf_relational

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let t ints = Tuple.of_list (List.map (fun i -> Value.Int i) ints)

let test_tuple_compare () =
  check_int "equal" 0 (Tuple.compare (t [ 1; 2 ]) (t [ 1; 2 ]));
  check_bool "lex order" true (Tuple.compare (t [ 1; 2 ]) (t [ 1; 3 ]) < 0);
  check_bool "shorter first" true (Tuple.compare (t [ 1 ]) (t [ 1; 0 ]) < 0);
  check_bool "equal means hash equal" true
    (Tuple.hash (t [ 4; 5 ]) = Tuple.hash (t [ 4; 5 ]))

let test_tuple_project_append () =
  Alcotest.(check bool)
    "project reorders" true
    (Tuple.equal (Tuple.project [| 1; 0 |] (t [ 7; 8 ])) (t [ 8; 7 ]));
  Alcotest.(check bool)
    "append" true
    (Tuple.equal (Tuple.append (t [ 1 ]) (t [ 2; 3 ])) (t [ 1; 2; 3 ]));
  Alcotest.check_raises "project out of range"
    (Invalid_argument "index out of bounds")
    (fun () -> ignore (Tuple.project [| 5 |] (t [ 1 ])))

let test_schema_basics () =
  let s = Schema.of_list [ "A"; "B"; "C" ] in
  check_int "arity" 3 (Schema.arity s);
  check_int "position" 1 (Schema.position s "B");
  check_bool "mem" true (Schema.mem s "C");
  check_bool "not mem" false (Schema.mem s "Z");
  Alcotest.(check (option int)) "position_opt none" None (Schema.position_opt s "Z");
  check_bool "restrict keeps order given" true
    (Schema.equal (Schema.restrict s [ "C"; "A" ]) (Schema.of_list [ "C"; "A" ]))

let test_schema_duplicates () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.of_list: duplicate column \"A\"") (fun () ->
      ignore (Schema.of_list [ "A"; "A" ]));
  Alcotest.check_raises "append collision"
    (Invalid_argument "Schema.of_list: duplicate column \"B\"") (fun () ->
      ignore (Schema.append (Schema.of_list [ "A"; "B" ]) (Schema.of_list [ "B" ])))

let test_relation_set_semantics () =
  let r = Relation.create (Schema.of_list [ "X" ]) in
  Relation.add r (t [ 1 ]);
  Relation.add r (t [ 1 ]);
  Relation.add r (t [ 2 ]);
  check_int "duplicates ignored" 2 (Relation.cardinal r);
  check_bool "mem" true (Relation.mem r (t [ 1 ]));
  check_bool "not mem" false (Relation.mem r (t [ 3 ]))

let test_relation_arity_check () =
  let r = Relation.create (Schema.of_list [ "X"; "Y" ]) in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.add: arity mismatch (1 vs 2)") (fun () ->
      Relation.add r (t [ 1 ]))

let test_relation_project () =
  let r =
    Relation.of_values [ "X"; "Y" ]
      Value.[ [ Int 1; Int 10 ]; [ Int 2; Int 10 ]; [ Int 1; Int 20 ] ]
  in
  let p = Relation.project r [ "Y" ] in
  check_int "project dedups" 2 (Relation.cardinal p);
  check_bool "projected schema" true
    (Schema.equal (Relation.schema p) (Schema.of_list [ "Y" ]))

let test_relation_select_union_diff () =
  let r = Relation.of_values [ "X" ] Value.[ [ Int 1 ]; [ Int 2 ]; [ Int 3 ] ] in
  let s = Relation.of_values [ "X" ] Value.[ [ Int 2 ]; [ Int 4 ] ] in
  let even =
    Relation.select r (fun tup ->
        match Tuple.get tup 0 with Value.Int i -> i mod 2 = 0 | _ -> false)
  in
  check_int "select" 1 (Relation.cardinal even);
  check_int "union dedups" 4 (Relation.cardinal (Relation.union r s));
  check_int "diff" 2 (Relation.cardinal (Relation.diff r s));
  check_bool "diff keeps 1,3" true
    (Relation.equal (Relation.diff r s)
       (Relation.of_values [ "X" ] Value.[ [ Int 1 ]; [ Int 3 ] ]))

let test_relation_column_values () =
  let r =
    Relation.of_values [ "X"; "Y" ]
      Value.[ [ Int 1; Str "a" ]; [ Int 2; Str "a" ]; [ Int 1; Str "b" ] ]
  in
  check_int "distinct X" 2 (List.length (Relation.column_values r "X"));
  check_int "distinct Y" 2 (List.length (Relation.column_values r "Y"))

let test_relation_equal () =
  let a = Relation.of_values [ "X" ] Value.[ [ Int 1 ]; [ Int 2 ] ] in
  let b = Relation.of_values [ "Z" ] Value.[ [ Int 2 ]; [ Int 1 ] ] in
  check_bool "order-insensitive, schema-name-insensitive" true
    (Relation.equal a b);
  Relation.add b (t [ 3 ]);
  check_bool "cardinality differs" false (Relation.equal a b)

let test_index () =
  let r =
    Relation.of_values [ "X"; "Y" ]
      Value.[ [ Int 1; Int 10 ]; [ Int 1; Int 20 ]; [ Int 2; Int 30 ] ]
  in
  let idx = Index.build_on r [ "X" ] in
  check_int "key count" 2 (Index.key_count idx);
  check_int "group size" 2 (List.length (Index.lookup idx (t [ 1 ])));
  check_int "missing key" 0 (List.length (Index.lookup idx (t [ 9 ])));
  (* Empty column list: everything shares the empty key (cross product). *)
  let all = Index.build_on r [] in
  check_int "empty key groups all" 3
    (List.length (Index.lookup all (Tuple.of_array [||])))

let test_statistics () =
  let r =
    Relation.of_values [ "X"; "Y" ]
      Value.[ [ Int 1; Int 10 ]; [ Int 1; Int 20 ]; [ Int 2; Int 30 ] ]
  in
  let s = Statistics.of_relation r in
  check_int "cardinality" 3 (Statistics.cardinality s);
  check_int "distinct X" 2 (Statistics.distinct s "X");
  check_int "distinct Y" 3 (Statistics.distinct s "Y");
  Alcotest.(check (float 0.001)) "tuples per X" 1.5 (Statistics.tuples_per_value s "X");
  Alcotest.(check (float 0.001))
    "join estimate |R join R on X|"
    4.5
    (Statistics.estimate_join s s [ "X", "X" ])

let test_statistics_frequencies () =
  let r =
    Relation.of_values [ "Item" ]
      Value.[ [ Int 1 ]; [ Int 2 ]; [ Int 3 ] ]
  in
  (* Duplicate rows collapse (set semantics), so build frequencies via a
     two-column relation where the first column varies. *)
  let r2 =
    Relation.of_values [ "BID"; "Item" ]
      Value.[
        [ Int 1; Int 7 ]; [ Int 2; Int 7 ]; [ Int 3; Int 7 ];
        [ Int 4; Int 8 ]; [ Int 5; Int 8 ];
        [ Int 6; Int 9 ];
      ]
  in
  let s = Statistics.of_relation r2 in
  Alcotest.(check (array int))
    "descending frequencies" [| 3; 2; 1 |]
    (Statistics.frequencies s "Item");
  check_int "count_at_least 1" 3 (Statistics.count_at_least s "Item" 1);
  check_int "count_at_least 2" 2 (Statistics.count_at_least s "Item" 2);
  check_int "count_at_least 3" 1 (Statistics.count_at_least s "Item" 3);
  check_int "count_at_least 4" 0 (Statistics.count_at_least s "Item" 4);
  let s1 = Statistics.of_relation r in
  check_int "all singletons" 3 (Statistics.count_at_least s1 "Item" 1);
  check_int "none at 2" 0 (Statistics.count_at_least s1 "Item" 2)

let suite =
  [
    Alcotest.test_case "statistics frequencies" `Quick
      test_statistics_frequencies;
    Alcotest.test_case "tuple compare/hash" `Quick test_tuple_compare;
    Alcotest.test_case "tuple project/append" `Quick test_tuple_project_append;
    Alcotest.test_case "schema basics" `Quick test_schema_basics;
    Alcotest.test_case "schema duplicate detection" `Quick test_schema_duplicates;
    Alcotest.test_case "relation set semantics" `Quick test_relation_set_semantics;
    Alcotest.test_case "relation arity check" `Quick test_relation_arity_check;
    Alcotest.test_case "relation project dedups" `Quick test_relation_project;
    Alcotest.test_case "relation select/union/diff" `Quick
      test_relation_select_union_diff;
    Alcotest.test_case "relation column_values" `Quick test_relation_column_values;
    Alcotest.test_case "relation equal" `Quick test_relation_equal;
    Alcotest.test_case "hash index" `Quick test_index;
    Alcotest.test_case "statistics" `Quick test_statistics;
  ]
