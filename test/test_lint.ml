(* The static analyzer (qf_analysis): lint passes, safety edge cases, the
   QCheck agreement property between [Safety.is_safe] and the analyzer's
   Sec. 3.3 pass, and the independent Sec. 4.2 plan-legality verifier over
   every plan the optimizer and the levelwise generator produce. *)
open Qf_core
module Ast = Qf_datalog.Ast
module Safety = Qf_datalog.Safety
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog
module Diag = Qf_analysis.Diagnostic
module Lint = Qf_analysis.Lint
module Plan_check = Qf_analysis.Plan_check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rule text =
  match Qf_datalog.Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" text e

let codes diags = Diag.distinct_codes diags

let assert_code src expected diags =
  if not (List.mem expected (codes diags)) then
    Alcotest.failf "expected %s in lint of %S, got [%s]" expected src
      (String.concat "; " (codes diags))

let lint ?catalog src =
  let diags = Lint.lint ?catalog src in
  (* Every diagnostic from a parsed program must carry a real span. *)
  List.iter
    (fun (d : Diag.t) ->
      if Ast.is_no_span d.Diag.span then
        Alcotest.failf "diagnostic %s lacks a source span in %S"
          (Diag.code_to_string d.Diag.code)
          src)
    diags;
  diags

let flock_src body filter =
  Printf.sprintf "QUERY:\n%s\n\nFILTER:\n%s\n" body filter

(* {1 One program per pass: the right code at the right place} *)

let test_pass_codes () =
  let cases =
    [
      ( flock_src "answer(X,Y) :- baskets(X,$1)" "COUNT(answer.X) >= 2",
        "QF010" );
      ( flock_src "answer(X) :- baskets(X,$1) AND NOT baskets(Z,$1)"
          "COUNT(answer.X) >= 2",
        "QF011" );
      ( flock_src "answer(X) :- baskets(X,$1) AND W < 10"
          "COUNT(answer.X) >= 2",
        "QF012" );
      ( flock_src "answer(X,$1) :- baskets(X,$1)" "COUNT(answer.X) >= 2",
        "QF013" );
      flock_src "answer(X) :- baskets(X,I)" "COUNT(answer.X) >= 2", "QF014";
      ( flock_src
          "answer(B) :- baskets(B,$1)\nanswer(B,I) :- baskets(B,I) AND \
           baskets(B,$1)"
          "COUNT(answer.B) >= 2",
        "QF002" );
      ( flock_src "answer(B) :- baskets(B,$1) AND baskets(B,$1,$2)"
          "COUNT(answer.B) >= 2",
        "QF021" );
      ( flock_src "answer(B) :- baskets(B,$1) AND baskets(B2,$1)"
          "COUNT(answer.B) >= 2",
        "QF030" );
      ( flock_src "answer(B) :- baskets(B,$1) AND 3 < 2"
          "COUNT(answer.B) >= 2",
        "QF040" );
      ( flock_src "answer(B) :- baskets(B,$1) AND 1 < 2"
          "COUNT(answer.B) >= 2",
        "QF041" );
      ( flock_src "answer(B) :- baskets(B,$1) AND $1 < 5 AND $1 > 9"
          "COUNT(answer.B) >= 2",
        "QF042" );
      ( flock_src "answer(B) :- baskets(B,$1) AND exhibits(B,S)"
          "COUNT(answer.B) >= 2",
        "QF050" );
      ( flock_src "answer(B) :- baskets(B,$1) AND exhibits(P,P)"
          "COUNT(answer.B) >= 2",
        "QF051" );
      flock_src "answer(B) :- baskets(B,$1)" "SUM(answer.Z) >= 3", "QF060";
      flock_src "answer(B,I) :- baskets(B,I) AND baskets(B,$1)"
        "MIN(answer.I) >= 3", "QF061";
      ( "VIEWS:\nbig(B) :- baskets(B,$1)\n\nQUERY:\nanswer(B) :- big(B) AND \
         baskets(B,$1)\n\nFILTER:\nCOUNT(answer.B) >= 3\n",
        "QF063" );
      "QUERY:\nanswer(B :- baskets(B,$1)\n\nFILTER:\nCOUNT(answer.B) >= 3\n",
      "QF001";
    ]
  in
  List.iter (fun (src, code) -> assert_code src code (lint src)) cases

let test_catalog_codes () =
  let cat = Catalog.create () in
  Catalog.add cat "baskets"
    (R.of_values [ "BID"; "Item" ] V.[ [ Int 1; Int 7 ] ]);
  let src =
    flock_src "answer(B) :- baskets(B,$1,$2) AND shelf(B)"
      "COUNT(answer.B) >= 3"
  in
  let diags = lint ~catalog:cat src in
  assert_code src "QF020" diags;
  assert_code src "QF022" diags

let test_clean_examples () =
  List.iter
    (fun name ->
      let file =
        (* dune runtest runs from the test build dir; `dune exec` from the
           project root. *)
        if Sys.file_exists ("../data/" ^ name) then "../data/" ^ name
        else "data/" ^ name
      in
      let src =
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match lint src with
      | [] -> ()
      | ds ->
        Alcotest.failf "%s should lint clean but got [%s]" file
          (String.concat "; " (codes ds)))
    [
      "pairs.flock";
      "side_effects.flock";
      "multi_disease.flock";
      "descendants.flock";
    ]

let test_distinct_code_coverage () =
  (* The analyzer must be able to produce a healthy spread of distinct
     diagnostics: run it over a small corpus and count codes. *)
  let corpus =
    [
      flock_src
        "answer(X,Y) :- baskets(X,$1) AND NOT baskets(Z,$1) AND W < 10"
        "COUNT(answer.X) >= 2";
      flock_src "answer(X,$1) :- baskets(X,I)" "COUNT(answer.X) >= 2";
      flock_src
        "answer(B) :- baskets(B,$1) AND baskets(B,$1,$2) AND 3 < 2 AND $1 \
         < 5 AND $1 > 9"
        "COUNT(answer.B) >= 2";
      flock_src "answer(B) :- baskets(B,$1) AND exhibits(P,S)"
        "SUM(answer.Z) >= 3";
      flock_src "answer(B,I) :- baskets(B,I) AND baskets(B,$1) AND \
                 baskets(B2,$1)"
        "MIN(answer.I) >= 3";
    ]
  in
  let all = List.concat_map lint corpus in
  let n = List.length (codes all) in
  if n < 10 then
    Alcotest.failf "only %d distinct codes over the corpus: [%s]" n
      (String.concat "; " (codes all))

(* {1 Safety edge cases (Sec. 3.3)} *)

let test_safety_edges () =
  let agree name r expect_safe =
    check_bool (name ^ ": Safety.is_safe") expect_safe (Safety.is_safe r);
    check_bool
      (name ^ ": analyzer agrees")
      expect_safe
      (Result.is_ok (Lint.rule_is_qf_safe r))
  in
  (* A negated subgoal whose arguments are all parameters: parameters are
     treated like variables for safety (Sec. 3.3 treats a flock as safe
     when every instantiation is), so they too need a positive binding. *)
  agree "negated all-params unbound"
    (rule "answer(X) :- p(X) AND NOT q($1,$2)")
    false;
  agree "negated all-params bound"
    (rule "answer(X) :- p(X,$1,$2) AND NOT q($1,$2)")
    true;
  (* A comparison between two constants binds no variable. *)
  agree "const-const cmp" (rule "answer(X) :- p(X) AND 1 < 2") true;
  (* A head of constants only: trivially bound. *)
  agree "constant-only head" (rule "answer(3) :- p(X)") true;
  (* A parameter compared with itself: safe (no variable involved),
     however unsatisfiable -- that is QF040's business, not safety's. *)
  let self = rule "answer(X) :- p(X,$1) AND $1 < $1" in
  agree "param self-compare" self true;
  assert_code "param self-compare" "QF040"
    (Lint.lint
       (flock_src "answer(X) :- baskets(X,$1) AND $1 < $1"
          "COUNT(answer.X) >= 2"));
  (* And the three violations, for completeness. *)
  agree "unbound head var" (rule "answer(X,Y) :- p(X)") false;
  agree "unbound negated var" (rule "answer(X) :- p(X) AND NOT q(Z)") false;
  agree "unbound cmp var" (rule "answer(X) :- p(X) AND W < 3") false

(* {1 QCheck: the analyzer's safety pass = Safety.is_safe} *)

let gen_term =
  QCheck.Gen.(
    frequency
      [
        3, map (fun i -> Ast.Var (Printf.sprintf "X%d" i)) (int_range 0 3);
        2, map (fun i -> Ast.Param (Printf.sprintf "p%d" i)) (int_range 0 2);
        1, map (fun i -> Ast.Const (V.Int i)) (int_range 0 9);
      ])

let gen_rule =
  QCheck.Gen.(
    let gen_atom =
      let* pred = oneofl [ "p"; "q"; "r" ] in
      let* arity = int_range 1 3 in
      let* args = list_size (return arity) gen_term in
      return { Ast.pred; args }
    in
    let gen_literal =
      frequency
        [
          4, map (fun a -> Ast.Pos a) gen_atom;
          2, map (fun a -> Ast.Neg a) gen_atom;
          ( 2,
            let* l = gen_term in
            let* r = gen_term in
            let* c = oneofl Ast.[ Lt; Le; Gt; Ge; Eq; Ne ] in
            return (Ast.Cmp (l, c, r)) );
        ]
    in
    let* body = list_size (int_range 1 5) gen_literal in
    let* head_args = list_size (int_range 0 2) gen_term in
    let head_args =
      List.map
        (function Ast.Param p -> Ast.Var ("P" ^ p) | t -> t)
        head_args
    in
    return { Ast.head = { Ast.pred = "answer"; args = head_args }; body })

let prop_safety_agreement =
  QCheck.Test.make
    ~name:"analyzer QF-safety pass = Safety.is_safe on random rules"
    ~count:500
    (QCheck.make ~print:Qf_datalog.Pretty.rule_to_string gen_rule)
    (fun r ->
      Safety.is_safe r = Result.is_ok (Lint.rule_is_qf_safe r))

(* {1 The independent Sec. 4.2 verifier over generated plans} *)

let medical_flock threshold =
  Parse.flock_exn
    (Printf.sprintf
       {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= %d|}
       threshold)

let medical_catalog () =
  (Qf_workload.Medical.generate
     { Qf_workload.Medical.default with n_patients = 200; seed = 11 })
    .catalog

let test_verifier_on_optimizer_plans () =
  let flock = medical_flock 10 in
  let cat = medical_catalog () in
  let choices = Optimizer.enumerate cat flock in
  check_bool "optimizer produced alternatives" true (List.length choices > 1);
  List.iter
    (fun (c : Optimizer.choice) ->
      match Plan_check.verify c.Optimizer.plan with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "optimizer plan [%s] fails the independent check: %s"
          (String.concat "+"
             (List.map (String.concat ",") c.Optimizer.param_sets))
          e)
    choices

let test_verifier_on_levelwise_plans () =
  List.iter
    (fun k ->
      let _flock, plan =
        Apriori_gen.levelwise_basket ~pred:"baskets" ~k ~support:3
      in
      match Plan_check.verify plan with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "levelwise k=%d plan fails the independent check: %s"
          k e)
    [ 2; 3; 4 ]

let test_verifier_on_strategy_plans () =
  let flock = medical_flock 20 in
  (match Apriori_gen.singleton_plan flock with
  | Error e -> Alcotest.failf "singleton_plan: %s" e
  | Ok p -> (
    match Plan_check.verify p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "singleton plan rejected: %s" e));
  match
    Apriori_gen.param_set_plan flock ~param_sets:[ [ "m" ]; [ "m"; "s" ] ]
  with
  | Error e -> Alcotest.failf "param_set_plan: %s" e
  | Ok p -> (
    match Plan_check.verify p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "param-set plan rejected: %s" e)

let test_verifier_rejection_agreement () =
  (* Illegal plans must be rejected no matter which checker runs: the
     builder's own rule and the independent verifier (installed as the
     auditor by test_main) both see them.  A step that retains no original
     subgoal is not an upper bound. *)
  let flock = medical_flock 20 in
  let bogus =
    Plan.step ~name:"ok_s" [ rule "answer(P) :- exhibits(P,$s)" ]
  in
  let final_missing =
    Plan.step ~name:"result"
      [ rule "answer(P) :- ok_s($s) AND diagnoses(P,D)" ]
  in
  (match Plan.make flock ~steps:[ bogus ] ~final:final_missing with
  | Ok _ -> Alcotest.fail "a final step deleting originals was accepted"
  | Error _ -> ());
  (* Two steps with the same name. *)
  let final_ok =
    Plan.step ~name:"result"
      [
        rule
          "answer(P) :- ok_s($s) AND exhibits(P,$s) AND treatments(P,$m) \
           AND diagnoses(P,D) AND NOT causes(D,$s)";
      ]
  in
  match Plan.make flock ~steps:[ bogus; bogus ] ~final:final_ok with
  | Ok _ -> Alcotest.fail "duplicate step names were accepted"
  | Error _ -> ()

let test_auditor_is_installed () =
  (* test_main installs Plan_check.verify and Validate.verify as Plan.make
     auditors, so every plan built anywhere in this binary is
     double-checked.  Verify the hook is live by installing a rejecting
     auditor under its own name and removing it again. *)
  let flock = medical_flock 20 in
  let final = (Plan.trivial flock).Plan.final in
  Plan.add_auditor ~name:"probe" (fun _ -> Error "probe");
  let r = Plan.make flock ~steps:[] ~final in
  Plan.remove_auditor ~name:"probe";
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
    in
    go 0
  in
  match r with
  | Error e -> check_bool "auditor message surfaced" true (contains e "probe")
  | Ok _ -> Alcotest.fail "rejecting auditor was ignored"

let suite =
  [
    Alcotest.test_case "each pass emits its code" `Quick test_pass_codes;
    Alcotest.test_case "catalog checks QF020/QF022" `Quick
      test_catalog_codes;
    Alcotest.test_case "shipped examples lint clean" `Quick
      test_clean_examples;
    Alcotest.test_case ">= 10 distinct codes over corpus" `Quick
      test_distinct_code_coverage;
    Alcotest.test_case "safety edge cases" `Quick test_safety_edges;
    QCheck_alcotest.to_alcotest prop_safety_agreement;
    Alcotest.test_case "verifier passes optimizer plans" `Quick
      test_verifier_on_optimizer_plans;
    Alcotest.test_case "verifier passes levelwise plans" `Quick
      test_verifier_on_levelwise_plans;
    Alcotest.test_case "verifier passes strategy-1 plans" `Quick
      test_verifier_on_strategy_plans;
    Alcotest.test_case "illegal plans rejected under audit" `Quick
      test_verifier_rejection_agreement;
    Alcotest.test_case "auditor hook is live" `Quick
      test_auditor_is_installed;
  ]
