(* The Datalog evaluator: binding-passing joins, negation, arithmetic,
   grouping by parameters, unions. *)
open Qf_datalog
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rule text =
  match Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" text e

let catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "edge"
    (R.of_values [ "X"; "Y" ]
       V.[
         [ Int 1; Int 2 ]; [ Int 2; Int 3 ]; [ Int 3; Int 4 ];
         [ Int 1; Int 3 ]; [ Int 4; Int 4 ];
       ]);
  Catalog.add cat "color"
    (R.of_values [ "N"; "C" ]
       V.[ [ Int 1; Str "red" ]; [ Int 2; Str "blue" ]; [ Int 3; Str "red" ] ]);
  cat

let tab cat text = Eval.tabulate cat (rule text)

let test_single_subgoal () =
  let r = tab (catalog ()) "answer(X,Y) :- edge(X,Y)" in
  check_int "all edges" 5 (R.cardinal r)

let test_join_two_subgoals () =
  (* Two-step paths. *)
  let r = tab (catalog ()) "answer(X,Z) :- edge(X,Y) AND edge(Y,Z)" in
  (* 1-2-3, 2-3-4, 1-3-4, 3-4-4, 4-4-4 => distinct (X,Z): (1,3)(2,4)(1,4)(3,4)(4,4) *)
  check_int "two-step paths" 5 (R.cardinal r)

let test_repeated_variable_in_atom () =
  let r = tab (catalog ()) "answer(X) :- edge(X,X)" in
  check_int "self-loops" 1 (R.cardinal r);
  check_bool "node 4" true (R.mem r (Qf_relational.Tuple.of_array [| V.Int 4 |]))

let test_constant_in_atom () =
  let r = tab (catalog ()) "answer(X) :- edge(X,3)" in
  check_int "edges into 3" 2 (R.cardinal r)

let test_negation () =
  (* Nodes with an outgoing edge whose target has no outgoing edge... with
     colors: colored nodes not blue-colored. *)
  let r =
    tab (catalog ()) "answer(N) :- color(N,C) AND NOT color(N,blue)"
  in
  (* negation on a different binding: NOT color(N,"blue") removes node 2 *)
  check_int "non-blue colored nodes" 2 (R.cardinal r)

let test_negation_joined () =
  let r = tab (catalog ()) "answer(X,Y) :- edge(X,Y) AND NOT edge(Y,X)" in
  check_int "asymmetric edges" 4 (R.cardinal r);
  check_bool "4->4 excluded (symmetric)" false (R.mem r (Qf_relational.Tuple.of_array [| V.Int 4; V.Int 4 |]))

let test_arithmetic () =
  let r = tab (catalog ()) "answer(X,Y) :- edge(X,Y) AND X < Y" in
  check_int "forward edges" 4 (R.cardinal r);
  let r = tab (catalog ()) "answer(X,Y) :- edge(X,Y) AND Y <= 3" in
  check_int "small targets" 3 (R.cardinal r)

let test_cross_product () =
  let r = tab (catalog ()) "answer(N,C) :- color(N,C) AND edge(4,4)" in
  check_int "guarded cross" 3 (R.cardinal r)

let test_head_constant () =
  let r = tab (catalog ()) "answer(X, 99) :- edge(X,X)" in
  check_bool "constant column materialized" true
    (R.mem r (Qf_relational.Tuple.of_array [| V.Int 4; V.Int 99 |]))

let test_head_constant_with_params () =
  (* Constant head columns must be re-inserted in position even when the
     tabulation carries parameter columns. *)
  let r = tab (catalog ()) "answer(X, 42, Y) :- edge(X,Y) AND edge(X,$t)" in
  check_bool "constant column in the middle" true
    (R.fold
       (fun tup ok -> ok && Qf_relational.Tuple.get tup 2 = V.Int 42)
       r true);
  check_bool "schema" true
    (Qf_relational.Schema.columns (R.schema r) = [ "$t"; "X"; "c1"; "Y" ])

let test_params_grouping () =
  let r = tab (catalog ()) "answer(X) :- edge(X,$t)" in
  (* Schema: $t, X; one row per (target, source) pair. *)
  check_int "param tabulation" 5 (R.cardinal r);
  check_bool "schema has $t first" true
    (Qf_relational.Schema.columns (R.schema r) = [ "$t"; "X" ])

let test_answers_with_bindings () =
  let r =
    Eval.answers (catalog ())
      ~bindings:[ "$t", V.Int 3 ]
      (rule "answer(X) :- edge(X,$t)")
  in
  check_int "sources of 3" 2 (R.cardinal r)

let test_answers_unbound_param_rejected () =
  Alcotest.check_raises "unbound param"
    (Eval.Error "answers: parameter $t left unbound") (fun () ->
      ignore (Eval.answers (catalog ()) ~bindings:[] (rule "answer(X) :- edge(X,$t)")))

let test_unsafe_rejected () =
  (try
     ignore (tab (catalog ()) "answer(Z) :- edge(X,Y)");
     Alcotest.fail "expected Eval.Error"
   with Eval.Error _ -> ());
  try
    ignore (tab (catalog ()) "answer(X) :- edge(X,Y) AND NOT color(Q,red)");
    Alcotest.fail "expected Eval.Error"
  with Eval.Error _ -> ()

let test_unknown_predicate () =
  try
    ignore (tab (catalog ()) "answer(X) :- nosuch(X,Y)");
    Alcotest.fail "expected Eval.Error"
  with Eval.Error msg ->
    check_bool "mentions predicate" true (Test_util.contains ~sub:"nosuch" msg)

let test_arity_mismatch () =
  try
    ignore (tab (catalog ()) "answer(X) :- edge(X,Y,Z)");
    Alcotest.fail "expected Eval.Error"
  with Eval.Error msg ->
    check_bool "mentions arity" true (Test_util.contains ~sub:"arity" msg)

let test_union () =
  let q =
    match
      Parser.parse_query
        "answer(X) :- edge(X,$t)\nanswer(X) :- edge($t,X)"
    with
    | Ok q -> q
    | Error e -> Alcotest.failf "parse union: %s" e
  in
  let r = Eval.tabulate_query (catalog ()) q in
  (* ($t,X) pairs reachable as (target,source) or (source,target). *)
  check_int "union dedups" 9 (R.cardinal r)

let test_duplicate_head_vars () =
  let r = tab (catalog ()) "answer(X,X) :- edge(X,X)" in
  check_bool "duplicated head column" true (R.mem r (Qf_relational.Tuple.of_array [| V.Int 4; V.Int 4 |]));
  check_bool "columns disambiguated" true
    (Qf_relational.Schema.columns (R.schema r) = [ "X"; "X_2" ])

let test_order_body_starts_small () =
  let cat = catalog () in
  let ordered =
    Eval.order_body cat
      (rule "answer(N) :- edge(X,Y) AND color(N,C) AND edge(N,X)")
  in
  match List.hd ordered with
  | Ast.Pos a ->
    Alcotest.(check string) "smallest relation first" "color" a.pred
  | _ -> Alcotest.fail "expected positive first"

let test_envs_incremental_api () =
  let cat = catalog () in
  let envs = Eval.Envs.start () in
  check_int "start: one empty env" 1 (Eval.Envs.count envs);
  let envs =
    Eval.Envs.extend_pos cat envs
      { Ast.pred = "edge"; args = [ Ast.Var "X"; Ast.Var "Y" ] }
  in
  check_int "extended" 5 (Eval.Envs.count envs);
  let envs = Eval.Envs.filter_cmp envs (Ast.Var "X") Ast.Lt (Ast.Var "Y") in
  check_int "filtered" 4 (Eval.Envs.count envs);
  let keep = R.of_values [ "X" ] V.[ [ Int 1 ] ] in
  let envs = Eval.Envs.semijoin envs ~keys:[ "X" ] ~keep in
  check_int "semijoined" 2 (Eval.Envs.count envs);
  let rel = Eval.Envs.project envs ~keys:[ "Y" ] ~columns:[ "Y" ] in
  check_int "projected distinct" 2 (R.cardinal rel)

let suite =
  [
    Alcotest.test_case "single subgoal" `Quick test_single_subgoal;
    Alcotest.test_case "join two subgoals" `Quick test_join_two_subgoals;
    Alcotest.test_case "repeated variable in atom" `Quick
      test_repeated_variable_in_atom;
    Alcotest.test_case "constant in atom" `Quick test_constant_in_atom;
    Alcotest.test_case "negation" `Quick test_negation;
    Alcotest.test_case "negation after join" `Quick test_negation_joined;
    Alcotest.test_case "arithmetic subgoals" `Quick test_arithmetic;
    Alcotest.test_case "cross product" `Quick test_cross_product;
    Alcotest.test_case "head constants" `Quick test_head_constant;
    Alcotest.test_case "head constants with params" `Quick
      test_head_constant_with_params;
    Alcotest.test_case "parameter grouping" `Quick test_params_grouping;
    Alcotest.test_case "answers with bindings" `Quick test_answers_with_bindings;
    Alcotest.test_case "answers rejects unbound params" `Quick
      test_answers_unbound_param_rejected;
    Alcotest.test_case "unsafe rules rejected" `Quick test_unsafe_rejected;
    Alcotest.test_case "unknown predicate" `Quick test_unknown_predicate;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "union tabulation" `Quick test_union;
    Alcotest.test_case "duplicate head variables" `Quick test_duplicate_head_vars;
    Alcotest.test_case "join order heuristic" `Quick test_order_body_starts_small;
    Alcotest.test_case "incremental Envs API" `Quick test_envs_incremental_api;
  ]
