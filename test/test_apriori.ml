(* The classic a-priori miner, and its agreement with the query-flock
   levelwise plan (paper Sec. 4.3, footnote 3). *)
open Qf_apriori
module R = Qf_relational.Relation
module V = Qf_relational.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let set = Itemset.of_list

let test_itemset_normalization () =
  check_bool "sorted dedup" true (Itemset.equal (set [ 3; 1; 3; 2 ]) (set [ 1; 2; 3 ]));
  check_int "size" 3 (Itemset.size (set [ 3; 1; 2 ]))

let test_itemset_ops () =
  check_bool "mem" true (Itemset.mem 2 (set [ 1; 2; 3 ]));
  check_bool "not mem" false (Itemset.mem 4 (set [ 1; 2; 3 ]));
  check_bool "subset" true (Itemset.subset (set [ 1; 3 ]) (set [ 1; 2; 3 ]));
  check_bool "not subset" false (Itemset.subset (set [ 1; 4 ]) (set [ 1; 2; 3 ]));
  check_bool "union" true
    (Itemset.equal (Itemset.union (set [ 1; 2 ]) (set [ 2; 3 ])) (set [ 1; 2; 3 ]));
  check_bool "minus" true
    (Itemset.equal (Itemset.minus (set [ 1; 2; 3 ]) (set [ 2 ])) (set [ 1; 3 ]))

let test_itemset_join () =
  check_bool "joinable prefixes" true
    (match Itemset.join (set [ 1; 2 ]) (set [ 1; 3 ]) with
    | Some j -> Itemset.equal j (set [ 1; 2; 3 ])
    | None -> false);
  check_bool "wrong order not joinable" true
    (Itemset.join (set [ 1; 3 ]) (set [ 1; 2 ]) = None);
  check_bool "different prefix not joinable" true
    (Itemset.join (set [ 1; 2 ]) (set [ 3; 4 ]) = None)

let test_drop_one () =
  let subs = Itemset.drop_one (set [ 1; 2; 3 ]) in
  check_int "three subsets" 3 (List.length subs);
  check_bool "all size 2" true (List.for_all (fun s -> Itemset.size s = 2) subs)

(* A hand-checkable transaction database. *)
let db =
  List.map set
    [
      [ 1; 2; 3 ];
      [ 1; 2 ];
      [ 1; 3 ];
      [ 2; 3 ];
      [ 1; 2; 3 ];
      [ 4 ];
    ]

let support_of levels target =
  List.concat levels
  |> List.find_opt (fun f -> Itemset.equal f.Apriori.itemset target)
  |> Option.map (fun f -> f.Apriori.support)

let test_mine_levels () =
  let levels = Apriori.mine db ~support:2 ~max_size:3 in
  check_int "three levels" 3 (List.length levels);
  check_int "L1 size (1,2,3 frequent; 4 is not)" 3
    (List.length (List.nth levels 0));
  check_int "L2 size" 3 (List.length (List.nth levels 1));
  check_int "L3 size" 1 (List.length (List.nth levels 2));
  Alcotest.(check (option int)) "supp{1,2}" (Some 3) (support_of levels (set [ 1; 2 ]));
  Alcotest.(check (option int)) "supp{1,3}" (Some 3) (support_of levels (set [ 1; 3 ]));
  Alcotest.(check (option int)) "supp{2,3}" (Some 3) (support_of levels (set [ 2; 3 ]));
  Alcotest.(check (option int)) "supp{1,2,3}" (Some 2)
    (support_of levels (set [ 1; 2; 3 ]))

let test_mine_high_support () =
  let levels = Apriori.mine db ~support:4 ~max_size:3 in
  check_int "only L1 survives" 1 (List.length levels);
  Alcotest.(check (option int)) "supp{1}" (Some 4) (support_of levels (set [ 1 ]))

let test_candidate_pruning () =
  (* {1,2} and {1,3} join to {1,2,3}; pruned unless {2,3} is also frequent. *)
  let without = Apriori.candidates [ set [ 1; 2 ]; set [ 1; 3 ] ] in
  check_int "pruned" 0 (List.length without);
  let with_all =
    Apriori.candidates [ set [ 1; 2 ]; set [ 1; 3 ]; set [ 2; 3 ] ]
  in
  check_int "kept" 1 (List.length with_all)

let test_db_of_relation () =
  let rel =
    R.of_values [ "BID"; "Item" ]
      V.[
        [ Int 1; Int 10 ]; [ Int 1; Int 20 ]; [ Int 2; Int 10 ];
        [ Int 1; Int 10 ] (* duplicate collapses *);
      ]
  in
  let db = Apriori.db_of_relation rel in
  check_int "two baskets" 2 (List.length db);
  check_bool "basket contents" true
    (List.exists (fun b -> Itemset.equal b (set [ 10; 20 ])) db)

let test_rules () =
  let rules =
    Apriori.rules db ~support:2 ~max_size:2 ~min_confidence:0.7
  in
  (* supp{1}=4, supp{2}=4, supp{1,2}=3: conf(1->2) = 3/4 = 0.75 >= 0.7 *)
  check_bool "1 -> 2 found" true
    (List.exists
       (fun (r : Apriori.rule) ->
         Itemset.equal r.antecedent (set [ 1 ])
         && Itemset.equal r.consequent (set [ 2 ])
         && abs_float (r.confidence -. 0.75) < 1e-9)
       rules);
  (* interest(1->2) = conf / P(2) = 0.75 / (4/6) = 1.125 *)
  let r12 =
    List.find
      (fun (r : Apriori.rule) ->
        Itemset.equal r.antecedent (set [ 1 ]) && Itemset.equal r.consequent (set [ 2 ]))
      rules
  in
  Alcotest.(check (float 1e-9)) "interest" 1.125 r12.interest

(* Cross-check: the classic miner and the query-flock levelwise plan compute
   the same frequent pairs/triples on generated market data. *)
let test_classic_vs_flock () =
  let cat =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 300; n_items = 80; seed = 13 }
  in
  let rel = Qf_relational.Catalog.find cat "baskets" in
  let db = Apriori.db_of_relation rel in
  List.iter
    (fun (k, support) ->
      let flock, plan =
        Qf_core.Apriori_gen.levelwise_basket ~pred:"baskets" ~k ~support
      in
      ignore flock;
      let flock_result = Qf_core.Plan_exec.run cat plan in
      let classic = Apriori.frequent_of_size db ~support ~size:k in
      check_int
        (Printf.sprintf "same count k=%d s=%d" k support)
        (List.length classic)
        (R.cardinal flock_result);
      List.iter
        (fun f ->
          let tuple =
            Qf_relational.Tuple.of_list
              (List.map (fun i -> V.Int i) (Itemset.to_list f.Apriori.itemset))
          in
          check_bool "itemset present in flock result" true
            (R.mem flock_result tuple))
        classic)
    [ 2, 15; 3, 10 ]

let suite =
  [
    Alcotest.test_case "itemset normalization" `Quick test_itemset_normalization;
    Alcotest.test_case "itemset operations" `Quick test_itemset_ops;
    Alcotest.test_case "itemset join" `Quick test_itemset_join;
    Alcotest.test_case "drop_one" `Quick test_drop_one;
    Alcotest.test_case "mine levels" `Quick test_mine_levels;
    Alcotest.test_case "mine with high support" `Quick test_mine_high_support;
    Alcotest.test_case "candidate pruning" `Quick test_candidate_pruning;
    Alcotest.test_case "db_of_relation" `Quick test_db_of_relation;
    Alcotest.test_case "association rules" `Quick test_rules;
    Alcotest.test_case "classic = levelwise flock plan" `Quick
      test_classic_vs_flock;
  ]
