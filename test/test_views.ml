(* Intermediate predicates (VIEWS, the Sec. 2.3 extension) and the Sec. 1.1
   association measures. *)
open Qf_core
module R = Qf_relational.Relation
module V = Qf_relational.Value
module Catalog = Qf_relational.Catalog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rule text =
  match Qf_datalog.Parser.parse_rule text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" text e

let base_catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "edge"
    (R.of_values [ "X"; "Y" ]
       V.[ [ Int 1; Int 2 ]; [ Int 2; Int 3 ]; [ Int 3; Int 1 ] ]);
  cat

let test_materialize_simple () =
  let cat = base_catalog () in
  match Views.materialize cat [ rule "two_hop(X,Z) :- edge(X,Y) AND edge(Y,Z)" ] with
  | Error e -> Alcotest.failf "materialize: %s" e
  | Ok cat' ->
    let two_hop = Catalog.find cat' "two_hop" in
    check_int "three 2-hops on the 3-cycle" 3 (R.cardinal two_hop);
    check_bool "1->3" true (R.mem two_hop (Qf_relational.Tuple.of_array [| V.Int 1; V.Int 3 |]));
    check_bool "input catalog untouched" false (Catalog.mem cat "two_hop")

let test_view_union_rules () =
  let cat = base_catalog () in
  match
    Views.materialize cat
      [
        rule "reach2(X,Y) :- edge(X,Y)";
        rule "reach2(X,Z) :- edge(X,Y) AND edge(Y,Z)";
      ]
  with
  | Error e -> Alcotest.failf "materialize: %s" e
  | Ok cat' -> check_int "union of 1- and 2-hops" 6 (R.cardinal (Catalog.find cat' "reach2"))

let test_view_uses_earlier_view () =
  let cat = base_catalog () in
  match
    Views.materialize cat
      [
        rule "two_hop(X,Z) :- edge(X,Y) AND edge(Y,Z)";
        rule "three_hop(X,W) :- two_hop(X,Z) AND edge(Z,W)";
      ]
  with
  | Error e -> Alcotest.failf "materialize: %s" e
  | Ok cat' ->
    check_bool "3-hop returns home on the cycle" true
      (R.mem (Catalog.find cat' "three_hop") (Qf_relational.Tuple.of_array [| V.Int 1; V.Int 1 |]))

let test_view_rejections () =
  let cat = base_catalog () in
  let is_error views = Result.is_error (Views.materialize cat views) in
  check_bool "shadowing rejected" true (is_error [ rule "edge(X,Y) :- edge(Y,X)" ]);
  check_bool "unknown predicate rejected" true (is_error [ rule "v(X) :- nosuch(X)" ]);
  check_bool "parameters rejected" true (is_error [ rule "v(X) :- edge(X,$a)" ]);
  check_bool "unsafe view rejected" true (is_error [ rule "v(X,Z) :- edge(X,Y)" ]);
  check_bool "arity mismatch rejected" true
    (is_error [ rule "a(X) :- edge(X,Y)"; rule "a(X,Y) :- edge(X,Y)" ]);
  check_bool "negation through recursion rejected" true
    (is_error
       [ rule "odd(X,Y) :- edge(X,Y) AND NOT odd(Y,X)" ])

(* Recursion is now supported (stratified semi-naive fixpoint): transitive
   closure of the 3-cycle reaches everything. *)
let test_recursive_view () =
  let cat = base_catalog () in
  match
    Views.materialize cat
      [
        rule "reach(X,Y) :- edge(X,Y)";
        rule "reach(X,Z) :- reach(X,Y) AND edge(Y,Z)";
      ]
  with
  | Error e -> Alcotest.failf "recursive view: %s" e
  | Ok cat' ->
    let reach = Catalog.find cat' "reach" in
    check_int "full closure of the 3-cycle" 9 (R.cardinal reach);
    check_bool "1 reaches itself" true (R.mem reach (Qf_relational.Tuple.of_array [| V.Int 1; V.Int 1 |]))

let test_mutually_recursive_views () =
  (* Even/odd path length from node 1 on the 3-cycle: mutually recursive
     predicates in one stratum. *)
  let cat = base_catalog () in
  match
    Views.materialize cat
      [
        rule "odd_step(X,Y) :- edge(X,Y)";
        rule "odd_step(X,Z) :- even_step(X,Y) AND edge(Y,Z)";
        rule "even_step(X,Z) :- odd_step(X,Y) AND edge(Y,Z)";
      ]
  with
  | Error e -> Alcotest.failf "mutual recursion: %s" e
  | Ok cat' ->
    (* On a 3-cycle every pair is reachable by both parities (cycle length
       3 is odd), so both relations are the full 3x3. *)
    check_int "odd closure" 9 (R.cardinal (Catalog.find cat' "odd_step"));
    check_int "even closure" 9 (R.cardinal (Catalog.find cat' "even_step"))

let test_stratified_negation_view () =
  (* unreachable-from-1 via a lower stratum: nodes(X) minus reach(1,X). *)
  let cat = Catalog.create () in
  Catalog.add cat "edge"
    (R.of_values [ "X"; "Y" ] V.[ [ Int 1; Int 2 ]; [ Int 2; Int 1 ]; [ Int 3; Int 4 ] ]);
  Catalog.add cat "node"
    (R.of_values [ "N" ] V.[ [ Int 1 ]; [ Int 2 ]; [ Int 3 ]; [ Int 4 ] ]);
  match
    Views.materialize cat
      [
        rule "reach(X,Y) :- edge(X,Y)";
        rule "reach(X,Z) :- reach(X,Y) AND edge(Y,Z)";
        rule "unreached(N) :- node(N) AND NOT reach(1,N)";
      ]
  with
  | Error e -> Alcotest.failf "stratified negation: %s" e
  | Ok cat' ->
    let unreached = Catalog.find cat' "unreached" in
    (* 1 reaches 2 and 1; nodes 3 and 4 are unreached. *)
    check_int "two unreached" 2 (R.cardinal unreached);
    check_bool "3 unreached" true (R.mem unreached (Qf_relational.Tuple.of_array [| V.Int 3 |]));
    check_bool "4 unreached" true (R.mem unreached (Qf_relational.Tuple.of_array [| V.Int 4 |]))

(* A recursive view feeding a flock: nodes with at least k descendants. *)
let test_recursive_view_feeds_flock () =
  let graph_cat =
    Qf_workload.Graph.generate
      { Qf_workload.Graph.default with n_nodes = 60; max_out_degree = 8; seed = 41 }
  in
  match
    Views.materialize graph_cat
      [
        rule "reach(X,Y) :- arc(X,Y)";
        rule "reach(X,Z) :- reach(X,Y) AND arc(Y,Z)";
      ]
  with
  | Error e -> Alcotest.failf "reach view: %s" e
  | Ok cat ->
    let flock =
      Parse.flock_exn
        "QUERY:\nanswer(X) :- reach($n,X)\nFILTER:\nCOUNT(answer.X) >= 30"
    in
    let direct = Direct.run cat flock in
    let plan = Optimizer.optimize cat flock in
    Alcotest.check Test_util.relation "plan over recursive view = direct"
      direct (Plan_exec.run cat plan);
    (* Sanity: the answer matches a hand count over the view. *)
    let reach = Catalog.find cat "reach" in
    let by_source = Qf_relational.Aggregate.group_by reach ~keys:[ "X" ]
        ~func:Qf_relational.Aggregate.Count in
    let expected =
      List.length
        (List.filter (fun (_, v) -> match V.to_float v with Some x -> x >= 30. | None -> false) by_source)
    in
    check_int "matches hand count" expected (R.cardinal direct)

let test_strata () =
  let rules =
    [
      rule "reach(X,Y) :- edge(X,Y)";
      rule "reach(X,Z) :- reach(X,Y) AND edge(Y,Z)";
      rule "odd_hop(X,Y) :- edge(X,Y)";
      rule "odd_hop(X,Z) :- even_hop(X,Y) AND edge(Y,Z)";
      rule "even_hop(X,Z) :- odd_hop(X,Y) AND edge(Y,Z)";
      rule "far(X) :- reach(X,Y) AND NOT edge(X,Y)";
    ]
  in
  match Qf_datalog.Fixpoint.strata rules with
  | Error e -> Alcotest.failf "strata: %s" e
  | Ok strata ->
    check_int "three strata" 3 (List.length strata);
    (* Mutual recursion grouped in one stratum. *)
    check_bool "even/odd together" true
      (List.exists
         (fun s -> List.sort compare s = [ "even_hop"; "odd_hop" ])
         strata);
    (* far depends on reach, so reach's stratum comes first. *)
    let index p =
      let rec go i = function
        | [] -> -1
        | s :: rest -> if List.mem p s then i else go (i + 1) rest
      in
      go 0 strata
    in
    check_bool "reach before far" true (index "reach" < index "far")

let test_program_parsing () =
  let p =
    Parse.program_exn
      {|VIEWS:
explained(P,S) :- diagnoses(P,D) AND causes(D,S)

QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT explained(P,$s)

FILTER:
COUNT(answer.P) >= 2|}
  in
  check_int "one view rule" 1 (List.length p.Parse.views);
  Alcotest.(check (list string)) "params" [ "m"; "s" ] (Flock.params p.Parse.flock)

let test_program_without_views () =
  let p =
    Parse.program_exn
      "QUERY:\nanswer(B) :- b(B,$1)\nFILTER:\nCOUNT(answer.B) >= 2"
  in
  check_int "no views" 0 (List.length p.Parse.views);
  check_bool "flock rejects programs with views" true
    (Result.is_error
       (Parse.flock
          "VIEWS:\nv(X) :- b(X,Y)\nQUERY:\nanswer(B) :- b(B,$1)\nFILTER:\nCOUNT(answer.B) >= 2"))

let test_program_view_validation () =
  check_bool "view with params rejected at parse" true
    (Result.is_error
       (Parse.program
          "VIEWS:\nv(X) :- b(X,$a)\nQUERY:\nanswer(B) :- b(B,$1)\nFILTER:\nCOUNT(answer.B) >= 2"))

(* End-to-end: multi-disease patients, the scenario the paper says needs
   intermediate predicates. *)
let test_multi_disease_end_to_end () =
  let config =
    {
      Qf_workload.Medical.default with
      n_patients = 800;
      diseases_per_patient = 3;
      seed = 17;
    }
  in
  let { Qf_workload.Medical.catalog; _ } = Qf_workload.Medical.generate config in
  let { Parse.views; flock } =
    Parse.program_exn
      {|VIEWS:
explained(P,S) :- diagnoses(P,D) AND causes(D,S)
QUERY:
answer(P) :- exhibits(P,$s) AND treatments(P,$m) AND NOT explained(P,$s)
FILTER:
COUNT(answer.P) >= 10|}
  in
  match Views.materialize catalog views with
  | Error e -> Alcotest.failf "materialize: %s" e
  | Ok cat ->
    let direct = Direct.run cat flock in
    let plan = Optimizer.optimize cat flock in
    Alcotest.check Test_util.relation "plan = direct over views" direct
      (Plan_exec.run cat plan);
    (match Dynamic.run cat flock with
    | Ok r ->
      Alcotest.check Test_util.relation "dynamic = direct over views" direct
        r.answers
    | Error e -> Alcotest.failf "dynamic: %s" e);
    (* The single-disease flock (with diagnoses inline) under-reports for
       multi-disease patients: a symptom explained by the patient's other
       disease still qualifies there.  The view-based flock must therefore
       find a subset. *)
    let naive_single =
      Parse.flock_exn
        {|QUERY:
answer(P) :-
    exhibits(P,$s) AND
    treatments(P,$m) AND
    diagnoses(P,D) AND
    NOT causes(D,$s)
FILTER:
COUNT(answer.P) >= 10|}
    in
    let single = Direct.run cat naive_single in
    R.iter
      (fun tup ->
        check_bool "view-based results also qualify per-disease" true
          (R.mem single tup))
      direct

(* {1 Measures (Sec. 1.1)} *)

let measure_catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "baskets"
    (R.of_values [ "BID"; "Item" ]
       V.[
         [ Int 1; Int 10 ]; [ Int 1; Int 20 ];
         [ Int 2; Int 10 ]; [ Int 2; Int 20 ];
         [ Int 3; Int 10 ]; [ Int 3; Int 20 ];
         [ Int 4; Int 10 ];
         [ Int 5; Int 30 ];
       ]);
  cat

let test_measures_values () =
  let rules =
    Measures.pair_rules (measure_catalog ()) ~pred:"baskets" ~support:3
      ~min_confidence:0.0
  in
  check_int "two directed rules from one pair" 2 (List.length rules);
  let r =
    List.find
      (fun (r : Measures.rule) -> V.equal r.antecedent (V.Int 10))
      rules
  in
  check_int "support {10,20} = 3" 3 r.pair_support;
  (* conf(10 -> 20) = 3/4; P(20) = 3/5; interest = (3/4)/(3/5) = 1.25 *)
  Alcotest.(check (float 1e-9)) "confidence" 0.75 r.confidence;
  Alcotest.(check (float 1e-9)) "interest" 1.25 r.interest

let test_measures_confidence_floor () =
  let rules =
    Measures.pair_rules (measure_catalog ()) ~pred:"baskets" ~support:3
      ~min_confidence:0.9
  in
  (* conf(20 -> 10) = 3/3 = 1.0 passes; conf(10 -> 20) = 0.75 fails. *)
  check_int "floor filters directions" 1 (List.length rules);
  check_bool "20 -> 10 kept" true
    (V.equal (List.hd rules).Measures.antecedent (V.Int 20))

let test_measures_agree_with_classic () =
  let cat =
    Qf_workload.Market.catalog
      { Qf_workload.Market.default with n_baskets = 400; n_items = 60; seed = 3 }
  in
  let ours =
    Measures.pair_rules cat ~pred:"baskets" ~support:15 ~min_confidence:0.3
  in
  let db = Qf_apriori.Apriori.db_of_relation (Catalog.find cat "baskets") in
  let classic =
    Qf_apriori.Apriori.rules db ~support:15 ~max_size:2 ~min_confidence:0.3
  in
  check_int "same rule count as the classic miner" (List.length classic)
    (List.length ours);
  List.iter
    (fun (c : Qf_apriori.Apriori.rule) ->
      let a = V.Int (List.hd (Qf_apriori.Itemset.to_list c.antecedent)) in
      let b = V.Int (List.hd (Qf_apriori.Itemset.to_list c.consequent)) in
      let ours_rule =
        List.find_opt
          (fun (r : Measures.rule) ->
            V.equal r.antecedent a && V.equal r.consequent b)
          ours
      in
      match ours_rule with
      | None -> Alcotest.failf "classic rule missing from flock measures"
      | Some r ->
        check_int "same support" c.rule_support r.pair_support;
        check_bool "same confidence" true
          (abs_float (c.confidence -. r.confidence) < 1e-9);
        check_bool "same interest" true
          (abs_float (c.interest -. r.interest) < 1e-9))
    classic

let suite =
  [
    Alcotest.test_case "materialize a view" `Quick test_materialize_simple;
    Alcotest.test_case "view union rules" `Quick test_view_union_rules;
    Alcotest.test_case "view over earlier view" `Quick test_view_uses_earlier_view;
    Alcotest.test_case "view rejections" `Quick test_view_rejections;
    Alcotest.test_case "recursive view (transitive closure)" `Quick
      test_recursive_view;
    Alcotest.test_case "mutually recursive views" `Quick
      test_mutually_recursive_views;
    Alcotest.test_case "stratified negation over recursion" `Quick
      test_stratified_negation_view;
    Alcotest.test_case "recursive view feeds a flock" `Quick
      test_recursive_view_feeds_flock;
    Alcotest.test_case "stratification" `Quick test_strata;
    Alcotest.test_case "program parsing with VIEWS" `Quick test_program_parsing;
    Alcotest.test_case "program without views" `Quick test_program_without_views;
    Alcotest.test_case "program view validation" `Quick
      test_program_view_validation;
    Alcotest.test_case "multi-disease end to end" `Quick
      test_multi_disease_end_to_end;
    Alcotest.test_case "measures: support/confidence/interest" `Quick
      test_measures_values;
    Alcotest.test_case "measures: confidence floor" `Quick
      test_measures_confidence_floor;
    Alcotest.test_case "measures agree with the classic miner" `Quick
      test_measures_agree_with_classic;
  ]
